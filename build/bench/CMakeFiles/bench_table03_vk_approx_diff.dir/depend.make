# Empty dependencies file for bench_table03_vk_approx_diff.
# This may be replaced when dependencies are built.
