file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_syn_exact_diff.dir/bench_table08_syn_exact_diff.cc.o"
  "CMakeFiles/bench_table08_syn_exact_diff.dir/bench_table08_syn_exact_diff.cc.o.d"
  "bench_table08_syn_exact_diff"
  "bench_table08_syn_exact_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_syn_exact_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
