# Empty compiler generated dependencies file for bench_table08_syn_exact_diff.
# This may be replaced when dependencies are built.
