file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_epsilon.dir/bench_sweep_epsilon.cc.o"
  "CMakeFiles/bench_sweep_epsilon.dir/bench_sweep_epsilon.cc.o.d"
  "bench_sweep_epsilon"
  "bench_sweep_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
