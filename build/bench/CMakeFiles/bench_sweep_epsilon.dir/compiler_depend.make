# Empty compiler generated dependencies file for bench_sweep_epsilon.
# This may be replaced when dependencies are built.
