# Empty dependencies file for bench_table09_syn_approx_same.
# This may be replaced when dependencies are built.
