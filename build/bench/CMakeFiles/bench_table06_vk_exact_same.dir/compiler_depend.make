# Empty compiler generated dependencies file for bench_table06_vk_exact_same.
# This may be replaced when dependencies are built.
