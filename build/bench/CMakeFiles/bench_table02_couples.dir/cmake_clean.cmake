file(REMOVE_RECURSE
  "CMakeFiles/bench_table02_couples.dir/bench_table02_couples.cc.o"
  "CMakeFiles/bench_table02_couples.dir/bench_table02_couples.cc.o.d"
  "bench_table02_couples"
  "bench_table02_couples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_couples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
