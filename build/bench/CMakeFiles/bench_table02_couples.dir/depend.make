# Empty dependencies file for bench_table02_couples.
# This may be replaced when dependencies are built.
