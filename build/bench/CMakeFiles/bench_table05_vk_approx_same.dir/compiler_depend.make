# Empty compiler generated dependencies file for bench_table05_vk_approx_same.
# This may be replaced when dependencies are built.
