file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_vk_approx_same.dir/bench_table05_vk_approx_same.cc.o"
  "CMakeFiles/bench_table05_vk_approx_same.dir/bench_table05_vk_approx_same.cc.o.d"
  "bench_table05_vk_approx_same"
  "bench_table05_vk_approx_same.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_vk_approx_same.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
