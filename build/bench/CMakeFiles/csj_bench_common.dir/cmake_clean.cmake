file(REMOVE_RECURSE
  "CMakeFiles/csj_bench_common.dir/common/harness.cc.o"
  "CMakeFiles/csj_bench_common.dir/common/harness.cc.o.d"
  "libcsj_bench_common.a"
  "libcsj_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csj_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
