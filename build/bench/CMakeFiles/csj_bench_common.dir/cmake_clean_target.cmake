file(REMOVE_RECURSE
  "libcsj_bench_common.a"
)
