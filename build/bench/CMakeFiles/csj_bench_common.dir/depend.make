# Empty dependencies file for csj_bench_common.
# This may be replaced when dependencies are built.
