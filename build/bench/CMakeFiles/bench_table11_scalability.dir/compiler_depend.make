# Empty compiler generated dependencies file for bench_table11_scalability.
# This may be replaced when dependencies are built.
