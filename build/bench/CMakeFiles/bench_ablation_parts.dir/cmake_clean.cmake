file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parts.dir/bench_ablation_parts.cc.o"
  "CMakeFiles/bench_ablation_parts.dir/bench_ablation_parts.cc.o.d"
  "bench_ablation_parts"
  "bench_ablation_parts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
