# Empty compiler generated dependencies file for bench_ablation_parts.
# This may be replaced when dependencies are built.
