# Empty dependencies file for bench_table07_syn_approx_diff.
# This may be replaced when dependencies are built.
