file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_syn_approx_diff.dir/bench_table07_syn_approx_diff.cc.o"
  "CMakeFiles/bench_table07_syn_approx_diff.dir/bench_table07_syn_approx_diff.cc.o.d"
  "bench_table07_syn_approx_diff"
  "bench_table07_syn_approx_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_syn_approx_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
