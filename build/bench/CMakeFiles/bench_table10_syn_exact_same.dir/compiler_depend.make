# Empty compiler generated dependencies file for bench_table10_syn_exact_same.
# This may be replaced when dependencies are built.
