file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_syn_exact_same.dir/bench_table10_syn_exact_same.cc.o"
  "CMakeFiles/bench_table10_syn_exact_same.dir/bench_table10_syn_exact_same.cc.o.d"
  "bench_table10_syn_exact_same"
  "bench_table10_syn_exact_same.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_syn_exact_same.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
