file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_csf.dir/bench_ablation_csf.cc.o"
  "CMakeFiles/bench_ablation_csf.dir/bench_ablation_csf.cc.o.d"
  "bench_ablation_csf"
  "bench_ablation_csf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_csf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
