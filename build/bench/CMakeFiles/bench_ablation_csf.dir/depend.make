# Empty dependencies file for bench_ablation_csf.
# This may be replaced when dependencies are built.
