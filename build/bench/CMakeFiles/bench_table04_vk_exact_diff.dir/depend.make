# Empty dependencies file for bench_table04_vk_exact_diff.
# This may be replaced when dependencies are built.
