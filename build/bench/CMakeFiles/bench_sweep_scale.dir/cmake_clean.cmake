file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_scale.dir/bench_sweep_scale.cc.o"
  "CMakeFiles/bench_sweep_scale.dir/bench_sweep_scale.cc.o.d"
  "bench_sweep_scale"
  "bench_sweep_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
