# Empty compiler generated dependencies file for bench_table01_distribution.
# This may be replaced when dependencies are built.
