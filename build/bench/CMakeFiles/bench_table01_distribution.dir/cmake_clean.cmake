file(REMOVE_RECURSE
  "CMakeFiles/bench_table01_distribution.dir/bench_table01_distribution.cc.o"
  "CMakeFiles/bench_table01_distribution.dir/bench_table01_distribution.cc.o.d"
  "bench_table01_distribution"
  "bench_table01_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table01_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
