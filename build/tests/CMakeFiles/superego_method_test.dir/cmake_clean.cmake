file(REMOVE_RECURSE
  "CMakeFiles/superego_method_test.dir/superego_method_test.cc.o"
  "CMakeFiles/superego_method_test.dir/superego_method_test.cc.o.d"
  "superego_method_test"
  "superego_method_test.pdb"
  "superego_method_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superego_method_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
