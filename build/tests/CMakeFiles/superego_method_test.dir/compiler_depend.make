# Empty compiler generated dependencies file for superego_method_test.
# This may be replaced when dependencies are built.
