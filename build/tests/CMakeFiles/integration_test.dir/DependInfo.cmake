
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/csj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/csj_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/incremental/CMakeFiles/csj_incremental.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/csj_data.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/csj_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/ego/CMakeFiles/csj_ego.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/csj_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/csj_core_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
