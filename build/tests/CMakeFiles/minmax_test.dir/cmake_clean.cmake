file(REMOVE_RECURSE
  "CMakeFiles/minmax_test.dir/minmax_test.cc.o"
  "CMakeFiles/minmax_test.dir/minmax_test.cc.o.d"
  "minmax_test"
  "minmax_test.pdb"
  "minmax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minmax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
