# Empty dependencies file for ego_test.
# This may be replaced when dependencies are built.
