file(REMOVE_RECURSE
  "CMakeFiles/ego_test.dir/ego_test.cc.o"
  "CMakeFiles/ego_test.dir/ego_test.cc.o.d"
  "ego_test"
  "ego_test.pdb"
  "ego_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ego_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
