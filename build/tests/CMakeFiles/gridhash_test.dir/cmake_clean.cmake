file(REMOVE_RECURSE
  "CMakeFiles/gridhash_test.dir/gridhash_test.cc.o"
  "CMakeFiles/gridhash_test.dir/gridhash_test.cc.o.d"
  "gridhash_test"
  "gridhash_test.pdb"
  "gridhash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridhash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
