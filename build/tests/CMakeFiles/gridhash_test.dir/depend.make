# Empty dependencies file for gridhash_test.
# This may be replaced when dependencies are built.
