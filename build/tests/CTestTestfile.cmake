# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/community_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/minmax_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/ego_test[1]_include.cmake")
include("/root/repo/build/tests/superego_method_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/bound_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/gridhash_test[1]_include.cmake")
add_test(cli_smoke "/root/repo/tests/cli_smoke.sh" "/root/repo/build/tools/csj_cli")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
