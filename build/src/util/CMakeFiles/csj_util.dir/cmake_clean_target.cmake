file(REMOVE_RECURSE
  "libcsj_util.a"
)
