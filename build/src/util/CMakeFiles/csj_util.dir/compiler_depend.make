# Empty compiler generated dependencies file for csj_util.
# This may be replaced when dependencies are built.
