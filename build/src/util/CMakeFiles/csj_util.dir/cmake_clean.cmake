file(REMOVE_RECURSE
  "CMakeFiles/csj_util.dir/flags.cc.o"
  "CMakeFiles/csj_util.dir/flags.cc.o.d"
  "CMakeFiles/csj_util.dir/format.cc.o"
  "CMakeFiles/csj_util.dir/format.cc.o.d"
  "CMakeFiles/csj_util.dir/histogram.cc.o"
  "CMakeFiles/csj_util.dir/histogram.cc.o.d"
  "CMakeFiles/csj_util.dir/json_writer.cc.o"
  "CMakeFiles/csj_util.dir/json_writer.cc.o.d"
  "CMakeFiles/csj_util.dir/parallel.cc.o"
  "CMakeFiles/csj_util.dir/parallel.cc.o.d"
  "CMakeFiles/csj_util.dir/table_printer.cc.o"
  "CMakeFiles/csj_util.dir/table_printer.cc.o.d"
  "CMakeFiles/csj_util.dir/zipf.cc.o"
  "CMakeFiles/csj_util.dir/zipf.cc.o.d"
  "libcsj_util.a"
  "libcsj_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csj_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
