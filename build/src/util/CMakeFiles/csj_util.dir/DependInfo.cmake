
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/flags.cc" "src/util/CMakeFiles/csj_util.dir/flags.cc.o" "gcc" "src/util/CMakeFiles/csj_util.dir/flags.cc.o.d"
  "/root/repo/src/util/format.cc" "src/util/CMakeFiles/csj_util.dir/format.cc.o" "gcc" "src/util/CMakeFiles/csj_util.dir/format.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/csj_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/csj_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/json_writer.cc" "src/util/CMakeFiles/csj_util.dir/json_writer.cc.o" "gcc" "src/util/CMakeFiles/csj_util.dir/json_writer.cc.o.d"
  "/root/repo/src/util/parallel.cc" "src/util/CMakeFiles/csj_util.dir/parallel.cc.o" "gcc" "src/util/CMakeFiles/csj_util.dir/parallel.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/util/CMakeFiles/csj_util.dir/table_printer.cc.o" "gcc" "src/util/CMakeFiles/csj_util.dir/table_printer.cc.o.d"
  "/root/repo/src/util/zipf.cc" "src/util/CMakeFiles/csj_util.dir/zipf.cc.o" "gcc" "src/util/CMakeFiles/csj_util.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
