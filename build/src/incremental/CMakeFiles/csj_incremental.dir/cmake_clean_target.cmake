file(REMOVE_RECURSE
  "libcsj_incremental.a"
)
