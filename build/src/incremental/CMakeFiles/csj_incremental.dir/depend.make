# Empty dependencies file for csj_incremental.
# This may be replaced when dependencies are built.
