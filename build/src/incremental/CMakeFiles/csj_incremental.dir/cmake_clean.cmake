file(REMOVE_RECURSE
  "CMakeFiles/csj_incremental.dir/incremental_csj.cc.o"
  "CMakeFiles/csj_incremental.dir/incremental_csj.cc.o.d"
  "libcsj_incremental.a"
  "libcsj_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csj_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
