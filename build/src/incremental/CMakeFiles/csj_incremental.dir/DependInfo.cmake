
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/incremental/incremental_csj.cc" "src/incremental/CMakeFiles/csj_incremental.dir/incremental_csj.cc.o" "gcc" "src/incremental/CMakeFiles/csj_incremental.dir/incremental_csj.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/csj_core_types.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/csj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
