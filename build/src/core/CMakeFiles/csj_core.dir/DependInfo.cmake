
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline.cc" "src/core/CMakeFiles/csj_core.dir/baseline.cc.o" "gcc" "src/core/CMakeFiles/csj_core.dir/baseline.cc.o.d"
  "/root/repo/src/core/gridhash_method.cc" "src/core/CMakeFiles/csj_core.dir/gridhash_method.cc.o" "gcc" "src/core/CMakeFiles/csj_core.dir/gridhash_method.cc.o.d"
  "/root/repo/src/core/hybrid_method.cc" "src/core/CMakeFiles/csj_core.dir/hybrid_method.cc.o" "gcc" "src/core/CMakeFiles/csj_core.dir/hybrid_method.cc.o.d"
  "/root/repo/src/core/method.cc" "src/core/CMakeFiles/csj_core.dir/method.cc.o" "gcc" "src/core/CMakeFiles/csj_core.dir/method.cc.o.d"
  "/root/repo/src/core/minmax.cc" "src/core/CMakeFiles/csj_core.dir/minmax.cc.o" "gcc" "src/core/CMakeFiles/csj_core.dir/minmax.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/csj_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/csj_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/similarity_bound.cc" "src/core/CMakeFiles/csj_core.dir/similarity_bound.cc.o" "gcc" "src/core/CMakeFiles/csj_core.dir/similarity_bound.cc.o.d"
  "/root/repo/src/core/superego_method.cc" "src/core/CMakeFiles/csj_core.dir/superego_method.cc.o" "gcc" "src/core/CMakeFiles/csj_core.dir/superego_method.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/csj_core_types.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/csj_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/ego/CMakeFiles/csj_ego.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/csj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
