# Empty compiler generated dependencies file for csj_core.
# This may be replaced when dependencies are built.
