file(REMOVE_RECURSE
  "CMakeFiles/csj_core.dir/baseline.cc.o"
  "CMakeFiles/csj_core.dir/baseline.cc.o.d"
  "CMakeFiles/csj_core.dir/gridhash_method.cc.o"
  "CMakeFiles/csj_core.dir/gridhash_method.cc.o.d"
  "CMakeFiles/csj_core.dir/hybrid_method.cc.o"
  "CMakeFiles/csj_core.dir/hybrid_method.cc.o.d"
  "CMakeFiles/csj_core.dir/method.cc.o"
  "CMakeFiles/csj_core.dir/method.cc.o.d"
  "CMakeFiles/csj_core.dir/minmax.cc.o"
  "CMakeFiles/csj_core.dir/minmax.cc.o.d"
  "CMakeFiles/csj_core.dir/similarity.cc.o"
  "CMakeFiles/csj_core.dir/similarity.cc.o.d"
  "CMakeFiles/csj_core.dir/similarity_bound.cc.o"
  "CMakeFiles/csj_core.dir/similarity_bound.cc.o.d"
  "CMakeFiles/csj_core.dir/superego_method.cc.o"
  "CMakeFiles/csj_core.dir/superego_method.cc.o.d"
  "libcsj_core.a"
  "libcsj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
