file(REMOVE_RECURSE
  "libcsj_core.a"
)
