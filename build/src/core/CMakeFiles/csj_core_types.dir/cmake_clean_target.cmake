file(REMOVE_RECURSE
  "libcsj_core_types.a"
)
