
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/community.cc" "src/core/CMakeFiles/csj_core_types.dir/community.cc.o" "gcc" "src/core/CMakeFiles/csj_core_types.dir/community.cc.o.d"
  "/root/repo/src/core/encoding.cc" "src/core/CMakeFiles/csj_core_types.dir/encoding.cc.o" "gcc" "src/core/CMakeFiles/csj_core_types.dir/encoding.cc.o.d"
  "/root/repo/src/core/join_result.cc" "src/core/CMakeFiles/csj_core_types.dir/join_result.cc.o" "gcc" "src/core/CMakeFiles/csj_core_types.dir/join_result.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/csj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
