# Empty dependencies file for csj_core_types.
# This may be replaced when dependencies are built.
