file(REMOVE_RECURSE
  "CMakeFiles/csj_core_types.dir/community.cc.o"
  "CMakeFiles/csj_core_types.dir/community.cc.o.d"
  "CMakeFiles/csj_core_types.dir/encoding.cc.o"
  "CMakeFiles/csj_core_types.dir/encoding.cc.o.d"
  "CMakeFiles/csj_core_types.dir/join_result.cc.o"
  "CMakeFiles/csj_core_types.dir/join_result.cc.o.d"
  "libcsj_core_types.a"
  "libcsj_core_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csj_core_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
