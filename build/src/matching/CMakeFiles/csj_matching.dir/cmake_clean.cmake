file(REMOVE_RECURSE
  "CMakeFiles/csj_matching.dir/candidate_graph.cc.o"
  "CMakeFiles/csj_matching.dir/candidate_graph.cc.o.d"
  "CMakeFiles/csj_matching.dir/csf.cc.o"
  "CMakeFiles/csj_matching.dir/csf.cc.o.d"
  "CMakeFiles/csj_matching.dir/greedy.cc.o"
  "CMakeFiles/csj_matching.dir/greedy.cc.o.d"
  "CMakeFiles/csj_matching.dir/hopcroft_karp.cc.o"
  "CMakeFiles/csj_matching.dir/hopcroft_karp.cc.o.d"
  "CMakeFiles/csj_matching.dir/matcher.cc.o"
  "CMakeFiles/csj_matching.dir/matcher.cc.o.d"
  "libcsj_matching.a"
  "libcsj_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csj_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
