file(REMOVE_RECURSE
  "libcsj_matching.a"
)
