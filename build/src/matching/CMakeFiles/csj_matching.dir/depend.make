# Empty dependencies file for csj_matching.
# This may be replaced when dependencies are built.
