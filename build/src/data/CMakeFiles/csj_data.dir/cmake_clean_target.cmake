file(REMOVE_RECURSE
  "libcsj_data.a"
)
