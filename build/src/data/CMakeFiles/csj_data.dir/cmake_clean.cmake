file(REMOVE_RECURSE
  "CMakeFiles/csj_data.dir/case_studies.cc.o"
  "CMakeFiles/csj_data.dir/case_studies.cc.o.d"
  "CMakeFiles/csj_data.dir/categories.cc.o"
  "CMakeFiles/csj_data.dir/categories.cc.o.d"
  "CMakeFiles/csj_data.dir/community_sampler.cc.o"
  "CMakeFiles/csj_data.dir/community_sampler.cc.o.d"
  "CMakeFiles/csj_data.dir/generator.cc.o"
  "CMakeFiles/csj_data.dir/generator.cc.o.d"
  "CMakeFiles/csj_data.dir/io.cc.o"
  "CMakeFiles/csj_data.dir/io.cc.o.d"
  "CMakeFiles/csj_data.dir/stats.cc.o"
  "CMakeFiles/csj_data.dir/stats.cc.o.d"
  "libcsj_data.a"
  "libcsj_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csj_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
