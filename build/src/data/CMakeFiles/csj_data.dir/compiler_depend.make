# Empty compiler generated dependencies file for csj_data.
# This may be replaced when dependencies are built.
