
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/case_studies.cc" "src/data/CMakeFiles/csj_data.dir/case_studies.cc.o" "gcc" "src/data/CMakeFiles/csj_data.dir/case_studies.cc.o.d"
  "/root/repo/src/data/categories.cc" "src/data/CMakeFiles/csj_data.dir/categories.cc.o" "gcc" "src/data/CMakeFiles/csj_data.dir/categories.cc.o.d"
  "/root/repo/src/data/community_sampler.cc" "src/data/CMakeFiles/csj_data.dir/community_sampler.cc.o" "gcc" "src/data/CMakeFiles/csj_data.dir/community_sampler.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/csj_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/csj_data.dir/generator.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/csj_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/csj_data.dir/io.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/data/CMakeFiles/csj_data.dir/stats.cc.o" "gcc" "src/data/CMakeFiles/csj_data.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/csj_core_types.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/csj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
