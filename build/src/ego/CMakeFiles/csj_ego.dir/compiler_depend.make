# Empty compiler generated dependencies file for csj_ego.
# This may be replaced when dependencies are built.
