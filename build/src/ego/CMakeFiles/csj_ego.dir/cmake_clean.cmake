file(REMOVE_RECURSE
  "CMakeFiles/csj_ego.dir/dimension_reorder.cc.o"
  "CMakeFiles/csj_ego.dir/dimension_reorder.cc.o.d"
  "CMakeFiles/csj_ego.dir/ego_join.cc.o"
  "CMakeFiles/csj_ego.dir/ego_join.cc.o.d"
  "CMakeFiles/csj_ego.dir/integer_grid.cc.o"
  "CMakeFiles/csj_ego.dir/integer_grid.cc.o.d"
  "CMakeFiles/csj_ego.dir/normalized.cc.o"
  "CMakeFiles/csj_ego.dir/normalized.cc.o.d"
  "libcsj_ego.a"
  "libcsj_ego.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csj_ego.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
