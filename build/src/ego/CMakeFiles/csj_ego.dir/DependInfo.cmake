
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ego/dimension_reorder.cc" "src/ego/CMakeFiles/csj_ego.dir/dimension_reorder.cc.o" "gcc" "src/ego/CMakeFiles/csj_ego.dir/dimension_reorder.cc.o.d"
  "/root/repo/src/ego/ego_join.cc" "src/ego/CMakeFiles/csj_ego.dir/ego_join.cc.o" "gcc" "src/ego/CMakeFiles/csj_ego.dir/ego_join.cc.o.d"
  "/root/repo/src/ego/integer_grid.cc" "src/ego/CMakeFiles/csj_ego.dir/integer_grid.cc.o" "gcc" "src/ego/CMakeFiles/csj_ego.dir/integer_grid.cc.o.d"
  "/root/repo/src/ego/normalized.cc" "src/ego/CMakeFiles/csj_ego.dir/normalized.cc.o" "gcc" "src/ego/CMakeFiles/csj_ego.dir/normalized.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/csj_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/csj_core_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
