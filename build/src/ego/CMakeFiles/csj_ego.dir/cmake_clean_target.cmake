file(REMOVE_RECURSE
  "libcsj_ego.a"
)
