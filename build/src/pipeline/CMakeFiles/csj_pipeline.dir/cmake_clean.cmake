file(REMOVE_RECURSE
  "CMakeFiles/csj_pipeline.dir/screening.cc.o"
  "CMakeFiles/csj_pipeline.dir/screening.cc.o.d"
  "libcsj_pipeline.a"
  "libcsj_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csj_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
