# Empty dependencies file for csj_pipeline.
# This may be replaced when dependencies are built.
