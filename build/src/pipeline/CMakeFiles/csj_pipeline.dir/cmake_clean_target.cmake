file(REMOVE_RECURSE
  "libcsj_pipeline.a"
)
