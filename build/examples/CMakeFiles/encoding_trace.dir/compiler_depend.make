# Empty compiler generated dependencies file for encoding_trace.
# This may be replaced when dependencies are built.
