file(REMOVE_RECURSE
  "CMakeFiles/encoding_trace.dir/encoding_trace.cpp.o"
  "CMakeFiles/encoding_trace.dir/encoding_trace.cpp.o.d"
  "encoding_trace"
  "encoding_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
