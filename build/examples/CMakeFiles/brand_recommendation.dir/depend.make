# Empty dependencies file for brand_recommendation.
# This may be replaced when dependencies are built.
