file(REMOVE_RECURSE
  "CMakeFiles/brand_recommendation.dir/brand_recommendation.cpp.o"
  "CMakeFiles/brand_recommendation.dir/brand_recommendation.cpp.o.d"
  "brand_recommendation"
  "brand_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brand_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
