file(REMOVE_RECURSE
  "CMakeFiles/live_membership.dir/live_membership.cpp.o"
  "CMakeFiles/live_membership.dir/live_membership.cpp.o.d"
  "live_membership"
  "live_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
