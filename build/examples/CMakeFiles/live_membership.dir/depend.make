# Empty dependencies file for live_membership.
# This may be replaced when dependencies are built.
