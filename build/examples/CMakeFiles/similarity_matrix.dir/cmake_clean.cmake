file(REMOVE_RECURSE
  "CMakeFiles/similarity_matrix.dir/similarity_matrix.cpp.o"
  "CMakeFiles/similarity_matrix.dir/similarity_matrix.cpp.o.d"
  "similarity_matrix"
  "similarity_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
