# Empty compiler generated dependencies file for similarity_matrix.
# This may be replaced when dependencies are built.
