file(REMOVE_RECURSE
  "CMakeFiles/csj_cli.dir/csj_cli.cc.o"
  "CMakeFiles/csj_cli.dir/csj_cli.cc.o.d"
  "csj_cli"
  "csj_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csj_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
