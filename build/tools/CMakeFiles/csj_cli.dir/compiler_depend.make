# Empty compiler generated dependencies file for csj_cli.
# This may be replaced when dependencies are built.
