#!/bin/sh
# CI-style performance smoke gate: builds a Release tree, runs a small
# bench_pipeline sweep at pipeline_threads {1,4} (plus the single-couple
# join_threads and matching_threads sweeps), and FAILS when the JSON
# reports a scaling regression (threads=4 slower than threads=1 beyond
# the bench's 10% noise margin) or any report-identity mismatch. This is the check that
# keeps "parallelism going backwards" out of BENCH_pipeline.json instead
# of buried in it. Also runs the serve_smoke gate: csj_serve at low load
# must complete every request with zero rejects and emit a parseable
# latency report. The prescreen_smoke gate then proves the signature
# prescreen end to end: on a small catalog (where most queries take the
# exhaustive fallback) and on a 100k-entry catalog (where almost none
# do), the prescreen arm must return byte-identical rankings to the
# exhaustive scan, probe under 10% of the big catalog, and beat the scan
# arm's wall clock — the sub-linear candidate generation either pays for
# itself or the gate fails. The populate_smoke gate holds the bulk-load
# ingestion pipeline to its contract on the same 100k catalog: state
# byte-identical to a sequential Upsert replay, the pack prefilter
# actually skipping packs, and bulk >= 2x faster than sequential (timing
# leg retried once against CI noise). Finally the net_smoke gate drives the whole
# networked stack over loopback with the versioned result cache on: zero
# rejects and decode/transport errors, both identity gates (cached arm
# and net arm byte-identical to direct recompute), a >= 50% cache hit
# rate under zipf-skewed traffic, and cache-hit p99 strictly below the
# compute p99 — the cache either pays for itself or the gate fails. The
# evolve_smoke gate closes with the evolution subsystem: csj_evolve
# replays a seeded drift trace against the live catalog and requires the
# maintained rankings byte-identical to fresh recomputes at every quiesce
# point, exact triggers, a nonzero trigger count, and the maintained path
# cheaper than recomputing (timing leg retried once against CI noise).
# The persist_smoke gate closes with the memory-mapped store: the 100k
# catalog checkpoints to a sealed segment, the serve loop's churn flows
# through the mutation log, and a cold reopen must restore deep-identical
# state at >= 5x the populate wall clock (timing leg retried once), with
# csj_fsck auditing the surviving store clean in deep mode.
#
# Usage:
#   tools/ci_perf_smoke.sh [build-dir]          build + sweep + check
#                                               (default: build-perf)
#   tools/ci_perf_smoke.sh --check-json FILE    only check an existing
#                                               bench_pipeline JSON
set -eu

check_json() {
  json_file="$1"
  if [ ! -f "${json_file}" ]; then
    echo "error: ${json_file} not found" >&2
    exit 1
  fi
  # The writer emits compact JSON ('"key":false'); tolerate pretty-printed
  # files too ('"key": false') — a strict-space pattern silently never
  # matches and turns the gate into a no-op.
  fail=0
  if grep -Eq '"scaling_ok": ?false' "${json_file}"; then
    echo "FAIL: scaling_ok=false in ${json_file} (pipeline_threads=4 slower than 1)" >&2
    fail=1
  fi
  if grep -Eq '"join_scaling_ok": ?false' "${json_file}"; then
    echo "FAIL: join_scaling_ok=false in ${json_file} (join_threads=4 slower than serial)" >&2
    fail=1
  fi
  if grep -Eq '"matching_scaling_ok": ?false' "${json_file}"; then
    echo "FAIL: matching_scaling_ok=false in ${json_file} (matching_threads=4 slower than inline flush)" >&2
    fail=1
  fi
  if grep -Eq '"report_identical": ?false' "${json_file}"; then
    echo "FAIL: report_identical=false in ${json_file} (a parallel run diverged from serial)" >&2
    fail=1
  fi
  if grep -Eq '"arms_agree": ?false' "${json_file}"; then
    echo "FAIL: arms_agree=false in ${json_file} (screen+refine missed an exact winner)" >&2
    fail=1
  fi
  if [ "${fail}" -ne 0 ]; then
    exit 1
  fi
  echo "perf smoke check passed: ${json_file}"
}

if [ "${1:-}" = "--check-json" ]; then
  check_json "${2:?usage: ci_perf_smoke.sh --check-json FILE}"
  exit 0
fi

build_dir="${1:-build-perf}"

cmake -B "${build_dir}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DCSJ_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j --target bench_pipeline csj_serve csj_evolve csj_fsck

git_sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
json_out="${build_dir}/perf_smoke.json"

# Small enough to finish in seconds, large enough that the parallel paths
# genuinely run (multiple couples per worker, multiple chunks per join).
"${build_dir}/bench/bench_pipeline" \
  --size=1200 --candidates=10 --allpairs=8 \
  --pipeline_threads=1,4 --join_threads=1,4 --matching_threads=1,4 \
  --json="${json_out}" \
  --git_sha="${git_sha}" --build_type=Release

check_json "${json_out}"

# serve_smoke: the serving subsystem end to end at LOW load (clients <
# workers, roomy queue) — every request must complete, zero rejects, and
# the emitted report must carry the latency percentiles. csj_serve exits
# non-zero itself when serve_ok is false; the greps keep the gate honest
# against report-schema drift.
serve_json="${build_dir}/serve_smoke.json"
"${build_dir}/tools/csj_serve" \
  --catalog=12 --size=100 --requests=120 --clients=2 --workers=4 \
  --queue_capacity=64 --upsert_fraction=0.05 \
  --json="${serve_json}" \
  --git_sha="${git_sha}" --build_type=Release
if ! grep -Eq '"rejected": ?0[,}]' "${serve_json}"; then
  echo "FAIL: rejects at low load in ${serve_json}" >&2
  exit 1
fi
if ! grep -Eq '"serve_ok": ?true' "${serve_json}"; then
  echo "FAIL: serve_ok!=true in ${serve_json}" >&2
  exit 1
fi
if ! grep -q '"p99":' "${serve_json}"; then
  echo "FAIL: latency percentiles missing from ${serve_json}" >&2
  exit 1
fi
echo "serve smoke gate passed: ${serve_json}"

# prescreen_smoke, part 1: small catalog. With 24 entries and k=5 the
# candidate set usually cannot certify a full top-k above the threshold,
# so this leg exercises the FALLBACK path; identity must hold anyway
# (csj_serve exits non-zero itself when the compare arms diverge). The
# greps keep the gate honest against report-schema drift: the fallback
# counter must be PRESENT, not merely nonzero.
prescreen_small_json="${build_dir}/prescreen_smoke_small.json"
"${build_dir}/tools/csj_serve" \
  --catalog=24 --size=60 --requests=60 --clients=2 --workers=2 \
  --upsert_fraction=0.05 --prescreen=true --compare=6 \
  --json="${prescreen_small_json}" \
  --git_sha="${git_sha}" --build_type=Release
if ! grep -Eq '"compare_identical": ?true' "${prescreen_small_json}"; then
  echo "FAIL: prescreen diverged from scan in ${prescreen_small_json}" >&2
  exit 1
fi
if ! grep -q '"fallbacks":' "${prescreen_small_json}"; then
  echo "FAIL: fallback accounting missing from ${prescreen_small_json}" >&2
  exit 1
fi

# prescreen_smoke, part 2: the 100k point (the scenario BENCH_serve_large
# is generated from, trimmed to smoke size). Identity is required as
# above, plus the two performance claims: the sweep must admit under 10%
# of the catalog (probed_fraction_ok) and the prescreen arm must finish
# its queries in less wall time than the scan arm (prescreen_faster) —
# both computed by csj_serve from the same compare run.
prescreen_large_json="${build_dir}/prescreen_smoke_large.json"
"${build_dir}/tools/csj_serve" \
  --catalog_size=100000 --size=40 --cluster=12 --plant_lo=0.5 \
  --plant_hi=0.8 --k=5 --requests=40 --clients=2 --workers=2 \
  --zipf=1.1 --upsert_fraction=0 --prescreen=true --compare=4 \
  --json="${prescreen_large_json}" \
  --git_sha="${git_sha}" --build_type=Release
if ! grep -Eq '"compare_identical": ?true' "${prescreen_large_json}"; then
  echo "FAIL: prescreen diverged from scan in ${prescreen_large_json}" >&2
  exit 1
fi
if ! grep -Eq '"probed_fraction_ok": ?true' "${prescreen_large_json}"; then
  echo "FAIL: prescreen probed >= 10% of the 100k catalog in ${prescreen_large_json}" >&2
  exit 1
fi
if ! grep -Eq '"prescreen_faster": ?true' "${prescreen_large_json}"; then
  echo "FAIL: prescreen arm slower than exhaustive scan in ${prescreen_large_json}" >&2
  exit 1
fi
echo "prescreen smoke gate passed: ${prescreen_small_json} ${prescreen_large_json}"

# populate_smoke: the bulk-load ingestion pipeline on the same 100k
# scenario. csj_serve populates one arm, replays the OTHER arm into a
# scratch server with its own cold cache, deep-compares the two catalogs
# (entries, versions, digests, sketch tables, probe verdicts), and
# reports the wall-clock ratio. State identity is a hard gate (csj_serve
# also exits non-zero itself on a mismatch); the >= 2x speedup claim is a
# timing measurement on a shared CI box, so a miss is retried ONCE on a
# fresh run before failing — the same best-of-N stance bench_pipeline
# takes, bounded to one retry so a real regression still fails fast. The
# pack-skip grep proves the second filter level actually fired during the
# serve loop rather than riding along inert.
populate_json="${build_dir}/populate_smoke.json"
run_populate_leg() {
  "${build_dir}/tools/csj_serve" \
    --catalog_size=100000 --size=40 --cluster=12 --plant_lo=0.5 \
    --plant_hi=0.8 --k=5 --requests=20 --clients=2 --workers=2 \
    --zipf=1.1 --upsert_fraction=0 --prescreen=true --compare=0 \
    --populate_compare=true \
    --json="${populate_json}" \
    --git_sha="${git_sha}" --build_type=Release
}
run_populate_leg
if ! grep -Eq '"populate_identical": ?true' "${populate_json}"; then
  echo "FAIL: bulk-loaded catalog diverged from sequential Upsert replay in ${populate_json}" >&2
  exit 1
fi
if ! grep -Eq '"packs_skipped": ?[1-9]' "${populate_json}"; then
  echo "FAIL: pack prefilter never skipped a pack in ${populate_json}" >&2
  exit 1
fi
if ! grep -Eq '"populate_speedup_ok": ?true' "${populate_json}"; then
  echo "populate_smoke: bulk < 2x sequential on first run, retrying once" >&2
  run_populate_leg
  if ! grep -Eq '"populate_identical": ?true' "${populate_json}"; then
    echo "FAIL: bulk-loaded catalog diverged from sequential Upsert replay in ${populate_json}" >&2
    exit 1
  fi
  if ! grep -Eq '"populate_speedup_ok": ?true' "${populate_json}"; then
    echo "FAIL: bulk populate < 2x sequential on both runs in ${populate_json}" >&2
    exit 1
  fi
fi
echo "populate smoke gate passed: ${populate_json}"

# net_smoke: the binary wire protocol + result cache end to end. Every
# request crosses loopback TCP (closed loop AND the identity probes);
# zipf 1.1 traffic repeats hot queries so the versioned cache must reach
# a 50% hit rate, serve hits with a lower p99 than computes, and stay
# byte-identical to direct recompute under 5% upsert churn. csj_serve
# exits non-zero itself when any identity gate fails; the greps keep the
# report schema honest.
net_json="${build_dir}/net_smoke.json"
"${build_dir}/tools/csj_serve" \
  --catalog=24 --size=150 --requests=400 --clients=4 --workers=2 \
  --zipf=1.1 --upsert_fraction=0.05 --result_cache=true --net=true \
  --compare=8 \
  --json="${net_json}" \
  --git_sha="${git_sha}" --build_type=Release
for gate in \
    '"rejected": ?0[,}]' '"decode_errors": ?0[,}]' \
    '"transport_errors": ?0[,}]' '"net_identity": ?true' \
    '"cache_identity": ?true' '"cache_hit_rate_ok": ?true' \
    '"cache_hit_faster": ?true'; do
  if ! grep -Eq "${gate}" "${net_json}"; then
    echo "FAIL: ${gate} not satisfied in ${net_json}" >&2
    exit 1
  fi
done
echo "net smoke gate passed: ${net_json}"

# evolve_smoke: the evolution subsystem end to end. csj_evolve drives a
# seeded drift stream (joins/leaves/decay/births/deaths) through the live
# catalog and compares the TopKMaintainer's rankings against fresh
# recomputes at every quiesce point; it exits non-zero itself on any
# identity or trigger mismatch. The greps hold the report to its claims:
# byte identity, trigger exactness, a trace that actually fired triggers,
# and the maintained path beating recompute wall clock. The last is a
# timing measurement on a shared CI box, so a miss is retried ONCE on a
# fresh run before failing.
evolve_json="${build_dir}/evolve_smoke.json"
run_evolve_leg() {
  "${build_dir}/tools/csj_evolve" \
    --catalog=400 --size=30 --cluster=4 --events=400 --quiesce_every=50 \
    --queries=4 --k=5 --eps=1 \
    --json="${evolve_json}" \
    --git_sha="${git_sha}" --build_type=Release
}
run_evolve_leg
for gate in '"evolve_identical": ?true' '"trigger_exact": ?true' \
            '"triggers_fired": ?[1-9]'; do
  if ! grep -Eq "${gate}" "${evolve_json}"; then
    echo "FAIL: ${gate} not satisfied in ${evolve_json}" >&2
    exit 1
  fi
done
if ! grep -Eq '"maintained_faster": ?true' "${evolve_json}"; then
  echo "evolve_smoke: maintained path slower than recompute on first run, retrying once" >&2
  run_evolve_leg
  for gate in '"evolve_identical": ?true' '"trigger_exact": ?true' \
              '"maintained_faster": ?true'; do
    if ! grep -Eq "${gate}" "${evolve_json}"; then
      echo "FAIL: ${gate} not satisfied in ${evolve_json}" >&2
      exit 1
    fi
  done
fi
echo "evolve smoke gate passed: ${evolve_json}"

# persist_smoke: the memory-mapped store end to end on the same 100k
# scenario. csj_serve populates, logs the serve loop's churn into the
# store, folds it into a sealed generation, then cold-reopens and
# restores into a scratch catalog with its own cold cache; the restored
# state must deep-compare identical (entries, versions, digests, sketch
# tables, probe verdicts) and the warm load must beat a fresh populate
# by >= 5x. Identity is a hard gate (csj_serve also exits non-zero
# itself on a mismatch); the speedup claim is a timing measurement on a
# shared CI box, so a miss is retried ONCE on a fresh run before
# failing. The store directory is recreated per leg so the comparison
# never rides a stale generation. csj_fsck then audits the surviving
# store in deep mode — recomputing digests, sketches, and encodings from
# the mapped payloads — and must exit clean.
persist_json="${build_dir}/persist_smoke.json"
persist_dir="${build_dir}/persist_smoke_store"
run_persist_leg() {
  rm -rf "${persist_dir}"
  "${build_dir}/tools/csj_serve" \
    --catalog_size=100000 --size=40 --cluster=12 --plant_lo=0.5 \
    --plant_hi=0.8 --k=5 --requests=20 --clients=2 --workers=2 \
    --zipf=1.1 --upsert_fraction=0.05 --prescreen=true --compare=0 \
    --store_dir="${persist_dir}" --persist_compare=true \
    --json="${persist_json}" \
    --git_sha="${git_sha}" --build_type=Release
}
run_persist_leg
if ! grep -Eq '"identical": ?true' "${persist_json}"; then
  echo "FAIL: restored store diverged from the live catalog in ${persist_json}" >&2
  exit 1
fi
if ! grep -Eq '"speedup_ok": ?true' "${persist_json}"; then
  echo "persist_smoke: warm load < 5x populate on first run, retrying once" >&2
  run_persist_leg
  if ! grep -Eq '"identical": ?true' "${persist_json}"; then
    echo "FAIL: restored store diverged from the live catalog in ${persist_json}" >&2
    exit 1
  fi
  if ! grep -Eq '"speedup_ok": ?true' "${persist_json}"; then
    echo "FAIL: warm load < 5x populate on both runs in ${persist_json}" >&2
    exit 1
  fi
fi
if ! "${build_dir}/tools/csj_fsck" --dir="${persist_dir}" --deep=true; then
  echo "FAIL: csj_fsck found corruption in ${persist_dir}" >&2
  exit 1
fi
echo "persist smoke gate passed: ${persist_json}"
echo "perf smoke gate passed."
