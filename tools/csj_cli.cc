// csj_cli — command-line front end for the csjoin library.
//
//   csj_cli generate   --family vk --category Sport --size 10000
//                      --seed 7 --out sport.bin
//   csj_cli info       --file sport.bin
//   csj_cli similarity --b small.bin --a big.bin --method Ex-MinMax
//                      --eps 1 [--json] [--pairs 10]
//
// Community files may be .csv (SaveCommunityCsv layout) or the compact
// .bin format; the loader is chosen by extension.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/encoding_cache.h"
#include "core/method.h"
#include "core/similarity.h"
#include "data/categories.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/stats.h"
#include "pipeline/screening.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using csj::util::Flags;

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

std::optional<csj::Community> LoadAny(const std::string& path) {
  if (EndsWith(path, ".csv")) return csj::data::LoadCommunityCsv(path);
  return csj::data::LoadCommunityBinary(path);
}

bool SaveAny(const csj::Community& community, const std::string& path) {
  if (EndsWith(path, ".csv")) {
    return csj::data::SaveCommunityCsv(community, path);
  }
  return csj::data::SaveCommunityBinary(community, path);
}

int RunGenerate(int argc, char** argv) {
  Flags flags;
  flags.Define("family", "vk", "dataset family: vk | synthetic");
  flags.Define("category", "Entertainment",
               "home category (Table 1 spelling) for the vk family");
  flags.Define("size", "10000", "number of users");
  flags.Define("seed", "1", "generator seed");
  flags.Define("name", "", "community name (defaults to the category)");
  flags.Define("out", "community.bin", "output path (.bin or .csv)");
  if (!flags.Parse(argc, argv)) return 1;

  const std::string family = flags.GetString("family");
  const auto size = static_cast<uint32_t>(flags.GetInt("size"));
  csj::util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  csj::Community community(csj::data::kNumCategories);
  std::string name = flags.GetString("name");
  if (family == "vk") {
    const auto category = csj::data::ParseCategory(flags.GetString("category"));
    if (!category.has_value()) {
      std::fprintf(stderr, "unknown category '%s'\n",
                   flags.GetString("category").c_str());
      return 1;
    }
    csj::data::VkLikeGenerator generator(*category);
    if (name.empty()) name = csj::data::CategoryName(*category);
    community = MakeCommunity(generator, size, rng, name);
  } else if (family == "synthetic") {
    csj::data::UniformGenerator generator(csj::data::kNumCategories,
                                          csj::data::kSyntheticMaxCounter);
    if (name.empty()) name = "synthetic";
    community = MakeCommunity(generator, size, rng, name);
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 1;
  }

  const std::string out = flags.GetString("out");
  if (!SaveAny(community, out)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s users (d = %u) to %s\n",
              csj::util::WithCommas(community.size()).c_str(), community.d(),
              out.c_str());
  return 0;
}

int RunInfo(int argc, char** argv) {
  Flags flags;
  flags.Define("file", "", "community file to inspect (.bin or .csv)");
  if (!flags.Parse(argc, argv)) return 1;
  const auto community = LoadAny(flags.GetString("file"));
  if (!community.has_value()) {
    std::fprintf(stderr, "failed to load %s\n",
                 flags.GetString("file").c_str());
    return 1;
  }
  std::printf("name:        %s\n", community->name().c_str());
  std::printf("users:       %s\n",
              csj::util::WithCommas(community->size()).c_str());
  std::printf("dimensions:  %u\n", community->d());
  std::printf("max counter: %s\n",
              csj::util::WithCommas(community->MaxCounter()).c_str());
  if (community->d() == csj::data::kNumCategories) {
    const auto ranked = csj::data::RankCategories(*community);
    std::printf("top categories by total likes:\n");
    for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
      std::printf("  %zu. %-24s %s\n", i + 1,
                  csj::data::CategoryName(ranked[i].category),
                  csj::util::WithCommas(ranked[i].total_likes).c_str());
    }
  }
  return 0;
}

int RunSimilarity(int argc, char** argv) {
  Flags flags;
  flags.Define("b", "", "the less-followed community's file");
  flags.Define("a", "", "the more-followed community's file");
  flags.Define("method", "Ex-MinMax",
               "one of the paper's methods or Ap-/Ex-MinMaxEGO");
  flags.Define("eps", "1", "per-dimension absolute-difference threshold");
  flags.Define("parts", "4", "MinMax encoding parts");
  flags.Define("matcher", "csf", "exact-method matcher: csf | maximum");
  flags.Define("join_threads", "1",
               "threads inside the join's scan+verify phase (0 = all "
               "cores; any value gives identical results)");
  flags.Define("json", "false", "emit a JSON report instead of text");
  flags.Define("pairs", "0", "print up to N matched pairs");
  if (!flags.Parse(argc, argv)) return 1;

  const auto method = csj::ParseMethod(flags.GetString("method"));
  if (!method.has_value()) {
    std::fprintf(stderr, "unknown method '%s'\n",
                 flags.GetString("method").c_str());
    return 1;
  }
  const auto b = LoadAny(flags.GetString("b"));
  const auto a = LoadAny(flags.GetString("a"));
  if (!b.has_value() || !a.has_value()) {
    std::fprintf(stderr, "failed to load input communities\n");
    return 1;
  }

  csj::JoinOptions options;
  options.eps = static_cast<csj::Epsilon>(flags.GetInt("eps"));
  options.encoding_parts = static_cast<uint32_t>(flags.GetInt("parts"));
  options.matcher = flags.GetString("matcher") == "maximum"
                        ? csj::matching::MatcherKind::kMaxMatching
                        : csj::matching::MatcherKind::kCsf;
  const auto join_threads =
      static_cast<uint32_t>(flags.GetInt("join_threads"));
  options.join_threads = join_threads == 0
                             ? csj::util::ThreadPool::DefaultThreads()
                             : join_threads;

  const auto result = csj::ComputeSimilarityAutoOrder(*method, *b, *a,
                                                      options);
  if (!result.has_value()) {
    std::fprintf(stderr,
                 "couple is not admissible: CSJ requires ceil(|A|/2) <= "
                 "|B| <= |A| (got %u and %u)\n",
                 b->size(), a->size());
    return 1;
  }

  const auto show_pairs = static_cast<size_t>(flags.GetInt("pairs"));
  if (flags.GetBool("json")) {
    csj::util::JsonWriter json;
    json.BeginObject();
    json.Key("method");
    json.String(result->method);
    json.Key("similarity");
    json.Double(result->Similarity());
    json.Key("matched_pairs");
    json.Uint(result->pairs.size());
    json.Key("size_b");
    json.Uint(result->size_b);
    json.Key("seconds");
    json.Double(result->stats.seconds);
    json.Key("stats");
    json.BeginObject();
    json.Key("min_prunes");
    json.Uint(result->stats.min_prunes);
    json.Key("max_prunes");
    json.Uint(result->stats.max_prunes);
    json.Key("no_overlaps");
    json.Uint(result->stats.no_overlaps);
    json.Key("dimension_compares");
    json.Uint(result->stats.dimension_compares);
    json.Key("candidate_pairs");
    json.Uint(result->stats.candidate_pairs);
    json.Key("csf_flushes");
    json.Uint(result->stats.csf_flushes);
    json.EndObject();
    json.Key("pairs");
    json.BeginArray();
    for (size_t i = 0; i < result->pairs.size() && i < show_pairs; ++i) {
      json.BeginObject();
      json.Key("b");
      json.Uint(result->pairs[i].b);
      json.Key("a");
      json.Uint(result->pairs[i].a);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    std::printf("%s\n", json.Take().c_str());
    return 0;
  }

  std::printf("%s: similarity(%s, %s) = %s  (%zu pairs, %s)\n",
              result->method.c_str(), b->name().c_str(), a->name().c_str(),
              csj::util::Percent(result->Similarity()).c_str(),
              result->pairs.size(),
              csj::util::SecondsCell(result->stats.seconds).c_str());
  for (size_t i = 0; i < result->pairs.size() && i < show_pairs; ++i) {
    std::printf("  <b%u, a%u>\n", result->pairs[i].b, result->pairs[i].a);
  }
  return 0;
}

int RunPipeline(int argc, char** argv) {
  Flags flags;
  flags.Define("pivot", "", "the pivot community's file");
  flags.Define("candidates", "",
               "comma-separated candidate community files");
  flags.Define("threshold", "0.15", "screen threshold (fraction)");
  flags.Define("eps", "1", "per-dimension threshold");
  flags.Define("screen", "Ap-SuperEGO", "screening method");
  flags.Define("refine", "Ex-MinMax", "refinement method");
  flags.Define("threads", "1",
               "couples screened/refined concurrently (0 = all cores)");
  flags.Define("join_threads", "1",
               "threads inside each join, budgeted against --threads "
               "(0 = all cores; any value gives identical reports)");
  flags.Define("cache", "true",
               "share encoded buffers between screen and refine");
  flags.Define("cache_mb", "0",
               "encoding-cache budget in MiB (0 = unlimited)");
  if (!flags.Parse(argc, argv)) return 1;

  const auto pivot = LoadAny(flags.GetString("pivot"));
  if (!pivot.has_value()) {
    std::fprintf(stderr, "failed to load pivot\n");
    return 1;
  }
  std::vector<csj::Community> loaded;
  std::string list = flags.GetString("candidates");
  size_t start = 0;
  while (start < list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string path = list.substr(start, comma - start);
    start = comma + 1;
    if (path.empty()) continue;
    auto community = LoadAny(path);
    if (!community.has_value()) {
      std::fprintf(stderr, "failed to load candidate %s\n", path.c_str());
      return 1;
    }
    if (community->name().empty()) community->set_name(path);
    loaded.push_back(std::move(*community));
  }
  if (loaded.empty()) {
    std::fprintf(stderr, "no candidates given\n");
    return 1;
  }

  const auto screen = csj::ParseMethod(flags.GetString("screen"));
  const auto refine = csj::ParseMethod(flags.GetString("refine"));
  if (!screen.has_value() || !refine.has_value()) {
    std::fprintf(stderr, "unknown screen/refine method\n");
    return 1;
  }
  csj::pipeline::PipelineOptions options;
  options.screen_method = *screen;
  options.refine_method = *refine;
  options.screen_threshold = flags.GetDouble("threshold");
  options.join.eps = static_cast<csj::Epsilon>(flags.GetInt("eps"));
  const auto threads = static_cast<uint32_t>(flags.GetInt("threads"));
  options.pipeline_threads =
      threads == 0 ? csj::util::ThreadPool::DefaultThreads() : threads;
  const auto join_threads =
      static_cast<uint32_t>(flags.GetInt("join_threads"));
  options.join.join_threads =
      join_threads == 0 ? csj::util::ThreadPool::DefaultThreads()
                        : join_threads;

  std::optional<csj::EncodingCache> cache;
  if (flags.GetBool("cache")) {
    cache.emplace(static_cast<size_t>(flags.GetInt("cache_mb")) * 1024 *
                  1024);
    options.cache = &*cache;
  }

  std::vector<const csj::Community*> pointers;
  for (const csj::Community& c : loaded) pointers.push_back(&c);
  const csj::pipeline::PipelineReport report =
      ScreenAndRefine(*pivot, pointers, options);

  std::printf(
      "screened %u, refined %u, bound-pruned %u, inadmissible %u (%s)\n",
      report.screened, report.refined, report.bound_pruned,
      report.inadmissible,
      csj::util::SecondsCell(report.total_seconds).c_str());
  if (cache.has_value()) {
    const csj::EncodingCache::Stats cache_stats = cache->GetStats();
    const uint64_t lookups = report.cache_hits + report.cache_misses;
    std::printf(
        "cache: %" PRIu64 " hits / %" PRIu64 " lookups (%.1f%%), "
        "%s entries, %.1f MiB resident\n",
        report.cache_hits, lookups,
        lookups == 0 ? 0.0
                     : 100.0 * static_cast<double>(report.cache_hits) /
                           static_cast<double>(lookups),
        csj::util::WithCommas(cache_stats.entries).c_str(),
        static_cast<double>(cache_stats.bytes) / (1024.0 * 1024.0));
  }
  for (const csj::pipeline::PipelineEntry& entry : report.entries) {
    if (entry.refined) {
      std::printf("  %-32s exact  %s\n", entry.candidate_name.c_str(),
                  csj::util::Percent(entry.refined_similarity).c_str());
    } else {
      std::printf("  %-32s screen %s (below threshold)\n",
                  entry.candidate_name.c_str(),
                  csj::util::Percent(entry.screened_similarity).c_str());
    }
  }
  return 0;
}

void PrintUsage() {
  std::fputs(
      "usage: csj_cli <command> [flags]\n"
      "commands:\n"
      "  generate    build a community dataset file\n"
      "  info        inspect a community file\n"
      "  similarity  run a CSJ method on two community files\n"
      "  pipeline    screen-then-refine a pivot against many candidates\n"
      "run 'csj_cli <command> --help' for per-command flags\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so each command parses only its own flags.
  argv[1] = argv[0];
  if (command == "generate") return RunGenerate(argc - 1, argv + 1);
  if (command == "info") return RunInfo(argc - 1, argv + 1);
  if (command == "similarity") return RunSimilarity(argc - 1, argv + 1);
  if (command == "pipeline") return RunPipeline(argc - 1, argv + 1);
  PrintUsage();
  return 1;
}
