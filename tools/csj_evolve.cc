// csj_evolve — long-horizon continuous community evolution driver.
//
// Builds a seeded drift scenario (per-community user join/leave streams,
// counter decay, community birth/death) over a ServeWorkload catalog,
// registers standing top-k queries with the TopKMaintainer, and replays
// the trace epoch by epoch. At every refresh point the maintained
// ranking is compared BYTE-FOR-BYTE against a fresh
// TopKSimilarService::Query recompute, and the maintainer's triggers are
// cross-checked against the observed fresh-ranking diffs (no missed, no
// spurious). The run measures staleness-vs-recompute cost: events
// applied, triggers fired, maintained vs fresh wall time, and the
// maximum ranking staleness window (drift events a changed ranking had
// accumulated before its refresh observed the change).
//
//   ./csj_evolve --catalog_size=400 --size=30 --events=300
//                --quiesce_every=50 --queries=4 --k=5
//                --json=BENCH_evolve.json
//
// Identity or trigger-exactness failures exit nonzero — this driver is a
// correctness gate first and a benchmark second.

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/encoding_cache.h"
#include "core/method.h"
#include "core/signature.h"
#include "evolve/drift.h"
#include "evolve/maintainer.h"
#include "persist/store.h"
#include "service/deep_compare.h"
#include "service/result_cache.h"
#include "service/topk.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

/// Trigger semantics projection: ranked (id, similarity) pairs only.
bool SameRankingMeaning(const std::vector<csj::service::TopKEntry>& x,
                        const std::vector<csj::service::TopKEntry>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].id != y[i].id || x[i].similarity != y[i].similarity) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("catalog", "400", "seeded catalog entries");
  flags.Define("catalog_size", "0", "alias of --catalog (wins when > 0)");
  flags.Define("size", "30", "mean users per community");
  flags.Define("cluster", "4", "communities per topical cluster");
  flags.Define("plant_lo", "0.15", "cluster-member plant band, low edge");
  flags.Define("plant_hi", "0.35", "cluster-member plant band, high edge");
  flags.Define("eps", "1", "per-dimension epsilon");
  flags.Define("method", "Ex-MinMax", "exact refine method");
  flags.Define("k", "5", "top-k result size per standing query");
  flags.Define("queries", "4", "standing queries registered");
  flags.Define("events", "300", "drift events in the trace");
  flags.Define("quiesce_every", "50", "events per epoch (quiesce cadence)");
  flags.Define("refresh_every", "1",
               "epochs between maintainer refreshes (larger = staler "
               "rankings, fewer refreshes)");
  flags.Define("decay_factor", "0.9", "counter decay multiplier");
  flags.Define("sessions", "true",
               "maintain live IncrementalCsj anchor sessions for drifting "
               "communities");
  flags.Define("prescreen", "false",
               "serve fallback/fresh recomputes through the signature "
               "prescreen index");
  flags.Define("prescreen_threshold", "0.1",
               "prescreen admission threshold tau");
  flags.Define("log_capacity", "1048576",
               "catalog mutation-log retention (records)");
  flags.Define("result_cache", "false",
               "publish stable maintained rankings into a versioned "
               "result cache");
  flags.Define("store_dir", "",
               "persistent store directory (empty = RAM only); every "
               "quiesced mutation appends to the durable log");
  flags.Define("checkpoint_every", "0",
               "epochs between mid-run checkpoints at quiesce points "
               "(the catalog is quiescent there by construction; 0 = "
               "seal only the base catalog and the final state)");
  flags.Define("warm_restart", "true",
               "after the run: re-open the sealed store cold, restore "
               "into a scratch catalog and deep-verify the drifted "
               "catalog comes back byte-identical (only meaningful with "
               "--store_dir)");
  flags.Define("seed", "42", "workload (catalog) seed");
  flags.Define("drift_seed", "99", "drift stream seed");
  flags.Define("json", "", "write the results as JSON to this path");
  flags.Define("git_sha", "", "source revision stamped into the JSON");
  flags.Define("build_type", "", "CMake build type stamped into the JSON");
  if (!flags.Parse(argc, argv)) return 1;

  const auto method = csj::ParseMethod(flags.GetString("method"));
  if (!method.has_value() || !csj::IsExact(*method)) {
    std::fprintf(stderr, "--method must name an exact (Ex-*) method\n");
    return 1;
  }
  const bool prescreen = flags.GetBool("prescreen");
  const bool use_result_cache = flags.GetBool("result_cache");
  const auto query_count =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("queries")));
  const auto refresh_every = std::max<uint32_t>(
      1, static_cast<uint32_t>(flags.GetInt("refresh_every")));

  csj::evolve::DriftOptions drift;
  drift.base.catalog_size = std::max<uint32_t>(
      4, static_cast<uint32_t>(flags.GetInt("catalog_size") > 0
                                   ? flags.GetInt("catalog_size")
                                   : flags.GetInt("catalog")));
  drift.base.community_size =
      std::max<uint32_t>(16, static_cast<uint32_t>(flags.GetInt("size")));
  drift.base.cluster_size =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("cluster")));
  drift.base.plant_lo = flags.GetDouble("plant_lo");
  drift.base.plant_hi = flags.GetDouble("plant_hi");
  drift.base.eps = static_cast<csj::Epsilon>(flags.GetInt("eps"));
  drift.base.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  drift.events =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("events")));
  drift.quiesce_every = std::max<uint32_t>(
      1, static_cast<uint32_t>(flags.GetInt("quiesce_every")));
  drift.decay_factor = flags.GetDouble("decay_factor");
  drift.seed = static_cast<uint64_t>(flags.GetInt("drift_seed"));

  std::printf("building drift model: %u communities, %u events...\n",
              drift.base.catalog_size, drift.events);
  csj::util::Timer build_timer;
  csj::evolve::DriftModel model(drift);
  const double model_seconds = build_timer.Seconds();

  csj::EncodingCache cache;
  csj::service::CommunityCatalog::Options catalog_options;
  catalog_options.cache = &cache;
  catalog_options.warm_eps = drift.base.eps;
  catalog_options.mutation_log_capacity = std::max<size_t>(
      1, static_cast<size_t>(flags.GetInt("log_capacity")));
  if (prescreen) catalog_options.signatures = csj::SignatureOptions{};
  csj::service::CommunityCatalog catalog(catalog_options);
  csj::service::TopKSimilarService service(&catalog);
  csj::service::TopKResultCache result_cache;

  build_timer.Reset();
  csj::evolve::DriftReplayer::Options replay_options;
  replay_options.session_join.eps = drift.base.eps;
  replay_options.session_join.cache = &cache;
  replay_options.anchor_sessions = flags.GetBool("sessions");
  csj::evolve::DriftReplayer replayer(&model, &catalog, replay_options);
  const double populate_seconds = build_timer.Seconds();
  std::printf("model %.2fs, populate %.2fs, %u epochs\n", model_seconds,
              populate_seconds, model.epochs());

  // Persistence: seal the base catalog, then log every quiesced
  // mutation. DriftReplayer only writes the catalog inside Quiesce, so
  // epoch boundaries are quiesce points — exactly where Checkpoint is
  // allowed to fold the log into a new sealed generation.
  const std::string store_dir = flags.GetString("store_dir");
  const auto checkpoint_every =
      static_cast<uint32_t>(std::max<int64_t>(0,
                                              flags.GetInt("checkpoint_every")));
  const bool warm_restart = flags.GetBool("warm_restart");
  std::unique_ptr<csj::persist::Store> store;
  uint64_t checkpoints = 0;
  double save_seconds = 0.0;
  if (!store_dir.empty()) {
    csj::persist::StoreOptions store_options;
    store_options.dir = store_dir;
    std::string store_error;
    store = csj::persist::Store::Open(store_options, &store_error);
    if (store == nullptr) {
      std::fprintf(stderr, "store open failed: %s\n", store_error.c_str());
      return 1;
    }
    csj::persist::CheckpointStats base_stats;
    if (!store->Checkpoint(catalog, &store_error, &base_stats)) {
      std::fprintf(stderr, "base checkpoint failed: %s\n",
                   store_error.c_str());
      return 1;
    }
    ++checkpoints;
    save_seconds += base_stats.snapshot_seconds + base_stats.write_seconds +
                    base_stats.commit_seconds;
    if (!store->StartLogging(&catalog, &store_error)) {
      std::fprintf(stderr, "log attach failed: %s\n", store_error.c_str());
      return 1;
    }
  }

  csj::service::TopKOptions topk;
  topk.k = std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("k")));
  topk.method = *method;
  topk.join.eps = drift.base.eps;
  topk.join.cache = &cache;
  topk.prescreen = prescreen;
  topk.prescreen_threshold = flags.GetDouble("prescreen_threshold");

  csj::evolve::TopKMaintainer::Options maintainer_options;
  maintainer_options.service = &service;
  maintainer_options.result_cache = use_result_cache ? &result_cache : nullptr;
  csj::evolve::TopKMaintainer maintainer(&catalog, maintainer_options);

  std::atomic<uint64_t> subscriber_triggers{0};
  maintainer.Subscribe([&](const csj::evolve::TriggerEvent&) {
    subscriber_triggers.fetch_add(1, std::memory_order_relaxed);
  });

  // Standing query pivots, spread across the base pool. The pivot buffers
  // are the ORIGINAL seeded bytes — the catalog drifts away underneath
  // them, which is exactly the "brand tracking its audience" framing.
  const auto& communities = model.workload().communities();
  std::vector<std::shared_ptr<const csj::Community>> pivots;
  for (uint32_t q = 0; q < query_count; ++q) {
    const size_t index =
        (static_cast<size_t>(q) * communities.size()) / query_count;
    pivots.push_back(communities[index]);
    maintainer.Register(communities[index], topk);
  }

  // Baselines (full recomputes by definition; excluded from the
  // maintained-vs-fresh cost comparison, which measures steady state).
  maintainer.RefreshAll();
  std::vector<std::vector<csj::service::TopKEntry>> fresh_prev(query_count);
  bool identity = true;
  for (uint32_t q = 0; q < query_count; ++q) {
    fresh_prev[q] = service.Query(*pivots[q], topk).entries;
    identity = identity && (maintainer.Ranking(q) == fresh_prev[q]);
  }
  if (!identity) std::fprintf(stderr, "BASELINE IDENTITY MISMATCH\n");

  // Epoch loop.
  bool trigger_exact = true;
  uint64_t triggers_fired = 0;
  uint64_t refresh_points = 0;
  double maintained_seconds = 0.0;
  double fresh_seconds = 0.0;
  double drift_seconds = 0.0;
  uint64_t max_staleness_events = 0;
  uint64_t installs = 0, removes = 0, births = 0, deaths = 0;
  uint64_t joins = 0, leaves = 0, decays = 0, noop_decays = 0;
  uint64_t session_rebuilds = 0;
  std::vector<uint64_t> events_since_refresh(query_count, 0);
  csj::util::Timer run_timer;

  for (uint32_t e = 0; e < model.epochs(); ++e) {
    const csj::evolve::EpochStats epoch = replayer.ApplyEpoch(e);
    drift_seconds += epoch.apply_seconds;
    installs += epoch.installs;
    removes += epoch.removes;
    births += epoch.births;
    deaths += epoch.deaths;
    joins += epoch.joins;
    leaves += epoch.leaves;
    decays += epoch.decays;
    noop_decays += epoch.noop_decays;
    session_rebuilds += epoch.session_rebuilds;
    for (auto& pending : events_since_refresh) pending += epoch.events;

    // Quiesce points double as checkpoint sites: Quiesce() just
    // returned, so no mutation is in flight and the log can roll.
    if (store != nullptr && checkpoint_every > 0 &&
        (e + 1) % checkpoint_every == 0 && e + 1 != model.epochs()) {
      std::string store_error;
      csj::persist::CheckpointStats epoch_checkpoint;
      if (!store->Checkpoint(catalog, &store_error, &epoch_checkpoint)) {
        std::fprintf(stderr, "checkpoint failed at epoch %u: %s\n", e,
                     store_error.c_str());
        return 1;
      }
      ++checkpoints;
      save_seconds += epoch_checkpoint.snapshot_seconds +
                      epoch_checkpoint.write_seconds +
                      epoch_checkpoint.commit_seconds;
    }

    const bool refresh_now =
        ((e + 1) % refresh_every == 0) || (e + 1 == model.epochs());
    if (!refresh_now) continue;
    ++refresh_points;

    for (uint32_t q = 0; q < query_count; ++q) {
      csj::util::Timer timer;
      const auto outcome = maintainer.Refresh(q);
      maintained_seconds += timer.Seconds();
      if (outcome.changed) {
        ++triggers_fired;
        max_staleness_events =
            std::max(max_staleness_events, events_since_refresh[q]);
      }
      events_since_refresh[q] = 0;

      timer.Reset();
      const auto fresh = service.Query(*pivots[q], topk);
      fresh_seconds += timer.Seconds();

      // Byte-for-byte identity: ids, versions, and similarity bits.
      if (!(maintainer.Ranking(q) == fresh.entries)) {
        identity = false;
        std::fprintf(stderr, "IDENTITY MISMATCH epoch %u query %u\n", e, q);
      }
      // Trigger exactness: fired iff the fresh (id, similarity) ranking
      // moved since this query's previous refresh point.
      const bool fresh_changed = !SameRankingMeaning(fresh_prev[q],
                                                     fresh.entries);
      if (fresh_changed != outcome.changed) {
        trigger_exact = false;
        std::fprintf(stderr,
                     "TRIGGER MISMATCH epoch %u query %u (fired=%d, "
                     "ranking_moved=%d)\n",
                     e, q, outcome.changed ? 1 : 0, fresh_changed ? 1 : 0);
      }
      fresh_prev[q] = fresh.entries;
    }
    if (model.epochs() <= 30 || (e + 1) % 10 == 0 ||
        e + 1 == model.epochs()) {
      std::printf("epoch %u/%u: %u installs, %u removes, triggers so far "
                  "%llu\n",
                  e + 1, model.epochs(), epoch.installs, epoch.removes,
                  static_cast<unsigned long long>(triggers_fired));
    }
  }
  const double run_seconds = run_timer.Seconds();

  const auto stats = maintainer.GetStats();
  const bool triggers_consistent =
      stats.triggers == triggers_fired &&
      subscriber_triggers.load(std::memory_order_relaxed) == triggers_fired;
  const bool maintained_faster = maintained_seconds < fresh_seconds;
  const double speedup =
      maintained_seconds > 0 ? fresh_seconds / maintained_seconds : 0.0;

  // Seal the drifted end state, then prove a cold open restores it
  // byte-identically (the populate-vs-load wall time is what a restart
  // of this driver would skip: model build + base populate + replay).
  bool persist_identical = true;
  double persist_load_seconds = 0.0;
  long persist_minflt = 0;
  long persist_majflt = 0;
  csj::persist::OpenStats reopen_stats;
  if (store != nullptr) {
    std::string store_error;
    store->StopLogging(&catalog);
    csj::persist::CheckpointStats final_checkpoint;
    if (!store->Checkpoint(catalog, &store_error, &final_checkpoint)) {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   store_error.c_str());
      return 1;
    }
    ++checkpoints;
    save_seconds += final_checkpoint.snapshot_seconds +
                    final_checkpoint.write_seconds +
                    final_checkpoint.commit_seconds;
    if (warm_restart) {
      auto reopened = csj::persist::Store::Open(
          csj::persist::StoreOptions{.dir = store_dir}, &store_error,
          &reopen_stats);
      if (reopened == nullptr) {
        std::fprintf(stderr, "store re-open failed: %s\n",
                     store_error.c_str());
        return 1;
      }
      csj::EncodingCache scratch_cache;
      csj::service::CommunityCatalog::Options scratch_options =
          catalog_options;
      scratch_options.cache = &scratch_cache;
      csj::service::CommunityCatalog scratch(scratch_options);
      rusage faults_before{};
      rusage faults_after{};
      getrusage(RUSAGE_SELF, &faults_before);
      csj::util::Timer restore_timer;
      if (!reopened->RestoreInto(&scratch, &store_error, &reopen_stats)) {
        std::fprintf(stderr, "restore failed: %s\n", store_error.c_str());
        return 1;
      }
      persist_load_seconds = restore_timer.Seconds();
      getrusage(RUSAGE_SELF, &faults_after);
      persist_minflt = faults_after.ru_minflt - faults_before.ru_minflt;
      persist_majflt = faults_after.ru_majflt - faults_before.ru_majflt;
      persist_identical = csj::service::CatalogsIdentical(
          catalog, scratch, drift.base.eps,
          flags.GetDouble("prescreen_threshold"));
      std::printf(
          "persist: %llu checkpoints (%.2f s saved), warm load %.3f s vs "
          "populate+replay %.2f s, state %s; load faults %ld minor / %ld "
          "major\n",
          static_cast<unsigned long long>(checkpoints), save_seconds,
          persist_load_seconds, populate_seconds + drift_seconds,
          persist_identical ? "identical" : "MISMATCH", persist_minflt,
          persist_majflt);
    }
  }

  const bool evolve_ok =
      identity && trigger_exact && triggers_consistent && persist_identical;

  std::printf(
      "done in %.2fs: %llu events, %llu installs, %llu removes, "
      "%llu triggers (exact=%s), maintained %.3fs vs fresh %.3fs "
      "(%.1fx), identity=%s\n",
      run_seconds,
      static_cast<unsigned long long>(replayer.events_applied()),
      static_cast<unsigned long long>(installs),
      static_cast<unsigned long long>(removes),
      static_cast<unsigned long long>(triggers_fired),
      trigger_exact ? "yes" : "NO",
      maintained_seconds, fresh_seconds, speedup,
      identity ? "yes" : "NO");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    csj::util::JsonWriter json;
    json.BeginObject();
    json.Key("benchmark"); json.String("evolve");
    json.Key("git_sha"); json.String(flags.GetString("git_sha"));
    json.Key("build_type"); json.String(flags.GetString("build_type"));
    json.Key("host_cores");
    json.Uint(std::thread::hardware_concurrency());
    json.Key("host_nproc_online");
    json.Int(static_cast<int64_t>(sysconf(_SC_NPROCESSORS_ONLN)));
    json.Key("catalog"); json.Uint(drift.base.catalog_size);
    json.Key("community_size"); json.Uint(drift.base.community_size);
    json.Key("cluster"); json.Uint(drift.base.cluster_size);
    json.Key("k"); json.Uint(topk.k);
    json.Key("eps"); json.Uint(drift.base.eps);
    json.Key("method"); json.String(csj::MethodName(topk.method));
    json.Key("prescreen"); json.Bool(prescreen);
    json.Key("queries"); json.Uint(query_count);
    json.Key("events"); json.Uint(drift.events);
    json.Key("quiesce_every"); json.Uint(drift.quiesce_every);
    json.Key("refresh_every"); json.Uint(refresh_every);
    json.Key("epochs"); json.Uint(model.epochs());
    json.Key("refresh_points"); json.Uint(refresh_points);
    json.Key("seed"); json.Uint(drift.base.seed);
    json.Key("drift_seed"); json.Uint(drift.seed);
    json.Key("sessions"); json.Bool(replay_options.anchor_sessions);
    json.Key("model_seconds"); json.Double(model_seconds);
    json.Key("populate_seconds"); json.Double(populate_seconds);
    json.Key("drift");
    json.BeginObject();
    json.Key("events_applied"); json.Uint(replayer.events_applied());
    json.Key("joins"); json.Uint(joins);
    json.Key("leaves"); json.Uint(leaves);
    json.Key("decays"); json.Uint(decays);
    json.Key("noop_decays"); json.Uint(noop_decays);
    json.Key("births"); json.Uint(births);
    json.Key("deaths"); json.Uint(deaths);
    json.Key("installs"); json.Uint(installs);
    json.Key("removes"); json.Uint(removes);
    json.Key("session_rebuilds"); json.Uint(session_rebuilds);
    json.Key("apply_seconds"); json.Double(drift_seconds);
    json.EndObject();
    json.Key("maintainer");
    json.BeginObject();
    json.Key("refreshes"); json.Uint(stats.refreshes);
    json.Key("fast_paths"); json.Uint(stats.fast_paths);
    json.Key("fallbacks"); json.Uint(stats.fallbacks);
    json.Key("log_truncations"); json.Uint(stats.log_truncations);
    json.Key("reprobed_joins"); json.Uint(stats.reprobed_joins);
    json.Key("reprobe_skipped"); json.Uint(stats.reprobe_skipped);
    json.Key("cache_publishes"); json.Uint(stats.cache_publishes);
    json.EndObject();
    json.Key("triggers_fired"); json.Uint(triggers_fired);
    json.Key("trigger_exact"); json.Bool(trigger_exact);
    json.Key("max_staleness_events"); json.Uint(max_staleness_events);
    json.Key("maintained_seconds"); json.Double(maintained_seconds);
    json.Key("fresh_seconds"); json.Double(fresh_seconds);
    json.Key("maintained_speedup"); json.Double(speedup);
    json.Key("maintained_faster"); json.Bool(maintained_faster);
    json.Key("persist");
    json.BeginObject();
    json.Key("enabled"); json.Bool(store != nullptr);
    json.Key("store_dir"); json.String(store_dir);
    json.Key("checkpoint_every"); json.Uint(checkpoint_every);
    json.Key("checkpoints"); json.Uint(checkpoints);
    json.Key("generation");
    json.Uint(store != nullptr ? store->generation() : 0);
    json.Key("save_seconds"); json.Double(save_seconds);
    // Populate-vs-load: a restart restoring the sealed state skips the
    // model build + base populate + full drift replay.
    json.Key("populate_seconds");
    json.Double(populate_seconds + drift_seconds);
    json.Key("load_seconds"); json.Double(persist_load_seconds);
    json.Key("identical"); json.Bool(persist_identical);
    json.Key("segment_entries"); json.Uint(reopen_stats.segment_entries);
    json.Key("segment_bytes"); json.Uint(reopen_stats.segment_bytes);
    json.Key("map_seconds"); json.Double(reopen_stats.map_seconds);
    json.Key("restore_seconds"); json.Double(reopen_stats.restore_seconds);
    json.Key("replay_seconds"); json.Double(reopen_stats.replay_seconds);
    json.Key("load_minflt"); json.Int(persist_minflt);
    json.Key("load_majflt"); json.Int(persist_majflt);
    json.EndObject();
    json.Key("evolve_identical"); json.Bool(identity);
    json.Key("evolve_ok"); json.Bool(evolve_ok);
    json.EndObject();
    std::ofstream out(json_path);
    out << json.Take() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  // Identity and trigger exactness are correctness gates; wall-time
  // comparisons are reported but never fail the run by themselves.
  return evolve_ok ? 0 : 1;
}
