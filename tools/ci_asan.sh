#!/bin/sh
# CI-style Address+UndefinedBehaviorSanitizer gate. Where the TSan gate
# (tools/ci_tsan.sh) hunts races, this one hunts lifetime bugs in the
# paths that hand out shared buffers: the encoding cache's entry
# promotion/eviction (a join must keep its shared_ptr alive across
# eviction), the SoA verify windows' padded tail lanes, the per-chunk
# arenas of the intra-join parallel scans (join_threads_test), the
# segment-matching farm's swapped edge buffers (matching_differential_
# test), and the scan kernels' unaligned vector loads. Runs the full test
# suite — ASan is cheap enough for that, and the join methods are where
# the pointers live; that includes the matching oracle/differential,
# matching-property and epsilon-boundary suites, plus the serving
# subsystem's catalog/top-k/stress suites (copy-on-write entries pinned
# across Remove, result buffers outliving catalog churn), the prescreen
# signature suites (packed sketch columns swapped on removal, candidate
# lists holding (id, version) pairs across fallback reruns), the bulk
# ingestion suite (frozen community buffers moved through the waves and
# installed under per-shard locks, thread-local sketch scratch), the result
# cache (shared rankings handed out across invalidation/eviction), and
# the wire/net suites (FrameDecoder's lazily-compacted buffer, the
# reactor's connection teardown racing in-flight worker responses), and
# the evolution suites (drift snapshots frozen and re-installed across
# quiesces, maintained rankings and trigger before/after buffers handed
# to subscribers, live sessions rebuilt over pinned anchor entries), and
# the persistence suites (persist_test pins copy-on-write views over an
# munmap'd segment — the keepalive must hold the mapping alive; the
# crash and fsck suites walk mapped columns with recomputed offsets,
# where every off-by-one is an out-of-bounds read ASan can see).
#
# Usage: tools/ci_asan.sh [build-dir]   (default: build-asan)
set -eu

build_dir="${1:-build-asan}"

cmake -B "${build_dir}" -S . \
  -DCSJ_ENABLE_ASAN=ON \
  -DCSJ_BUILD_BENCHMARKS=OFF \
  -DCSJ_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j

# halt_on_error: the first bad access fails the gate; detect_leaks catches
# cache entries that outlive their last owner.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir "${build_dir}" --output-on-failure -j 1

echo "ASAN gate passed."
