#!/bin/sh
# CI-style ThreadSanitizer gate for the concurrency-sensitive pieces: the
# persistent thread pool, the ParallelFor chunk merge, the parallel
# screening pipeline, the intra-join chunked scans (join_threads, incl.
# nesting under pipeline_threads), the deferred segment-matching farm
# (matching_threads; SegmentMatchFarm + the oracle-differential suite),
# the shared encoding cache (concurrent build dedup, shared-lock hit
# path, eviction, Clear), and the serving subsystem (sharded catalog
# upsert/remove/snapshot churn, top-k queries against a churning catalog,
# live-session staleness, and the server's bounded queue + admission +
# shutdown paths — service_stress_test is written specifically for this
# gate), plus the prescreen signature layer (concurrent sketch builds in
# signature_test, and prescreen_test's IndexTracksCatalogUnderConcurrent-
# Churn, which probes the signature index while writers churn the same
# shard locks, and bulk_load_test's SurvivesConcurrentChurnAndQueries,
# where a BulkLoad's per-shard installs race upserts, removes and
# probes), the EDF request queue (request_queue_test's notify-
# outside-lock producer/consumer stress is written for this gate), the
# versioned result cache (result_cache_test's churn differential: readers
# race an upserting writer through the cache), and the network front end
# (net_test's loopback suites run the epoll reactor, the worker-thread
# response encodes and the connection teardown under TSAN), and the
# evolution subsystem (evolve_stress_test: a TopKMaintainer refreshing
# standing queries races catalog churn writers, top-k readers and a
# trigger subscriber, with exactly-once mutation-record accounting), and
# the persistent store (persist_crash_test: concurrent upsert/remove
# writers stream through the durable-log sink inside the shard critical
# sections while the LogWriter serializes appends on its own mutex, then
# the recovered state must match the live catalog byte for byte).
# Configures a dedicated build tree with CSJ_ENABLE_TSAN=ON and runs the
# relevant test binaries under TSAN.
#
# Usage: tools/ci_tsan.sh [build-dir]   (default: build-tsan)
set -eu

build_dir="${1:-build-tsan}"

cmake -B "${build_dir}" -S . \
  -DCSJ_ENABLE_TSAN=ON \
  -DCSJ_BUILD_BENCHMARKS=OFF \
  -DCSJ_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j \
  --target thread_pool_test parallel_test join_threads_test pipeline_test \
           encoding_cache_test matching_differential_test \
           catalog_test bulk_load_test topk_service_test \
           service_stress_test signature_test prescreen_test \
           request_queue_test result_cache_test net_test evolve_stress_test \
           persist_crash_test

# halt_on_error: any race fails the gate immediately.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "${build_dir}" --output-on-failure -j 1 \
        -R 'ThreadPool|ParallelFor|ParallelJoin|ParallelPipeline|Pipeline|EncodingCache|JoinThreads|NestedJoinThreads|CostAwareScheduling|SegmentMatchFarm|MatchingDifferential|Catalog|BulkLoad|LiveCoupleSession|TopKService|ServiceStress|Signature|Prescreen|RequestQueue|ServerEdf|ResultCache|NetWire|NetLoopback|EvolveStress|PersistCrash'

echo "TSAN gate passed."
