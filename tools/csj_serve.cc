// csj_serve — closed-loop load driver for the serving subsystem.
//
// Boots a CsjServer (sharded catalog + warmed encoding cache + bounded
// request queue + worker crew), populates it with a seeded brand catalog,
// then replays a deterministic request mix (top-k reads with uniform or
// zipf-skewed query popularity, plus upsert/remove churn) from N
// closed-loop client threads. Reports throughput and p50/p95/p99 latency
// (util::Histogram) and writes the BENCH_*.json schema.
//
//   ./csj_serve --catalog=24 --size=150 --requests=200 --clients=4
//               --workers=2 --zipf=1.1 --upsert_fraction=0.05
//               --json=BENCH_serve.json
//
// Large-catalog prescreen scenario (sub-linear candidate generation;
// --catalog_size is the ISSUE-style alias of --catalog):
//
//   ./csj_serve --catalog_size=100000 --size=40 --cluster=12
//               --plant_lo=0.5 --plant_hi=0.8 --k=5 --requests=150
//               --clients=2 --workers=2 --zipf=1.1 --upsert_fraction=0
//               --prescreen --compare=6 --json=BENCH_serve_large.json
//
// --prescreen drives the closed loop through the signature index;
// --compare=N additionally runs N queries through BOTH arms on the
// quiesced catalog, verifies byte-identical results, and reports per-arm
// rps/p50/p99 plus the probed fraction.
//
// Networked serving and the versioned result cache:
//
//   ./csj_serve --net --result_cache --zipf=1.1 --compare=8
//
// --net boots a loopback NetServer (binary wire protocol, epoll reactor)
// in front of the same CsjServer and drives every client through a
// NetClient connection instead of in-process Submit. --result_cache
// enables the versioned hot-query result cache; ok top-k latencies are
// split into cache-hit and compute (miss) populations. With --compare=N
// the quiesced catalog additionally gets per-query identity gates: the
// cached path and the networked path must both return rankings
// byte-identical to a direct cache-off in-process query.

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/encoding_cache.h"
#include "core/method.h"
#include "core/signature.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "persist/store.h"
#include "service/deep_compare.h"
#include "service/server.h"
#include "service/workload.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/histogram.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

/// Per-client tallies, merged after the run (client order, deterministic).
struct ClientResult {
  std::vector<double> latencies_ms;  ///< completed requests only
  // ok top-k latencies split by result-cache outcome (both empty when the
  // result cache is off): the hit population is what the cache buys, the
  // miss population is the compute baseline it is measured against.
  std::vector<double> hit_ms;
  std::vector<double> miss_ms;
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t deadline_expired = 0;
  uint64_t not_found = 0;
  uint64_t cache_hits = 0;
  uint64_t transport_errors = 0;  ///< net mode: dead connection mid-loop
  // Prescreen accounting summed over completed top-k responses.
  uint64_t prescreen_probed = 0;
  uint64_t prescreen_skipped = 0;
  uint64_t fallbacks = 0;
};

/// The wire view of a workload request (the net closed loop's encoder
/// input). Per-request knobs cross the wire; server policy (cache
/// pointers, pools) stays in the NetServer's template.
csj::net::WireRequest ToWireRequest(const csj::service::ServeRequest& request) {
  csj::net::WireRequest wire;
  wire.kind = request.kind;
  wire.id = request.id;
  wire.community = request.community;
  wire.k = request.topk.k;
  wire.eps = request.topk.join.eps;
  wire.method = request.topk.method;
  wire.prescreen = request.topk.prescreen;
  wire.use_bound_cutoff = request.topk.use_bound_cutoff;
  wire.prescreen_threshold = request.topk.prescreen_threshold;
  wire.deadline_seconds = request.deadline_seconds;
  return wire;
}

/// One compare arm's latencies, p50/p99 via util::Histogram.
struct ArmSummary {
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
};

ArmSummary SummarizeArm(const std::vector<double>& latencies_ms) {
  ArmSummary arm;
  double max_ms = 0.0;
  for (const double ms : latencies_ms) {
    arm.seconds += ms / 1e3;
    max_ms = std::max(max_ms, ms);
  }
  if (latencies_ms.empty()) return arm;
  csj::util::Histogram histogram(0.0, std::max(max_ms, 1e-6), 2048);
  for (const double ms : latencies_ms) histogram.Add(ms);
  arm.p50_ms = histogram.Quantile(0.50);
  arm.p99_ms = histogram.Quantile(0.99);
  arm.qps = arm.seconds > 0.0
                ? static_cast<double>(latencies_ms.size()) / arm.seconds
                : 0.0;
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("catalog", "24", "seeded catalog entries");
  flags.Define("catalog_size", "0",
               "alias of --catalog for large-catalog scenarios (wins when "
               "> 0)");
  flags.Define("size", "150", "mean users per community");
  flags.Define("cluster", "3", "communities per topical cluster");
  flags.Define("plant_lo", "0.15", "cluster-member plant band, low edge");
  flags.Define("plant_hi", "0.35", "cluster-member plant band, high edge");
  flags.Define("k", "5", "top-k result size per query");
  flags.Define("requests", "200", "total requests across all clients");
  flags.Define("clients", "4", "closed-loop client threads");
  flags.Define("workers", "2", "server worker threads");
  flags.Define("queue_capacity", "64", "admission-control queue bound");
  flags.Define("upsert_fraction", "0.05", "share of requests that upsert");
  flags.Define("remove_fraction", "0.0", "share of requests that remove");
  flags.Define("zipf", "0.0",
               "query-popularity skew (0 = uniform, ~1.1 = web-like)");
  flags.Define("eps", "1", "per-dimension epsilon");
  flags.Define("method", "Ex-MinMax", "exact refine method");
  flags.Define("deadline_ms", "0", "per-request deadline (0 = none)");
  flags.Define("query_threads", "1", "threads per query (bound+refine)");
  flags.Define("no_cutoff", "false",
               "disable the best-bound-first cutoff (exhaustive oracle arm)");
  flags.Define("prescreen", "false",
               "serve reads through the signature prescreen index");
  flags.Define("prescreen_threshold", "0.1",
               "prescreen admission threshold tau");
  flags.Define("bulk_load", "true",
               "populate the catalog through the batched BulkLoad fast "
               "path (false: per-entry Upsert reference arm)");
  flags.Define("populate_compare", "false",
               "also populate a scratch server through the OTHER arm "
               "(own cold cache), deep-verify byte-identical catalog + "
               "index state, and record the bulk-vs-sequential speedup");
  flags.Define("compare", "0",
               "after the closed loop, run N queries through BOTH arms "
               "(scan + prescreen) and verify identical results; with "
               "--result_cache / --net also gates cached and networked "
               "rankings against a direct cache-off query");
  flags.Define("net", "false",
               "serve the closed loop over loopback TCP (binary wire "
               "protocol + epoll reactor) instead of in-process Submit");
  flags.Define("result_cache", "false",
               "enable the versioned hot-query result cache");
  flags.Define("result_cache_capacity", "4096",
               "total result-cache rankings across shards");
  flags.Define("store_dir", "",
               "persistent store directory (empty = RAM only); mutations "
               "append to the durable log while the loop runs");
  flags.Define("warm_restart", "false",
               "restore the catalog from --store_dir (segment map + "
               "logplay) instead of populating; falls back to populate "
               "when the store is empty");
  flags.Define("persist_compare", "false",
               "after the loop: checkpoint, re-open the store cold, "
               "restore into a scratch catalog and deep-verify byte "
               "identity; gates warm-load speedup >= 5x over populate");
  flags.Define("persist_madvise", "true",
               "MADV_WILLNEED on mapped segments");
  flags.Define("persist_hugepages", "true",
               "MADV_HUGEPAGE on mapped segments");
  flags.Define("seed", "42", "workload seed");
  flags.Define("json", "", "write the results as JSON to this path");
  flags.Define("git_sha", "", "source revision stamped into the JSON");
  flags.Define("build_type", "", "CMake build type stamped into the JSON");
  if (!flags.Parse(argc, argv)) return 1;

  const auto requests = static_cast<uint64_t>(flags.GetInt("requests"));
  const auto clients =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("clients")));
  const bool prescreen = flags.GetBool("prescreen");
  const double prescreen_threshold = flags.GetDouble("prescreen_threshold");
  const auto compare_queries =
      static_cast<uint32_t>(std::max<int64_t>(0, flags.GetInt("compare")));
  const bool use_net = flags.GetBool("net");
  const bool use_result_cache = flags.GetBool("result_cache");
  const bool bulk_load = flags.GetBool("bulk_load");
  const bool populate_compare = flags.GetBool("populate_compare");
  const auto method = csj::ParseMethod(flags.GetString("method"));
  if (!method.has_value() || !csj::IsExact(*method)) {
    std::fprintf(stderr, "--method must name an exact (Ex-*) method\n");
    return 1;
  }

  // The serving cache: entries warmed at Upsert, hit by every query.
  csj::EncodingCache cache;

  csj::service::CsjServer::Options server_options;
  server_options.workers =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("workers")));
  server_options.queue_capacity = std::max<size_t>(
      1, static_cast<size_t>(flags.GetInt("queue_capacity")));
  server_options.catalog.cache = &cache;
  server_options.catalog.warm_eps =
      static_cast<csj::Epsilon>(flags.GetInt("eps"));
  server_options.result_cache = use_result_cache;
  server_options.result_cache_options.capacity = std::max<size_t>(
      1, static_cast<size_t>(flags.GetInt("result_cache_capacity")));
  if (prescreen || compare_queries > 0) {
    // Either arm needs sketches resident; scan-mode queries ignore them.
    server_options.catalog.signatures = csj::SignatureOptions{};
  }

  csj::service::WorkloadOptions workload_options;
  workload_options.catalog_size = std::max<uint32_t>(
      2, static_cast<uint32_t>(flags.GetInt("catalog_size") > 0
                                   ? flags.GetInt("catalog_size")
                                   : flags.GetInt("catalog")));
  workload_options.community_size =
      std::max<uint32_t>(16, static_cast<uint32_t>(flags.GetInt("size")));
  workload_options.cluster_size =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("cluster")));
  workload_options.plant_lo = flags.GetDouble("plant_lo");
  workload_options.plant_hi = flags.GetDouble("plant_hi");
  workload_options.eps = static_cast<csj::Epsilon>(flags.GetInt("eps"));
  workload_options.upsert_fraction = flags.GetDouble("upsert_fraction");
  workload_options.remove_fraction = flags.GetDouble("remove_fraction");
  workload_options.zipf_s = flags.GetDouble("zipf");
  workload_options.deadline_seconds = flags.GetDouble("deadline_ms") / 1e3;
  workload_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  csj::service::TopKOptions topk;
  topk.k = std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("k")));
  topk.method = *method;
  topk.join.eps = workload_options.eps;
  topk.join.cache = &cache;
  topk.use_bound_cutoff = !flags.GetBool("no_cutoff");
  topk.prescreen = prescreen;
  topk.prescreen_threshold = prescreen_threshold;
  topk.query_threads = std::max<uint32_t>(
      1, static_cast<uint32_t>(flags.GetInt("query_threads")));

  std::printf("building workload: %u communities of ~%u users...\n",
              workload_options.catalog_size, workload_options.community_size);
  const csj::service::ServeWorkload workload(workload_options);

  csj::service::CsjServer server(server_options);

  // Persistence: the store opens BEFORE populate so a warm restart can
  // skip the build entirely — that skipped wall time is the subsystem's
  // whole value proposition.
  const std::string store_dir = flags.GetString("store_dir");
  const bool warm_restart = flags.GetBool("warm_restart");
  const bool persist_compare = flags.GetBool("persist_compare");
  std::unique_ptr<csj::persist::Store> store;
  csj::persist::OpenStats open_stats;
  if (!store_dir.empty()) {
    csj::persist::StoreOptions store_options;
    store_options.dir = store_dir;
    store_options.use_madvise = flags.GetBool("persist_madvise");
    store_options.use_hugepages = flags.GetBool("persist_hugepages");
    std::string store_error;
    store = csj::persist::Store::Open(store_options, &store_error,
                                      &open_stats);
    if (store == nullptr) {
      std::fprintf(stderr, "store open failed: %s\n", store_error.c_str());
      return 1;
    }
  }

  csj::service::ServeWorkload::PopulateStats populate_stats;
  const bool warm_loaded =
      store != nullptr && warm_restart && store->has_data();
  double populate_seconds = 0.0;
  double load_seconds = 0.0;
  long load_minflt = 0;
  long load_majflt = 0;
  if (warm_loaded) {
    rusage faults_before{};
    rusage faults_after{};
    getrusage(RUSAGE_SELF, &faults_before);
    csj::util::Timer load_timer;
    std::string store_error;
    if (!store->RestoreInto(&server.catalog(), &store_error, &open_stats)) {
      std::fprintf(stderr, "warm restart failed: %s\n", store_error.c_str());
      return 1;
    }
    load_seconds = load_timer.Seconds();
    getrusage(RUSAGE_SELF, &faults_after);
    load_minflt = faults_after.ru_minflt - faults_before.ru_minflt;
    load_majflt = faults_after.ru_majflt - faults_before.ru_majflt;
    std::printf(
        "warm restart: %llu segment entries + %llu log records in %.3f s "
        "(map %.3f s, restore %.3f s, replay %.3f s); faults %ld minor "
        "/ %ld major\n",
        static_cast<unsigned long long>(open_stats.segment_entries),
        static_cast<unsigned long long>(open_stats.log_records_replayed),
        load_seconds, open_stats.map_seconds, open_stats.restore_seconds,
        open_stats.replay_seconds, load_minflt, load_majflt);
  } else {
    if (bulk_load) {
      workload.Populate(&server, &populate_stats);
    } else {
      workload.PopulateSequential(&server, &populate_stats);
    }
    populate_seconds = populate_stats.total_seconds;
    std::printf(
        "populate (%s): %.2f s, %.0f entries/s (encode %.2f s, sketch "
        "%.2f s, install %.2f s)\n",
        populate_stats.bulk ? "bulk" : "sequential",
        populate_stats.total_seconds, populate_stats.entries_per_sec,
        populate_stats.encode_seconds, populate_stats.sketch_seconds,
        populate_stats.install_seconds);
  }

  // A fresh populate seals its state before serving; either way the
  // durable log attaches so the closed loop's churn survives a crash.
  csj::persist::CheckpointStats save_stats;
  if (store != nullptr) {
    std::string store_error;
    if (!warm_loaded &&
        !store->Checkpoint(server.catalog(), &store_error, &save_stats)) {
      std::fprintf(stderr, "checkpoint failed: %s\n", store_error.c_str());
      return 1;
    }
    if (!warm_loaded) {
      std::printf(
          "checkpoint: sealed generation %llu, %llu entries, %.1f MiB in "
          "%.2f s (snapshot %.2f s, write %.2f s, commit %.2f s)\n",
          static_cast<unsigned long long>(save_stats.generation),
          static_cast<unsigned long long>(save_stats.entries),
          static_cast<double>(save_stats.bytes) / (1024.0 * 1024.0),
          save_stats.snapshot_seconds + save_stats.write_seconds +
              save_stats.commit_seconds,
          save_stats.snapshot_seconds, save_stats.write_seconds,
          save_stats.commit_seconds);
    }
    if (!store->StartLogging(&server.catalog(), &store_error)) {
      std::fprintf(stderr, "log attach failed: %s\n", store_error.c_str());
      return 1;
    }
  }

  // The bulk-vs-sequential gate: a scratch server with its own COLD
  // cache runs the other arm (both arms must pay the same builds for an
  // honest speedup), then both catalog + index states are deep-compared.
  csj::service::ServeWorkload::PopulateStats other_stats;
  bool populate_identical = true;
  double populate_speedup = 0.0;
  bool populate_speedup_ok = false;
  if (populate_compare) {
    csj::EncodingCache scratch_cache;
    csj::service::CsjServer::Options scratch_options = server_options;
    scratch_options.catalog.cache = &scratch_cache;
    csj::service::CsjServer scratch(scratch_options);
    if (bulk_load) {
      workload.PopulateSequential(&scratch, &other_stats);
    } else {
      workload.Populate(&scratch, &other_stats);
    }
    populate_identical =
        csj::service::CatalogsIdentical(server.catalog(), scratch.catalog(),
                          workload_options.eps, prescreen_threshold);
    const double bulk_seconds = bulk_load ? populate_stats.total_seconds
                                          : other_stats.total_seconds;
    const double sequential_seconds = bulk_load
                                          ? other_stats.total_seconds
                                          : populate_stats.total_seconds;
    populate_speedup =
        bulk_seconds > 0.0 ? sequential_seconds / bulk_seconds : 0.0;
    populate_speedup_ok = populate_speedup >= 2.0;
    scratch.Shutdown();
    std::printf(
        "populate compare: sequential %.2f s vs bulk %.2f s -> %.2fx "
        "speedup (>=2x %s), state %s\n",
        sequential_seconds, bulk_seconds, populate_speedup,
        populate_speedup_ok ? "ok" : "FAIL",
        populate_identical ? "identical" : "MISMATCH");
  }

  // The networked front door (loopback, ephemeral port). The template
  // carries server policy; per-request knobs travel on the wire.
  std::unique_ptr<csj::net::NetServer> net_server;
  if (use_net) {
    csj::net::NetServer::Options net_options;
    net_options.topk_template = topk;
    net_server = std::make_unique<csj::net::NetServer>(&server, net_options);
    std::printf("net: listening on 127.0.0.1:%u\n", net_server->port());
  }

  // The closed loop: each client forks an independent Rng stream and
  // drives one request at a time until the shared budget is spent — in
  // process through SubmitAndWait, or through its own loopback connection
  // in net mode (same request stream either way).
  std::vector<ClientResult> results(clients);
  std::atomic<uint64_t> issued{0};
  csj::util::Timer wall;
  std::vector<std::thread> crew;
  crew.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    crew.emplace_back([&, c] {
      csj::util::Rng rng(workload_options.seed ^
                         (0x9E3779B97F4A7C15ULL * (c + 1)));
      ClientResult& mine = results[c];
      std::unique_ptr<csj::net::NetClient> net_client;
      if (use_net) {
        net_client =
            csj::net::NetClient::Connect("127.0.0.1", net_server->port());
        CSJ_CHECK(net_client != nullptr) << "client " << c
                                         << " cannot reach loopback server";
      }
      while (issued.fetch_add(1, std::memory_order_relaxed) < requests) {
        csj::service::ServeRequest request = workload.NextRequest(rng, topk);
        const bool is_topk =
            request.kind == csj::service::RequestKind::kTopK;
        csj::service::ServeStatus status;
        bool cache_hit = false;
        uint32_t probed = 0;
        uint32_t skipped = 0;
        uint32_t fallback = 0;
        csj::util::Timer latency;
        if (use_net) {
          csj::net::WireResponse response;
          if (!net_client->Call(ToWireRequest(request), &response)) {
            ++mine.transport_errors;
            break;  // dead connection: no resync, the client is done
          }
          status = response.status;
          cache_hit = response.cache_hit;
          probed = response.prescreen_probed;
          skipped = response.prescreen_skipped;
          fallback = response.fallback;
        } else {
          const csj::service::ServeResponse response =
              server.SubmitAndWait(std::move(request));
          status = response.status;
          cache_hit = response.cache_hit;
          probed = response.topk.stats.prescreen_probed;
          skipped = response.topk.stats.prescreen_skipped;
          fallback = response.topk.stats.fallback;
        }
        const double ms = latency.Millis();
        switch (status) {
          case csj::service::ServeStatus::kOk:
            ++mine.ok;
            mine.latencies_ms.push_back(ms);
            mine.prescreen_probed += probed;
            mine.prescreen_skipped += skipped;
            mine.fallbacks += fallback;
            if (use_result_cache && is_topk) {
              (cache_hit ? mine.hit_ms : mine.miss_ms).push_back(ms);
            }
            if (cache_hit) ++mine.cache_hits;
            break;
          case csj::service::ServeStatus::kRejected:
            ++mine.rejected;
            break;
          case csj::service::ServeStatus::kDeadlineExpired:
            ++mine.deadline_expired;
            mine.latencies_ms.push_back(ms);
            break;
          case csj::service::ServeStatus::kNotFound:
            ++mine.not_found;
            mine.latencies_ms.push_back(ms);
            break;
        }
      }
    });
  }
  for (std::thread& client : crew) client.join();
  const double seconds = wall.Seconds();
  // Pack-prefilter effectiveness over the closed loop, read from the
  // catalog's own counter (the wire protocol does not carry it), before
  // the identity gates and compare arms add their probes.
  const uint64_t loop_packs_skipped =
      server.catalog().GetStats().prescreen_packs_skipped;

  // Identity gates on the quiesced catalog (before shutdown: the cached
  // arm needs live workers). Reference arm: a DIRECT in-process query,
  // result cache not consulted. The cached arm (twice: miss then hit) and
  // the networked arm must return byte-identical rankings.
  bool cache_identity = true;
  bool net_identity = true;
  uint64_t identity_cache_hits = 0;
  if (compare_queries > 0 && (use_result_cache || use_net)) {
    csj::util::Rng identity_rng(workload_options.seed ^ 0x1DE47171ULL);
    std::unique_ptr<csj::net::NetClient> identity_client;
    if (use_net) {
      identity_client =
          csj::net::NetClient::Connect("127.0.0.1", net_server->port());
      CSJ_CHECK(identity_client != nullptr);
    }
    for (uint32_t q = 0; q < compare_queries; ++q) {
      csj::service::ServeRequest request;
      do {
        request = workload.NextRequest(identity_rng, topk);
      } while (request.kind != csj::service::RequestKind::kTopK);
      request.deadline_seconds = 0.0;  // identity runs never go partial
      const csj::service::TopKResult reference =
          server.topk().Query(*request.community, topk);
      if (use_result_cache) {
        for (int round = 0; round < 2; ++round) {
          csj::service::ServeRequest cached = request;
          const csj::service::ServeResponse response =
              server.SubmitAndWait(std::move(cached));
          cache_identity = cache_identity &&
                           response.status == csj::service::ServeStatus::kOk &&
                           response.topk.entries == reference.entries;
          if (response.cache_hit) ++identity_cache_hits;
        }
      }
      if (use_net) {
        csj::net::WireResponse response;
        if (!identity_client->Call(ToWireRequest(request), &response)) {
          net_identity = false;
        } else {
          net_identity = net_identity &&
                         response.status == csj::service::ServeStatus::kOk &&
                         response.entries == reference.entries;
        }
      }
    }
  }

  csj::net::NetServer::Stats net_stats;
  if (net_server != nullptr) {
    net_server->Shutdown();
    net_stats = net_server->GetStats();
  }
  server.Shutdown();

  // The compare arms: on the now-quiesced catalog, run the same queries
  // through exhaustive scan and through prescreen, byte-compare the
  // rankings, and time each arm. This is the exactness + probed-fraction
  // + wall-time evidence the prescreen_smoke gate checks.
  bool compare_identical = true;
  uint64_t compare_probed = 0;
  uint64_t compare_examined = 0;
  uint64_t compare_fallbacks = 0;
  uint64_t compare_packs_skipped = 0;
  std::vector<double> scan_ms;
  std::vector<double> prescreen_ms;
  if (compare_queries > 0) {
    csj::util::Rng compare_rng(workload_options.seed ^
                               0xC04BA9E5ULL);
    csj::service::TopKOptions scan_arm = topk;
    scan_arm.prescreen = false;
    csj::service::TopKOptions prescreen_arm = topk;
    prescreen_arm.prescreen = true;
    for (uint32_t q = 0; q < compare_queries; ++q) {
      csj::service::ServeRequest request;
      // Draw from the same popularity distribution; churn rolls are
      // re-rolled, not applied, so both arms see one frozen catalog.
      do {
        request = workload.NextRequest(compare_rng, topk);
      } while (request.kind != csj::service::RequestKind::kTopK);
      csj::util::Timer scan_timer;
      const csj::service::TopKResult scan =
          server.topk().Query(*request.community, scan_arm);
      scan_ms.push_back(scan_timer.Millis());
      csj::util::Timer prescreen_timer;
      const csj::service::TopKResult screened =
          server.topk().Query(*request.community, prescreen_arm);
      prescreen_ms.push_back(prescreen_timer.Millis());
      compare_identical =
          compare_identical && scan.entries == screened.entries;
      compare_probed += screened.stats.prescreen_probed;
      compare_examined += screened.stats.prescreen_probed +
                          screened.stats.prescreen_skipped;
      compare_fallbacks += screened.stats.fallback;
      compare_packs_skipped += screened.stats.prescreen_packs_skipped;
    }
  }
  const ArmSummary scan_summary = SummarizeArm(scan_ms);
  const ArmSummary prescreen_summary = SummarizeArm(prescreen_ms);
  const double compare_probed_fraction =
      compare_examined > 0 ? static_cast<double>(compare_probed) /
                                 static_cast<double>(compare_examined)
                           : 0.0;
  const bool prescreen_faster =
      compare_queries > 0 && prescreen_summary.seconds < scan_summary.seconds;
  const bool probed_fraction_ok =
      compare_queries > 0 && compare_probed_fraction < 0.10;

  // The persistence gate: quiesce the log, fold the loop's churn into a
  // fresh sealed generation, then open the SAME directory through a cold
  // store handle and prove the restored catalog is byte-identical to the
  // live one (snapshots, versions, cache residency, index layout) — and
  // that the warm load beats the fresh populate by >= 5x.
  bool persist_identical = true;
  bool persist_speedup_ok = true;
  double persist_load_seconds = load_seconds;
  double persist_speedup = 0.0;
  long persist_minflt = load_minflt;
  long persist_majflt = load_majflt;
  csj::persist::CheckpointStats fold_stats;
  csj::persist::OpenStats reopen_stats;
  if (store != nullptr && persist_compare) {
    std::string store_error;
    store->StopLogging(&server.catalog());
    if (!store->Checkpoint(server.catalog(), &store_error, &fold_stats)) {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   store_error.c_str());
      return 1;
    }
    csj::persist::StoreOptions reopen_options;
    reopen_options.dir = store_dir;
    reopen_options.use_madvise = flags.GetBool("persist_madvise");
    reopen_options.use_hugepages = flags.GetBool("persist_hugepages");
    auto reopened = csj::persist::Store::Open(reopen_options, &store_error,
                                              &reopen_stats);
    if (reopened == nullptr) {
      std::fprintf(stderr, "store re-open failed: %s\n", store_error.c_str());
      return 1;
    }
    // The scratch catalog gets its own COLD cache: warm-load residency
    // must come from the segment, not from the live server's cache.
    csj::EncodingCache scratch_cache;
    csj::service::CommunityCatalog::Options scratch_options =
        server_options.catalog;
    scratch_options.cache = &scratch_cache;
    csj::service::CommunityCatalog scratch(scratch_options);
    rusage faults_before{};
    rusage faults_after{};
    getrusage(RUSAGE_SELF, &faults_before);
    csj::util::Timer restore_timer;
    if (!reopened->RestoreInto(&scratch, &store_error, &reopen_stats)) {
      std::fprintf(stderr, "restore failed: %s\n", store_error.c_str());
      return 1;
    }
    persist_load_seconds = restore_timer.Seconds();
    getrusage(RUSAGE_SELF, &faults_after);
    persist_minflt = faults_after.ru_minflt - faults_before.ru_minflt;
    persist_majflt = faults_after.ru_majflt - faults_before.ru_majflt;
    persist_identical = csj::service::CatalogsIdentical(
        server.catalog(), scratch, workload_options.eps,
        prescreen_threshold);
    // The speedup gate needs a fresh-populate baseline from THIS run;
    // a warm-restarted run reports the load time without gating.
    persist_speedup = persist_load_seconds > 0.0
                          ? populate_seconds / persist_load_seconds
                          : 0.0;
    persist_speedup_ok = populate_seconds <= 0.0 || persist_speedup >= 5.0;
    std::printf(
        "persist compare: populate %.2f s vs warm load %.3f s -> %.1fx "
        "speedup (%s), state %s; load faults %ld minor / %ld major\n",
        populate_seconds, persist_load_seconds, persist_speedup,
        populate_seconds <= 0.0 ? "no fresh baseline"
        : persist_speedup_ok    ? ">=5x ok"
                                : ">=5x FAIL",
        persist_identical ? "identical" : "MISMATCH", persist_minflt,
        persist_majflt);
  }

  // Merge in client order; totals are deterministic for a fixed seed and
  // request budget (which client issued which request is not).
  ClientResult total;
  for (const ClientResult& r : results) {
    total.ok += r.ok;
    total.rejected += r.rejected;
    total.deadline_expired += r.deadline_expired;
    total.not_found += r.not_found;
    total.cache_hits += r.cache_hits;
    total.transport_errors += r.transport_errors;
    total.prescreen_probed += r.prescreen_probed;
    total.prescreen_skipped += r.prescreen_skipped;
    total.fallbacks += r.fallbacks;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              r.latencies_ms.begin(), r.latencies_ms.end());
    total.hit_ms.insert(total.hit_ms.end(), r.hit_ms.begin(),
                        r.hit_ms.end());
    total.miss_ms.insert(total.miss_ms.end(), r.miss_ms.begin(),
                         r.miss_ms.end());
  }
  const ArmSummary hit_summary = SummarizeArm(total.hit_ms);
  const ArmSummary miss_summary = SummarizeArm(total.miss_ms);
  // The cache's perf claims, as data: the closed-loop hit rate over ok
  // top-k reads, and hit-p99 strictly under compute-p99.
  const uint64_t cacheable = total.hit_ms.size() + total.miss_ms.size();
  const double loop_hit_rate =
      cacheable > 0 ? static_cast<double>(total.hit_ms.size()) /
                          static_cast<double>(cacheable)
                    : 0.0;
  const bool cache_hit_rate_ok = use_result_cache && loop_hit_rate >= 0.5;
  const bool cache_hit_faster = use_result_cache &&
                                !total.hit_ms.empty() &&
                                !total.miss_ms.empty() &&
                                hit_summary.p99_ms < miss_summary.p99_ms;
  const uint64_t completed = total.latencies_ms.size();
  const double throughput =
      seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;

  // Percentiles via util::Histogram sized from the observed extremes —
  // 2048 buckets keeps the p99 resolution under 0.05% of the range.
  double max_ms = 0.0;
  double sum_ms = 0.0;
  for (const double ms : total.latencies_ms) {
    max_ms = std::max(max_ms, ms);
    sum_ms += ms;
  }
  csj::util::Histogram latency_histogram(0.0, std::max(max_ms, 1e-6), 2048);
  for (const double ms : total.latencies_ms) latency_histogram.Add(ms);
  const double p50 = latency_histogram.Quantile(0.50);
  const double p95 = latency_histogram.Quantile(0.95);
  const double p99 = latency_histogram.Quantile(0.99);
  const double mean_ms =
      completed > 0 ? sum_ms / static_cast<double>(completed) : 0.0;

  const csj::EncodingCache::Stats cache_stats = cache.GetStats();
  const csj::service::CsjServer::Stats server_stats = server.GetStats();
  const csj::service::CsjServer::StatusLatency ok_latency =
      server.LatencyOf(csj::service::ServeStatus::kOk);
  const csj::service::CsjServer::StatusLatency expired_latency =
      server.LatencyOf(csj::service::ServeStatus::kDeadlineExpired);
  const bool serve_ok =
      total.rejected == 0 && total.deadline_expired == 0 &&
      total.transport_errors == 0 &&
      completed + total.rejected == requests && completed > 0;

  std::printf(
      "\n%llu requests in %s (%.1f req/s): %llu ok, %llu rejected, %llu "
      "deadline-expired, %llu not-found\n",
      static_cast<unsigned long long>(requests),
      csj::util::SecondsCell(seconds).c_str(), throughput,
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.rejected),
      static_cast<unsigned long long>(total.deadline_expired),
      static_cast<unsigned long long>(total.not_found));
  std::printf("latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms, "
              "mean %.2f ms\n",
              p50, p95, p99, max_ms, mean_ms);
  std::printf("cache: %llu hits / %llu misses (%.0f%% hit rate), catalog "
              "populate %s\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              cache_stats.HitRate() * 100.0,
              csj::util::SecondsCell(populate_seconds).c_str());
  if (use_result_cache) {
    std::printf(
        "result cache: %llu hits / %llu misses (%.0f%% loop hit rate), "
        "hit p99 %.3f ms vs compute p99 %.3f ms, %llu invalidations, "
        "%llu bypasses, %llu snapshot reuses\n",
        static_cast<unsigned long long>(server_stats.result_cache.hits),
        static_cast<unsigned long long>(server_stats.result_cache.misses),
        loop_hit_rate * 100.0, hit_summary.p99_ms, miss_summary.p99_ms,
        static_cast<unsigned long long>(
            server_stats.result_cache.invalidations),
        static_cast<unsigned long long>(server_stats.cache_bypasses),
        static_cast<unsigned long long>(server_stats.snapshot_reuses));
  }
  if (use_net) {
    std::printf(
        "net: %llu frames in / %llu out, %.1f MiB in / %.1f MiB out, "
        "%llu connections, %llu decode errors, %llu transport errors\n",
        static_cast<unsigned long long>(net_stats.frames_decoded),
        static_cast<unsigned long long>(net_stats.frames_sent),
        static_cast<double>(net_stats.bytes_in) / (1024.0 * 1024.0),
        static_cast<double>(net_stats.bytes_out) / (1024.0 * 1024.0),
        static_cast<unsigned long long>(net_stats.connections_accepted),
        static_cast<unsigned long long>(net_stats.decode_errors),
        static_cast<unsigned long long>(total.transport_errors));
  }
  if (compare_queries > 0 && (use_result_cache || use_net)) {
    std::printf("identity: cache %s (%llu hits), net %s\n",
                !use_result_cache ? "n/a"
                : cache_identity  ? "identical"
                                  : "MISMATCH",
                static_cast<unsigned long long>(identity_cache_hits),
                !use_net       ? "n/a"
                : net_identity ? "identical"
                               : "MISMATCH");
  }
  if (prescreen) {
    const uint64_t swept = total.prescreen_probed + total.prescreen_skipped;
    std::printf("prescreen: probed %llu / %llu swept (%.2f%%), %llu "
                "fallbacks, %llu packs skipped\n",
                static_cast<unsigned long long>(total.prescreen_probed),
                static_cast<unsigned long long>(swept),
                swept > 0 ? 100.0 * static_cast<double>(
                                        total.prescreen_probed) /
                                static_cast<double>(swept)
                          : 0.0,
                static_cast<unsigned long long>(total.fallbacks),
                static_cast<unsigned long long>(loop_packs_skipped));
  }
  if (compare_queries > 0) {
    std::printf(
        "compare (%u queries): identical %s; scan p99 %.2f ms (%.2f q/s) "
        "vs prescreen p99 %.2f ms (%.2f q/s); probed %.2f%% of catalog, "
        "%llu fallbacks, %llu packs skipped\n",
        compare_queries, compare_identical ? "true" : "FALSE",
        scan_summary.p99_ms, scan_summary.qps, prescreen_summary.p99_ms,
        prescreen_summary.qps, 100.0 * compare_probed_fraction,
        static_cast<unsigned long long>(compare_fallbacks),
        static_cast<unsigned long long>(compare_packs_skipped));
  }
  std::printf("serve_ok: %s\n", serve_ok ? "true" : "false");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    csj::util::JsonWriter json;
    json.BeginObject();
    json.Key("benchmark"); json.String("serve");
    json.Key("git_sha"); json.String(flags.GetString("git_sha"));
    json.Key("build_type"); json.String(flags.GetString("build_type"));
    // Machine-readable host parallelism: the ROADMAP's "1-core container"
    // caveat as data instead of prose.
    json.Key("host_cores");
    json.Uint(std::thread::hardware_concurrency());
    json.Key("host_nproc_online");
    json.Int(static_cast<int64_t>(sysconf(_SC_NPROCESSORS_ONLN)));
    json.Key("catalog"); json.Uint(workload_options.catalog_size);
    json.Key("community_size"); json.Uint(workload_options.community_size);
    json.Key("cluster"); json.Uint(workload_options.cluster_size);
    json.Key("plant_lo"); json.Double(workload_options.plant_lo);
    json.Key("plant_hi"); json.Double(workload_options.plant_hi);
    json.Key("k"); json.Uint(topk.k);
    json.Key("eps"); json.Uint(workload_options.eps);
    json.Key("method"); json.String(csj::MethodName(topk.method));
    json.Key("bound_cutoff"); json.Bool(topk.use_bound_cutoff);
    json.Key("requests"); json.Uint(requests);
    json.Key("clients"); json.Uint(clients);
    json.Key("workers"); json.Uint(server_options.workers);
    json.Key("queue_capacity");
    json.Uint(static_cast<uint64_t>(server_options.queue_capacity));
    json.Key("upsert_fraction");
    json.Double(workload_options.upsert_fraction);
    json.Key("remove_fraction");
    json.Double(workload_options.remove_fraction);
    json.Key("zipf_s"); json.Double(workload_options.zipf_s);
    json.Key("deadline_ms"); json.Double(flags.GetDouble("deadline_ms"));
    json.Key("seed"); json.Uint(workload_options.seed);
    json.Key("populate_seconds"); json.Double(populate_seconds);
    json.Key("populate");
    json.BeginObject();
    json.Key("bulk_load"); json.Bool(populate_stats.bulk);
    json.Key("entries"); json.Uint(populate_stats.entries);
    json.Key("seconds"); json.Double(populate_stats.total_seconds);
    json.Key("encode_seconds"); json.Double(populate_stats.encode_seconds);
    json.Key("sketch_seconds"); json.Double(populate_stats.sketch_seconds);
    json.Key("install_seconds");
    json.Double(populate_stats.install_seconds);
    json.Key("entries_per_sec");
    json.Double(populate_stats.entries_per_sec);
    if (populate_compare) {
      const double bulk_seconds = bulk_load ? populate_stats.total_seconds
                                            : other_stats.total_seconds;
      const double sequential_seconds = bulk_load
                                            ? other_stats.total_seconds
                                            : populate_stats.total_seconds;
      json.Key("bulk_seconds"); json.Double(bulk_seconds);
      json.Key("sequential_seconds"); json.Double(sequential_seconds);
      json.Key("populate_speedup"); json.Double(populate_speedup);
      json.Key("populate_speedup_ok"); json.Bool(populate_speedup_ok);
      json.Key("populate_identical"); json.Bool(populate_identical);
    }
    json.EndObject();
    json.Key("seconds"); json.Double(seconds);
    json.Key("throughput_rps"); json.Double(throughput);
    json.Key("completed"); json.Uint(completed);
    json.Key("ok"); json.Uint(total.ok);
    json.Key("rejected"); json.Uint(total.rejected);
    json.Key("deadline_expired"); json.Uint(total.deadline_expired);
    json.Key("not_found"); json.Uint(total.not_found);
    json.Key("latency_ms");
    json.BeginObject();
    json.Key("p50"); json.Double(p50);
    json.Key("p95"); json.Double(p95);
    json.Key("p99"); json.Double(p99);
    json.Key("max"); json.Double(max_ms);
    json.Key("mean"); json.Double(mean_ms);
    json.EndObject();
    json.Key("cache");
    json.BeginObject();
    json.Key("hits"); json.Uint(cache_stats.hits);
    json.Key("misses"); json.Uint(cache_stats.misses);
    json.Key("hit_rate"); json.Double(cache_stats.HitRate());
    json.EndObject();
    json.Key("server_accepted"); json.Uint(server_stats.accepted);
    json.Key("queue");
    json.BeginObject();
    json.Key("capacity");
    json.Uint(static_cast<uint64_t>(server_options.queue_capacity));
    json.Key("high_water"); json.Uint(server_stats.queue_high_water);
    json.Key("ok_latency_ms");
    json.BeginObject();
    json.Key("count"); json.Uint(ok_latency.count);
    json.Key("p50"); json.Double(ok_latency.p50_ms);
    json.Key("p95"); json.Double(ok_latency.p95_ms);
    json.Key("p99"); json.Double(ok_latency.p99_ms);
    json.Key("max"); json.Double(ok_latency.max_ms);
    json.EndObject();
    json.Key("deadline_expired_latency_ms");
    json.BeginObject();
    json.Key("count"); json.Uint(expired_latency.count);
    json.Key("p50"); json.Double(expired_latency.p50_ms);
    json.Key("p99"); json.Double(expired_latency.p99_ms);
    json.EndObject();
    json.EndObject();
    json.Key("result_cache");
    json.BeginObject();
    json.Key("enabled"); json.Bool(use_result_cache);
    json.Key("hits"); json.Uint(server_stats.result_cache.hits);
    json.Key("misses"); json.Uint(server_stats.result_cache.misses);
    json.Key("hit_rate");
    json.Double(server_stats.result_cache.HitRate());
    json.Key("loop_hit_rate"); json.Double(loop_hit_rate);
    json.Key("insertions");
    json.Uint(server_stats.result_cache.insertions);
    json.Key("invalidations");
    json.Uint(server_stats.result_cache.invalidations);
    json.Key("evictions"); json.Uint(server_stats.result_cache.evictions);
    json.Key("entries"); json.Uint(server_stats.result_cache.entries);
    json.Key("bypasses"); json.Uint(server_stats.cache_bypasses);
    json.Key("snapshot_reuses"); json.Uint(server_stats.snapshot_reuses);
    json.Key("hit_p50_ms"); json.Double(hit_summary.p50_ms);
    json.Key("hit_p99_ms"); json.Double(hit_summary.p99_ms);
    json.Key("compute_p50_ms"); json.Double(miss_summary.p50_ms);
    json.Key("compute_p99_ms"); json.Double(miss_summary.p99_ms);
    json.Key("cache_hit_rate_ok"); json.Bool(cache_hit_rate_ok);
    json.Key("cache_hit_faster"); json.Bool(cache_hit_faster);
    json.Key("cache_identity"); json.Bool(cache_identity);
    json.Key("identity_cache_hits"); json.Uint(identity_cache_hits);
    json.EndObject();
    json.Key("net");
    json.BeginObject();
    json.Key("enabled"); json.Bool(use_net);
    json.Key("frames_decoded"); json.Uint(net_stats.frames_decoded);
    json.Key("frames_sent"); json.Uint(net_stats.frames_sent);
    json.Key("bytes_in"); json.Uint(net_stats.bytes_in);
    json.Key("bytes_out"); json.Uint(net_stats.bytes_out);
    json.Key("connections"); json.Uint(net_stats.connections_accepted);
    json.Key("decode_errors"); json.Uint(net_stats.decode_errors);
    json.Key("transport_errors"); json.Uint(total.transport_errors);
    json.Key("net_identity"); json.Bool(net_identity);
    json.EndObject();
    json.Key("persist");
    json.BeginObject();
    json.Key("enabled"); json.Bool(store != nullptr);
    json.Key("store_dir"); json.String(store_dir);
    json.Key("warm_restart"); json.Bool(warm_loaded);
    json.Key("generation");
    json.Uint(store != nullptr ? store->generation() : 0);
    json.Key("madvise"); json.Bool(flags.GetBool("persist_madvise"));
    json.Key("hugepages"); json.Bool(flags.GetBool("persist_hugepages"));
    // Populate-vs-load: the wall time a warm restart skips.
    json.Key("populate_seconds"); json.Double(populate_seconds);
    json.Key("load_seconds"); json.Double(persist_load_seconds);
    json.Key("speedup"); json.Double(persist_speedup);
    json.Key("speedup_ok"); json.Bool(persist_speedup_ok);
    json.Key("identical"); json.Bool(persist_identical);
    json.Key("save_seconds");
    json.Double(save_stats.snapshot_seconds + save_stats.write_seconds +
                save_stats.commit_seconds);
    json.Key("segment_entries");
    json.Uint(persist_compare ? reopen_stats.segment_entries
                              : open_stats.segment_entries);
    json.Key("segment_bytes");
    json.Uint(persist_compare ? reopen_stats.segment_bytes
                              : open_stats.segment_bytes);
    json.Key("map_seconds");
    json.Double(persist_compare ? reopen_stats.map_seconds
                                : open_stats.map_seconds);
    json.Key("restore_seconds");
    json.Double(persist_compare ? reopen_stats.restore_seconds
                                : open_stats.restore_seconds);
    json.Key("replay_seconds");
    json.Double(persist_compare ? reopen_stats.replay_seconds
                                : open_stats.replay_seconds);
    json.Key("log_records_replayed");
    json.Uint(persist_compare ? reopen_stats.log_records_replayed
                              : open_stats.log_records_replayed);
    // First-touch page-fault accounting for the load (getrusage deltas).
    json.Key("load_minflt"); json.Int(persist_minflt);
    json.Key("load_majflt"); json.Int(persist_majflt);
    json.EndObject();
    json.Key("prescreen");
    json.BeginObject();
    json.Key("enabled"); json.Bool(prescreen);
    json.Key("threshold"); json.Double(prescreen_threshold);
    json.Key("probed"); json.Uint(total.prescreen_probed);
    json.Key("skipped"); json.Uint(total.prescreen_skipped);
    json.Key("fallbacks"); json.Uint(total.fallbacks);
    json.Key("packs_skipped"); json.Uint(loop_packs_skipped);
    json.EndObject();
    if (compare_queries > 0) {
      json.Key("prescreen_compare");
      json.BeginObject();
      json.Key("queries"); json.Uint(compare_queries);
      json.Key("compare_identical"); json.Bool(compare_identical);
      // The acceptance evidence: entries the prescreen arm fed to the
      // exact path vs entries resident (the index sweeps them all).
      json.Key("prescreen_probed"); json.Uint(compare_probed);
      json.Key("catalog_entries"); json.Uint(compare_examined);
      json.Key("probed_fraction"); json.Double(compare_probed_fraction);
      json.Key("probed_fraction_ok"); json.Bool(probed_fraction_ok);
      json.Key("fallbacks"); json.Uint(compare_fallbacks);
      json.Key("packs_skipped"); json.Uint(compare_packs_skipped);
      json.Key("prescreen_faster"); json.Bool(prescreen_faster);
      json.Key("scan");
      json.BeginObject();
      json.Key("seconds"); json.Double(scan_summary.seconds);
      json.Key("qps"); json.Double(scan_summary.qps);
      json.Key("p50_ms"); json.Double(scan_summary.p50_ms);
      json.Key("p99_ms"); json.Double(scan_summary.p99_ms);
      json.EndObject();
      json.Key("prescreen");
      json.BeginObject();
      json.Key("seconds"); json.Double(prescreen_summary.seconds);
      json.Key("qps"); json.Double(prescreen_summary.qps);
      json.Key("p50_ms"); json.Double(prescreen_summary.p50_ms);
      json.Key("p99_ms"); json.Double(prescreen_summary.p99_ms);
      json.EndObject();
      json.EndObject();
    }
    json.Key("serve_ok"); json.Bool(serve_ok);
    json.EndObject();
    std::ofstream out(json_path);
    out << json.Take() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  // A compare mismatch is a correctness failure, not a perf blip — the
  // cached, networked, and bulk-populate arms are all held to the same
  // byte-identity bar as the prescreen arm.
  return (serve_ok && compare_identical && cache_identity && net_identity &&
          populate_identical && persist_identical && persist_speedup_ok)
             ? 0
             : 1;
}
