// csj_serve — closed-loop load driver for the serving subsystem.
//
// Boots a CsjServer (sharded catalog + warmed encoding cache + bounded
// request queue + worker crew), populates it with a seeded brand catalog,
// then replays a deterministic request mix (top-k reads with uniform or
// zipf-skewed query popularity, plus upsert/remove churn) from N
// closed-loop client threads. Reports throughput and p50/p95/p99 latency
// (util::Histogram) and writes the BENCH_*.json schema.
//
//   ./csj_serve --catalog=24 --size=150 --requests=200 --clients=4
//               --workers=2 --zipf=1.1 --upsert_fraction=0.05
//               --json=BENCH_serve.json

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/encoding_cache.h"
#include "core/method.h"
#include "service/server.h"
#include "service/workload.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/histogram.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

/// Per-client tallies, merged after the run (client order, deterministic).
struct ClientResult {
  std::vector<double> latencies_ms;  ///< completed requests only
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t deadline_expired = 0;
  uint64_t not_found = 0;
};

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("catalog", "24", "seeded catalog entries");
  flags.Define("size", "150", "mean users per community");
  flags.Define("k", "5", "top-k result size per query");
  flags.Define("requests", "200", "total requests across all clients");
  flags.Define("clients", "4", "closed-loop client threads");
  flags.Define("workers", "2", "server worker threads");
  flags.Define("queue_capacity", "64", "admission-control queue bound");
  flags.Define("upsert_fraction", "0.05", "share of requests that upsert");
  flags.Define("remove_fraction", "0.0", "share of requests that remove");
  flags.Define("zipf", "0.0",
               "query-popularity skew (0 = uniform, ~1.1 = web-like)");
  flags.Define("eps", "1", "per-dimension epsilon");
  flags.Define("method", "Ex-MinMax", "exact refine method");
  flags.Define("deadline_ms", "0", "per-request deadline (0 = none)");
  flags.Define("query_threads", "1", "threads per query (bound+refine)");
  flags.Define("no_cutoff", "false",
               "disable the best-bound-first cutoff (exhaustive oracle arm)");
  flags.Define("seed", "42", "workload seed");
  flags.Define("json", "", "write the results as JSON to this path");
  flags.Define("git_sha", "", "source revision stamped into the JSON");
  flags.Define("build_type", "", "CMake build type stamped into the JSON");
  if (!flags.Parse(argc, argv)) return 1;

  const auto requests = static_cast<uint64_t>(flags.GetInt("requests"));
  const auto clients =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("clients")));
  const auto method = csj::ParseMethod(flags.GetString("method"));
  if (!method.has_value() || !csj::IsExact(*method)) {
    std::fprintf(stderr, "--method must name an exact (Ex-*) method\n");
    return 1;
  }

  // The serving cache: entries warmed at Upsert, hit by every query.
  csj::EncodingCache cache;

  csj::service::CsjServer::Options server_options;
  server_options.workers =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("workers")));
  server_options.queue_capacity = std::max<size_t>(
      1, static_cast<size_t>(flags.GetInt("queue_capacity")));
  server_options.catalog.cache = &cache;
  server_options.catalog.warm_eps =
      static_cast<csj::Epsilon>(flags.GetInt("eps"));

  csj::service::WorkloadOptions workload_options;
  workload_options.catalog_size =
      std::max<uint32_t>(2, static_cast<uint32_t>(flags.GetInt("catalog")));
  workload_options.community_size =
      std::max<uint32_t>(16, static_cast<uint32_t>(flags.GetInt("size")));
  workload_options.eps = static_cast<csj::Epsilon>(flags.GetInt("eps"));
  workload_options.upsert_fraction = flags.GetDouble("upsert_fraction");
  workload_options.remove_fraction = flags.GetDouble("remove_fraction");
  workload_options.zipf_s = flags.GetDouble("zipf");
  workload_options.deadline_seconds = flags.GetDouble("deadline_ms") / 1e3;
  workload_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  csj::service::TopKOptions topk;
  topk.k = std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("k")));
  topk.method = *method;
  topk.join.eps = workload_options.eps;
  topk.join.cache = &cache;
  topk.use_bound_cutoff = !flags.GetBool("no_cutoff");
  topk.query_threads = std::max<uint32_t>(
      1, static_cast<uint32_t>(flags.GetInt("query_threads")));

  std::printf("building workload: %u communities of ~%u users...\n",
              workload_options.catalog_size, workload_options.community_size);
  const csj::service::ServeWorkload workload(workload_options);

  csj::service::CsjServer server(server_options);
  csj::util::Timer populate_timer;
  workload.Populate(&server);
  const double populate_seconds = populate_timer.Seconds();

  // The closed loop: each client forks an independent Rng stream and
  // drives one request at a time until the shared budget is spent.
  std::vector<ClientResult> results(clients);
  std::atomic<uint64_t> issued{0};
  csj::util::Timer wall;
  std::vector<std::thread> crew;
  crew.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    crew.emplace_back([&, c] {
      csj::util::Rng rng(workload_options.seed ^
                         (0x9E3779B97F4A7C15ULL * (c + 1)));
      ClientResult& mine = results[c];
      while (issued.fetch_add(1, std::memory_order_relaxed) < requests) {
        csj::service::ServeRequest request = workload.NextRequest(rng, topk);
        csj::util::Timer latency;
        const csj::service::ServeResponse response =
            server.SubmitAndWait(std::move(request));
        switch (response.status) {
          case csj::service::ServeStatus::kOk:
            ++mine.ok;
            mine.latencies_ms.push_back(latency.Millis());
            break;
          case csj::service::ServeStatus::kRejected:
            ++mine.rejected;
            break;
          case csj::service::ServeStatus::kDeadlineExpired:
            ++mine.deadline_expired;
            mine.latencies_ms.push_back(latency.Millis());
            break;
          case csj::service::ServeStatus::kNotFound:
            ++mine.not_found;
            mine.latencies_ms.push_back(latency.Millis());
            break;
        }
      }
    });
  }
  for (std::thread& client : crew) client.join();
  const double seconds = wall.Seconds();
  server.Shutdown();

  // Merge in client order; totals are deterministic for a fixed seed and
  // request budget (which client issued which request is not).
  ClientResult total;
  for (const ClientResult& r : results) {
    total.ok += r.ok;
    total.rejected += r.rejected;
    total.deadline_expired += r.deadline_expired;
    total.not_found += r.not_found;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              r.latencies_ms.begin(), r.latencies_ms.end());
  }
  const uint64_t completed = total.latencies_ms.size();
  const double throughput =
      seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;

  // Percentiles via util::Histogram sized from the observed extremes —
  // 2048 buckets keeps the p99 resolution under 0.05% of the range.
  double max_ms = 0.0;
  double sum_ms = 0.0;
  for (const double ms : total.latencies_ms) {
    max_ms = std::max(max_ms, ms);
    sum_ms += ms;
  }
  csj::util::Histogram latency_histogram(0.0, std::max(max_ms, 1e-6), 2048);
  for (const double ms : total.latencies_ms) latency_histogram.Add(ms);
  const double p50 = latency_histogram.Quantile(0.50);
  const double p95 = latency_histogram.Quantile(0.95);
  const double p99 = latency_histogram.Quantile(0.99);
  const double mean_ms =
      completed > 0 ? sum_ms / static_cast<double>(completed) : 0.0;

  const csj::EncodingCache::Stats cache_stats = cache.GetStats();
  const csj::service::CsjServer::Stats server_stats = server.GetStats();
  const bool serve_ok =
      total.rejected == 0 && total.deadline_expired == 0 &&
      completed + total.rejected == requests && completed > 0;

  std::printf(
      "\n%llu requests in %s (%.1f req/s): %llu ok, %llu rejected, %llu "
      "deadline-expired, %llu not-found\n",
      static_cast<unsigned long long>(requests),
      csj::util::SecondsCell(seconds).c_str(), throughput,
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.rejected),
      static_cast<unsigned long long>(total.deadline_expired),
      static_cast<unsigned long long>(total.not_found));
  std::printf("latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms, "
              "mean %.2f ms\n",
              p50, p95, p99, max_ms, mean_ms);
  std::printf("cache: %llu hits / %llu misses (%.0f%% hit rate), catalog "
              "populate %s\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              cache_stats.HitRate() * 100.0,
              csj::util::SecondsCell(populate_seconds).c_str());
  std::printf("serve_ok: %s\n", serve_ok ? "true" : "false");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    csj::util::JsonWriter json;
    json.BeginObject();
    json.Key("benchmark"); json.String("serve");
    json.Key("git_sha"); json.String(flags.GetString("git_sha"));
    json.Key("build_type"); json.String(flags.GetString("build_type"));
    // Machine-readable host parallelism: the ROADMAP's "1-core container"
    // caveat as data instead of prose.
    json.Key("host_cores");
    json.Uint(std::thread::hardware_concurrency());
    json.Key("host_nproc_online");
    json.Int(static_cast<int64_t>(sysconf(_SC_NPROCESSORS_ONLN)));
    json.Key("catalog"); json.Uint(workload_options.catalog_size);
    json.Key("community_size"); json.Uint(workload_options.community_size);
    json.Key("k"); json.Uint(topk.k);
    json.Key("eps"); json.Uint(workload_options.eps);
    json.Key("method"); json.String(csj::MethodName(topk.method));
    json.Key("bound_cutoff"); json.Bool(topk.use_bound_cutoff);
    json.Key("requests"); json.Uint(requests);
    json.Key("clients"); json.Uint(clients);
    json.Key("workers"); json.Uint(server_options.workers);
    json.Key("queue_capacity");
    json.Uint(static_cast<uint64_t>(server_options.queue_capacity));
    json.Key("upsert_fraction");
    json.Double(workload_options.upsert_fraction);
    json.Key("remove_fraction");
    json.Double(workload_options.remove_fraction);
    json.Key("zipf_s"); json.Double(workload_options.zipf_s);
    json.Key("deadline_ms"); json.Double(flags.GetDouble("deadline_ms"));
    json.Key("seed"); json.Uint(workload_options.seed);
    json.Key("populate_seconds"); json.Double(populate_seconds);
    json.Key("seconds"); json.Double(seconds);
    json.Key("throughput_rps"); json.Double(throughput);
    json.Key("completed"); json.Uint(completed);
    json.Key("ok"); json.Uint(total.ok);
    json.Key("rejected"); json.Uint(total.rejected);
    json.Key("deadline_expired"); json.Uint(total.deadline_expired);
    json.Key("not_found"); json.Uint(total.not_found);
    json.Key("latency_ms");
    json.BeginObject();
    json.Key("p50"); json.Double(p50);
    json.Key("p95"); json.Double(p95);
    json.Key("p99"); json.Double(p99);
    json.Key("max"); json.Double(max_ms);
    json.Key("mean"); json.Double(mean_ms);
    json.EndObject();
    json.Key("cache");
    json.BeginObject();
    json.Key("hits"); json.Uint(cache_stats.hits);
    json.Key("misses"); json.Uint(cache_stats.misses);
    json.Key("hit_rate"); json.Double(cache_stats.HitRate());
    json.EndObject();
    json.Key("server_accepted"); json.Uint(server_stats.accepted);
    json.Key("serve_ok"); json.Bool(serve_ok);
    json.EndObject();
    std::ofstream out(json_path);
    out << json.Take() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return serve_ok ? 0 : 1;
}
