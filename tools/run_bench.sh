#!/bin/sh
# Runs the pipeline benchmark (with the cross-couple parallelism sweep)
# and the micro-kernel benchmarks, leaving machine-readable output in the
# current directory:
#   BENCH_pipeline.json       - ablation arms + pipeline_threads sweep
#   BENCH_micro_kernels.json  - google-benchmark JSON for the hot kernels
#
# Usage: tools/run_bench.sh [build-dir]   (default: build)
set -eu

build_dir="${1:-build}"
[ $# -ge 1 ] && shift
if [ ! -x "${build_dir}/bench/bench_pipeline" ]; then
  echo "error: ${build_dir}/bench/bench_pipeline not found." >&2
  echo "Configure and build first: cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

echo "== bench_pipeline (ablation + pipeline_threads sweep) =="
"${build_dir}/bench/bench_pipeline" --json=BENCH_pipeline.json "$@"

echo
echo "== bench_micro_kernels (epsilon kernel, encoder, matchers) =="
"${build_dir}/bench/bench_micro_kernels" \
  --benchmark_out=BENCH_micro_kernels.json \
  --benchmark_out_format=json

echo
echo "wrote BENCH_pipeline.json and BENCH_micro_kernels.json"
