#!/bin/sh
# Runs the pipeline benchmark (with the encoding-cache all-pairs sweep)
# and the micro-kernel benchmarks, leaving machine-readable output in the
# current directory:
#   BENCH_pipeline.json       - ablation arms + cached all-pairs sweep
#   BENCH_micro_kernels.json  - google-benchmark JSON for the hot kernels
#   BENCH_serve.json          - serving throughput + latency percentiles
#                               over the networked stack (loopback TCP,
#                               binary wire protocol) with the versioned
#                               result cache on: net + result_cache
#                               sections, cache-hit vs compute p99, both
#                               byte-identity gates
#   BENCH_serve_large.json    - the 100k-entry prescreen scenario: serve
#                               loop in prescreen mode plus the compare
#                               arms, reporting probed fraction and
#                               scan-vs-prescreen qps/p99. Populates both
#                               ways (bulk AND sequential) and records the
#                               per-phase breakdown, the bulk-vs-sequential
#                               speedup, and the state-identity verdict in
#                               the populate section.
#   BENCH_evolve.json         - long-horizon continuous evolution over a
#                               10k-community catalog: drift events
#                               applied, triggers fired, maintained vs
#                               fresh recompute wall time, max ranking
#                               staleness window, with the byte-identity
#                               and trigger-exactness verdicts
#   BENCH_persist.json        - the 100k scenario through the persistent
#                               store: populate, checkpoint to a sealed
#                               columnar segment, log the serve loop's
#                               churn, fold, cold-reopen. Reports save
#                               wall time, warm-load vs populate speedup,
#                               page-fault deltas (minor/major) for the
#                               mapped load, and the deep state-identity
#                               verdict in the persist section.
#   BENCH_serve_1m.json       - opt-in (CSJ_BENCH_1M=1): the 1M-entry
#                               prescreen scenario with the same two-arm
#                               populate comparison. The sequential arm
#                               dominates the runtime (several minutes;
#                               the bulk arm loads the same catalog >= 2x
#                               faster), so it stays out of the default
#                               sweep.
#
# Numbers from non-Release builds are meaningless, so the script verifies
# the build tree's CMAKE_BUILD_TYPE and refuses to run otherwise. Every
# JSON gets the git SHA and build type stamped in, so a stray result file
# can always be traced back to the code that produced it.
#
# Usage: tools/run_bench.sh [build-dir]   (default: build)
set -eu

build_dir="${1:-build}"
[ $# -ge 1 ] && shift

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
  echo "error: ${build_dir}/CMakeCache.txt not found." >&2
  echo "Configure a Release tree first:" >&2
  echo "  cmake -B ${build_dir} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${build_dir} -j" >&2
  exit 1
fi

build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${build_dir}/CMakeCache.txt")"
if [ "${build_type}" != "Release" ]; then
  echo "error: ${build_dir} is configured as '${build_type:-<empty>}', not Release." >&2
  echo "Benchmark numbers from this tree would not be comparable; reconfigure with:" >&2
  echo "  cmake -B ${build_dir} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${build_dir} -j" >&2
  exit 1
fi

if [ ! -x "${build_dir}/bench/bench_pipeline" ]; then
  echo "error: ${build_dir}/bench/bench_pipeline not found." >&2
  echo "Build first: cmake --build ${build_dir} -j" >&2
  exit 1
fi

git_sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"

echo "== bench_pipeline (ablation + cached all-pairs sweep) =="
"${build_dir}/bench/bench_pipeline" --json=BENCH_pipeline.json \
  --git_sha="${git_sha}" --build_type="${build_type}" "$@"

echo
echo "== bench_micro_kernels (epsilon kernels, encoder, matchers) =="
"${build_dir}/bench/bench_micro_kernels" \
  --benchmark_out=BENCH_micro_kernels.json \
  --benchmark_out_format=json \
  --benchmark_context=git_sha="${git_sha}" \
  --benchmark_context=build_type="${build_type}"

echo
echo "== csj_serve (networked serving + result cache: throughput, latency, hit rate) =="
"${build_dir}/tools/csj_serve" \
  --catalog=24 --size=150 --requests=400 --clients=4 --workers=2 \
  --zipf=1.1 --upsert_fraction=0.05 --result_cache=true --net=true \
  --compare=8 \
  --json=BENCH_serve.json \
  --git_sha="${git_sha}" --build_type="${build_type}"

echo
echo "== csj_serve large (100k-entry catalog: prescreen candidate generation) =="
"${build_dir}/tools/csj_serve" \
  --catalog_size=100000 --size=40 --cluster=12 --plant_lo=0.5 \
  --plant_hi=0.8 --k=5 --requests=150 --clients=2 --workers=2 \
  --zipf=1.1 --upsert_fraction=0 --prescreen=true --compare=6 \
  --populate_compare=true \
  --json=BENCH_serve_large.json \
  --git_sha="${git_sha}" --build_type="${build_type}"

echo
echo "== csj_evolve (10k-community drift: maintained top-k vs recompute) =="
"${build_dir}/tools/csj_evolve" \
  --catalog_size=10000 --size=40 --cluster=12 --plant_lo=0.5 \
  --plant_hi=0.8 --k=5 --eps=1 --queries=8 --events=2000 \
  --quiesce_every=100 --prescreen=true \
  --json=BENCH_evolve.json \
  --git_sha="${git_sha}" --build_type="${build_type}"

echo
echo "== csj_serve persist (100k-entry catalog: checkpoint, log churn, warm reload) =="
rm -rf BENCH_persist_store
"${build_dir}/tools/csj_serve" \
  --catalog_size=100000 --size=40 --cluster=12 --plant_lo=0.5 \
  --plant_hi=0.8 --k=5 --requests=150 --clients=2 --workers=2 \
  --zipf=1.1 --upsert_fraction=0.05 --prescreen=true \
  --store_dir=BENCH_persist_store --persist_compare=true \
  --json=BENCH_persist.json \
  --git_sha="${git_sha}" --build_type="${build_type}"
rm -rf BENCH_persist_store

if [ "${CSJ_BENCH_1M:-0}" = "1" ]; then
  echo
  echo "== csj_serve 1M (1M-entry catalog: prescreen at scale + two-arm populate; ~10 min) =="
  "${build_dir}/tools/csj_serve" \
    --catalog_size=1000000 --size=40 --cluster=12 --plant_lo=0.5 \
    --plant_hi=0.8 --k=5 --requests=40 --clients=2 --workers=2 \
    --zipf=1.1 --upsert_fraction=0 --prescreen=true \
    --populate_compare=true \
    --json=BENCH_serve_1m.json \
    --git_sha="${git_sha}" --build_type="${build_type}"
fi

echo
echo "== perf smoke check (scaling + report identity) =="
script_dir="$(dirname "$0")"
sh "${script_dir}/ci_perf_smoke.sh" --check-json BENCH_pipeline.json

echo
echo "wrote BENCH_pipeline.json, BENCH_micro_kernels.json, BENCH_serve.json, BENCH_serve_large.json, BENCH_evolve.json and BENCH_persist.json (${git_sha}, ${build_type})"
