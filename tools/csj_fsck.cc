// csj_fsck — offline verifier for a persistent catalog store.
//
// Walks superblock → sealed segment → mutation log and validates every
// layer: magics, header/section-table CRCs, section payload CRCs (the
// check the zero-copy open path deliberately skips), offsets and
// alignment, id ordering, version uniqueness and monotonicity, prefix
// array consistency, log framing and CRCs, and log-upsert versions
// against the sealed generation's horizon. --deep (the default)
// additionally recomputes every entry's digest, sketch table, encoded
// buffers and verify windows from the stored counters and requires byte
// agreement — CRCs prove the bytes are what was written, recomputation
// proves what was written is what the builders produce today.
//
//   ./csj_fsck --dir=/var/lib/csj/store            # verify, exit 0/1
//   ./csj_fsck --dir=... --fast                    # skip recomputation
//   ./csj_fsck --dir=... --repair                  # truncate a torn tail
//
// Exit codes: 0 clean (possibly with non-fatal notes — a torn log tail
// is expected crash residue), 1 corruption found, 2 usage error.

#include <cstdio>
#include <string>

#include "persist/fsck.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("dir", "", "store directory to verify");
  flags.Define("deep", "true",
               "recompute digests, sketches, encodings and windows from "
               "the stored counters and byte-compare");
  flags.Define("fast", "false", "alias for --deep=false");
  flags.Define("repair", "false",
               "truncate a torn log tail in place (the only mutation "
               "fsck ever performs)");
  if (!flags.Parse(argc, argv)) return 2;
  if (flags.GetString("dir").empty()) {
    std::fprintf(stderr, "csj_fsck: --dir is required\n");
    return 2;
  }

  csj::persist::FsckOptions options;
  options.dir = flags.GetString("dir");
  options.deep = flags.GetBool("deep") && !flags.GetBool("fast");
  options.repair = flags.GetBool("repair");

  csj::persist::FsckReport report;
  if (!csj::persist::FsckStore(options, &report)) {
    std::fprintf(stderr, "csj_fsck: cannot walk %s\n", options.dir.c_str());
    return 2;
  }

  for (const csj::persist::FsckFinding& finding : report.findings) {
    std::printf("%s: %s\n", finding.fatal ? "CORRUPT" : "note",
                finding.message.c_str());
  }
  std::printf(
      "{\"store\": \"%s\", \"generation\": %llu, \"segment_entries\": %llu, "
      "\"log_records\": %llu, \"torn_tail_bytes\": %llu, \"repaired\": %s, "
      "\"deep\": %s, \"findings\": %zu, \"clean\": %s}\n",
      options.dir.c_str(), static_cast<unsigned long long>(report.generation),
      static_cast<unsigned long long>(report.segment_entries),
      static_cast<unsigned long long>(report.log_records),
      static_cast<unsigned long long>(report.torn_tail_bytes),
      report.repaired ? "true" : "false", options.deep ? "true" : "false",
      report.findings.size(), report.clean() ? "true" : "false");
  return report.clean() ? 0 : 1;
}
