// Crash-injection tests for the persistent store: the fault harness
// kills the log writer at every fsync barrier and at arbitrary byte
// offsets (torn records), then recovery must rebuild exactly the
// catalog the durable log prefix describes — proven by the same deep
// byte-identity compare the serving drivers gate on — and csj_fsck must
// pass the recovered store.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoding_cache.h"
#include "core/signature.h"
#include "data/generator.h"
#include "persist/fsck.h"
#include "persist/log.h"
#include "persist/store.h"
#include "service/catalog.h"
#include "service/deep_compare.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::persist {
namespace {

Community MakeTestCommunity(uint32_t size, uint64_t salt) {
  util::Rng rng(testing::TestSeed(salt));
  data::VkLikeGenerator gen(data::Category::kSport);
  return data::MakeCommunity(gen, size, rng);
}

std::string FreshDir() {
  std::string tmpl = ::testing::TempDir() + "csj_crash_XXXXXX";
  const char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

service::CommunityCatalog::Options CatalogOpts(EncodingCache* cache) {
  service::CommunityCatalog::Options options;
  options.cache = cache;
  options.warm_eps = 2;
  options.signatures = SignatureOptions{};
  return options;
}

constexpr double kTau = 0.1;

/// One scripted mutation. Every op is EFFECTIVE (each remove targets a
/// live id), so ops map 1:1 onto durable log records and "the first D
/// records" is the same thing as "the first D ops".
struct Op {
  bool remove = false;
  uint64_t id = 0;
  uint32_t size = 0;
  uint64_t salt = 0;
};

/// The scripted single-threaded history. Sequential appliers reissue
/// the exact same versions for any prefix, which is what lets a shadow
/// catalog built from the durable prefix serve as the recovery oracle.
std::vector<Op> Script() {
  std::vector<Op> ops;
  for (uint64_t id = 1; id <= 9; ++id) {
    ops.push_back({false, id, 10 + static_cast<uint32_t>(id % 5), id});
  }
  ops.push_back({false, 4, 21, 100});  // replace
  ops.push_back({true, 7, 0, 0});      // remove a live id
  ops.push_back({false, 30, 14, 101});
  ops.push_back({true, 2, 0, 0});
  ops.push_back({false, 4, 11, 102});  // replace again
  ops.push_back({false, 31, 17, 103});
  return ops;
}

void ApplyOp(service::CommunityCatalog* catalog, const Op& op) {
  if (op.remove) {
    ASSERT_TRUE(catalog->Remove(op.id));
  } else {
    catalog->Upsert(op.id, MakeTestCommunity(op.size, op.salt));
  }
}

/// Builds the oracle: a plain in-RAM catalog with the first `count` ops
/// applied sequentially.
void BuildShadow(service::CommunityCatalog* shadow, size_t count) {
  const std::vector<Op> ops = Script();
  ASSERT_LE(count, ops.size());
  for (size_t i = 0; i < count; ++i) ApplyOp(shadow, ops[i]);
}

/// Recovers `dir` into a fresh catalog and requires deep identity with
/// the shadow built from `expect_records` ops, plus a clean fsck.
void ExpectRecoversPrefix(const std::string& dir, uint64_t expect_records) {
  StoreOptions options;
  options.dir = dir;
  std::string error;
  OpenStats stats;
  auto store = Store::Open(options, &error, &stats);
  ASSERT_NE(store, nullptr) << error;
  EncodingCache cache;
  service::CommunityCatalog recovered(CatalogOpts(&cache));
  ASSERT_TRUE(store->RestoreInto(&recovered, &error, &stats)) << error;
  EXPECT_EQ(stats.log_records_replayed, expect_records);

  EncodingCache shadow_cache;
  service::CommunityCatalog shadow(CatalogOpts(&shadow_cache));
  BuildShadow(&shadow, expect_records);
  EXPECT_TRUE(service::CatalogsIdentical(shadow, recovered, /*eps=*/2, kTau));

  FsckOptions fsck;
  fsck.dir = dir;
  FsckReport report;
  ASSERT_TRUE(FsckStore(fsck, &report));
  EXPECT_TRUE(report.clean())
      << (report.findings.empty() ? "" : report.findings[0].message);
}

TEST(PersistCrashTest, KillAtEveryFsyncBarrierRecoversDurablePrefix) {
  const std::vector<Op> ops = Script();
  // Barrier k covers record k (sync_every = 1). Dying BEFORE barrier k
  // leaves records 0..k-1 fsynced and record k written-but-unsynced;
  // under the same-process crash model the written bytes survive, so
  // recovery must surface exactly k+1 records.
  for (size_t k = 0; k <= ops.size(); ++k) {
    SCOPED_TRACE("crash before fsync " + std::to_string(k));
    const std::string dir = FreshDir();
    FaultInjector injector;
    injector.crash_after_fsyncs = static_cast<int64_t>(k);
    {
      StoreOptions options;
      options.dir = dir;
      options.log_sync_every = 1;
      options.fault_injector = &injector;
      std::string error;
      auto store = Store::Open(options, &error);
      ASSERT_NE(store, nullptr) << error;
      EncodingCache cache;
      service::CommunityCatalog live(CatalogOpts(&cache));
      ASSERT_TRUE(store->StartLogging(&live, &error)) << error;
      for (const Op& op : ops) ApplyOp(&live, op);
      EXPECT_EQ(injector.dead, k < ops.size());
      // Crash: the store drops without StopLogging; a dead writer's
      // close-time sync is discarded.
    }
    const uint64_t durable =
        k < ops.size() ? static_cast<uint64_t>(k) + 1 : ops.size();
    ExpectRecoversPrefix(dir, durable);
  }
}

TEST(PersistCrashTest, TornRecordAtArbitraryByteOffsetsIsChoppedCleanly) {
  const std::vector<Op> ops = Script();
  // Measure the full log's record-byte footprint with a no-crash run.
  uint64_t total_bytes = 0;
  {
    const std::string dir = FreshDir();
    FaultInjector probe;  // no trigger set: counts bytes only
    StoreOptions options;
    options.dir = dir;
    options.fault_injector = &probe;
    std::string error;
    auto store = Store::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
    EncodingCache cache;
    service::CommunityCatalog live(CatalogOpts(&cache));
    ASSERT_TRUE(store->StartLogging(&live, &error)) << error;
    for (const Op& op : ops) ApplyOp(&live, op);
    store->StopLogging(&live);
    total_bytes = probe.bytes_written;
  }
  ASSERT_GT(total_bytes, 0u);

  // Sweep tear points across the file with a stride that is coprime to
  // the typical record sizes, so the cuts land mid-prefix, mid-payload,
  // and on exact record boundaries.
  for (uint64_t limit = 3; limit < total_bytes; limit += 97) {
    SCOPED_TRACE("torn write at byte " + std::to_string(limit));
    const std::string dir = FreshDir();
    FaultInjector injector;
    injector.crash_write_at_bytes = static_cast<int64_t>(limit);
    {
      StoreOptions options;
      options.dir = dir;
      options.fault_injector = &injector;
      std::string error;
      auto store = Store::Open(options, &error);
      ASSERT_NE(store, nullptr) << error;
      EncodingCache cache;
      service::CommunityCatalog live(CatalogOpts(&cache));
      ASSERT_TRUE(store->StartLogging(&live, &error)) << error;
      for (const Op& op : ops) ApplyOp(&live, op);
      EXPECT_TRUE(injector.dead);
    }
    // The durable prefix is whatever whole records fit under the limit;
    // read it back independently of recovery to fix the expectation.
    LogImage image;
    std::string error;
    ASSERT_TRUE(ReadLog(dir + "/log-0.csj", 0, &image, &error)) << error;
    const uint64_t durable = image.records.size();

    StoreOptions options;
    options.dir = dir;
    OpenStats stats;
    auto store = Store::Open(options, &error, &stats);
    ASSERT_NE(store, nullptr) << error;
    EncodingCache cache;
    service::CommunityCatalog recovered(CatalogOpts(&cache));
    ASSERT_TRUE(store->RestoreInto(&recovered, &error, &stats)) << error;
    EXPECT_EQ(stats.log_records_replayed, durable);
    EXPECT_EQ(stats.log_torn_bytes > 0, image.torn);

    EncodingCache shadow_cache;
    service::CommunityCatalog shadow(CatalogOpts(&shadow_cache));
    BuildShadow(&shadow, durable);
    EXPECT_TRUE(
        service::CatalogsIdentical(shadow, recovered, /*eps=*/2, kTau));

    // fsck: a torn tail is a NON-fatal finding, and --repair truncates
    // it so the next fsck reports nothing at all.
    FsckOptions fsck;
    fsck.dir = dir;
    fsck.repair = true;
    FsckReport report;
    ASSERT_TRUE(FsckStore(fsck, &report));
    EXPECT_TRUE(report.clean())
        << (report.findings.empty() ? "" : report.findings[0].message);
    EXPECT_EQ(report.torn_tail_bytes > 0, image.torn);
    EXPECT_EQ(report.repaired, image.torn);

    FsckReport after;
    ASSERT_TRUE(FsckStore(fsck, &after));
    EXPECT_TRUE(after.clean());
    EXPECT_EQ(after.torn_tail_bytes, 0u);
    EXPECT_EQ(after.log_records, durable);
  }
}

TEST(PersistCrashTest, RecoveredStoreResumesLoggingAndConverges) {
  const std::vector<Op> ops = Script();
  constexpr size_t kCrashBarrier = 5;
  const std::string dir = FreshDir();
  FaultInjector injector;
  injector.crash_after_fsyncs = kCrashBarrier;
  {
    StoreOptions options;
    options.dir = dir;
    options.fault_injector = &injector;
    std::string error;
    auto store = Store::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
    EncodingCache cache;
    service::CommunityCatalog live(CatalogOpts(&cache));
    ASSERT_TRUE(store->StartLogging(&live, &error)) << error;
    for (const Op& op : ops) ApplyOp(&live, op);
    ASSERT_TRUE(injector.dead);
  }

  // Recover, re-attach the log (Open chops any tear first), and apply
  // the ops the crash swallowed. The final state must equal the full
  // script — versions included, because the restored catalog pins its
  // version horizon where the durable prefix left it.
  const uint64_t durable = kCrashBarrier + 1;
  {
    StoreOptions options;
    options.dir = dir;
    std::string error;
    OpenStats stats;
    auto store = Store::Open(options, &error, &stats);
    ASSERT_NE(store, nullptr) << error;
    EncodingCache cache;
    service::CommunityCatalog live(CatalogOpts(&cache));
    ASSERT_TRUE(store->RestoreInto(&live, &error, &stats)) << error;
    ASSERT_EQ(stats.log_records_replayed, durable);
    ASSERT_TRUE(store->StartLogging(&live, &error)) << error;
    for (size_t i = durable; i < ops.size(); ++i) ApplyOp(&live, ops[i]);
    store->StopLogging(&live);

    EncodingCache shadow_cache;
    service::CommunityCatalog shadow(CatalogOpts(&shadow_cache));
    BuildShadow(&shadow, ops.size());
    EXPECT_TRUE(service::CatalogsIdentical(shadow, live, /*eps=*/2, kTau));
  }
  // And the re-written log itself recovers to the same converged state.
  ExpectRecoversPrefix(dir, ops.size());
}

TEST(PersistCrashTest, TornLogHeaderRestartsTheLogInsteadOfWedging) {
  // Regression: a log file shorter than its header (the writer died
  // inside the very first write) reads as truncated_at == 0; resuming
  // used to append records after the garbage bytes, making the next
  // open fail structurally ("bad log magic") — acked records
  // unreachable forever. The writer must instead restart from byte 0
  // with a fresh header.
  const std::string dir = FreshDir();
  std::string error;
  {
    StoreOptions options;
    options.dir = dir;
    auto store = Store::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
  }
  {
    // Plant a torn header: a few junk bytes, fewer than sizeof(LogHeader).
    FILE* torn = std::fopen((dir + "/log-0.csj").c_str(), "wb");
    ASSERT_NE(torn, nullptr);
    std::fputs("junk", torn);
    std::fclose(torn);
  }

  {
    StoreOptions options;
    options.dir = dir;
    OpenStats stats;
    auto store = Store::Open(options, &error, &stats);
    ASSERT_NE(store, nullptr) << error;
    EXPECT_GT(stats.log_torn_bytes, 0u);
    EncodingCache cache;
    service::CommunityCatalog live(CatalogOpts(&cache));
    ASSERT_TRUE(store->RestoreInto(&live, &error, &stats)) << error;
    EXPECT_EQ(stats.log_records_replayed, 0u);
    ASSERT_TRUE(store->StartLogging(&live, &error)) << error;
    live.Upsert(1, MakeTestCommunity(12, 1));
    live.Upsert(2, MakeTestCommunity(13, 2));
    store->StopLogging(&live);
  }

  // The rewritten log must be structurally sound and carry the records.
  StoreOptions options;
  options.dir = dir;
  OpenStats stats;
  auto store = Store::Open(options, &error, &stats);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(stats.log_torn_bytes, 0u);
  EncodingCache cache;
  service::CommunityCatalog recovered(CatalogOpts(&cache));
  ASSERT_TRUE(store->RestoreInto(&recovered, &error, &stats)) << error;
  EXPECT_EQ(stats.log_records_replayed, 2u);
  EXPECT_EQ(recovered.size(), 2u);

  FsckOptions fsck;
  fsck.dir = dir;
  FsckReport report;
  ASSERT_TRUE(FsckStore(fsck, &report));
  EXPECT_TRUE(report.clean())
      << (report.findings.empty() ? "" : report.findings[0].message);
}

TEST(PersistCrashTest, ConcurrentMutationsSurviveRestartByteIdentically) {
  const std::string dir = FreshDir();
  EncodingCache cache;
  service::CommunityCatalog live(CatalogOpts(&cache));
  StoreOptions options;
  options.dir = dir;
  options.log_sync_every = 8;  // batched barriers under contention
  std::string error;
  auto store = Store::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->StartLogging(&live, &error)) << error;

  // Four writers on disjoint id ranges, racing shard locks. The log
  // carries the versions actually issued, so replay reproduces even a
  // nondeterministic interleaving exactly.
  constexpr uint32_t kThreads = 4;
  constexpr uint64_t kPerThread = 24;
  std::vector<std::thread> writers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&live, t] {
      const uint64_t base = 1000ull * (t + 1);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        live.Upsert(base + (i % 16), MakeTestCommunity(10 + t, base + i));
        if (i % 7 == 6) live.Remove(base + ((i - 3) % 16));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  store->StopLogging(&live);
  store.reset();

  StoreOptions reopen;
  reopen.dir = dir;
  OpenStats stats;
  auto recovered_store = Store::Open(reopen, &error, &stats);
  ASSERT_NE(recovered_store, nullptr) << error;
  EncodingCache recovered_cache;
  service::CommunityCatalog recovered(CatalogOpts(&recovered_cache));
  ASSERT_TRUE(recovered_store->RestoreInto(&recovered, &error, &stats))
      << error;
  EXPECT_TRUE(service::CatalogsIdentical(live, recovered, /*eps=*/2, kTau));

  FsckOptions fsck;
  fsck.dir = dir;
  FsckReport report;
  ASSERT_TRUE(FsckStore(fsck, &report));
  EXPECT_TRUE(report.clean())
      << (report.findings.empty() ? "" : report.findings[0].message);
}

TEST(PersistCrashTest, InterruptedCheckpointLeavesOldGenerationServable) {
  const std::string dir = FreshDir();
  EncodingCache cache;
  service::CommunityCatalog live(CatalogOpts(&cache));
  for (uint64_t id = 1; id <= 6; ++id) {
    live.Upsert(id, MakeTestCommunity(12, id));
  }
  StoreOptions options;
  options.dir = dir;
  std::string error;
  {
    auto store = Store::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Checkpoint(live, &error)) << error;
  }

  // Simulate a crash mid-checkpoint: a half-written seg-2 exists but
  // the superblock still names generation 1. The partial file must be
  // inert — recovery serves generation 1 and fsck only NOTES the stray.
  {
    FILE* partial = std::fopen((dir + "/seg-2.csj").c_str(), "wb");
    ASSERT_NE(partial, nullptr);
    std::fputs("partial segment bytes that never committed", partial);
    std::fclose(partial);
  }

  OpenStats stats;
  auto store = Store::Open(options, &error, &stats);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->generation(), 1u);
  EncodingCache recovered_cache;
  service::CommunityCatalog recovered(CatalogOpts(&recovered_cache));
  ASSERT_TRUE(store->RestoreInto(&recovered, &error, &stats)) << error;
  EXPECT_TRUE(service::CatalogsIdentical(live, recovered, /*eps=*/2, kTau));

  FsckOptions fsck;
  fsck.dir = dir;
  FsckReport report;
  ASSERT_TRUE(FsckStore(fsck, &report));
  EXPECT_TRUE(report.clean());
  bool noted_stray = false;
  for (const FsckFinding& finding : report.findings) {
    noted_stray = noted_stray ||
                  (!finding.fatal &&
                   finding.message.find("seg-2.csj") != std::string::npos);
  }
  EXPECT_TRUE(noted_stray);
}

}  // namespace
}  // namespace csj::persist
