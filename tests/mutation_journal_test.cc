// Edge-case tests for the catalog's bounded in-RAM mutation journal:
// capacity-1 wraparound, the TopKMaintainer's truncated-cursor fallback
// to a full recompute, and the no-op Remove of an absent id (which must
// leave journal, sink, and version clock untouched).

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoding_cache.h"
#include "data/generator.h"
#include "evolve/maintainer.h"
#include "service/catalog.h"
#include "service/topk.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::evolve {
namespace {

Community MakeTestCommunity(uint32_t size, uint64_t salt) {
  util::Rng rng(testing::TestSeed(salt));
  data::VkLikeGenerator gen(data::Category::kSport);
  return data::MakeCommunity(gen, size, rng);
}

TEST(MutationJournalTest, CapacityOneRetainsOnlyTheNewestRecord) {
  service::CommunityCatalog::Options options;
  options.mutation_log_capacity = 1;
  service::CommunityCatalog catalog(options);

  const uint64_t v1 = catalog.Upsert(10, MakeTestCommunity(8, 1));
  std::vector<service::MutationRecord> records;
  ASSERT_TRUE(catalog.ReadMutationsSince(0, &records));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[0].id, 10u);
  EXPECT_EQ(records[0].version, v1);

  // The second mutation evicts the first: a cursor at 0 is now BEHIND
  // the retained window and must be told to resynchronize...
  const uint64_t v2 = catalog.Upsert(11, MakeTestCommunity(8, 2));
  records.clear();
  EXPECT_FALSE(catalog.ReadMutationsSince(0, &records));
  EXPECT_TRUE(records.empty());

  // ...while a cursor at the previous head reads exactly the survivor.
  records.clear();
  ASSERT_TRUE(catalog.ReadMutationsSince(1, &records));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 2u);
  EXPECT_EQ(records[0].id, 11u);
  EXPECT_EQ(records[0].version, v2);

  // Wraparound never skips a sequence number: ten more mutations, the
  // head cursor still reads the single newest record each time.
  for (uint64_t i = 0; i < 10; ++i) {
    catalog.Upsert(20 + i, MakeTestCommunity(8, 20 + i));
    records.clear();
    ASSERT_TRUE(catalog.ReadMutationsSince(catalog.mutation_seq() - 1,
                                           &records));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].seq, catalog.mutation_seq());
    EXPECT_EQ(records[0].id, 20 + i);
  }
  // A remove journals too, version 0.
  ASSERT_TRUE(catalog.Remove(11));
  records.clear();
  ASSERT_TRUE(catalog.ReadMutationsSince(catalog.mutation_seq() - 1,
                                         &records));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].remove);
  EXPECT_EQ(records[0].version, 0u);
}

TEST(MutationJournalTest, MaintainerFallsBackWhenItsCursorIsTruncated) {
  EncodingCache cache;
  service::CommunityCatalog::Options options;
  options.cache = &cache;
  options.warm_eps = 1;
  options.mutation_log_capacity = 2;  // tiny: easy to outrun
  service::CommunityCatalog catalog(options);
  for (uint64_t id = 1; id <= 12; ++id) {
    catalog.Upsert(id, MakeTestCommunity(12, id));
  }
  service::TopKSimilarService service(&catalog);

  service::TopKOptions topk;
  topk.k = 3;
  topk.join.eps = 1;
  topk.join.cache = &cache;

  TopKMaintainer::Options maintainer_options;
  maintainer_options.service = &service;
  TopKMaintainer maintainer(&catalog, maintainer_options);
  const auto pivot =
      std::make_shared<const Community>(MakeTestCommunity(12, 999));
  const auto query = maintainer.Register(pivot, topk);
  maintainer.Refresh(query);  // baseline

  // More mutations than the journal retains: the maintainer's cursor is
  // truncated away and Refresh MUST take the full-recompute fallback —
  // and still land on exactly the fresh ranking.
  for (uint64_t id = 1; id <= 8; ++id) {
    catalog.Upsert(id, MakeTestCommunity(14, 100 + id));
  }
  const auto outcome = maintainer.Refresh(query);
  EXPECT_FALSE(outcome.fast_path);
  EXPECT_GE(maintainer.GetStats().log_truncations, 1u);
  EXPECT_TRUE(maintainer.Ranking(query) ==
              service.Query(*pivot, topk).entries);

  // Within-capacity churn right after the resync takes the fast path
  // again (the fallback repaired the cursor, not just the ranking).
  catalog.Upsert(3, MakeTestCommunity(15, 200));
  const auto repaired = maintainer.Refresh(query);
  EXPECT_TRUE(repaired.fast_path);
  EXPECT_TRUE(maintainer.Ranking(query) ==
              service.Query(*pivot, topk).entries);
}

TEST(MutationJournalTest, RemoveOfAbsentIdLeavesEveryObserverUntouched) {
  service::CommunityCatalog::Options options;
  options.mutation_log_capacity = 8;
  service::CommunityCatalog catalog(options);
  catalog.Upsert(1, MakeTestCommunity(8, 1));

  uint64_t sink_events = 0;
  catalog.SetMutationSink(
      [&sink_events](const service::MutationEvent&) { ++sink_events; });

  const uint64_t seq_before = catalog.mutation_seq();
  const uint64_t version_before = catalog.latest_version();
  const uint64_t finished_before = catalog.mutations_finished();

  // Absent id, and an id that was never present at all.
  EXPECT_FALSE(catalog.Remove(77));
  EXPECT_FALSE(catalog.Remove(0));

  EXPECT_EQ(catalog.mutation_seq(), seq_before);
  EXPECT_EQ(catalog.latest_version(), version_before);
  EXPECT_EQ(sink_events, 0u);
  EXPECT_EQ(catalog.size(), 1u);
  std::vector<service::MutationRecord> records;
  ASSERT_TRUE(catalog.ReadMutationsSince(seq_before, &records));
  EXPECT_TRUE(records.empty());

  // A REAL remove right after still journals, fires the sink, and ticks
  // the clock from where the no-ops left it.
  EXPECT_TRUE(catalog.Remove(1));
  EXPECT_EQ(catalog.mutation_seq(), seq_before + 1);
  EXPECT_EQ(sink_events, 1u);
  EXPECT_GE(catalog.mutations_finished(), finished_before + 1);
}

}  // namespace
}  // namespace csj::evolve
