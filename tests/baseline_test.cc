// Tests for Ap-Baseline / Ex-Baseline, including the §3 worked example
// where the approximate method can halve the similarity.

#include <vector>

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/community.h"
#include "matching/greedy.h"

namespace csj {
namespace {

// The §3 example: eps=1, d=3, B={b1,b2}, A={a1,a2,a3}. b1 matches a2 and
// a3; b2 matches only a3.
Community ExampleB() {
  Community b(3);
  b.AddUser(std::vector<Count>{3, 4, 2});
  b.AddUser(std::vector<Count>{2, 2, 3});
  return b;
}

Community ExampleA() {
  Community a(3);
  a.AddUser(std::vector<Count>{2, 3, 5});
  a.AddUser(std::vector<Count>{2, 3, 1});
  a.AddUser(std::vector<Count>{3, 3, 3});
  return a;
}

TEST(ExBaselineTest, Section3ExampleFindsFullSimilarity) {
  JoinOptions options;
  options.eps = 1;
  const JoinResult result = ExBaselineJoin(ExampleB(), ExampleA(), options);
  // Exact: <b1,a2> and <b2,a3> -> similarity 100%.
  EXPECT_EQ(result.pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(result.Similarity(), 1.0);
  EXPECT_TRUE(matching::IsOneToOne(result.pairs));
  EXPECT_EQ(result.stats.candidate_pairs, 3u);
}

TEST(ApBaselineTest, Section3ExampleIsOrderDependent) {
  JoinOptions options;
  options.eps = 1;
  const JoinResult result = ApBaselineJoin(ExampleB(), ExampleA(), options);
  // Scanning A in order, b1 commits to a2 (its first match), which leaves
  // a3 for b2: this scan order happens to recover 100%.
  EXPECT_EQ(result.pairs.size(), 2u);

  // Reorder A so a3 comes first: b1 greedily takes a3 and b2 is stranded —
  // the paper's 50% approximate outcome.
  Community a_reordered(3);
  a_reordered.AddUser(std::vector<Count>{3, 3, 3});  // a3 first
  a_reordered.AddUser(std::vector<Count>{2, 3, 5});
  a_reordered.AddUser(std::vector<Count>{2, 3, 1});
  const JoinResult swapped = ApBaselineJoin(ExampleB(), a_reordered, options);
  EXPECT_EQ(swapped.pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(swapped.Similarity(), 0.5);
}

TEST(ApBaselineTest, OffsetSkipsMatchedPrefix) {
  // All B users match the single leading A user; only the first gets it.
  Community b(1);
  b.AddUser(std::vector<Count>{5});
  b.AddUser(std::vector<Count>{5});
  b.AddUser(std::vector<Count>{5});
  Community a(1);
  a.AddUser(std::vector<Count>{5});
  a.AddUser(std::vector<Count>{100});
  JoinOptions options;
  options.eps = 1;
  const JoinResult result = ApBaselineJoin(b, a, options);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0], (MatchedPair{0, 0}));
  // After b0 consumes a0, later b's start from the offset past it and only
  // compare with a1: 1 match compare for b0, +1 failing compare each for
  // b1 and b2 against a1 only.
  EXPECT_EQ(result.stats.dimension_compares, 3u);
}

TEST(ExBaselineTest, ComparesEveryPair) {
  Community b(2);
  b.AddUser(std::vector<Count>{0, 0});
  b.AddUser(std::vector<Count>{9, 9});
  Community a(2);
  a.AddUser(std::vector<Count>{0, 0});
  a.AddUser(std::vector<Count>{9, 9});
  JoinOptions options;
  options.eps = 1;
  const JoinResult result = ExBaselineJoin(b, a, options);
  EXPECT_EQ(result.stats.dimension_compares, 4u);  // full nested loop
  EXPECT_EQ(result.pairs.size(), 2u);
}

TEST(BaselineTest, EmptyCommunities) {
  const Community empty(4);
  Community one(4);
  one.AddUser(std::vector<Count>{1, 2, 3, 4});
  JoinOptions options;
  options.eps = 1;
  EXPECT_TRUE(ApBaselineJoin(empty, one, options).pairs.empty());
  EXPECT_TRUE(ExBaselineJoin(empty, one, options).pairs.empty());
  EXPECT_TRUE(ApBaselineJoin(one, empty, options).pairs.empty());
  EXPECT_TRUE(ExBaselineJoin(one, empty, options).pairs.empty());
}

TEST(BaselineTest, MatcherKindUpgradesExact) {
  // b0 -> {a0, a1}, b1 -> {a0}: CSF and HK both find 2 here, but verify
  // the kMaxMatching plumbing works end to end.
  Community b(1);
  b.AddUser(std::vector<Count>{1});
  b.AddUser(std::vector<Count>{0});
  Community a(1);
  a.AddUser(std::vector<Count>{0});
  a.AddUser(std::vector<Count>{2});
  JoinOptions options;
  options.eps = 1;
  options.matcher = matching::MatcherKind::kMaxMatching;
  const JoinResult result = ExBaselineJoin(b, a, options);
  EXPECT_EQ(result.pairs.size(), 2u);
}

TEST(BaselineTest, EventLogRecordsComparisons) {
  JoinOptions options;
  options.eps = 1;
  EventLog log;
  options.event_log = &log;
  (void)ExBaselineJoin(ExampleB(), ExampleA(), options);
  // 2x3 full nested loop: six records, three of them matches.
  ASSERT_EQ(log.records.size(), 6u);
  int match_events = 0;
  for (const EventRecord& r : log.records) {
    match_events += r.event == Event::kMatch ? 1 : 0;
  }
  EXPECT_EQ(match_events, 3);
}

}  // namespace
}  // namespace csj
