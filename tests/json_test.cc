// Tests for the streaming JSON writer used by the CLI and bench --json
// modes.

#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "util/json_writer.h"

namespace csj::util {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter json;
  json.BeginObject();
  json.Key("method");
  json.String("Ex-MinMax");
  json.Key("similarity");
  json.Double(0.25);
  json.Key("pairs");
  json.Uint(42);
  json.Key("exact");
  json.Bool(true);
  json.EndObject();
  EXPECT_EQ(json.Take(),
            "{\"method\":\"Ex-MinMax\",\"similarity\":0.25,\"pairs\":42,"
            "\"exact\":true}");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter json;
  json.BeginObject();
  json.Key("rows");
  json.BeginArray();
  json.BeginObject();
  json.Key("b");
  json.Int(-1);
  json.EndObject();
  json.BeginObject();
  json.Key("b");
  json.Int(2);
  json.EndObject();
  json.EndArray();
  json.Key("tail");
  json.Null();
  json.EndObject();
  EXPECT_EQ(json.Take(), "{\"rows\":[{\"b\":-1},{\"b\":2}],\"tail\":null}");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter json;
  json.BeginArray();
  json.BeginObject();
  json.EndObject();
  json.BeginArray();
  json.EndArray();
  json.EndArray();
  EXPECT_EQ(json.Take(), "[{},[]]");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter json;
  json.BeginObject();
  json.Key("quote\"backslash\\");
  json.String("line\nbreak\ttab\rcr");
  json.EndObject();
  EXPECT_EQ(json.Take(),
            "{\"quote\\\"backslash\\\\\":\"line\\nbreak\\ttab\\rcr\"}");
}

TEST(JsonWriterTest, ControlCharactersEscapedAsUnicode) {
  JsonWriter json;
  json.String(std::string("\x01", 1));
  EXPECT_EQ(json.Take(), "\"\\u0001\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Double(1.5);
  json.Double(std::numeric_limits<double>::infinity());
  json.Double(std::numeric_limits<double>::quiet_NaN());
  json.EndArray();
  EXPECT_EQ(json.Take(), "[1.5,null,null]");
}

TEST(JsonWriterTest, RootScalars) {
  JsonWriter a;
  a.Int(7);
  EXPECT_EQ(a.Take(), "7");
  JsonWriter b;
  b.String("x");
  EXPECT_EQ(b.Take(), "\"x\"");
}

TEST(JsonWriterTest, TakeResetsTheWriter) {
  JsonWriter json;
  json.Int(1);
  EXPECT_EQ(json.Take(), "1");
  json.Int(2);
  EXPECT_EQ(json.Take(), "2");
}

TEST(JsonWriterTest, ArraysOfMixedScalars) {
  JsonWriter json;
  json.BeginArray();
  json.Uint(18446744073709551615ULL);
  json.Int(-9000);
  json.Bool(false);
  json.Double(0.5);
  json.EndArray();
  EXPECT_EQ(json.Take(), "[18446744073709551615,-9000,false,0.5]");
}

}  // namespace
}  // namespace csj::util
