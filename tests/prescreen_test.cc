// Differential test of prescreen serving: with the signature index in
// front of the exact bound+refine path, every top-k query must return
// BYTE-IDENTICAL rankings — same (id, similarity) sequence, same double
// bits — as the exhaustive scan, on hundreds of seeded catalogs. The
// suite also pins the fallback contract (certified results skip the
// fallback, uncertified ones rerun exhaustively), the stats invariants,
// the inert configurations, and index/entry-map consistency under
// concurrent upsert/remove churn (the TSan target).

#include "service/topk.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/method.h"
#include "core/signature.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "service/catalog.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::service {
namespace {

CommunityCatalog::Options WithSignatures() {
  CommunityCatalog::Options options;
  options.signatures = SignatureOptions{};
  return options;
}

/// One seeded catalog + query, signatures enabled. Mirrors the
/// topk_service_test scenario builder but mixes categories so the
/// signature sweep sees genuinely dissimilar entries it can certify away
/// (same-category noise mostly survives the cap; cross-category noise
/// mostly does not).
struct Scenario {
  CommunityCatalog catalog{WithSignatures()};
  Community query{1};
};

void BuildScenario(Scenario* scenario, uint64_t salt, Epsilon eps) {
  util::Rng rng(testing::TestSeed(salt));
  data::VkLikeGenerator gen(
      static_cast<data::Category>(salt % data::kNumCategories));
  const uint32_t entries = 8 + static_cast<uint32_t>(rng.Below(9));  // 8-16

  const auto query_size = static_cast<uint32_t>(rng.Between(14, 24));
  scenario->query = data::MakeCommunity(gen, query_size, rng);

  for (uint64_t id = 1; id <= entries; ++id) {
    const auto size = static_cast<uint32_t>(rng.Between(12, 30));
    Community community(gen.d());
    const double roll = rng.NextDouble();
    if (roll < 0.4) {
      // Planted against the query at a graded similarity target.
      data::CoupleSpec spec;
      spec.size_b = size;
      spec.eps = eps;
      const double target = 0.1 + 0.15 * static_cast<double>(id % 5);
      const double cap = 0.9 * static_cast<double>(scenario->query.size()) /
                         static_cast<double>(size);
      spec.target_similarity = std::min(target, cap);
      community = data::PlantCommunityAgainst(scenario->query, gen, spec, rng);
    } else if (roll < 0.7) {
      // Same-category noise: plausible but unplanted.
      community = data::MakeCommunity(gen, size, rng);
    } else {
      // Cross-category noise: what the sweep should certify away.
      data::VkLikeGenerator other(static_cast<data::Category>(
          (salt + id) % data::kNumCategories));
      community = data::MakeCommunity(other, size, rng);
    }
    scenario->catalog.Upsert(id, std::move(community));
  }
}

/// The two arms differ ONLY in options.prescreen.
void ExpectPrescreenIdentity(const Scenario& scenario, Epsilon eps,
                             uint32_t k, double threshold,
                             uint64_t* skipped_total,
                             uint64_t* fallback_total,
                             uint64_t* certified_total,
                             uint64_t* packs_skipped_total) {
  const TopKSimilarService service(&scenario.catalog);
  TopKOptions options;
  options.k = k;
  options.method = Method::kExMinMax;
  options.join.eps = eps;
  options.prescreen_threshold = threshold;

  options.prescreen = false;
  const TopKResult scan = service.Query(scenario.query, options);
  options.prescreen = true;
  const TopKResult screened = service.Query(scenario.query, options);

  EXPECT_FALSE(scan.deadline_expired);
  EXPECT_FALSE(screened.deadline_expired);
  ASSERT_EQ(screened.entries.size(), scan.entries.size());
  for (size_t i = 0; i < scan.entries.size(); ++i) {
    EXPECT_EQ(screened.entries[i], scan.entries[i])
        << "rank " << i << " diverged (eps " << eps << ", k " << k
        << ", tau " << threshold << ")";
  }

  // Stats invariants of the prescreen path.
  if (screened.stats.fallback == 0) {
    EXPECT_EQ(screened.stats.prescreen_probed + screened.stats.prescreen_skipped,
              static_cast<uint64_t>(screened.stats.catalog_entries));
    EXPECT_EQ(screened.stats.admissible + screened.stats.inadmissible,
              screened.stats.prescreen_probed);
    ++*certified_total;
  } else {
    EXPECT_EQ(screened.stats.fallback, 1u);
    // The fallback refined against the full snapshot.
    EXPECT_EQ(screened.stats.catalog_entries, scan.stats.catalog_entries);
    ++*fallback_total;
  }
  *skipped_total += screened.stats.prescreen_skipped;
  *packs_skipped_total += screened.stats.prescreen_packs_skipped;
}

TEST(PrescreenTest, IdenticalToExhaustiveScanOnSeededCatalogs) {
  const Epsilon eps_values[] = {0, 2, 8};
  const uint32_t k_values[] = {1, 3, 5};
  uint64_t skipped = 0, fallbacks = 0, certified = 0, packs_skipped = 0;
  // 120 scenarios x 3 (eps, k) pairings = 360 seeded catalog
  // comparisons (>= the 300 the acceptance bar asks for).
  for (uint64_t salt = 0; salt < 120; ++salt) {
    for (uint32_t variant = 0; variant < 3; ++variant) {
      Scenario scenario;
      const Epsilon eps = eps_values[variant];
      BuildScenario(&scenario, salt * 3 + variant, eps);
      ExpectPrescreenIdentity(scenario, eps, k_values[variant],
                              /*threshold=*/0.10, &skipped, &fallbacks,
                              &certified, &packs_skipped);
    }
  }
  // The suite must exercise all three regimes: entries certified away by
  // the sweep, queries that fall back, and queries certified without a
  // fallback — otherwise the differential proves nothing. The pack-level
  // prefilter must also fire somewhere across the 360 catalogs, or the
  // second filter level rode along untested.
  EXPECT_GT(skipped, 0u) << "no entry was ever prescreen-skipped";
  EXPECT_GT(fallbacks, 0u) << "the fallback path never ran";
  EXPECT_GT(certified, 0u) << "no query was ever certified";
  EXPECT_GT(packs_skipped, 0u) << "the pack prefilter never skipped a pack";
}

TEST(PrescreenTest, EmptyQueryReturnsEmptyResultOnce) {
  Scenario scenario;
  BuildScenario(&scenario, 7001, /*eps=*/1);
  const TopKSimilarService service(&scenario.catalog);
  TopKOptions options;
  options.k = 3;
  const Community empty(scenario.query.d());
  for (const bool prescreen : {false, true}) {
    options.prescreen = prescreen;
    const TopKResult result = service.Query(empty, options);
    EXPECT_TRUE(result.entries.empty());
    EXPECT_EQ(result.stats.refined, 0u);
    EXPECT_EQ(result.stats.inadmissible, result.stats.catalog_entries);
  }
}

TEST(PrescreenTest, InertWithoutSignatureIndex) {
  // prescreen = true against a catalog built WITHOUT signatures must
  // silently take the exhaustive path (documented inert case).
  CommunityCatalog catalog;  // no Options::signatures
  util::Rng rng(testing::TestSeed(7002));
  data::VkLikeGenerator gen(data::Category::kMusic);
  for (uint64_t id = 1; id <= 6; ++id) {
    catalog.Upsert(id, data::MakeCommunity(
                           gen, static_cast<uint32_t>(rng.Between(12, 20)),
                           rng));
  }
  const Community query = data::MakeCommunity(gen, 16, rng);
  const TopKSimilarService service(&catalog);
  TopKOptions options;
  options.k = 3;
  options.prescreen = true;
  const TopKResult result = service.Query(query, options);
  EXPECT_EQ(result.stats.prescreen_probed, 0u);
  EXPECT_EQ(result.stats.prescreen_skipped, 0u);
  EXPECT_EQ(result.stats.fallback, 0u);
  EXPECT_EQ(result.stats.catalog_entries, 6u);
}

TEST(PrescreenTest, FallbackFillsKWhenCandidatesCannotCertify) {
  // A high threshold starves the candidate set; the fallback must still
  // produce the full exhaustive top-k.
  Scenario scenario;
  BuildScenario(&scenario, 7003, /*eps=*/1);
  const TopKSimilarService service(&scenario.catalog);
  TopKOptions options;
  options.k = 5;
  options.join.eps = 1;
  options.prescreen_threshold = 0.99;  // virtually nothing passes

  options.prescreen = false;
  const TopKResult scan = service.Query(scenario.query, options);
  options.prescreen = true;
  const TopKResult screened = service.Query(scenario.query, options);
  ASSERT_EQ(screened.entries.size(), scan.entries.size());
  for (size_t i = 0; i < scan.entries.size(); ++i) {
    EXPECT_EQ(screened.entries[i], scan.entries[i]) << "rank " << i;
  }
  EXPECT_EQ(screened.stats.fallback, 1u);
}

TEST(PrescreenTest, ThresholdZeroAdmitsEverythingAndSkipsFallback) {
  // tau <= 0: the sweep passes every admissible entry, so the candidate
  // set IS the snapshot and the service must not rerun exhaustively.
  Scenario scenario;
  BuildScenario(&scenario, 7004, /*eps=*/1);
  const TopKSimilarService service(&scenario.catalog);
  TopKOptions options;
  options.k = 3;
  options.join.eps = 1;
  options.prescreen = true;
  options.prescreen_threshold = 0.0;
  const TopKResult result = service.Query(scenario.query, options);
  EXPECT_EQ(result.stats.fallback, 0u);
  EXPECT_EQ(result.stats.prescreen_skipped, 0u);
  EXPECT_EQ(result.stats.prescreen_probed,
            static_cast<uint64_t>(result.stats.catalog_entries));
}

TEST(PrescreenTest, IndexTracksCatalogUnderConcurrentChurn) {
  // The TSan target: writers upsert/remove while readers probe and
  // query. Afterwards the signature index must agree with the entry map
  // exactly — every snapshot entry resident in exactly one shard at the
  // entry's version — and prescreen must still equal the scan.
  CommunityCatalog catalog(WithSignatures());
  constexpr uint32_t kIds = 48;
  constexpr uint32_t kWriters = 3;
  constexpr uint32_t kReaders = 2;
  constexpr uint32_t kOpsPerWriter = 120;

  {
    util::Rng seed_rng(testing::TestSeed(7100));
    data::VkLikeGenerator gen(data::Category::kEntertainment);
    for (uint64_t id = 1; id <= kIds; ++id) {
      catalog.Upsert(id,
                     data::MakeCommunity(
                         gen, static_cast<uint32_t>(seed_rng.Between(12, 24)),
                         seed_rng));
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> crew;
  for (uint32_t w = 0; w < kWriters; ++w) {
    crew.emplace_back([&, w] {
      util::Rng rng(testing::TestSeed(7200 + w));
      data::VkLikeGenerator gen(
          static_cast<data::Category>(w % data::kNumCategories));
      for (uint32_t op = 0; op < kOpsPerWriter; ++op) {
        const uint64_t id = 1 + rng.Below(kIds);
        if (rng.NextDouble() < 0.8) {
          catalog.Upsert(id, data::MakeCommunity(
                                 gen,
                                 static_cast<uint32_t>(rng.Between(12, 24)),
                                 rng));
        } else {
          catalog.Remove(id);
        }
      }
    });
  }
  for (uint32_t r = 0; r < kReaders; ++r) {
    crew.emplace_back([&, r] {
      util::Rng rng(testing::TestSeed(7300 + r));
      data::VkLikeGenerator gen(data::Category::kInternet);
      const TopKSimilarService service(&catalog);
      TopKOptions options;
      options.k = 3;
      options.prescreen = true;
      while (!stop.load(std::memory_order_acquire)) {
        const Community query = data::MakeCommunity(
            gen, static_cast<uint32_t>(rng.Between(14, 22)), rng);
        const TopKResult result = service.Query(query, options);
        // Under churn the sweep's verdicts must stay internally
        // consistent even as the resident set changes between queries.
        if (result.stats.fallback == 0) {
          EXPECT_EQ(result.stats.prescreen_probed +
                        result.stats.prescreen_skipped,
                    static_cast<uint64_t>(result.stats.catalog_entries));
        }
      }
    });
  }
  for (uint32_t w = 0; w < kWriters; ++w) crew[w].join();
  stop.store(true, std::memory_order_release);
  for (uint32_t r = kWriters; r < crew.size(); ++r) crew[r].join();

  // Quiesced: index and entry map must agree exactly.
  const SignatureIndex* index = catalog.signature_index();
  ASSERT_NE(index, nullptr);
  const std::vector<CatalogEntry> snapshot = catalog.Snapshot();
  ASSERT_EQ(index->size(), snapshot.size());
  for (const CatalogEntry& entry : snapshot) {
    uint32_t resident_in = 0;
    for (uint32_t shard = 0; shard < index->shards(); ++shard) {
      uint64_t version = 0;
      const auto signature = index->Lookup(shard, entry.id, &version);
      if (signature == nullptr) continue;
      ++resident_in;
      EXPECT_EQ(version, entry.version) << "id " << entry.id;
      EXPECT_EQ(signature->size(), entry.community->size());
    }
    EXPECT_EQ(resident_in, 1u) << "id " << entry.id;
  }

  // And the settled catalog still serves identical rankings both ways.
  util::Rng rng(testing::TestSeed(7400));
  data::VkLikeGenerator gen(data::Category::kEntertainment);
  const Community query = data::MakeCommunity(gen, 18, rng);
  const TopKSimilarService service(&catalog);
  TopKOptions options;
  options.k = 5;
  options.prescreen = false;
  const TopKResult scan = service.Query(query, options);
  options.prescreen = true;
  const TopKResult screened = service.Query(query, options);
  ASSERT_EQ(screened.entries.size(), scan.entries.size());
  for (size_t i = 0; i < scan.entries.size(); ++i) {
    EXPECT_EQ(screened.entries[i], scan.entries[i]) << "rank " << i;
  }
}

}  // namespace
}  // namespace csj::service
