// TopKResultCache: the versioned-invalidation contract at the unit level
// (monotonic-clock invalidation, stale-insert drop, FIFO eviction), then
// the server-level differential gates — a quiesced cache-on server must
// answer byte-identically to a direct cache-off Query, and under
// concurrent upsert churn every response naming the same catalog state
// must carry the same bytes (a stale hit served across a version bump
// would disagree with a fresh recompute at that state and fail here).

#include "service/result_cache.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "service/server.h"
#include "service/workload.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::service {
namespace {

TopKResultCache::Ranking MakeRanking(std::vector<TopKEntry> entries) {
  return std::make_shared<const std::vector<TopKEntry>>(std::move(entries));
}

ResultCacheKey MakeKey(uint64_t state_version, uint64_t fingerprint,
                       uint32_t k = 10) {
  ResultCacheKey key;
  key.state_version = state_version;
  key.query_fingerprint = fingerprint;
  key.k = k;
  key.eps = 1;
  key.method = 0;
  return key;
}

TEST(ResultCache, MissThenInsertThenHit) {
  TopKResultCache cache(TopKResultCache::Options{4, 64});
  const ResultCacheKey key = MakeKey(5, 0xF00D);
  EXPECT_EQ(cache.Lookup(key), nullptr);

  const std::vector<TopKEntry> entries = {{1, 3, 0.5}, {2, 1, 0.25}};
  cache.Insert(key, MakeRanking(entries));
  const TopKResultCache::Ranking hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, entries);

  const TopKResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, FullKeyMustMatch) {
  TopKResultCache cache(TopKResultCache::Options{4, 64});
  cache.Insert(MakeKey(5, 0xF00D, /*k=*/10), MakeRanking({{1, 1, 0.5}}));
  // Same query, same state, different k: a different computation.
  EXPECT_EQ(cache.Lookup(MakeKey(5, 0xF00D, /*k=*/3)), nullptr);
  // Same everything, older state: never served.
  EXPECT_EQ(cache.Lookup(MakeKey(4, 0xF00D, /*k=*/10)), nullptr);
  EXPECT_NE(cache.Lookup(MakeKey(5, 0xF00D, /*k=*/10)), nullptr);
}

TEST(ResultCache, NewerTagInvalidatesShard) {
  TopKResultCache cache(TopKResultCache::Options{4, 64});
  // Same fingerprint => same shard, so the k=7 insert at state 6 must
  // clear BOTH state-5 residents (they are unreachable: the clock never
  // reads 5 again).
  cache.Insert(MakeKey(5, 0xBEEF, 10), MakeRanking({{1, 1, 0.5}}));
  cache.Insert(MakeKey(5, 0xBEEF, 3), MakeRanking({{1, 1, 0.5}}));
  cache.Insert(MakeKey(6, 0xBEEF, 7), MakeRanking({{2, 2, 0.75}}));

  EXPECT_EQ(cache.Lookup(MakeKey(5, 0xBEEF, 10)), nullptr);
  EXPECT_EQ(cache.Lookup(MakeKey(5, 0xBEEF, 3)), nullptr);
  EXPECT_NE(cache.Lookup(MakeKey(6, 0xBEEF, 7)), nullptr);

  const TopKResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, StaleInsertIsDropped) {
  TopKResultCache cache(TopKResultCache::Options{4, 64});
  cache.Insert(MakeKey(6, 0xCAFE, 10), MakeRanking({{2, 2, 0.75}}));
  // A ranking computed against superseded state 5 arrives late (two
  // same-shard queries raced across an upsert): it must not be installed.
  cache.Insert(MakeKey(5, 0xCAFE, 10), MakeRanking({{1, 1, 0.5}}));
  EXPECT_EQ(cache.Lookup(MakeKey(5, 0xCAFE, 10)), nullptr);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(ResultCache, FifoEvictionAtCapacity) {
  // One shard, capacity 4: the 6th distinct key evicts the 2 oldest.
  TopKResultCache cache(TopKResultCache::Options{1, 4});
  for (uint64_t q = 0; q < 6; ++q) {
    cache.Insert(MakeKey(9, 0x1000 + q), MakeRanking({{q, 1, 0.5}}));
  }
  const TopKResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(cache.Lookup(MakeKey(9, 0x1000)), nullptr);  // oldest: gone
  EXPECT_EQ(cache.Lookup(MakeKey(9, 0x1001)), nullptr);
  EXPECT_NE(cache.Lookup(MakeKey(9, 0x1005)), nullptr);  // newest: kept
}

TEST(ResultCache, ReinsertSameKeyDoesNotGrow) {
  TopKResultCache cache(TopKResultCache::Options{1, 4});
  const ResultCacheKey key = MakeKey(9, 0xD1CE);
  cache.Insert(key, MakeRanking({{1, 1, 0.5}}));
  cache.Insert(key, MakeRanking({{1, 1, 0.5}}));  // benign same-key race
  const TopKResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.evictions, 0u);
}

// ---------------------------------------------------------------------
// Server-level differential gates.
// ---------------------------------------------------------------------

WorkloadOptions SmallWorkload(uint64_t seed) {
  WorkloadOptions options;
  options.catalog_size = 10;
  options.community_size = 60;
  options.upsert_fraction = 0.0;
  options.seed = seed;
  return options;
}

/// A quiesced cache-on server answers every query twice; the second pass
/// must hit, and both passes must be byte-identical to the direct
/// cache-off TopKSimilarService::Query on the same catalog.
TEST(ResultCacheServer, QuiescedHitsAreByteIdenticalToRecompute) {
  const ServeWorkload workload(
      SmallWorkload(csj::testing::TestSeed(0x5CA1E)));

  CsjServer::Options options;
  options.workers = 2;
  options.result_cache = true;
  CsjServer server(options);
  workload.Populate(&server);

  TopKOptions topk;
  topk.k = 5;

  for (const std::shared_ptr<const Community>& community :
       workload.communities()) {
    const TopKResult reference = server.topk().Query(*community, topk);

    ServeRequest request;
    request.kind = RequestKind::kTopK;
    request.community = community;
    request.topk = topk;

    const ServeResponse first = server.SubmitAndWait(request);
    const ServeResponse second = server.SubmitAndWait(request);
    ASSERT_EQ(first.status, ServeStatus::kOk);
    ASSERT_EQ(second.status, ServeStatus::kOk);
    // The catalog is quiescent: the miss was computed against a proven
    // stable state, so the second pass must be a hit at the same tag.
    EXPECT_FALSE(first.cache_hit);
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(first.state_version, second.state_version);
    EXPECT_NE(first.state_version, 0u);
    // Byte identity (TopKEntry::operator== compares double bits exactly
    // for our deterministic pipelines — same (id, version, similarity)).
    EXPECT_EQ(first.topk.entries, reference.entries);
    EXPECT_EQ(second.topk.entries, reference.entries);
  }

  const CsjServer::Stats stats = server.GetStats();
  EXPECT_GE(stats.result_cache.hits, workload.communities().size());
}

/// The churn differential: readers hammer the seeded pool while a writer
/// upserts over it. Group every OK response by (query index, the catalog
/// state tag it names); within a group, all responses — hits and fresh
/// computes alike — must be byte-identical. A cache serving a ranking
/// from before an upsert under a post-upsert tag would break the group.
TEST(ResultCacheServer, ChurnNeverServesStaleBytes) {
  const ServeWorkload workload(
      SmallWorkload(csj::testing::TestSeed(0xC4012)));

  CsjServer::Options options;
  options.workers = 3;
  options.result_cache = true;
  CsjServer server(options);
  workload.Populate(&server);

  TopKOptions topk;
  topk.k = 5;

  struct Observation {
    uint32_t query = 0;
    uint64_t state_version = 0;
    bool cache_hit = false;
    std::vector<TopKEntry> entries;
  };
  std::mutex observations_mu;
  std::vector<Observation> observations;

  constexpr int kReaders = 3;
  constexpr int kReadsPerReader = 60;
  constexpr int kChurnUpserts = 40;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng(csj::testing::TestSeed(0x8EAD + static_cast<uint64_t>(r)));
      for (int i = 0; i < kReadsPerReader; ++i) {
        const auto query = static_cast<uint32_t>(
            rng.Below(workload.communities().size()));
        ServeRequest request;
        request.kind = RequestKind::kTopK;
        request.community = workload.communities()[query];
        request.topk = topk;
        const ServeResponse response = server.SubmitAndWait(request);
        if (response.status != ServeStatus::kOk) continue;
        std::lock_guard lock(observations_mu);
        observations.push_back({query, response.state_version,
                                response.cache_hit,
                                response.topk.entries});
      }
    });
  }

  std::thread churn([&] {
    util::Rng rng(csj::testing::TestSeed(0xC403));
    for (int i = 0; i < kChurnUpserts; ++i) {
      // Install a different seeded community over a random id: real
      // content changes, so any stale ranking has different bytes.
      const uint64_t id = 1 + rng.Below(workload.communities().size());
      const auto source = static_cast<uint32_t>(
          rng.Below(workload.communities().size()));
      ServeRequest request;
      request.kind = RequestKind::kUpsert;
      request.id = id;
      request.community = workload.communities()[source];
      (void)server.SubmitAndWait(request);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (std::thread& reader : readers) reader.join();
  churn.join();

  // Group by (query, named stable state); bytes must agree within every
  // group. state_version == 0 means "no stable state can be named" — the
  // cache was bypassed there, nothing to cross-check.
  std::map<std::pair<uint32_t, uint64_t>, const Observation*> canonical;
  uint64_t grouped = 0;
  for (const Observation& observation : observations) {
    if (observation.state_version == 0) continue;
    ++grouped;
    const auto key =
        std::make_pair(observation.query, observation.state_version);
    const auto [it, fresh] = canonical.emplace(key, &observation);
    if (!fresh) {
      EXPECT_EQ(observation.entries, it->second->entries)
          << "divergent bytes for query " << observation.query
          << " at catalog state " << observation.state_version
          << " (hit=" << observation.cache_hit << ")";
    }
  }
  EXPECT_GT(grouped, 0u);

  // End state: quiesced, every query must match the direct cache-off
  // recompute (final stable tag, hit or miss).
  for (uint32_t q = 0;
       q < static_cast<uint32_t>(workload.communities().size()); ++q) {
    const TopKResult reference =
        server.topk().Query(*workload.communities()[q], topk);
    ServeRequest request;
    request.kind = RequestKind::kTopK;
    request.community = workload.communities()[q];
    request.topk = topk;
    const ServeResponse response = server.SubmitAndWait(request);
    ASSERT_EQ(response.status, ServeStatus::kOk);
    EXPECT_EQ(response.topk.entries, reference.entries);
  }
}

}  // namespace
}  // namespace csj::service
