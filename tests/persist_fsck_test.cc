// Corruption-injection tests for csj_fsck: one flipped byte per region
// class (superblock, segment header, section table, every section
// payload, log header, log record) must surface a finding, a clean
// store must pass, and CRC-consistent semantic corruption must be
// caught by the deep recompute pass that checksums cannot see.

#include "persist/fsck.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoding_cache.h"
#include "core/signature.h"
#include "data/generator.h"
#include "persist/crc32.h"
#include "persist/format.h"
#include "persist/segment.h"
#include "persist/store.h"
#include "service/catalog.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::persist {
namespace {

Community MakeTestCommunity(uint32_t size, uint64_t salt) {
  util::Rng rng(testing::TestSeed(salt));
  data::VkLikeGenerator gen(data::Category::kSport);
  return data::MakeCommunity(gen, size, rng);
}

std::string FreshDir() {
  std::string tmpl = ::testing::TempDir() + "csj_fsck_XXXXXX";
  const char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Builds a store with a sealed segment (every artifact class present)
/// plus a log tail with both record kinds.
void BuildStore(const std::string& dir) {
  EncodingCache cache;
  service::CommunityCatalog::Options options;
  options.cache = &cache;
  options.warm_eps = 2;
  options.signatures = SignatureOptions{};
  service::CommunityCatalog catalog(options);
  for (uint64_t id = 1; id <= 12; ++id) {
    catalog.Upsert(id, MakeTestCommunity(10 + static_cast<uint32_t>(id % 6),
                                         id));
  }
  StoreOptions store_options;
  store_options.dir = dir;
  std::string error;
  auto store = Store::Open(store_options, &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->Checkpoint(catalog, &error)) << error;
  ASSERT_TRUE(store->StartLogging(&catalog, &error)) << error;
  catalog.Upsert(50, MakeTestCommunity(14, 50));
  catalog.Upsert(3, MakeTestCommunity(18, 51));
  catalog.Remove(9);
  store->StopLogging(&catalog);
}

FsckReport Fsck(const std::string& dir, bool deep = true) {
  FsckOptions options;
  options.dir = dir;
  options.deep = deep;
  FsckReport report;
  EXPECT_TRUE(FsckStore(options, &report));
  return report;
}

void FlipByte(const std::string& path, size_t offset) {
  std::vector<uint8_t> bytes = ReadFile(path);
  ASSERT_LT(offset, bytes.size()) << path;
  bytes[offset] ^= 0x40;
  WriteFile(path, bytes);
}

TEST(PersistFsckTest, CleanStorePassesDeepVerification) {
  const std::string dir = FreshDir();
  BuildStore(dir);
  const FsckReport report = Fsck(dir);
  EXPECT_TRUE(report.clean())
      << (report.findings.empty() ? "" : report.findings[0].message);
  EXPECT_EQ(report.findings.size(), 0u);
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(report.segment_entries, 12u);
  EXPECT_EQ(report.log_records, 3u);
}

TEST(PersistFsckTest, FlippedSuperblockByteIsFatal) {
  const std::string dir = FreshDir();
  BuildStore(dir);
  // Byte 3 sits inside the magic; byte 40 inside reserved bytes the CRC
  // still covers — both corruptions must be fatal.
  for (const size_t offset : {size_t{3}, size_t{40}}) {
    SCOPED_TRACE("superblock byte " + std::to_string(offset));
    const std::vector<uint8_t> pristine = ReadFile(dir + "/superblock.csj");
    FlipByte(dir + "/superblock.csj", offset);
    EXPECT_FALSE(Fsck(dir).clean());
    WriteFile(dir + "/superblock.csj", pristine);
  }
  EXPECT_TRUE(Fsck(dir).clean());
}

TEST(PersistFsckTest, FlippedSegmentHeaderAndTableBytesAreFatal) {
  const std::string dir = FreshDir();
  BuildStore(dir);
  const std::string seg = dir + "/seg-1.csj";
  const std::vector<uint8_t> pristine = ReadFile(seg);
  // Header: entry_count field. Table: first descriptor's kind field.
  for (const size_t offset : {offsetof(SegmentHeader, entry_count),
                              sizeof(SegmentHeader)}) {
    SCOPED_TRACE("segment byte " + std::to_string(offset));
    FlipByte(seg, offset);
    EXPECT_FALSE(Fsck(dir).clean());
    WriteFile(seg, pristine);
  }
  EXPECT_TRUE(Fsck(dir).clean());
}

TEST(PersistFsckTest, FlippedByteInEverySectionPayloadIsFatal) {
  const std::string dir = FreshDir();
  BuildStore(dir);
  const std::string seg = dir + "/seg-1.csj";
  const std::vector<uint8_t> pristine = ReadFile(seg);

  // Walk the real section table so the sweep covers every region class
  // the writer emitted — ids, versions, counters, sketches, encodings,
  // windows, all of them.
  std::string error;
  auto mapped = MappedSegment::Map(seg, false, false, &error);
  ASSERT_NE(mapped, nullptr) << error;
  std::vector<SectionDesc> sections(mapped->sections().begin(),
                                    mapped->sections().end());
  mapped.reset();
  EXPECT_GE(sections.size(), 20u);

  size_t covered = 0;
  for (const SectionDesc& desc : sections) {
    if (desc.byte_size == 0) continue;  // nothing to corrupt
    SCOPED_TRACE("section kind " + std::to_string(desc.kind));
    FlipByte(seg, desc.offset + desc.byte_size / 2);
    const FsckReport report = Fsck(dir, /*deep=*/false);
    EXPECT_FALSE(report.clean());  // payload CRC alone must catch it
    WriteFile(seg, pristine);
    ++covered;
  }
  EXPECT_GE(covered, 20u);
  EXPECT_TRUE(Fsck(dir).clean());
}

TEST(PersistFsckTest, FlippedLogBytesAreDetected) {
  const std::string dir = FreshDir();
  BuildStore(dir);
  const std::string log = dir + "/log-1.csj";
  const std::vector<uint8_t> pristine = ReadFile(log);

  // Log header: structural, fatal.
  FlipByte(log, 10);
  EXPECT_FALSE(Fsck(dir).clean());
  WriteFile(log, pristine);

  // A flipped byte inside the FIRST record's payload fails that
  // record's CRC; the reader cannot distinguish it from a torn tail, so
  // fsck reports the tail (here: nearly the whole log) as a finding.
  FlipByte(log, sizeof(LogHeader) + sizeof(LogRecordPrefix) + 4);
  const FsckReport report = Fsck(dir);
  EXPECT_FALSE(report.findings.empty());
  EXPECT_GT(report.torn_tail_bytes, 0u);
  EXPECT_EQ(report.log_records, 0u);  // the whole tail is quarantined
  WriteFile(log, pristine);
  EXPECT_TRUE(Fsck(dir).clean());
}

TEST(PersistFsckTest, CrcConsistentSemanticCorruptionNeedsDeepMode) {
  const std::string dir = FreshDir();
  BuildStore(dir);
  const std::string seg = dir + "/seg-1.csj";
  std::vector<uint8_t> bytes = ReadFile(seg);

  // Flip one counter in the kCounts payload, then REPAIR every checksum
  // above it (section CRC, table CRC, header CRC) so the file is
  // structurally immaculate. Only recomputation can catch this.
  SegmentHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  std::vector<SectionDesc> sections(header.section_count);
  std::memcpy(sections.data(), bytes.data() + sizeof(header),
              sections.size() * sizeof(SectionDesc));
  SectionDesc* counts = nullptr;
  for (SectionDesc& desc : sections) {
    if (desc.kind == static_cast<uint32_t>(SectionKind::kCounts)) {
      counts = &desc;
    }
  }
  ASSERT_NE(counts, nullptr);
  ASSERT_GT(counts->byte_size, 0u);
  bytes[counts->offset + counts->byte_size / 2] ^= 0x01;
  counts->crc = Crc32c(bytes.data() + counts->offset, counts->byte_size);
  std::memcpy(bytes.data() + sizeof(header), sections.data(),
              sections.size() * sizeof(SectionDesc));
  header.table_crc = Crc32c(bytes.data() + sizeof(header),
                            sections.size() * sizeof(SectionDesc));
  header.crc = Crc32c(&header, offsetof(SegmentHeader, crc));
  std::memcpy(bytes.data(), &header, sizeof(header));
  WriteFile(seg, bytes);

  // Structurally clean: the fast pass sees nothing.
  EXPECT_TRUE(Fsck(dir, /*deep=*/false).clean());
  // Deep recompute: the stored digest (and downstream artifacts) no
  // longer agree with the stored counters.
  const FsckReport deep = Fsck(dir, /*deep=*/true);
  EXPECT_FALSE(deep.clean());
}

}  // namespace
}  // namespace csj::persist
