// Trace-level tests of Ap-MinMax / Ex-MinMax replicating the figures'
// mechanics: the five events, the skip/offset prefix pruning, and
// Ex-MinMax's maxV-gated segment flushes (Figures 2 and 3 of the paper,
// on a hand-verified scenario exercising every event type).

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/join_options.h"
#include "core/minmax.h"

namespace csj {
namespace {

// d=3, eps=1, parts=2 (part 1 = dim {0}, part 2 = dims {1,2}).
//
// A (real id: vector -> [encoded_min, encoded_max]):
//   a0: (0,0,0)    -> [0,3]
//   a1: (0,0,1)    -> [0,4]
//   a2: (5,5,5)    -> [12,18]
//   a3: (10,10,10) -> [27,33]
// Encd_A order: a0, a1, a2, a3.
//
// B (real id: vector -> encoded_id):
//   b0: (2,0,0)    -> 2
//   b1: (0,1,1)    -> 2
//   b2: (0,3,0)    -> 3
//   b3: (4,0,0)    -> 4
//   b4: (5,5,6)    -> 16
//   b5: (20,0,0)   -> 20
//   b6: (10,10,11) -> 31
// Encd_B order: b0, b1, b2, b3, b4, b5, b6.
Community MakeA() {
  Community a(3);
  a.AddUser(std::vector<Count>{0, 0, 0});
  a.AddUser(std::vector<Count>{0, 0, 1});
  a.AddUser(std::vector<Count>{5, 5, 5});
  a.AddUser(std::vector<Count>{10, 10, 10});
  return a;
}

Community MakeB() {
  Community b(3);
  b.AddUser(std::vector<Count>{2, 0, 0});
  b.AddUser(std::vector<Count>{0, 1, 1});
  b.AddUser(std::vector<Count>{0, 3, 0});
  b.AddUser(std::vector<Count>{4, 0, 0});
  b.AddUser(std::vector<Count>{5, 5, 6});
  b.AddUser(std::vector<Count>{20, 0, 0});
  b.AddUser(std::vector<Count>{10, 10, 11});
  return b;
}

JoinOptions TraceOptions(EventLog* log) {
  JoinOptions options;
  options.eps = 1;
  options.encoding_parts = 2;
  options.event_log = log;
  return options;
}

TEST(ApMinMaxTraceTest, FullEventSequence) {
  const Community b = MakeB();
  const Community a = MakeA();
  EventLog log;
  const JoinResult result = ApMinMaxJoin(b, a, TraceOptions(&log));

  const std::vector<EventRecord> expected = {
      // b0 (id 2): part filter rejects a0 and a1, then a2 min-prunes it.
      {Event::kNoOverlap, 0, 0},
      {Event::kNoOverlap, 0, 1},
      {Event::kMinPrune, 0, 2},
      // b1 (id 2): matches a0 and stops (approximate rule).
      {Event::kMatch, 1, 0},
      // b2 (id 3): a0 now used and skipped via offset; full compare with a1
      // fails; a2 min-prunes.
      {Event::kNoMatch, 2, 1},
      {Event::kMinPrune, 2, 2},
      // b3 (id 4): part filter rejects a1; a2 min-prunes.
      {Event::kNoOverlap, 3, 1},
      {Event::kMinPrune, 3, 2},
      // b4 (id 16): max-prunes a1 (advancing offset), matches a2.
      {Event::kMaxPrune, 4, 1},
      {Event::kMatch, 4, 2},
      // b5 (id 20): a2 used and skipped; a3 min-prunes.
      {Event::kMinPrune, 5, 3},
      // b6 (id 31): matches a3.
      {Event::kMatch, 6, 3},
  };
  EXPECT_EQ(log.records, expected);

  const std::vector<MatchedPair> expected_pairs = {{1, 0}, {4, 2}, {6, 3}};
  EXPECT_EQ(result.pairs, expected_pairs);
  EXPECT_DOUBLE_EQ(result.Similarity(), 3.0 / 7.0);
  EXPECT_EQ(result.stats.matches, 3u);
  EXPECT_EQ(result.stats.no_matches, 1u);
  EXPECT_EQ(result.stats.no_overlaps, 3u);
  EXPECT_EQ(result.stats.min_prunes, 4u);
  EXPECT_EQ(result.stats.max_prunes, 1u);
}

TEST(ExMinMaxTraceTest, FullEventSequenceWithSegmentFlushes) {
  const Community b = MakeB();
  const Community a = MakeA();
  EventLog log;
  const JoinResult result = ExMinMaxJoin(b, a, TraceOptions(&log));

  const std::vector<EventRecord> expected = {
      // b0 (id 2): as in Ap.
      {Event::kNoOverlap, 0, 0},
      {Event::kNoOverlap, 0, 1},
      {Event::kMinPrune, 0, 2},
      // b1 (id 2): exact rule keeps scanning after the a0 match and also
      // matches a1 (maxV becomes 4), then a2 min-prunes. No flush: b2's
      // id (3) does not exceed maxV (4).
      {Event::kMatch, 1, 0},
      {Event::kMatch, 1, 1},
      {Event::kMinPrune, 1, 2},
      // b2 (id 3): a0 is NOT consumed in the exact method — the part
      // filter rejects it; a1 full-compares to NO MATCH; a2 min-prunes.
      // Still no flush: b3's id (4) does not exceed maxV (4).
      {Event::kNoOverlap, 2, 0},
      {Event::kNoMatch, 2, 1},
      {Event::kMinPrune, 2, 2},
      // b3 (id 4): max-prunes a0 (offset now skips it), part filter
      // rejects a1, a2 min-prunes. b4's id (16) > maxV (4) -> FLUSH of
      // segment {<b1,a0>, <b1,a1>} -> one pair for b1.
      {Event::kMaxPrune, 3, 0},
      {Event::kNoOverlap, 3, 1},
      {Event::kMinPrune, 3, 2},
      // b4 (id 16): max-prunes a1, matches a2 (maxV 18), a3 min-prunes.
      // b5's id (20) > 18 -> FLUSH of {<b4,a2>}.
      {Event::kMaxPrune, 4, 1},
      {Event::kMatch, 4, 2},
      {Event::kMinPrune, 4, 3},
      // b5 (id 20): max-prunes a2, a3 min-prunes. Empty flush.
      {Event::kMaxPrune, 5, 2},
      {Event::kMinPrune, 5, 3},
      // b6 (id 31): matches a3; final flush.
      {Event::kMatch, 6, 3},
  };
  EXPECT_EQ(log.records, expected);

  // Three one-to-one pairs: b1 with a0 or a1, plus <b4,a2> and <b6,a3>.
  ASSERT_EQ(result.pairs.size(), 3u);
  EXPECT_EQ(result.pairs[0].b, 1u);
  EXPECT_TRUE(result.pairs[0].a == 0u || result.pairs[0].a == 1u);
  EXPECT_EQ(result.pairs[1], (MatchedPair{4, 2}));
  EXPECT_EQ(result.pairs[2], (MatchedPair{6, 3}));

  EXPECT_EQ(result.stats.candidate_pairs, 4u);
  EXPECT_EQ(result.stats.csf_flushes, 3u);  // two mid-run + the final one
  EXPECT_DOUBLE_EQ(result.Similarity(), 3.0 / 7.0);
}

TEST(MinMaxTest, EmptyBIsNoMatches) {
  const Community b(3);
  const Community a = MakeA();
  JoinOptions options;
  options.eps = 1;
  EXPECT_TRUE(ApMinMaxJoin(b, a, options).pairs.empty());
  EXPECT_TRUE(ExMinMaxJoin(b, a, options).pairs.empty());
}

TEST(MinMaxTest, EmptyAIsNoMatches) {
  const Community b = MakeB();
  const Community a(3);
  JoinOptions options;
  options.eps = 1;
  EXPECT_TRUE(ApMinMaxJoin(b, a, options).pairs.empty());
  const JoinResult ex = ExMinMaxJoin(b, a, options);
  EXPECT_TRUE(ex.pairs.empty());
  EXPECT_EQ(ex.stats.csf_flushes, 0u);
}

TEST(MinMaxTest, IdenticalCommunitiesFullSimilarity) {
  const Community a = MakeA();
  JoinOptions options;
  options.eps = 1;
  const JoinResult ex = ExMinMaxJoin(a, a, options);
  EXPECT_DOUBLE_EQ(ex.Similarity(), 1.0);
  const JoinResult ap = ApMinMaxJoin(a, a, options);
  EXPECT_DOUBLE_EQ(ap.Similarity(), 1.0);
}

TEST(MinMaxTest, EpsZeroMatchesOnlyEqualVectors) {
  Community b(2);
  b.AddUser(std::vector<Count>{1, 1});
  b.AddUser(std::vector<Count>{2, 2});
  Community a(2);
  a.AddUser(std::vector<Count>{1, 1});
  a.AddUser(std::vector<Count>{3, 3});
  JoinOptions options;
  options.eps = 0;
  const JoinResult ex = ExMinMaxJoin(b, a, options);
  ASSERT_EQ(ex.pairs.size(), 1u);
  EXPECT_EQ(ex.pairs[0], (MatchedPair{0, 0}));
}

}  // namespace
}  // namespace csj
