// Unit tests for src/util: rng, zipf, histogram, format, flags, table
// printer.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/format.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/zipf.h"

namespace csj::util {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.Between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(rng.Bernoulli(0.0));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(23);
  (void)parent_copy.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child() == parent()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(ShuffleTest, ProducesPermutationDeterministically) {
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  Rng rng(5);
  Shuffle(items, rng);
  std::vector<int> again(100);
  std::iota(again.begin(), again.end(), 0);
  Rng rng2(5);
  Shuffle(again, rng2);
  EXPECT_EQ(items, again);

  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(ShuffleTest, HandlesTinyInputs) {
  Rng rng(1);
  std::vector<int> empty;
  Shuffle(empty, rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  Shuffle(one, rng);
  EXPECT_EQ(one, std::vector<int>({42}));
}

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfDistribution zipf(50, 1.1);
  double total = 0.0;
  for (uint32_t r = 0; r < 50; ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  const ZipfDistribution zipf(10, 0.0);
  for (uint32_t r = 0; r < 10; ++r) EXPECT_NEAR(zipf.Pmf(r), 0.1, 1e-9);
}

TEST(ZipfTest, MassConcentratesOnSmallRanks) {
  const ZipfDistribution zipf(100, 1.5);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(10));
  EXPECT_GT(zipf.Pmf(10), zipf.Pmf(99));
}

TEST(ZipfTest, SampleWithinRangeAndSkewed) {
  const ZipfDistribution zipf(20, 1.2);
  Rng rng(3);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 20000; ++i) {
    const uint32_t r = zipf.Sample(rng);
    ASSERT_LT(r, 20u);
    ++counts[r];
  }
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[19]);
}

TEST(HistogramTest, ClampsOutOfRangeValues) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(2.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.total_count(), 2u);
}

TEST(HistogramTest, FractionsAndBoundaries) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.1);
  h.Add(0.2);
  h.Add(0.7);
  EXPECT_NEAR(h.Fraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.Fraction(1), 1.0 / 3.0, 1e-12);
  // The upper edge lands in the last bucket (clamped).
  h.Add(1.0);
  EXPECT_EQ(h.bucket(1), 2u);
}

TEST(HistogramTest, AdjacencyCollisionProbabilityExtremes) {
  // Everything in one bucket: a grid filter never prunes -> probability 1.
  Histogram concentrated(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) concentrated.Add(0.05);
  EXPECT_NEAR(concentrated.AdjacencyCollisionProbability(), 1.0, 1e-12);

  // Mass split between two far-apart buckets: collisions only within each
  // half -> probability 0.5.
  Histogram split(0.0, 1.0, 10);
  for (int i = 0; i < 50; ++i) split.Add(0.05);
  for (int i = 0; i < 50; ++i) split.Add(0.95);
  EXPECT_NEAR(split.AdjacencyCollisionProbability(), 0.5, 1e-12);

  // Empty histogram reports the conservative 1.
  Histogram empty(0.0, 1.0, 4);
  EXPECT_EQ(empty.AdjacencyCollisionProbability(), 1.0);
}

TEST(HistogramTest, QuantileOnEvenSpread) {
  // 100 observations at the centers of 100 unit buckets: the q-quantile
  // is the ceil(100q)-th observation, interpolated to its bucket's right
  // edge (each bucket holds exactly one observation).
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.Quantile(0.50), 50.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.95), 95.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1e-9);
  EXPECT_NEAR(h.Quantile(1.0), 100.0, 1e-9);
  // q = 0 clamps to the first observation's bucket.
  EXPECT_NEAR(h.Quantile(0.0), 1.0, 1e-9);
}

TEST(HistogramTest, QuantileInterpolatesWithinABucket) {
  // All mass in one bucket [0, 10): the k-th of 4 observations sits at
  // k/4 of the bucket width.
  Histogram h(0.0, 10.0, 1);
  for (int i = 0; i < 4; ++i) h.Add(5.0);
  EXPECT_NEAR(h.Quantile(0.25), 2.5, 1e-9);
  EXPECT_NEAR(h.Quantile(0.50), 5.0, 1e-9);
  EXPECT_NEAR(h.Quantile(1.00), 10.0, 1e-9);
}

TEST(HistogramTest, QuantileSkipsEmptyBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);  // bucket 0
  h.Add(9.5);  // bucket 9
  // The median (rank 1 of 2) is in bucket 0; p99 (rank 2) in bucket 9.
  EXPECT_LT(h.Quantile(0.50), 1.0 + 1e-9);
  EXPECT_GT(h.Quantile(0.99), 9.0 - 1e-9);
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(FormatTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(5), "5");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(2111519450ULL), "2,111,519,450");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(Percent(0.2056), "20.56%");
  EXPECT_EQ(Percent(1.0), "100.00%");
  EXPECT_EQ(Percent(0.0), "0.00%");
}

TEST(FormatTest, SecondsCell) {
  EXPECT_EQ(SecondsCell(442.0), "(442 s)");
  EXPECT_EQ(SecondsCell(1.25), "(1.25 s)");
  EXPECT_EQ(SecondsCell(0.0123), "(12.30 ms)");
}

TEST(FlagsTest, ParsesBothSyntaxes) {
  Flags flags;
  flags.Define("alpha", "1", "first");
  flags.Define("beta", "x", "second");
  const char* argv[] = {"prog", "--alpha", "7", "--beta=hello"};
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("alpha"), 7);
  EXPECT_EQ(flags.GetString("beta"), "hello");
}

TEST(FlagsTest, DefaultsApplyWhenUnset) {
  Flags flags;
  flags.Define("gamma", "2.5", "a double");
  flags.Define("delta", "true", "a bool");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(flags.GetDouble("gamma"), 2.5);
  EXPECT_TRUE(flags.GetBool("delta"));
}

TEST(FlagsTest, RejectsUnknownFlag) {
  Flags flags;
  flags.Define("known", "", "known");
  const char* argv[] = {"prog", "--unknown", "1"};
  EXPECT_FALSE(flags.Parse(3, const_cast<char**>(argv)));
}

TEST(FlagsTest, RejectsMissingValueAndPositional) {
  Flags flags;
  flags.Define("x", "", "x");
  const char* argv1[] = {"prog", "--x"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv1)));
  const char* argv2[] = {"prog", "stray"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv2)));
}

TEST(FlagsTest, HelpReturnsFalseAndListsFlags) {
  Flags flags;
  flags.Define("verbose", "false", "chatty output");
  EXPECT_NE(flags.Usage("prog").find("--verbose"), std::string::npos);
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(LoggingDeathTest, CheckMacrosAbortWithDiagnostics) {
  EXPECT_DEATH({ CSJ_CHECK(1 == 2) << "impossible"; }, "check failed");
  EXPECT_DEATH({ CSJ_CHECK_EQ(3, 4); }, "3 vs 4");
  EXPECT_DEATH({ CSJ_CHECK_LT(9, 2); }, "check failed");
}

TEST(LoggingTest, PassingChecksAreSilent) {
  CSJ_CHECK(true) << "never evaluated";
  CSJ_CHECK_EQ(2, 2);
  CSJ_CHECK_LE(1, 1);
  CSJ_CHECK_GT(2, 1);
  CSJ_CHECK_NE(1, 2);
  CSJ_CHECK_GE(5, 5);
  CSJ_CHECK_LT(1, 2);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"cID", "Method"});
  t.AddRow({"1", "Ap-MinMax"});
  t.AddRow({"10", "Ex"});
  const std::string out = t.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| cID | Method    |"), std::string::npos);
  EXPECT_NE(out.find("| 10  | Ex        |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace csj::util
