// Metamorphic properties of the matching layer, checked end to end
// through the join methods: reorder the inputs, widen the threshold, or
// plant a known-perfect instance, and the similarity must move exactly as
// the theory says. Every property below is a THEOREM for the method /
// matcher combination it is asserted on — combinations where the property
// is only a heuristic tendency (CSF tie-breaks, greedy scan order) are
// deliberately not asserted.
//
// Seeds derive from the logged master seed (tests/test_seed.h); rerun
// with --seed=<logged> to reproduce a failure.

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "core/method.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj {
namespace {

Community RandomCommunity(util::Rng& rng, Dim d, uint32_t n, Count max_value) {
  Community c(d);
  std::vector<Count> vec(d);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(max_value + 1));
    c.AddUser(vec);
  }
  return c;
}

/// The same community with its users re-inserted in `order`.
Community Permuted(const Community& c, const std::vector<UserId>& order) {
  Community out(c.d());
  for (const UserId id : order) out.AddUser(c.User(id));
  return out;
}

std::vector<UserId> RandomOrder(util::Rng& rng, uint32_t n) {
  std::vector<UserId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  util::Shuffle(order, rng);
  return order;
}

/// Exact methods whose candidate graph lives in the integer domain — safe
/// to compare against each other and across permutations at any params.
constexpr Method kIntegerExactMethods[] = {
    Method::kExBaseline, Method::kExMinMax, Method::kExMinMaxEgo,
    Method::kExGridHash};

// ---------------------------------------------------------------------------
// Permutation invariance. With kMaxMatching the matched-pair COUNT is a
// property of the candidate graph as a set, and the candidate graph is a
// set property of the two user multisets — so shuffling the insertion
// order of B's (or A's) users must not move the similarity. (Not asserted
// for kCsf: its cover-smallest-first tie-breaks are order-sensitive by
// design; and not for the Ap methods, whose greedy scan is the order.)
// ---------------------------------------------------------------------------

TEST(MatchingPropertyTest, ExactSimilarityIsPermutationInvariant) {
  for (uint64_t trial = 0; trial < 8; ++trial) {
    util::Rng rng(csj::testing::TestSeed(8100 + trial));
    const Dim d = 1 + static_cast<Dim>(rng.Below(6));
    const Community b = RandomCommunity(rng, d, 40, 8);
    const Community a = RandomCommunity(rng, d, 55, 8);

    JoinOptions options;
    options.eps = 1 + static_cast<Epsilon>(rng.Below(2));
    options.matcher = matching::MatcherKind::kMaxMatching;

    const Community b_shuffled = Permuted(b, RandomOrder(rng, b.size()));
    const Community a_shuffled = Permuted(a, RandomOrder(rng, a.size()));
    for (const Method method : kIntegerExactMethods) {
      const size_t reference = RunMethod(method, b, a, options).pairs.size();
      EXPECT_EQ(RunMethod(method, b_shuffled, a, options).pairs.size(),
                reference)
          << MethodName(method) << " B-shuffle trial " << trial;
      EXPECT_EQ(RunMethod(method, b, a_shuffled, options).pairs.size(),
                reference)
          << MethodName(method) << " A-shuffle trial " << trial;
      EXPECT_EQ(
          RunMethod(method, b_shuffled, a_shuffled, options).pairs.size(),
          reference)
          << MethodName(method) << " both-shuffle trial " << trial;
    }
  }
}

TEST(MatchingPropertyTest, SuperEgoExactSimilarityIsPermutationInvariant) {
  // SuperEGO matches in the normalized float domain; with a power-of-two
  // norm_max and small counters every quotient is an exact float, so the
  // float candidate graph equals the integer one and the same set
  // argument applies.
  for (uint64_t trial = 0; trial < 4; ++trial) {
    util::Rng rng(csj::testing::TestSeed(8200 + trial));
    const Dim d = 1 + static_cast<Dim>(rng.Below(4));
    const Community b = RandomCommunity(rng, d, 35, 8);
    const Community a = RandomCommunity(rng, d, 45, 8);

    JoinOptions options;
    options.eps = 1;
    options.matcher = matching::MatcherKind::kMaxMatching;
    options.superego_norm_max = 8;  // power of two: exact float division

    const size_t reference =
        RunMethod(Method::kExSuperEgo, b, a, options).pairs.size();
    const Community b_shuffled = Permuted(b, RandomOrder(rng, b.size()));
    const Community a_shuffled = Permuted(a, RandomOrder(rng, a.size()));
    EXPECT_EQ(
        RunMethod(Method::kExSuperEgo, b_shuffled, a_shuffled, options)
            .pairs.size(),
        reference)
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Epsilon monotonicity. Widening eps can only ADD candidate edges, and a
// maximum matching of a supergraph is never smaller — so exact similarity
// with kMaxMatching is non-decreasing in eps.
// ---------------------------------------------------------------------------

TEST(MatchingPropertyTest, ExactSimilarityIsMonotoneInEpsilon) {
  for (uint64_t trial = 0; trial < 6; ++trial) {
    util::Rng rng(csj::testing::TestSeed(8300 + trial));
    const Dim d = 1 + static_cast<Dim>(rng.Below(5));
    const Community b = RandomCommunity(rng, d, 45, 12);
    const Community a = RandomCommunity(rng, d, 60, 12);

    JoinOptions options;
    options.matcher = matching::MatcherKind::kMaxMatching;
    for (const Method method : kIntegerExactMethods) {
      size_t previous = 0;
      for (const Epsilon eps : {0u, 1u, 2u, 3u, 5u, 8u, 12u}) {
        options.eps = eps;
        const size_t found = RunMethod(method, b, a, options).pairs.size();
        EXPECT_GE(found, previous)
            << MethodName(method) << " eps " << eps << " trial " << trial;
        previous = found;
      }
      // At eps >= max_value every pair matches: similarity must be 1.
      EXPECT_EQ(previous, b.size()) << MethodName(method);
    }
  }
}

// ---------------------------------------------------------------------------
// Planted-perfect instances. When every user of B also appears in A, the
// identity map is a perfect matching at eps = 0, so every exact method
// with kMaxMatching must report similarity exactly 1.0.
// ---------------------------------------------------------------------------

TEST(MatchingPropertyTest, SubsetCommunityReachesSimilarityOneAtEpsZero) {
  for (uint64_t trial = 0; trial < 6; ++trial) {
    util::Rng rng(csj::testing::TestSeed(8400 + trial));
    const Dim d = 1 + static_cast<Dim>(rng.Below(6));
    const Community b = RandomCommunity(rng, d, 40, 20);

    // A = a shuffled copy of B plus extra distinct-ish users.
    Community a(d);
    for (const UserId id : RandomOrder(rng, b.size())) a.AddUser(b.User(id));
    std::vector<Count> vec(d);
    const uint32_t extras = static_cast<uint32_t>(rng.Below(20));
    for (uint32_t i = 0; i < extras; ++i) {
      for (auto& v : vec) v = static_cast<Count>(rng.Below(21));
      a.AddUser(vec);
    }

    JoinOptions options;
    options.eps = 0;
    options.matcher = matching::MatcherKind::kMaxMatching;
    for (const Method method : kIntegerExactMethods) {
      const JoinResult result = RunMethod(method, b, a, options);
      EXPECT_EQ(result.pairs.size(), b.size())
          << MethodName(method) << " trial " << trial;
      EXPECT_DOUBLE_EQ(result.Similarity(), 1.0) << MethodName(method);
    }
  }
}

// ---------------------------------------------------------------------------
// Exact dominates approximate. With kMaxMatching the exact arm returns a
// MAXIMUM matching of the candidate graph while the approximate arm
// returns SOME valid matching of a subgraph of it — so for every method
// family, on every input, Ap <= Ex.
// ---------------------------------------------------------------------------

TEST(MatchingPropertyTest, ExactDominatesApproximateForEveryFamily) {
  struct Family {
    Method ap;
    Method ex;
  };
  const Family families[] = {
      {Method::kApBaseline, Method::kExBaseline},
      {Method::kApMinMax, Method::kExMinMax},
      {Method::kApSuperEgo, Method::kExSuperEgo},
      {Method::kApMinMaxEgo, Method::kExMinMaxEgo},
      {Method::kApGridHash, Method::kExGridHash},
  };
  for (uint64_t trial = 0; trial < 10; ++trial) {
    util::Rng rng(csj::testing::TestSeed(8500 + trial));
    const Dim d = 1 + static_cast<Dim>(rng.Below(8));
    const Community b = RandomCommunity(rng, d, 50, 10);
    const Community a = RandomCommunity(rng, d, 70, 10);

    JoinOptions options;
    options.eps = 1 + static_cast<Epsilon>(rng.Below(3));
    options.matcher = matching::MatcherKind::kMaxMatching;
    options.superego_norm_max = 16;  // power of two: exact float regime
    for (const Family& family : families) {
      const size_t approx = RunMethod(family.ap, b, a, options).pairs.size();
      const size_t exact = RunMethod(family.ex, b, a, options).pairs.size();
      EXPECT_LE(approx, exact)
          << MethodName(family.ap) << " vs " << MethodName(family.ex)
          << " trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------------
// Matcher upgrade dominance: on the same method, kMaxMatching never finds
// fewer pairs than kCsf (both consume the identical candidate graph; one
// is provably maximum).
// ---------------------------------------------------------------------------

TEST(MatchingPropertyTest, MaxMatchingDominatesCsfOnEveryExactMethod) {
  for (uint64_t trial = 0; trial < 8; ++trial) {
    util::Rng rng(csj::testing::TestSeed(8600 + trial));
    const Dim d = 1 + static_cast<Dim>(rng.Below(6));
    const Community b = RandomCommunity(rng, d, 45, 8);
    const Community a = RandomCommunity(rng, d, 60, 8);

    JoinOptions options;
    options.eps = 1;
    for (const Method method : kIntegerExactMethods) {
      options.matcher = matching::MatcherKind::kCsf;
      const size_t csf = RunMethod(method, b, a, options).pairs.size();
      options.matcher = matching::MatcherKind::kMaxMatching;
      const size_t maximum = RunMethod(method, b, a, options).pairs.size();
      EXPECT_LE(csf, maximum) << MethodName(method) << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace csj
