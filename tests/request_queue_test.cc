// BoundedRequestQueue: EDF ordering semantics (deadline-free degenerates
// to exact FIFO, tighter deadlines served first, total deterministic
// order), reject-on-full admission, close-and-drain, the high-water
// stat, and a producer/consumer stress aimed at the TSan gate (the
// notify-outside-lock fast path must never lose a wakeup). Plus the
// server-level EDF starvation regression: a deadlined request admitted
// BEHIND a deadline-free backlog must execute before it.

#include "service/request_queue.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/server.h"
#include "service/workload.h"

namespace csj::service {
namespace {

using TimePoint = std::chrono::steady_clock::time_point;

TEST(RequestQueue, NoDeadlinesIsExactFifo) {
  BoundedRequestQueue<int> queue(128);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(queue.TryPush(i));
  for (int i = 0; i < 100; ++i) {
    const std::optional<int> item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(RequestQueue, EarliestDeadlineFirst) {
  BoundedRequestQueue<int> queue(16);
  const TimePoint now = std::chrono::steady_clock::now();
  using std::chrono::milliseconds;
  // Arrival order: a no-deadline straggler, then deadlines 300ms, 100ms,
  // 200ms, another no-deadline. EDF order: 100, 200, 300, then the
  // deadline-free in arrival order.
  ASSERT_TRUE(queue.TryPush(0));
  ASSERT_TRUE(queue.TryPush(300, now + milliseconds(300)));
  ASSERT_TRUE(queue.TryPush(100, now + milliseconds(100)));
  ASSERT_TRUE(queue.TryPush(200, now + milliseconds(200)));
  ASSERT_TRUE(queue.TryPush(1));
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) order.push_back(*queue.Pop());
  EXPECT_EQ(order, (std::vector<int>{100, 200, 300, 0, 1}));
}

TEST(RequestQueue, EqualDeadlinesKeepArrivalOrder) {
  BoundedRequestQueue<int> queue(16);
  const TimePoint deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(1);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.TryPush(i, deadline));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(*queue.Pop(), i);
}

TEST(RequestQueue, RejectsWhenFullAndCountsHighWater) {
  BoundedRequestQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.TryPush(i));
  EXPECT_FALSE(queue.TryPush(99));
  EXPECT_FALSE(queue.TryPush(100));
  EXPECT_EQ(queue.accepted(), 4u);
  EXPECT_EQ(queue.rejected(), 2u);
  EXPECT_EQ(queue.high_water(), 4u);
  // Draining frees capacity again; high-water stays at the peak.
  EXPECT_EQ(*queue.Pop(), 0);
  EXPECT_TRUE(queue.TryPush(4));
  EXPECT_EQ(queue.high_water(), 4u);
}

TEST(RequestQueue, CloseDrainsThenSignalsShutdown) {
  BoundedRequestQueue<int> queue(8);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));  // closed: admission refused
  EXPECT_EQ(*queue.Pop(), 1);
  EXPECT_EQ(*queue.Pop(), 2);
  EXPECT_FALSE(queue.Pop().has_value());  // closed AND drained
}

TEST(RequestQueue, CloseWakesBlockedConsumer) {
  BoundedRequestQueue<int> queue(8);
  std::thread consumer([&] { EXPECT_FALSE(queue.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
}

TEST(RequestQueue, PushWakesBlockedConsumer) {
  BoundedRequestQueue<int> queue(8);
  std::thread consumer([&] { EXPECT_EQ(*queue.Pop(), 7); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(queue.TryPush(7));
  consumer.join();
}

// The TSan target: notify_one runs OUTSIDE the critical section, which
// is only correct because waiters re-check the predicate under the lock.
// Many producers racing many consumers through a tiny queue exercises
// exactly that window; every accepted item must be consumed exactly once
// and nobody may deadlock.
TEST(RequestQueue, NotifyOutsideLockLosesNoItems) {
  BoundedRequestQueue<int> queue(16);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;

  std::mutex accepted_mu;
  std::set<int> accepted;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        if (queue.TryPush(value)) {
          std::lock_guard lock(accepted_mu);
          accepted.insert(value);
        }
      }
    });
  }

  std::mutex consumed_mu;
  std::set<int> consumed;
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        const std::optional<int> item = queue.Pop();
        if (!item.has_value()) return;
        std::lock_guard lock(consumed_mu);
        EXPECT_TRUE(consumed.insert(*item).second)
            << "item popped twice: " << *item;
      }
    });
  }

  for (std::thread& producer : producers) producer.join();
  queue.Close();
  for (std::thread& consumer : consumers) consumer.join();

  EXPECT_EQ(consumed, accepted);
  EXPECT_EQ(queue.accepted() + queue.rejected(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(queue.accepted(), accepted.size());
}

// EDF starvation regression at the SERVER level: with one worker busy on
// a long request, a deadline-carrying request admitted after a
// deadline-free backlog must run before all of it (FIFO would run it
// last). ServeResponse::sequence exposes the execution order.
TEST(ServerEdf, DeadlinedRequestOvertakesDeadlineFreeBacklog) {
  WorkloadOptions workload_options;
  workload_options.catalog_size = 12;
  workload_options.community_size = 800;  // blocker runs for many ms
  workload_options.upsert_fraction = 0.0;
  const ServeWorkload workload(workload_options);

  CsjServer::Options options;
  options.workers = 1;
  options.queue_capacity = 64;
  CsjServer server(options);
  workload.Populate(&server);

  const auto make_query = [&](uint32_t index, double deadline_seconds) {
    ServeRequest request;
    request.kind = RequestKind::kTopK;
    request.community = workload.communities()[index];
    request.topk.k = 5;
    request.deadline_seconds = deadline_seconds;
    return request;
  };

  // Blocker first: the worker picks it up while everything below is
  // being admitted (its full query runs ~tens of ms; admission takes µs).
  std::future<ServeResponse> blocker;
  ASSERT_TRUE(server.Submit(make_query(0, 0.0), &blocker));

  constexpr uint32_t kBacklog = 8;
  std::vector<std::future<ServeResponse>> backlog;
  for (uint32_t i = 0; i < kBacklog; ++i) {
    std::future<ServeResponse> response;
    ASSERT_TRUE(
        server.Submit(make_query(1 + i % 10, 0.0), &response));
    backlog.push_back(std::move(response));
  }
  // Admitted LAST, with a (generous, never-expiring) deadline: EDF must
  // serve it before the whole deadline-free backlog.
  std::future<ServeResponse> deadlined;
  ASSERT_TRUE(server.Submit(make_query(11, 30.0), &deadlined));

  const ServeResponse urgent = deadlined.get();
  EXPECT_EQ(urgent.status, ServeStatus::kOk);
  std::vector<uint64_t> backlog_sequences;
  for (std::future<ServeResponse>& response : backlog) {
    const ServeResponse r = response.get();
    EXPECT_EQ(r.status, ServeStatus::kOk);
    backlog_sequences.push_back(r.sequence);
  }
  for (const uint64_t sequence : backlog_sequences) {
    EXPECT_LT(urgent.sequence, sequence)
        << "deadlined request was starved behind deadline-free backlog";
  }
  // Deadline-free requests keep arrival order among themselves.
  EXPECT_TRUE(std::is_sorted(backlog_sequences.begin(),
                             backlog_sequences.end()));
  (void)blocker.get();
}

}  // namespace
}  // namespace csj::service
