// Sanitizer soak for the evolution subsystem: a maintainer refreshing
// standing queries races catalog churn writers, top-k readers, and a
// trigger subscriber. Run under TSan/ASan by the CI scripts (suite name
// EvolveStress* is in ci_tsan.sh's filter).
//
// The load-bearing invariant is EXACTLY-ONCE EVENT ACCOUNTING: every
// mutation-log record is folded into exactly one refresh outcome per
// query — the per-query sum of records_consumed telescopes to the final
// mutation_seq, with no record skipped and none double-counted, across
// fast paths, fallbacks, and races with in-flight writers.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoding_cache.h"
#include "evolve/maintainer.h"
#include "service/catalog.h"
#include "service/topk.h"
#include "service/workload.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::evolve {
namespace {

constexpr uint32_t kIdSpace = 48;
constexpr uint32_t kWriters = 2;
constexpr uint32_t kWriterOps = 220;
constexpr uint32_t kQueries = 3;

TEST(EvolveStressTest, MaintainerRacesChurnWithExactAccounting) {
  const uint64_t seed = testing::TestSeed(7);
  service::WorkloadOptions workload_options;
  workload_options.catalog_size = 32;
  workload_options.community_size = 16;
  workload_options.cluster_size = 4;
  workload_options.eps = 1;
  workload_options.seed = seed % 100000 + 1;
  service::ServeWorkload workload(workload_options);

  EncodingCache cache;
  service::CommunityCatalog::Options catalog_options;
  catalog_options.cache = &cache;
  catalog_options.warm_eps = 1;
  catalog_options.mutation_log_capacity = 1 << 18;
  service::CommunityCatalog catalog(catalog_options);
  const auto& pool = workload.communities();
  for (size_t i = 0; i < pool.size(); ++i) {
    catalog.Upsert(static_cast<uint64_t>(i) + 1, *pool[i]);
  }
  service::TopKSimilarService service(&catalog);

  service::TopKOptions topk;
  topk.k = 5;
  topk.join.eps = 1;
  topk.join.cache = &cache;

  TopKMaintainer::Options options;
  options.service = &service;
  TopKMaintainer maintainer(&catalog, options);

  std::atomic<uint64_t> subscriber_triggers{0};
  maintainer.Subscribe([&](const TriggerEvent& event) {
    // A trigger by contract reports an actual meaning change.
    bool same = event.before.size() == event.after.size();
    if (same) {
      for (size_t i = 0; i < event.before.size(); ++i) {
        if (event.before[i].id != event.after[i].id ||
            event.before[i].similarity != event.after[i].similarity) {
          same = false;
          break;
        }
      }
    }
    EXPECT_FALSE(same) << "trigger fired without a ranking change";
    subscriber_triggers.fetch_add(1, std::memory_order_relaxed);
  });

  for (uint32_t q = 0; q < kQueries; ++q) {
    maintainer.Register(pool[q * (pool.size() / kQueries)], topk);
  }

  std::atomic<bool> writers_done{false};
  std::vector<uint64_t> records_sum(kQueries, 0);
  uint64_t observed_changes = 0;

  std::vector<std::thread> threads;
  // Churn writers: upsert freshly minted communities over a shared id
  // space, with occasional removes (ids may be absent — that's fine, a
  // no-op remove logs nothing).
  for (uint32_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      util::Rng rng(seed + 1000 + w);
      for (uint32_t i = 0; i < kWriterOps; ++i) {
        if (i % 7 == 6) {
          catalog.Remove(1 + rng.Below(kIdSpace));
        } else {
          catalog.Upsert(1 + rng.Below(kIdSpace),
                         *workload.MintAgainstAnchor(rng));
        }
      }
    });
  }
  // Top-k readers: plain serving queries racing the same churn; results
  // must always be well-formed (ranked, at most k).
  for (uint32_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      const auto& pivot = *pool[(r * 5 + 1) % pool.size()];
      while (!writers_done.load(std::memory_order_acquire)) {
        const auto result = service.Query(pivot, topk);
        ASSERT_LE(result.entries.size(), topk.k);
        for (size_t i = 1; i < result.entries.size(); ++i) {
          const auto& prev = result.entries[i - 1];
          const auto& cur = result.entries[i];
          ASSERT_TRUE(cur.similarity < prev.similarity ||
                      (cur.similarity == prev.similarity && cur.id > prev.id))
              << "reader observed an unranked result";
        }
      }
    });
  }
  // The maintainer thread: continuous refreshes while churn is live,
  // accumulating per-query record consumption from the outcomes.
  threads.emplace_back([&] {
    while (!writers_done.load(std::memory_order_acquire)) {
      for (uint32_t q = 0; q < kQueries; ++q) {
        const auto outcome = maintainer.Refresh(q);
        records_sum[q] += outcome.records_consumed;
        if (outcome.changed) ++observed_changes;
      }
    }
  });

  for (uint32_t w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  for (uint32_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Quiesced final refreshes: fold any tail records, then verify the
  // telescoped accounting and byte-identity against fresh recomputes.
  for (uint32_t q = 0; q < kQueries; ++q) {
    const auto outcome = maintainer.Refresh(q);
    records_sum[q] += outcome.records_consumed;
    if (outcome.changed) ++observed_changes;
    const auto tail = maintainer.Refresh(q);
    EXPECT_EQ(tail.records_consumed, 0u)
        << "records appeared after quiesce, query " << q;
    EXPECT_FALSE(tail.changed);
  }
  const uint64_t final_seq = catalog.mutation_seq();
  EXPECT_GT(final_seq, 32u) << "writers produced no churn";
  for (uint32_t q = 0; q < kQueries; ++q) {
    EXPECT_EQ(records_sum[q], final_seq)
        << "query " << q
        << " lost or double-counted mutation records (exactly-once "
           "accounting broken)";
    const auto fresh =
        service.Query(*pool[q * (pool.size() / kQueries)], topk);
    EXPECT_TRUE(maintainer.Ranking(q) == fresh.entries)
        << "post-quiesce maintained ranking diverged, query " << q;
  }
  const auto stats = maintainer.GetStats();
  EXPECT_EQ(stats.triggers,
            subscriber_triggers.load(std::memory_order_relaxed))
      << "subscriber missed triggers";
  EXPECT_EQ(stats.triggers, observed_changes)
      << "outcome.changed disagrees with fired triggers";
  EXPECT_EQ(stats.refreshes, stats.fast_paths + stats.fallbacks);
}

/// Concurrent RefreshAll from several threads on the SAME queries: the
/// per-query mutex serializes them; accounting via GetStats must stay
/// coherent and the final rankings identical to fresh recomputes.
TEST(EvolveStressTest, ConcurrentRefreshersSerializePerQuery) {
  const uint64_t seed = testing::TestSeed(8);
  service::WorkloadOptions workload_options;
  workload_options.catalog_size = 24;
  workload_options.community_size = 14;
  workload_options.eps = 1;
  workload_options.seed = seed % 100000 + 1;
  service::ServeWorkload workload(workload_options);

  EncodingCache cache;
  service::CommunityCatalog::Options catalog_options;
  catalog_options.cache = &cache;
  catalog_options.warm_eps = 1;
  catalog_options.mutation_log_capacity = 1 << 16;
  service::CommunityCatalog catalog(catalog_options);
  const auto& pool = workload.communities();
  for (size_t i = 0; i < pool.size(); ++i) {
    catalog.Upsert(static_cast<uint64_t>(i) + 1, *pool[i]);
  }
  service::TopKSimilarService service(&catalog);

  service::TopKOptions topk;
  topk.k = 3;
  topk.join.eps = 1;
  topk.join.cache = &cache;
  TopKMaintainer::Options options;
  options.service = &service;
  TopKMaintainer maintainer(&catalog, options);
  maintainer.Register(pool[0], topk);
  maintainer.Register(pool[7], topk);
  maintainer.RefreshAll();

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) maintainer.RefreshAll();
    });
  }
  threads.emplace_back([&] {
    util::Rng rng(seed + 77);
    for (uint32_t i = 0; i < 150; ++i) {
      catalog.Upsert(1 + rng.Below(30), *workload.MintAgainstAnchor(rng));
    }
    done.store(true, std::memory_order_release);
  });
  for (auto& thread : threads) thread.join();

  maintainer.RefreshAll();
  EXPECT_TRUE(maintainer.Ranking(0) == service.Query(*pool[0], topk).entries);
  EXPECT_TRUE(maintainer.Ranking(1) == service.Query(*pool[7], topk).entries);
  const auto stats = maintainer.GetStats();
  EXPECT_EQ(stats.refreshes, stats.fast_paths + stats.fallbacks);
}

}  // namespace
}  // namespace csj::evolve
