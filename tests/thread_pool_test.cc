// Tests for the persistent thread pool: task coverage under dynamic
// claiming, pool reuse across calls (no per-call thread spawn), the
// inline single-thread path, the parallelism cap, re-entrancy, and the
// ParallelFor reimplementation riding on it.

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"
#include "util/thread_pool.h"

namespace csj::util {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  for (const uint32_t tasks : {1u, 2u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(tasks);
    for (auto& h : hits) h = 0;
    pool.Run(tasks, [&](uint32_t t) { ++hits[t]; });
    for (uint32_t t = 0; t < tasks; ++t) {
      EXPECT_EQ(hits[t].load(), 1) << "task " << t << " of " << tasks;
    }
  }
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.Run(0, [&](uint32_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

/// The whole point of the pool: worker threads persist across Run()
/// calls, so repeated jobs execute on the same small set of thread ids
/// instead of spawning fresh threads per call.
TEST(ThreadPoolTest, WorkersPersistAcrossCalls) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  for (int round = 0; round < 20; ++round) {
    pool.Run(64, [&](uint32_t) {
      const std::lock_guard<std::mutex> lock(mutex);
      ids.insert(std::this_thread::get_id());
    });
  }
  // 3 persistent workers + the caller; per-call spawning would have
  // accumulated up to 60 distinct ids by now.
  EXPECT_LE(ids.size(), 4u);
  EXPECT_TRUE(ids.count(std::this_thread::get_id()) == 1);
}

/// threads == 1 builds a degenerate pool whose Run is an inline loop on
/// the calling thread, in ascending task order.
TEST(ThreadPoolTest, SingleThreadPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<uint32_t> order;
  pool.Run(8, [&](uint32_t t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(t);  // no lock: must be single-threaded
  });
  ASSERT_EQ(order.size(), 8u);
  for (uint32_t t = 0; t < 8; ++t) EXPECT_EQ(order[t], t);
}

/// parallelism == 1 forces the inline path even on a big pool.
TEST(ThreadPoolTest, ParallelismCapOfOneStaysOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.Run(16, [&](uint32_t t) { seen[t] = std::this_thread::get_id(); },
           /*parallelism=*/1);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

/// A capped job never applies more threads than the cap.
TEST(ThreadPoolTest, ParallelismCapBoundsConcurrency) {
  ThreadPool pool(8);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  pool.Run(
      64,
      [&](uint32_t) {
        const std::lock_guard<std::mutex> lock(mutex);
        ids.insert(std::this_thread::get_id());
      },
      /*parallelism=*/2);
  EXPECT_LE(ids.size(), 2u);
}

/// Run() from inside a pool task must not deadlock; it degrades to an
/// inline loop on the worker.
TEST(ThreadPoolTest, NestedRunExecutesInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> inner_hits(32);
  for (auto& h : inner_hits) h = 0;
  std::atomic<int> outer_hits{0};
  pool.Run(8, [&](uint32_t) {
    EXPECT_TRUE(ThreadPool::OnWorkerThread());
    ++outer_hits;
    pool.Run(32, [&](uint32_t t) { ++inner_hits[t]; });
  });
  EXPECT_EQ(outer_hits.load(), 8);
  for (uint32_t t = 0; t < 32; ++t) EXPECT_EQ(inner_hits[t].load(), 8);
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

/// Dynamic claiming self-balances skew: one task 100x the rest must not
/// stop the others from spreading over the remaining workers. (Checked
/// structurally — every task runs — plus the claim order: task 0 is
/// claimed first.)
TEST(ThreadPoolTest, ClaimsTasksInAscendingOrder) {
  ThreadPool pool(1);  // inline: claim order == execution order
  std::vector<uint32_t> order;
  pool.Run(16, [&](uint32_t t) { order.push_back(t); });
  for (uint32_t t = 0; t < 16; ++t) EXPECT_EQ(order[t], t);
}

TEST(ThreadPoolTest, GlobalIsASingleton) {
  ThreadPool& first = ThreadPool::Global();
  ThreadPool& second = ThreadPool::Global();
  EXPECT_EQ(&first, &second);
  EXPECT_GE(first.threads(), 1u);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

/// ParallelFor on an injected pool keeps its documented static partition:
/// contiguous chunks ordered by chunk index, sizes differing by at most
/// one, independent of the executing pool's size.
TEST(ThreadPoolTest, ParallelForOnInjectedPoolKeepsChunkLayout) {
  for (const uint32_t pool_threads : {1u, 2u, 5u}) {
    ThreadPool pool(pool_threads);
    std::mutex mutex;
    std::vector<std::pair<uint32_t, uint32_t>> spans(4);
    ParallelFor(
        0, 10, 4,
        [&](uint32_t lo, uint32_t hi, uint32_t chunk) {
          const std::lock_guard<std::mutex> lock(mutex);
          spans[chunk] = {lo, hi};
        },
        &pool);
    uint32_t expected_lo = 0;
    for (const auto& [lo, hi] : spans) {
      EXPECT_EQ(lo, expected_lo);
      EXPECT_LE(hi - lo, 3u);
      EXPECT_GE(hi - lo, 2u);
      expected_lo = hi;
    }
    EXPECT_EQ(expected_lo, 10u);
  }
}

/// Back-to-back jobs with different bodies reuse the pool safely (the
/// generation handshake: no stale body may leak into the next job).
TEST(ThreadPoolTest, BackToBackJobsDoNotCrossTalk) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    const auto expected = static_cast<uint64_t>(round) * 10;
    pool.Run(10, [&, round](uint32_t) {
      sum.fetch_add(static_cast<uint64_t>(round));
    });
    EXPECT_EQ(sum.load(), expected) << "round " << round;
  }
}

}  // namespace
}  // namespace csj::util
