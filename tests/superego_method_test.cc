// Tests for the Ap-/Ex-SuperEGO CSJ adapters. Power-of-two value grids
// make float32 normalization exact, so the adapters can be checked against
// the integer-domain oracles; a separate test demonstrates the boundary
// precision loss the paper reports on VK-scale counters.

#include <vector>

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "core/superego_method.h"
#include "matching/greedy.h"
#include "util/rng.h"

namespace csj {
namespace {

/// Counts in [0, 256] with max forced to 256 and eps a power of two: all
/// normalized values and eps_norm are exact binary fractions, so the
/// float32 predicate agrees with the integer predicate everywhere.
Community ExactFloatCommunity(uint32_t n, uint64_t seed) {
  util::Rng rng(seed);
  Community c(6);
  std::vector<Count> vec(6);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(257));
    c.AddUser(vec);
  }
  return c;
}

JoinOptions ExactFloatOptions() {
  JoinOptions options;
  options.eps = 4;
  options.superego_norm_max = 256;
  options.superego_threshold = 16;
  options.matcher = matching::MatcherKind::kMaxMatching;
  return options;
}

TEST(ExSuperEgoTest, MatchesExBaselineOnExactFloatGrid) {
  const Community b = ExactFloatCommunity(120, 1);
  const Community a = ExactFloatCommunity(150, 2);
  const JoinOptions options = ExactFloatOptions();
  const JoinResult ego = ExSuperEgoJoin(b, a, options);
  const JoinResult oracle = ExBaselineJoin(b, a, options);
  EXPECT_EQ(ego.pairs.size(), oracle.pairs.size());
  EXPECT_TRUE(matching::IsOneToOne(ego.pairs));
  // Every SuperEGO pair is a genuine integer-domain eps-match here.
  for (const MatchedPair& p : ego.pairs) {
    EXPECT_TRUE(EpsilonMatches(b.User(p.b), a.User(p.a), options.eps));
  }
}

TEST(ExSuperEgoTest, ReorderingDoesNotChangeTheResultSize) {
  const Community b = ExactFloatCommunity(100, 3);
  const Community a = ExactFloatCommunity(100, 4);
  JoinOptions options = ExactFloatOptions();
  options.superego_reorder_dims = true;
  const JoinResult with_reorder = ExSuperEgoJoin(b, a, options);
  options.superego_reorder_dims = false;
  const JoinResult without = ExSuperEgoJoin(b, a, options);
  EXPECT_EQ(with_reorder.pairs.size(), without.pairs.size());
}

TEST(ApSuperEgoTest, NeverBeatsExactAndStaysValid) {
  const Community b = ExactFloatCommunity(100, 5);
  const Community a = ExactFloatCommunity(120, 6);
  const JoinOptions options = ExactFloatOptions();
  const JoinResult ap = ApSuperEgoJoin(b, a, options);
  const JoinResult ex = ExSuperEgoJoin(b, a, options);
  EXPECT_LE(ap.pairs.size(), ex.pairs.size());
  EXPECT_TRUE(matching::IsOneToOne(ap.pairs));
  for (const MatchedPair& p : ap.pairs) {
    EXPECT_TRUE(EpsilonMatches(b.User(p.b), a.User(p.a), options.eps));
  }
}

TEST(SuperEgoTest, ThresholdInsensitivityOnExactGrid) {
  const Community b = ExactFloatCommunity(90, 7);
  const Community a = ExactFloatCommunity(110, 8);
  JoinOptions options = ExactFloatOptions();
  size_t reference = 0;
  for (const uint32_t t : {2u, 8u, 64u, 1024u}) {
    options.superego_threshold = t;
    const size_t size = ExSuperEgoJoin(b, a, options).pairs.size();
    if (t == 2) {
      reference = size;
    } else {
      EXPECT_EQ(size, reference) << "threshold " << t;
    }
  }
}

TEST(SuperEgoTest, NormalizationBoundaryLossOnCounterScaleData) {
  // VK-style regime: large normalization max, eps = 1, and MANY pairs
  // sitting exactly at the eps boundary. The float32 predicate loses a
  // noticeable share of them — the accuracy gap of Tables 3-6.
  const Count max = 152532;
  Community b(4);
  Community a(4);
  util::Rng rng(9);
  for (int i = 0; i < 400; ++i) {
    std::vector<Count> vec(4);
    for (auto& v : vec) v = static_cast<Count>(rng.Below(50));
    a.AddUser(vec);
    // Boundary twin: every dimension differs by exactly eps = 1.
    std::vector<Count> twin = vec;
    for (auto& v : twin) ++v;
    b.AddUser(twin);
  }
  JoinOptions options;
  options.eps = 1;
  options.superego_norm_max = max;
  options.superego_threshold = 32;
  const JoinResult ego = ExSuperEgoJoin(b, a, options);
  const JoinResult oracle = ExBaselineJoin(b, a, options);
  // The integer-domain join finds (at least) all 400 planted twins.
  EXPECT_GE(oracle.pairs.size(), 400u);
  // The normalized join must lose some boundary pairs but not collapse.
  EXPECT_LT(ego.pairs.size(), oracle.pairs.size());
  EXPECT_GT(ego.pairs.size(), 0u);
}

TEST(SuperEgoTest, EmptyCommunities) {
  const Community empty(3);
  Community one(3);
  one.AddUser(std::vector<Count>{1, 2, 3});
  JoinOptions options;
  options.eps = 1;
  EXPECT_TRUE(ApSuperEgoJoin(empty, one, options).pairs.empty());
  EXPECT_TRUE(ExSuperEgoJoin(one, empty, options).pairs.empty());
  EXPECT_TRUE(ExSuperEgoJoin(empty, empty, options).pairs.empty());
}

TEST(SuperEgoTest, AllZeroDataStillJoins) {
  Community b(3);
  Community a(3);
  for (int i = 0; i < 5; ++i) {
    b.AddUser(std::vector<Count>{0, 0, 0});
    a.AddUser(std::vector<Count>{0, 0, 0});
  }
  JoinOptions options;
  options.eps = 1;
  const JoinResult result = ExSuperEgoJoin(b, a, options);
  EXPECT_EQ(result.pairs.size(), 5u);
}

}  // namespace
}  // namespace csj
