// Intra-join parallelism: for every method and any join_threads value the
// JoinResult must be byte-identical to the serial run — pairs, similarity
// and the summed event counters — on a caller-injected pool, nested under
// pipeline_threads, and with the encoding cache in play. Also covers the
// cost-aware scheduling order and the pipeline's nesting budget.

#include <cstring>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/encoding_cache.h"
#include "core/method.h"
#include "pipeline/screening.h"
#include "test_seed.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace csj {
namespace {

Community RandomCommunity(Dim d, uint32_t n, Count max_value, uint64_t seed) {
  util::Rng rng(seed);
  Community c(d);
  std::vector<Count> vec(d);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(max_value + 1));
    c.AddUser(vec);
  }
  return c;
}

/// Everything a join guarantees to be thread-count invariant: the exact
/// pair list, the bit pattern of the similarity, and every event counter
/// (timing excluded). The counters matter as much as the pairs — the
/// chunked scans must TELESCOPE their prune/compare tallies to the serial
/// sums, not merely find the same matching.
void ExpectResultsIdentical(const JoinResult& serial,
                            const JoinResult& parallel, Method method,
                            uint32_t join_threads) {
  std::string trace = MethodName(method);
  trace += " join_threads=";
  trace += std::to_string(join_threads);
  SCOPED_TRACE(trace);
  EXPECT_EQ(parallel.pairs, serial.pairs);
  EXPECT_EQ(parallel.size_b, serial.size_b);
  const double sim_s = serial.Similarity();
  const double sim_p = parallel.Similarity();
  EXPECT_EQ(std::memcmp(&sim_p, &sim_s, sizeof(double)), 0);
  EXPECT_EQ(parallel.stats.min_prunes, serial.stats.min_prunes);
  EXPECT_EQ(parallel.stats.max_prunes, serial.stats.max_prunes);
  EXPECT_EQ(parallel.stats.no_overlaps, serial.stats.no_overlaps);
  EXPECT_EQ(parallel.stats.no_matches, serial.stats.no_matches);
  EXPECT_EQ(parallel.stats.matches, serial.stats.matches);
  EXPECT_EQ(parallel.stats.dimension_compares,
            serial.stats.dimension_compares);
  EXPECT_EQ(parallel.stats.candidate_pairs, serial.stats.candidate_pairs);
  EXPECT_EQ(parallel.stats.csf_flushes, serial.stats.csf_flushes);
}

/// Every method x join_threads in {1, 2, 5, 8} on a caller-owned pool —
/// real worker threads regardless of what ThreadPool::Global() was sized
/// to, which is what makes this the TSAN target for the chunked scans.
TEST(JoinThreadsTest, ByteIdenticalForEveryMethodOnInjectedPool) {
  const Community b = RandomCommunity(8, 280, 10, testing::TestSeed(11));
  const Community a = RandomCommunity(8, 330, 10, testing::TestSeed(12));
  util::ThreadPool pool(4);
  std::vector<Method> methods(std::begin(kAllMethods), std::end(kAllMethods));
  methods.insert(methods.end(), std::begin(kExtensionMethods),
                 std::end(kExtensionMethods));
  for (const Method method : methods) {
    JoinOptions options;
    options.eps = 2;
    options.superego_threshold = 16;
    options.join_threads = 1;
    const JoinResult serial = RunMethod(method, b, a, options);
    options.pool = &pool;
    for (const uint32_t join_threads : {1u, 2u, 5u, 8u}) {
      options.join_threads = join_threads;
      ExpectResultsIdentical(serial, RunMethod(method, b, a, options), method,
                             join_threads);
    }
  }
}

/// Deferred segment matching: every method x matching_threads in
/// {1, 2, 5, 8} must be byte-identical to the serial inline-flush run.
/// Only Ex-MinMax actually farms segments out (the other methods run one
/// matcher call or none), but the sweep runs ALL TEN methods so the knob
/// is proven inert where it must be inert. Both matchers are covered:
/// CSF's per-segment tie-breaks and Hopcroft-Karp's per-segment optimum
/// must each survive the farm's reordering of WORK (never of output).
TEST(JoinThreadsTest, ByteIdenticalForEveryMethodWithMatchingThreads) {
  const Community b = RandomCommunity(8, 280, 10, testing::TestSeed(13));
  const Community a = RandomCommunity(8, 330, 10, testing::TestSeed(14));
  util::ThreadPool pool(4);
  std::vector<Method> methods(std::begin(kAllMethods), std::end(kAllMethods));
  methods.insert(methods.end(), std::begin(kExtensionMethods),
                 std::end(kExtensionMethods));
  for (const Method method : methods) {
    for (const matching::MatcherKind matcher :
         {matching::MatcherKind::kCsf, matching::MatcherKind::kMaxMatching}) {
      JoinOptions options;
      options.eps = 2;
      options.superego_threshold = 16;
      options.matcher = matcher;
      options.matching_threads = 1;
      const JoinResult serial = RunMethod(method, b, a, options);
      options.pool = &pool;
      for (const uint32_t matching_threads : {1u, 2u, 5u, 8u}) {
        options.matching_threads = matching_threads;
        ExpectResultsIdentical(serial, RunMethod(method, b, a, options),
                               method, matching_threads);
      }
    }
  }
}

/// Both intra-join axes at once: chunked candidate collection
/// (join_threads) feeding the deferred segment farm (matching_threads) on
/// one shared pool. The axes compose — the scan's deterministic merge
/// replays the segment-close rule, then the farm matches those segments —
/// so the cross product must still telescope to the serial result.
TEST(JoinThreadsTest, ScanAndMatchingThreadsComposeDeterministically) {
  // Clustered data: users sit in tight groups spaced far beyond eps, so
  // the encoded scan closes one CSF segment per populated cluster run —
  // the multi-segment shape the farm exists for.
  auto clustered = [](uint32_t n, uint64_t seed) {
    util::Rng rng(seed);
    Community c(6);
    std::vector<Count> vec(6);
    for (uint32_t i = 0; i < n; ++i) {
      const Count center = static_cast<Count>(rng.Below(24)) * 100;
      for (auto& v : vec) v = center + static_cast<Count>(rng.Below(4));
      c.AddUser(vec);
    }
    return c;
  };
  const Community b = clustered(260, testing::TestSeed(15));
  const Community a = clustered(320, testing::TestSeed(16));
  util::ThreadPool pool(4);
  JoinOptions options;
  options.eps = 2;
  const JoinResult serial = RunMethod(Method::kExMinMax, b, a, options);
  EXPECT_GT(serial.stats.csf_flushes, 1u);  // multiple segments, or the
                                            // farm has nothing to prove
  options.pool = &pool;
  for (const uint32_t join_threads : {1u, 2u, 8u}) {
    for (const uint32_t matching_threads : {2u, 5u, 8u}) {
      options.join_threads = join_threads;
      options.matching_threads = matching_threads;
      ExpectResultsIdentical(serial,
                             RunMethod(Method::kExMinMax, b, a, options),
                             Method::kExMinMax,
                             join_threads * 100 + matching_threads);
    }
  }
}

/// The cached and cache-less paths must agree under parallel chunking too
/// (the chunks read the SAME shared immutable encoded buffers when a
/// cache is wired — the read-share the shared_mutex fast path protects).
TEST(JoinThreadsTest, ByteIdenticalWithEncodingCache) {
  const Community b = RandomCommunity(6, 240, 8, testing::TestSeed(21));
  const Community a = RandomCommunity(6, 300, 8, testing::TestSeed(22));
  util::ThreadPool pool(4);
  for (const Method method :
       {Method::kExMinMax, Method::kExBaseline, Method::kExSuperEgo,
        Method::kExMinMaxEgo}) {
    JoinOptions options;
    options.eps = 2;
    options.superego_threshold = 16;
    const JoinResult serial = RunMethod(method, b, a, options);
    EncodingCache cache;
    options.cache = &cache;
    options.pool = &pool;
    for (const uint32_t join_threads : {2u, 5u, 8u}) {
      options.join_threads = join_threads;
      // Twice per thread count: cold cache (chunks race the build
      // dedup) and hot cache (pure shared-lock hits).
      ExpectResultsIdentical(serial, RunMethod(method, b, a, options), method,
                             join_threads);
      ExpectResultsIdentical(serial, RunMethod(method, b, a, options), method,
                             join_threads);
    }
  }
}

namespace nested {

using pipeline::PipelineOptions;
using pipeline::PipelineReport;

void ExpectReportsIdentical(const PipelineReport& serial,
                            const PipelineReport& parallel,
                            uint32_t pipeline_threads,
                            uint32_t join_threads) {
  std::string trace = "pipeline_threads=";
  trace += std::to_string(pipeline_threads);
  trace += " join_threads=";
  trace += std::to_string(join_threads);
  SCOPED_TRACE(trace);
  EXPECT_EQ(parallel.screened, serial.screened);
  EXPECT_EQ(parallel.refined, serial.refined);
  EXPECT_EQ(parallel.inadmissible, serial.inadmissible);
  EXPECT_EQ(parallel.bound_pruned, serial.bound_pruned);
  EXPECT_EQ(parallel.cache_hits, serial.cache_hits);
  EXPECT_EQ(parallel.cache_misses, serial.cache_misses);
  ASSERT_EQ(parallel.entries.size(), serial.entries.size());
  for (size_t i = 0; i < serial.entries.size(); ++i) {
    const auto& s = serial.entries[i];
    const auto& p = parallel.entries[i];
    EXPECT_EQ(p.candidate_index, s.candidate_index) << "entry " << i;
    EXPECT_EQ(p.candidate_name, s.candidate_name);
    EXPECT_EQ(p.refined, s.refined);
    EXPECT_EQ(std::memcmp(&p.screened_similarity, &s.screened_similarity,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&p.refined_similarity, &s.refined_similarity,
                          sizeof(double)),
              0);
  }
}

/// Both parallelism axes at once: couples fan out across the pool while
/// each join chunks its own scan on the same pool (the nested ParallelFor
/// inlines on the worker — the budget and re-entrant Run() guarantee).
/// The report must still be byte-identical to the fully serial run.
TEST(JoinThreadsTest, NestedUnderPipelineThreadsIsDeterministic) {
  std::vector<Community> catalog;
  const uint32_t sizes[] = {200, 150, 260, 170, 230};
  for (uint32_t i = 0; i < 5; ++i) {
    Community c = RandomCommunity(6, sizes[i], 6, testing::TestSeed(300 + i));
    std::string name = "n";
    name += std::to_string(i);
    c.set_name(name);
    catalog.push_back(std::move(c));
  }
  std::vector<const Community*> pointers;
  for (const Community& c : catalog) pointers.push_back(&c);

  PipelineOptions options;
  options.screen_method = Method::kApMinMax;
  options.refine_method = Method::kExMinMax;
  options.screen_threshold = 0.0;
  options.join.eps = 3;
  options.pipeline_threads = 1;
  options.join.join_threads = 1;
  EncodingCache serial_cache;
  options.cache = &serial_cache;
  const PipelineReport serial = ScreenAndRefineAllPairs(pointers, options);
  EXPECT_GT(serial.entries.size(), 0u);

  util::ThreadPool pool(4);
  options.pool = &pool;
  for (const uint32_t pipeline_threads : {2u, 4u}) {
    for (const uint32_t join_threads : {2u, 8u}) {
      EncodingCache cache;
      options.cache = &cache;
      options.pipeline_threads = pipeline_threads;
      options.join.join_threads = join_threads;
      ExpectReportsIdentical(serial,
                             ScreenAndRefineAllPairs(pointers, options),
                             pipeline_threads, join_threads);
    }
  }

  // Third axis: deferred segment matching nested under both of the above.
  // NestedJoinThreads budgets matching_threads exactly like join_threads,
  // and the farm degrades to an inline loop on a worker thread — the
  // report must not move a bit.
  for (const uint32_t matching_threads : {2u, 8u}) {
    EncodingCache cache;
    options.cache = &cache;
    options.pipeline_threads = 4;
    options.join.join_threads = 2;
    options.join.matching_threads = matching_threads;
    ExpectReportsIdentical(serial, ScreenAndRefineAllPairs(pointers, options),
                           4, 200 + matching_threads);
  }
}

}  // namespace nested

/// The scheduling regression the cost switch fixes: member count ranks a
/// 12x12 d=1 couple above a 10x10 d=100 one, but the latter does ~70x the
/// join work. The cost-aware order must schedule the expensive couple
/// first so it cannot land last and serialize the tail.
TEST(CostAwareSchedulingTest, SkewedWorkloadSchedulesExpensiveCoupleFirst) {
  const Community wide_b = RandomCommunity(100, 10, 5, testing::TestSeed(41));
  const Community wide_a = RandomCommunity(100, 10, 5, testing::TestSeed(42));
  const Community narrow_b = RandomCommunity(1, 12, 5, testing::TestSeed(43));
  const Community narrow_a = RandomCommunity(1, 12, 5, testing::TestSeed(44));
  EXPECT_GT(pipeline::EstimatedCoupleCost(wide_b, wide_a),
            pipeline::EstimatedCoupleCost(narrow_b, narrow_a));

  // Candidate order lists the cheap-but-more-members couple first; the
  // schedule must invert that.
  std::vector<std::pair<const Community*, const Community*>> couples;
  couples.emplace_back(&narrow_b, &narrow_a);  // 12*12*1   = 144
  couples.emplace_back(&wide_b, &wide_a);      // 10*10*100 = 10000
  const std::vector<uint32_t> order = pipeline::CostAwareOrder(couples);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // the d=100 couple goes first
  EXPECT_EQ(order[1], 0u);

  // Equal costs keep candidate order (stable tie-break).
  couples.emplace_back(&narrow_b, &narrow_a);
  const std::vector<uint32_t> tied = pipeline::CostAwareOrder(couples);
  ASSERT_EQ(tied.size(), 3u);
  EXPECT_EQ(tied[1], 0u);
  EXPECT_EQ(tied[2], 2u);
}

TEST(NestedJoinThreadsTest, BudgetSharesThePoolAcrossInFlightCouples) {
  // join_threads == 1 never chunks, whatever else is happening.
  EXPECT_EQ(pipeline::NestedJoinThreads(1, 8, 16, 100), 1u);
  // A single couple inherits the whole pool.
  EXPECT_EQ(pipeline::NestedJoinThreads(8, 4, 8, 1), 8u);
  // Fair share: 8 pool threads / 4 in-flight couples = 2 each.
  EXPECT_EQ(pipeline::NestedJoinThreads(8, 4, 8, 100), 2u);
  // In-flight couples are bounded by the couple count, not just
  // pipeline_threads: 2 couples on an 8-thread pool get 4 each.
  EXPECT_EQ(pipeline::NestedJoinThreads(8, 4, 8, 2), 4u);
  // The request is a cap, not a floor.
  EXPECT_EQ(pipeline::NestedJoinThreads(4, 2, 16, 2), 4u);
  // A starved pool degrades to serial joins, never to zero.
  EXPECT_EQ(pipeline::NestedJoinThreads(8, 4, 1, 100), 1u);
  // Degenerate inputs clamp instead of dividing by zero.
  EXPECT_EQ(pipeline::NestedJoinThreads(8, 0, 0, 0), 1u);
}

}  // namespace
}  // namespace csj
