// Tests for the encoded-window similarity upper bound and its use as the
// pipeline's pre-join prune.

#include <vector>

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/community.h"
#include "core/similarity_bound.h"
#include "data/generator.h"
#include "matching/hopcroft_karp.h"
#include "pipeline/screening.h"
#include "util/rng.h"

namespace csj {
namespace {

Community RandomCommunity(Dim d, uint32_t n, Count max_value, uint64_t seed) {
  util::Rng rng(seed);
  Community c(d);
  std::vector<Count> vec(d);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(max_value + 1));
    c.AddUser(vec);
  }
  return c;
}

TEST(SimilarityBoundTest, EmptyCommunities) {
  const Community empty(3);
  Community one(3);
  one.AddUser(std::vector<Count>{1, 2, 3});
  EXPECT_EQ(MatchingUpperBound(empty, one, 1), 0u);
  EXPECT_EQ(MatchingUpperBound(one, empty, 1), 0u);
  EXPECT_DOUBLE_EQ(SimilarityUpperBound(empty, one, 1), 0.0);
}

TEST(SimilarityBoundTest, IdenticalCommunitiesBoundIsOne) {
  const Community c = RandomCommunity(5, 50, 20, 1);
  EXPECT_EQ(MatchingUpperBound(c, c, 1), 50u);
  EXPECT_DOUBLE_EQ(SimilarityUpperBound(c, c, 1), 1.0);
}

TEST(SimilarityBoundTest, DisjointIdRangesBoundIsZero) {
  Community b(2);
  b.AddUser(std::vector<Count>{0, 0});     // id 0
  b.AddUser(std::vector<Count>{1, 1});     // id 2
  Community a(2);
  a.AddUser(std::vector<Count>{100, 100}); // window [198, 202] at eps 1
  EXPECT_EQ(MatchingUpperBound(b, a, 1), 0u);
}

TEST(SimilarityBoundTest, OneToOneOverWindows) {
  // Two A windows overlap one B id: only one can claim it.
  Community b(1);
  b.AddUser(std::vector<Count>{10});
  Community a(1);
  a.AddUser(std::vector<Count>{10});
  a.AddUser(std::vector<Count>{11});
  EXPECT_EQ(MatchingUpperBound(b, a, 1), 1u);
}

TEST(SimilarityBoundTest, GreedyIsOptimalOnIntervalGraphs) {
  // d = 1 makes the relaxation graph explicit: compare the greedy count
  // with Hopcroft-Karp over the id-in-window edges.
  util::Rng rng(7);
  for (uint64_t trial = 0; trial < 50; ++trial) {
    const Community b = RandomCommunity(1, 40, 60, 100 + trial);
    const Community a = RandomCommunity(1, 50, 60, 200 + trial);
    const Epsilon eps = static_cast<Epsilon>(1 + rng.Below(6));

    std::vector<MatchedPair> edges;
    for (UserId ib = 0; ib < b.size(); ++ib) {
      const uint64_t id = b.User(ib)[0];
      for (UserId ia = 0; ia < a.size(); ++ia) {
        const uint64_t v = a.User(ia)[0];
        const uint64_t lo = v >= eps ? v - eps : 0;
        const uint64_t hi = v + eps;
        if (id >= lo && id <= hi) edges.push_back(MatchedPair{ib, ia});
      }
    }
    const size_t oracle = matching::HopcroftKarp(edges).size();
    EXPECT_EQ(MatchingUpperBound(b, a, eps), oracle) << "trial " << trial;
  }
}

TEST(SimilarityBoundTest, DominatesExactSimilarityOnRandomSweeps) {
  for (const uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const Community b = RandomCommunity(8, 80, 10, seed);
    const Community a = RandomCommunity(8, 100, 10, seed + 50);
    JoinOptions options;
    options.eps = 2;
    options.matcher = matching::MatcherKind::kMaxMatching;
    const JoinResult exact = ExBaselineJoin(b, a, options);
    EXPECT_GE(MatchingUpperBound(b, a, options.eps), exact.pairs.size())
        << "seed " << seed;
  }
}

TEST(SimilarityBoundTest, PipelinePruneDropsHopelessCandidates) {
  data::VkLikeGenerator gen(data::Category::kMusic);
  util::Rng rng(3);
  const Community pivot = data::MakeCommunity(gen, 300, rng, "pivot");

  // A candidate with wildly different encoded ids: every user far heavier
  // than anything in the pivot, so even the relaxation cannot pair them.
  Community heavy(data::kNumCategories, "heavy");
  std::vector<Count> vec(data::kNumCategories, 100000);
  for (int i = 0; i < 300; ++i) heavy.AddUser(vec);

  pipeline::PipelineOptions options;
  options.screen_threshold = 0.15;
  options.join.eps = 1;
  options.use_upper_bound_prune = true;
  const pipeline::PipelineReport report =
      ScreenAndRefine(pivot, {&heavy}, options);
  EXPECT_EQ(report.bound_pruned, 1u);
  EXPECT_EQ(report.screened, 0u);
  EXPECT_TRUE(report.entries.empty());

  // With the prune disabled the candidate is screened (and scores ~0).
  options.use_upper_bound_prune = false;
  const pipeline::PipelineReport unpruned =
      ScreenAndRefine(pivot, {&heavy}, options);
  EXPECT_EQ(unpruned.screened, 1u);
  EXPECT_EQ(unpruned.bound_pruned, 0u);
}

}  // namespace
}  // namespace csj
