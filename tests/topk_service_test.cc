// Differential test of the top-k cutoff: the best-bound-first walk with
// the strict current-kth cutoff must return BYTE-IDENTICAL rankings —
// same (id, similarity) sequence, same double bits — as exhaustively
// refining every admissible entry, on hundreds of seeded catalogs, for
// both exact methods and several epsilon regimes.

#include "service/topk.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/method.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "service/catalog.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::service {
namespace {

/// One seeded catalog + query. Communities are kept tiny (12-30 users)
/// so the suite refines thousands of exact joins in seconds; the cutoff
/// logic is size-oblivious.
struct Scenario {
  CommunityCatalog catalog;
  Community query{1};
};

/// Builds catalog entries clustered around anchors so the bound ordering
/// sees real structure (near-duplicates, graded similarity, uniform
/// noise) instead of uniformly-mediocre candidates.
void BuildScenario(Scenario* scenario, uint64_t salt, Epsilon eps,
                   bool plant_ties) {
  util::Rng rng(testing::TestSeed(salt));
  data::VkLikeGenerator gen(
      static_cast<data::Category>(salt % data::kNumCategories));
  const uint32_t entries = 6 + static_cast<uint32_t>(rng.Below(7));  // 6-12

  // The query: a fresh community mid-band so most entries are admissible.
  const auto query_size = static_cast<uint32_t>(rng.Between(14, 24));
  scenario->query = data::MakeCommunity(gen, query_size, rng);

  for (uint64_t id = 1; id <= entries; ++id) {
    const auto size = static_cast<uint32_t>(rng.Between(12, 30));
    Community community(gen.d());
    const double roll = rng.NextDouble();
    if (roll < 0.5) {
      // Planted against the query at a graded similarity target, capped
      // so the planted user count never exceeds the query's size (the
      // sampler's precondition).
      data::CoupleSpec spec;
      spec.size_b = size;
      spec.eps = eps;
      const double target = 0.1 + 0.15 * static_cast<double>(id % 5);
      const double cap = 0.9 * static_cast<double>(scenario->query.size()) /
                         static_cast<double>(size);
      spec.target_similarity = std::min(target, cap);
      community = data::PlantCommunityAgainst(scenario->query, gen, spec, rng);
    } else {
      community = data::MakeCommunity(gen, size, rng);
    }
    scenario->catalog.Upsert(id, std::move(community));
  }

  if (plant_ties) {
    // Exact duplicates of an existing entry: identical similarity AND
    // identical bound, so both the kth-tie rule (a candidate with bound
    // == kth similarity must refine) and the id-ascending tie-break in
    // the final ranking are exercised.
    const CatalogEntry dup = scenario->catalog.Get(1);
    ASSERT_NE(dup.community, nullptr);
    scenario->catalog.Upsert(entries + 1, Community(*dup.community));
    scenario->catalog.Upsert(entries + 2, Community(*dup.community));
  }
}

/// The two arms differ ONLY in use_bound_cutoff; everything else —
/// including the deterministic serial execution — is shared.
void ExpectCutoffIdentity(const Scenario& scenario, Method method,
                          Epsilon eps, uint32_t k, uint64_t* bound_skipped,
                          uint64_t* refined_saved) {
  const TopKSimilarService service(&scenario.catalog);
  TopKOptions options;
  options.k = k;
  options.method = method;
  options.join.eps = eps;

  options.use_bound_cutoff = true;
  const TopKResult pruned = service.Query(scenario.query, options);
  options.use_bound_cutoff = false;
  const TopKResult exhaustive = service.Query(scenario.query, options);

  EXPECT_FALSE(pruned.deadline_expired);
  EXPECT_FALSE(exhaustive.deadline_expired);
  // Byte identity: TopKEntry::operator== compares the doubles exactly.
  ASSERT_EQ(pruned.entries.size(), exhaustive.entries.size());
  for (size_t i = 0; i < pruned.entries.size(); ++i) {
    EXPECT_EQ(pruned.entries[i], exhaustive.entries[i])
        << "rank " << i << " diverged (method "
        << MethodName(method) << ", eps " << eps << ")";
  }
  // The exhaustive arm by definition refines every admissible entry.
  EXPECT_EQ(exhaustive.stats.refined, exhaustive.stats.admissible);
  EXPECT_EQ(exhaustive.stats.bound_skipped, 0u);
  EXPECT_LE(pruned.stats.refined, exhaustive.stats.refined);
  EXPECT_EQ(pruned.stats.refined + pruned.stats.bound_skipped,
            pruned.stats.admissible);
  *bound_skipped += pruned.stats.bound_skipped;
  *refined_saved += exhaustive.stats.refined - pruned.stats.refined;
}

TEST(TopKServiceTest, CutoffIdenticalToExhaustiveRefine) {
  const Method methods[] = {Method::kExMinMax, Method::kExBaseline};
  const Epsilon eps_values[] = {0, 2, 8};
  // 100 scenarios x 2 methods x 3 eps = 600 seeded catalog comparisons
  // (>= the 500 the acceptance bar asks for). Every 4th scenario plants
  // duplicate entries to force exact ties at the kth slot.
  constexpr uint64_t kScenarios = 100;
  uint64_t bound_skipped = 0;
  uint64_t refined_saved = 0;
  for (uint64_t s = 0; s < kScenarios; ++s) {
    for (const Epsilon eps : eps_values) {
      Scenario scenario;
      BuildScenario(&scenario, /*salt=*/s * 31 + eps, eps,
                    /*plant_ties=*/s % 4 == 0);
      if (::testing::Test::HasFatalFailure()) return;
      for (const Method method : methods) {
        // Small k relative to the catalog so the cutoff has room to act.
        ExpectCutoffIdentity(scenario, method, eps, /*k=*/3, &bound_skipped,
                             &refined_saved);
      }
    }
  }
  // The cutoff must actually fire across the suite — otherwise this test
  // only proves the trivial identity.
  EXPECT_GT(bound_skipped, 0u);
  EXPECT_GT(refined_saved, 0u);
}

TEST(TopKServiceTest, CutoffIdenticalUnderBatchedParallelWaves) {
  // Wave batching (batch_size > 1, pool threads) refines extra candidates
  // per wave; the merged ranking must not change.
  uint64_t skipped = 0;
  uint64_t saved = 0;
  for (uint64_t s = 0; s < 16; ++s) {
    Scenario scenario;
    BuildScenario(&scenario, /*salt=*/7000 + s, /*eps=*/2,
                  /*plant_ties=*/true);
    if (::testing::Test::HasFatalFailure()) return;
    const TopKSimilarService service(&scenario.catalog);

    // k = 1 keeps the cutoff as tight as possible, so it demonstrably
    // fires even in small catalogs; ranking identity is what matters.
    TopKOptions serial;
    serial.k = 1;
    serial.join.eps = 2;
    serial.use_bound_cutoff = false;
    const TopKResult oracle = service.Query(scenario.query, serial);

    TopKOptions batched = serial;
    batched.use_bound_cutoff = true;
    batched.batch_size = 2;
    batched.query_threads = 4;
    const TopKResult waved = service.Query(scenario.query, batched);

    ASSERT_EQ(waved.entries.size(), oracle.entries.size());
    for (size_t i = 0; i < waved.entries.size(); ++i) {
      EXPECT_EQ(waved.entries[i], oracle.entries[i]) << "rank " << i;
    }
    skipped += waved.stats.bound_skipped;
    saved += oracle.stats.refined - waved.stats.refined;
  }
  EXPECT_GT(skipped + saved, 0u);
}

TEST(TopKServiceTest, RankingIsSimilarityDescThenIdAsc) {
  Scenario scenario;
  BuildScenario(&scenario, /*salt=*/123, /*eps=*/2, /*plant_ties=*/true);
  const TopKSimilarService service(&scenario.catalog);
  TopKOptions options;
  options.k = 100;  // everything admissible
  options.join.eps = 2;
  const TopKResult result = service.Query(scenario.query, options);
  ASSERT_GT(result.entries.size(), 1u);
  for (size_t i = 1; i < result.entries.size(); ++i) {
    const TopKEntry& prev = result.entries[i - 1];
    const TopKEntry& here = result.entries[i];
    EXPECT_TRUE(prev.similarity > here.similarity ||
                (prev.similarity == here.similarity && prev.id < here.id))
        << "rank " << i << " out of order";
  }
}

TEST(TopKServiceTest, DuplicateEntriesTieBreakAscending) {
  // Three byte-identical communities: similarities are exactly equal, so
  // the ranking among them must be id-ascending regardless of the walk.
  Scenario scenario;
  util::Rng rng(testing::TestSeed(55));
  data::VkLikeGenerator gen(data::Category::kMusic);
  scenario.query = data::MakeCommunity(gen, 20, rng);
  const Community base = data::MakeCommunity(gen, 20, rng);
  scenario.catalog.Upsert(11, Community(base));
  scenario.catalog.Upsert(3, Community(base));
  scenario.catalog.Upsert(7, Community(base));

  const TopKSimilarService service(&scenario.catalog);
  TopKOptions options;
  options.k = 2;  // k smaller than the tie group: the cutoff sees a tie
  options.join.eps = 2;
  const TopKResult pruned = service.Query(scenario.query, options);
  options.use_bound_cutoff = false;
  const TopKResult exhaustive = service.Query(scenario.query, options);

  ASSERT_EQ(pruned.entries.size(), 2u);
  EXPECT_EQ(pruned.entries[0].id, 3u);
  EXPECT_EQ(pruned.entries[1].id, 7u);
  ASSERT_EQ(exhaustive.entries.size(), 2u);
  EXPECT_EQ(pruned.entries[0], exhaustive.entries[0]);
  EXPECT_EQ(pruned.entries[1], exhaustive.entries[1]);
}

TEST(TopKServiceTest, StatsAccountForEveryEntry) {
  Scenario scenario;
  BuildScenario(&scenario, /*salt=*/9, /*eps=*/2, /*plant_ties=*/false);
  const TopKSimilarService service(&scenario.catalog);
  TopKOptions options;
  options.k = 3;
  options.join.eps = 2;
  const TopKResult result = service.Query(scenario.query, options);
  EXPECT_EQ(result.stats.catalog_entries, scenario.catalog.size());
  EXPECT_EQ(result.stats.admissible + result.stats.inadmissible,
            result.stats.catalog_entries);
  EXPECT_EQ(result.stats.refined + result.stats.bound_skipped,
            result.stats.admissible);
  EXPECT_LE(result.entries.size(), 3u);
}

TEST(TopKServiceTest, ExpiredDeadlineReturnsFlaggedPartial) {
  Scenario scenario;
  BuildScenario(&scenario, /*salt=*/77, /*eps=*/2, /*plant_ties=*/false);
  const TopKSimilarService service(&scenario.catalog);
  TopKOptions options;
  options.k = 3;
  options.join.eps = 2;
  // A deadline already in the past: the query must bail at the first
  // phase boundary, flag the result, and refine nothing.
  const Deadline expired =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const TopKResult result = service.Query(scenario.query, options, expired);
  EXPECT_TRUE(result.deadline_expired);
  EXPECT_EQ(result.stats.refined, 0u);
}

}  // namespace
}  // namespace csj::service
