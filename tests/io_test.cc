// Tests for dataset persistence: CSV and binary round trips plus
// corruption handling.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/io.h"
#include "util/rng.h"

namespace csj::data {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Community SampleCommunity() {
  Community c(3, "Nike Running");
  c.AddUser(std::vector<Count>{1, 0, 152532});
  c.AddUser(std::vector<Count>{7, 8, 9});
  c.AddUser(std::vector<Count>{0, 0, 0});
  return c;
}

TEST(CsvIoTest, RoundTrip) {
  const Community original = SampleCommunity();
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveCommunityCsv(original, path));
  const auto loaded = LoadCommunityCsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->d(), original.d());
  EXPECT_TRUE(std::ranges::equal(loaded->flat(), original.flat()));
  EXPECT_EQ(loaded->name(), original.name());
  std::remove(path.c_str());
}

TEST(CsvIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadCommunityCsv("/nonexistent/dir/file.csv").has_value());
}

TEST(CsvIoTest, RaggedRowsRejected) {
  const std::string path = TempPath("ragged.csv");
  {
    std::ofstream out(path);
    out << "1,2,3\n1,2\n";
  }
  EXPECT_FALSE(LoadCommunityCsv(path).has_value());
  std::remove(path.c_str());
}

TEST(CsvIoTest, NonNumericRejected) {
  const std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "1,x,3\n";
  }
  EXPECT_FALSE(LoadCommunityCsv(path).has_value());
  std::remove(path.c_str());
}

TEST(CsvIoTest, HeaderlessCsvLoads) {
  const std::string path = TempPath("plain.csv");
  {
    std::ofstream out(path);
    out << "5,6\n7,8\n";
  }
  const auto loaded = LoadCommunityCsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->d(), 2u);
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->User(1)[0], 7u);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTrip) {
  const Community original = SampleCommunity();
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(SaveCommunityBinary(original, path));
  const auto loaded = LoadCommunityBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->d(), original.d());
  EXPECT_TRUE(std::ranges::equal(loaded->flat(), original.flat()));
  EXPECT_EQ(loaded->name(), original.name());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, LargeRandomRoundTrip) {
  util::Rng rng(33);
  Community c(27, "big");
  std::vector<Count> vec(27);
  for (int i = 0; i < 500; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(500001));
    c.AddUser(vec);
  }
  const std::string path = TempPath("big.bin");
  ASSERT_TRUE(SaveCommunityBinary(c, path));
  const auto loaded = LoadCommunityBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(std::ranges::equal(loaded->flat(), c.flat()));
  std::remove(path.c_str());
}

TEST(BinaryIoTest, CorruptMagicRejected) {
  const std::string path = TempPath("corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE" << std::string(32, '\0');
  }
  EXPECT_FALSE(LoadCommunityBinary(path).has_value());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, TruncatedPayloadRejected) {
  const Community original = SampleCommunity();
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveCommunityBinary(original, path));
  // Chop the last 6 bytes off.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 6));
  }
  EXPECT_FALSE(LoadCommunityBinary(path).has_value());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadCommunityBinary("/nonexistent/file.bin").has_value());
}

TEST(BinaryIoTest, EmptyCommunityRoundTrips) {
  const Community empty(5, "empty");
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(SaveCommunityBinary(empty, path));
  const auto loaded = LoadCommunityBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->d(), 5u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace csj::data
