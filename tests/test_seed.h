#ifndef CSJ_TESTS_TEST_SEED_H_
#define CSJ_TESTS_TEST_SEED_H_

#include <cstdint>

namespace csj::testing {

/// Seed that every randomized test derives its generators from. Resolved
/// once by the shared test main (tests/test_main.cc), highest priority
/// first:
///
///   1. `--seed=N` on the test binary's command line,
///   2. the `CSJ_TEST_SEED` environment variable,
///   3. kDefaultTestSeed.
///
/// The resolved value is logged at startup, so a CI failure always names
/// the seed that reproduces it: rerun the binary with `--seed=<logged>`
/// (plus `--gtest_filter` for the failing case) and the exact same
/// communities, graphs and schedules are regenerated.
uint64_t TestSeed();

/// Deterministic per-site derivation: mixes `salt` (a test-local constant
/// — suite number, parameter index, iteration counter) into the master
/// seed, so every call site gets an independent stream that still moves
/// when the master seed is overridden. SplitMix64 under the hood; equal
/// (master, salt) always yields the same value on every platform.
uint64_t TestSeed(uint64_t salt);

/// The master seed used when neither override is present. A fixed
/// constant: the default `ctest` run is bit-reproducible.
inline constexpr uint64_t kDefaultTestSeed = 2024;

}  // namespace csj::testing

#endif  // CSJ_TESTS_TEST_SEED_H_
