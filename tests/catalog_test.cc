// Tests for the sharded community catalog: versioned upserts,
// copy-on-write snapshots, cache warmup, and live couple sessions.

#include "service/catalog.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoding.h"
#include "core/encoding_cache.h"
#include "core/similarity.h"
#include "data/generator.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::service {
namespace {

Community MakeTestCommunity(uint32_t size, uint64_t salt) {
  util::Rng rng(testing::TestSeed(salt));
  data::VkLikeGenerator gen(data::Category::kSport);
  return data::MakeCommunity(gen, size, rng);
}

TEST(CatalogTest, UpsertGetRemoveRoundTrip) {
  CommunityCatalog catalog;
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_EQ(catalog.Get(7).community, nullptr);
  EXPECT_FALSE(catalog.Remove(7));

  const uint64_t v1 = catalog.Upsert(7, MakeTestCommunity(20, 1));
  EXPECT_GT(v1, 0u);
  EXPECT_EQ(catalog.size(), 1u);

  const CatalogEntry entry = catalog.Get(7);
  ASSERT_NE(entry.community, nullptr);
  EXPECT_EQ(entry.id, 7u);
  EXPECT_EQ(entry.version, v1);
  EXPECT_EQ(entry.community->size(), 20u);

  EXPECT_TRUE(catalog.Remove(7));
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_EQ(catalog.Get(7).community, nullptr);
  EXPECT_FALSE(catalog.Remove(7));
}

TEST(CatalogTest, VersionsAreCatalogWideMonotonic) {
  CommunityCatalog catalog;
  uint64_t previous = 0;
  for (uint64_t id = 1; id <= 16; ++id) {
    const uint64_t version = catalog.Upsert(id, MakeTestCommunity(16, id));
    EXPECT_GT(version, previous);
    previous = version;
  }
  // Replacing an existing id still advances the global version.
  const uint64_t replaced = catalog.Upsert(3, MakeTestCommunity(16, 99));
  EXPECT_GT(replaced, previous);
  EXPECT_EQ(catalog.latest_version(), replaced);
  EXPECT_EQ(catalog.Get(3).version, replaced);
}

TEST(CatalogTest, UpsertIsCopyOnWrite) {
  CommunityCatalog catalog;
  catalog.Upsert(1, MakeTestCommunity(24, 1));

  // A reader pins the current entry...
  const CatalogEntry pinned = catalog.Get(1);
  ASSERT_NE(pinned.community, nullptr);
  const Community* pinned_buffer = pinned.community.get();
  const uint32_t pinned_size = pinned.community->size();

  // ...then the catalog replaces it. The pinned buffer must be untouched:
  // a new shared buffer is installed, the old one stays alive and equal.
  catalog.Upsert(1, MakeTestCommunity(32, 2));
  const CatalogEntry current = catalog.Get(1);
  ASSERT_NE(current.community, nullptr);
  EXPECT_NE(current.community.get(), pinned_buffer);
  EXPECT_GT(current.version, pinned.version);
  EXPECT_EQ(pinned.community->size(), pinned_size);
  EXPECT_EQ(current.community->size(), 32u);

  // Remove() drops the catalog's reference, not the reader's.
  EXPECT_TRUE(catalog.Remove(1));
  EXPECT_EQ(pinned.community->size(), pinned_size);
}

TEST(CatalogTest, SnapshotIsAscendingById) {
  CommunityCatalog::Options options;
  options.shards = 4;  // force ids to straddle shards
  CommunityCatalog catalog(options);
  const std::vector<uint64_t> ids = {42, 7, 1000, 3, 19, 256, 8, 77};
  for (const uint64_t id : ids) {
    catalog.Upsert(id, MakeTestCommunity(16, id));
  }
  const std::vector<CatalogEntry> snapshot = catalog.Snapshot();
  ASSERT_EQ(snapshot.size(), ids.size());
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].id, snapshot[i].id);
  }
  for (const CatalogEntry& entry : snapshot) {
    EXPECT_NE(entry.community, nullptr);
  }
}

TEST(CatalogTest, DigestMatchesRecomputation) {
  CommunityCatalog catalog;
  catalog.Upsert(5, MakeTestCommunity(20, 5));
  const CatalogEntry entry = catalog.Get(5);
  const CommunityDigest expected = DigestCommunity(*entry.community);
  EXPECT_EQ(entry.digest.fingerprint, expected.fingerprint);
  EXPECT_EQ(entry.digest.max_counter, expected.max_counter);
}

TEST(CatalogTest, UpsertWarmsTheEncodingCache) {
  EncodingCache cache;
  CommunityCatalog::Options options;
  options.cache = &cache;
  options.warm_eps = 2;
  options.warm_parts = 4;
  CommunityCatalog catalog(options);

  catalog.Upsert(1, MakeTestCommunity(30, 1));
  const EncodingCache::Stats after_warm = cache.GetStats();
  // Warmup itself builds (misses), it does not hit.
  EXPECT_EQ(after_warm.hits, 0u);
  EXPECT_GT(after_warm.misses, 0u);

  // A query doing the same lookups the join methods do must now hit for
  // every buffer the warmup built: B-side, A-side, and the SoA window.
  const CatalogEntry entry = catalog.Get(1);
  const Encoder encoder(entry.community->d(), options.warm_eps,
                        options.warm_parts);
  cache.GetEncodedB(*entry.community, entry.digest, options.warm_eps,
                    encoder.parts(), nullptr);
  cache.GetEncodedA(*entry.community, entry.digest, options.warm_eps,
                    encoder.parts(), nullptr);
  cache.GetCommunityWindow(*entry.community, entry.digest, nullptr);
  const EncodingCache::Stats after_query = cache.GetStats();
  EXPECT_EQ(after_query.hits, after_warm.hits + 3);
  EXPECT_EQ(after_query.misses, after_warm.misses);
}

TEST(CatalogTest, ConcurrentUpsertsKeepVersionsUnique) {
  CommunityCatalog catalog;
  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kPerThread = 16;
  std::vector<std::vector<uint64_t>> versions(kThreads);
  std::vector<std::thread> crew;
  for (uint32_t t = 0; t < kThreads; ++t) {
    crew.emplace_back([&, t] {
      for (uint32_t i = 0; i < kPerThread; ++i) {
        const uint64_t id = t * kPerThread + i;
        versions[t].push_back(
            catalog.Upsert(id, MakeTestCommunity(12, id + 1)));
      }
    });
  }
  for (std::thread& thread : crew) thread.join();

  std::vector<uint64_t> all;
  for (const auto& mine : versions) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "two upserts were issued the same version";
  EXPECT_EQ(catalog.size(), kThreads * kPerThread);
}

TEST(LiveCoupleSessionTest, MatchesBatchExactSimilarity) {
  CommunityCatalog catalog;
  catalog.Upsert(1, MakeTestCommunity(40, 1));

  // Query sized into the admissible band: ceil(40/2)=20 <= 30 <= 40.
  const Community query = MakeTestCommunity(30, 2);
  JoinOptions join;
  join.eps = 1;
  const auto session = catalog.AttachLive(query, 1, join);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->live_subscribers(), query.size());
  EXPECT_TRUE(session->SizesAdmissible());

  const CatalogEntry entry = catalog.Get(1);
  const auto batch =
      ComputeSimilarity(Method::kExMinMax, query, *entry.community, join);
  ASSERT_TRUE(batch.has_value());
  EXPECT_DOUBLE_EQ(session->Similarity(), batch->Similarity());
}

TEST(LiveCoupleSessionTest, StaleTracksCatalogChurn) {
  CommunityCatalog catalog;
  catalog.Upsert(1, MakeTestCommunity(24, 1));
  const Community query = MakeTestCommunity(20, 2);
  JoinOptions join;

  const auto session = catalog.AttachLive(query, 1, join);
  ASSERT_NE(session, nullptr);
  EXPECT_FALSE(session->Stale());
  const double pinned_similarity = session->Similarity();

  // Replacing the entry makes the session stale but NOT invalid: it stays
  // exact against the pinned snapshot.
  catalog.Upsert(1, MakeTestCommunity(28, 3));
  EXPECT_TRUE(session->Stale());
  EXPECT_DOUBLE_EQ(session->Similarity(), pinned_similarity);

  // Removal is also staleness.
  const auto session2 = catalog.AttachLive(query, 1, join);
  ASSERT_NE(session2, nullptr);
  EXPECT_FALSE(session2->Stale());
  catalog.Remove(1);
  EXPECT_TRUE(session2->Stale());
}

TEST(LiveCoupleSessionTest, RejectsAbsentIdAndDimensionMismatch) {
  CommunityCatalog catalog;
  catalog.Upsert(1, MakeTestCommunity(24, 1));
  const Community query = MakeTestCommunity(20, 2);
  JoinOptions join;
  EXPECT_EQ(catalog.AttachLive(query, 999, join), nullptr);

  Community other_d(query.d() + 1);
  std::vector<Count> vec(other_d.d(), 1);
  other_d.AddUser(vec);
  EXPECT_EQ(catalog.AttachLive(other_d, 1, join), nullptr);
}

TEST(LiveCoupleSessionTest, SubscriberChurnUpdatesSimilarity) {
  CommunityCatalog catalog;
  catalog.Upsert(1, MakeTestCommunity(40, 1));
  const Community query = MakeTestCommunity(30, 2);
  JoinOptions join;
  const auto session = catalog.AttachLive(query, 1, join);
  ASSERT_NE(session, nullptr);

  // Adding a clone of a catalog user must keep the matching exact: verify
  // against the batch join of the grown query.
  const CatalogEntry entry = catalog.Get(1);
  const auto handle = session->AddSubscriber(entry.community->User(0));
  Community grown(query);
  grown.AddUser(entry.community->User(0));
  const auto batch =
      ComputeSimilarity(Method::kExMinMax, grown, *entry.community, join);
  ASSERT_TRUE(batch.has_value());
  EXPECT_DOUBLE_EQ(session->Similarity(), batch->Similarity());

  session->RemoveSubscriber(handle);
  const auto original =
      ComputeSimilarity(Method::kExMinMax, query, *entry.community, join);
  ASSERT_TRUE(original.has_value());
  EXPECT_DOUBLE_EQ(session->Similarity(), original->Similarity());
}

}  // namespace
}  // namespace csj::service
