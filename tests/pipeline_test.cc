// Tests for the screen-then-refine pipeline (the paper §3's two-phase
// approximate -> exact workflow).

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "pipeline/screening.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::pipeline {
namespace {

/// Builds a candidate with a planted similarity against the REAL pivot
/// community.
Community MakeCandidate(const Community& pivot, data::Category category,
                        uint32_t size, double planted, uint64_t seed,
                        const std::string& name) {
  data::VkLikeGenerator gen(category);
  data::CoupleSpec spec;
  spec.size_b = size;
  spec.target_similarity = planted;
  spec.eps = 1;
  util::Rng rng(seed);
  Community candidate = data::PlantCommunityAgainst(pivot, gen, spec, rng);
  candidate.set_name(name);
  return candidate;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::VkLikeGenerator pivot_gen(data::Category::kSport);
    util::Rng rng(99);
    pivot_ = data::MakeCommunity(pivot_gen, 600, rng, "pivot");
    // Planted similarities: high, medium, below threshold.
    high_ = MakeCandidate(pivot_, data::Category::kSport, 600, 0.40, 1,
                          "high");
    medium_ = MakeCandidate(pivot_, data::Category::kHobbies, 600, 0.22, 2,
                            "medium");
    low_ = MakeCandidate(pivot_, data::Category::kAnimals, 600, 0.05, 3,
                         "low");
    // Too small for the CSJ size rule against the 600-user pivot.
    data::VkLikeGenerator tiny_gen(data::Category::kMedia);
    util::Rng tiny_rng(4);
    tiny_ = data::MakeCommunity(tiny_gen, 100, tiny_rng, "tiny");
  }

  Community pivot_{27};
  Community high_{27};
  Community medium_{27};
  Community low_{27};
  Community tiny_{27};
};

TEST_F(PipelineTest, ScreensRefinesAndRanks) {
  PipelineOptions options;
  options.screen_threshold = 0.15;
  options.join.eps = 1;
  const PipelineReport report = ScreenAndRefine(
      pivot_, {&high_, &medium_, &low_, &tiny_}, options);

  EXPECT_EQ(report.inadmissible, 1u);  // tiny fails the size rule
  EXPECT_EQ(report.screened, 3u);
  EXPECT_EQ(report.refined, 2u);  // high and medium pass the screen
  ASSERT_EQ(report.entries.size(), 3u);

  // Ranked by final similarity: high, medium, low.
  EXPECT_EQ(report.entries[0].candidate_name, "high");
  EXPECT_EQ(report.entries[1].candidate_name, "medium");
  EXPECT_EQ(report.entries[2].candidate_name, "low");
  EXPECT_TRUE(report.entries[0].refined);
  EXPECT_TRUE(report.entries[1].refined);
  EXPECT_FALSE(report.entries[2].refined);

  // The exact phase can only confirm or improve a greedy screen.
  EXPECT_GE(report.entries[0].refined_similarity + 1e-9,
            report.entries[0].screened_similarity);
  EXPECT_NEAR(report.entries[0].refined_similarity, 0.40, 0.05);
  EXPECT_NEAR(report.entries[1].refined_similarity, 0.22, 0.05);
  EXPECT_GT(report.total_seconds, 0.0);
}

TEST_F(PipelineTest, TopKLimitsRefinement) {
  PipelineOptions options;
  options.screen_threshold = 0.01;  // everyone passes the screen
  options.refine_top_k = 1;
  options.join.eps = 1;
  const PipelineReport report =
      ScreenAndRefine(pivot_, {&high_, &medium_, &low_}, options);
  EXPECT_EQ(report.refined, 1u);
  // Only the best-screened candidate got the exact treatment.
  EXPECT_EQ(report.entries[0].candidate_name, "high");
  EXPECT_TRUE(report.entries[0].refined);
  EXPECT_FALSE(report.entries[1].refined);
}

TEST_F(PipelineTest, ThresholdOfOneRefinesNothing) {
  PipelineOptions options;
  options.screen_threshold = 1.01;
  // The upper bound never exceeds 1, so with this threshold it would
  // drop everything before screening; disable it to exercise the
  // "screened but no survivors" path.
  options.use_upper_bound_prune = false;
  options.join.eps = 1;
  const PipelineReport report =
      ScreenAndRefine(pivot_, {&high_, &medium_}, options);
  EXPECT_EQ(report.refined, 0u);
  for (const PipelineEntry& entry : report.entries) {
    EXPECT_FALSE(entry.refined);
  }
}

TEST_F(PipelineTest, EmptyCandidateList) {
  PipelineOptions options;
  options.join.eps = 1;
  const PipelineReport report = ScreenAndRefine(pivot_, {}, options);
  EXPECT_TRUE(report.entries.empty());
  EXPECT_EQ(report.screened, 0u);
}

TEST_F(PipelineTest, AllPairsCoversEveryAdmissibleCouple) {
  PipelineOptions options;
  options.screen_threshold = 0.0;
  options.join.eps = 1;
  const std::vector<const Community*> communities = {&high_, &medium_,
                                                     &low_};
  const PipelineReport report =
      ScreenAndRefineAllPairs(communities, options);
  // 3 choose 2 = 3 pairs, all same-size hence admissible.
  EXPECT_EQ(report.screened, 3u);
  EXPECT_EQ(report.refined, 3u);
  for (const PipelineEntry& entry : report.entries) {
    uint32_t i = 0;
    uint32_t j = 0;
    DecodePairIndex(entry.candidate_index,
                    static_cast<uint32_t>(communities.size()), &i, &j);
    EXPECT_LT(i, j);
    EXPECT_LT(j, communities.size());
  }
}

// The refined ranking one pipeline run produced, as exact bytes:
// (candidate_index, refined_similarity) in final entry order.
std::vector<std::pair<uint32_t, double>> RefinedRanking(
    const PipelineReport& report) {
  std::vector<std::pair<uint32_t, double>> ranking;
  for (const PipelineEntry& entry : report.entries) {
    if (entry.refined) {
      ranking.emplace_back(entry.candidate_index, entry.refined_similarity);
    }
  }
  return ranking;
}

TEST(PipelinePruneDifferentialTest, PruneOnOffRefinedRankingsIdentical) {
  // use_upper_bound_prune may only discard couples that could never
  // survive the screen (the bound dominates both similarities), so the
  // refined RANKING — order included, not just the set — must be
  // byte-identical with the prune on and off. ~200 seeded catalogs,
  // with the threshold pinned to an ACHIEVED screened similarity (an
  // exact tie at the screen cutoff) and refine_top_k cutting through
  // duplicate candidates (an exact tie at the top-k boundary).
  constexpr uint64_t kCatalogs = 200;
  uint64_t pruned_total = 0;
  for (uint64_t s = 0; s < kCatalogs; ++s) {
    util::Rng rng(csj::testing::TestSeed(4200 + s));
    data::VkLikeGenerator gen(
        static_cast<data::Category>(s % data::kNumCategories));
    const auto pivot_size = static_cast<uint32_t>(rng.Between(20, 40));
    const Community pivot = data::MakeCommunity(gen, pivot_size, rng);

    std::vector<Community> owned;
    for (uint32_t c = 0; c < 7; ++c) {
      const auto size = static_cast<uint32_t>(rng.Between(15, 40));
      if (rng.NextDouble() < 0.6) {
        data::CoupleSpec spec;
        spec.size_b = size;
        spec.eps = 1;
        // Cap the target so the planted user count stays within the
        // pivot's size (the sampler's precondition).
        const double target = 0.05 + 0.12 * static_cast<double>(c % 5);
        const double cap = 0.9 * static_cast<double>(pivot.size()) /
                           static_cast<double>(size);
        spec.target_similarity = std::min(target, cap);
        owned.push_back(data::PlantCommunityAgainst(pivot, gen, spec, rng));
      } else {
        owned.push_back(data::MakeCommunity(gen, size, rng));
      }
    }
    std::vector<const Community*> candidates;
    for (const Community& community : owned) candidates.push_back(&community);
    // A duplicate pointer: its couple screens to EXACTLY the same
    // similarity as the original, forcing a tie wherever they land.
    candidates.push_back(&owned[2]);

    // Calibration: learn the achieved screened similarities so the
    // threshold and the top-k boundary sit exactly ON a data point.
    PipelineOptions options;
    options.join.eps = 1;
    options.screen_threshold = 0.0;
    options.use_upper_bound_prune = false;
    const PipelineReport calibration =
        ScreenAndRefine(pivot, candidates, options);
    if (calibration.entries.empty()) continue;
    std::vector<double> screened;
    for (const PipelineEntry& entry : calibration.entries) {
      screened.push_back(entry.screened_similarity);
    }
    std::sort(screened.begin(), screened.end(), std::greater<>());
    // Even catalogs: the median achieved similarity — an exact tie at
    // the screen cutoff. Odd catalogs: the MAXIMUM achieved similarity —
    // still an achieved tie, and high enough that weak couples' upper
    // bounds fall below it, so the prune actually fires.
    options.screen_threshold =
        screened[s % 2 == 0 ? screened.size() / 2 : 0];
    options.refine_top_k =
        std::max<uint32_t>(1, static_cast<uint32_t>(screened.size()) / 2);

    options.use_upper_bound_prune = true;
    const PipelineReport with_prune =
        ScreenAndRefine(pivot, candidates, options);
    options.use_upper_bound_prune = false;
    const PipelineReport without_prune =
        ScreenAndRefine(pivot, candidates, options);

    // Pruning only moves candidates between "screened below threshold"
    // and "bound pruned" — never changes who refines.
    EXPECT_EQ(with_prune.screened + with_prune.bound_pruned,
              without_prune.screened)
        << "catalog " << s;
    const auto ranking_on = RefinedRanking(with_prune);
    const auto ranking_off = RefinedRanking(without_prune);
    ASSERT_EQ(ranking_on.size(), ranking_off.size()) << "catalog " << s;
    for (size_t i = 0; i < ranking_on.size(); ++i) {
      EXPECT_EQ(ranking_on[i].first, ranking_off[i].first)
          << "catalog " << s << " rank " << i;
      EXPECT_EQ(ranking_on[i].second, ranking_off[i].second)
          << "catalog " << s << " rank " << i;
    }
    pruned_total += with_prune.bound_pruned;
  }
  // The prune must fire somewhere across the suite or the differential
  // proves nothing.
  EXPECT_GT(pruned_total, 0u);
}

TEST(DecodePairIndexTest, RoundTrips) {
  for (uint32_t n : {2u, 5u, 9u}) {
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) {
        uint32_t di = 0;
        uint32_t dj = 0;
        DecodePairIndex(i * n + j, n, &di, &dj);
        EXPECT_EQ(di, i);
        EXPECT_EQ(dj, j);
      }
    }
  }
}

}  // namespace
}  // namespace csj::pipeline
