// Unit tests for the core problem types: Community, the size rule, and the
// epsilon predicate (including the paper's §3 worked example).

#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "core/join_result.h"
#include "util/rng.h"

namespace csj {
namespace {

TEST(CommunityTest, AddAndReadUsers) {
  Community c(3, "test");
  const std::vector<Count> u0 = {1, 2, 3};
  const std::vector<Count> u1 = {4, 5, 6};
  EXPECT_EQ(c.AddUser(u0), 0u);
  EXPECT_EQ(c.AddUser(u1), 1u);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.d(), 3u);
  EXPECT_EQ(c.name(), "test");
  EXPECT_EQ(c.User(0)[1], 2u);
  EXPECT_EQ(c.User(1)[2], 6u);
}

TEST(CommunityTest, FlatConstructorAndMutation) {
  Community c(2, std::vector<Count>{1, 2, 3, 4});
  EXPECT_EQ(c.size(), 2u);
  c.MutableUser(1)[0] = 9;
  EXPECT_EQ(c.User(1)[0], 9u);
  EXPECT_EQ(c.MaxCounter(), 9u);
}

TEST(CommunityTest, EmptyCommunity) {
  const Community c(5);
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.MaxCounter(), 0u);
}

TEST(SizesAdmissibleTest, PaperRule) {
  // ceil(|A|/2) <= |B| <= |A|.
  EXPECT_TRUE(SizesAdmissible(2, 3));   // ceil(3/2)=2
  EXPECT_TRUE(SizesAdmissible(3, 3));
  EXPECT_FALSE(SizesAdmissible(1, 3));  // B too small
  EXPECT_FALSE(SizesAdmissible(4, 3));  // B larger than A
  EXPECT_TRUE(SizesAdmissible(5, 10));
  EXPECT_FALSE(SizesAdmissible(4, 10));
  EXPECT_TRUE(SizesAdmissible(1, 1));
  EXPECT_TRUE(SizesAdmissible(1, 2));   // ceil(2/2)=1
}

TEST(EpsilonPredicateTest, ExactBoundary) {
  const std::vector<Count> b = {5, 5, 5};
  const std::vector<Count> within = {6, 4, 5};
  const std::vector<Count> outside = {7, 5, 5};
  EXPECT_TRUE(EpsilonMatches(b, within, 1));
  EXPECT_FALSE(EpsilonMatches(b, outside, 1));
  EXPECT_TRUE(EpsilonMatches(b, outside, 2));
}

TEST(EpsilonPredicateTest, EpsZeroRequiresEquality) {
  const std::vector<Count> x = {3, 0, 7};
  const std::vector<Count> y = {3, 0, 7};
  const std::vector<Count> z = {3, 1, 7};
  EXPECT_TRUE(EpsilonMatches(x, y, 0));
  EXPECT_FALSE(EpsilonMatches(x, z, 0));
}

TEST(EpsilonPredicateTest, SymmetricAndReflexive) {
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Count> x(8);
    std::vector<Count> y(8);
    for (int k = 0; k < 8; ++k) {
      x[static_cast<size_t>(k)] = static_cast<Count>(rng.Below(20));
      y[static_cast<size_t>(k)] = static_cast<Count>(rng.Below(20));
    }
    const Epsilon eps = static_cast<Epsilon>(rng.Below(5));
    EXPECT_EQ(EpsilonMatches(x, y, eps), EpsilonMatches(y, x, eps));
    EXPECT_TRUE(EpsilonMatches(x, x, eps));
  }
}

TEST(EpsilonPredicateTest, AgreesWithChebyshevOracle) {
  util::Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Count> x(5);
    std::vector<Count> y(5);
    for (int k = 0; k < 5; ++k) {
      x[static_cast<size_t>(k)] = static_cast<Count>(rng.Below(30));
      y[static_cast<size_t>(k)] = static_cast<Count>(rng.Below(30));
    }
    const Epsilon eps = static_cast<Epsilon>(rng.Below(8));
    EXPECT_EQ(EpsilonMatches(x, y, eps), ChebyshevDistance(x, y) <= eps);
  }
}

TEST(EpsilonPredicateTest, LargeCountersNoOverflow) {
  const std::vector<Count> x = {4294967295u};
  const std::vector<Count> y = {0u};
  EXPECT_FALSE(EpsilonMatches(x, y, 1000));
  EXPECT_TRUE(EpsilonMatches(x, x, 0));
}

TEST(CommunityDeathTest, MisuseAborts) {
  Community c(3);
  EXPECT_DEATH(c.AddUser(std::vector<Count>{1, 2}), "check failed");
  EXPECT_DEATH(Community(0), "check failed");
  EXPECT_DEATH(Community(2, std::vector<Count>{1, 2, 3}), "check failed");
}

TEST(JoinStatsTest, CountAndMergeBookkeeping) {
  JoinStats x;
  x.Count(Event::kMatch);
  x.Count(Event::kNoMatch);
  x.Count(Event::kNoOverlap);
  x.Count(Event::kMinPrune);
  x.Count(Event::kMaxPrune);
  EXPECT_EQ(x.matches, 1u);
  EXPECT_EQ(x.no_matches, 1u);
  EXPECT_EQ(x.dimension_compares, 2u);  // only full compares count
  EXPECT_EQ(x.no_overlaps, 1u);
  EXPECT_EQ(x.min_prunes, 1u);
  EXPECT_EQ(x.max_prunes, 1u);

  JoinStats y;
  y.Count(Event::kMatch);
  y.candidate_pairs = 7;
  y.seconds = 3.0;
  x.seconds = 1.0;
  x.Merge(y);
  EXPECT_EQ(x.matches, 2u);
  EXPECT_EQ(x.dimension_compares, 3u);
  EXPECT_EQ(x.candidate_pairs, 7u);
  EXPECT_DOUBLE_EQ(x.seconds, 1.0);  // wall-clock is not additive
}

TEST(EventNameTest, PaperSpellings) {
  EXPECT_STREQ(EventName(Event::kMinPrune), "MIN PRUNE");
  EXPECT_STREQ(EventName(Event::kMaxPrune), "MAX PRUNE");
  EXPECT_STREQ(EventName(Event::kNoOverlap), "NO OVERLAP");
  EXPECT_STREQ(EventName(Event::kNoMatch), "NO MATCH");
  EXPECT_STREQ(EventName(Event::kMatch), "MATCH");
}

// The worked example of §3: eps=1, d=3 (Music, Sport, Education).
TEST(PaperExampleTest, Section3MatchStructure) {
  const std::vector<Count> b1 = {3, 4, 2};
  const std::vector<Count> b2 = {2, 2, 3};
  const std::vector<Count> a1 = {2, 3, 5};
  const std::vector<Count> a2 = {2, 3, 1};
  const std::vector<Count> a3 = {3, 3, 3};
  const Epsilon eps = 1;
  // b1 can be matched with a2 and a3, b2 only with a3.
  EXPECT_FALSE(EpsilonMatches(b1, a1, eps));
  EXPECT_TRUE(EpsilonMatches(b1, a2, eps));
  EXPECT_TRUE(EpsilonMatches(b1, a3, eps));
  EXPECT_FALSE(EpsilonMatches(b2, a1, eps));
  EXPECT_FALSE(EpsilonMatches(b2, a2, eps));
  EXPECT_TRUE(EpsilonMatches(b2, a3, eps));
  // |B|=2 is at least ceil(|A|/2)=2, so similarity is meaningful.
  EXPECT_TRUE(SizesAdmissible(2, 3));
}

}  // namespace
}  // namespace csj
