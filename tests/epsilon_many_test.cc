// Tests for the 1-vs-many batched verify kernel (EpsilonMatchesMany), its
// float twin, the SoA verify window and the LazyBatchVerifier adapter —
// all validated against the scalar oracles — plus batch-on/off join
// identity across every method.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "core/join_options.h"
#include "core/join_result.h"
#include "core/method.h"
#include "ego/normalized.h"
#include "util/rng.h"

namespace csj {
namespace {

/// Random candidate rows with values small enough that eps in [0, 4]
/// produces a healthy mix of matches and misses.
std::vector<std::vector<Count>> RandomRows(uint32_t n, Dim d,
                                           Count max_value, util::Rng& rng) {
  std::vector<std::vector<Count>> rows(n);
  for (auto& row : rows) {
    row.resize(d);
    for (Dim k = 0; k < d; ++k) {
      row[k] = static_cast<Count>(rng.Below(max_value + 1));
    }
  }
  return rows;
}

VerifyWindow WindowOf(const std::vector<std::vector<Count>>& rows, Dim d) {
  VerifyWindow window;
  window.Assign(static_cast<uint32_t>(rows.size()), d,
                [&](uint32_t i) { return std::span<const Count>(rows[i]); });
  return window;
}

class EpsilonManyTest : public ::testing::TestWithParam<Dim> {};

TEST_P(EpsilonManyTest, WindowRoundTripsValues) {
  const Dim d = GetParam();
  util::Rng rng(2024 + d);
  const uint32_t n = 53;  // deliberately not a multiple of 8
  const auto rows = RandomRows(n, d, 100, rng);
  const VerifyWindow window = WindowOf(rows, d);
  ASSERT_EQ(window.size(), n);
  ASSERT_EQ(window.d(), d);
  for (uint32_t i = 0; i < n; ++i) {
    for (Dim k = 0; k < d; ++k) {
      ASSERT_EQ(window.Value(i, k), rows[i][k]) << "i=" << i << " k=" << k;
    }
  }
}

TEST_P(EpsilonManyTest, MaskMatchesChebyshevOracle) {
  const Dim d = GetParam();
  util::Rng rng(7 * d + 1);
  const uint32_t n = 90;
  const auto rows = RandomRows(n, d, 6, rng);
  const VerifyWindow window = WindowOf(rows, d);

  for (const Epsilon eps : {Epsilon{0}, Epsilon{1}, Epsilon{2}, Epsilon{4}}) {
    for (uint32_t probe_trial = 0; probe_trial < 8; ++probe_trial) {
      std::vector<Count> probe(d);
      for (Dim k = 0; k < d; ++k) {
        probe[k] = static_cast<Count>(rng.Below(7));
      }
      std::vector<uint64_t> mask((n + 63) / 64);
      EpsilonMatchesMany(probe, window, 0, n, eps, mask.data());
      for (uint32_t i = 0; i < n; ++i) {
        const bool expect = ChebyshevDistance(probe, rows[i]) <= eps;
        const bool got = (mask[i / 64] >> (i % 64)) & 1u;
        ASSERT_EQ(got, expect) << "d=" << d << " eps=" << eps << " i=" << i;
        // The batched verdict must be exactly the per-pair kernel's.
        ASSERT_EQ(got, EpsilonMatches(probe, rows[i], eps));
      }
    }
  }
}

TEST_P(EpsilonManyTest, UnalignedSubrangesMatchOracle) {
  const Dim d = GetParam();
  util::Rng rng(31 * d + 5);
  const uint32_t n = 100;
  const auto rows = RandomRows(n, d, 5, rng);
  const VerifyWindow window = WindowOf(rows, d);
  const Epsilon eps = 2;

  std::vector<Count> probe(d);
  for (Dim k = 0; k < d; ++k) probe[k] = static_cast<Count>(rng.Below(6));

  // Subranges straddling block boundaries in every alignment class,
  // including empty and single-candidate ranges.
  const std::pair<uint32_t, uint32_t> ranges[] = {
      {0, n},   {3, 77},  {8, 16},  {5, 6},   {63, 65},
      {64, 64}, {1, 9},   {95, n},  {17, 91}, {42, 42},
  };
  for (const auto& [begin, end] : ranges) {
    std::vector<uint64_t> mask((end - begin + 63) / 64 + 1, ~uint64_t{0});
    EpsilonMatchesMany(probe, window, begin, end, eps, mask.data());
    for (uint32_t i = begin; i < end; ++i) {
      const bool expect = ChebyshevDistance(probe, rows[i]) <= eps;
      const uint32_t bit = i - begin;
      const bool got = (mask[bit / 64] >> (bit % 64)) & 1u;
      ASSERT_EQ(got, expect)
          << "d=" << d << " range=[" << begin << "," << end << ") i=" << i;
    }
    // No stray bits beyond the range (the kernel zero-fills its words).
    if (end > begin) {
      const uint32_t bits = end - begin;
      const uint32_t words = (bits + 63) / 64;
      if (bits % 64 != 0) {
        ASSERT_EQ(mask[words - 1] >> (bits % 64), 0u);
      }
    }
  }
}

TEST_P(EpsilonManyTest, LazyVerifierAgreesInAnyQueryPattern) {
  const Dim d = GetParam();
  util::Rng rng(101 * d + 3);
  const uint32_t n = 150;
  const auto rows = RandomRows(n, d, 6, rng);
  const VerifyWindow window = WindowOf(rows, d);
  const Epsilon eps = 2;

  std::vector<Count> probe(d);
  for (Dim k = 0; k < d; ++k) probe[k] = static_cast<Count>(rng.Below(7));

  // Sparse ascending queries with gaps (the scan loops' shape: holes from
  // filters and used-flags, chunk-boundary crossings).
  LazyBatchVerifier<Count, Epsilon> verifier;
  verifier.Start(window, probe, eps, n);
  for (uint32_t i = 0; i < n; i += 1 + static_cast<uint32_t>(rng.Below(9))) {
    ASSERT_EQ(verifier.Matches(i), EpsilonMatches(probe, rows[i], eps))
        << "d=" << d << " i=" << i;
  }

  // A limit below the window size clamps the chunk, not the verdicts.
  const uint32_t limit = 70;
  verifier.Start(window, probe, eps, limit);
  for (uint32_t i = 0; i < limit; ++i) {
    ASSERT_EQ(verifier.Matches(i), EpsilonMatches(probe, rows[i], eps));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, EpsilonManyTest,
                         ::testing::Values<Dim>(1, 7, 8, 27, 64));

TEST(EpsilonManyFloatTest, MatchesFloatOracle) {
  for (const Dim d : {Dim{1}, Dim{7}, Dim{8}, Dim{27}, Dim{64}}) {
    util::Rng rng(555 + d);
    const uint32_t n = 77;
    std::vector<std::vector<float>> rows(n);
    for (auto& row : rows) {
      row.resize(d);
      for (Dim k = 0; k < d; ++k) {
        row[k] = static_cast<float>(rng.NextDouble());
      }
    }
    VerifyWindowF window;
    window.Assign(n, d,
                  [&](uint32_t i) { return std::span<const float>(rows[i]); });

    const float eps_norm = 0.25f;
    std::vector<float> probe(d);
    for (Dim k = 0; k < d; ++k) {
      probe[k] = static_cast<float>(rng.NextDouble());
    }
    std::vector<uint64_t> mask((n + 63) / 64);
    EpsilonMatchesManyFloat(probe, window, 0, n, eps_norm, mask.data());
    for (uint32_t i = 0; i < n; ++i) {
      const bool expect = ego::EpsMatchesFloat(probe, rows[i], eps_norm);
      const bool got = (mask[i / 64] >> (i % 64)) & 1u;
      ASSERT_EQ(got, expect) << "d=" << d << " i=" << i;
    }
  }
}

/// Batch on/off must be invisible in the join OUTPUT: same pairs, same
/// event counters, same candidate statistics — for every method.
TEST(BatchVerifyIdentityTest, JoinResultsIdenticalAcrossAllMethods) {
  util::Rng rng(90210);
  const Dim d = 27;
  Community b(d, "b");
  Community a(d, "a");
  std::vector<Count> row(d);
  for (uint32_t u = 0; u < 140; ++u) {
    for (Dim k = 0; k < d; ++k) row[k] = static_cast<Count>(rng.Below(5));
    b.AddUser(row);
  }
  for (uint32_t u = 0; u < 200; ++u) {
    for (Dim k = 0; k < d; ++k) row[k] = static_cast<Count>(rng.Below(5));
    a.AddUser(row);
  }

  for (const Method method : kAllMethods) {
    JoinOptions on;
    on.eps = 1;
    on.batch_verify = true;
    JoinOptions off = on;
    off.batch_verify = false;

    const JoinResult result_on = RunMethod(method, b, a, on);
    const JoinResult result_off = RunMethod(method, b, a, off);
    ASSERT_EQ(result_on.pairs, result_off.pairs) << MethodName(method);
    EXPECT_EQ(result_on.stats.matches, result_off.stats.matches)
        << MethodName(method);
    EXPECT_EQ(result_on.stats.no_matches, result_off.stats.no_matches)
        << MethodName(method);
    EXPECT_EQ(result_on.stats.dimension_compares,
              result_off.stats.dimension_compares)
        << MethodName(method);
    EXPECT_EQ(result_on.stats.candidate_pairs,
              result_off.stats.candidate_pairs)
        << MethodName(method);
    EXPECT_EQ(result_on.stats.min_prunes, result_off.stats.min_prunes)
        << MethodName(method);
    EXPECT_EQ(result_on.stats.no_overlaps, result_off.stats.no_overlaps)
        << MethodName(method);
  }
  for (const Method method : kExtensionMethods) {
    JoinOptions on;
    on.eps = 1;
    on.batch_verify = true;
    JoinOptions off = on;
    off.batch_verify = false;
    const JoinResult result_on = RunMethod(method, b, a, on);
    const JoinResult result_off = RunMethod(method, b, a, off);
    ASSERT_EQ(result_on.pairs, result_off.pairs) << MethodName(method);
    EXPECT_EQ(result_on.stats.matches, result_off.stats.matches)
        << MethodName(method);
    EXPECT_EQ(result_on.stats.no_matches, result_off.stats.no_matches)
        << MethodName(method);
  }
}

}  // namespace
}  // namespace csj
