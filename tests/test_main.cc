// Shared main for every csjoin test binary (replaces GTest::gtest_main):
// resolves the master seed for randomized tests from --seed / the
// CSJ_TEST_SEED environment variable / the fixed default, strips the
// --seed flag before gtest sees it, and logs the resolved value so any
// failure reproduces deterministically (see tests/test_seed.h and
// docs/API.md, "Testing strategy").

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "test_seed.h"
#include "util/rng.h"

namespace csj::testing {
namespace {

uint64_t g_master_seed = kDefaultTestSeed;

/// Parses "--seed=N" / "--seed N"; returns true (and advances *index for
/// the two-token form) when `argv[index]` is a seed flag.
bool ParseSeedFlag(int argc, char** argv, int* index, uint64_t* seed) {
  const char* arg = argv[*index];
  if (std::strncmp(arg, "--seed=", 7) == 0) {
    *seed = std::strtoull(arg + 7, nullptr, 10);
    return true;
  }
  if (std::strcmp(arg, "--seed") == 0 && *index + 1 < argc) {
    *seed = std::strtoull(argv[*index + 1], nullptr, 10);
    ++*index;
    return true;
  }
  return false;
}

}  // namespace

uint64_t TestSeed() { return g_master_seed; }

uint64_t TestSeed(uint64_t salt) {
  // Golden-ratio spread keeps nearby salts (0, 1, 2, ...) from producing
  // correlated SplitMix64 inputs.
  uint64_t state = g_master_seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  return util::SplitMix64(state);
}

}  // namespace csj::testing

int main(int argc, char** argv) {
  const char* source = "default";
  if (const char* env = std::getenv("CSJ_TEST_SEED");
      env != nullptr && env[0] != '\0') {
    csj::testing::g_master_seed = std::strtoull(env, nullptr, 10);
    source = "CSJ_TEST_SEED";
  }
  bool listing = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    uint64_t seed = 0;
    if (csj::testing::ParseSeedFlag(argc, argv, &i, &seed)) {
      csj::testing::g_master_seed = seed;
      source = "--seed";
      continue;  // strip: gtest rejects flags it does not know
    }
    if (std::strncmp(argv[i], "--gtest_list_tests", 18) == 0) listing = true;
    argv[kept++] = argv[i];
  }
  argc = kept;
  argv[argc] = nullptr;

  // Silent while gtest_discover_tests parses --gtest_list_tests output;
  // any extra line there would be misread as a test name.
  if (!listing) {
    std::printf("[csjoin] master test seed = %" PRIu64
                " (%s; override with --seed=N or CSJ_TEST_SEED)\n",
                csj::testing::g_master_seed, source);
  }

  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
