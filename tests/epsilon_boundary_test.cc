// Epsilon boundary sweeps: the CSJ match condition is |b_i - a_i| <= eps
// on EVERY dimension, so the interesting inputs are the ones sitting
// exactly ON the threshold, one below, and one past it — per dimension,
// per vector-block position, at eps = 0, and with counters saturating
// near the top of the 32-bit range. Each case is checked at three layers:
// the scalar kernel (EpsilonMatches), the batched SoA kernel
// (EpsilonMatchesMany through a VerifyWindow), and full joins with
// batch_verify both on and off — all against the straightforward
// ChebyshevDistance oracle.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "core/method.h"
#include "matching/hopcroft_karp.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj {
namespace {

/// Dimensionalities straddling the kernel's vector geometry: below one
/// block, exactly one block (8), below/above the 32-wide super-block.
constexpr Dim kDims[] = {1, 3, 8, 27, 33};

bool OracleMatches(std::span<const Count> b, std::span<const Count> a,
                   Epsilon eps) {
  return ChebyshevDistance(b, a) <= eps;
}

/// Asserts scalar and batched kernels agree with the oracle on (b, a).
void CheckAllKernels(const std::vector<Count>& b, const std::vector<Count>& a,
                     Epsilon eps, const std::string& context) {
  SCOPED_TRACE(context);
  const bool expected = OracleMatches(b, a, eps);
  EXPECT_EQ(EpsilonMatches(b, a, eps), expected);

  // Batched kernel: a one-candidate window still exercises the full SoA
  // block path (7 padded lanes).
  VerifyWindow window;
  window.Assign(1, static_cast<Dim>(a.size()),
                [&](uint32_t) { return std::span<const Count>(a); });
  uint64_t mask = ~0ull;
  EpsilonMatchesMany(b, window, 0, 1, eps, &mask);
  EXPECT_EQ((mask & 1u) != 0, expected);
}

TEST(EpsilonBoundaryTest, PerDimensionAtBelowAndAboveThreshold) {
  for (const Dim d : kDims) {
    for (const Epsilon eps : {0u, 1u, 3u, 7u}) {
      for (Dim hot = 0; hot < d; ++hot) {
        // Base vectors are equal; perturb exactly one dimension.
        const std::vector<Count> b(d, 100);
        for (const uint32_t delta : {eps > 0 ? eps - 1 : 0u, eps, eps + 1}) {
          std::vector<Count> a(d, 100);
          a[hot] = 100 + delta;
          CheckAllKernels(b, a, eps,
                          "d=" + std::to_string(d) + " eps=" +
                              std::to_string(eps) + " hot=" +
                              std::to_string(hot) + " delta=" +
                              std::to_string(delta) + " (a above b)");
          a[hot] = 100 - delta;  // the symmetric side of the band
          CheckAllKernels(b, a, eps,
                          "d=" + std::to_string(d) + " eps=" +
                              std::to_string(eps) + " hot=" +
                              std::to_string(hot) + " delta=" +
                              std::to_string(delta) + " (a below b)");
        }
      }
    }
  }
}

TEST(EpsilonBoundaryTest, EpsilonZeroIsExactEquality) {
  for (const Dim d : kDims) {
    std::vector<Count> b(d);
    for (Dim k = 0; k < d; ++k) b[k] = k * 7 + 1;
    CheckAllKernels(b, b, 0, "identical d=" + std::to_string(d));
    for (Dim hot = 0; hot < d; ++hot) {
      std::vector<Count> a = b;
      a[hot] += 1;
      CheckAllKernels(b, a, 0, "off-by-one d=" + std::to_string(d) + " hot=" +
                                   std::to_string(hot));
      EXPECT_FALSE(EpsilonMatches(b, a, 0));
    }
  }
}

TEST(EpsilonBoundaryTest, SaturatingCountersNearUint32Max) {
  // The kernels compute min/max then subtract — no differencing of
  // unsigned values in the wrong order — so counters at the top of the
  // 32-bit range must behave exactly like small ones.
  constexpr Count kTop = std::numeric_limits<Count>::max();
  for (const Dim d : kDims) {
    for (const Epsilon eps : {0u, 1u, 5u}) {
      for (Dim hot = 0; hot < d; ++hot) {
        const std::vector<Count> b(d, kTop);
        for (const uint32_t delta : {eps > 0 ? eps - 1 : 0u, eps, eps + 1}) {
          std::vector<Count> a(d, kTop);
          a[hot] = kTop - delta;
          CheckAllKernels(b, a, eps,
                          "top d=" + std::to_string(d) + " eps=" +
                              std::to_string(eps) + " hot=" +
                              std::to_string(hot) + " delta=" +
                              std::to_string(delta));
        }
        // Maximal spread: 0 vs UINT32_MAX must not match at small eps but
        // MUST match at eps = UINT32_MAX (the distance is representable).
        std::vector<Count> zero(d, 0);
        std::vector<Count> top(d, kTop);
        EXPECT_FALSE(EpsilonMatches(zero, top, eps));
        EXPECT_TRUE(EpsilonMatches(zero, top, kTop));
      }
    }
  }
}

TEST(EpsilonBoundaryTest, BatchedWindowAgreesWithScalarOnMixedBlocks) {
  // Windows longer than one block (partial last block included) with rows
  // placed at every boundary relationship: the mask must reproduce the
  // scalar verdicts bit for bit.
  for (const Dim d : kDims) {
    const Epsilon eps = 2;
    util::Rng rng(csj::testing::TestSeed(9100 + d));
    std::vector<std::vector<Count>> rows;
    for (uint32_t i = 0; i < 21; ++i) {  // 2 full blocks + a 5-lane tail
      std::vector<Count> row(d);
      for (auto& v : row) v = 50 + static_cast<Count>(rng.Below(7));  // ±3
      rows.push_back(std::move(row));
    }
    const std::vector<Count> b(d, 53);  // rows straddle [50, 56] around it

    VerifyWindow window;
    window.Assign(static_cast<uint32_t>(rows.size()), d,
                  [&](uint32_t i) { return std::span<const Count>(rows[i]); });
    std::vector<uint64_t> mask(1);
    EpsilonMatchesMany(b, window, 0, window.size(), eps, mask.data());
    for (uint32_t i = 0; i < window.size(); ++i) {
      EXPECT_EQ((mask[0] >> i) & 1u, EpsilonMatches(b, rows[i], eps) ? 1u : 0u)
          << "d=" << d << " row " << i;
    }

    // Sub-range form (the lazy verifier's chunk shape): begin inside the
    // window, end before its end.
    EpsilonMatchesMany(b, window, 8, 16, eps, mask.data());
    for (uint32_t i = 8; i < 16; ++i) {
      EXPECT_EQ((mask[0] >> (i - 8)) & 1u,
                EpsilonMatches(b, rows[i], eps) ? 1u : 0u)
          << "d=" << d << " row " << i << " (sub-range)";
    }
  }
}

// ---------------------------------------------------------------------------
// Full joins on boundary-engineered communities: every exact method with
// kMaxMatching must agree with the brute-force oracle built from the
// scalar predicate, with batch_verify on AND off producing byte-identical
// pairs.
// ---------------------------------------------------------------------------

std::vector<MatchedPair> BruteForceEdges(const Community& b,
                                         const Community& a, Epsilon eps) {
  std::vector<MatchedPair> edges;
  for (UserId ib = 0; ib < b.size(); ++ib) {
    for (UserId ia = 0; ia < a.size(); ++ia) {
      if (OracleMatches(b.User(ib), a.User(ia), eps)) {
        edges.push_back(MatchedPair{ib, ia});
      }
    }
  }
  return edges;
}

/// Communities whose differences cluster ON the eps boundary: counters
/// are drawn from a lattice of spacing eps, so almost every comparison is
/// exactly at distance 0, eps, or one lattice step past it.
Community BoundaryLattice(util::Rng& rng, Dim d, uint32_t n, Epsilon eps) {
  Community c(d);
  std::vector<Count> vec(d);
  const Count step = eps > 0 ? eps : 1;
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) {
      v = static_cast<Count>(rng.Below(4)) * step;
      if (rng.Bernoulli(0.25)) v += 1;  // knock some values off-lattice
    }
    c.AddUser(vec);
  }
  return c;
}

TEST(EpsilonBoundaryTest, JoinsAgreeWithOracleOnBoundaryLattices) {
  for (const Dim d : {1u, 3u, 8u, 27u}) {
    for (const Epsilon eps : {0u, 1u, 4u}) {
      util::Rng rng(csj::testing::TestSeed(9200 + d * 10 + eps));
      const Community b = BoundaryLattice(rng, d, 35, eps);
      const Community a = BoundaryLattice(rng, d, 45, eps);
      const size_t oracle =
          matching::HopcroftKarp(BruteForceEdges(b, a, eps)).size();

      JoinOptions options;
      options.eps = eps;
      options.matcher = matching::MatcherKind::kMaxMatching;
      for (const Method method :
           {Method::kExBaseline, Method::kExMinMax, Method::kExMinMaxEgo,
            Method::kExGridHash}) {
        options.batch_verify = true;
        const JoinResult batched = RunMethod(method, b, a, options);
        options.batch_verify = false;
        const JoinResult scalar = RunMethod(method, b, a, options);
        EXPECT_EQ(batched.pairs.size(), oracle)
            << MethodName(method) << " d=" << d << " eps=" << eps;
        EXPECT_EQ(batched.pairs, scalar.pairs)
            << MethodName(method) << " batch_verify changed the result, d="
            << d << " eps=" << eps;
      }
    }
  }
}

TEST(EpsilonBoundaryTest, SaturatedCommunitiesJoinCorrectly) {
  // Whole communities living within a few counts of UINT32_MAX: the
  // encoding, prescreens and kernels must all survive the top of the
  // range. (MinMax partitions the VALUE RANGE, so this also exercises
  // part boundaries at huge offsets.)
  constexpr Count kTop = std::numeric_limits<Count>::max();
  const Epsilon eps = 2;
  for (const Dim d : {1u, 3u, 8u}) {
    util::Rng rng(csj::testing::TestSeed(9300 + d));
    Community b(d);
    Community a(d);
    std::vector<Count> vec(d);
    for (uint32_t i = 0; i < 25; ++i) {
      for (auto& v : vec) v = kTop - static_cast<Count>(rng.Below(6));
      b.AddUser(vec);
    }
    for (uint32_t i = 0; i < 30; ++i) {
      for (auto& v : vec) v = kTop - static_cast<Count>(rng.Below(6));
      a.AddUser(vec);
    }
    const size_t oracle =
        matching::HopcroftKarp(BruteForceEdges(b, a, eps)).size();

    JoinOptions options;
    options.eps = eps;
    options.matcher = matching::MatcherKind::kMaxMatching;
    for (const Method method : {Method::kExBaseline, Method::kExMinMax}) {
      EXPECT_EQ(RunMethod(method, b, a, options).pairs.size(), oracle)
          << MethodName(method) << " d=" << d;
    }
  }
}

}  // namespace
}  // namespace csj
