// Tests for the similarity front door: method registry, admissibility
// enforcement, auto ordering.

#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/method.h"
#include "core/similarity.h"

namespace csj {
namespace {

Community Dup(const std::vector<Count>& vec, uint32_t copies) {
  Community c(static_cast<Dim>(vec.size()));
  for (uint32_t i = 0; i < copies; ++i) c.AddUser(vec);
  return c;
}

TEST(MethodRegistryTest, NamesRoundTrip) {
  for (const Method method : kAllMethods) {
    const auto parsed = ParseMethod(MethodName(method));
    ASSERT_TRUE(parsed.has_value()) << MethodName(method);
    EXPECT_EQ(*parsed, method);
  }
  EXPECT_FALSE(ParseMethod("SuperDuper").has_value());
}

TEST(MethodRegistryTest, ExactFlag) {
  EXPECT_TRUE(IsExact(Method::kExBaseline));
  EXPECT_TRUE(IsExact(Method::kExMinMax));
  EXPECT_TRUE(IsExact(Method::kExSuperEgo));
  EXPECT_FALSE(IsExact(Method::kApBaseline));
  EXPECT_FALSE(IsExact(Method::kApMinMax));
  EXPECT_FALSE(IsExact(Method::kApSuperEgo));
}

TEST(MethodRegistryTest, RunMethodDispatchesAllSix) {
  const Community b = Dup({1, 2}, 4);
  const Community a = Dup({1, 2}, 4);
  JoinOptions options;
  options.eps = 1;
  for (const Method method : kAllMethods) {
    const JoinResult result = RunMethod(method, b, a, options);
    EXPECT_EQ(result.method, MethodName(method));
    EXPECT_EQ(result.pairs.size(), 4u) << MethodName(method);
    EXPECT_DOUBLE_EQ(result.Similarity(), 1.0) << MethodName(method);
  }
}

TEST(ComputeSimilarityTest, EnforcesSizeRule) {
  JoinOptions options;
  options.eps = 1;
  const Community a = Dup({5, 5}, 10);
  // |B| = 4 < ceil(10/2): rejected.
  EXPECT_FALSE(
      ComputeSimilarity(Method::kExMinMax, Dup({5, 5}, 4), a, options)
          .has_value());
  // |B| = 5: accepted.
  const auto ok =
      ComputeSimilarity(Method::kExMinMax, Dup({5, 5}, 5), a, options);
  ASSERT_TRUE(ok.has_value());
  EXPECT_DOUBLE_EQ(ok->Similarity(), 1.0);
  // |B| > |A|: rejected (B must be the less-followed side).
  EXPECT_FALSE(
      ComputeSimilarity(Method::kExMinMax, Dup({5, 5}, 11), a, options)
          .has_value());
}

TEST(ComputeSimilarityTest, RejectsEmptyAndDimensionMismatch) {
  JoinOptions options;
  options.eps = 1;
  const Community a = Dup({1, 2}, 4);
  EXPECT_FALSE(ComputeSimilarity(Method::kExMinMax, Community(2), a, options)
                   .has_value());
  EXPECT_FALSE(
      ComputeSimilarity(Method::kExMinMax, Dup({1, 2, 3}, 4), a, options)
          .has_value());
}

TEST(ComputeSimilarityAutoOrderTest, SwapsSides) {
  JoinOptions options;
  options.eps = 1;
  const Community small = Dup({3, 3}, 6);
  const Community big = Dup({3, 3}, 10);
  const auto forward =
      ComputeSimilarityAutoOrder(Method::kExMinMax, small, big, options);
  const auto backward =
      ComputeSimilarityAutoOrder(Method::kExMinMax, big, small, options);
  ASSERT_TRUE(forward.has_value());
  ASSERT_TRUE(backward.has_value());
  // Both orderings put the 6-user community as B: similarity = 6/6.
  EXPECT_EQ(forward->size_b, 6u);
  EXPECT_EQ(backward->size_b, 6u);
  EXPECT_DOUBLE_EQ(forward->Similarity(), backward->Similarity());
}

TEST(ComputeSimilarityAutoOrderTest, StillRejectsBadRatios) {
  JoinOptions options;
  options.eps = 1;
  const Community small = Dup({3, 3}, 2);
  const Community big = Dup({3, 3}, 10);
  EXPECT_FALSE(
      ComputeSimilarityAutoOrder(Method::kExMinMax, big, small, options)
          .has_value());
}

}  // namespace
}  // namespace csj
