// Tests for the community-level encoding cache: keying and invalidation,
// build deduplication under thread races, Clear/eviction safety, the
// JoinStats counter surfacing, and — the load-bearing guarantee — cache-on
// vs cache-off byte-identical pipeline reports for every method pairing.

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/encoding_cache.h"
#include "core/join_options.h"
#include "core/method.h"
#include "pipeline/screening.h"
#include "util/rng.h"

namespace csj {
namespace {

Community RandomCommunity(Dim d, uint32_t users, Count max_value,
                          uint64_t seed, const std::string& name) {
  util::Rng rng(seed);
  Community community(d, name);
  std::vector<Count> row(d);
  for (uint32_t u = 0; u < users; ++u) {
    for (Dim k = 0; k < d; ++k) {
      row[k] = static_cast<Count>(rng.Below(max_value + 1));
    }
    community.AddUser(row);
  }
  return community;
}

TEST(CommunityDigestTest, ContentKeyedAndMutationAware) {
  const Community x = RandomCommunity(27, 50, 6, 1, "x");
  Community y = x;  // identical content, distinct object
  EXPECT_EQ(DigestCommunity(x).fingerprint, DigestCommunity(y).fingerprint);
  EXPECT_EQ(DigestCommunity(x).max_counter, x.MaxCounter());

  // Any counter mutation must change the fingerprint — that IS the
  // invalidation story: a mutated community simply keys new entries.
  y.MutableUser(7)[3] += 1;
  EXPECT_NE(DigestCommunity(x).fingerprint, DigestCommunity(y).fingerprint);

  // Same counters in a different shape must not collide.
  const Community flat(1, std::vector<Count>{1, 2, 3, 4});
  const Community tall(2, std::vector<Count>{1, 2, 3, 4});
  EXPECT_NE(DigestCommunity(flat).fingerprint,
            DigestCommunity(tall).fingerprint);
}

TEST(EncodingCacheTest, SecondLookupHitsAndSharesTheBuffer) {
  EncodingCache cache;
  const Community a = RandomCommunity(27, 80, 6, 2, "a");
  const CommunityDigest digest = DigestCommunity(a);

  JoinStats stats1;
  const auto first = cache.GetEncodedA(a, digest, 1, 4, &stats1);
  EXPECT_EQ(stats1.cache_misses, 1u);
  EXPECT_EQ(stats1.cache_hits, 0u);
  EXPECT_GT(stats1.cache_bytes_built, 0u);

  JoinStats stats2;
  const auto second = cache.GetEncodedA(a, digest, 1, 4, &stats2);
  EXPECT_EQ(stats2.cache_misses, 0u);
  EXPECT_EQ(stats2.cache_hits, 1u);
  EXPECT_EQ(stats2.cache_bytes_built, 0u);
  EXPECT_EQ(first.get(), second.get());  // one shared immutable buffer

  // Different parameters are different entries.
  JoinStats stats3;
  const auto other_eps = cache.GetEncodedA(a, digest, 2, 4, &stats3);
  EXPECT_EQ(stats3.cache_misses, 1u);
  EXPECT_NE(first.get(), other_eps.get());

  const EncodingCache::Stats totals = cache.GetStats();
  EXPECT_EQ(totals.misses, 2u);
  EXPECT_EQ(totals.hits, 1u);
  EXPECT_EQ(totals.entries, 2u);
  EXPECT_GT(totals.bytes, 0u);
}

TEST(EncodingCacheTest, ConcurrentLookupsBuildExactlyOnce) {
  // N threads race on ONE key: build dedup must make misses == 1 and all
  // threads must end up with the same buffer. Run several rounds over
  // fresh keys to give interleavings a chance to vary.
  EncodingCache cache;
  const Community a = RandomCommunity(27, 400, 6, 3, "a");
  constexpr uint32_t kThreads = 8;
  constexpr uint32_t kRounds = 5;
  for (uint32_t round = 0; round < kRounds; ++round) {
    const Epsilon eps = static_cast<Epsilon>(round + 1);  // fresh key
    const CommunityDigest digest = DigestCommunity(a);
    std::vector<std::shared_ptr<const EncodedA>> results(kThreads);
    std::vector<JoinStats> stats(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        results[t] = cache.GetEncodedA(a, digest, eps, 4, &stats[t]);
      });
    }
    for (auto& thread : threads) thread.join();

    uint64_t misses = 0;
    uint64_t hits = 0;
    for (uint32_t t = 0; t < kThreads; ++t) {
      ASSERT_NE(results[t], nullptr);
      EXPECT_EQ(results[t].get(), results[0].get());
      misses += stats[t].cache_misses;
      hits += stats[t].cache_hits;
    }
    EXPECT_EQ(misses, 1u) << "round " << round;
    EXPECT_EQ(hits, kThreads - 1) << "round " << round;
  }
}

TEST(EncodingCacheTest, ClearDropsEntriesButNotBorrowedBuffers) {
  EncodingCache cache;
  const Community a = RandomCommunity(27, 60, 6, 4, "a");
  const CommunityDigest digest = DigestCommunity(a);
  const auto held = cache.GetEncodedA(a, digest, 1, 4, nullptr);
  ASSERT_EQ(cache.GetStats().entries, 1u);

  cache.Clear();
  EXPECT_EQ(cache.GetStats().entries, 0u);
  EXPECT_EQ(cache.GetStats().bytes, 0u);
  // The borrowed buffer stays alive and readable.
  EXPECT_EQ(held->size(), 60u);
  EXPECT_EQ(held->window().size(), 60u);

  // Next lookup is a miss and builds a NEW buffer.
  JoinStats stats;
  const auto rebuilt = cache.GetEncodedA(a, digest, 1, 4, &stats);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_NE(rebuilt.get(), held.get());
}

TEST(EncodingCacheTest, EvictionUnpinsOldEntriesUnderAByteBudget) {
  // A budget small enough that a handful of communities cannot all stay
  // resident. Evicted buffers must stay valid through live shared_ptrs.
  EncodingCache cache(/*capacity_bytes=*/64 * 1024);
  std::vector<std::shared_ptr<const EncodedA>> held;
  for (uint32_t i = 0; i < 24; ++i) {
    const Community a = RandomCommunity(27, 300, 6, 100 + i, "a");
    held.push_back(cache.GetEncodedA(a, DigestCommunity(a), 1, 4, nullptr));
  }
  const EncodingCache::Stats stats = cache.GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, 24u);
  for (const auto& ptr : held) {
    ASSERT_NE(ptr, nullptr);
    EXPECT_EQ(ptr->size(), 300u);  // evicted or not, still readable
  }
}

TEST(EncodingCacheTest, JoinSurfacesCacheCountersInStats) {
  EncodingCache cache;
  const Community b = RandomCommunity(27, 100, 5, 5, "b");
  const Community a = RandomCommunity(27, 140, 5, 6, "a");
  JoinOptions options;
  options.eps = 1;
  options.cache = &cache;

  const JoinResult cold = RunMethod(Method::kApMinMax, b, a, options);
  EXPECT_EQ(cold.stats.cache_misses, 2u);  // EncodedB + EncodedA
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_GT(cold.stats.cache_bytes_built, 0u);

  const JoinResult warm = RunMethod(Method::kApMinMax, b, a, options);
  EXPECT_EQ(warm.stats.cache_misses, 0u);
  EXPECT_EQ(warm.stats.cache_hits, 2u);
  EXPECT_EQ(warm.stats.cache_bytes_built, 0u);
  EXPECT_EQ(warm.pairs, cold.pairs);
}

/// Everything observable about a report except timings and cache totals
/// (timings are wall-clock; cache totals legitimately differ between the
/// cache-on and cache-off arms).
void ExpectReportsIdentical(const pipeline::PipelineReport& x,
                            const pipeline::PipelineReport& y,
                            const std::string& label) {
  EXPECT_EQ(x.screened, y.screened) << label;
  EXPECT_EQ(x.refined, y.refined) << label;
  EXPECT_EQ(x.inadmissible, y.inadmissible) << label;
  EXPECT_EQ(x.bound_pruned, y.bound_pruned) << label;
  ASSERT_EQ(x.entries.size(), y.entries.size()) << label;
  for (size_t i = 0; i < x.entries.size(); ++i) {
    const pipeline::PipelineEntry& ex = x.entries[i];
    const pipeline::PipelineEntry& ey = y.entries[i];
    EXPECT_EQ(ex.candidate_index, ey.candidate_index) << label << " #" << i;
    EXPECT_EQ(ex.candidate_name, ey.candidate_name) << label << " #" << i;
    EXPECT_EQ(ex.refined, ey.refined) << label << " #" << i;
    // Bitwise double equality: the similarity must be the same NUMBER,
    // not merely close.
    EXPECT_EQ(std::memcmp(&ex.screened_similarity, &ey.screened_similarity,
                          sizeof(double)),
              0)
        << label << " #" << i;
    EXPECT_EQ(std::memcmp(&ex.refined_similarity, &ey.refined_similarity,
                          sizeof(double)),
              0)
        << label << " #" << i;
  }
}

TEST(EncodingCachePipelineTest, CacheOnOffIdenticalForEveryMethodPairing) {
  // A small catalog with enough overlap that screens pass and refines run.
  std::vector<Community> catalog;
  for (uint32_t i = 0; i < 5; ++i) {
    catalog.push_back(RandomCommunity(27, 120 + 10 * i, 4, 40 + i,
                                      std::string("c") + std::to_string(i)));
  }
  std::vector<const Community*> pointers;
  for (const Community& c : catalog) pointers.push_back(&c);

  const Method screens[] = {Method::kApBaseline, Method::kApMinMax,
                            Method::kApSuperEgo, Method::kApMinMaxEgo};
  const Method refines[] = {Method::kExBaseline, Method::kExMinMax,
                            Method::kExSuperEgo, Method::kExMinMaxEgo};
  for (const Method screen : screens) {
    for (const Method refine : refines) {
      pipeline::PipelineOptions options;
      options.screen_method = screen;
      options.refine_method = refine;
      // Refine EVERY couple: the SuperEGO screens key their prep by the
      // couple's max counter and dimension order, so with all-distinct
      // couples their reuse comes from the refine phase revisiting the
      // same communities — which must therefore run.
      options.screen_threshold = 0.0;
      options.join.eps = 1;

      const pipeline::PipelineReport off =
          pipeline::ScreenAndRefineAllPairs(pointers, options);

      EncodingCache cache;
      options.cache = &cache;
      const pipeline::PipelineReport on =
          pipeline::ScreenAndRefineAllPairs(pointers, options);

      std::string label = MethodName(screen);
      label += " / ";
      label += MethodName(refine);
      ExpectReportsIdentical(off, on, label);
      EXPECT_EQ(off.cache_hits + off.cache_misses, 0u) << label;
      EXPECT_GT(on.cache_misses, 0u) << label;  // something was built
      EXPECT_GT(on.cache_hits, 0u) << label;    // ... and then reused
    }
  }
}

TEST(EncodingCachePipelineTest, CacheTotalsDeterministicAcrossThreadCounts) {
  std::vector<Community> catalog;
  for (uint32_t i = 0; i < 5; ++i) {
    catalog.push_back(RandomCommunity(27, 120, 4, 70 + i, "c"));
  }
  std::vector<const Community*> pointers;
  for (const Community& c : catalog) pointers.push_back(&c);

  pipeline::PipelineOptions options;
  options.screen_method = Method::kApMinMax;
  options.refine_method = Method::kExMinMax;
  options.screen_threshold = 0.01;
  options.join.eps = 1;

  std::vector<pipeline::PipelineReport> reports;
  for (const uint32_t threads : {1u, 2u, 4u}) {
    EncodingCache cache;  // fresh cache per run: same build set every time
    options.cache = &cache;
    options.pipeline_threads = threads;
    reports.push_back(pipeline::ScreenAndRefineAllPairs(pointers, options));
  }
  for (size_t i = 1; i < reports.size(); ++i) {
    ExpectReportsIdentical(reports[0], reports[i], "threads");
    EXPECT_EQ(reports[0].cache_hits, reports[i].cache_hits);
    EXPECT_EQ(reports[0].cache_misses, reports[i].cache_misses);
    EXPECT_EQ(reports[0].cache_bytes_built, reports[i].cache_bytes_built);
  }
}

}  // namespace
}  // namespace csj
