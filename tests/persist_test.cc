// Tests for the persistent catalog store: segment roundtrip, log-tail
// replay, generation turnover, and the zero-copy restore path's
// copy-on-write discipline.

#include "persist/store.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoding_cache.h"
#include "core/signature.h"
#include "data/generator.h"
#include "persist/fsck.h"
#include "service/catalog.h"
#include "service/deep_compare.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::persist {
namespace {

Community MakeTestCommunity(uint32_t size, uint64_t salt) {
  util::Rng rng(testing::TestSeed(salt));
  data::VkLikeGenerator gen(data::Category::kSport);
  return data::MakeCommunity(gen, size, rng);
}

/// A fresh store directory under TMPDIR, removed by the next run of the
/// same test (mkdtemp keeps parallel test shards from colliding).
std::string FreshDir() {
  std::string tmpl = ::testing::TempDir() + "csj_persist_XXXXXX";
  const char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

service::CommunityCatalog::Options CatalogOpts(EncodingCache* cache) {
  service::CommunityCatalog::Options options;
  options.cache = cache;
  options.warm_eps = 2;
  options.signatures = SignatureOptions{};
  return options;
}

constexpr double kTau = 0.1;

/// Restores the store's state into a fresh catalog (own cold cache) and
/// requires deep byte-identity with `expected`.
void ExpectRestoresIdentical(const std::string& dir,
                             const service::CommunityCatalog& expected) {
  StoreOptions options;
  options.dir = dir;
  std::string error;
  auto store = Store::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;
  EncodingCache cache;
  service::CommunityCatalog restored(CatalogOpts(&cache));
  ASSERT_TRUE(store->RestoreInto(&restored, &error)) << error;
  EXPECT_EQ(restored.size(), expected.size());
  EXPECT_EQ(restored.latest_version(), expected.latest_version());
  EXPECT_TRUE(service::CatalogsIdentical(expected, restored,
                                         /*eps=*/2, kTau));
}

TEST(PersistStoreTest, FreshStoreOpensEmpty) {
  const std::string dir = FreshDir();
  StoreOptions options;
  options.dir = dir;
  std::string error;
  OpenStats stats;
  auto store = Store::Open(options, &error, &stats);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_FALSE(stats.opened_existing);
  EXPECT_EQ(store->generation(), 0u);
  EXPECT_FALSE(store->has_data());

  // The fresh open committed a superblock: the next open finds it.
  auto again = Store::Open(options, &error, &stats);
  ASSERT_NE(again, nullptr) << error;
  EXPECT_TRUE(stats.opened_existing);
}

TEST(PersistStoreTest, CheckpointRoundTripIsByteIdentical) {
  const std::string dir = FreshDir();
  EncodingCache cache;
  service::CommunityCatalog catalog(CatalogOpts(&cache));
  for (uint64_t id = 1; id <= 24; ++id) {
    catalog.Upsert(id * 3,
                   MakeTestCommunity(12 + static_cast<uint32_t>(id % 7), id));
  }
  catalog.Upsert(9, MakeTestCommunity(20, 100));  // replaced entry
  catalog.Remove(12);

  StoreOptions options;
  options.dir = dir;
  std::string error;
  auto store = Store::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;
  CheckpointStats save;
  ASSERT_TRUE(store->Checkpoint(catalog, &error, &save)) << error;
  EXPECT_EQ(save.generation, 1u);
  EXPECT_EQ(save.entries, catalog.size());

  ExpectRestoresIdentical(dir, catalog);
}

TEST(PersistStoreTest, LogTailReplaysOnTopOfSealedSegment) {
  const std::string dir = FreshDir();
  EncodingCache cache;
  service::CommunityCatalog catalog(CatalogOpts(&cache));
  for (uint64_t id = 1; id <= 10; ++id) {
    catalog.Upsert(id, MakeTestCommunity(16, id));
  }

  StoreOptions options;
  options.dir = dir;
  std::string error;
  {
    auto store = Store::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Checkpoint(catalog, &error)) << error;
    ASSERT_TRUE(store->StartLogging(&catalog, &error)) << error;
    // Mutations past the checkpoint: replace, add, remove — including a
    // remove of a SEGMENT entry, which replay must apply after the
    // segment image installs.
    catalog.Upsert(3, MakeTestCommunity(24, 200));
    catalog.Upsert(99, MakeTestCommunity(18, 201));
    catalog.Remove(7);
    catalog.Upsert(99, MakeTestCommunity(19, 202));
    store->StopLogging(&catalog);
  }
  ExpectRestoresIdentical(dir, catalog);
}

TEST(PersistStoreTest, LogOnlyStoreRecoversWithoutAnySegment) {
  const std::string dir = FreshDir();
  EncodingCache cache;
  service::CommunityCatalog catalog(CatalogOpts(&cache));

  StoreOptions options;
  options.dir = dir;
  std::string error;
  {
    // No checkpoint ever: the whole catalog lives in the log tail (the
    // crashed-before-first-checkpoint shape).
    auto store = Store::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->StartLogging(&catalog, &error)) << error;
    for (uint64_t id = 1; id <= 8; ++id) {
      catalog.Upsert(id, MakeTestCommunity(12, id));
    }
    catalog.Remove(5);
    store->StopLogging(&catalog);
  }
  {
    StoreOptions reopen;
    reopen.dir = dir;
    auto store = Store::Open(reopen, &error);
    ASSERT_NE(store, nullptr) << error;
    EXPECT_EQ(store->generation(), 0u);
    EXPECT_TRUE(store->has_data());
  }
  ExpectRestoresIdentical(dir, catalog);
}

TEST(PersistStoreTest, RestartedLoggingKeepsEarlierSessionsRecords) {
  // Regression: StartLogging must resume at the log's CURRENT end, not
  // the open-time length — a stop/start cycle used to truncate away
  // every record the first session had already fsync-acknowledged.
  const std::string dir = FreshDir();
  EncodingCache cache;
  service::CommunityCatalog catalog(CatalogOpts(&cache));

  StoreOptions options;
  options.dir = dir;
  std::string error;
  {
    auto store = Store::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->StartLogging(&catalog, &error)) << error;
    catalog.Upsert(1, MakeTestCommunity(14, 1));
    catalog.Upsert(2, MakeTestCommunity(15, 2));
    store->StopLogging(&catalog);

    // Second session on the same store object and the same log file.
    ASSERT_TRUE(store->StartLogging(&catalog, &error)) << error;
    catalog.Upsert(3, MakeTestCommunity(16, 3));
    catalog.Remove(1);
    store->StopLogging(&catalog);

    // And a third, to prove the end offset keeps advancing.
    ASSERT_TRUE(store->StartLogging(&catalog, &error)) << error;
    catalog.Upsert(4, MakeTestCommunity(17, 4));
    store->StopLogging(&catalog);
  }
  {
    StoreOptions reopen;
    reopen.dir = dir;
    OpenStats stats;
    auto store = Store::Open(reopen, &error, &stats);
    ASSERT_NE(store, nullptr) << error;
    EncodingCache recovered_cache;
    service::CommunityCatalog recovered(CatalogOpts(&recovered_cache));
    ASSERT_TRUE(store->RestoreInto(&recovered, &error, &stats)) << error;
    EXPECT_EQ(stats.log_records_replayed, 5u);  // 4 upserts + 1 remove
  }
  ExpectRestoresIdentical(dir, catalog);
}

TEST(PersistStoreTest, CheckpointAdvancesGenerationAndDropsOldFiles) {
  const std::string dir = FreshDir();
  EncodingCache cache;
  service::CommunityCatalog catalog(CatalogOpts(&cache));
  catalog.Upsert(1, MakeTestCommunity(16, 1));

  StoreOptions options;
  options.dir = dir;
  std::string error;
  auto store = Store::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->Checkpoint(catalog, &error)) << error;
  ASSERT_TRUE(store->StartLogging(&catalog, &error)) << error;
  catalog.Upsert(2, MakeTestCommunity(16, 2));
  ASSERT_TRUE(store->Checkpoint(catalog, &error)) << error;
  EXPECT_EQ(store->generation(), 2u);

  // Old generation's files are gone; the log rolled to the new one.
  EXPECT_NE(::access(store->SegmentPath(2).c_str(), F_OK), -1);
  EXPECT_EQ(::access(store->SegmentPath(1).c_str(), F_OK), -1);
  EXPECT_EQ(::access(store->LogPath(1).c_str(), F_OK), -1);

  // The rolled log still records post-checkpoint mutations.
  catalog.Upsert(3, MakeTestCommunity(16, 3));
  store->StopLogging(&catalog);
  store.reset();
  ExpectRestoresIdentical(dir, catalog);

  FsckOptions fsck;
  fsck.dir = dir;
  FsckReport report;
  ASSERT_TRUE(FsckStore(fsck, &report));
  EXPECT_TRUE(report.clean())
      << (report.findings.empty() ? "" : report.findings[0].message);
}

TEST(PersistStoreTest, RestoredEntriesAreCopyOnWriteOverTheMapping) {
  const std::string dir = FreshDir();
  EncodingCache cache;
  service::CommunityCatalog catalog(CatalogOpts(&cache));
  catalog.Upsert(5, MakeTestCommunity(16, 5));
  catalog.Upsert(6, MakeTestCommunity(16, 6));

  StoreOptions options;
  options.dir = dir;
  std::string error;
  {
    auto store = Store::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Checkpoint(catalog, &error)) << error;
  }

  EncodingCache restored_cache;
  service::CommunityCatalog restored(CatalogOpts(&restored_cache));
  auto store = Store::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->RestoreInto(&restored, &error)) << error;

  // A reader pins the mapped (view-backed) entry...
  const service::CatalogEntry pinned = restored.Get(5);
  ASSERT_NE(pinned.community, nullptr);
  const std::vector<Count> before(pinned.community->flat().begin(),
                                  pinned.community->flat().end());
  const uint64_t pinned_version = pinned.version;

  // ...then the entry is replaced and the pinned view must be untouched
  // (copy-on-write: a new buffer installs, the mapped one stays alive).
  restored.Upsert(5, MakeTestCommunity(32, 500));
  ASSERT_NE(restored.Get(5).community, nullptr);
  EXPECT_NE(restored.Get(5).version, pinned_version);
  EXPECT_TRUE(std::equal(pinned.community->flat().begin(),
                         pinned.community->flat().end(), before.begin(),
                         before.end()));

  // The store (and its mapping) can be released while views are pinned:
  // the segment keepalive travels inside the shared_ptr control block.
  store.reset();
  EXPECT_EQ(pinned.community->size(), 16u);
  EXPECT_TRUE(std::equal(pinned.community->flat().begin(),
                         pinned.community->flat().end(), before.begin(),
                         before.end()));
}

TEST(PersistStoreTest, RestoreRejectsMismatchedWarmParameters) {
  const std::string dir = FreshDir();
  EncodingCache cache;
  service::CommunityCatalog catalog(CatalogOpts(&cache));
  catalog.Upsert(1, MakeTestCommunity(16, 1));

  StoreOptions options;
  options.dir = dir;
  std::string error;
  {
    auto store = Store::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Checkpoint(catalog, &error)) << error;
  }

  // A reader configured for different warm parameters must be refused:
  // the segment's encoded artifacts were built for (eps=2, parts=4).
  EncodingCache other_cache;
  service::CommunityCatalog::Options mismatched = CatalogOpts(&other_cache);
  mismatched.warm_eps = 3;
  service::CommunityCatalog wrong(mismatched);
  auto store = Store::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_FALSE(store->RestoreInto(&wrong, &error));
  EXPECT_FALSE(error.empty());
}

TEST(PersistStoreTest, RestoreRejectsCorruptVersionColumnGracefully) {
  // The versions column lives in un-CRC'd payload bytes; a corrupt
  // value must surface as the graceful "run csj_fsck" shape error, not
  // abort inside RestoreBatch.
  const std::string dir = FreshDir();
  EncodingCache cache;
  service::CommunityCatalog catalog(CatalogOpts(&cache));
  for (uint64_t id = 1; id <= 4; ++id) {
    catalog.Upsert(id, MakeTestCommunity(12, id));
  }

  StoreOptions options;
  options.dir = dir;
  std::string error;
  {
    auto store = Store::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Checkpoint(catalog, &error)) << error;
  }

  // Locate the first version's high byte, then blow it up (a value far
  // past header.next_version).
  const std::string seg = dir + "/seg-1.csj";
  uint64_t corrupt_at = 0;
  {
    auto segment = MappedSegment::Map(seg, false, false, &error);
    ASSERT_NE(segment, nullptr) << error;
    const SectionDesc* desc = segment->Find(SectionKind::kVersions);
    ASSERT_NE(desc, nullptr);
    corrupt_at = desc->offset + 7;
  }
  {
    FILE* file = std::fopen(seg.c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fseek(file, static_cast<long>(corrupt_at), SEEK_SET), 0);
    ASSERT_EQ(std::fputc(0xFF, file), 0xFF);
    std::fclose(file);
  }

  auto store = Store::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;
  EncodingCache restored_cache;
  service::CommunityCatalog restored(CatalogOpts(&restored_cache));
  EXPECT_FALSE(store->RestoreInto(&restored, &error));
  EXPECT_NE(error.find("csj_fsck"), std::string::npos) << error;
}

}  // namespace
}  // namespace csj::persist
