#ifndef CSJ_TESTS_MATCHING_ORACLE_H_
#define CSJ_TESTS_MATCHING_ORACLE_H_

// Brute-force maximum-bipartite-matching oracle for the differential
// matching tests: Kuhn's augmenting-path algorithm, O(V * E) total (one
// O(E) DFS per left vertex). Deliberately shares NO code with the
// production matchers — no CandidateGraph, no Hopcroft-Karp phases, no
// bucket queues — so a bug in src/matching/ cannot hide behind the same
// bug here. Slow and obviously correct is the whole point; keep it that
// way.

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/join_result.h"
#include "core/types.h"

namespace csj::testing {

/// Size of a maximum one-to-one matching of the bipartite graph whose
/// edges are `edges` (original user ids on both sides; duplicate edges
/// are harmless). Standard König/Berge argument: a matching is maximum
/// iff it admits no augmenting path, and Kuhn's scan tries every left
/// vertex once, so the returned cardinality is exactly the optimum.
inline size_t OracleMaxMatchingSize(const std::vector<MatchedPair>& edges) {
  // Compress the b side into consecutive indices with an ordered map (a
  // different structure than the production id compression on purpose).
  std::map<UserId, std::vector<UserId>> adjacency;
  for (const MatchedPair& edge : edges) {
    adjacency[edge.b].push_back(edge.a);
  }

  std::map<UserId, UserId> matched_a;  // a -> b currently matched to it

  // DFS over alternating paths: returns true when `b` can be matched,
  // rematching conflicting b's recursively. `visited_a` guards one scan.
  struct Augmenter {
    const std::map<UserId, std::vector<UserId>>& adjacency;
    std::map<UserId, UserId>& matched_a;
    std::set<UserId> visited_a;

    bool TryMatch(UserId b) {
      const auto it = adjacency.find(b);
      if (it == adjacency.end()) return false;
      for (const UserId a : it->second) {
        if (!visited_a.insert(a).second) continue;
        const auto owner = matched_a.find(a);
        if (owner == matched_a.end() || TryMatch(owner->second)) {
          matched_a[a] = b;
          return true;
        }
      }
      return false;
    }
  };

  Augmenter augmenter{adjacency, matched_a, {}};
  size_t matched = 0;
  for (const auto& [b, unused] : adjacency) {
    augmenter.visited_a.clear();
    if (augmenter.TryMatch(b)) ++matched;
  }
  return matched;
}

/// True iff `pairs` is a one-to-one matching that only uses edges present
/// in `edges` — what every matcher output must satisfy regardless of
/// cardinality. (Independent of matching/greedy.h's IsOneToOne.)
inline bool OracleIsValidMatching(const std::vector<MatchedPair>& pairs,
                                  const std::vector<MatchedPair>& edges) {
  std::set<std::pair<UserId, UserId>> edge_set;
  for (const MatchedPair& edge : edges) {
    edge_set.emplace(edge.b, edge.a);
  }
  std::set<UserId> used_b;
  std::set<UserId> used_a;
  for (const MatchedPair& pair : pairs) {
    if (edge_set.find({pair.b, pair.a}) == edge_set.end()) return false;
    if (!used_b.insert(pair.b).second) return false;
    if (!used_a.insert(pair.a).second) return false;
  }
  return true;
}

}  // namespace csj::testing

#endif  // CSJ_TESTS_MATCHING_ORACLE_H_
