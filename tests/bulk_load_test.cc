// Tests for the bulk-load ingestion pipeline: CommunityCatalog::BulkLoad
// must leave the catalog, the encoding cache, and the signature index in
// a state BYTE-IDENTICAL to a sequential Upsert replay of the same batch
// — same versions, same digests, same sketch tables, same probe verdicts
// — across shard counts, duplicate ids, and pre-populated catalogs. The
// suite also pins the zero-copy overload's no-copy guarantee, the fast
// sketch builder's equivalence to the reference constructor on the hint,
// no-hint, and wide-counter fallback paths, and index/entry-map agreement
// under concurrent churn racing a BulkLoad (the TSan target).

#include "service/catalog.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoding.h"
#include "core/encoding_cache.h"
#include "core/signature.h"
#include "data/generator.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::service {
namespace {

Community MakeTestCommunity(uint32_t size, uint64_t salt) {
  util::Rng rng(testing::TestSeed(salt));
  data::VkLikeGenerator gen(
      static_cast<data::Category>(salt % data::kNumCategories));
  return data::MakeCommunity(gen, size, rng);
}

/// One seeded (id, community) batch; ids deliberately NOT ascending so
/// the install phase's end-hinted inserts also see the fallback path.
std::vector<std::pair<uint64_t, Community>> MakeBatch(uint32_t n,
                                                      uint64_t salt) {
  util::Rng rng(testing::TestSeed(salt));
  std::vector<std::pair<uint64_t, Community>> batch;
  batch.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t id = 1 + ((static_cast<uint64_t>(i) * 37) % (2 * n));
    batch.emplace_back(
        id, MakeTestCommunity(static_cast<uint32_t>(rng.Between(10, 28)),
                              salt * 1000 + i));
  }
  return batch;
}

std::vector<std::pair<uint64_t, Community>> CopyBatch(
    const std::vector<std::pair<uint64_t, Community>>& batch) {
  std::vector<std::pair<uint64_t, Community>> copy;
  copy.reserve(batch.size());
  for (const auto& [id, community] : batch) {
    copy.emplace_back(id, Community(community));
  }
  return copy;
}

/// Deep bytewise comparison of two quiesced catalogs: entry maps (ids,
/// versions, digests, counter buffers), signature index residency and
/// sketch table bytes, and the probe verdicts a prescreen query would
/// see. This is the test's definition of "byte-identical state".
void ExpectCatalogsIdentical(const CommunityCatalog& bulk,
                             const CommunityCatalog& sequential) {
  const std::vector<CatalogEntry> bulk_snapshot = bulk.Snapshot();
  const std::vector<CatalogEntry> seq_snapshot = sequential.Snapshot();
  ASSERT_EQ(bulk_snapshot.size(), seq_snapshot.size());
  EXPECT_EQ(bulk.latest_version(), sequential.latest_version());
  for (size_t i = 0; i < bulk_snapshot.size(); ++i) {
    const CatalogEntry& b = bulk_snapshot[i];
    const CatalogEntry& s = seq_snapshot[i];
    ASSERT_EQ(b.id, s.id);
    EXPECT_EQ(b.version, s.version) << "id " << b.id;
    EXPECT_EQ(b.digest.fingerprint, s.digest.fingerprint) << "id " << b.id;
    EXPECT_EQ(b.digest.max_counter, s.digest.max_counter) << "id " << b.id;
    ASSERT_NE(b.community, nullptr);
    ASSERT_NE(s.community, nullptr);
    const auto b_flat = b.community->flat();
    const auto s_flat = s.community->flat();
    ASSERT_EQ(b_flat.size(), s_flat.size()) << "id " << b.id;
    EXPECT_TRUE(std::equal(b_flat.begin(), b_flat.end(), s_flat.begin()))
        << "counter buffers diverged for id " << b.id;
  }

  const SignatureIndex* bulk_index = bulk.signature_index();
  const SignatureIndex* seq_index = sequential.signature_index();
  ASSERT_EQ(bulk_index == nullptr, seq_index == nullptr);
  if (bulk_index == nullptr) return;
  ASSERT_EQ(bulk_index->size(), seq_index->size());
  for (const CatalogEntry& entry : bulk_snapshot) {
    // Each id must be resident in exactly one shard of each index, at the
    // same version, with bytewise-equal breakpoint tables.
    std::shared_ptr<const CommunitySignature> from_bulk;
    std::shared_ptr<const CommunitySignature> from_seq;
    uint64_t bulk_version = 0;
    uint64_t seq_version = 0;
    for (uint32_t shard = 0; shard < bulk_index->shards(); ++shard) {
      if (auto found = bulk_index->Lookup(shard, entry.id, &bulk_version)) {
        EXPECT_EQ(from_bulk, nullptr) << "id " << entry.id << " twice";
        from_bulk = std::move(found);
      }
      if (auto found = seq_index->Lookup(shard, entry.id, &seq_version)) {
        EXPECT_EQ(from_seq, nullptr) << "id " << entry.id << " twice";
        from_seq = std::move(found);
      }
    }
    ASSERT_NE(from_bulk, nullptr) << "id " << entry.id;
    ASSERT_NE(from_seq, nullptr) << "id " << entry.id;
    EXPECT_EQ(bulk_version, seq_version) << "id " << entry.id;
    EXPECT_EQ(from_bulk->size(), from_seq->size());
    EXPECT_EQ(from_bulk->sampled(), from_seq->sampled());
    const auto b_table = from_bulk->table();
    const auto s_table = from_seq->table();
    ASSERT_EQ(b_table.size(), s_table.size()) << "id " << entry.id;
    EXPECT_TRUE(std::equal(b_table.begin(), b_table.end(), s_table.begin()))
        << "sketch tables diverged for id " << entry.id;
  }

  // The pack-level state (summaries included) must agree behaviorally:
  // identical candidates, identical sweep accounting — including the
  // pack prefilter's skip count — for the same probe.
  const Community query = MakeTestCommunity(18, 424242);
  const CommunitySignature query_signature(query, bulk_index->options());
  const std::vector<Dim> order = SignatureProbeOrder(query_signature);
  for (const double threshold : {0.05, 0.25, 0.60}) {
    const auto bulk_probe =
        bulk.ProbeCandidates(query_signature, order, /*eps=*/2, threshold);
    const auto seq_probe = sequential.ProbeCandidates(query_signature, order,
                                                      /*eps=*/2, threshold);
    ASSERT_EQ(bulk_probe.candidates.size(), seq_probe.candidates.size());
    for (size_t i = 0; i < bulk_probe.candidates.size(); ++i) {
      EXPECT_EQ(bulk_probe.candidates[i].id, seq_probe.candidates[i].id);
      EXPECT_EQ(bulk_probe.candidates[i].version,
                seq_probe.candidates[i].version);
    }
    EXPECT_EQ(bulk_probe.stats.examined, seq_probe.stats.examined);
    EXPECT_EQ(bulk_probe.stats.passed, seq_probe.stats.passed);
    EXPECT_EQ(bulk_probe.stats.skipped_cap, seq_probe.stats.skipped_cap);
    EXPECT_EQ(bulk_probe.stats.skipped_inadmissible,
              seq_probe.stats.skipped_inadmissible);
    EXPECT_EQ(bulk_probe.stats.packs_skipped, seq_probe.stats.packs_skipped);
  }
}

CommunityCatalog::Options WithEverything(uint32_t shards,
                                         EncodingCache* cache) {
  CommunityCatalog::Options options;
  options.shards = shards;
  options.cache = cache;
  options.warm_eps = 2;
  options.warm_parts = 4;
  options.signatures = SignatureOptions{};
  return options;
}

TEST(BulkLoadTest, MatchesSequentialUpsertAcrossShardCounts) {
  for (const uint32_t shards : {1u, 4u, 8u}) {
    EncodingCache bulk_cache;
    EncodingCache seq_cache;
    CommunityCatalog bulk(WithEverything(shards, &bulk_cache));
    CommunityCatalog sequential(WithEverything(shards, &seq_cache));

    const auto batch = MakeBatch(64, 100 + shards);
    for (auto& [id, community] : CopyBatch(batch)) {
      sequential.Upsert(id, std::move(community));
    }
    CommunityCatalog::BulkLoadStats stats;
    const uint64_t last = bulk.BulkLoad(CopyBatch(batch), &stats);
    EXPECT_EQ(last, bulk.latest_version());
    EXPECT_EQ(stats.entries, batch.size());
    EXPECT_GE(stats.encode_seconds, 0.0);
    EXPECT_GE(stats.sketch_seconds, 0.0);
    EXPECT_GE(stats.install_seconds, 0.0);

    ExpectCatalogsIdentical(bulk, sequential);

    // The bulk path must warm the SAME cache keys the sequential warmup
    // does: the lookups a serving query performs all hit on both sides.
    for (const CommunityCatalog* catalog : {&bulk, &sequential}) {
      EncodingCache* cache = catalog == &bulk ? &bulk_cache : &seq_cache;
      const EncodingCache::Stats before = cache->GetStats();
      for (const CatalogEntry& entry : catalog->Snapshot()) {
        const Encoder encoder(entry.community->d(), 2, 4);
        cache->GetEncodedB(*entry.community, entry.digest, 2,
                           encoder.parts(), nullptr);
        cache->GetEncodedA(*entry.community, entry.digest, 2,
                           encoder.parts(), nullptr);
        cache->GetCommunityWindow(*entry.community, entry.digest, nullptr);
      }
      const EncodingCache::Stats after = cache->GetStats();
      EXPECT_EQ(after.misses, before.misses)
          << (catalog == &bulk ? "bulk" : "sequential")
          << " warmup left cold keys";
    }
  }
}

TEST(BulkLoadTest, DuplicateIdsReplayLastWins) {
  EncodingCache bulk_cache;
  EncodingCache seq_cache;
  CommunityCatalog bulk(WithEverything(4, &bulk_cache));
  CommunityCatalog sequential(WithEverything(4, &seq_cache));

  // Every id appears three times with different payloads; the resident
  // entry must be the LAST occurrence under the version the sequential
  // replay would have issued for it.
  std::vector<std::pair<uint64_t, Community>> batch;
  for (uint32_t round = 0; round < 3; ++round) {
    for (uint64_t id = 1; id <= 12; ++id) {
      batch.emplace_back(id,
                         MakeTestCommunity(12 + round * 4, round * 100 + id));
    }
  }
  for (auto& [id, community] : CopyBatch(batch)) {
    sequential.Upsert(id, std::move(community));
  }
  bulk.BulkLoad(CopyBatch(batch), nullptr);

  EXPECT_EQ(bulk.size(), 12u);
  ExpectCatalogsIdentical(bulk, sequential);
  // Spot-check the last-wins payload: round 2 communities have size 20.
  const CatalogEntry entry = bulk.Get(5);
  ASSERT_NE(entry.community, nullptr);
  EXPECT_EQ(entry.community->size(), 20u);
}

TEST(BulkLoadTest, EmptyBatchIsANoOp) {
  CommunityCatalog catalog(WithEverything(4, nullptr));
  catalog.Upsert(1, MakeTestCommunity(16, 1));
  const uint64_t version_before = catalog.latest_version();
  const uint64_t started_before = catalog.mutations_started();

  CommunityCatalog::BulkLoadStats stats;
  stats.entries = 99;  // must be reset even on the empty path
  EXPECT_EQ(catalog.BulkLoad(
                std::vector<std::pair<uint64_t, Community>>{}, &stats),
            0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.latest_version(), version_before);
  EXPECT_EQ(catalog.mutations_started(), started_before);
}

TEST(BulkLoadTest, LoadsOntoPrePopulatedCatalogWithReplacements) {
  EncodingCache bulk_cache;
  EncodingCache seq_cache;
  CommunityCatalog bulk(WithEverything(8, &bulk_cache));
  CommunityCatalog sequential(WithEverything(8, &seq_cache));

  // Both arms start from the same resident set...
  for (uint64_t id = 1; id <= 20; ++id) {
    Community community = MakeTestCommunity(14, 9000 + id);
    bulk.Upsert(id, Community(community));
    sequential.Upsert(id, std::move(community));
  }
  // ...then a batch overlapping half of it (ids 11..40) lands.
  std::vector<std::pair<uint64_t, Community>> batch;
  for (uint64_t id = 11; id <= 40; ++id) {
    batch.emplace_back(id, MakeTestCommunity(18, 9500 + id));
  }
  for (auto& [id, community] : CopyBatch(batch)) {
    sequential.Upsert(id, std::move(community));
  }
  bulk.BulkLoad(CopyBatch(batch), nullptr);

  EXPECT_EQ(bulk.size(), 40u);
  ExpectCatalogsIdentical(bulk, sequential);
}

TEST(BulkLoadTest, ZeroCopyOverloadInstallsTheCallersBuffers) {
  CommunityCatalog catalog(WithEverything(4, nullptr));
  std::vector<std::pair<uint64_t, std::shared_ptr<const Community>>> batch;
  std::vector<const Community*> raw;
  for (uint64_t id = 1; id <= 8; ++id) {
    auto frozen =
        std::make_shared<const Community>(MakeTestCommunity(12, 80 + id));
    raw.push_back(frozen.get());
    batch.emplace_back(id, std::move(frozen));
  }
  catalog.BulkLoad(std::move(batch), nullptr);
  for (uint64_t id = 1; id <= 8; ++id) {
    const CatalogEntry entry = catalog.Get(id);
    ASSERT_NE(entry.community, nullptr);
    EXPECT_EQ(entry.community.get(), raw[id - 1])
        << "zero-copy overload copied the buffer for id " << id;
  }
}

/// The fast sketch builder (scratch + hint) against the reference
/// constructor, on all three internal paths: 16-bit radix keys (small
/// counters), 32-bit keys, and the wide-counter per-column fallback.
TEST(BulkLoadTest, FastSketchBuilderMatchesReferenceOnAllKeyWidths) {
  const SignatureOptions options;
  util::Rng rng(testing::TestSeed(321));
  // Count ceilings chosen to steer the composite (dim, counter) key
  // width: d = 27 needs 5 dim bits, so ceilings of 2^8, 2^20, and 2^30
  // exercise the u16, u32, and fallback paths respectively.
  const Count ceilings[] = {Count{1} << 8, Count{1} << 20, Count{1} << 30};
  for (const Count ceiling : ceilings) {
    constexpr Dim kD = 27;
    Community community(kD);
    std::vector<Count> vec(kD);
    for (uint32_t u = 0; u < 40; ++u) {
      for (Dim k = 0; k < kD; ++k) {
        // About half zeros, like the profile data the builder is tuned
        // for; the rest spread over the full ceiling.
        vec[k] = rng.NextDouble() < 0.5
                     ? 0
                     : static_cast<Count>(1 + rng.Below(ceiling - 1));
      }
      community.AddUser(vec);
    }
    const CommunitySignature reference(community, options);
    const Count max_counter = DigestCommunity(community).max_counter;
    SketchScratch scratch;
    const CommunitySignature with_hint(community, options, &scratch,
                                       max_counter);
    const CommunitySignature without_hint(community, options, &scratch, 0);
    for (const CommunitySignature* fast : {&with_hint, &without_hint}) {
      ASSERT_EQ(fast->table().size(), reference.table().size());
      EXPECT_TRUE(std::equal(fast->table().begin(), fast->table().end(),
                             reference.table().begin()))
          << "fast builder diverged at counter ceiling " << ceiling;
    }
  }
}

TEST(BulkLoadTest, SurvivesConcurrentChurnAndQueries) {
  // The TSan target: a BulkLoad of fresh ids races Upsert/Remove churn on
  // a disjoint id range plus concurrent probes. Afterwards the bulk ids
  // must all be resident at their batch payloads, versions unique, and
  // the signature index in exact agreement with the entry map.
  EncodingCache cache;
  CommunityCatalog catalog(WithEverything(8, &cache));
  constexpr uint64_t kChurnIds = 32;
  constexpr uint32_t kBulkEntries = 96;
  for (uint64_t id = 1; id <= kChurnIds; ++id) {
    catalog.Upsert(id, MakeTestCommunity(12, 5000 + id));
  }

  std::vector<std::pair<uint64_t, Community>> batch;
  for (uint32_t i = 0; i < kBulkEntries; ++i) {
    batch.emplace_back(1000 + i, MakeTestCommunity(14, 6000 + i));
  }

  std::atomic<bool> stop{false};
  std::thread loader([&] {
    catalog.BulkLoad(std::move(batch), nullptr);
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> crew;
  for (uint32_t w = 0; w < 2; ++w) {
    crew.emplace_back([&, w] {
      util::Rng rng(testing::TestSeed(7500 + w));
      uint64_t salt = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t id = 1 + rng.Below(kChurnIds);
        if (rng.NextDouble() < 0.7) {
          catalog.Upsert(id, MakeTestCommunity(12, 8000 + ++salt));
        } else {
          catalog.Remove(id);
        }
      }
    });
  }
  crew.emplace_back([&] {
    util::Rng rng(testing::TestSeed(7600));
    ASSERT_NE(catalog.signature_options(), nullptr);
    const SignatureOptions options = *catalog.signature_options();
    while (!stop.load(std::memory_order_acquire)) {
      const Community query = MakeTestCommunity(16, 8500 + rng.Below(16));
      const CommunitySignature signature(query, options);
      const std::vector<Dim> order = SignatureProbeOrder(signature);
      const auto probe =
          catalog.ProbeCandidates(signature, order, /*eps=*/2, 0.2);
      EXPECT_EQ(probe.stats.passed, probe.candidates.size());
    }
  });
  loader.join();
  for (std::thread& thread : crew) thread.join();

  // Every bulk id is resident with its batch payload and a version from
  // the reserved block (all distinct by construction).
  for (uint32_t i = 0; i < kBulkEntries; ++i) {
    const CatalogEntry entry = catalog.Get(1000 + i);
    ASSERT_NE(entry.community, nullptr) << "bulk id " << 1000 + i;
    EXPECT_EQ(entry.community->size(), 14u);
  }

  // Quiesced: the index and the entry map agree exactly.
  const SignatureIndex* index = catalog.signature_index();
  ASSERT_NE(index, nullptr);
  const std::vector<CatalogEntry> snapshot = catalog.Snapshot();
  ASSERT_EQ(index->size(), snapshot.size());
  std::vector<uint64_t> versions;
  for (const CatalogEntry& entry : snapshot) {
    versions.push_back(entry.version);
    uint32_t resident_in = 0;
    for (uint32_t shard = 0; shard < index->shards(); ++shard) {
      uint64_t version = 0;
      const auto signature = index->Lookup(shard, entry.id, &version);
      if (signature == nullptr) continue;
      ++resident_in;
      EXPECT_EQ(version, entry.version) << "id " << entry.id;
      EXPECT_EQ(signature->size(), entry.community->size());
    }
    EXPECT_EQ(resident_in, 1u) << "id " << entry.id;
  }
  std::sort(versions.begin(), versions.end());
  EXPECT_EQ(std::adjacent_find(versions.begin(), versions.end()),
            versions.end())
      << "two installs share a version";
}

}  // namespace
}  // namespace csj::service
