// Tests for the one-to-one matchers: CandidateGraph, CSF, Hopcroft-Karp,
// greedy first-fit — including the paper's Figure 3 CSF inputs.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "matching/candidate_graph.h"
#include "matching/csf.h"
#include "matching/greedy.h"
#include "matching/hopcroft_karp.h"
#include "matching/matcher.h"
#include "util/rng.h"

namespace csj::matching {
namespace {

std::vector<MatchedPair> Edges(
    std::initializer_list<std::pair<UserId, UserId>> list) {
  std::vector<MatchedPair> edges;
  for (const auto& [b, a] : list) edges.push_back(MatchedPair{b, a});
  return edges;
}

/// True when every matched edge exists in the candidate set.
bool PairsAreSubsetOfEdges(const std::vector<MatchedPair>& pairs,
                           const std::vector<MatchedPair>& edges) {
  for (const MatchedPair& p : pairs) {
    if (std::find(edges.begin(), edges.end(), p) == edges.end()) return false;
  }
  return true;
}

TEST(CandidateGraphTest, CompressesAndDeduplicates) {
  const auto edges = Edges({{10, 5}, {10, 5}, {20, 5}, {10, 7}});
  const CandidateGraph graph(edges);
  EXPECT_EQ(graph.num_b(), 2u);
  EXPECT_EQ(graph.num_a(), 2u);
  EXPECT_EQ(graph.num_edges(), 3u);  // duplicate removed
  EXPECT_EQ(graph.BId(0), 10u);
  EXPECT_EQ(graph.BId(1), 20u);
  EXPECT_EQ(graph.AId(0), 5u);
  EXPECT_EQ(graph.AId(1), 7u);
  EXPECT_EQ(graph.AdjB(0).size(), 2u);
  EXPECT_EQ(graph.AdjA(0).size(), 2u);
}

TEST(CandidateGraphTest, RoundTripsOriginalIds) {
  const auto edges = Edges({{100, 200}, {101, 201}});
  const CandidateGraph graph(edges);
  const std::vector<MatchedPair> local = {{0, 0}, {1, 1}};
  const std::vector<MatchedPair> original = graph.ToOriginalIds(local);
  EXPECT_EQ(original[0], (MatchedPair{100, 200}));
  EXPECT_EQ(original[1], (MatchedPair{101, 201}));
}

TEST(CsfTest, EmptyInput) {
  EXPECT_TRUE(CoverSmallestFirst(std::vector<MatchedPair>{}).empty());
}

TEST(CsfTest, SingleEdge) {
  const auto matched = CoverSmallestFirst(Edges({{3, 9}}));
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0], (MatchedPair{3, 9}));
}

// Figure 3, instance <<1>>: CSF(<b1,a1>, <b1,a3>) — one pair results.
TEST(CsfTest, Figure3FirstFlush) {
  const auto matched = CoverSmallestFirst(Edges({{1, 1}, {1, 3}}));
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0].b, 1u);
}

// Figure 3, instance <<4>>: CSF(<b2,a2>, <b2,a4>, <b3,a4>) — the edge case
// with two examined B users; the maximum of two pairs must be found
// (<b2,a2> and <b3,a4>).
TEST(CsfTest, Figure3EdgeCaseFlush) {
  const auto matched =
      CoverSmallestFirst(Edges({{2, 2}, {2, 4}, {3, 4}}));
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_TRUE(PairsAreSubsetOfEdges(matched, Edges({{2, 2}, {3, 4}})));
}

// A graph where naive B-order greedy finds 1 but CSF's smallest-first
// rule finds 2: b1 -> {a1, a2}, b2 -> {a1}. Covering b2 (degree 1) first
// frees a2 for b1.
TEST(CsfTest, CoversMostConstrainedFirst) {
  const auto matched = CoverSmallestFirst(Edges({{1, 1}, {1, 2}, {2, 1}}));
  EXPECT_EQ(matched.size(), 2u);
  EXPECT_TRUE(IsOneToOne(matched));
}

TEST(CsfTest, PerfectMatchingOnDisjointPairs) {
  const auto matched =
      CoverSmallestFirst(Edges({{1, 10}, {2, 20}, {3, 30}, {4, 40}}));
  EXPECT_EQ(matched.size(), 4u);
}

TEST(CsfTest, CompleteBipartiteUsesMinSide) {
  std::vector<MatchedPair> edges;
  for (UserId b = 0; b < 3; ++b) {
    for (UserId a = 0; a < 5; ++a) edges.push_back(MatchedPair{b, a});
  }
  const auto matched = CoverSmallestFirst(edges);
  EXPECT_EQ(matched.size(), 3u);
  EXPECT_TRUE(IsOneToOne(matched));
}

TEST(HopcroftKarpTest, FindsAugmentingPath) {
  // Greedy could match b0-a0 and strand b1; HK must find both.
  const auto matched = HopcroftKarp(Edges({{0, 0}, {0, 1}, {1, 0}}));
  EXPECT_EQ(matched.size(), 2u);
  EXPECT_TRUE(IsOneToOne(matched));
}

TEST(HopcroftKarpTest, LongAlternatingChain) {
  // b0-a0, b0-a1, b1-a1, b1-a2, b2-a2: maximum is 3.
  const auto matched =
      HopcroftKarp(Edges({{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}}));
  EXPECT_EQ(matched.size(), 3u);
  EXPECT_TRUE(IsOneToOne(matched));
}

TEST(HopcroftKarpTest, EmptyInput) {
  EXPECT_TRUE(HopcroftKarp(std::vector<MatchedPair>{}).empty());
}

TEST(GreedyTest, FirstFitRespectsOrder) {
  const auto edges = Edges({{0, 0}, {0, 1}, {1, 0}});
  const auto matched = GreedyFirstFit(edges);
  // First edge commits b0-a0, so b1 (only candidate a0) is stranded.
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0], (MatchedPair{0, 0}));
}

TEST(GreedyTest, IsOneToOneValidator) {
  EXPECT_TRUE(IsOneToOne(Edges({{0, 0}, {1, 1}})));
  EXPECT_FALSE(IsOneToOne(Edges({{0, 0}, {0, 1}})));  // b reused
  EXPECT_FALSE(IsOneToOne(Edges({{0, 0}, {1, 0}})));  // a reused
  EXPECT_TRUE(IsOneToOne({}));
}

TEST(MatcherDispatchTest, NamesAndRouting) {
  EXPECT_STREQ(MatcherName(MatcherKind::kCsf), "CSF");
  EXPECT_STREQ(MatcherName(MatcherKind::kMaxMatching), "HopcroftKarp");
  const auto edges = Edges({{0, 0}, {0, 1}, {1, 0}});
  EXPECT_EQ(RunMatcher(MatcherKind::kMaxMatching, edges).size(), 2u);
  EXPECT_GE(RunMatcher(MatcherKind::kCsf, edges).size(), 1u);
}

/// Randomized property sweep: CSF produces a valid matching of candidate
/// edges, never exceeds the Hopcroft-Karp maximum, and stays close to it.
class MatcherProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatcherProperty, CsfValidAndNearMaximum) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  const uint32_t nb = 5 + static_cast<uint32_t>(rng.Below(40));
  const uint32_t na = nb + static_cast<uint32_t>(rng.Below(20));
  const double density = 0.02 + rng.NextDouble() * 0.25;
  std::vector<MatchedPair> edges;
  for (UserId b = 0; b < nb; ++b) {
    for (UserId a = 0; a < na; ++a) {
      if (rng.Bernoulli(density)) edges.push_back(MatchedPair{b, a});
    }
  }

  const auto csf = CoverSmallestFirst(edges);
  const auto hk = HopcroftKarp(edges);
  EXPECT_TRUE(IsOneToOne(csf));
  EXPECT_TRUE(IsOneToOne(hk));
  EXPECT_TRUE(PairsAreSubsetOfEdges(csf, edges));
  EXPECT_TRUE(PairsAreSubsetOfEdges(hk, edges));
  EXPECT_LE(csf.size(), hk.size());
  // CSF is a strong heuristic: on sparse random graphs it should reach at
  // least 90% of the optimum (empirically it is nearly always equal).
  EXPECT_GE(static_cast<double>(csf.size()),
            0.9 * static_cast<double>(hk.size()));
  // Greedy first-fit is also valid but can be worse; it is never better
  // than the maximum.
  const auto greedy = GreedyFirstFit(edges);
  EXPECT_TRUE(IsOneToOne(greedy));
  EXPECT_LE(greedy.size(), hk.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherProperty, ::testing::Range(0, 25));

/// CSF must be maximal (no augmenting edge of length one): every unmatched
/// b has no unmatched candidate a left.
TEST(CsfTest, ResultIsMaximalMatching) {
  util::Rng rng(77);
  std::vector<MatchedPair> edges;
  for (UserId b = 0; b < 30; ++b) {
    for (UserId a = 0; a < 30; ++a) {
      if (rng.Bernoulli(0.1)) edges.push_back(MatchedPair{b, a});
    }
  }
  const auto matched = CoverSmallestFirst(edges);
  std::vector<bool> b_used(30, false);
  std::vector<bool> a_used(30, false);
  for (const MatchedPair& p : matched) {
    b_used[p.b] = true;
    a_used[p.a] = true;
  }
  for (const MatchedPair& e : edges) {
    EXPECT_TRUE(b_used[e.b] || a_used[e.a])
        << "edge <" << e.b << "," << e.a << "> could still be matched";
  }
}

}  // namespace
}  // namespace csj::matching
