// Tests for the GridHash spatial hash-join baseline: exact accuracy (the
// probe's 3^k neighbourhood covers every true match), oracle equality for
// the exact variant, and registry plumbing.

#include <vector>

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "core/gridhash_method.h"
#include "core/method.h"
#include "matching/greedy.h"
#include "util/rng.h"

namespace csj {
namespace {

Community RandomCommunity(Dim d, uint32_t n, Count max_value, uint64_t seed) {
  util::Rng rng(seed);
  Community c(d);
  std::vector<Count> vec(d);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(max_value + 1));
    c.AddUser(vec);
  }
  return c;
}

TEST(GridHashTest, ExactVariantEqualsExactBaseline) {
  for (const uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const Community b = RandomCommunity(27, 150, 6, seed);
    const Community a = RandomCommunity(27, 180, 6, seed + 100);
    JoinOptions options;
    options.eps = 1;
    options.matcher = matching::MatcherKind::kMaxMatching;
    const JoinResult oracle = ExBaselineJoin(b, a, options);
    const JoinResult grid = ExGridHashJoin(b, a, options);
    EXPECT_EQ(grid.pairs.size(), oracle.pairs.size()) << "seed " << seed;
    EXPECT_TRUE(matching::IsOneToOne(grid.pairs));
    for (const MatchedPair& p : grid.pairs) {
      EXPECT_TRUE(EpsilonMatches(b.User(p.b), a.User(p.a), options.eps));
    }
  }
}

TEST(GridHashTest, DimsKnobCoversFullRangeAndClamps) {
  const Community b = RandomCommunity(5, 100, 12, 7);
  const Community a = RandomCommunity(5, 120, 12, 8);
  JoinOptions options;
  options.eps = 2;
  options.matcher = matching::MatcherKind::kMaxMatching;
  const size_t oracle = ExBaselineJoin(b, a, options).pairs.size();
  for (const uint32_t dims : {1u, 2u, 3u, 5u, 50u /* clamped to d */}) {
    options.gridhash_dims = dims;
    EXPECT_EQ(ExGridHashJoin(b, a, options).pairs.size(), oracle)
        << "dims " << dims;
  }
}

TEST(GridHashTest, ProbePrunesComparisons) {
  // Widely spread values: the grid must skip most of the nested loop.
  const Community b = RandomCommunity(4, 300, 100000, 9);
  const Community a = RandomCommunity(4, 300, 100000, 10);
  JoinOptions options;
  options.eps = 50;
  const JoinResult grid = ExGridHashJoin(b, a, options);
  const JoinResult nested = ExBaselineJoin(b, a, options);
  EXPECT_EQ(grid.pairs.size(), nested.pairs.size());
  EXPECT_LT(grid.stats.dimension_compares,
            nested.stats.dimension_compares / 100);
}

TEST(GridHashTest, ApproximateNeverBeatsExact) {
  const Community b = RandomCommunity(8, 120, 8, 11);
  const Community a = RandomCommunity(8, 150, 8, 12);
  JoinOptions options;
  options.eps = 2;
  options.matcher = matching::MatcherKind::kMaxMatching;
  const JoinResult ap = ApGridHashJoin(b, a, options);
  const JoinResult ex = ExGridHashJoin(b, a, options);
  EXPECT_LE(ap.pairs.size(), ex.pairs.size());
  EXPECT_TRUE(matching::IsOneToOne(ap.pairs));
  for (const MatchedPair& p : ap.pairs) {
    EXPECT_TRUE(EpsilonMatches(b.User(p.b), a.User(p.a), options.eps));
  }
}

TEST(GridHashTest, RegistryAndDegenerateInputs) {
  EXPECT_EQ(ParseMethod("Ap-GridHash"), Method::kApGridHash);
  EXPECT_EQ(ParseMethod("Ex-GridHash"), Method::kExGridHash);
  EXPECT_FALSE(IsExact(Method::kApGridHash));
  EXPECT_TRUE(IsExact(Method::kExGridHash));

  const Community empty(3);
  Community one(3);
  one.AddUser(std::vector<Count>{1, 2, 3});
  JoinOptions options;
  options.eps = 1;
  EXPECT_TRUE(ApGridHashJoin(empty, one, options).pairs.empty());
  EXPECT_TRUE(ExGridHashJoin(one, empty, options).pairs.empty());
  // Self-join via the registry.
  const JoinResult self = RunMethod(Method::kExGridHash, one, one, options);
  EXPECT_EQ(self.pairs.size(), 1u);
  // eps = 0 (grid clamps to width 1, predicate stays exact equality).
  options.eps = 0;
  EXPECT_EQ(ExGridHashJoin(one, one, options).pairs.size(), 1u);
}

}  // namespace
}  // namespace csj
