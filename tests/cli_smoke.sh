#!/bin/sh
# End-to-end smoke test of the csj_cli tool: generate two communities,
# inspect one, join them with several methods (text and JSON), and run
# the pipeline subcommand. Registered with ctest; $1 is the csj_cli path.
set -eu

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" generate --family vk --category Sport --size 800 --seed 3 \
    --out "$DIR/a.bin" > /dev/null
"$CLI" generate --family vk --category Sport --size 700 --seed 4 \
    --out "$DIR/b.csv" > /dev/null

"$CLI" info --file "$DIR/a.bin" | grep -q "users:       800"
"$CLI" info --file "$DIR/b.csv" | grep -q "dimensions:  27"

for METHOD in Ex-MinMax Ap-MinMax Ex-SuperEGO Ex-MinMaxEGO; do
  "$CLI" similarity --b "$DIR/b.csv" --a "$DIR/a.bin" --method "$METHOD" \
      --eps 1 | grep -q "similarity"
done

# JSON output is syntactically sane (balanced braces, expected keys).
JSON=$("$CLI" similarity --b "$DIR/b.csv" --a "$DIR/a.bin" \
    --method Ex-MinMax --eps 1 --json true --pairs 3)
echo "$JSON" | grep -q '"method":"Ex-MinMax"'
echo "$JSON" | grep -q '"similarity":'
echo "$JSON" | grep -q '"stats":{'

# The pipeline subcommand ranks candidates.
"$CLI" pipeline --pivot "$DIR/a.bin" \
    --candidates "$DIR/b.csv,$DIR/a.bin" --threshold 0.5 \
    | grep -q "screened 2"

# Failure paths exit non-zero.
if "$CLI" similarity --b /nonexistent --a "$DIR/a.bin" 2> /dev/null; then
  echo "expected failure on missing input" >&2
  exit 1
fi
if "$CLI" similarity --b "$DIR/b.csv" --a "$DIR/a.bin" --method Bogus \
    2> /dev/null; then
  echo "expected failure on unknown method" >&2
  exit 1
fi

echo "cli smoke OK"
