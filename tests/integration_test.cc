// End-to-end integration: materialize the paper's case-study couples at a
// heavy size reduction and run all six methods, checking the relationships
// the paper's tables report (exact >= approximate, planted similarity
// realized, SuperEGO's normalization behaviour per dataset family).

#include <string>

#include <gtest/gtest.h>

#include "core/method.h"
#include "core/similarity.h"
#include "data/case_studies.h"
#include "matching/greedy.h"

namespace csj {
namespace {

using data::CaseStudyCouple;
using data::Couple;
using data::DatasetFamily;

JoinOptions OptionsFor(DatasetFamily family) {
  JoinOptions options;
  options.eps = family == DatasetFamily::kVk ? data::kVkEpsilon
                                             : data::kSyntheticEpsilon;
  options.superego_norm_max = family == DatasetFamily::kVk
                                  ? data::kVkMaxCounter
                                  : data::kSyntheticMaxCounter;
  options.superego_threshold = 64;
  return options;
}

struct CaseParams {
  int index;  // into AllCaseStudies()
  DatasetFamily family;
};

std::string CaseName(const ::testing::TestParamInfo<CaseParams>& info) {
  const CaseStudyCouple& c = data::AllCaseStudies()[
      static_cast<size_t>(info.param.index)];
  return "cid" + std::to_string(c.cid) +
         (info.param.family == DatasetFamily::kVk ? "_vk" : "_syn");
}

class CaseStudyIntegration : public ::testing::TestWithParam<CaseParams> {};

TEST_P(CaseStudyIntegration, AllMethodsBehaveLikeThePaper) {
  constexpr uint32_t kScale = 700;  // couple sizes ~ 80-470 users
  const CaseStudyCouple& study =
      data::AllCaseStudies()[static_cast<size_t>(GetParam().index)];
  const DatasetFamily family = GetParam().family;
  const Couple couple = data::MaterializeCouple(study, family, kScale, 7);
  const JoinOptions options = OptionsFor(family);
  const double target = family == DatasetFamily::kVk
                            ? study.target_vk
                            : study.target_synthetic;

  double ex_minmax_sim = 0.0;
  double ex_baseline_sim = 0.0;
  double ap_minmax_sim = 0.0;
  double ex_superego_sim = 0.0;
  for (const Method method : kAllMethods) {
    const auto result =
        ComputeSimilarity(method, couple.b, couple.a, options);
    ASSERT_TRUE(result.has_value()) << MethodName(method);
    EXPECT_TRUE(matching::IsOneToOne(result->pairs)) << MethodName(method);
    const double sim = result->Similarity();
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
    switch (method) {
      case Method::kExMinMax: ex_minmax_sim = sim; break;
      case Method::kExBaseline: ex_baseline_sim = sim; break;
      case Method::kApMinMax: ap_minmax_sim = sim; break;
      case Method::kExSuperEgo: ex_superego_sim = sim; break;
      default: break;
    }
  }

  // The exact integer-domain methods agree (Tables 4/6/8/10) — CSF is
  // deterministic per candidate graph, and both see the same graph.
  EXPECT_NEAR(ex_minmax_sim, ex_baseline_sim, 0.011);
  // Approximate never beats exact by more than greedy noise.
  EXPECT_LE(ap_minmax_sim, ex_minmax_sim + 0.011);
  // The planting realizes the paper's similarity: planted pairs are a
  // lower bound and accidental matches a modest surplus.
  EXPECT_GE(ex_minmax_sim, target - 0.02);
  EXPECT_LE(ex_minmax_sim, std::min(1.0, target + 0.30));
  // SuperEGO's normalized join cannot exceed what the integer-domain
  // exact methods find by more than float-boundary noise; on VK-like
  // data it typically finds less (the paper's accuracy gap).
  EXPECT_LE(ex_superego_sim, ex_minmax_sim + 0.02);
}

std::vector<CaseParams> AllCases() {
  // Every case study on both families: at kScale the couples are small
  // enough (~80-470 users) that the whole sweep stays in test-suite
  // territory while still exercising each couple's exact configuration.
  std::vector<CaseParams> cases;
  for (int index = 0; index < 20; ++index) {
    cases.push_back(CaseParams{index, DatasetFamily::kVk});
    cases.push_back(CaseParams{index, DatasetFamily::kSynthetic});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Couples, CaseStudyIntegration,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(IntegrationTest, VkFamilyShowsSuperEgoAccuracyLoss) {
  // Aggregated over the different-category VK studies: Ex-SuperEGO must
  // lose similarity relative to Ex-MinMax (Table 4's headline), because
  // eps = 1 on like-counter data puts many pairs at the float boundary.
  double minmax_total = 0.0;
  double superego_total = 0.0;
  for (const int index : {0, 2, 5}) {
    const CaseStudyCouple& study =
        data::AllCaseStudies()[static_cast<size_t>(index)];
    const Couple couple =
        data::MaterializeCouple(study, DatasetFamily::kVk, 700, 11);
    const JoinOptions options = OptionsFor(DatasetFamily::kVk);
    minmax_total +=
        RunMethod(Method::kExMinMax, couple.b, couple.a, options)
            .Similarity();
    superego_total +=
        RunMethod(Method::kExSuperEgo, couple.b, couple.a, options)
            .Similarity();
  }
  EXPECT_LT(superego_total, minmax_total);
}

TEST(IntegrationTest, SyntheticFamilyExactMethodsAgreeClosely) {
  // Table 8/10: on Synthetic all exact methods report the same similarity
  // (eps_norm = 0.03 leaves almost nothing at the float boundary).
  const CaseStudyCouple& study = data::AllCaseStudies()[10];
  const Couple couple =
      data::MaterializeCouple(study, DatasetFamily::kSynthetic, 700, 13);
  const JoinOptions options = OptionsFor(DatasetFamily::kSynthetic);
  const double minmax =
      RunMethod(Method::kExMinMax, couple.b, couple.a, options).Similarity();
  const double superego =
      RunMethod(Method::kExSuperEgo, couple.b, couple.a, options)
          .Similarity();
  const double baseline =
      RunMethod(Method::kExBaseline, couple.b, couple.a, options)
          .Similarity();
  EXPECT_NEAR(minmax, baseline, 1e-9);
  EXPECT_NEAR(minmax, superego, 0.02);
}

}  // namespace
}  // namespace csj
