// Differential matching tests: every production matcher is checked
// against the independent brute-force oracle (tests/matching_oracle.h)
// on hundreds of seeded random candidate graphs per regime, and the
// SegmentMatchFarm is checked byte-identical to serial per-segment
// matching for every matching_threads value the issue names. All
// randomness derives from the logged master seed (tests/test_seed.h), so
// any failure reproduces with --seed=<logged>.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_result.h"
#include "matching/greedy.h"
#include "matching/matcher.h"
#include "matching_oracle.h"
#include "test_seed.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace csj::matching {
namespace {

using csj::testing::OracleIsValidMatching;
using csj::testing::OracleMaxMatchingSize;
using csj::testing::TestSeed;

// ---------------------------------------------------------------------------
// Seeded graph generators, one per regime. Each returns the candidate-edge
// list in generation order — the order a join would hand to the matcher.
// ---------------------------------------------------------------------------

/// Uniform G(n_b, n_a, p): every (b, a) edge present with probability p.
std::vector<MatchedPair> RandomBipartite(util::Rng& rng, uint32_t n_b,
                                         uint32_t n_a, double p) {
  std::vector<MatchedPair> edges;
  for (uint32_t b = 0; b < n_b; ++b) {
    for (uint32_t a = 0; a < n_a; ++a) {
      if (rng.Bernoulli(p)) edges.push_back({b, a});
    }
  }
  return edges;
}

/// Skewed-star regime: a few hub b's connect to most a's, the rest of the
/// b's get one or two edges each — the degree profile CSF's
/// smallest-cover-first rule exists for.
std::vector<MatchedPair> SkewedStars(util::Rng& rng, uint32_t n_b,
                                     uint32_t n_a) {
  std::vector<MatchedPair> edges;
  const uint32_t hubs = 1 + static_cast<uint32_t>(rng.Below(3));
  for (uint32_t b = 0; b < n_b; ++b) {
    if (b < hubs) {
      for (uint32_t a = 0; a < n_a; ++a) {
        if (rng.Bernoulli(0.8)) edges.push_back({b, a});
      }
    } else {
      const uint32_t degree = 1 + static_cast<uint32_t>(rng.Below(2));
      for (uint32_t k = 0; k < degree; ++k) {
        edges.push_back({b, static_cast<UserId>(rng.Below(n_a))});
      }
    }
  }
  return edges;
}

/// Multi-component regime: several disjoint dense blocks with id gaps in
/// between — the shape Ex-MinMax's segment flushing produces.
std::vector<MatchedPair> DisjointBlocks(util::Rng& rng, uint32_t blocks,
                                        uint32_t block_size) {
  std::vector<MatchedPair> edges;
  uint32_t base = 0;
  for (uint32_t c = 0; c < blocks; ++c) {
    for (uint32_t b = 0; b < block_size; ++b) {
      for (uint32_t a = 0; a < block_size; ++a) {
        if (rng.Bernoulli(0.6)) edges.push_back({base + b, base + a});
      }
    }
    base += block_size + 1 + static_cast<uint32_t>(rng.Below(5));  // id gap
  }
  return edges;
}

/// Perfect-chain regime: edges (i, i) and (i, i+1) — maximum matching is
/// always n, but greedy choices can cascade; a known CSF stress shape.
std::vector<MatchedPair> PerfectChain(uint32_t n) {
  std::vector<MatchedPair> edges;
  for (uint32_t i = 0; i < n; ++i) {
    edges.push_back({i, i});
    if (i + 1 < n) edges.push_back({i, i + 1});
  }
  return edges;
}

/// Asserts the full differential contract on one graph:
///  - kMaxMatching (Hopcroft-Karp) is valid and EXACTLY oracle-optimal,
///  - kCsf is valid and never exceeds the optimum.
void CheckAgainstOracle(const std::vector<MatchedPair>& edges,
                        const std::string& context) {
  SCOPED_TRACE(context);
  const size_t optimum = OracleMaxMatchingSize(edges);

  const std::vector<MatchedPair> exact =
      RunMatcher(MatcherKind::kMaxMatching, edges);
  EXPECT_TRUE(OracleIsValidMatching(exact, edges));
  EXPECT_EQ(exact.size(), optimum);

  const std::vector<MatchedPair> csf = RunMatcher(MatcherKind::kCsf, edges);
  EXPECT_TRUE(OracleIsValidMatching(csf, edges));
  EXPECT_LE(csf.size(), optimum);

  // The approximate methods' inline commit rule, replayed standalone: any
  // first-fit scan is a maximal-matching heuristic, so it is valid and
  // within [optimum/2, optimum].
  const std::vector<MatchedPair> first_fit = GreedyFirstFit(edges);
  EXPECT_TRUE(OracleIsValidMatching(first_fit, edges));
  EXPECT_LE(first_fit.size(), optimum);
  EXPECT_GE(2 * first_fit.size(), optimum);
}

std::string Context(const char* regime, uint64_t salt, uint64_t iteration,
                    size_t edges) {
  return std::string(regime) + " salt=" + std::to_string(salt) +
         " iteration=" + std::to_string(iteration) +
         " edges=" + std::to_string(edges) +
         " (rerun with --seed=" + std::to_string(TestSeed()) + ")";
}

constexpr uint64_t kTrialsPerRegime = 220;  // the issue demands >= 200

TEST(MatchingDifferentialTest, SparseRandomGraphsMatchOracle) {
  for (uint64_t i = 0; i < kTrialsPerRegime; ++i) {
    util::Rng rng(TestSeed(1000 + i));
    const uint32_t n_b = 1 + static_cast<uint32_t>(rng.Below(40));
    const uint32_t n_a = 1 + static_cast<uint32_t>(rng.Below(40));
    const auto edges = RandomBipartite(rng, n_b, n_a, 0.08);
    CheckAgainstOracle(edges, Context("sparse", 1000 + i, i, edges.size()));
  }
}

TEST(MatchingDifferentialTest, DenseRandomGraphsMatchOracle) {
  for (uint64_t i = 0; i < kTrialsPerRegime; ++i) {
    util::Rng rng(TestSeed(2000 + i));
    const uint32_t n_b = 2 + static_cast<uint32_t>(rng.Below(18));
    const uint32_t n_a = 2 + static_cast<uint32_t>(rng.Below(18));
    const auto edges = RandomBipartite(rng, n_b, n_a, 0.65);
    CheckAgainstOracle(edges, Context("dense", 2000 + i, i, edges.size()));
  }
}

TEST(MatchingDifferentialTest, SkewedStarGraphsMatchOracle) {
  for (uint64_t i = 0; i < kTrialsPerRegime; ++i) {
    util::Rng rng(TestSeed(3000 + i));
    const uint32_t n_b = 3 + static_cast<uint32_t>(rng.Below(25));
    const uint32_t n_a = 3 + static_cast<uint32_t>(rng.Below(25));
    const auto edges = SkewedStars(rng, n_b, n_a);
    CheckAgainstOracle(edges, Context("skewed", 3000 + i, i, edges.size()));
  }
}

TEST(MatchingDifferentialTest, MultiComponentGraphsMatchOracle) {
  for (uint64_t i = 0; i < kTrialsPerRegime; ++i) {
    util::Rng rng(TestSeed(4000 + i));
    const uint32_t blocks = 2 + static_cast<uint32_t>(rng.Below(4));
    const uint32_t block_size = 2 + static_cast<uint32_t>(rng.Below(6));
    const auto edges = DisjointBlocks(rng, blocks, block_size);
    CheckAgainstOracle(edges,
                       Context("components", 4000 + i, i, edges.size()));
  }
}

TEST(MatchingDifferentialTest, DegenerateGraphsMatchOracle) {
  // Fixed degenerate shapes, each with its known optimum.
  const std::vector<MatchedPair> empty;
  EXPECT_EQ(OracleMaxMatchingSize(empty), 0u);
  EXPECT_TRUE(RunMatcher(MatcherKind::kMaxMatching, empty).empty());
  EXPECT_TRUE(RunMatcher(MatcherKind::kCsf, empty).empty());

  const std::vector<MatchedPair> single = {{7, 3}};
  CheckAgainstOracle(single, "single edge");
  EXPECT_EQ(OracleMaxMatchingSize(single), 1u);

  // Duplicate edges must not inflate the matching.
  const std::vector<MatchedPair> duplicates = {{1, 2}, {1, 2}, {1, 2}, {4, 5}};
  CheckAgainstOracle(duplicates, "duplicate edges");
  EXPECT_EQ(OracleMaxMatchingSize(duplicates), 2u);

  // One b connected to every a (and vice versa): optimum is exactly 1.
  std::vector<MatchedPair> star;
  for (uint32_t a = 0; a < 20; ++a) star.push_back({0, a});
  CheckAgainstOracle(star, "b-star");
  EXPECT_EQ(OracleMaxMatchingSize(star), 1u);

  std::vector<MatchedPair> inverse_star;
  for (uint32_t b = 0; b < 20; ++b) inverse_star.push_back({b, 0});
  CheckAgainstOracle(inverse_star, "a-star");
  EXPECT_EQ(OracleMaxMatchingSize(inverse_star), 1u);

  // Perfect chains of several lengths: the optimum is always n, and
  // Hopcroft-Karp must recover it even though a wrong greedy cascade
  // would lose pairs.
  for (uint32_t n : {1u, 2u, 3u, 8u, 33u}) {
    const auto chain = PerfectChain(n);
    CheckAgainstOracle(chain, "chain n=" + std::to_string(n));
    EXPECT_EQ(OracleMaxMatchingSize(chain), n);
    EXPECT_EQ(RunMatcher(MatcherKind::kMaxMatching, chain).size(), n);
  }

  // Randomized degenerate ids: tiny graphs with huge, colliding user ids
  // exercise the matchers' id compression far from dense [0, n) ranges.
  for (uint64_t i = 0; i < kTrialsPerRegime; ++i) {
    util::Rng rng(TestSeed(5000 + i));
    std::vector<MatchedPair> edges;
    const uint32_t count = static_cast<uint32_t>(rng.Below(12));
    for (uint32_t e = 0; e < count; ++e) {
      edges.push_back({static_cast<UserId>(rng.Below(1u << 30)),
                       static_cast<UserId>(rng.Below(1u << 30))});
    }
    CheckAgainstOracle(edges, Context("huge-ids", 5000 + i, i, edges.size()));
  }
}

// Every matcher's output must also satisfy the library's own one-to-one
// predicate — ties the oracle's validity notion to the production one.
TEST(MatchingDifferentialTest, OutputsSatisfyProductionOneToOnePredicate) {
  for (uint64_t i = 0; i < 50; ++i) {
    util::Rng rng(TestSeed(6000 + i));
    const auto edges = RandomBipartite(rng, 20, 20, 0.3);
    for (MatcherKind kind : {MatcherKind::kCsf, MatcherKind::kMaxMatching}) {
      EXPECT_TRUE(IsOneToOne(RunMatcher(kind, edges)))
          << MatcherName(kind) << " iteration " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// SegmentMatchFarm: parallel deferred matching must be byte-identical to
// matching each segment inline, in segment order, for every thread count.
// ---------------------------------------------------------------------------

/// Builds `segments` random edge lists with disjoint id ranges (as the
/// Ex-MinMax flush rule guarantees) plus some empty-adjacent gaps.
std::vector<std::vector<MatchedPair>> RandomSegments(util::Rng& rng,
                                                     uint32_t segments) {
  std::vector<std::vector<MatchedPair>> out;
  uint32_t base = 0;
  for (uint32_t s = 0; s < segments; ++s) {
    const uint32_t size = 1 + static_cast<uint32_t>(rng.Below(12));
    std::vector<MatchedPair> edges;
    for (uint32_t b = 0; b < size; ++b) {
      for (uint32_t a = 0; a < size; ++a) {
        if (rng.Bernoulli(0.5)) edges.push_back({base + b, base + a});
      }
    }
    if (edges.empty()) edges.push_back({base, base});
    out.push_back(std::move(edges));
    base += size + 2;
  }
  return out;
}

TEST(SegmentMatchFarmTest, MatchesSerialConcatenationForAllThreadCounts) {
  util::ThreadPool pool(4);
  SegmentMatchFarm farm;
  for (MatcherKind kind : {MatcherKind::kCsf, MatcherKind::kMaxMatching}) {
    for (uint64_t trial = 0; trial < 30; ++trial) {
      util::Rng rng(TestSeed(7000 + trial));
      const uint32_t count = 1 + static_cast<uint32_t>(rng.Below(9));
      const auto segments = RandomSegments(rng, count);

      // Reference: match each segment inline, concatenate in order.
      std::vector<MatchedPair> expected;
      for (const auto& segment : segments) {
        const auto matched = RunMatcher(kind, segment);
        expected.insert(expected.end(), matched.begin(), matched.end());
      }

      for (uint32_t threads : {1u, 2u, 5u, 8u}) {
        farm.Reset();
        for (const auto& segment : segments) {
          std::vector<MatchedPair> copy = segment;
          farm.Enqueue(&copy);
          EXPECT_TRUE(copy.empty());  // Enqueue takes by swap
        }
        EXPECT_EQ(farm.segments(), count);
        std::vector<MatchedPair> actual;
        farm.MatchAll(kind, threads, &pool, &actual);
        EXPECT_EQ(actual, expected)
            << MatcherName(kind) << " trial " << trial << " threads "
            << threads;
        EXPECT_EQ(farm.segments(), 0u);  // MatchAll resets the farm
      }
    }
  }
}

TEST(SegmentMatchFarmTest, AppendsAfterExistingOutput) {
  // MatchAll must append, not overwrite — the join accumulates pairs from
  // earlier (inline) flushes and from the prescreen path.
  util::ThreadPool pool(4);
  SegmentMatchFarm farm;
  std::vector<MatchedPair> segment = {{0, 0}, {1, 1}};
  farm.Enqueue(&segment);
  std::vector<MatchedPair> out = {{100, 100}};
  farm.MatchAll(MatcherKind::kCsf, 2, &pool, &out);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[0], (MatchedPair{100, 100}));
}

TEST(SegmentMatchFarmTest, EmptyFarmIsANoOp) {
  SegmentMatchFarm farm;
  std::vector<MatchedPair> out;
  farm.MatchAll(MatcherKind::kCsf, 4, nullptr, &out);
  EXPECT_TRUE(out.empty());
}

TEST(SegmentMatchFarmTest, SlotReuseAcrossJoinsIsClean) {
  // A farm borrowed by successive joins must not leak a previous join's
  // segments: enqueue 3 segments, drain, then enqueue 1 and drain again.
  util::ThreadPool pool(2);
  SegmentMatchFarm farm;
  for (uint32_t s = 0; s < 3; ++s) {
    std::vector<MatchedPair> segment = {{s * 10, s * 10}};
    farm.Enqueue(&segment);
  }
  std::vector<MatchedPair> first;
  farm.MatchAll(MatcherKind::kCsf, 2, &pool, &first);
  EXPECT_EQ(first.size(), 3u);

  std::vector<MatchedPair> segment = {{99, 99}};
  farm.Enqueue(&segment);
  EXPECT_EQ(farm.segments(), 1u);
  std::vector<MatchedPair> second;
  farm.MatchAll(MatcherKind::kCsf, 2, &pool, &second);
  const std::vector<MatchedPair> expected = {{99, 99}};
  EXPECT_EQ(second, expected);
}

}  // namespace
}  // namespace csj::matching
