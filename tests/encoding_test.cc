// Tests for the MinMax encoding scheme, anchored on the paper's Figure 1
// example plus randomized no-false-dismissal properties.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/encoding.h"
#include "core/epsilon_predicate.h"
#include "util/rng.h"

namespace csj {
namespace {

// The exact user vector of Figure 1 (d=27, eps=1, 4 parts).
const std::vector<Count> kFig1Vector = {1, 0, 0, 0, 2, 2,     // 1st part
                                        0, 0, 2, 1, 1, 5, 4,  // 2nd part
                                        0, 3, 0, 0, 1, 4, 1,  // 3rd part
                                        0, 3, 5, 4, 1, 2, 4}; // 4th part

TEST(EncoderTest, Figure1PartLayout) {
  const Encoder encoder(27, 1, 4);
  EXPECT_EQ(encoder.parts(), 4u);
  // Figure 1 splits 27 dimensions as 6|7|7|7.
  EXPECT_EQ(encoder.PartBegin(0), 0u);
  EXPECT_EQ(encoder.PartBegin(1), 6u);
  EXPECT_EQ(encoder.PartBegin(2), 13u);
  EXPECT_EQ(encoder.PartBegin(3), 20u);
  EXPECT_EQ(encoder.PartBegin(4), 27u);
}

TEST(EncoderTest, Figure1PartSumsAndEncodedId) {
  const Encoder encoder(27, 1, 4);
  const std::vector<uint64_t> sums = encoder.PartSums(kFig1Vector);
  ASSERT_EQ(sums.size(), 4u);
  EXPECT_EQ(sums[0], 5u);
  EXPECT_EQ(sums[1], 13u);
  EXPECT_EQ(sums[2], 9u);
  EXPECT_EQ(sums[3], 19u);
  EXPECT_EQ(encoder.EncodedId(kFig1Vector), 46u);
}

TEST(EncoderTest, Figure1RangesAndMinMax) {
  const Encoder encoder(27, 1, 4);
  std::vector<uint64_t> lo;
  std::vector<uint64_t> hi;
  encoder.PartRanges(kFig1Vector, &lo, &hi);
  ASSERT_EQ(lo.size(), 4u);
  // Figure 1: ranges [2,11], [8,20], [5,16], [13,26].
  EXPECT_EQ(lo[0], 2u);
  EXPECT_EQ(hi[0], 11u);
  EXPECT_EQ(lo[1], 8u);
  EXPECT_EQ(hi[1], 20u);
  EXPECT_EQ(lo[2], 5u);
  EXPECT_EQ(hi[2], 16u);
  EXPECT_EQ(lo[3], 13u);
  EXPECT_EQ(hi[3], 26u);
  // encoded_Min = 28, encoded_Max = 73.
  EXPECT_EQ(lo[0] + lo[1] + lo[2] + lo[3], 28u);
  EXPECT_EQ(hi[0] + hi[1] + hi[2] + hi[3], 73u);
}

TEST(EncoderTest, PartsClampedToDimensions) {
  const Encoder encoder(3, 1, 10);
  EXPECT_EQ(encoder.parts(), 3u);
  const Encoder one(5, 1, 0);
  EXPECT_EQ(one.parts(), 1u);
}

TEST(EncoderTest, SinglePartDegeneratesToTotals) {
  const Encoder encoder(4, 2, 1);
  const std::vector<Count> vec = {1, 2, 3, 4};
  const std::vector<uint64_t> sums = encoder.PartSums(vec);
  ASSERT_EQ(sums.size(), 1u);
  EXPECT_EQ(sums[0], 10u);
  std::vector<uint64_t> lo;
  std::vector<uint64_t> hi;
  encoder.PartRanges(vec, &lo, &hi);
  // lo: (0)+(0)+(1)+(2)=3 with eps=2 clamped at zero; hi: 10+4*2=18.
  EXPECT_EQ(lo[0], 3u);
  EXPECT_EQ(hi[0], 18u);
}

TEST(EncodedBuffersTest, SortedAscending) {
  util::Rng rng(1);
  Community c(6);
  for (int i = 0; i < 100; ++i) {
    std::vector<Count> vec(6);
    for (auto& v : vec) v = static_cast<Count>(rng.Below(50));
    c.AddUser(vec);
  }
  const Encoder encoder(6, 2, 3);
  const EncodedB encd_b(c, encoder);
  const EncodedA encd_a(c, encoder);
  ASSERT_EQ(encd_b.size(), 100u);
  ASSERT_EQ(encd_a.size(), 100u);
  for (uint32_t i = 1; i < 100; ++i) {
    EXPECT_LE(encd_b.encoded_id(i - 1), encd_b.encoded_id(i));
    EXPECT_LE(encd_a.encoded_min(i - 1), encd_a.encoded_min(i));
  }
  // real ids form a permutation.
  std::vector<bool> seen(100, false);
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_LT(encd_b.real_id(i), 100u);
    EXPECT_FALSE(seen[encd_b.real_id(i)]);
    seen[encd_b.real_id(i)] = true;
  }
}

TEST(EncodedBuffersTest, MinLeqIdLeqMax) {
  util::Rng rng(2);
  Community c(9);
  for (int i = 0; i < 50; ++i) {
    std::vector<Count> vec(9);
    for (auto& v : vec) v = static_cast<Count>(rng.Below(30));
    c.AddUser(vec);
  }
  const Encoder encoder(9, 3, 4);
  const EncodedA encd_a(c, encoder);
  for (uint32_t i = 0; i < 50; ++i) {
    const uint64_t id = encoder.EncodedId(c.User(encd_a.real_id(i)));
    EXPECT_LE(encd_a.encoded_min(i), id);
    EXPECT_LE(id, encd_a.encoded_max(i));
  }
}

/// Parameterized no-false-dismissal sweep over (d, eps, parts, value
/// range): whenever two vectors eps-match, the encoding filter must keep
/// the pair.
struct FilterParams {
  Dim d;
  Epsilon eps;
  uint32_t parts;
  Count max_value;
};

class EncodingFilterProperty : public ::testing::TestWithParam<FilterParams> {};

TEST_P(EncodingFilterProperty, NoFalseDismissals) {
  const FilterParams p = GetParam();
  util::Rng rng(static_cast<uint64_t>(p.d) * 1000003 + p.eps * 101 + p.parts);
  Community b(p.d);
  Community a(p.d);
  for (int i = 0; i < 60; ++i) {
    std::vector<Count> vec(p.d);
    for (auto& v : vec) v = static_cast<Count>(rng.Below(p.max_value + 1));
    b.AddUser(vec);
    // Half of the A users are near-copies so matches actually occur.
    if (i % 2 == 0) {
      std::vector<Count> near = vec;
      for (auto& v : near) {
        const auto delta = static_cast<int64_t>(rng.Below(2 * p.eps + 1)) -
                           static_cast<int64_t>(p.eps);
        const int64_t moved = static_cast<int64_t>(v) + delta;
        v = moved < 0 ? 0 : static_cast<Count>(moved);
      }
      a.AddUser(near);
    } else {
      std::vector<Count> other(p.d);
      for (auto& v : other) v = static_cast<Count>(rng.Below(p.max_value + 1));
      a.AddUser(other);
    }
  }

  const Encoder encoder(p.d, p.eps, p.parts);
  const EncodedB encd_b(b, encoder);
  const EncodedA encd_a(a, encoder);
  int matches_seen = 0;
  for (uint32_t ib = 0; ib < encd_b.size(); ++ib) {
    for (uint32_t ia = 0; ia < encd_a.size(); ++ia) {
      const UserId rb = encd_b.real_id(ib);
      const UserId ra = encd_a.real_id(ia);
      if (!EpsilonMatches(b.User(rb), a.User(ra), p.eps)) continue;
      ++matches_seen;
      // The encoded filter must pass the pair at every level.
      EXPECT_GE(encd_b.encoded_id(ib), encd_a.encoded_min(ia));
      EXPECT_LE(encd_b.encoded_id(ib), encd_a.encoded_max(ia));
      EXPECT_TRUE(PartsOverlap(encd_b, ib, encd_a, ia));
    }
  }
  EXPECT_GT(matches_seen, 0) << "sweep produced no matches; weak test";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncodingFilterProperty,
    ::testing::Values(FilterParams{1, 1, 1, 10}, FilterParams{2, 1, 2, 10},
                      FilterParams{5, 2, 2, 20}, FilterParams{27, 1, 4, 8},
                      FilterParams{27, 3, 4, 50}, FilterParams{27, 1, 8, 8},
                      FilterParams{16, 5, 13, 100},
                      FilterParams{27, 15000, 4, 500000},
                      FilterParams{3, 0, 2, 5}, FilterParams{27, 1, 27, 8}));

TEST(EncodingFilterTest, FootnoteSixFalsePositive) {
  // Footnote 6: y = 0|0|0|0|1|1 and z = 0|2|0|0|0|0 both have 1st-part sum
  // 2, inside x's range [2,11], but only y eps-matches x on that part.
  // The range filter alone must keep both (no dismissal), and the full
  // d-dimensional comparison separates them.
  const std::vector<Count> x_part = {1, 0, 0, 0, 2, 2};
  const std::vector<Count> y_part = {0, 0, 0, 0, 1, 1};
  const std::vector<Count> z_part = {0, 2, 0, 0, 0, 0};
  const Encoder encoder(6, 1, 1);
  std::vector<uint64_t> lo;
  std::vector<uint64_t> hi;
  encoder.PartRanges(x_part, &lo, &hi);
  const uint64_t y_sum = encoder.PartSums(y_part)[0];
  const uint64_t z_sum = encoder.PartSums(z_part)[0];
  EXPECT_GE(y_sum, lo[0]);
  EXPECT_LE(y_sum, hi[0]);
  EXPECT_GE(z_sum, lo[0]);
  EXPECT_LE(z_sum, hi[0]);
  EXPECT_TRUE(EpsilonMatches(x_part, y_part, 1));
  EXPECT_FALSE(EpsilonMatches(x_part, z_part, 1));
}

}  // namespace
}  // namespace csj
