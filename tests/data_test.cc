// Tests for the data substrate: categories, generators, population stats
// (Table 1 shape) and the twin-planting community sampler.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/epsilon_predicate.h"
#include "data/case_studies.h"
#include "data/categories.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "data/stats.h"
#include "matching/hopcroft_karp.h"
#include "util/rng.h"

namespace csj::data {
namespace {

TEST(CategoriesTest, NamesRoundTrip) {
  for (uint32_t c = 0; c < kNumCategories; ++c) {
    const auto category = static_cast<Category>(c);
    const auto parsed = ParseCategory(CategoryName(category));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, category);
  }
  EXPECT_FALSE(ParseCategory("NotACategory").has_value());
}

TEST(CategoriesTest, VkTotalsAreTable1Descending) {
  // The enum is declared in rank order, so totals must be non-increasing.
  for (uint32_t c = 1; c < kNumCategories; ++c) {
    EXPECT_GE(VkTotalLikes(static_cast<Category>(c - 1)),
              VkTotalLikes(static_cast<Category>(c)));
  }
  EXPECT_EQ(VkTotalLikes(Category::kEntertainment), 2111519450ULL);
  EXPECT_EQ(VkTotalLikes(Category::kCommunicationServices), 474492ULL);
}

TEST(VkLikeGeneratorTest, DeterministicAndInRange) {
  VkLikeGenerator gen(Category::kSport);
  util::Rng rng1(42);
  util::Rng rng2(42);
  std::vector<Count> v1;
  std::vector<Count> v2;
  for (int i = 0; i < 20; ++i) {
    gen.Generate(rng1, &v1);
    gen.Generate(rng2, &v2);
  }
  EXPECT_EQ(v1, v2);
  for (const Count c : v1) EXPECT_LE(c, kVkMaxCounter);
}

TEST(VkLikeGeneratorTest, HomeCategoryDominates) {
  VkLikeGenerator gen(Category::kAnimals);
  util::Rng rng(7);
  uint64_t home_total = 0;
  uint64_t rest_total = 0;
  std::vector<Count> flat;
  for (int i = 0; i < 3000; ++i) gen.Generate(rng, &flat);
  for (size_t u = 0; u < flat.size(); u += kNumCategories) {
    for (uint32_t k = 0; k < kNumCategories; ++k) {
      if (k == DimOf(Category::kAnimals)) {
        home_total += flat[u + k];
      } else {
        rest_total += flat[u + k];
      }
    }
  }
  // home_affinity 0.6 vs Animals' tiny global share: the home dimension
  // must dominate any single other dimension by far.
  EXPECT_GT(home_total, rest_total / 4);
}

TEST(UniformGeneratorTest, CoversRangeUniformly) {
  UniformGenerator gen(5, 1000);
  util::Rng rng(3);
  std::vector<Count> flat;
  for (int i = 0; i < 2000; ++i) gen.Generate(rng, &flat);
  uint64_t total = 0;
  Count max_seen = 0;
  for (const Count c : flat) {
    ASSERT_LE(c, 1000u);
    total += c;
    max_seen = std::max(max_seen, c);
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(flat.size());
  EXPECT_NEAR(mean, 500.0, 15.0);
  EXPECT_GT(max_seen, 990u);
}

TEST(MakeCommunityTest, SizeAndName) {
  UniformGenerator gen(4, 10);
  util::Rng rng(1);
  const Community c = MakeCommunity(gen, 25, rng, "x");
  EXPECT_EQ(c.size(), 25u);
  EXPECT_EQ(c.d(), 4u);
  EXPECT_EQ(c.name(), "x");
}

TEST(PopulationStatsTest, VkRankingReproducesTable1Order) {
  util::Rng rng(2024);
  const Community population = GenerateVkPopulation(60000, rng);
  const std::vector<CategoryTotal> ranked = RankCategories(population);
  ASSERT_EQ(ranked.size(), kNumCategories);
  // The top of Table 1 must be reproduced exactly; the tail's tiny
  // categories can swap under sampling noise, so check the top 5 and that
  // the biggest tail category stays out of the top 10.
  EXPECT_EQ(ranked[0].category, Category::kEntertainment);
  EXPECT_EQ(ranked[1].category, Category::kHobbies);
  EXPECT_EQ(ranked[2].category, Category::kRelationshipFamily);
  EXPECT_EQ(ranked[3].category, Category::kBeautyHealth);
  EXPECT_EQ(ranked[4].category, Category::kMedia);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NE(ranked[i].category, Category::kCommunicationServices);
  }
  // Four-orders-of-magnitude spread, like the paper's VK column.
  EXPECT_GT(ranked[0].total_likes, 50 * ranked.back().total_likes);
}

TEST(PopulationStatsTest, SyntheticTotalsNearEqual) {
  util::Rng rng(7);
  const Community population = GenerateSyntheticPopulation(4000, rng);
  const std::vector<CategoryTotal> ranked = RankCategories(population);
  // Uniform counters: max and min category totals within ~10%.
  EXPECT_LT(static_cast<double>(ranked.front().total_likes),
            1.1 * static_cast<double>(ranked.back().total_likes));
  EXPECT_EQ(MaxCounterOf(population) > 400000, true);
}

TEST(PlantCoupleTest, RealizesTargetSimilarity) {
  UniformGenerator gen(kNumCategories, kSyntheticMaxCounter);
  CoupleSpec spec;
  spec.size_b = 400;
  spec.size_a = 500;
  spec.target_similarity = 0.30;
  spec.eps = kSyntheticEpsilon;
  util::Rng rng(5);
  const Couple couple = PlantCouple(gen, gen, spec, rng);
  EXPECT_EQ(couple.b.size(), 400u);
  EXPECT_EQ(couple.a.size(), 500u);
  EXPECT_EQ(couple.planted_pairs, 120u);

  // The planted pairs exist: a maximum matching over the true candidate
  // graph reaches at least the planted count.
  std::vector<MatchedPair> edges;
  for (UserId b = 0; b < couple.b.size(); ++b) {
    for (UserId a = 0; a < couple.a.size(); ++a) {
      if (EpsilonMatches(couple.b.User(b), couple.a.User(a), spec.eps)) {
        edges.push_back(MatchedPair{b, a});
      }
    }
  }
  const auto maximum = matching::HopcroftKarp(edges);
  EXPECT_GE(maximum.size(), couple.planted_pairs);
  // On uniform data accidental matches are essentially impossible, so the
  // realized similarity equals the plant.
  EXPECT_LE(maximum.size(), couple.planted_pairs + 4);
}

TEST(PlantCoupleTest, ZeroTargetMeansNoGuaranteedPairs) {
  UniformGenerator gen(8, 100000);
  CoupleSpec spec;
  spec.size_b = 50;
  spec.size_a = 80;
  spec.target_similarity = 0.0;
  spec.eps = 10;
  util::Rng rng(6);
  const Couple couple = PlantCouple(gen, gen, spec, rng);
  EXPECT_EQ(couple.planted_pairs, 0u);
  EXPECT_EQ(couple.b.size(), 50u);
}

TEST(PlantCommunityAgainstTest, RealizesTargetAgainstFixedA) {
  UniformGenerator gen_a(kNumCategories, kSyntheticMaxCounter);
  util::Rng a_rng(77);
  const Community a = MakeCommunity(gen_a, 500, a_rng, "fixed");

  UniformGenerator gen_b(kNumCategories, kSyntheticMaxCounter);
  CoupleSpec spec;
  spec.size_b = 400;
  spec.target_similarity = 0.25;
  spec.eps = kSyntheticEpsilon;
  util::Rng rng(78);
  const Community b = PlantCommunityAgainst(a, gen_b, spec, rng);
  ASSERT_EQ(b.size(), 400u);

  // 100 planted twins exist as a one-to-one matching against A.
  std::vector<MatchedPair> edges;
  for (UserId ib = 0; ib < b.size(); ++ib) {
    for (UserId ia = 0; ia < a.size(); ++ia) {
      if (EpsilonMatches(b.User(ib), a.User(ia), spec.eps)) {
        edges.push_back(MatchedPair{ib, ia});
      }
    }
  }
  const auto maximum = matching::HopcroftKarp(edges);
  EXPECT_GE(maximum.size(), 100u);
  EXPECT_LE(maximum.size(), 104u);  // uniform fillers add ~nothing
}

TEST(PlantCommunityAgainstTest, LeavesAUntouchedAndIsDeterministic) {
  UniformGenerator gen(8, 1000);
  util::Rng a_rng(5);
  const Community a = MakeCommunity(gen, 100, a_rng);
  const std::vector<Count> a_snapshot(a.flat().begin(), a.flat().end());

  CoupleSpec spec;
  spec.size_b = 80;
  spec.target_similarity = 0.5;
  spec.eps = 10;
  UniformGenerator gen_b1(8, 1000);
  util::Rng rng1(9);
  const Community b1 = PlantCommunityAgainst(a, gen_b1, spec, rng1);
  UniformGenerator gen_b2(8, 1000);
  util::Rng rng2(9);
  const Community b2 = PlantCommunityAgainst(a, gen_b2, spec, rng2);
  EXPECT_TRUE(std::ranges::equal(b1.flat(), b2.flat()));
  EXPECT_TRUE(std::ranges::equal(a.flat(), a_snapshot));
}

TEST(PlantCoupleTest, DeterministicInSeed) {
  UniformGenerator gen_a(6, 1000);
  UniformGenerator gen_b(6, 1000);
  CoupleSpec spec;
  spec.size_b = 30;
  spec.size_a = 40;
  spec.target_similarity = 0.5;
  spec.eps = 10;
  util::Rng rng1(11);
  util::Rng rng2(11);
  const Couple c1 = PlantCouple(gen_b, gen_a, spec, rng1);
  UniformGenerator gen_a2(6, 1000);
  UniformGenerator gen_b2(6, 1000);
  const Couple c2 = PlantCouple(gen_b2, gen_a2, spec, rng2);
  EXPECT_TRUE(std::ranges::equal(c1.b.flat(), c2.b.flat()));
  EXPECT_TRUE(std::ranges::equal(c1.a.flat(), c2.a.flat()));
}

TEST(CaseStudiesTest, TwentyCouplesWithPaperSizes) {
  const auto all = AllCaseStudies();
  ASSERT_EQ(all.size(), 20u);
  EXPECT_EQ(DifferentCategoryCouples().size(), 10u);
  EXPECT_EQ(SameCategoryCouples().size(), 10u);
  // Spot checks against Tables 2/3/5.
  EXPECT_EQ(all[0].cid, 1);
  EXPECT_EQ(all[0].size_b, 109176u);
  EXPECT_EQ(all[0].size_a, 116016u);
  EXPECT_EQ(all[0].category_b, Category::kRestaurants);
  EXPECT_EQ(std::string(all[0].name_b), "Quick Recipes");
  EXPECT_EQ(all[9].cid, 10);
  EXPECT_NEAR(all[9].target_synthetic, 0.0785, 1e-9);  // the edge case
  EXPECT_EQ(all[12].category_b, Category::kSport);
  EXPECT_EQ(all[19].size_a, 201038u);
  // Every couple satisfies the paper's size rule.
  for (const CaseStudyCouple& c : all) {
    EXPECT_TRUE(SizesAdmissible(c.size_b, c.size_a)) << "cid " << c.cid;
  }
}

TEST(CaseStudiesTest, SpecScalesSizes) {
  const CaseStudyCouple& couple = AllCaseStudies()[1];  // 156213 | 230017
  const CoupleSpec spec = SpecFor(couple, DatasetFamily::kVk, 100);
  EXPECT_EQ(spec.size_b, 1562u);
  EXPECT_EQ(spec.size_a, 2300u);
  EXPECT_EQ(spec.eps, kVkEpsilon);
  EXPECT_NEAR(spec.target_similarity, couple.target_vk, 1e-12);
  const CoupleSpec syn = SpecFor(couple, DatasetFamily::kSynthetic, 100);
  EXPECT_EQ(syn.eps, kSyntheticEpsilon);
}

TEST(CaseStudiesTest, MaterializeIsDeterministicAndAdmissible) {
  const CaseStudyCouple& couple = AllCaseStudies()[5];
  const Couple c1 =
      MaterializeCouple(couple, DatasetFamily::kSynthetic, 400, 99);
  const Couple c2 =
      MaterializeCouple(couple, DatasetFamily::kSynthetic, 400, 99);
  EXPECT_TRUE(std::ranges::equal(c1.b.flat(), c2.b.flat()));
  EXPECT_TRUE(std::ranges::equal(c1.a.flat(), c2.a.flat()));
  EXPECT_TRUE(SizesAdmissible(c1.b.size(), c1.a.size()));
  const Couple other =
      MaterializeCouple(couple, DatasetFamily::kSynthetic, 400, 100);
  EXPECT_FALSE(std::ranges::equal(c1.b.flat(), other.b.flat()));
}

TEST(ScalabilityStudyTest, TwentyRowsMatchingTable11) {
  const auto rows = ScalabilityStudy();
  ASSERT_EQ(rows.size(), 20u);
  EXPECT_EQ(rows[0].category, Category::kFoodRecipes);
  EXPECT_EQ(rows[0].sizes[0], 124453u);
  EXPECT_EQ(rows[8].category, Category::kEntertainment);
  EXPECT_EQ(rows[8].sizes[3], 1110846u);
  for (const ScalabilityRow& row : rows) {
    for (int i = 1; i < 4; ++i) {
      EXPECT_LT(row.sizes[i - 1], row.sizes[i]);
    }
  }
}

}  // namespace
}  // namespace csj::data
