// Metamorphic properties of the evolution subsystem. Rather than pin
// absolute values, each test perturbs a drift stream in a way whose
// effect is known a priori — an inverse pair restores, a no-op fires
// nothing, a reordering commutes — and asserts the maintained world
// honors it exactly.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/encoding_cache.h"
#include "evolve/drift.h"
#include "evolve/maintainer.h"
#include "incremental/incremental_csj.h"
#include "service/catalog.h"
#include "service/topk.h"
#include "test_seed.h"

namespace csj::evolve {
namespace {

/// A drift world wired end to end: seeded base catalog, replayer,
/// maintainer with one registered query. The model's own trace is along
/// for the ride — property tests inject handcrafted events instead.
struct World {
  explicit World(uint64_t seed, Epsilon eps = 1, uint32_t k = 5) {
    DriftOptions drift;
    drift.base.catalog_size = 12;
    drift.base.community_size = 24;
    drift.base.cluster_size = 4;
    drift.base.eps = eps;
    drift.base.seed = seed;
    drift.events = 60;
    drift.quiesce_every = 15;
    drift.seed = seed * 7 + 5;
    model = std::make_unique<DriftModel>(drift);

    service::CommunityCatalog::Options catalog_options;
    catalog_options.cache = &cache;
    catalog_options.warm_eps = eps;
    catalog_options.mutation_log_capacity = 1 << 14;
    catalog = std::make_unique<service::CommunityCatalog>(catalog_options);
    service = std::make_unique<service::TopKSimilarService>(catalog.get());

    DriftReplayer::Options replay;
    replay.session_join.eps = eps;
    replay.session_join.cache = &cache;
    replayer =
        std::make_unique<DriftReplayer>(model.get(), catalog.get(), replay);

    topk.k = k;
    topk.join.eps = eps;
    topk.join.cache = &cache;
    TopKMaintainer::Options options;
    options.service = service.get();
    maintainer = std::make_unique<TopKMaintainer>(catalog.get(), options);
    maintainer->Register(model->workload().communities()[0], topk);
    maintainer->RefreshAll();
  }

  /// Ranked (id, similarity) projection of the maintained ranking —
  /// trigger semantics (versions excluded).
  std::vector<std::pair<uint64_t, double>> Meaning() const {
    std::vector<std::pair<uint64_t, double>> out;
    for (const auto& entry : maintainer->Ranking(0)) {
      out.emplace_back(entry.id, entry.similarity);
    }
    return out;
  }

  EncodingCache cache;
  std::unique_ptr<DriftModel> model;
  std::unique_ptr<service::CommunityCatalog> catalog;
  std::unique_ptr<service::TopKSimilarService> service;
  std::unique_ptr<DriftReplayer> replayer;
  std::unique_ptr<TopKMaintainer> maintainer;
  service::TopKOptions topk;
};

DriftEvent Join(uint64_t id, uint64_t key, std::vector<Count> vec) {
  DriftEvent event;
  event.kind = DriftEventKind::kUserJoin;
  event.community_id = id;
  event.user_key = key;
  event.user = std::move(vec);
  return event;
}

DriftEvent Leave(uint64_t id, uint64_t key) {
  DriftEvent event;
  event.kind = DriftEventKind::kUserLeave;
  event.community_id = id;
  event.user_key = key;
  return event;
}

DriftEvent Decay(uint64_t id, double factor) {
  DriftEvent event;
  event.kind = DriftEventKind::kDecay;
  event.community_id = id;
  event.decay_factor = factor;
  return event;
}

/// Joining a user and then removing the SAME user (one quiesce apart) is
/// an inverse pair: the community's counter bytes and the maintained
/// ranking's meaning must come back exactly, and the two refreshes must
/// agree on whether anything ever changed (if the join fired a trigger,
/// the leave must fire the one that undoes it).
TEST(EvolvePropertyTest, AddThenRemoveRestoresRanking) {
  World world(testing::TestSeed(1) % 100000 + 1);
  const uint64_t target = 2;  // a planted member, id 2 <- communities()[1]
  const auto before_span = world.replayer->LiveSnapshot(target)->flat();
  const std::vector<Count> before_bytes(before_span.begin(), before_span.end());
  const auto before_meaning = world.Meaning();
  const uint64_t before_triggers = world.maintainer->trigger_count(0);

  // A user close to the query pivot, so the join plausibly moves the
  // ranking (the property holds either way).
  const auto& pivot = *world.model->workload().communities()[0];
  std::vector<Count> user(pivot.User(0).begin(), pivot.User(0).end());

  std::vector<DriftEvent> add = {Join(target, 1'000'000, user)};
  world.replayer->Apply(add);
  world.replayer->Quiesce();
  const auto join_outcome = world.maintainer->Refresh(0);
  EXPECT_TRUE(world.maintainer->Ranking(0) ==
              world.service->Query(pivot, world.topk).entries);

  std::vector<DriftEvent> remove = {Leave(target, 1'000'000)};
  world.replayer->Apply(remove);
  world.replayer->Quiesce();
  const auto leave_outcome = world.maintainer->Refresh(0);

  EXPECT_TRUE(std::ranges::equal(
      world.replayer->LiveSnapshot(target)->flat(), before_bytes))
      << "community counters not restored by the inverse pair";
  EXPECT_TRUE(std::ranges::equal(world.catalog->Get(target).community->flat(),
                                 before_bytes));
  EXPECT_EQ(world.Meaning(), before_meaning)
      << "ranking meaning not restored by the inverse pair";
  EXPECT_TRUE(world.maintainer->Ranking(0) ==
              world.service->Query(pivot, world.topk).entries);
  EXPECT_EQ(join_outcome.changed, leave_outcome.changed)
      << "an unmatched trigger across an inverse pair";
  const uint64_t fired = world.maintainer->trigger_count(0) - before_triggers;
  EXPECT_TRUE(fired == 0 || fired == 2) << "fired " << fired;
}

/// Decay with factor 1.0 moves no counter: it must install nothing, mint
/// no version, consume no mutation-log records, and fire no trigger —
/// the maintained world cannot tell it happened.
TEST(EvolvePropertyTest, NoopDecayFiresNothing) {
  World world(testing::TestSeed(2) % 100000 + 1);
  const uint64_t seq_before = world.catalog->mutation_seq();
  const auto version_before = world.catalog->Get(3).version;
  const uint64_t triggers_before = world.maintainer->trigger_count(0);

  std::vector<DriftEvent> events = {Decay(3, 1.0)};
  world.replayer->Apply(events);
  const EpochStats stats = world.replayer->Quiesce();

  EXPECT_EQ(stats.noop_decays, 1u);
  EXPECT_EQ(stats.installs, 0u);
  EXPECT_EQ(world.catalog->mutation_seq(), seq_before);
  EXPECT_EQ(world.catalog->Get(3).version, version_before);

  const auto outcome = world.maintainer->Refresh(0);
  EXPECT_FALSE(outcome.changed);
  EXPECT_EQ(outcome.records_consumed, 0u);
  EXPECT_EQ(world.maintainer->trigger_count(0), triggers_before);
}

/// Events within one community that touch DISTINCT user keys commute:
/// any order produces the same installed bytes, the same versions, and
/// the same maintained ranking at the quiesce point. (Keyed membership
/// makes this true by construction; the test pins it stays true.)
TEST(EvolvePropertyTest, EventPermutationCommutesAtQuiesce) {
  const uint64_t seed = testing::TestSeed(3) % 100000 + 1;
  World a(seed);
  World b(seed);
  const uint64_t target = 2;
  const auto& pool = a.model->workload().communities();
  std::vector<Count> u1(pool[2]->User(0).begin(), pool[2]->User(0).end());
  std::vector<Count> u2(pool[3]->User(1).begin(), pool[3]->User(1).end());

  std::vector<DriftEvent> order1 = {Join(target, 1'000'000, u1),
                                    Leave(target, 0),
                                    Join(target, 1'000'001, u2)};
  std::vector<DriftEvent> order2 = {Join(target, 1'000'001, u2),
                                    Join(target, 1'000'000, u1),
                                    Leave(target, 0)};
  a.replayer->Apply(order1);
  a.replayer->Quiesce();
  b.replayer->Apply(order2);
  b.replayer->Quiesce();

  EXPECT_TRUE(std::ranges::equal(a.catalog->Get(target).community->flat(),
                                 b.catalog->Get(target).community->flat()))
      << "permuted event order changed the installed bytes";
  EXPECT_EQ(a.catalog->Get(target).version, b.catalog->Get(target).version);
  EXPECT_EQ(a.catalog->mutation_seq(), b.catalog->mutation_seq());

  a.maintainer->Refresh(0);
  b.maintainer->Refresh(0);
  EXPECT_TRUE(a.maintainer->Ranking(0) == b.maintainer->Ranking(0))
      << "permuted event order changed the maintained ranking";
}

/// The replayer's live anchor sessions stay EXACT through churn: after
/// every quiesce, a from-scratch IncrementalCsj over (pinned anchor
/// snapshot, current live membership) reports the same matching and the
/// same similarity bits as the incrementally maintained session.
TEST(EvolvePropertyTest, AnchorSessionsMatchFreshIncremental) {
  World world(testing::TestSeed(4) % 100000 + 1, /*eps=*/2);
  uint32_t sessions_checked = 0;
  for (uint32_t e = 0; e < world.model->epochs(); ++e) {
    world.replayer->ApplyEpoch(e);
    for (const uint64_t id : world.replayer->live_ids()) {
      const service::LiveCoupleSession* session = world.replayer->session(id);
      if (session == nullptr) continue;
      const auto live = world.replayer->LiveSnapshot(id);
      ASSERT_NE(live, nullptr);
      JoinOptions join;
      join.eps = 2;
      join.cache = &world.cache;
      incremental::IncrementalCsj fresh(*session->entry().community, join);
      for (UserId u = 0; u < live->size(); ++u) fresh.AddUser(live->User(u));
      EXPECT_EQ(fresh.matched_pairs(), session->matched_pairs())
          << "session drifted from exact at id " << id << ", epoch " << e;
      EXPECT_EQ(fresh.live_users(), session->live_subscribers());
      EXPECT_DOUBLE_EQ(fresh.Similarity(), session->Similarity());
      ++sessions_checked;
    }
  }
  EXPECT_GT(sessions_checked, 0u) << "no live session was ever attached";
}

}  // namespace
}  // namespace csj::evolve
