// Concurrency stress for the serving subsystem, written for TSan: all
// catalog operations, top-k queries, live-session churn and the server's
// admission/shutdown paths race against each other. Assertions are
// deliberately coarse (invariants, not exact values) — the point is that
// the sanitizer observes every pairing of operations.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoding_cache.h"
#include "data/generator.h"
#include "service/catalog.h"
#include "service/server.h"
#include "service/topk.h"
#include "service/workload.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj::service {
namespace {

Community MakeTestCommunity(uint32_t size, uint64_t salt) {
  util::Rng rng(testing::TestSeed(salt));
  data::VkLikeGenerator gen(
      static_cast<data::Category>(salt % data::kNumCategories));
  return data::MakeCommunity(gen, size, rng);
}

TEST(ServiceStressTest, CatalogChurnVersusQueriesAndLiveSessions) {
  EncodingCache cache;
  CommunityCatalog::Options catalog_options;
  catalog_options.shards = 4;
  catalog_options.cache = &cache;
  CommunityCatalog catalog(catalog_options);
  constexpr uint32_t kIds = 12;
  for (uint64_t id = 1; id <= kIds; ++id) {
    catalog.Upsert(id, MakeTestCommunity(16 + static_cast<uint32_t>(id), id));
  }
  const TopKSimilarService topk(&catalog);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_done{0};
  std::vector<std::thread> crew;

  // Upserters: constantly replace entries (exercises COW + warmup).
  for (uint32_t t = 0; t < 2; ++t) {
    crew.emplace_back([&, t] {
      util::Rng rng(testing::TestSeed(100 + t));
      uint64_t round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t id = 1 + rng.Below(kIds);
        catalog.Upsert(id, MakeTestCommunity(
                               12 + static_cast<uint32_t>(rng.Below(12)),
                               1000 * (t + 1) + round++));
      }
    });
  }

  // Remover/re-inserter: entries flicker in and out of existence.
  crew.emplace_back([&] {
    util::Rng rng(testing::TestSeed(200));
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t id = 1 + rng.Below(kIds);
      if (catalog.Remove(id)) {
        catalog.Upsert(id, MakeTestCommunity(16, 300 + id));
      }
    }
  });

  // Queriers: full top-k against the churning catalog.
  for (uint32_t t = 0; t < 2; ++t) {
    crew.emplace_back([&, t] {
      util::Rng rng(testing::TestSeed(400 + t));
      TopKOptions options;
      options.k = 3;
      options.join.eps = 1;
      options.join.cache = &cache;
      while (!stop.load(std::memory_order_relaxed)) {
        const Community query =
            MakeTestCommunity(14 + static_cast<uint32_t>(rng.Below(10)),
                              500 + rng.Below(64));
        const TopKResult result = topk.Query(query, options);
        // Entries a query returns are pinned copies: dereferencing their
        // similarity is always safe, whatever the churn did meanwhile.
        for (const TopKEntry& entry : result.entries) {
          ASSERT_GE(entry.similarity, 0.0);
          ASSERT_LE(entry.similarity, 1.0);
        }
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Live-session churner: attach, mutate subscribers, poll staleness.
  crew.emplace_back([&] {
    util::Rng rng(testing::TestSeed(600));
    JoinOptions join;
    join.eps = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      const Community query = MakeTestCommunity(12, 700 + rng.Below(16));
      const uint64_t id = 1 + rng.Below(kIds);
      auto session = catalog.AttachLive(query, id, join);
      if (session == nullptr) continue;  // absent mid-churn: fine
      const auto handle = session->AddSubscriber(query.User(0));
      (void)session->Similarity();
      (void)session->Stale();
      session->RemoveSubscriber(handle);
      (void)session->Similarity();
    }
  });

  // Snapshotter: full scans racing the writers.
  crew.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<CatalogEntry> snapshot = catalog.Snapshot();
      for (size_t i = 1; i < snapshot.size(); ++i) {
        ASSERT_LT(snapshot[i - 1].id, snapshot[i].id);
      }
    }
  });

  // Run until the queriers have done real work (bounded by wall clock so
  // a TSan-slowed run still terminates promptly).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (queries_done.load(std::memory_order_relaxed) < 20 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : crew) thread.join();

  EXPECT_GT(queries_done.load(), 0u);
  const CommunityCatalog::Stats stats = catalog.GetStats();
  EXPECT_GT(stats.upserts, kIds);
}

TEST(ServiceStressTest, ServerUnderConcurrentMixedLoad) {
  EncodingCache cache;
  CsjServer::Options options;
  options.workers = 3;
  options.queue_capacity = 4;  // small: admission control must fire
  options.catalog.cache = &cache;
  CsjServer server(options);

  WorkloadOptions workload_options;
  workload_options.catalog_size = 10;
  workload_options.community_size = 24;
  workload_options.upsert_fraction = 0.2;
  workload_options.remove_fraction = 0.05;
  workload_options.zipf_s = 1.1;
  workload_options.seed = testing::TestSeed(800);
  const ServeWorkload workload(workload_options);
  workload.Populate(&server);

  TopKOptions topk;
  topk.k = 3;
  topk.join.eps = 1;
  topk.join.cache = &cache;

  constexpr uint32_t kClients = 6;
  constexpr uint32_t kPerClient = 25;
  std::atomic<uint64_t> ok{0}, rejected{0}, not_found{0};
  std::vector<std::thread> clients;
  for (uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(testing::TestSeed(900 + c));
      for (uint32_t i = 0; i < kPerClient; ++i) {
        const ServeResponse response =
            server.SubmitAndWait(workload.NextRequest(rng, topk));
        switch (response.status) {
          case ServeStatus::kOk:
            ok.fetch_add(1, std::memory_order_relaxed);
            break;
          case ServeStatus::kRejected:
            rejected.fetch_add(1, std::memory_order_relaxed);
            break;
          case ServeStatus::kNotFound:
            not_found.fetch_add(1, std::memory_order_relaxed);
            break;
          case ServeStatus::kDeadlineExpired:
            break;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  server.Shutdown();

  // Every request got exactly one terminal status.
  EXPECT_EQ(ok.load() + rejected.load() + not_found.load(),
            kClients * kPerClient);
  EXPECT_GT(ok.load(), 0u);
  const CsjServer::Stats stats = server.GetStats();
  EXPECT_EQ(stats.accepted, ok.load() + not_found.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.completed, stats.accepted);
}

TEST(ServiceStressTest, SubmitRacingShutdownNeverLosesARequest) {
  // Producers submit while another thread shuts the server down; every
  // Submit must either return false or yield a future that completes.
  for (uint32_t round = 0; round < 4; ++round) {
    CsjServer::Options options;
    options.workers = 2;
    options.queue_capacity = 8;
    CsjServer server(options);
    server.catalog().Upsert(1, MakeTestCommunity(20, 1));

    std::atomic<uint64_t> settled{0};
    std::vector<std::thread> producers;
    for (uint32_t p = 0; p < 3; ++p) {
      producers.emplace_back([&, p] {
        util::Rng rng(testing::TestSeed(1200 + round * 8 + p));
        for (uint32_t i = 0; i < 20; ++i) {
          ServeRequest request;
          request.kind = RequestKind::kTopK;
          request.community = std::make_shared<const Community>(
              MakeTestCommunity(14, 1300 + rng.Below(8)));
          request.topk.k = 2;
          std::future<ServeResponse> response;
          if (server.Submit(std::move(request), &response)) {
            (void)response.get();  // must complete, never hang
          }
          settled.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::thread closer([&] { server.Shutdown(); });
    for (std::thread& producer : producers) producer.join();
    closer.join();
    EXPECT_EQ(settled.load(), 3u * 20u);
  }
}

}  // namespace
}  // namespace csj::service
