// Differential gate for the evolution subsystem: the MAINTAINED top-k
// ranking must equal a fresh TopKSimilarService recompute BYTE FOR BYTE
// (ids, versions, similarity bits) at every quiesce point, across 300+
// seeded drift traces spanning both exact methods, three epsilons, and
// three k values. Trigger events are cross-checked against the observed
// fresh-ranking diffs at the same points: a trigger fires exactly when
// the ranked (id, similarity) sequence moved — no missed, no spurious.

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoding_cache.h"
#include "core/method.h"
#include "evolve/drift.h"
#include "evolve/maintainer.h"
#include "service/catalog.h"
#include "service/topk.h"
#include "test_seed.h"

namespace csj::evolve {
namespace {

/// Trigger semantics: the ranked (id, similarity) projection.
bool SameMeaning(const std::vector<service::TopKEntry>& x,
                 const std::vector<service::TopKEntry>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].id != y[i].id || x[i].similarity != y[i].similarity) {
      return false;
    }
  }
  return true;
}

struct TraceConfig {
  Method method = Method::kExMinMax;
  Epsilon eps = 1;
  uint32_t k = 5;
  uint64_t seed = 0;
  size_t log_capacity = 1 << 16;
  uint32_t freeze_threads = 0;  ///< 0 = pool default
};

struct TraceResult {
  TopKMaintainer::Stats stats;
  uint64_t triggers = 0;
  /// Final maintained rankings, one per registered query.
  std::vector<std::vector<service::TopKEntry>> rankings;
  /// Final catalog image: (id, version, flat counters) ascending by id.
  std::vector<std::tuple<uint64_t, uint64_t, std::vector<Count>>> image;
};

/// Replays one seeded drift trace, checking maintained-vs-fresh identity
/// and trigger exactness at every quiesce point. Returns the aggregate
/// stats so suites can assert both maintainer paths actually ran.
TraceResult RunTrace(const TraceConfig& config) {
  DriftOptions drift;
  drift.base.catalog_size = 10 + static_cast<uint32_t>(config.seed % 15);
  drift.base.community_size = 24;
  drift.base.cluster_size = 4;
  drift.base.eps = config.eps;
  drift.base.seed = config.seed * 3 + 1;
  drift.events = 48;
  drift.quiesce_every = 12;
  drift.seed = config.seed * 7 + 5;
  DriftModel model(drift);

  EncodingCache cache;
  service::CommunityCatalog::Options catalog_options;
  catalog_options.cache = &cache;
  catalog_options.warm_eps = config.eps;
  catalog_options.mutation_log_capacity = config.log_capacity;
  service::CommunityCatalog catalog(catalog_options);
  service::TopKSimilarService fresh_service(&catalog);

  DriftReplayer::Options replay;
  replay.session_join.eps = config.eps;
  replay.session_join.cache = &cache;
  replay.freeze_threads = config.freeze_threads;
  DriftReplayer replayer(&model, &catalog, replay);

  service::TopKOptions topk;
  topk.k = config.k;
  topk.method = config.method;
  topk.join.eps = config.eps;
  topk.join.cache = &cache;

  TopKMaintainer::Options options;
  options.service = &fresh_service;
  TopKMaintainer maintainer(&catalog, options);

  const auto& pool = model.workload().communities();
  const std::vector<size_t> pivots = {0, pool.size() / 2};
  std::vector<std::vector<service::TopKEntry>> fresh_prev;
  for (const size_t p : pivots) maintainer.Register(pool[p], topk);
  maintainer.RefreshAll();
  for (const size_t p : pivots) {
    fresh_prev.push_back(fresh_service.Query(*pool[p], topk).entries);
    EXPECT_TRUE(maintainer.Ranking(static_cast<uint32_t>(fresh_prev.size()) -
                                   1) == fresh_prev.back())
        << "baseline mismatch, seed " << config.seed;
  }

  for (uint32_t e = 0; e < model.epochs(); ++e) {
    replayer.ApplyEpoch(e);
    for (uint32_t q = 0; q < pivots.size(); ++q) {
      const auto outcome = maintainer.Refresh(q);
      const auto fresh = fresh_service.Query(*pool[pivots[q]], topk);
      const auto maintained = maintainer.Ranking(q);
      // Byte-for-byte: TopKEntry == compares id, VERSION, and the
      // similarity double bits.
      EXPECT_TRUE(maintained == fresh.entries)
          << MethodName(config.method) << " eps=" << config.eps
          << " k=" << config.k << " seed=" << config.seed << " epoch=" << e
          << " query=" << q << ": maintained ranking diverged";
      const bool moved = !SameMeaning(fresh_prev[q], fresh.entries);
      EXPECT_EQ(outcome.changed, moved)
          << MethodName(config.method) << " eps=" << config.eps
          << " k=" << config.k << " seed=" << config.seed << " epoch=" << e
          << " query=" << q
          << (moved ? ": MISSED trigger" : ": SPURIOUS trigger");
      fresh_prev[q] = fresh.entries;
    }
  }

  TraceResult result;
  result.stats = maintainer.GetStats();
  for (uint32_t q = 0; q < pivots.size(); ++q) {
    result.triggers += maintainer.trigger_count(q);
    result.rankings.push_back(maintainer.Ranking(q));
  }
  for (const uint64_t id : replayer.live_ids()) {
    const auto entry = catalog.Get(id);
    EXPECT_NE(entry.community, nullptr) << "live id " << id << " not resident";
    if (entry.community == nullptr) continue;
    const auto flat = entry.community->flat();
    result.image.emplace_back(id, entry.version,
                              std::vector<Count>(flat.begin(), flat.end()));
  }
  return result;
}

/// The headline gate: 2 methods x 3 epsilons x 3 k x 17 seeds = 306
/// traces, each checked at every quiesce point. Aggregate assertions
/// prove the suite exercised BOTH maintainer paths (incremental and
/// fallback), the cutoff-seed prune, and nonzero triggers — a suite
/// where everything fell back would vacuously pass identity.
TEST(EvolveDifferentialTest, MaintainedEqualsFreshOver300Traces) {
  const Method methods[] = {Method::kExMinMax, Method::kExBaseline};
  const Epsilon epsilons[] = {0, 2, 8};
  const uint32_t ks[] = {1, 3, 5};
  TopKMaintainer::Stats total;
  uint64_t triggers = 0;
  uint32_t traces = 0;
  for (const Method method : methods) {
    for (const Epsilon eps : epsilons) {
      for (const uint32_t k : ks) {
        for (uint64_t s = 0; s < 17; ++s) {
          TraceConfig config;
          config.method = method;
          config.eps = eps;
          config.k = k;
          config.seed = testing::TestSeed(s * 97 + k * 7 + eps) % 100000;
          const TraceResult result = RunTrace(config);
          total.fast_paths += result.stats.fast_paths;
          total.fallbacks += result.stats.fallbacks;
          total.reprobed_joins += result.stats.reprobed_joins;
          total.reprobe_skipped += result.stats.reprobe_skipped;
          triggers += result.triggers;
          ++traces;
        }
      }
    }
  }
  EXPECT_GE(traces, 300u);
  EXPECT_GT(total.fast_paths, 0u) << "no trace took the incremental path";
  EXPECT_GT(total.fallbacks, 0u) << "no trace exercised the fallback";
  EXPECT_GT(total.reprobed_joins, 0u);
  EXPECT_GT(total.reprobe_skipped, 0u)
      << "the cutoff seed never pruned a newcomer";
  EXPECT_GT(triggers, 0u) << "no trace ever fired a trigger";
}

/// Replay is bit-reproducible at any thread count: the same trace frozen
/// by 1 thread and by 5 threads must produce identical catalog images
/// (ids, versions, counter bytes) AND identical maintained rankings.
TEST(EvolveDifferentialTest, ThreadCountReproducibility) {
  TraceConfig config;
  config.seed = testing::TestSeed(11) % 100000;
  config.eps = 2;
  config.k = 5;

  config.freeze_threads = 1;
  const TraceResult one = RunTrace(config);
  config.freeze_threads = 5;
  const TraceResult five = RunTrace(config);

  ASSERT_EQ(one.image.size(), five.image.size());
  for (size_t i = 0; i < one.image.size(); ++i) {
    EXPECT_EQ(std::get<0>(one.image[i]), std::get<0>(five.image[i]));
    EXPECT_EQ(std::get<1>(one.image[i]), std::get<1>(five.image[i]))
        << "version divergence at id " << std::get<0>(one.image[i]);
    EXPECT_EQ(std::get<2>(one.image[i]), std::get<2>(five.image[i]))
        << "counter bytes diverged at id " << std::get<0>(one.image[i]);
  }
  ASSERT_EQ(one.rankings.size(), five.rankings.size());
  for (size_t q = 0; q < one.rankings.size(); ++q) {
    EXPECT_TRUE(one.rankings[q] == five.rankings[q])
        << "maintained ranking diverged across thread counts, query " << q;
  }
}

/// A mutation log too small for the epoch's churn forces the cursor off
/// the retention window: every such refresh must detect the truncation,
/// fall back to a full recompute, and STILL be byte-identical.
TEST(EvolveDifferentialTest, LogTruncationFallsBackIdentically) {
  TraceConfig config;
  config.seed = testing::TestSeed(23) % 100000;
  config.eps = 1;
  config.k = 3;
  config.log_capacity = 4;  // epochs install ~10-20 records
  const TraceResult result = RunTrace(config);
  EXPECT_GT(result.stats.log_truncations, 0u)
      << "capacity 4 never truncated — the test lost its teeth";
  EXPECT_GT(result.stats.fallbacks, 0u);
}

/// Prescreen serving path: when the catalog carries a signature index
/// and queries set prescreen, the maintainer's fallback recomputes run
/// through candidate generation — identity must hold there too.
TEST(EvolveDifferentialTest, PrescreenFallbackIdentity) {
  DriftOptions drift;
  drift.base.catalog_size = 20;
  drift.base.community_size = 24;
  drift.base.eps = 2;
  drift.base.seed = testing::TestSeed(31) % 100000 + 1;
  drift.events = 60;
  drift.quiesce_every = 15;
  drift.seed = drift.base.seed * 7 + 5;
  DriftModel model(drift);

  EncodingCache cache;
  service::CommunityCatalog::Options catalog_options;
  catalog_options.cache = &cache;
  catalog_options.warm_eps = 2;
  catalog_options.mutation_log_capacity = 1 << 12;
  catalog_options.signatures = SignatureOptions{};
  service::CommunityCatalog catalog(catalog_options);
  service::TopKSimilarService fresh_service(&catalog);

  DriftReplayer::Options replay;
  replay.session_join.eps = 2;
  replay.session_join.cache = &cache;
  DriftReplayer replayer(&model, &catalog, replay);

  service::TopKOptions topk;
  topk.k = 4;
  topk.join.eps = 2;
  topk.join.cache = &cache;
  topk.prescreen = true;
  topk.prescreen_threshold = 0.05;

  TopKMaintainer::Options options;
  options.service = &fresh_service;
  options.allow_fast_path = false;  // pin every refresh to the fallback
  TopKMaintainer maintainer(&catalog, options);
  const auto& pool = model.workload().communities();
  maintainer.Register(pool[1], topk);
  maintainer.RefreshAll();

  for (uint32_t e = 0; e < model.epochs(); ++e) {
    replayer.ApplyEpoch(e);
    maintainer.Refresh(0);
    const auto fresh = fresh_service.Query(*pool[1], topk);
    EXPECT_TRUE(maintainer.Ranking(0) == fresh.entries)
        << "prescreen-path divergence at epoch " << e;
  }
  const auto stats = maintainer.GetStats();
  EXPECT_EQ(stats.fast_paths, 0u);
  EXPECT_GT(stats.fallbacks, 0u);
}

}  // namespace
}  // namespace csj::evolve
