// Tests for the SuperEGO substrate: normalization, EGO sort, dimension
// reordering, segment trees and the EGO strategy.

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "ego/dimension_reorder.h"
#include "ego/ego_join.h"
#include "ego/normalized.h"
#include "util/rng.h"

namespace csj::ego {
namespace {

Community RandomCommunity(Dim d, uint32_t n, Count max_value, uint64_t seed) {
  util::Rng rng(seed);
  Community c(d);
  std::vector<Count> vec(d);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(max_value + 1));
    c.AddUser(vec);
  }
  return c;
}

TEST(NormalizeTest, ValuesScaledIntoUnitCube) {
  const Community c = RandomCommunity(5, 40, 100, 1);
  const NormalizedData norm = Normalize(c, 100, 10, IdentityOrder(5));
  EXPECT_EQ(norm.size(), 40u);
  EXPECT_FLOAT_EQ(norm.eps_norm, 0.1f);
  for (uint32_t row = 0; row < norm.size(); ++row) {
    for (const float v : norm.Row(row)) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(NormalizeTest, IdsFormPermutationAndRowsMatchSources) {
  const Community c = RandomCommunity(4, 30, 64, 2);
  const NormalizedData norm = Normalize(c, 64, 4, IdentityOrder(4));
  std::set<UserId> seen;
  for (uint32_t row = 0; row < norm.size(); ++row) {
    const UserId id = norm.ids[row];
    EXPECT_TRUE(seen.insert(id).second);
    const std::span<const Count> src = c.User(id);
    const std::span<const float> dst = norm.Row(row);
    for (Dim k = 0; k < 4; ++k) {
      EXPECT_FLOAT_EQ(dst[k], static_cast<float>(src[k]) / 64.0f);
    }
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST(NormalizeTest, RowsAreCellLexicographic) {
  const Community c = RandomCommunity(3, 100, 50, 3);
  const NormalizedData norm = Normalize(c, 50, 5, IdentityOrder(3));
  for (uint32_t row = 1; row < norm.size(); ++row) {
    const std::span<const float> prev = norm.Row(row - 1);
    const std::span<const float> cur = norm.Row(row);
    // prev <= cur in cell-lexicographic order.
    bool decided = false;
    for (Dim k = 0; k < 3 && !decided; ++k) {
      const int32_t cp = CellOf(prev[k], norm.eps_norm);
      const int32_t cc = CellOf(cur[k], norm.eps_norm);
      ASSERT_LE(cp, cc) << "row " << row << " dim " << k;
      decided = cp < cc;
    }
  }
}

TEST(NormalizeTest, DimensionOrderPermutesColumns) {
  Community c(3);
  c.AddUser(std::vector<Count>{10, 20, 30});
  const std::vector<Dim> order = {2, 0, 1};
  const NormalizedData norm = Normalize(c, 100, 1, order);
  EXPECT_FLOAT_EQ(norm.Row(0)[0], 0.30f);
  EXPECT_FLOAT_EQ(norm.Row(0)[1], 0.10f);
  EXPECT_FLOAT_EQ(norm.Row(0)[2], 0.20f);
}

TEST(EpsMatchesFloatTest, BoundaryBehaviour) {
  const std::vector<float> x = {0.5f, 0.5f};
  const std::vector<float> y = {0.6f, 0.5f};
  EXPECT_TRUE(EpsMatchesFloat(x, y, 0.100001f));
  EXPECT_FALSE(EpsMatchesFloat(x, y, 0.05f));
}

TEST(DimensionReorderTest, SelectiveDimensionFirst) {
  // Dimension 0 is constant (useless for pruning); dimension 1 spreads
  // widely. The reorder must put dimension 1 first.
  Community b(2);
  Community a(2);
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto spread = static_cast<Count>(rng.Below(1000));
    b.AddUser(std::vector<Count>{500, spread});
    a.AddUser(std::vector<Count>{500, static_cast<Count>(rng.Below(1000))});
  }
  const std::vector<Dim> order = ComputeDimensionOrder(b, a, 10, 1000);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

TEST(DimensionReorderTest, ReturnsPermutation) {
  const Community b = RandomCommunity(8, 50, 200, 11);
  const Community a = RandomCommunity(8, 50, 200, 12);
  const std::vector<Dim> order = ComputeDimensionOrder(b, a, 5, 200);
  std::vector<Dim> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (Dim k = 0; k < 8; ++k) EXPECT_EQ(sorted[k], k);
}

TEST(SegmentTreeTest, LeavesRespectThresholdAndCoverAllRows) {
  const Community c = RandomCommunity(3, 100, 50, 4);
  const NormalizedData norm = Normalize(c, 50, 5, IdentityOrder(3));
  const SegmentTree tree(CellsOf(norm), 16);
  ASSERT_FALSE(tree.empty());

  // Walk the tree: leaves must partition [0, 100) into segments < 16.
  std::vector<int32_t> stack = {tree.root()};
  std::vector<std::pair<uint32_t, uint32_t>> leaves;
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    const SegmentTree::Node& node = tree.node(id);
    if (node.IsLeaf()) {
      EXPECT_LT(node.hi - node.lo, 16u);
      leaves.emplace_back(node.lo, node.hi);
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  std::sort(leaves.begin(), leaves.end());
  uint32_t expected_lo = 0;
  for (const auto& [lo, hi] : leaves) {
    EXPECT_EQ(lo, expected_lo);
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, 100u);
}

TEST(SegmentTreeTest, BoxesContainTheirRows) {
  const Community c = RandomCommunity(4, 64, 32, 5);
  const NormalizedData norm = Normalize(c, 32, 2, IdentityOrder(4));
  const SegmentTree tree(CellsOf(norm), 8);
  std::vector<int32_t> stack = {tree.root()};
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    const SegmentTree::Node& node = tree.node(id);
    for (uint32_t row = node.lo; row < node.hi; ++row) {
      const std::span<const float> values = norm.Row(row);
      for (Dim k = 0; k < 4; ++k) {
        const int32_t cell = CellOf(values[k], norm.eps_norm);
        EXPECT_GE(cell, tree.MinCells(id)[k]);
        EXPECT_LE(cell, tree.MaxCells(id)[k]);
      }
    }
    if (!node.IsLeaf()) {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
}

TEST(SegmentTreeTest, EmptyDataMakesEmptyTree) {
  const Community c(3);
  const NormalizedData norm = Normalize(c, 10, 1, IdentityOrder(3));
  const SegmentTree tree(CellsOf(norm), 8);
  EXPECT_TRUE(tree.empty());
}

TEST(EgoJoinTest, LeafPairsCoverEveryFloatMatch) {
  // Completeness: every pair that eps-matches in normalized space must be
  // enumerated by some surviving leaf pair (the strategy never prunes a
  // true pair).
  const Community cb = RandomCommunity(3, 80, 40, 21);
  const Community ca = RandomCommunity(3, 90, 40, 22);
  const Epsilon eps = 4;
  const NormalizedData nb = Normalize(cb, 40, eps, IdentityOrder(3));
  const NormalizedData na = Normalize(ca, 40, eps, IdentityOrder(3));
  const SegmentTree tb(CellsOf(nb), 8);
  const SegmentTree ta(CellsOf(na), 8);

  std::set<std::pair<UserId, UserId>> enumerated;
  EgoStats stats;
  EgoJoin(tb, ta,
          [&](uint32_t b_lo, uint32_t b_hi, uint32_t a_lo, uint32_t a_hi) {
            for (uint32_t rb = b_lo; rb < b_hi; ++rb) {
              for (uint32_t ra = a_lo; ra < a_hi; ++ra) {
                enumerated.insert({nb.ids[rb], na.ids[ra]});
              }
            }
          },
          &stats);

  uint64_t true_matches = 0;
  for (uint32_t rb = 0; rb < nb.size(); ++rb) {
    for (uint32_t ra = 0; ra < na.size(); ++ra) {
      if (EpsMatchesFloat(nb.Row(rb), na.Row(ra), nb.eps_norm)) {
        ++true_matches;
        EXPECT_TRUE(enumerated.count({nb.ids[rb], na.ids[ra]}))
            << "strategy pruned a true match";
      }
    }
  }
  EXPECT_GT(true_matches, 0u) << "weak test: no matches at all";
  // And the strategy actually pruned something (it is not a no-op).
  EXPECT_GT(stats.strategy_prunes, 0u);
  EXPECT_LT(enumerated.size(),
            static_cast<size_t>(nb.size()) * na.size());
}

TEST(EgoStrategyTest, SeparatedAndAdjacentBoxes) {
  // Two single-point "communities" far apart: separated. Adjacent cells:
  // not separated.
  Community far_b(1);
  far_b.AddUser(std::vector<Count>{0});
  Community far_a(1);
  far_a.AddUser(std::vector<Count>{100});
  const NormalizedData nb = Normalize(far_b, 100, 5, IdentityOrder(1));
  const NormalizedData na = Normalize(far_a, 100, 5, IdentityOrder(1));
  const SegmentTree tb(CellsOf(nb), 4);
  const SegmentTree ta(CellsOf(na), 4);
  EXPECT_TRUE(EgoStrategySeparated(tb, tb.root(), ta, ta.root()));

  Community near_a(1);
  near_a.AddUser(std::vector<Count>{7});  // one cell over (cell 1 vs 0)
  const NormalizedData nn = Normalize(near_a, 100, 5, IdentityOrder(1));
  const SegmentTree tn(CellsOf(nn), 4);
  EXPECT_FALSE(EgoStrategySeparated(tb, tb.root(), tn, tn.root()));
}

TEST(EgoJoinTest, EmptySidesAreNoOps) {
  const Community empty(2);
  const Community c = RandomCommunity(2, 10, 10, 30);
  const NormalizedData ne = Normalize(empty, 10, 1, IdentityOrder(2));
  const NormalizedData nc = Normalize(c, 10, 1, IdentityOrder(2));
  const SegmentTree te(CellsOf(ne), 4);
  const SegmentTree tc(CellsOf(nc), 4);
  EgoStats stats;
  int calls = 0;
  EgoJoin(te, tc, [&](uint32_t, uint32_t, uint32_t, uint32_t) { ++calls; },
          &stats);
  EgoJoin(tc, te, [&](uint32_t, uint32_t, uint32_t, uint32_t) { ++calls; },
          &stats);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(stats.node_pair_visits, 0u);
}

}  // namespace
}  // namespace csj::ego
