// Tests for the MinMaxEGO hybrid extension: the integer epsilon grid and
// the Ap-/Ex-MinMaxEGO methods built on it. Unlike normalized SuperEGO,
// the hybrid must be EXACTLY as accurate as Baseline/MinMax on every
// input, because no floats are involved.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "core/hybrid_method.h"
#include "core/method.h"
#include "ego/ego_join.h"
#include "ego/integer_grid.h"
#include "matching/greedy.h"
#include "util/rng.h"

namespace csj {
namespace {

Community RandomCommunity(Dim d, uint32_t n, Count max_value, uint64_t seed) {
  util::Rng rng(seed);
  Community c(d);
  std::vector<Count> vec(d);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(max_value + 1));
    c.AddUser(vec);
  }
  return c;
}

TEST(IntegerGridTest, CellsAndSortOrder) {
  const Community c = RandomCommunity(3, 120, 60, 1);
  const ego::IntegerGridData grid =
      ego::BuildIntegerGrid(c, 5, ego::IdentityOrder(3));
  ASSERT_EQ(grid.size(), 120u);
  // Rows are cell-lexicographic; ids form a permutation.
  std::set<UserId> seen;
  for (uint32_t row = 0; row < grid.size(); ++row) {
    EXPECT_TRUE(seen.insert(grid.ids[row]).second);
    if (row == 0) continue;
    bool decided = false;
    for (Dim k = 0; k < 3 && !decided; ++k) {
      const int32_t prev = ego::IntegerCellOf(grid.Row(row - 1)[k], 5);
      const int32_t cur = ego::IntegerCellOf(grid.Row(row)[k], 5);
      ASSERT_LE(prev, cur);
      decided = prev < cur;
    }
  }
}

TEST(IntegerGridTest, RowsMatchSourceUsers) {
  const Community c = RandomCommunity(4, 50, 30, 2);
  const std::vector<Dim> order = {3, 1, 0, 2};
  const ego::IntegerGridData grid = ego::BuildIntegerGrid(c, 2, order);
  for (uint32_t row = 0; row < grid.size(); ++row) {
    const std::span<const Count> src = c.User(grid.ids[row]);
    const std::span<const Count> dst = grid.Row(row);
    for (Dim k = 0; k < 4; ++k) EXPECT_EQ(dst[k], src[order[k]]);
  }
}

TEST(IntegerGridTest, MatchImpliesAdjacentCells) {
  util::Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const auto x = static_cast<Count>(rng.Below(1000));
    const auto y = static_cast<Count>(rng.Below(1000));
    const auto eps = static_cast<Epsilon>(1 + rng.Below(50));
    const Count lo = std::min(x, y);
    const Count hi = std::max(x, y);
    if (hi - lo <= eps) {
      const int32_t cx = ego::IntegerCellOf(x, eps);
      const int32_t cy = ego::IntegerCellOf(y, eps);
      EXPECT_LE(cx > cy ? cx - cy : cy - cx, 1);
    }
  }
}

TEST(HybridTest, ExactHybridEqualsExactBaselineEverywhere) {
  // The headline property: integer-grid EGO + encoded leaves lose NOTHING
  // versus the brute-force exact join, on VK-scale counters where
  // normalized SuperEGO does lose pairs.
  for (const uint64_t seed : {1ull, 2ull, 3ull}) {
    const Community b = RandomCommunity(27, 150, 6, seed);
    const Community a = RandomCommunity(27, 180, 6, seed + 100);
    JoinOptions options;
    options.eps = 1;
    options.superego_threshold = 16;
    options.matcher = matching::MatcherKind::kMaxMatching;
    const JoinResult oracle = ExBaselineJoin(b, a, options);
    const JoinResult hybrid = ExMinMaxEgoJoin(b, a, options);
    EXPECT_EQ(hybrid.pairs.size(), oracle.pairs.size()) << "seed " << seed;
    EXPECT_TRUE(matching::IsOneToOne(hybrid.pairs));
    for (const MatchedPair& p : hybrid.pairs) {
      EXPECT_TRUE(EpsilonMatches(b.User(p.b), a.User(p.a), options.eps));
    }
  }
}

TEST(HybridTest, EncodedLeafTogglePreservesExactResult) {
  const Community b = RandomCommunity(8, 120, 12, 7);
  const Community a = RandomCommunity(8, 140, 12, 8);
  JoinOptions options;
  options.eps = 2;
  options.superego_threshold = 16;
  options.matcher = matching::MatcherKind::kMaxMatching;
  options.hybrid_encoded_leaf = true;
  const size_t with_filter = ExMinMaxEgoJoin(b, a, options).pairs.size();
  options.hybrid_encoded_leaf = false;
  const size_t without_filter = ExMinMaxEgoJoin(b, a, options).pairs.size();
  EXPECT_EQ(with_filter, without_filter);
}

TEST(HybridTest, EncodedLeafActuallyFilters) {
  const Community b = RandomCommunity(27, 200, 5, 9);
  const Community a = RandomCommunity(27, 200, 5, 10);
  JoinOptions options;
  options.eps = 1;
  options.superego_threshold = 64;
  options.hybrid_encoded_leaf = true;
  const JoinResult with_filter = ExMinMaxEgoJoin(b, a, options);
  options.hybrid_encoded_leaf = false;
  const JoinResult without_filter = ExMinMaxEgoJoin(b, a, options);
  // The filter converts full d-dimensional comparisons into cheap
  // NO OVERLAP rejections.
  EXPECT_GT(with_filter.stats.no_overlaps, 0u);
  EXPECT_LT(with_filter.stats.dimension_compares,
            without_filter.stats.dimension_compares);
}

TEST(HybridTest, ApproximateNeverBeatsExactAndStaysValid) {
  const Community b = RandomCommunity(27, 150, 5, 11);
  const Community a = RandomCommunity(27, 170, 5, 12);
  JoinOptions options;
  options.eps = 1;
  options.superego_threshold = 16;
  options.matcher = matching::MatcherKind::kMaxMatching;
  const JoinResult ap = ApMinMaxEgoJoin(b, a, options);
  const JoinResult ex = ExMinMaxEgoJoin(b, a, options);
  EXPECT_LE(ap.pairs.size(), ex.pairs.size());
  EXPECT_TRUE(matching::IsOneToOne(ap.pairs));
  for (const MatchedPair& p : ap.pairs) {
    EXPECT_TRUE(EpsilonMatches(b.User(p.b), a.User(p.a), options.eps));
  }
}

TEST(HybridTest, RegisteredInMethodRegistry) {
  EXPECT_EQ(ParseMethod("Ap-MinMaxEGO"), Method::kApMinMaxEgo);
  EXPECT_EQ(ParseMethod("Ex-MinMaxEGO"), Method::kExMinMaxEgo);
  EXPECT_FALSE(IsExact(Method::kApMinMaxEgo));
  EXPECT_TRUE(IsExact(Method::kExMinMaxEgo));

  const Community b = RandomCommunity(4, 20, 5, 13);
  JoinOptions options;
  options.eps = 1;
  options.matcher = matching::MatcherKind::kMaxMatching;
  for (const Method method : kExtensionMethods) {
    const JoinResult result = RunMethod(method, b, b, options);
    EXPECT_EQ(result.method, MethodName(method));
    if (IsExact(method)) {
      // An exact self-join matches everyone (identity is a perfect
      // matching); the approximate variants may strand users to greedy
      // contention but never exceed |B|.
      EXPECT_EQ(result.pairs.size(), 20u) << MethodName(method);
    } else {
      EXPECT_LE(result.pairs.size(), 20u) << MethodName(method);
      EXPECT_GE(result.pairs.size(), 10u) << MethodName(method);
    }
  }
}

TEST(HybridTest, EmptyAndDegenerateInputs) {
  const Community empty(5);
  Community one(5);
  one.AddUser(std::vector<Count>{1, 2, 3, 4, 5});
  JoinOptions options;
  options.eps = 1;
  EXPECT_TRUE(ApMinMaxEgoJoin(empty, one, options).pairs.empty());
  EXPECT_TRUE(ExMinMaxEgoJoin(one, empty, options).pairs.empty());
  // eps = 0 still works (the grid clamps to cell width 1, the predicate
  // stays exact equality).
  options.eps = 0;
  const JoinResult self = ExMinMaxEgoJoin(one, one, options);
  EXPECT_EQ(self.pairs.size(), 1u);
}

}  // namespace
}  // namespace csj
