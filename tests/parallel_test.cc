// Tests for the ParallelFor utility and the thread-count invariance of
// the parallel exact methods (any thread count must reproduce the serial
// result byte for byte).

#include <atomic>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/method.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace csj {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (const uint32_t threads : {1u, 2u, 3u, 7u}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    util::ParallelFor(10, 90, threads,
                      [&](uint32_t lo, uint32_t hi, uint32_t) {
                        for (uint32_t i = lo; i < hi; ++i) ++hits[i];
                      });
    for (uint32_t i = 0; i < 100; ++i) {
      EXPECT_EQ(hits[i].load(), (i >= 10 && i < 90) ? 1 : 0)
          << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  int calls = 0;
  util::ParallelFor(5, 5, 4, [&](uint32_t, uint32_t, uint32_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(util::ParallelChunks(5, 5, 4), 0u);
}

TEST(ParallelForTest, ChunksClampToRangeSize) {
  EXPECT_EQ(util::ParallelChunks(0, 3, 100), 3u);
  EXPECT_EQ(util::ParallelChunks(0, 100, 4), 4u);
  EXPECT_EQ(util::ParallelChunks(0, 10, 0), 1u);
}

TEST(ParallelForTest, ChunkIndicesAreContiguousAndOrderedByRange) {
  std::mutex mutex;
  std::vector<std::pair<uint32_t, uint32_t>> spans(4);
  util::ParallelFor(0, 10, 4, [&](uint32_t lo, uint32_t hi, uint32_t chunk) {
    const std::lock_guard<std::mutex> lock(mutex);
    spans[chunk] = {lo, hi};
  });
  uint32_t expected_lo = 0;
  for (const auto& [lo, hi] : spans) {
    EXPECT_EQ(lo, expected_lo);
    EXPECT_LE(hi - lo, 3u);
    EXPECT_GE(hi - lo, 2u);
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, 10u);
}

Community RandomCommunity(Dim d, uint32_t n, Count max_value, uint64_t seed) {
  util::Rng rng(seed);
  Community c(d);
  std::vector<Count> vec(d);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(max_value + 1));
    c.AddUser(vec);
  }
  return c;
}

/// Any thread count must reproduce the single-thread result exactly —
/// pairs, similarity, and comparison counters alike.
TEST(ParallelJoinTest, ThreadCountInvariance) {
  const Community b = RandomCommunity(8, 300, 10, 1);
  const Community a = RandomCommunity(8, 350, 10, 2);
  for (const Method method :
       {Method::kExBaseline, Method::kExSuperEgo, Method::kExMinMaxEgo}) {
    JoinOptions options;
    options.eps = 2;
    options.superego_threshold = 16;
    options.threads = 1;
    const JoinResult serial = RunMethod(method, b, a, options);
    for (const uint32_t threads : {2u, 4u, 9u}) {
      options.threads = threads;
      const JoinResult parallel = RunMethod(method, b, a, options);
      EXPECT_EQ(parallel.pairs, serial.pairs)
          << MethodName(method) << " threads=" << threads;
      EXPECT_EQ(parallel.stats.matches, serial.stats.matches);
      EXPECT_EQ(parallel.stats.no_matches, serial.stats.no_matches);
      EXPECT_EQ(parallel.stats.dimension_compares,
                serial.stats.dimension_compares);
      EXPECT_EQ(parallel.stats.candidate_pairs, serial.stats.candidate_pairs);
    }
  }
}

TEST(ParallelJoinTest, EventLogForcesSerialExecution) {
  const Community b = RandomCommunity(3, 20, 5, 3);
  const Community a = RandomCommunity(3, 20, 5, 4);
  JoinOptions options;
  options.eps = 1;
  options.threads = 8;
  EventLog log;
  options.event_log = &log;
  const JoinResult result = RunMethod(Method::kExBaseline, b, a, options);
  // The full nested loop is logged in deterministic row order.
  ASSERT_EQ(log.records.size(), 400u);
  for (size_t i = 1; i < log.records.size(); ++i) {
    const auto key = [](const EventRecord& r) {
      return static_cast<uint64_t>(r.b) << 32 | r.a;
    };
    EXPECT_LT(key(log.records[i - 1]), key(log.records[i]));
  }
  EXPECT_EQ(result.stats.dimension_compares, 400u);
}

TEST(ParallelJoinTest, EmptyCommunitiesWithThreads) {
  const Community empty(4);
  Community one(4);
  one.AddUser(std::vector<Count>{1, 2, 3, 4});
  JoinOptions options;
  options.eps = 1;
  options.threads = 4;
  EXPECT_TRUE(RunMethod(Method::kExBaseline, empty, one, options).pairs.empty());
  EXPECT_TRUE(RunMethod(Method::kExSuperEgo, one, empty, options).pairs.empty());
  EXPECT_TRUE(
      RunMethod(Method::kExMinMaxEgo, empty, empty, options).pairs.empty());
}

}  // namespace
}  // namespace csj
