// Tests for the ParallelFor utility and the thread-count invariance of
// the parallel execution paths: every join method and the pipeline must
// reproduce the serial result byte for byte at any thread count.

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "core/method.h"
#include "pipeline/screening.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace csj {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (const uint32_t threads : {1u, 2u, 3u, 7u}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    util::ParallelFor(10, 90, threads,
                      [&](uint32_t lo, uint32_t hi, uint32_t) {
                        for (uint32_t i = lo; i < hi; ++i) ++hits[i];
                      });
    for (uint32_t i = 0; i < 100; ++i) {
      EXPECT_EQ(hits[i].load(), (i >= 10 && i < 90) ? 1 : 0)
          << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  int calls = 0;
  util::ParallelFor(5, 5, 4, [&](uint32_t, uint32_t, uint32_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(util::ParallelChunks(5, 5, 4), 0u);
}

TEST(ParallelForTest, ChunksClampToRangeSize) {
  EXPECT_EQ(util::ParallelChunks(0, 3, 100), 3u);
  EXPECT_EQ(util::ParallelChunks(0, 100, 4), 4u);
  EXPECT_EQ(util::ParallelChunks(0, 10, 0), 1u);
}

TEST(ParallelForTest, ChunkIndicesAreContiguousAndOrderedByRange) {
  std::mutex mutex;
  std::vector<std::pair<uint32_t, uint32_t>> spans(4);
  util::ParallelFor(0, 10, 4, [&](uint32_t lo, uint32_t hi, uint32_t chunk) {
    const std::lock_guard<std::mutex> lock(mutex);
    spans[chunk] = {lo, hi};
  });
  uint32_t expected_lo = 0;
  for (const auto& [lo, hi] : spans) {
    EXPECT_EQ(lo, expected_lo);
    EXPECT_LE(hi - lo, 3u);
    EXPECT_GE(hi - lo, 2u);
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, 10u);
}

Community RandomCommunity(Dim d, uint32_t n, Count max_value, uint64_t seed) {
  util::Rng rng(seed);
  Community c(d);
  std::vector<Count> vec(d);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(max_value + 1));
    c.AddUser(vec);
  }
  return c;
}

/// Any thread count must reproduce the single-thread result exactly —
/// pairs, similarity, and comparison counters alike — for EVERY method
/// (the order-dependent scans ignore `threads` by design, so they pass
/// trivially; the chunked exact methods are the real subject).
TEST(ParallelJoinTest, ThreadCountInvarianceForEveryMethod) {
  const Community b = RandomCommunity(8, 300, 10, 1);
  const Community a = RandomCommunity(8, 350, 10, 2);
  std::vector<Method> methods(std::begin(kAllMethods), std::end(kAllMethods));
  methods.insert(methods.end(), std::begin(kExtensionMethods),
                 std::end(kExtensionMethods));
  for (const Method method : methods) {
    JoinOptions options;
    options.eps = 2;
    options.superego_threshold = 16;
    options.join_threads = 1;
    const JoinResult serial = RunMethod(method, b, a, options);
    for (const uint32_t threads : {2u, 4u, 9u}) {
      options.join_threads = threads;
      const JoinResult parallel = RunMethod(method, b, a, options);
      EXPECT_EQ(parallel.pairs, serial.pairs)
          << MethodName(method) << " threads=" << threads;
      EXPECT_EQ(parallel.stats.matches, serial.stats.matches);
      EXPECT_EQ(parallel.stats.no_matches, serial.stats.no_matches);
      EXPECT_EQ(parallel.stats.dimension_compares,
                serial.stats.dimension_compares);
      EXPECT_EQ(parallel.stats.candidate_pairs, serial.stats.candidate_pairs);
    }
  }
}

/// ParallelFor with threads == 1 must execute inline on the calling
/// thread with no pool interaction (the paper's evaluation setting).
TEST(ParallelForTest, SingleThreadRunsInlineOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  uint32_t calls = 0;
  util::ParallelFor(0, 100, 1, [&](uint32_t lo, uint32_t hi, uint32_t c) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
    EXPECT_EQ(c, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

/// The blocked EpsilonMatches agrees with the independent Chebyshev
/// oracle on random vectors of every size around the block width.
TEST(EpsilonKernelTest, MatchesChebyshevOracle) {
  util::Rng rng(42);
  for (const Dim d : {1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 27u, 31u, 32u, 33u,
                      40u, 64u, 100u}) {
    for (uint32_t trial = 0; trial < 200; ++trial) {
      std::vector<Count> x(d);
      std::vector<Count> y(d);
      for (Dim i = 0; i < d; ++i) {
        x[i] = static_cast<Count>(rng.Below(8));
        y[i] = static_cast<Count>(rng.Below(8));
      }
      for (const Epsilon eps : {0u, 1u, 2u, 5u, 100u}) {
        EXPECT_EQ(EpsilonMatches(x, y, eps), ChebyshevDistance(x, y) <= eps)
            << "d=" << d << " eps=" << eps;
      }
    }
  }
}

namespace pipeline_invariance {

using pipeline::PipelineOptions;
using pipeline::PipelineReport;

/// Everything the pipeline guarantees to be deterministic (timing fields
/// excluded; similarity doubles compared bit-exactly).
void ExpectReportsIdentical(const PipelineReport& serial,
                            const PipelineReport& parallel,
                            uint32_t threads) {
  EXPECT_EQ(parallel.screened, serial.screened) << "threads=" << threads;
  EXPECT_EQ(parallel.refined, serial.refined);
  EXPECT_EQ(parallel.inadmissible, serial.inadmissible);
  EXPECT_EQ(parallel.bound_pruned, serial.bound_pruned);
  ASSERT_EQ(parallel.entries.size(), serial.entries.size());
  for (size_t i = 0; i < serial.entries.size(); ++i) {
    const auto& s = serial.entries[i];
    const auto& p = parallel.entries[i];
    EXPECT_EQ(p.candidate_index, s.candidate_index)
        << "entry " << i << " threads=" << threads;
    EXPECT_EQ(p.candidate_name, s.candidate_name);
    EXPECT_EQ(p.refined, s.refined);
    EXPECT_EQ(std::memcmp(&p.screened_similarity, &s.screened_similarity,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&p.refined_similarity, &s.refined_similarity,
                          sizeof(double)),
              0);
  }
}

/// A size-skewed catalog (the scheduling-interesting shape): the pipeline
/// report must be byte-identical at 1 and N threads, for both entry
/// points, with and without survivors.
TEST(ParallelPipelineTest, ReportIsThreadCountInvariant) {
  std::vector<Community> catalog;
  const uint32_t sizes[] = {220, 160, 300, 180, 260, 210};
  for (uint32_t i = 0; i < 6; ++i) {
    Community c = RandomCommunity(6, sizes[i], 6, 100 + i);
    std::string name = "c";
    name += std::to_string(i);
    c.set_name(name);
    catalog.push_back(std::move(c));
  }
  std::vector<const Community*> pointers;
  for (const Community& c : catalog) pointers.push_back(&c);

  for (const double threshold : {0.0, 0.35}) {
    PipelineOptions options;
    options.screen_method = Method::kApMinMax;
    options.refine_method = Method::kExMinMax;
    options.screen_threshold = threshold;
    options.join.eps = 3;
    options.pipeline_threads = 1;
    const PipelineReport serial_pivot =
        ScreenAndRefine(catalog[0], pointers, options);
    const PipelineReport serial_pairs =
        ScreenAndRefineAllPairs(pointers, options);
    EXPECT_GT(serial_pairs.entries.size(), 0u);
    for (const uint32_t threads : {2u, 4u, 9u}) {
      options.pipeline_threads = threads;
      ExpectReportsIdentical(serial_pivot,
                             ScreenAndRefine(catalog[0], pointers, options),
                             threads);
      ExpectReportsIdentical(serial_pairs,
                             ScreenAndRefineAllPairs(pointers, options),
                             threads);
    }
  }
}

/// The injectable-pool seam: a caller-owned pool gives the same report.
TEST(ParallelPipelineTest, InjectedPoolMatchesGlobal) {
  std::vector<Community> catalog;
  for (uint32_t i = 0; i < 4; ++i) {
    Community c = RandomCommunity(5, 150 + 20 * i, 5, 7 + i);
    std::string name = "inj";
    name += std::to_string(i);
    c.set_name(name);
    catalog.push_back(std::move(c));
  }
  std::vector<const Community*> pointers;
  for (const Community& c : catalog) pointers.push_back(&c);

  PipelineOptions options;
  options.screen_method = Method::kApMinMax;
  options.refine_method = Method::kExMinMax;
  options.screen_threshold = 0.0;
  options.join.eps = 2;
  options.pipeline_threads = 1;
  const PipelineReport serial = ScreenAndRefineAllPairs(pointers, options);

  util::ThreadPool pool(3);
  options.pool = &pool;
  options.pipeline_threads = 3;
  ExpectReportsIdentical(serial, ScreenAndRefineAllPairs(pointers, options),
                         3);
}

}  // namespace pipeline_invariance

TEST(ParallelJoinTest, EventLogForcesSerialExecution) {
  const Community b = RandomCommunity(3, 20, 5, 3);
  const Community a = RandomCommunity(3, 20, 5, 4);
  JoinOptions options;
  options.eps = 1;
  options.join_threads = 8;
  EventLog log;
  options.event_log = &log;
  const JoinResult result = RunMethod(Method::kExBaseline, b, a, options);
  // The full nested loop is logged in deterministic row order.
  ASSERT_EQ(log.records.size(), 400u);
  for (size_t i = 1; i < log.records.size(); ++i) {
    const auto key = [](const EventRecord& r) {
      return static_cast<uint64_t>(r.b) << 32 | r.a;
    };
    EXPECT_LT(key(log.records[i - 1]), key(log.records[i]));
  }
  EXPECT_EQ(result.stats.dimension_compares, 400u);
}

TEST(ParallelJoinTest, EmptyCommunitiesWithThreads) {
  const Community empty(4);
  Community one(4);
  one.AddUser(std::vector<Count>{1, 2, 3, 4});
  JoinOptions options;
  options.eps = 1;
  options.join_threads = 4;
  EXPECT_TRUE(RunMethod(Method::kExBaseline, empty, one, options).pairs.empty());
  EXPECT_TRUE(RunMethod(Method::kExSuperEgo, one, empty, options).pairs.empty());
  EXPECT_TRUE(
      RunMethod(Method::kExMinMaxEgo, empty, empty, options).pairs.empty());
}

}  // namespace
}  // namespace csj
