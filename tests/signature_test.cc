// Core tests for the prescreen signature layer: the quantile-table count
// bound and the per-couple similarity cap must be SOUND (never below the
// true count / exact similarity at recall_target 1.0 — this is what the
// serving fallback contract's exactness proof rests on), sketches must be
// bit-deterministic across threads and seeds, and the packed
// SignatureIndex must stay consistent through install/replace/remove
// churn.

#include "core/signature.h"

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj {
namespace {

Community RandomSmallCommunity(Dim d, uint32_t size, uint32_t value_range,
                               util::Rng& rng) {
  Community community(d);
  std::vector<Count> vec(d);
  for (uint32_t u = 0; u < size; ++u) {
    for (Dim k = 0; k < d; ++k) {
      vec[k] = static_cast<Count>(rng.Below(value_range));
    }
    community.AddUser(vec);
  }
  return community;
}

TEST(SignatureTest, CountUpperBoundDominatesTrueCount) {
  util::Rng rng(testing::TestSeed(1));
  for (uint32_t round = 0; round < 200; ++round) {
    const Dim d = 1 + static_cast<Dim>(rng.Below(4));
    const uint32_t size = 1 + static_cast<uint32_t>(rng.Below(60));
    const Community community = RandomSmallCommunity(d, size, 40, rng);
    SignatureOptions options;
    options.quantiles = 2 + static_cast<uint32_t>(rng.Below(20));
    const CommunitySignature signature(community, options);
    ASSERT_EQ(signature.sampled(), size);
    for (uint32_t probe = 0; probe < 20; ++probe) {
      const Dim k = static_cast<Dim>(rng.Below(d));
      const int64_t lo = static_cast<int64_t>(rng.Below(45)) - 3;
      const int64_t hi = lo + static_cast<int64_t>(rng.Below(20));
      uint32_t true_count = 0;
      for (UserId u = 0; u < size; ++u) {
        const int64_t v = community.User(u)[k];
        if (v >= lo && v <= hi) ++true_count;
      }
      const uint32_t bound = SignatureCountUpperBound(
          signature.DimTable(k), signature.sampled(), lo, hi);
      ASSERT_GE(bound, true_count)
          << "round " << round << " dim " << k << " range [" << lo << ","
          << hi << "]";
      ASSERT_LE(bound, size);
    }
  }
}

TEST(SignatureTest, SimilarityCapDominatesExactSimilarity) {
  // The load-bearing soundness property: for any couple, the cap
  // certified from the two sketches alone is >= the exact CSJ
  // similarity. Mix of planted (high-similarity) and unrelated couples,
  // several epsilon regimes.
  const Epsilon eps_values[] = {0, 1, 2, 8};
  util::Rng rng(testing::TestSeed(2));
  SignatureOptions options;
  uint32_t nontrivial = 0;
  for (uint32_t round = 0; round < 120; ++round) {
    data::VkLikeGenerator gen(
        static_cast<data::Category>(round % data::kNumCategories));
    const auto size_a = static_cast<uint32_t>(rng.Between(12, 30));
    const Community a = data::MakeCommunity(gen, size_a, rng);
    const Epsilon eps = eps_values[round % 4];

    Community b(gen.d());
    if (round % 2 == 0) {
      data::CoupleSpec spec;
      spec.size_b = static_cast<uint32_t>(rng.Between(10, size_a));
      spec.eps = eps;
      spec.target_similarity = 0.2 + 0.15 * static_cast<double>(round % 5);
      b = data::PlantCommunityAgainst(a, gen, spec, rng);
    } else {
      data::VkLikeGenerator other(
          static_cast<data::Category>((round + 7) % data::kNumCategories));
      b = data::MakeCommunity(other,
                              static_cast<uint32_t>(rng.Between(10, size_a)),
                              rng);
    }

    const CommunitySignature sig_a(a, options);
    const CommunitySignature sig_b(b, options);
    const std::vector<Dim> order = SignatureProbeOrder(sig_b);
    const double cap = SignatureSimilarityCap(sig_b, sig_a, eps, order);

    JoinOptions join;
    join.eps = eps;
    const auto exact =
        ComputeSimilarityAutoOrder(Method::kExMinMax, b, a, join);
    if (!exact.has_value()) continue;  // inadmissible couple: no claim
    ASSERT_GE(cap, exact->Similarity())
        << "round " << round << " eps " << eps;
    if (exact->Similarity() > 0.0) ++nontrivial;
  }
  // The property must have been exercised on couples that actually match.
  EXPECT_GT(nontrivial, 20u);
}

TEST(SignatureTest, EarlyExitNeverChangesTheVerdict) {
  util::Rng rng(testing::TestSeed(3));
  SignatureOptions options;
  for (uint32_t round = 0; round < 150; ++round) {
    data::VkLikeGenerator gen(
        static_cast<data::Category>(round % data::kNumCategories));
    data::VkLikeGenerator other(
        static_cast<data::Category>((round / 2) % data::kNumCategories));
    const Community a =
        data::MakeCommunity(gen, static_cast<uint32_t>(rng.Between(12, 40)),
                            rng);
    const Community b = data::MakeCommunity(
        other, static_cast<uint32_t>(rng.Between(12, 40)), rng);
    const CommunitySignature sig_a(a, options);
    const CommunitySignature sig_b(b, options);
    const std::vector<Dim> order = SignatureProbeOrder(sig_b);
    const double tau = 0.05 + 0.1 * static_cast<double>(round % 5);
    const double exact_cap = SignatureSimilarityCap(sig_b, sig_a, 1, order);
    const double lazy_cap =
        SignatureSimilarityCap(sig_b, sig_a, 1, order, tau);
    // Early exit may loosen the VALUE but never flips the pass/fail
    // verdict at its own threshold.
    EXPECT_EQ(exact_cap >= tau, lazy_cap >= tau) << "round " << round;
    EXPECT_GE(lazy_cap, exact_cap);
  }
}

TEST(SignatureTest, BuildIsDeterministicAcrossThreadsAndSeedReuse) {
  util::Rng rng(testing::TestSeed(4));
  data::VkLikeGenerator gen(data::Category::kFoodRecipes);
  const Community community = data::MakeCommunity(gen, 80, rng);

  SignatureOptions options;
  const CommunitySignature reference(community, options);

  // Concurrent builds of the same community: bit-identical tables (no
  // hidden global state, no thread-count sensitivity).
  std::vector<std::unique_ptr<CommunitySignature>> built(8);
  std::vector<std::thread> crew;
  for (uint32_t t = 0; t < built.size(); ++t) {
    crew.emplace_back([&, t] {
      built[t] = std::make_unique<CommunitySignature>(community, options);
    });
  }
  for (std::thread& thread : crew) thread.join();
  for (const auto& signature : built) {
    ASSERT_EQ(signature->sampled(), reference.sampled());
    ASSERT_TRUE(std::equal(signature->table().begin(),
                           signature->table().end(),
                           reference.table().begin()));
  }

  // At recall 1.0 the seed is irrelevant — sampling never runs.
  SignatureOptions reseeded = options;
  reseeded.seed = 0xDEADBEEFULL;
  const CommunitySignature reseeded_full(community, reseeded);
  EXPECT_TRUE(std::equal(reseeded_full.table().begin(),
                         reseeded_full.table().end(),
                         reference.table().begin()));

  // Below 1.0: a strict deterministic subsample, same for same seed.
  SignatureOptions sampled = options;
  sampled.recall_target = 0.5;
  const CommunitySignature once(community, sampled);
  const CommunitySignature twice(community, sampled);
  EXPECT_EQ(once.sampled(), twice.sampled());
  EXPECT_TRUE(std::equal(once.table().begin(), once.table().end(),
                         twice.table().begin()));
  EXPECT_LT(once.sampled(), once.size());
  EXPECT_GE(once.sampled(), 1u);
  EXPECT_EQ(once.size(), community.size());
}

TEST(SignatureTest, ProbeOrderIsAPermutation) {
  util::Rng rng(testing::TestSeed(5));
  data::VkLikeGenerator gen(data::Category::kSport);
  const CommunitySignature signature(data::MakeCommunity(gen, 30, rng),
                                     SignatureOptions{});
  const std::vector<Dim> order = SignatureProbeOrder(signature);
  ASSERT_EQ(order.size(), signature.d());
  std::vector<bool> seen(signature.d(), false);
  for (const Dim k : order) {
    ASSERT_LT(k, signature.d());
    ASSERT_FALSE(seen[k]);
    seen[k] = true;
  }
  // Home dimensions (largest smallest-breakpoint) lead the order.
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(signature.DimTable(order[i - 1])[0],
              signature.DimTable(order[i])[0]);
  }
}

TEST(SignatureIndexTest, InstallReplaceRemoveStaysConsistent) {
  // Reference-model differential: random install / replace / remove
  // churn against a std::map, checking Lookup, size and probe results
  // after every batch. Single-threaded (the index is externally
  // synchronized; the concurrent story is the catalog's, covered in
  // prescreen_test).
  util::Rng rng(testing::TestSeed(6));
  SignatureOptions options;
  SignatureIndex index(4, options);
  std::map<uint64_t, uint64_t> model;  // id -> version
  data::VkLikeGenerator gen(data::Category::kTourismLeisure);
  uint64_t next_version = 1;

  const auto shard_of = [&](uint64_t id) {
    return static_cast<uint32_t>(id % index.shards());
  };

  for (uint32_t step = 0; step < 400; ++step) {
    const uint64_t id = 1 + rng.Below(40);
    if (rng.NextDouble() < 0.7) {
      const Community community = data::MakeCommunity(
          gen, 8 + static_cast<uint32_t>(rng.Below(24)), rng);
      const uint64_t version = next_version++;
      index.Install(shard_of(id), id, version,
                    std::make_shared<const CommunitySignature>(community,
                                                               options));
      model[id] = version;
    } else {
      const bool removed = index.Remove(shard_of(id), id);
      EXPECT_EQ(removed, model.erase(id) > 0) << "step " << step;
    }
    ASSERT_EQ(index.size(), model.size());
  }

  // Every model entry resolves at its exact version, in its shard only.
  for (const auto& [id, version] : model) {
    uint64_t got_version = 0;
    const auto signature = index.Lookup(shard_of(id), id, &got_version);
    ASSERT_NE(signature, nullptr) << "id " << id;
    EXPECT_EQ(got_version, version);
    for (uint32_t s = 0; s < index.shards(); ++s) {
      if (s != shard_of(id)) {
        EXPECT_EQ(index.Lookup(s, id), nullptr);
      }
    }
  }

  // A threshold-0 probe with an admissible query returns EVERY resident
  // admissible entry exactly once, at its current version.
  util::Rng query_rng(testing::TestSeed(7));
  const Community query = data::MakeCommunity(gen, 20, query_rng);
  const CommunitySignature query_signature(query, options);
  const std::vector<Dim> order = SignatureProbeOrder(query_signature);
  SignatureIndex::ProbeQuery probe;
  probe.signature = &query_signature;
  probe.eps = 1;
  probe.threshold = 0.0;
  probe.probe_order = order;
  std::vector<PrescreenCandidate> candidates;
  PrescreenStats stats;
  for (uint32_t s = 0; s < index.shards(); ++s) {
    index.ProbeShard(s, probe, &candidates, &stats);
  }
  EXPECT_EQ(stats.examined, model.size());
  EXPECT_EQ(stats.skipped_cap, 0u);  // threshold 0: the cap never rejects
  std::map<uint64_t, uint64_t> probed;
  for (const PrescreenCandidate& candidate : candidates) {
    EXPECT_TRUE(probed.emplace(candidate.id, candidate.version).second)
        << "duplicate candidate " << candidate.id;
  }
  uint32_t admissible = 0;
  for (const auto& [id, version] : model) {
    uint64_t model_version = 0;
    const auto signature = index.Lookup(shard_of(id), id, &model_version);
    const uint32_t smaller = std::min(query.size(), signature->size());
    const uint32_t larger = std::max(query.size(), signature->size());
    if (!SizesAdmissible(smaller, larger)) continue;
    ++admissible;
    const auto it = probed.find(id);
    ASSERT_NE(it, probed.end()) << "admissible id " << id << " not probed";
    EXPECT_EQ(it->second, version);
  }
  EXPECT_EQ(probed.size(), admissible);
}

TEST(SignatureIndexTest, DimensionalityMismatchRejectsAsAPack) {
  SignatureOptions options;
  SignatureIndex index(1, options);
  util::Rng rng(testing::TestSeed(8));
  // Three entries of dimensionality 5, two of dimensionality 3.
  for (uint64_t id = 1; id <= 3; ++id) {
    index.Install(0, id, id,
                  std::make_shared<const CommunitySignature>(
                      RandomSmallCommunity(5, 12, 20, rng), options));
  }
  for (uint64_t id = 4; id <= 5; ++id) {
    index.Install(0, id, id,
                  std::make_shared<const CommunitySignature>(
                      RandomSmallCommunity(3, 12, 20, rng), options));
  }
  const Community query = RandomSmallCommunity(5, 12, 20, rng);
  const CommunitySignature query_signature(query, options);
  const std::vector<Dim> order = SignatureProbeOrder(query_signature);
  SignatureIndex::ProbeQuery probe;
  probe.signature = &query_signature;
  probe.eps = 2;
  probe.threshold = 0.0;
  probe.probe_order = order;
  std::vector<PrescreenCandidate> candidates;
  PrescreenStats stats;
  index.ProbeShard(0, probe, &candidates, &stats);
  EXPECT_EQ(stats.examined, 5u);
  EXPECT_EQ(stats.skipped_dim, 2u);
  for (const PrescreenCandidate& candidate : candidates) {
    EXPECT_LE(candidate.id, 3u);
  }
}

}  // namespace
}  // namespace csj
