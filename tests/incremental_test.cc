// Tests for the incremental CSJ extension: the maintained matching must
// equal a from-scratch maximum matching after every insertion and
// deletion.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "incremental/incremental_csj.h"
#include "matching/hopcroft_karp.h"
#include "util/rng.h"

namespace csj::incremental {
namespace {

Community RandomCommunity(Dim d, uint32_t n, Count max_value, uint64_t seed) {
  util::Rng rng(seed);
  Community c(d);
  std::vector<Count> vec(d);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(max_value + 1));
    c.AddUser(vec);
  }
  return c;
}

/// From-scratch oracle: maximum matching between the live vectors and A.
size_t OracleMatching(const std::vector<std::vector<Count>>& live,
                      const Community& a, Epsilon eps) {
  std::vector<MatchedPair> edges;
  for (uint32_t b = 0; b < live.size(); ++b) {
    for (UserId ia = 0; ia < a.size(); ++ia) {
      if (EpsilonMatches(live[b], a.User(ia), eps)) {
        edges.push_back(MatchedPair{b, ia});
      }
    }
  }
  return matching::HopcroftKarp(edges).size();
}

TEST(IncrementalCsjTest, SingleUserLifecycle) {
  Community a(2);
  a.AddUser(std::vector<Count>{5, 5});
  JoinOptions options;
  options.eps = 1;
  IncrementalCsj csj(a, options);

  EXPECT_EQ(csj.live_users(), 0u);
  EXPECT_DOUBLE_EQ(csj.Similarity(), 0.0);

  const auto h = csj.AddUser(std::vector<Count>{5, 6});
  EXPECT_EQ(csj.live_users(), 1u);
  EXPECT_EQ(csj.matched_pairs(), 1u);
  EXPECT_DOUBLE_EQ(csj.Similarity(), 1.0);
  EXPECT_EQ(csj.MatchOf(h), std::optional<UserId>(0u));
  EXPECT_EQ(csj.CandidateCount(h), 1u);

  EXPECT_TRUE(csj.RemoveUser(h));
  EXPECT_EQ(csj.live_users(), 0u);
  EXPECT_EQ(csj.matched_pairs(), 0u);
  EXPECT_FALSE(csj.MatchOf(h).has_value());
  EXPECT_FALSE(csj.RemoveUser(h));  // double remove rejected
  EXPECT_FALSE(csj.RemoveUser(999));
}

TEST(IncrementalCsjTest, InsertionAugmentsThroughConflicts) {
  // A = {a0, a1}; first b matches both, second b matches only a0. The
  // second insertion must shift the first b to a1.
  Community a(1);
  a.AddUser(std::vector<Count>{10});  // a0
  a.AddUser(std::vector<Count>{12});  // a1
  JoinOptions options;
  options.eps = 1;
  IncrementalCsj csj(a, options);

  const auto b0 = csj.AddUser(std::vector<Count>{11});  // matches both
  EXPECT_EQ(csj.matched_pairs(), 1u);
  const auto b1 = csj.AddUser(std::vector<Count>{9});   // only a0
  EXPECT_EQ(csj.matched_pairs(), 2u);
  EXPECT_EQ(csj.MatchOf(b0), std::optional<UserId>(1u));
  EXPECT_EQ(csj.MatchOf(b1), std::optional<UserId>(0u));
}

TEST(IncrementalCsjTest, RemovalReroutesThroughAlternatingPath) {
  // A = {a0, a1}; b0 adjacent to both, b1 adjacent to a0 only, b2
  // adjacent to a0 only. After filling, removing the holder of a0 must
  // let the stranded b take it via an alternating path.
  Community a(1);
  a.AddUser(std::vector<Count>{10});  // a0
  a.AddUser(std::vector<Count>{14});  // a1
  JoinOptions options;
  options.eps = 2;
  IncrementalCsj csj(a, options);

  const auto b0 = csj.AddUser(std::vector<Count>{12});  // a0 and a1
  const auto b1 = csj.AddUser(std::vector<Count>{9});   // a0 only
  const auto b2 = csj.AddUser(std::vector<Count>{8});   // a0 only
  EXPECT_EQ(csj.matched_pairs(), 2u);  // b2 stranded

  // Whoever holds a0 now, removing it must keep 2 matched pairs by
  // rerouting (b2 takes a0, possibly shifting b0 to a1).
  const auto holder = csj.MatchOf(b1) == std::optional<UserId>(0u) ? b1 : b0;
  EXPECT_TRUE(csj.RemoveUser(holder));
  EXPECT_EQ(csj.live_users(), 2u);
  EXPECT_EQ(csj.matched_pairs(), 2u);
  (void)b2;
}

TEST(IncrementalCsjTest, SizeRuleTracking) {
  const Community a = RandomCommunity(3, 10, 5, 1);
  JoinOptions options;
  options.eps = 1;
  IncrementalCsj csj(a, options);
  EXPECT_FALSE(csj.SizesAdmissible());  // |B| = 0 < ceil(10/2)
  std::vector<IncrementalCsj::Handle> handles;
  for (int i = 0; i < 5; ++i) {
    handles.push_back(csj.AddUser(a.User(static_cast<UserId>(i))));
  }
  EXPECT_TRUE(csj.SizesAdmissible());  // |B| = 5 == ceil(10/2)
  for (int i = 0; i < 6; ++i) {
    handles.push_back(csj.AddUser(a.User(static_cast<UserId>(i % 10))));
  }
  EXPECT_FALSE(csj.SizesAdmissible());  // |B| = 11 > |A|
}

/// Randomized churn: after every operation the maintained matching size
/// must equal the from-scratch Hopcroft-Karp maximum.
class IncrementalChurn : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalChurn, MatchesOracleAfterEveryOperation) {
  util::Rng rng(GetParam());
  const Community a = RandomCommunity(4, 40, 8, GetParam() + 1000);
  JoinOptions options;
  options.eps = 2;
  IncrementalCsj csj(a, options);

  // Live handles and the vectors behind them (for the oracle).
  std::vector<IncrementalCsj::Handle> handles;
  std::vector<std::vector<Count>> vectors;

  for (int step = 0; step < 120; ++step) {
    const bool insert = handles.empty() || rng.Bernoulli(0.6);
    if (insert) {
      std::vector<Count> vec(4);
      // Half the inserts are near-copies of A users so matches are dense.
      if (rng.Bernoulli(0.5)) {
        const UserId src = static_cast<UserId>(rng.Below(a.size()));
        vec.assign(a.User(src).begin(), a.User(src).end());
        const auto dim = static_cast<size_t>(rng.Below(4));
        vec[dim] += static_cast<Count>(rng.Below(3));
      } else {
        for (auto& v : vec) v = static_cast<Count>(rng.Below(9));
      }
      handles.push_back(csj.AddUser(vec));
      vectors.push_back(vec);
    } else {
      const auto pick = static_cast<size_t>(rng.Below(handles.size()));
      EXPECT_TRUE(csj.RemoveUser(handles[pick]));
      handles.erase(handles.begin() + static_cast<ptrdiff_t>(pick));
      vectors.erase(vectors.begin() + static_cast<ptrdiff_t>(pick));
    }

    ASSERT_EQ(csj.live_users(), handles.size());
    const size_t oracle = OracleMatching(vectors, a, options.eps);
    ASSERT_EQ(csj.matched_pairs(), oracle) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalChurn,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Two-sided churn: B users AND A users arrive and depart; the maintained
/// matching must track the from-scratch maximum throughout.
class TwoSidedChurn : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwoSidedChurn, MatchesOracleUnderASideUpdates) {
  util::Rng rng(GetParam() + 500);
  const Community a0 = RandomCommunity(3, 25, 6, GetParam() + 2000);
  JoinOptions options;
  options.eps = 1;
  IncrementalCsj csj(a0, options);

  std::vector<IncrementalCsj::Handle> handles;
  std::vector<std::vector<Count>> b_vectors;
  // Live A users: (id inside csj, vector) — starts as the initial block.
  std::vector<std::pair<UserId, std::vector<Count>>> live_a;
  for (UserId u = 0; u < a0.size(); ++u) {
    live_a.emplace_back(u, std::vector<Count>(a0.User(u).begin(),
                                              a0.User(u).end()));
  }

  auto oracle = [&]() {
    std::vector<MatchedPair> edges;
    for (uint32_t b = 0; b < b_vectors.size(); ++b) {
      for (uint32_t j = 0; j < live_a.size(); ++j) {
        if (EpsilonMatches(b_vectors[b], live_a[j].second, options.eps)) {
          edges.push_back(MatchedPair{b, j});
        }
      }
    }
    return matching::HopcroftKarp(edges).size();
  };

  auto random_vector = [&]() {
    std::vector<Count> vec(3);
    if (!live_a.empty() && rng.Bernoulli(0.5)) {
      const auto src = static_cast<size_t>(rng.Below(live_a.size()));
      vec = live_a[src].second;
      vec[static_cast<size_t>(rng.Below(3))] +=
          static_cast<Count>(rng.Below(3));
    } else {
      for (auto& v : vec) v = static_cast<Count>(rng.Below(7));
    }
    return vec;
  };

  for (int step = 0; step < 100; ++step) {
    const uint64_t op = rng.Below(4);
    if (op == 0 || handles.empty()) {  // add B
      const auto vec = random_vector();
      handles.push_back(csj.AddUser(vec));
      b_vectors.push_back(vec);
    } else if (op == 1) {  // remove B
      const auto pick = static_cast<size_t>(rng.Below(handles.size()));
      ASSERT_TRUE(csj.RemoveUser(handles[pick]));
      handles.erase(handles.begin() + static_cast<ptrdiff_t>(pick));
      b_vectors.erase(b_vectors.begin() + static_cast<ptrdiff_t>(pick));
    } else if (op == 2) {  // add A
      const auto vec = random_vector();
      const UserId id = csj.AddAUser(vec);
      live_a.emplace_back(id, vec);
    } else if (!live_a.empty()) {  // remove A
      const auto pick = static_cast<size_t>(rng.Below(live_a.size()));
      ASSERT_TRUE(csj.RemoveAUser(live_a[pick].first));
      live_a.erase(live_a.begin() + static_cast<ptrdiff_t>(pick));
    }

    ASSERT_EQ(csj.live_users(), handles.size());
    ASSERT_EQ(csj.live_a_users(), live_a.size());
    ASSERT_EQ(csj.matched_pairs(), oracle()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoSidedChurn,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(IncrementalCsjTest, ASideDoubleRemoveRejected) {
  Community a(1);
  a.AddUser(std::vector<Count>{5});
  JoinOptions options;
  options.eps = 1;
  IncrementalCsj csj(a, options);
  EXPECT_TRUE(csj.RemoveAUser(0));
  EXPECT_FALSE(csj.RemoveAUser(0));
  EXPECT_FALSE(csj.RemoveAUser(7));
  EXPECT_EQ(csj.live_a_users(), 0u);
  // A B user added now has no candidates at all.
  const auto h = csj.AddUser(std::vector<Count>{5});
  EXPECT_EQ(csj.CandidateCount(h), 0u);
  EXPECT_EQ(csj.matched_pairs(), 0u);
}

TEST(IncrementalCsjTest, NewAUserAbsorbsStrandedB) {
  Community a(1);
  a.AddUser(std::vector<Count>{10});
  JoinOptions options;
  options.eps = 1;
  IncrementalCsj csj(a, options);
  (void)csj.AddUser(std::vector<Count>{10});
  const auto stranded = csj.AddUser(std::vector<Count>{10});
  EXPECT_EQ(csj.matched_pairs(), 1u);
  // A new A user in range gives the stranded B user a partner.
  (void)csj.AddAUser(std::vector<Count>{11});
  EXPECT_EQ(csj.matched_pairs(), 2u);
  EXPECT_TRUE(csj.MatchOf(stranded).has_value());
}

/// The A-side churn REBUILD differential: after every round of mixed
/// A-insertions/removals (plus B churn), an IncrementalCsj REBUILT from
/// scratch on the post-churn A community — the documented policy when A
/// has changed wholesale, and what the evolution replayer does at every
/// quiesce — must agree with the incrementally maintained instance on
/// the matching size, the similarity bits, and the size rule. The HK
/// oracle anchors both.
class ASideRebuildDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ASideRebuildDifferential, MaintainedEqualsRebuildAfterChurn) {
  util::Rng rng(GetParam() + 900);
  const Community a0 = RandomCommunity(3, 20, 6, GetParam() + 3000);
  JoinOptions options;
  options.eps = 1;
  IncrementalCsj maintained(a0, options);

  std::vector<IncrementalCsj::Handle> handles;
  std::vector<std::vector<Count>> b_vectors;
  std::vector<std::pair<UserId, std::vector<Count>>> live_a;
  for (UserId u = 0; u < a0.size(); ++u) {
    live_a.emplace_back(u, std::vector<Count>(a0.User(u).begin(),
                                              a0.User(u).end()));
  }

  for (int round = 0; round < 12; ++round) {
    // A churn burst (the rebuild trigger), plus enough B churn that the
    // matching has structure to preserve.
    for (int i = 0; i < 6; ++i) {
      std::vector<Count> vec(3);
      for (auto& v : vec) v = static_cast<Count>(rng.Below(7));
      if (rng.Bernoulli(0.55) || live_a.size() < 6) {
        live_a.emplace_back(maintained.AddAUser(vec), vec);
      } else {
        const auto pick = static_cast<size_t>(rng.Below(live_a.size()));
        ASSERT_TRUE(maintained.RemoveAUser(live_a[pick].first));
        live_a.erase(live_a.begin() + static_cast<ptrdiff_t>(pick));
      }
      if (rng.Bernoulli(0.6) || handles.empty()) {
        std::vector<Count> b(3);
        for (auto& v : b) v = static_cast<Count>(rng.Below(7));
        handles.push_back(maintained.AddUser(b));
        b_vectors.push_back(b);
      } else {
        const auto pick = static_cast<size_t>(rng.Below(handles.size()));
        ASSERT_TRUE(maintained.RemoveUser(handles[pick]));
        handles.erase(handles.begin() + static_cast<ptrdiff_t>(pick));
        b_vectors.erase(b_vectors.begin() + static_cast<ptrdiff_t>(pick));
      }
    }

    // From-scratch rebuild on the post-churn A, live B re-added in
    // handle order — the exact construction the quiesce-time session
    // rebuild performs.
    Community a2(3);
    for (const auto& [id, vec] : live_a) a2.AddUser(vec);
    IncrementalCsj rebuilt(a2, options);
    for (const auto& vec : b_vectors) (void)rebuilt.AddUser(vec);

    ASSERT_EQ(maintained.live_a_users(), live_a.size());
    ASSERT_EQ(rebuilt.live_a_users(), live_a.size());
    ASSERT_EQ(maintained.live_users(), rebuilt.live_users());
    ASSERT_EQ(maintained.matched_pairs(), rebuilt.matched_pairs())
        << "round " << round << ": maintained matching size diverged from "
        << "the from-scratch rebuild";
    const double maintained_sim = maintained.Similarity();
    const double rebuilt_sim = rebuilt.Similarity();
    ASSERT_EQ(maintained_sim, rebuilt_sim)
        << "round " << round << ": similarity bits diverged";
    ASSERT_EQ(maintained.SizesAdmissible(), rebuilt.SizesAdmissible());

    // Both must sit on the true maximum.
    std::vector<MatchedPair> edges;
    for (uint32_t b = 0; b < b_vectors.size(); ++b) {
      for (uint32_t j = 0; j < live_a.size(); ++j) {
        if (EpsilonMatches(b_vectors[b], live_a[j].second, options.eps)) {
          edges.push_back(MatchedPair{b, j});
        }
      }
    }
    ASSERT_EQ(maintained.matched_pairs(),
              matching::HopcroftKarp(edges).size())
        << "round " << round << ": not a maximum matching";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ASideRebuildDifferential,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

TEST(IncrementalCsjTest, MatchedPairsAreValidAndOneToOne) {
  util::Rng rng(42);
  const Community a = RandomCommunity(5, 60, 6, 99);
  JoinOptions options;
  options.eps = 1;
  IncrementalCsj csj(a, options);

  std::vector<IncrementalCsj::Handle> handles;
  std::vector<std::vector<Count>> vectors;
  for (int i = 0; i < 50; ++i) {
    std::vector<Count> vec(5);
    const UserId src = static_cast<UserId>(rng.Below(a.size()));
    vec.assign(a.User(src).begin(), a.User(src).end());
    handles.push_back(csj.AddUser(vec));
    vectors.push_back(vec);
  }
  std::vector<bool> a_used(a.size(), false);
  uint32_t matched = 0;
  for (size_t i = 0; i < handles.size(); ++i) {
    const auto match = csj.MatchOf(handles[i]);
    if (!match.has_value()) continue;
    ++matched;
    EXPECT_FALSE(a_used[*match]) << "A user matched twice";
    a_used[*match] = true;
    EXPECT_TRUE(EpsilonMatches(vectors[i], a.User(*match), options.eps));
  }
  EXPECT_EQ(matched, csj.matched_pairs());
}

}  // namespace
}  // namespace csj::incremental
