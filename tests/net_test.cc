// The binary wire protocol and the loopback serving stack. Decoder unit
// tests cover the hostile-input surface (bad magic/version/type, an
// oversized length prefix rejected before any body is buffered, garbage
// enum values, mid-frame EOF) and the roundtrip contracts (chunked
// feeds, multi-frame buffers, double BIT patterns surviving the wire).
// Loopback tests then prove the end-to-end identity — a top-k answered
// over TCP is byte-identical to the direct in-process query — plus
// admission control (kRejected frames for shed requests) and the
// drop-on-broken-framing connection policy.

#include <algorithm>
#include "net/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "service/server.h"
#include "service/workload.h"
#include "test_seed.h"

namespace csj::net {
namespace {

std::shared_ptr<const Community> MakeTestCommunity() {
  // 3 profile attributes, 4 users, non-trivial counters and a name.
  std::vector<Count> flat = {1, 0, 2, 3, 1, 0, 0, 5, 1, 2, 2, 2};
  return std::make_shared<const Community>(3, std::move(flat), "brand_x");
}

// ---------------------------------------------------------------------
// FrameDecoder: roundtrips.
// ---------------------------------------------------------------------

TEST(NetWire, RequestRoundtripSurvivesByteByByteFeed) {
  WireRequest request;
  request.kind = service::RequestKind::kTopK;
  request.k = 7;
  request.eps = 2;
  request.method = Method::kExMinMax;
  request.prescreen = true;
  request.use_bound_cutoff = false;
  request.prescreen_threshold = 0.125;
  request.deadline_seconds = 1.5;
  request.community = MakeTestCommunity();

  std::vector<uint8_t> bytes;
  EncodeRequestFrame(41, request, &bytes);

  // Worst-case TCP segmentation: one byte per Feed.
  FrameDecoder decoder;
  DecodedFrame frame;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(&bytes[i], 1);
    ASSERT_EQ(decoder.Next(&frame), WireStatus::kNeedMore);
  }
  decoder.Feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(decoder.Next(&frame), WireStatus::kOk);

  EXPECT_EQ(frame.type, FrameType::kRequest);
  EXPECT_EQ(frame.request_id, 41u);
  const WireRequest& decoded = frame.request;
  EXPECT_EQ(decoded.kind, request.kind);
  EXPECT_EQ(decoded.k, 7u);
  EXPECT_EQ(decoded.eps, 2u);
  EXPECT_EQ(decoded.method, Method::kExMinMax);
  EXPECT_TRUE(decoded.prescreen);
  EXPECT_FALSE(decoded.use_bound_cutoff);
  EXPECT_EQ(decoded.prescreen_threshold, 0.125);
  EXPECT_EQ(decoded.deadline_seconds, 1.5);
  ASSERT_NE(decoded.community, nullptr);
  EXPECT_EQ(decoded.community->d(), request.community->d());
  EXPECT_EQ(decoded.community->size(), request.community->size());
  EXPECT_EQ(decoded.community->name(), request.community->name());
  EXPECT_TRUE(std::ranges::equal(decoded.community->flat(), request.community->flat()));
  EXPECT_EQ(decoder.Finish(), WireStatus::kOk);
}

TEST(NetWire, ResponseRoundtripPreservesDoubleBits) {
  WireResponse response;
  response.status = service::ServeStatus::kOk;
  response.cache_hit = true;
  response.state_version = 17;
  response.sequence = 99;
  response.queue_seconds = 0.001;
  response.total_seconds = 0.25;
  // Similarities chosen so any decimal re-parse would change the bits.
  response.entries = {{5, 2, 0.1 + 0.2},
                      {9, 1, 1.0 / 3.0},
                      {2, 4, std::nextafter(0.5, 1.0)}};
  response.catalog_entries = 24;
  response.refined = 7;

  std::vector<uint8_t> bytes;
  EncodeResponseFrame(12, response, &bytes);

  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  DecodedFrame frame;
  ASSERT_EQ(decoder.Next(&frame), WireStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kResponse);
  EXPECT_EQ(frame.request_id, 12u);
  const WireResponse& decoded = frame.response;
  EXPECT_EQ(decoded.status, service::ServeStatus::kOk);
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_FALSE(decoded.deadline_expired);
  EXPECT_EQ(decoded.state_version, 17u);
  EXPECT_EQ(decoded.sequence, 99u);
  EXPECT_EQ(decoded.catalog_entries, 24u);
  EXPECT_EQ(decoded.refined, 7u);
  ASSERT_EQ(decoded.entries.size(), response.entries.size());
  for (size_t i = 0; i < response.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].id, response.entries[i].id);
    EXPECT_EQ(decoded.entries[i].version, response.entries[i].version);
    EXPECT_EQ(std::bit_cast<uint64_t>(decoded.entries[i].similarity),
              std::bit_cast<uint64_t>(response.entries[i].similarity));
  }
}

TEST(NetWire, MultipleFramesDecodeFromOneBuffer) {
  std::vector<uint8_t> bytes;
  WireRequest remove;
  remove.kind = service::RequestKind::kRemove;
  remove.id = 9;
  for (uint32_t id = 1; id <= 3; ++id) EncodeRequestFrame(id, remove, &bytes);

  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  DecodedFrame frame;
  for (uint32_t id = 1; id <= 3; ++id) {
    ASSERT_EQ(decoder.Next(&frame), WireStatus::kOk);
    EXPECT_EQ(frame.request_id, id);
    EXPECT_EQ(frame.request.kind, service::RequestKind::kRemove);
    EXPECT_EQ(frame.request.id, 9u);
  }
  EXPECT_EQ(decoder.Next(&frame), WireStatus::kNeedMore);
  EXPECT_EQ(decoder.frames_decoded(), 3u);
}

// ---------------------------------------------------------------------
// FrameDecoder: the hostile-input surface. Every framing error must be
// sticky: once the stream lost framing there is no resync.
// ---------------------------------------------------------------------

std::vector<uint8_t> ValidRemoveFrame(uint32_t request_id) {
  WireRequest remove;
  remove.kind = service::RequestKind::kRemove;
  remove.id = 1;
  std::vector<uint8_t> bytes;
  EncodeRequestFrame(request_id, remove, &bytes);
  return bytes;
}

TEST(NetWire, BadMagicPoisonsTheStream) {
  std::vector<uint8_t> bytes = ValidRemoveFrame(1);
  bytes[0] ^= 0xFF;
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  DecodedFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireStatus::kBadMagic);
  // Sticky: even a pristine frame fed afterwards must not decode.
  const std::vector<uint8_t> good = ValidRemoveFrame(2);
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&frame), WireStatus::kBadMagic);
  EXPECT_EQ(decoder.Finish(), WireStatus::kBadMagic);
}

TEST(NetWire, BadVersionAndTypeAndReservedRejected) {
  {
    std::vector<uint8_t> bytes = ValidRemoveFrame(1);
    bytes[4] = 99;  // protocol version
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    DecodedFrame frame;
    EXPECT_EQ(decoder.Next(&frame), WireStatus::kBadVersion);
  }
  {
    std::vector<uint8_t> bytes = ValidRemoveFrame(1);
    bytes[5] = 7;  // frame type: neither request nor response
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    DecodedFrame frame;
    EXPECT_EQ(decoder.Next(&frame), WireStatus::kBadFrameType);
  }
  {
    std::vector<uint8_t> bytes = ValidRemoveFrame(1);
    bytes[6] = 1;  // reserved header bytes must be zero
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    DecodedFrame frame;
    EXPECT_EQ(decoder.Next(&frame), WireStatus::kBadPayload);
  }
}

TEST(NetWire, OversizedLengthPrefixRejectedBeforeBuffering) {
  // A hand-crafted header claiming a 1 GiB payload: the decoder must
  // reject from the 16 header bytes alone, never waiting for (or
  // allocating) the body.
  std::vector<uint8_t> bytes = ValidRemoveFrame(1);
  bytes.resize(kFrameHeaderBytes);
  const uint32_t huge = 1u << 30;  // little-endian by spec
  bytes[12] = static_cast<uint8_t>(huge);
  bytes[13] = static_cast<uint8_t>(huge >> 8);
  bytes[14] = static_cast<uint8_t>(huge >> 16);
  bytes[15] = static_cast<uint8_t>(huge >> 24);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  DecodedFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireStatus::kOversized);
}

TEST(NetWire, GarbageMethodIsBadPayload) {
  WireRequest request;
  request.kind = service::RequestKind::kTopK;
  request.community = MakeTestCommunity();
  std::vector<uint8_t> bytes;
  EncodeRequestFrame(1, request, &bytes);
  // Payload layout: u8 kind, u8 flags, u16 method — patch the method to
  // an id no Method enum names.
  bytes[kFrameHeaderBytes + 2] = 0xFF;
  bytes[kFrameHeaderBytes + 3] = 0xFF;
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  DecodedFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireStatus::kBadPayload);
}

TEST(NetWire, HugeNameLengthRejectedBeforeAllocating) {
  // The community name length is an untrusted u32. A tiny frame claiming
  // a 4 GiB name must be refused from the bytes actually buffered —
  // BEFORE sizing the string — or 16 header bytes plus a short payload
  // would buy the peer a multi-gigabyte zero-fill.
  WireRequest request;
  request.kind = service::RequestKind::kTopK;
  request.community = MakeTestCommunity();
  std::vector<uint8_t> bytes;
  EncodeRequestFrame(1, request, &bytes);
  // Payload layout up to the name: u8 kind, u8 flags, u16 method, u32 k,
  // u32 eps, u64 id, f64 deadline, f64 threshold (36 bytes), then u32 d,
  // u32 users, u32 name_bytes.
  const size_t name_bytes_offset = kFrameHeaderBytes + 36 + 4 + 4;
  for (size_t i = 0; i < 4; ++i) bytes[name_bytes_offset + i] = 0xFF;
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  DecodedFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireStatus::kBadPayload);
}

TEST(NetWire, TopKAboveResponseCapIsBadPayload) {
  // k bounds the response entry count; above kMaxTopKEntries the
  // response could not be encoded within kMaxPayloadBytes, so the
  // REQUEST must already be refused at decode.
  WireRequest request;
  request.kind = service::RequestKind::kTopK;
  request.community = MakeTestCommunity();
  request.k = kMaxTopKEntries + 1;
  std::vector<uint8_t> bytes;
  EncodeRequestFrame(1, request, &bytes);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  DecodedFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireStatus::kBadPayload);

  // Exactly at the cap decodes fine: the bound is the contract, not a
  // fuzzy safety margin.
  request.k = kMaxTopKEntries;
  bytes.clear();
  EncodeRequestFrame(2, request, &bytes);
  FrameDecoder ok_decoder;
  ok_decoder.Feed(bytes.data(), bytes.size());
  ASSERT_EQ(ok_decoder.Next(&frame), WireStatus::kOk);
  EXPECT_EQ(frame.request.k, kMaxTopKEntries);
}

TEST(NetWire, CounterLengthMismatchIsBadPayload) {
  WireRequest request;
  request.kind = service::RequestKind::kTopK;
  request.community = MakeTestCommunity();
  std::vector<uint8_t> bytes;
  EncodeRequestFrame(1, request, &bytes);
  // Drop the last 4 payload bytes and fix up the length prefix: the
  // (users, d) product no longer matches the counters actually present.
  bytes.resize(bytes.size() - sizeof(Count));
  const auto payload =
      static_cast<uint32_t>(bytes.size() - kFrameHeaderBytes);
  bytes[12] = static_cast<uint8_t>(payload);
  bytes[13] = static_cast<uint8_t>(payload >> 8);
  bytes[14] = static_cast<uint8_t>(payload >> 16);
  bytes[15] = static_cast<uint8_t>(payload >> 24);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  DecodedFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireStatus::kBadPayload);
}

TEST(NetWire, ShortReadThenEofIsTruncated) {
  const std::vector<uint8_t> bytes = ValidRemoveFrame(1);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size() / 2);
  DecodedFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireStatus::kNeedMore);
  // The peer hung up mid-frame.
  EXPECT_EQ(decoder.Finish(), WireStatus::kTruncated);
  EXPECT_EQ(decoder.Finish(), WireStatus::kTruncated);  // sticky
}

// ---------------------------------------------------------------------
// Loopback: NetServer + NetClient against a live CsjServer.
// ---------------------------------------------------------------------

service::WorkloadOptions LoopbackWorkload(uint64_t seed) {
  service::WorkloadOptions options;
  options.catalog_size = 10;
  options.community_size = 50;
  options.upsert_fraction = 0.0;
  options.seed = seed;
  return options;
}

int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

TEST(NetLoopback, TopKOverTcpIsByteIdenticalToDirectQuery) {
  const service::ServeWorkload workload(
      LoopbackWorkload(csj::testing::TestSeed(0x4E7)));
  service::CsjServer server(service::CsjServer::Options{});
  workload.Populate(&server);

  NetServer::Options net_options;
  NetServer net_server(&server, net_options);
  std::unique_ptr<NetClient> client =
      NetClient::Connect("127.0.0.1", net_server.port());
  ASSERT_NE(client, nullptr);

  service::TopKOptions topk;
  topk.k = 5;
  for (const std::shared_ptr<const Community>& community :
       workload.communities()) {
    const service::TopKResult reference =
        server.topk().Query(*community, topk);

    WireRequest request;
    request.kind = service::RequestKind::kTopK;
    request.k = 5;
    request.community = community;
    WireResponse response;
    ASSERT_TRUE(client->Call(request, &response));
    ASSERT_EQ(response.status, service::ServeStatus::kOk);
    // Byte identity across serialization: same (id, version) and the
    // same similarity BIT patterns (TopKEntry::operator== compares
    // doubles by value; the bit check below is the stronger claim).
    ASSERT_EQ(response.entries.size(), reference.entries.size());
    for (size_t i = 0; i < reference.entries.size(); ++i) {
      EXPECT_EQ(response.entries[i].id, reference.entries[i].id);
      EXPECT_EQ(response.entries[i].version, reference.entries[i].version);
      EXPECT_EQ(std::bit_cast<uint64_t>(response.entries[i].similarity),
                std::bit_cast<uint64_t>(reference.entries[i].similarity));
    }
    EXPECT_NE(response.state_version, 0u);
  }

  net_server.Shutdown();
  const NetServer::Stats stats = net_server.GetStats();
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.frames_decoded, workload.communities().size());
  EXPECT_EQ(stats.frames_sent, workload.communities().size());
}

TEST(NetLoopback, UpsertAndRemoveOverTcp) {
  const service::ServeWorkload workload(
      LoopbackWorkload(csj::testing::TestSeed(0x4E8)));
  service::CsjServer server(service::CsjServer::Options{});
  workload.Populate(&server);

  NetServer net_server(&server, NetServer::Options{});
  std::unique_ptr<NetClient> client =
      NetClient::Connect("127.0.0.1", net_server.port());
  ASSERT_NE(client, nullptr);

  // Upsert over entry 3: a new version must be installed.
  WireRequest upsert;
  upsert.kind = service::RequestKind::kUpsert;
  upsert.id = 3;
  upsert.community = workload.communities()[0];
  WireResponse response;
  ASSERT_TRUE(client->Call(upsert, &response));
  EXPECT_EQ(response.status, service::ServeStatus::kOk);
  const uint64_t first_version = response.version;
  EXPECT_GT(first_version, 0u);
  ASSERT_TRUE(client->Call(upsert, &response));
  EXPECT_EQ(response.status, service::ServeStatus::kOk);
  EXPECT_GT(response.version, first_version);

  // Remove an absent id: kNotFound, connection stays healthy.
  WireRequest remove;
  remove.kind = service::RequestKind::kRemove;
  remove.id = 9999;
  ASSERT_TRUE(client->Call(remove, &response));
  EXPECT_EQ(response.status, service::ServeStatus::kNotFound);

  // Remove a present id, then again: kOk then kNotFound.
  remove.id = 3;
  ASSERT_TRUE(client->Call(remove, &response));
  EXPECT_EQ(response.status, service::ServeStatus::kOk);
  ASSERT_TRUE(client->Call(remove, &response));
  EXPECT_EQ(response.status, service::ServeStatus::kNotFound);
}

TEST(NetLoopback, FullQueueAnswersRejectedFrames) {
  // Heavy queries + workers=1 + capacity=1: of 6 requests pipelined in
  // one write, at most 2 can be admitted (1 executing, 1 queued); the
  // rest must come back kRejected — admission control crosses the wire.
  service::WorkloadOptions workload_options;
  workload_options.catalog_size = 8;
  workload_options.community_size = 400;
  workload_options.upsert_fraction = 0.0;
  workload_options.seed = csj::testing::TestSeed(0x4E9);
  const service::ServeWorkload workload(workload_options);

  service::CsjServer::Options options;
  options.workers = 1;
  options.queue_capacity = 1;
  service::CsjServer server(options);
  workload.Populate(&server);

  NetServer net_server(&server, NetServer::Options{});
  const int fd = RawConnect(net_server.port());
  ASSERT_GE(fd, 0);

  constexpr uint32_t kRequests = 6;
  std::vector<uint8_t> bytes;
  for (uint32_t id = 1; id <= kRequests; ++id) {
    WireRequest request;
    request.kind = service::RequestKind::kTopK;
    request.k = 5;
    request.community = workload.communities()[id % 8];
    EncodeRequestFrame(id, request, &bytes);
  }
  ASSERT_TRUE(SendAll(fd, bytes));

  FrameDecoder decoder;
  uint32_t ok = 0;
  uint32_t rejected = 0;
  uint32_t received = 0;
  while (received < kRequests) {
    uint8_t chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "server closed before all responses arrived";
    decoder.Feed(chunk, static_cast<size_t>(n));
    DecodedFrame frame;
    WireStatus status;
    while ((status = decoder.Next(&frame)) == WireStatus::kOk) {
      ASSERT_EQ(frame.type, FrameType::kResponse);
      ++received;
      if (frame.response.status == service::ServeStatus::kOk) ++ok;
      if (frame.response.status == service::ServeStatus::kRejected) {
        ++rejected;
      }
    }
    ASSERT_EQ(status, WireStatus::kNeedMore);
  }
  ::close(fd);

  EXPECT_EQ(ok + rejected, kRequests);
  EXPECT_GE(ok, 1u);       // the executing request always completes
  EXPECT_GE(rejected, 4u); // at most 1 executing + 1 queued slip through
}

void ExpectConnectionDropped(int fd, NetServer* net_server) {
  // The server answers broken framing by closing the connection; recv
  // draining to EOF proves the drop, the stats counter names the cause.
  uint8_t chunk[256];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
  }
  ::close(fd);
  for (int spin = 0; spin < 100; ++spin) {
    if (net_server->GetStats().decode_errors >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(net_server->GetStats().decode_errors, 1u);
}

TEST(NetLoopback, GarbageStreamDropsTheConnection) {
  const service::ServeWorkload workload(
      LoopbackWorkload(csj::testing::TestSeed(0x4EA)));
  service::CsjServer server(service::CsjServer::Options{});
  workload.Populate(&server);
  NetServer net_server(&server, NetServer::Options{});

  const int fd = RawConnect(net_server.port());
  ASSERT_GE(fd, 0);
  const std::vector<uint8_t> garbage(64, 0xAB);
  ASSERT_TRUE(SendAll(fd, garbage));
  ExpectConnectionDropped(fd, &net_server);
}

TEST(NetLoopback, MalformedPayloadDropsTheConnection) {
  const service::ServeWorkload workload(
      LoopbackWorkload(csj::testing::TestSeed(0x4EB)));
  service::CsjServer server(service::CsjServer::Options{});
  workload.Populate(&server);
  NetServer net_server(&server, NetServer::Options{});

  const int fd = RawConnect(net_server.port());
  ASSERT_GE(fd, 0);
  WireRequest request;
  request.kind = service::RequestKind::kTopK;
  request.k = 5;
  request.community = MakeTestCommunity();
  std::vector<uint8_t> bytes;
  EncodeRequestFrame(1, request, &bytes);
  bytes[kFrameHeaderBytes + 2] = 0xFF;  // garbage method id
  bytes[kFrameHeaderBytes + 3] = 0xFF;
  ASSERT_TRUE(SendAll(fd, bytes));
  ExpectConnectionDropped(fd, &net_server);
}

}  // namespace
}  // namespace csj::net
