// Cross-method property sweeps (parameterized): the exact methods agree
// with a brute-force maximum-matching oracle, approximate methods never
// beat exact ones, and every method returns valid one-to-one eps-matched
// pairs. SuperEGO is held to the integer-domain oracle only on exact
// float grids (see superego_method_test.cc for the boundary-loss regime).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "core/method.h"
#include "matching/greedy.h"
#include "matching/hopcroft_karp.h"
#include "test_seed.h"
#include "util/rng.h"

namespace csj {
namespace {

struct SweepParams {
  uint64_t seed;
  Dim d;
  Epsilon eps;
  Count max_value;
  uint32_t size_b;
  uint32_t size_a;
  uint32_t parts;
};

std::string SweepName(const ::testing::TestParamInfo<SweepParams>& info) {
  const SweepParams& p = info.param;
  return "seed" + std::to_string(p.seed) + "_d" + std::to_string(p.d) +
         "_eps" + std::to_string(p.eps) + "_max" +
         std::to_string(p.max_value) + "_parts" + std::to_string(p.parts);
}

/// Communities dense enough that matches and contention both occur.
Community RandomCommunity(util::Rng& rng, Dim d, uint32_t n, Count max_value) {
  Community c(d);
  std::vector<Count> vec(d);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(max_value + 1));
    c.AddUser(vec);
  }
  return c;
}

std::vector<MatchedPair> BruteForceEdges(const Community& b,
                                         const Community& a, Epsilon eps) {
  std::vector<MatchedPair> edges;
  for (UserId ib = 0; ib < b.size(); ++ib) {
    for (UserId ia = 0; ia < a.size(); ++ia) {
      if (EpsilonMatches(b.User(ib), a.User(ia), eps)) {
        edges.push_back(MatchedPair{ib, ia});
      }
    }
  }
  return edges;
}

class MethodSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(MethodSweep, ExactMethodsReachTheMaximumMatching) {
  const SweepParams p = GetParam();
  util::Rng rng(testing::TestSeed(p.seed));
  const Community b = RandomCommunity(rng, p.d, p.size_b, p.max_value);
  const Community a = RandomCommunity(rng, p.d, p.size_a, p.max_value);
  const size_t oracle =
      matching::HopcroftKarp(BruteForceEdges(b, a, p.eps)).size();

  JoinOptions options;
  options.eps = p.eps;
  options.encoding_parts = p.parts;
  options.matcher = matching::MatcherKind::kMaxMatching;
  const JoinResult ex_baseline = RunMethod(Method::kExBaseline, b, a, options);
  const JoinResult ex_minmax = RunMethod(Method::kExMinMax, b, a, options);
  EXPECT_EQ(ex_baseline.pairs.size(), oracle);
  // Ex-MinMax runs the matcher per safe segment; segments are unions of
  // connected components, so per-segment maxima sum to the global maximum.
  EXPECT_EQ(ex_minmax.pairs.size(), oracle);
  // The integer-grid hybrid is exact in the integer domain too.
  const JoinResult ex_hybrid = RunMethod(Method::kExMinMaxEgo, b, a, options);
  EXPECT_EQ(ex_hybrid.pairs.size(), oracle);
}

TEST_P(MethodSweep, CsfStaysWithinOnePercentOfMaximum) {
  const SweepParams p = GetParam();
  util::Rng rng(testing::TestSeed(p.seed + 1000));
  const Community b = RandomCommunity(rng, p.d, p.size_b, p.max_value);
  const Community a = RandomCommunity(rng, p.d, p.size_a, p.max_value);
  const size_t oracle =
      matching::HopcroftKarp(BruteForceEdges(b, a, p.eps)).size();

  JoinOptions options;
  options.eps = p.eps;
  options.encoding_parts = p.parts;
  options.matcher = matching::MatcherKind::kCsf;
  const size_t baseline_csf =
      RunMethod(Method::kExBaseline, b, a, options).pairs.size();
  const size_t minmax_csf =
      RunMethod(Method::kExMinMax, b, a, options).pairs.size();
  EXPECT_LE(baseline_csf, oracle);
  EXPECT_LE(minmax_csf, oracle);
  // CSF is near-optimal; also Tables 4/6/8/10's observation that both
  // exact methods report the same similarity.
  EXPECT_GE(baseline_csf + 2, oracle);
  EXPECT_GE(minmax_csf + 2, oracle);
}

TEST_P(MethodSweep, ApproximateNeverBeatsExact) {
  const SweepParams p = GetParam();
  util::Rng rng(testing::TestSeed(p.seed + 2000));
  const Community b = RandomCommunity(rng, p.d, p.size_b, p.max_value);
  const Community a = RandomCommunity(rng, p.d, p.size_a, p.max_value);

  JoinOptions options;
  options.eps = p.eps;
  options.encoding_parts = p.parts;
  options.matcher = matching::MatcherKind::kMaxMatching;
  const size_t exact =
      RunMethod(Method::kExBaseline, b, a, options).pairs.size();
  EXPECT_LE(RunMethod(Method::kApBaseline, b, a, options).pairs.size(), exact);
  EXPECT_LE(RunMethod(Method::kApMinMax, b, a, options).pairs.size(), exact);
}

TEST_P(MethodSweep, PairsAreValidOneToOneEpsMatches) {
  const SweepParams p = GetParam();
  util::Rng rng(testing::TestSeed(p.seed + 3000));
  const Community b = RandomCommunity(rng, p.d, p.size_b, p.max_value);
  const Community a = RandomCommunity(rng, p.d, p.size_a, p.max_value);

  JoinOptions options;
  options.eps = p.eps;
  options.encoding_parts = p.parts;
  for (const Method method :
       {Method::kApBaseline, Method::kExBaseline, Method::kApMinMax,
        Method::kExMinMax, Method::kApMinMaxEgo, Method::kExMinMaxEgo}) {
    const JoinResult result = RunMethod(method, b, a, options);
    EXPECT_TRUE(matching::IsOneToOne(result.pairs)) << MethodName(method);
    for (const MatchedPair& pair : result.pairs) {
      ASSERT_LT(pair.b, b.size());
      ASSERT_LT(pair.a, a.size());
      EXPECT_TRUE(EpsilonMatches(b.User(pair.b), a.User(pair.a), p.eps))
          << MethodName(method);
    }
    const double sim = result.Similarity();
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
}

TEST_P(MethodSweep, MinMaxAgreesWithBaselineSemantics) {
  // Ap-MinMax and Ap-Baseline scan in different orders, so their pair sets
  // differ, but both are maximal greedy matchings over the same candidate
  // graph; a maximal matching is at least half the maximum.
  const SweepParams p = GetParam();
  util::Rng rng(testing::TestSeed(p.seed + 4000));
  const Community b = RandomCommunity(rng, p.d, p.size_b, p.max_value);
  const Community a = RandomCommunity(rng, p.d, p.size_a, p.max_value);
  const size_t oracle =
      matching::HopcroftKarp(BruteForceEdges(b, a, p.eps)).size();

  JoinOptions options;
  options.eps = p.eps;
  options.encoding_parts = p.parts;
  for (const Method method : {Method::kApBaseline, Method::kApMinMax}) {
    const size_t found = RunMethod(method, b, a, options).pairs.size();
    EXPECT_GE(2 * found, oracle) << MethodName(method);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MethodSweep,
    ::testing::Values(
        SweepParams{1, 1, 1, 6, 30, 40, 1},
        SweepParams{2, 2, 1, 8, 50, 60, 2},
        SweepParams{3, 3, 2, 10, 60, 80, 2},
        SweepParams{4, 5, 1, 6, 80, 100, 4},
        SweepParams{5, 8, 3, 20, 70, 90, 4},
        SweepParams{6, 27, 1, 4, 60, 90, 4},
        SweepParams{7, 27, 2, 6, 100, 120, 4},
        SweepParams{8, 27, 1, 4, 90, 95, 8},
        SweepParams{9, 16, 4, 30, 50, 100, 13},
        SweepParams{10, 4, 0, 3, 80, 80, 2},
        SweepParams{11, 27, 1, 3, 120, 130, 27},
        SweepParams{12, 2, 5, 12, 100, 140, 2},
        SweepParams{13, 64, 2, 8, 80, 110, 4},
        SweepParams{14, 27, 1, 5, 150, 150, 4},
        SweepParams{15, 6, 10, 40, 120, 160, 3},
        SweepParams{16, 1, 3, 9, 200, 220, 1}),
    SweepName);

}  // namespace
}  // namespace csj
