// Ablation for the CSF matcher: how close does the paper's
// CoverSmallestFirst greedy get to a provably maximum matching
// (Hopcroft-Karp), and at what cost? Runs on the candidate graphs of
// several case-study couples from both dataset families.

#include <cstdio>
#include <vector>

#include "core/baseline.h"
#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "data/case_studies.h"
#include "matching/csf.h"
#include "matching/hopcroft_karp.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

std::vector<csj::MatchedPair> CollectCandidates(const csj::Community& b,
                                                const csj::Community& a,
                                                csj::Epsilon eps) {
  std::vector<csj::MatchedPair> edges;
  for (csj::UserId ib = 0; ib < b.size(); ++ib) {
    for (csj::UserId ia = 0; ia < a.size(); ++ia) {
      if (csj::EpsilonMatches(b.User(ib), a.User(ia), eps)) {
        edges.push_back(csj::MatchedPair{ib, ia});
      }
    }
  }
  return edges;
}

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("scale", "32", "divide the paper's community sizes");
  flags.Define("seed", "2024", "master seed");
  if (!flags.Parse(argc, argv)) return 1;
  const auto scale = static_cast<uint32_t>(flags.GetInt("scale"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::printf(
      "Ablation: CSF (CoverSmallestFirst) vs Hopcroft-Karp maximum "
      "matching on case-study candidate graphs (scale 1/%u)\n\n",
      scale);
  csj::util::TablePrinter table({"cID", "family", "candidate edges",
                                 "CSF matches", "CSF time", "HK matches",
                                 "HK time", "CSF/HK"});
  for (const size_t index : {0ul, 2ul, 4ul, 12ul, 18ul}) {
    for (const auto family : {csj::data::DatasetFamily::kVk,
                              csj::data::DatasetFamily::kSynthetic}) {
      const csj::data::CaseStudyCouple& study =
          csj::data::AllCaseStudies()[index];
      const csj::data::Couple couple = csj::data::MaterializeCouple(
          study, family, scale == 0 ? 1 : scale, seed);
      const csj::Epsilon eps = family == csj::data::DatasetFamily::kVk
                                   ? csj::data::kVkEpsilon
                                   : csj::data::kSyntheticEpsilon;
      const auto edges = CollectCandidates(couple.b, couple.a, eps);

      csj::util::Timer csf_timer;
      const auto csf = csj::matching::CoverSmallestFirst(edges);
      const double csf_seconds = csf_timer.Seconds();

      csj::util::Timer hk_timer;
      const auto hk = csj::matching::HopcroftKarp(edges);
      const double hk_seconds = hk_timer.Seconds();

      const double ratio =
          hk.empty() ? 1.0
                     : static_cast<double>(csf.size()) /
                           static_cast<double>(hk.size());
      table.AddRow(
          {std::to_string(study.cid),
           family == csj::data::DatasetFamily::kVk ? "VK" : "Synthetic",
           csj::util::WithCommas(edges.size()),
           csj::util::WithCommas(csf.size()),
           csj::util::SecondsCell(csf_seconds),
           csj::util::WithCommas(hk.size()),
           csj::util::SecondsCell(hk_seconds), csj::util::Percent(ratio)});
    }
  }
  table.Print(stdout);
  std::printf(
      "\nCSF is the paper's exact-method matcher; this ablation verifies "
      "it tracks the true maximum (ratio ~100%%) at comparable cost, "
      "justifying its use over an optimal matcher.\n");
  return 0;
}
