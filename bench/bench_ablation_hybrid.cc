// Ablation for the paper's §6.2 claim that a combined MinMax-SuperEGO
// would beat SuperEGO if it could run on non-normalized data. Compares,
// per VK-family couple:
//   Ex-MinMax        — the paper's best exact method (sorted-buffer scan);
//   Ex-SuperEGO      — normalized float grid (fast but lossy on VK data);
//   IntEGO (plain)   — SuperEGO recursion on the INTEGER grid, plain
//                      nested-loop leaves (exact accuracy, no encoding);
//   Ex-MinMaxEGO     — the hybrid: integer grid + MinMax-encoded leaves.
// The hybrid should match Ex-MinMax's accuracy exactly while approaching
// Ex-SuperEGO's speed, and the encoded leaf should beat the plain leaf.

#include <cstdio>

#include "core/method.h"
#include "data/case_studies.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("scale", "16", "divide the paper's community sizes");
  flags.Define("seed", "2024", "master seed");
  if (!flags.Parse(argc, argv)) return 1;
  const auto scale = static_cast<uint32_t>(flags.GetInt("scale"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::printf(
      "Ablation: the MinMax-SuperEGO hybrid of paper §6.2 (VK family, "
      "scale 1/%u, eps = %u)\n\n",
      scale == 0 ? 1 : scale, csj::data::kVkEpsilon);

  csj::util::TablePrinter table({"cID", "Ex-MinMax", "Ex-SuperEGO",
                                 "IntEGO plain leaf", "Ex-MinMaxEGO",
                                 "size_B | size_A"});
  for (const csj::data::CaseStudyCouple& study :
       csj::data::DifferentCategoryCouples()) {
    const csj::data::Couple couple = csj::data::MaterializeCouple(
        study, csj::data::DatasetFamily::kVk, scale == 0 ? 1 : scale, seed);

    csj::JoinOptions options;
    options.eps = csj::data::kVkEpsilon;
    options.superego_norm_max = csj::data::kVkMaxCounter;

    auto cell = [&](csj::Method method, bool encoded_leaf) {
      options.hybrid_encoded_leaf = encoded_leaf;
      const csj::JoinResult result =
          RunMethod(method, couple.b, couple.a, options);
      return csj::util::Percent(result.Similarity()) + " " +
             csj::util::SecondsCell(result.stats.seconds);
    };

    table.AddRow({std::to_string(study.cid),
                  cell(csj::Method::kExMinMax, true),
                  cell(csj::Method::kExSuperEgo, true),
                  cell(csj::Method::kExMinMaxEgo, false),
                  cell(csj::Method::kExMinMaxEgo, true),
                  csj::util::WithCommas(couple.b.size()) + " | " +
                      csj::util::WithCommas(couple.a.size())});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape: the two integer-grid columns reproduce "
      "Ex-MinMax's similarity exactly (no normalization loss) at "
      "SuperEGO-like speed — the accuracy half of §6.2's claim. The "
      "encoded leaf filter does cut d-dimensional comparisons (see "
      "no_overlap stats), but inside EGO leaves the early-exiting "
      "comparison is already so cheap that the filter does not buy wall "
      "time at these leaf sizes; MinMax's real advantage comes from its "
      "sorted-buffer MIN/MAX pruning, which the recursion replaces.\n");
  return 0;
}
