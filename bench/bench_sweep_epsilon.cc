// Epsilon sensitivity sweep (extension experiment): the paper fixes eps
// at its "minimum meaningful" values (1 for VK, 15000 for Synthetic) and
// argues CSJ thereby avoids classic eps-join selectivity tuning. This
// bench quantifies what happens as eps grows: similarity inflates with
// accidental matches and every method slows down as the filters lose
// selectivity — SuperEGO's EGO strategy degrading fastest (the paper's
// Table 7 observation about the higher Synthetic eps).

#include <cstdio>

#include "core/method.h"
#include "data/case_studies.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/table_printer.h"

namespace {

void SweepFamily(csj::data::DatasetFamily family, uint32_t scale,
                 uint64_t seed, std::initializer_list<csj::Epsilon> epsilons) {
  const bool is_vk = family == csj::data::DatasetFamily::kVk;
  const csj::data::CaseStudyCouple& study = csj::data::AllCaseStudies()[0];
  const csj::data::Couple couple =
      csj::data::MaterializeCouple(study, family, scale, seed);

  std::printf("%s family, cID 1 (|B|=%s, |A|=%s), planted at eps = %u:\n",
              is_vk ? "VK" : "Synthetic",
              csj::util::WithCommas(couple.b.size()).c_str(),
              csj::util::WithCommas(couple.a.size()).c_str(),
              is_vk ? csj::data::kVkEpsilon : csj::data::kSyntheticEpsilon);

  csj::util::TablePrinter table(
      {"eps", "Ex-MinMax", "Ex-SuperEGO", "Ex-MinMaxEGO", "candidates"});
  for (const csj::Epsilon eps : epsilons) {
    csj::JoinOptions options;
    options.eps = eps;
    options.superego_norm_max = is_vk ? csj::data::kVkMaxCounter
                                      : csj::data::kSyntheticMaxCounter;
    std::vector<std::string> row = {csj::util::WithCommas(eps)};
    uint64_t candidates = 0;
    for (const csj::Method method :
         {csj::Method::kExMinMax, csj::Method::kExSuperEgo,
          csj::Method::kExMinMaxEgo}) {
      const csj::JoinResult result =
          RunMethod(method, couple.b, couple.a, options);
      row.push_back(csj::util::Percent(result.Similarity()) + " " +
                    csj::util::SecondsCell(result.stats.seconds));
      if (method == csj::Method::kExMinMax) {
        candidates = result.stats.candidate_pairs;
      }
    }
    row.push_back(csj::util::WithCommas(candidates));
    table.AddRow(std::move(row));
  }
  table.Print(stdout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("scale", "32", "divide the paper's community sizes");
  flags.Define("seed", "2024", "master seed");
  if (!flags.Parse(argc, argv)) return 1;
  const auto scale = static_cast<uint32_t>(flags.GetInt("scale"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::printf("Extension: epsilon sensitivity sweep (scale 1/%u)\n\n",
              scale == 0 ? 1 : scale);
  SweepFamily(csj::data::DatasetFamily::kVk, scale == 0 ? 1 : scale, seed,
              {1, 2, 4, 8});
  SweepFamily(csj::data::DatasetFamily::kSynthetic, scale == 0 ? 1 : scale,
              seed, {5000, 15000, 30000, 60000});
  std::printf(
      "Expected shape: at the paper's eps the similarity equals the "
      "planted target; growing eps multiplies the candidate count and "
      "every method's runtime as the filters lose selectivity, until "
      "accidental matches eventually inflate the similarity itself. Note "
      "how Ex-SuperEGO's VK accuracy loss exists ONLY at eps = 1 — the "
      "regime where integer counters put true pairs exactly on the "
      "float32 boundary — which is precisely the eps the paper says CSJ "
      "should run at.\n");
  return 0;
}
