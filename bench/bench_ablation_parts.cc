// Ablation for the paper's §4 design claim that a 4-part encoding is the
// best time/space tradeoff: sweeps the number of encoding parts on a
// VK-family couple and reports Ex-MinMax / Ap-MinMax runtime, how much
// work the part filter saved (NO OVERLAP count vs full d-dimensional
// comparisons), and the extra memory the parts cost.

#include <cstdio>

#include "core/method.h"
#include "data/case_studies.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("scale", "16", "divide the paper's community sizes");
  flags.Define("seed", "2024", "master seed");
  flags.Define("cid", "2", "which case-study couple to ablate on (1-20)");
  if (!flags.Parse(argc, argv)) return 1;
  const auto scale = static_cast<uint32_t>(flags.GetInt("scale"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const auto cid = static_cast<size_t>(flags.GetInt("cid"));
  if (cid < 1 || cid > 20) {
    std::fprintf(stderr, "--cid must be in [1, 20]\n");
    return 1;
  }

  const csj::data::CaseStudyCouple& study =
      csj::data::AllCaseStudies()[cid - 1];
  const csj::data::Couple couple = csj::data::MaterializeCouple(
      study, csj::data::DatasetFamily::kVk, scale == 0 ? 1 : scale, seed);

  std::printf(
      "Ablation: MinMax encoding parts sweep on cID %zu (VK family, "
      "|B|=%s, |A|=%s, eps=%u)\n\n",
      cid, csj::util::WithCommas(couple.b.size()).c_str(),
      csj::util::WithCommas(couple.a.size()).c_str(), csj::data::kVkEpsilon);

  csj::util::TablePrinter table({"parts", "Ex-MinMax", "Ap-MinMax",
                                 "similarity", "no_overlap prunes",
                                 "d-dim compares", "bytes/user"});
  for (const uint32_t parts : {1u, 2u, 4u, 8u, 13u, 27u}) {
    csj::JoinOptions options;
    options.eps = csj::data::kVkEpsilon;
    options.encoding_parts = parts;
    const csj::JoinResult ex =
        RunMethod(csj::Method::kExMinMax, couple.b, couple.a, options);
    const csj::JoinResult ap =
        RunMethod(csj::Method::kApMinMax, couple.b, couple.a, options);
    // Encd_B stores parts sums (8B each); Encd_A stores lo+hi per part.
    const uint64_t bytes_per_user = 8ULL * parts * 3;
    table.AddRow({std::to_string(parts),
                  csj::util::SecondsCell(ex.stats.seconds),
                  csj::util::SecondsCell(ap.stats.seconds),
                  csj::util::Percent(ex.Similarity()),
                  csj::util::WithCommas(ex.stats.no_overlaps),
                  csj::util::WithCommas(ex.stats.dimension_compares),
                  std::to_string(bytes_per_user)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape (paper §4): few parts => weak filtering (more "
      "d-dim compares), many parts => more memory and filter time for "
      "diminishing pruning; 4 is the sweet spot.\n");
  return 0;
}
