#ifndef CSJ_BENCH_COMMON_HARNESS_H_
#define CSJ_BENCH_COMMON_HARNESS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/method.h"
#include "data/case_studies.h"
#include "util/flags.h"

namespace csj::bench {

/// Shared configuration of the paper-table benches.
///
/// `scale` divides the paper's community sizes: the paper's testbed spends
/// hours per table (Table 4's cID 5 alone is 8220 s for Ex-Baseline); the
/// default of 16 reduces every couple by 16x (~256x less nested-loop work)
/// so a full table regenerates in about a minute while preserving who wins
/// and by roughly what factor. Run with --scale 1 to reproduce the paper's
/// full sizes.
struct BenchConfig {
  uint32_t scale = 16;
  uint64_t seed = 2024;
  bool run_baseline = true;  ///< Ex-Baseline dominates runtime; skippable
};

/// Declares the common flags (--scale, --seed, --skip_baseline) on
/// `flags`, parses argv, and fills `config`. Returns false when the run
/// should stop (--help or a parse error).
bool ParseBenchConfig(int argc, char** argv, util::Flags* flags,
                      BenchConfig* config);

/// Prints one of the paper's method-comparison tables (the layout of
/// Tables 3-10): one row per couple with similarity and execution time per
/// method, plus the scaled community sizes. `methods` is the approximate
/// or the exact trio.
void RunMethodTable(const std::string& title,
                    std::span<const data::CaseStudyCouple> couples,
                    data::DatasetFamily family,
                    std::span<const Method> methods,
                    const BenchConfig& config);

/// The paper's approximate / exact method trios, in table column order.
std::span<const Method> ApproximateTrio();
std::span<const Method> ExactTrio();

}  // namespace csj::bench

#endif  // CSJ_BENCH_COMMON_HARNESS_H_
