#include "common/harness.h"

#include <cstdio>

#include "core/similarity.h"
#include "data/categories.h"
#include "util/format.h"
#include "util/table_printer.h"

namespace csj::bench {

namespace {

constexpr Method kApproximate[] = {Method::kApBaseline, Method::kApMinMax,
                                   Method::kApSuperEgo};
constexpr Method kExact[] = {Method::kExBaseline, Method::kExMinMax,
                             Method::kExSuperEgo};

}  // namespace

std::span<const Method> ApproximateTrio() { return kApproximate; }
std::span<const Method> ExactTrio() { return kExact; }

bool ParseBenchConfig(int argc, char** argv, util::Flags* flags,
                      BenchConfig* config) {
  flags->Define("scale", "16",
                "divide the paper's community sizes by this factor "
                "(1 = full paper sizes)");
  flags->Define("seed", "2024", "master seed for dataset generation");
  flags->Define("skip_baseline", "false",
                "skip the (slowest) Baseline column");
  if (!flags->Parse(argc, argv)) return false;
  config->scale = static_cast<uint32_t>(flags->GetInt("scale"));
  config->seed = static_cast<uint64_t>(flags->GetInt("seed"));
  config->run_baseline = !flags->GetBool("skip_baseline");
  if (config->scale == 0) config->scale = 1;
  return true;
}

void RunMethodTable(const std::string& title,
                    std::span<const data::CaseStudyCouple> couples,
                    data::DatasetFamily family,
                    std::span<const Method> methods,
                    const BenchConfig& config) {
  const bool is_vk = family == data::DatasetFamily::kVk;
  std::printf("%s\n", title.c_str());
  std::printf("(scale 1/%u of the paper's community sizes; eps = %u)\n",
              config.scale,
              is_vk ? data::kVkEpsilon : data::kSyntheticEpsilon);

  std::vector<std::string> header = {"cID", "Categories (B | A)"};
  for (const Method method : methods) header.emplace_back(MethodName(method));
  header.emplace_back("size_B | size_A");
  util::TablePrinter table(std::move(header));

  JoinOptions options;
  options.eps = is_vk ? data::kVkEpsilon : data::kSyntheticEpsilon;
  options.superego_norm_max =
      is_vk ? data::kVkMaxCounter : data::kSyntheticMaxCounter;

  for (const data::CaseStudyCouple& study : couples) {
    const data::Couple couple =
        data::MaterializeCouple(study, family, config.scale, config.seed);
    std::vector<std::string> row = {
        std::to_string(study.cid),
        std::string(data::CategoryName(study.category_b)) + " | " +
            data::CategoryName(study.category_a)};
    for (const Method method : methods) {
      const bool is_baseline = method == Method::kApBaseline ||
                               method == Method::kExBaseline;
      if (is_baseline && !config.run_baseline) {
        row.emplace_back("skipped");
        continue;
      }
      const auto result =
          ComputeSimilarity(method, couple.b, couple.a, options);
      if (!result.has_value()) {
        row.emplace_back("inadmissible");
        continue;
      }
      row.push_back(util::Percent(result->Similarity()) + " " +
                    util::SecondsCell(result->stats.seconds));
    }
    row.push_back(util::WithCommas(couple.b.size()) + " | " +
                  util::WithCommas(couple.a.size()));
    table.AddRow(std::move(row));
  }
  table.Print(stdout);
  std::printf("\n");
}

}  // namespace csj::bench
