// Extension experiment: quantifies the paper §3's motivation for having
// BOTH approximate and exact methods — "the time-consuming exact method
// uses the results of fast approximate method as input to alleviate its
// total execution overhead."
//
// Part 1 — a pivot brand is compared against a catalog of candidate
// communities, three ways:
//   exact-everything:  Ex-MinMax on every candidate;
//   screen+refine:     Ap-SuperEGO screen (the fastest method, Tables 3/5),
//                      Ex-MinMax only on survivors;
//   bound+screen+refine: additionally discard candidates whose encoded-
//                      window upper bound cannot reach the threshold.
// All three must produce the same set of above-threshold communities.
//
// Part 2 — cross-couple parallelism AND encoding-cache reuse:
// ScreenAndRefineAllPairs over the catalog, first WITHOUT a cache at one
// thread (the reference arm), then with ONE process-wide EncodingCache
// shared by a timed warmup run and by every pipeline_threads setting in
// --pipeline_threads. Every run must produce a byte-identical report
// (entry order, indices, names, similarity bits — cache/timing totals
// excluded); the wall-clock ratio against the no-cache arm is the
// speedup, and each point reports its cache hit rate (the post-warmup
// sweep should sit at ~100%). Each thread setting runs twice and keeps
// the faster rep; per-phase (screen/refine) wall times ride along, and a
// "scaling_ok" flag asserts threads=4 is not slower than threads=1
// (within a 10% noise margin) so a cross-couple scaling regression shows
// up in BENCH_pipeline.json instead of staying buried.
//
// Part 3 — intra-join parallelism on ONE large couple (the shape the
// paper's Table 11 scalability study stresses, where cross-couple
// fan-out has nothing to fan out): Ex-MinMax at every --join_threads
// setting vs the serial run, asserting byte-identical results (pairs,
// similarity bits, event counters) and emitting "join_scaling_ok".
//
// Part 4 — deferred segment matching on the same couple: Ex-MinMax at
// every --matching_threads setting vs the serial inline-flush run (again
// byte-identical by contract, gated by "matching_scaling_ok"). Every
// timed point also reports the wall-seconds spent INSIDE the one-to-one
// matcher (JoinStats::matching_seconds), so the JSON separates "the
// matcher got faster" from "the scan got faster".
//
// --json writes the whole run as machine-readable JSON, stamped with
// --git_sha/--build_type.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/encoding_cache.h"
#include "core/method.h"
#include "core/similarity.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "pipeline/screening.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

std::vector<uint32_t> ParseThreadList(const std::string& list) {
  std::vector<uint32_t> values;
  size_t start = 0;
  while (start < list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string token = list.substr(start, comma - start);
    start = comma + 1;
    if (!token.empty()) {
      values.push_back(static_cast<uint32_t>(std::stoul(token)));
    }
  }
  if (values.empty()) values.push_back(1);
  return values;
}

/// Bit-exact report equality on everything the pipeline guarantees to be
/// deterministic (NOT the timing fields).
bool ReportsIdentical(const csj::pipeline::PipelineReport& x,
                      const csj::pipeline::PipelineReport& y) {
  if (x.entries.size() != y.entries.size() || x.screened != y.screened ||
      x.refined != y.refined || x.inadmissible != y.inadmissible ||
      x.bound_pruned != y.bound_pruned) {
    return false;
  }
  for (size_t i = 0; i < x.entries.size(); ++i) {
    const auto& ex = x.entries[i];
    const auto& ey = y.entries[i];
    if (ex.candidate_index != ey.candidate_index ||
        ex.candidate_name != ey.candidate_name || ex.refined != ey.refined ||
        std::memcmp(&ex.screened_similarity, &ey.screened_similarity,
                    sizeof(double)) != 0 ||
        std::memcmp(&ex.refined_similarity, &ey.refined_similarity,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

/// Bit-exact JoinResult equality: pairs, similarity bits and every event
/// counter (timing excluded) — what the intra-join deterministic-merge
/// contract promises.
bool JoinResultsIdentical(const csj::JoinResult& x, const csj::JoinResult& y) {
  const double sx = x.Similarity();
  const double sy = y.Similarity();
  return x.pairs == y.pairs && x.size_b == y.size_b &&
         std::memcmp(&sx, &sy, sizeof(double)) == 0 &&
         x.stats.min_prunes == y.stats.min_prunes &&
         x.stats.max_prunes == y.stats.max_prunes &&
         x.stats.no_overlaps == y.stats.no_overlaps &&
         x.stats.no_matches == y.stats.no_matches &&
         x.stats.matches == y.stats.matches &&
         x.stats.dimension_compares == y.stats.dimension_compares &&
         x.stats.candidate_pairs == y.stats.candidate_pairs &&
         x.stats.csf_flushes == y.stats.csf_flushes;
}

/// Scaling gate: the `high` thread setting must not be slower than the
/// `low` one beyond a 10% noise margin. Vacuously true when either
/// setting was not swept.
bool ScalingOk(double low_seconds, double high_seconds) {
  if (low_seconds <= 0.0 || high_seconds <= 0.0) return true;
  return high_seconds <= low_seconds * 1.10;
}

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("size", "4000", "users per community");
  flags.Define("candidates", "24", "catalog size");
  flags.Define("threshold", "0.15", "interesting-similarity threshold");
  flags.Define("seed", "2024", "dataset seed");
  flags.Define("pipeline_threads", "1,2,4,8",
               "comma list of pipeline_threads settings for the all-pairs "
               "sweep");
  flags.Define("allpairs", "12",
               "communities in the all-pairs sweep (0 disables part 2)");
  flags.Define("join_threads", "1,2,4,8",
               "comma list of join_threads settings for the single-couple "
               "sweep (empty disables part 3)");
  flags.Define("matching_threads", "1,2,4,8",
               "comma list of matching_threads settings for the deferred "
               "segment-matching sweep on the same couple");
  flags.Define("json", "", "write the results as JSON to this path");
  flags.Define("git_sha", "", "source revision stamped into the JSON");
  flags.Define("build_type", "", "CMake build type stamped into the JSON");
  if (!flags.Parse(argc, argv)) return 1;
  const auto size = static_cast<uint32_t>(flags.GetInt("size"));
  const auto num_candidates = static_cast<uint32_t>(flags.GetInt("candidates"));
  const double threshold = flags.GetDouble("threshold");
  csj::util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  // Pivot plus a catalog in which only a minority clears the threshold —
  // the realistic broadcast-recommendation shape.
  csj::data::VkLikeGenerator pivot_gen(csj::data::Category::kSport);
  const csj::Community pivot =
      csj::data::MakeCommunity(pivot_gen, size, rng, "pivot");

  std::vector<csj::Community> catalog;
  catalog.reserve(num_candidates);
  for (uint32_t i = 0; i < num_candidates; ++i) {
    const auto category = static_cast<csj::data::Category>(
        i % csj::data::kNumCategories);
    csj::data::VkLikeGenerator gen(category);
    csj::data::CoupleSpec spec;
    spec.size_b = size;
    spec.eps = 1;
    // A quarter of the catalog is genuinely similar; the rest is noise.
    spec.target_similarity = (i % 4 == 0) ? 0.18 + 0.02 * (i % 5) : 0.02;
    catalog.push_back(csj::data::PlantCommunityAgainst(pivot, gen, spec, rng));
    catalog.back().set_name("cand_" + std::to_string(i));
  }
  std::vector<const csj::Community*> candidates;
  for (const csj::Community& c : catalog) candidates.push_back(&c);

  csj::JoinOptions join;
  join.eps = 1;

  // Arm 1: exact everywhere.
  csj::util::Timer exact_timer;
  std::set<std::string> exact_winners;
  for (const csj::Community* c : candidates) {
    const auto result =
        csj::ComputeSimilarityAutoOrder(csj::Method::kExMinMax, *c, pivot,
                                        join);
    if (result.has_value() && result->Similarity() >= threshold) {
      exact_winners.insert(c->name());
    }
  }
  const double exact_seconds = exact_timer.Seconds();

  // Arms 2 and 3: the pipeline without and with the upper-bound prune.
  auto run_pipeline = [&](bool use_bound) {
    csj::pipeline::PipelineOptions options;
    options.screen_method = csj::Method::kApSuperEgo;
    options.refine_method = csj::Method::kExMinMax;
    options.screen_threshold = threshold;
    options.use_upper_bound_prune = use_bound;
    options.join = join;
    options.join.superego_norm_max = csj::data::kVkMaxCounter;
    return ScreenAndRefine(pivot, candidates, options);
  };
  const csj::pipeline::PipelineReport screen_report = run_pipeline(false);
  const csj::pipeline::PipelineReport bound_report = run_pipeline(true);

  auto winners_of = [&](const csj::pipeline::PipelineReport& report) {
    std::set<std::string> winners;
    for (const auto& entry : report.entries) {
      if (entry.refined && entry.refined_similarity >= threshold) {
        winners.insert(entry.candidate_name);
      }
    }
    return winners;
  };

  std::printf(
      "Pipeline ablation: pivot vs %u candidates of %s users each, "
      "threshold %s\n\n",
      num_candidates, csj::util::WithCommas(size).c_str(),
      csj::util::Percent(threshold).c_str());
  std::printf("  exact-everything:      %8s   (%u exact joins)\n",
              csj::util::SecondsCell(exact_seconds).c_str(), num_candidates);
  std::printf("  screen + refine:       %8s   (%u screens, %u exact joins)\n",
              csj::util::SecondsCell(screen_report.total_seconds).c_str(),
              screen_report.screened, screen_report.refined);
  std::printf(
      "  bound + screen+refine: %8s   (%u bound-pruned, %u screens, %u "
      "exact joins)\n",
      csj::util::SecondsCell(bound_report.total_seconds).c_str(),
      bound_report.bound_pruned, bound_report.screened,
      bound_report.refined);

  const bool agree = winners_of(screen_report) == exact_winners &&
                     winners_of(bound_report) == exact_winners;
  std::printf(
      "\nAll three arms report the same %zu above-threshold communities: "
      "%s\n",
      exact_winners.size(), agree ? "YES" : "NO (investigate!)");

  // ---- Part 2: encoding-cache reuse + cross-couple parallelism ----------
  const auto allpairs =
      std::min(static_cast<uint32_t>(flags.GetInt("allpairs")),
               num_candidates);
  const std::vector<uint32_t> thread_settings =
      ParseThreadList(flags.GetString("pipeline_threads"));

  struct SweepPoint {
    uint32_t threads = 0;
    double seconds = 0.0;   ///< best of the reps
    double screen_wall_seconds = 0.0;  ///< phase walls of the best rep
    double refine_wall_seconds = 0.0;
    double matching_seconds = 0.0;  ///< matcher thread-seconds, best rep
    double speedup = 1.0;  ///< vs the no-cache single-thread arm
    bool identical = true;  ///< across ALL reps
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
  };
  const auto hit_rate = [](uint64_t hits, uint64_t misses) {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  };
  std::vector<SweepPoint> sweep;
  bool all_identical = true;
  bool scaling_ok = true;
  double nocache_seconds = 0.0;
  SweepPoint warmup;

  if (allpairs >= 2) {
    std::vector<const csj::Community*> communities(
        candidates.begin(), candidates.begin() + allpairs);
    csj::pipeline::PipelineOptions options;
    options.screen_method = csj::Method::kApSuperEgo;
    options.refine_method = csj::Method::kExMinMax;
    // Refine every couple: the catalog's planted similarity is against
    // the pivot, so pairwise similarities sit below the ablation
    // threshold and a real threshold would leave the (expensive,
    // scheduling-interesting) refine phase idle.
    options.screen_threshold = 0.0;
    options.join = join;
    options.join.superego_norm_max = csj::data::kVkMaxCounter;

    std::printf(
        "\nAll-pairs screening (%u communities, %u couples), cache + "
        "pipeline_threads:\n",
        allpairs, allpairs * (allpairs - 1) / 2);

    // Reference arm: no cache, one thread — every couple re-encodes both
    // of its sides from scratch, as the pre-cache pipeline did.
    csj::pipeline::PipelineReport reference;
    {
      options.pipeline_threads = 1;
      options.cache = nullptr;
      csj::util::Timer timer;
      reference = ScreenAndRefineAllPairs(communities, options);
      nocache_seconds = timer.Seconds();
      std::printf("  no cache, threads  1: %8s  (reference)\n",
                  csj::util::SecondsCell(nocache_seconds).c_str());
    }

    // ONE process-wide cache serves the warmup and every thread setting:
    // reconfiguring the sweep must not throw the encodings away, that is
    // the entire point of content-keyed sharing.
    csj::EncodingCache cache;
    options.cache = &cache;

    // Timed warmup: pays every build once; later runs only look up.
    {
      options.pipeline_threads = 1;
      csj::util::Timer timer;
      const csj::pipeline::PipelineReport report =
          ScreenAndRefineAllPairs(communities, options);
      warmup.threads = 1;
      warmup.seconds = timer.Seconds();
      warmup.speedup = nocache_seconds / warmup.seconds;
      warmup.identical = ReportsIdentical(reference, report);
      warmup.cache_hits = report.cache_hits;
      warmup.cache_misses = report.cache_misses;
      all_identical = all_identical && warmup.identical;
      std::printf(
          "  warmup,   threads  1: %8s  speedup %.2fx  hit rate %5.1f%%  "
          "report %s\n",
          csj::util::SecondsCell(warmup.seconds).c_str(), warmup.speedup,
          100.0 * hit_rate(warmup.cache_hits, warmup.cache_misses),
          warmup.identical ? "identical" : "DIVERGED (investigate!)");
    }

    for (const uint32_t threads : thread_settings) {
      options.pipeline_threads = threads;
      // Best of two reps: the scaling flag compares thread settings
      // against each other, and a single noisy rep would turn scheduler
      // jitter into a false regression alarm.
      SweepPoint point;
      point.threads = threads;
      for (int rep = 0; rep < 2; ++rep) {
        csj::util::Timer timer;
        const csj::pipeline::PipelineReport report =
            ScreenAndRefineAllPairs(communities, options);
        const double seconds = timer.Seconds();
        if (rep == 0 || seconds < point.seconds) {
          point.seconds = seconds;
          point.screen_wall_seconds = report.screen_wall_seconds;
          point.refine_wall_seconds = report.refine_wall_seconds;
          point.matching_seconds = report.matching_seconds;
        }
        point.identical =
            (rep == 0 || point.identical) && ReportsIdentical(reference,
                                                              report);
        point.cache_hits = report.cache_hits;
        point.cache_misses = report.cache_misses;
      }
      point.speedup = nocache_seconds / point.seconds;
      all_identical = all_identical && point.identical;
      std::printf(
          "  cached,   threads %2u: %8s  (screen %s, refine %s)  speedup "
          "%.2fx  hit rate %5.1f%%  report %s\n",
          point.threads, csj::util::SecondsCell(point.seconds).c_str(),
          csj::util::SecondsCell(point.screen_wall_seconds).c_str(),
          csj::util::SecondsCell(point.refine_wall_seconds).c_str(),
          point.speedup,
          100.0 * hit_rate(point.cache_hits, point.cache_misses),
          point.identical ? "identical" : "DIVERGED (investigate!)");
      sweep.push_back(point);
    }

    uint64_t sweep_hits = 0;
    uint64_t sweep_misses = 0;
    for (const SweepPoint& point : sweep) {
      sweep_hits += point.cache_hits;
      sweep_misses += point.cache_misses;
    }
    const csj::EncodingCache::Stats cache_stats = cache.GetStats();
    std::printf(
        "  cache: %s entries, %.1f MiB resident; sweep-phase hit rate "
        "%5.1f%%\n",
        csj::util::WithCommas(cache_stats.entries).c_str(),
        static_cast<double>(cache_stats.bytes) / (1024.0 * 1024.0),
        100.0 * hit_rate(sweep_hits, sweep_misses));

    // The regression gate: 4 pipeline threads must not be slower than 1.
    double seconds_at_1 = 0.0;
    double seconds_at_4 = 0.0;
    for (const SweepPoint& point : sweep) {
      if (point.threads == 1) seconds_at_1 = point.seconds;
      if (point.threads == 4) seconds_at_4 = point.seconds;
    }
    scaling_ok = ScalingOk(seconds_at_1, seconds_at_4);
    std::printf("  scaling threads 1 -> 4: %s\n",
                scaling_ok ? "OK" : "REGRESSED (investigate!)");
  }

  // ---- Part 3: intra-join parallelism on one large couple --------------
  struct JoinSweepPoint {
    uint32_t join_threads = 0;
    double seconds = 0.0;  ///< best of the reps
    double speedup = 1.0;  ///< vs the serial arm
    bool identical = true;
  };
  const std::vector<uint32_t> join_thread_settings =
      ParseThreadList(flags.GetString("join_threads"));
  std::vector<JoinSweepPoint> join_sweep;
  double join_serial_seconds = 0.0;
  bool join_scaling_ok = true;

  {
    // One couple, no pipeline: the only parallelism available is inside
    // the join itself. The pivot and its most similar planted candidate
    // give an equal-sized, match-rich couple (candidate edges and CSF
    // segments actually flow through the merge).
    const csj::Community& big_b = catalog.front();
    const csj::Community& big_a = pivot;
    csj::JoinOptions join_options = join;
    std::printf("\nSingle-couple Ex-MinMax (%s x %s users), join_threads:\n",
                csj::util::WithCommas(big_b.size()).c_str(),
                csj::util::WithCommas(big_a.size()).c_str());

    join_options.join_threads = 1;
    csj::JoinResult serial;
    for (int rep = 0; rep < 2; ++rep) {
      csj::util::Timer timer;
      serial = RunMethod(csj::Method::kExMinMax, big_b, big_a, join_options);
      const double seconds = timer.Seconds();
      if (rep == 0 || seconds < join_serial_seconds) {
        join_serial_seconds = seconds;
      }
    }
    std::printf("  join_threads  1: %8s  (reference, %s pairs)\n",
                csj::util::SecondsCell(join_serial_seconds).c_str(),
                csj::util::WithCommas(serial.pairs.size()).c_str());

    double seconds_at_4 = 0.0;
    for (const uint32_t join_threads : join_thread_settings) {
      if (join_threads <= 1) continue;
      join_options.join_threads = join_threads;
      JoinSweepPoint point;
      point.join_threads = join_threads;
      for (int rep = 0; rep < 2; ++rep) {
        csj::util::Timer timer;
        const csj::JoinResult result =
            RunMethod(csj::Method::kExMinMax, big_b, big_a, join_options);
        const double seconds = timer.Seconds();
        if (rep == 0 || seconds < point.seconds) point.seconds = seconds;
        point.identical = (rep == 0 || point.identical) &&
                          JoinResultsIdentical(serial, result);
      }
      point.speedup = join_serial_seconds / point.seconds;
      if (point.join_threads == 4) seconds_at_4 = point.seconds;
      all_identical = all_identical && point.identical;
      std::printf("  join_threads %2u: %8s  speedup %.2fx  result %s\n",
                  point.join_threads,
                  csj::util::SecondsCell(point.seconds).c_str(),
                  point.speedup,
                  point.identical ? "identical" : "DIVERGED (investigate!)");
      join_sweep.push_back(point);
    }
    join_scaling_ok = ScalingOk(join_serial_seconds, seconds_at_4);
    std::printf("  scaling join_threads 1 -> 4: %s\n",
                join_scaling_ok ? "OK" : "REGRESSED (investigate!)");
  }

  // ---- Part 4: deferred segment matching on the same couple ------------
  struct MatchSweepPoint {
    uint32_t matching_threads = 0;
    double seconds = 0.0;           ///< best of the reps
    double matching_seconds = 0.0;  ///< matcher wall of the best rep
    double speedup = 1.0;           ///< vs the inline-flush serial arm
    bool identical = true;
  };
  const std::vector<uint32_t> matching_thread_settings =
      ParseThreadList(flags.GetString("matching_threads"));
  std::vector<MatchSweepPoint> matching_sweep;
  double matching_serial_seconds = 0.0;
  double serial_matching_seconds = 0.0;  ///< matcher share of the serial arm
  bool matching_scaling_ok = true;

  {
    const csj::Community& big_b = catalog.front();
    const csj::Community& big_a = pivot;
    csj::JoinOptions join_options = join;
    std::printf(
        "\nSingle-couple Ex-MinMax deferred matching, matching_threads:\n");

    // Best of THREE here (the other sweeps use two): the matcher is a
    // small share of this couple's join, so the gate is comparing two
    // ~10ms totals whose scheduler jitter on a loaded box exceeds the
    // farm's real cost; one extra rep cuts the false-alarm rate hard.
    join_options.matching_threads = 1;
    csj::JoinResult serial;
    for (int rep = 0; rep < 3; ++rep) {
      csj::util::Timer timer;
      serial = RunMethod(csj::Method::kExMinMax, big_b, big_a, join_options);
      const double seconds = timer.Seconds();
      if (rep == 0 || seconds < matching_serial_seconds) {
        matching_serial_seconds = seconds;
        serial_matching_seconds = serial.stats.matching_seconds;
      }
    }
    std::printf(
        "  matching_threads  1: %8s  (matcher %s, %s segments, reference)\n",
        csj::util::SecondsCell(matching_serial_seconds).c_str(),
        csj::util::SecondsCell(serial_matching_seconds).c_str(),
        csj::util::WithCommas(serial.stats.csf_flushes).c_str());

    double seconds_at_4 = 0.0;
    for (const uint32_t matching_threads : matching_thread_settings) {
      if (matching_threads <= 1) continue;
      join_options.matching_threads = matching_threads;
      MatchSweepPoint point;
      point.matching_threads = matching_threads;
      for (int rep = 0; rep < 3; ++rep) {
        csj::util::Timer timer;
        const csj::JoinResult result =
            RunMethod(csj::Method::kExMinMax, big_b, big_a, join_options);
        const double seconds = timer.Seconds();
        if (rep == 0 || seconds < point.seconds) {
          point.seconds = seconds;
          point.matching_seconds = result.stats.matching_seconds;
        }
        point.identical = (rep == 0 || point.identical) &&
                          JoinResultsIdentical(serial, result);
      }
      point.speedup = matching_serial_seconds / point.seconds;
      if (point.matching_threads == 4) seconds_at_4 = point.seconds;
      all_identical = all_identical && point.identical;
      std::printf(
          "  matching_threads %2u: %8s  (matcher %s)  speedup %.2fx  result "
          "%s\n",
          point.matching_threads,
          csj::util::SecondsCell(point.seconds).c_str(),
          csj::util::SecondsCell(point.matching_seconds).c_str(),
          point.speedup,
          point.identical ? "identical" : "DIVERGED (investigate!)");
      matching_sweep.push_back(point);
    }
    matching_scaling_ok = ScalingOk(matching_serial_seconds, seconds_at_4);
    std::printf("  scaling matching_threads 1 -> 4: %s\n",
                matching_scaling_ok ? "OK" : "REGRESSED (investigate!)");
  }

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    csj::util::JsonWriter json;
    json.BeginObject();
    json.Key("benchmark");
    json.String("bench_pipeline");
    json.Key("git_sha");
    json.String(flags.GetString("git_sha"));
    json.Key("build_type");
    json.String(flags.GetString("build_type"));
    // Host parallelism, so scaling numbers are interpretable offline: a
    // thread-count sweep on a 1-core container is a determinism check,
    // not a speedup measurement.
    json.Key("host_cores");
    json.Uint(std::thread::hardware_concurrency());
    json.Key("host_nproc_online");
    json.Int(static_cast<int64_t>(sysconf(_SC_NPROCESSORS_ONLN)));
    json.Key("size");
    json.Uint(size);
    json.Key("candidates");
    json.Uint(num_candidates);
    json.Key("threshold");
    json.Double(threshold);
    json.Key("ablation");
    json.BeginObject();
    json.Key("exact_everything_seconds");
    json.Double(exact_seconds);
    json.Key("screen_refine_seconds");
    json.Double(screen_report.total_seconds);
    json.Key("bound_screen_refine_seconds");
    json.Double(bound_report.total_seconds);
    json.Key("winners");
    json.Uint(exact_winners.size());
    json.Key("arms_agree");
    json.Bool(agree);
    json.EndObject();
    json.Key("allpairs");
    json.BeginObject();
    json.Key("communities");
    json.Uint(allpairs);
    json.Key("nocache_seconds");
    json.Double(nocache_seconds);
    const auto sweep_point_json = [&](const SweepPoint& point) {
      json.BeginObject();
      json.Key("pipeline_threads");
      json.Uint(point.threads);
      json.Key("seconds");
      json.Double(point.seconds);
      json.Key("screen_wall_seconds");
      json.Double(point.screen_wall_seconds);
      json.Key("refine_wall_seconds");
      json.Double(point.refine_wall_seconds);
      json.Key("refine_matching_seconds");
      json.Double(point.matching_seconds);
      json.Key("speedup_vs_nocache");
      json.Double(point.speedup);
      json.Key("report_identical");
      json.Bool(point.identical);
      json.Key("cache_hits");
      json.Uint(point.cache_hits);
      json.Key("cache_misses");
      json.Uint(point.cache_misses);
      json.Key("cache_hit_rate");
      json.Double(hit_rate(point.cache_hits, point.cache_misses));
      json.EndObject();
    };
    json.Key("warmup");
    sweep_point_json(warmup);
    json.Key("sweep");
    json.BeginArray();
    uint64_t sweep_hits = 0;
    uint64_t sweep_misses = 0;
    for (const SweepPoint& point : sweep) {
      sweep_point_json(point);
      sweep_hits += point.cache_hits;
      sweep_misses += point.cache_misses;
    }
    json.EndArray();
    // The acceptance signal: once warm, the sweep should essentially
    // never rebuild an encoding.
    json.Key("sweep_phase_hit_rate");
    json.Double(hit_rate(sweep_hits, sweep_misses));
    // The regression gate the perf-smoke CI greps for.
    json.Key("scaling_ok");
    json.Bool(scaling_ok);
    json.EndObject();
    json.Key("single_couple");
    json.BeginObject();
    json.Key("method");
    json.String("Ex-MinMax");
    json.Key("serial_seconds");
    json.Double(join_serial_seconds);
    json.Key("sweep");
    json.BeginArray();
    for (const JoinSweepPoint& point : join_sweep) {
      json.BeginObject();
      json.Key("join_threads");
      json.Uint(point.join_threads);
      json.Key("seconds");
      json.Double(point.seconds);
      json.Key("speedup_vs_serial");
      json.Double(point.speedup);
      json.Key("report_identical");
      json.Bool(point.identical);
      json.EndObject();
    }
    json.EndArray();
    json.Key("join_scaling_ok");
    json.Bool(join_scaling_ok);
    json.EndObject();
    json.Key("deferred_matching");
    json.BeginObject();
    json.Key("method");
    json.String("Ex-MinMax");
    json.Key("serial_seconds");
    json.Double(matching_serial_seconds);
    json.Key("serial_matching_seconds");
    json.Double(serial_matching_seconds);
    json.Key("sweep");
    json.BeginArray();
    for (const MatchSweepPoint& point : matching_sweep) {
      json.BeginObject();
      json.Key("matching_threads");
      json.Uint(point.matching_threads);
      json.Key("seconds");
      json.Double(point.seconds);
      json.Key("matching_seconds");
      json.Double(point.matching_seconds);
      json.Key("speedup_vs_serial");
      json.Double(point.speedup);
      json.Key("report_identical");
      json.Bool(point.identical);
      json.EndObject();
    }
    json.EndArray();
    json.Key("matching_scaling_ok");
    json.Bool(matching_scaling_ok);
    json.EndObject();
    json.EndObject();
    const std::string text = json.Take();
    if (std::FILE* file = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(file, "%s\n", text.c_str());
      std::fclose(file);
      std::printf("\nwrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }

  return agree && all_identical ? 0 : 1;
}
