// Extension experiment: quantifies the paper §3's motivation for having
// BOTH approximate and exact methods — "the time-consuming exact method
// uses the results of fast approximate method as input to alleviate its
// total execution overhead."
//
// Part 1 — a pivot brand is compared against a catalog of candidate
// communities, three ways:
//   exact-everything:  Ex-MinMax on every candidate;
//   screen+refine:     Ap-SuperEGO screen (the fastest method, Tables 3/5),
//                      Ex-MinMax only on survivors;
//   bound+screen+refine: additionally discard candidates whose encoded-
//                      window upper bound cannot reach the threshold.
// All three must produce the same set of above-threshold communities.
//
// Part 2 — cross-couple parallelism: ScreenAndRefineAllPairs over the
// catalog at each pipeline_threads setting in --pipeline_threads. Every
// setting must produce a byte-identical report (entry order, indices,
// names, similarity bits); the wall-clock ratio against 1 thread is the
// speedup. --json writes the whole run as machine-readable JSON.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "core/method.h"
#include "core/similarity.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "pipeline/screening.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

std::vector<uint32_t> ParseThreadList(const std::string& list) {
  std::vector<uint32_t> values;
  size_t start = 0;
  while (start < list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string token = list.substr(start, comma - start);
    start = comma + 1;
    if (!token.empty()) {
      values.push_back(static_cast<uint32_t>(std::stoul(token)));
    }
  }
  if (values.empty()) values.push_back(1);
  return values;
}

/// Bit-exact report equality on everything the pipeline guarantees to be
/// deterministic (NOT the timing fields).
bool ReportsIdentical(const csj::pipeline::PipelineReport& x,
                      const csj::pipeline::PipelineReport& y) {
  if (x.entries.size() != y.entries.size() || x.screened != y.screened ||
      x.refined != y.refined || x.inadmissible != y.inadmissible ||
      x.bound_pruned != y.bound_pruned) {
    return false;
  }
  for (size_t i = 0; i < x.entries.size(); ++i) {
    const auto& ex = x.entries[i];
    const auto& ey = y.entries[i];
    if (ex.candidate_index != ey.candidate_index ||
        ex.candidate_name != ey.candidate_name || ex.refined != ey.refined ||
        std::memcmp(&ex.screened_similarity, &ey.screened_similarity,
                    sizeof(double)) != 0 ||
        std::memcmp(&ex.refined_similarity, &ey.refined_similarity,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("size", "4000", "users per community");
  flags.Define("candidates", "24", "catalog size");
  flags.Define("threshold", "0.15", "interesting-similarity threshold");
  flags.Define("seed", "2024", "dataset seed");
  flags.Define("pipeline_threads", "1,2,4,8",
               "comma list of pipeline_threads settings for the all-pairs "
               "sweep");
  flags.Define("allpairs", "12",
               "communities in the all-pairs sweep (0 disables part 2)");
  flags.Define("json", "", "write the results as JSON to this path");
  if (!flags.Parse(argc, argv)) return 1;
  const auto size = static_cast<uint32_t>(flags.GetInt("size"));
  const auto num_candidates = static_cast<uint32_t>(flags.GetInt("candidates"));
  const double threshold = flags.GetDouble("threshold");
  csj::util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  // Pivot plus a catalog in which only a minority clears the threshold —
  // the realistic broadcast-recommendation shape.
  csj::data::VkLikeGenerator pivot_gen(csj::data::Category::kSport);
  const csj::Community pivot =
      csj::data::MakeCommunity(pivot_gen, size, rng, "pivot");

  std::vector<csj::Community> catalog;
  catalog.reserve(num_candidates);
  for (uint32_t i = 0; i < num_candidates; ++i) {
    const auto category = static_cast<csj::data::Category>(
        i % csj::data::kNumCategories);
    csj::data::VkLikeGenerator gen(category);
    csj::data::CoupleSpec spec;
    spec.size_b = size;
    spec.eps = 1;
    // A quarter of the catalog is genuinely similar; the rest is noise.
    spec.target_similarity = (i % 4 == 0) ? 0.18 + 0.02 * (i % 5) : 0.02;
    catalog.push_back(csj::data::PlantCommunityAgainst(pivot, gen, spec, rng));
    catalog.back().set_name("cand_" + std::to_string(i));
  }
  std::vector<const csj::Community*> candidates;
  for (const csj::Community& c : catalog) candidates.push_back(&c);

  csj::JoinOptions join;
  join.eps = 1;

  // Arm 1: exact everywhere.
  csj::util::Timer exact_timer;
  std::set<std::string> exact_winners;
  for (const csj::Community* c : candidates) {
    const auto result =
        csj::ComputeSimilarityAutoOrder(csj::Method::kExMinMax, *c, pivot,
                                        join);
    if (result.has_value() && result->Similarity() >= threshold) {
      exact_winners.insert(c->name());
    }
  }
  const double exact_seconds = exact_timer.Seconds();

  // Arms 2 and 3: the pipeline without and with the upper-bound prune.
  auto run_pipeline = [&](bool use_bound) {
    csj::pipeline::PipelineOptions options;
    options.screen_method = csj::Method::kApSuperEgo;
    options.refine_method = csj::Method::kExMinMax;
    options.screen_threshold = threshold;
    options.use_upper_bound_prune = use_bound;
    options.join = join;
    options.join.superego_norm_max = csj::data::kVkMaxCounter;
    return ScreenAndRefine(pivot, candidates, options);
  };
  const csj::pipeline::PipelineReport screen_report = run_pipeline(false);
  const csj::pipeline::PipelineReport bound_report = run_pipeline(true);

  auto winners_of = [&](const csj::pipeline::PipelineReport& report) {
    std::set<std::string> winners;
    for (const auto& entry : report.entries) {
      if (entry.refined && entry.refined_similarity >= threshold) {
        winners.insert(entry.candidate_name);
      }
    }
    return winners;
  };

  std::printf(
      "Pipeline ablation: pivot vs %u candidates of %s users each, "
      "threshold %s\n\n",
      num_candidates, csj::util::WithCommas(size).c_str(),
      csj::util::Percent(threshold).c_str());
  std::printf("  exact-everything:      %8s   (%u exact joins)\n",
              csj::util::SecondsCell(exact_seconds).c_str(), num_candidates);
  std::printf("  screen + refine:       %8s   (%u screens, %u exact joins)\n",
              csj::util::SecondsCell(screen_report.total_seconds).c_str(),
              screen_report.screened, screen_report.refined);
  std::printf(
      "  bound + screen+refine: %8s   (%u bound-pruned, %u screens, %u "
      "exact joins)\n",
      csj::util::SecondsCell(bound_report.total_seconds).c_str(),
      bound_report.bound_pruned, bound_report.screened,
      bound_report.refined);

  const bool agree = winners_of(screen_report) == exact_winners &&
                     winners_of(bound_report) == exact_winners;
  std::printf(
      "\nAll three arms report the same %zu above-threshold communities: "
      "%s\n",
      exact_winners.size(), agree ? "YES" : "NO (investigate!)");

  // ---- Part 2: the cross-couple parallelism sweep -----------------------
  const auto allpairs =
      std::min(static_cast<uint32_t>(flags.GetInt("allpairs")),
               num_candidates);
  const std::vector<uint32_t> thread_settings =
      ParseThreadList(flags.GetString("pipeline_threads"));

  struct SweepPoint {
    uint32_t threads = 0;
    double seconds = 0.0;
    double speedup = 1.0;
    bool identical = true;
  };
  std::vector<SweepPoint> sweep;
  bool all_identical = true;

  if (allpairs >= 2) {
    std::vector<const csj::Community*> communities(
        candidates.begin(), candidates.begin() + allpairs);
    csj::pipeline::PipelineOptions options;
    options.screen_method = csj::Method::kApSuperEgo;
    options.refine_method = csj::Method::kExMinMax;
    // Refine every couple: the catalog's planted similarity is against
    // the pivot, so pairwise similarities sit below the ablation
    // threshold and a real threshold would leave the (expensive,
    // scheduling-interesting) refine phase idle.
    options.screen_threshold = 0.0;
    options.join = join;
    options.join.superego_norm_max = csj::data::kVkMaxCounter;

    std::printf(
        "\nAll-pairs screening (%u communities, %u couples) by "
        "pipeline_threads:\n",
        allpairs, allpairs * (allpairs - 1) / 2);
    csj::pipeline::PipelineReport reference;
    double reference_seconds = 0.0;
    for (const uint32_t threads : thread_settings) {
      options.pipeline_threads = threads;
      csj::util::Timer timer;
      csj::pipeline::PipelineReport report =
          ScreenAndRefineAllPairs(communities, options);
      SweepPoint point;
      point.threads = threads;
      point.seconds = timer.Seconds();
      if (sweep.empty()) {
        reference = report;
        reference_seconds = point.seconds;
      } else {
        point.speedup = reference_seconds / point.seconds;
        point.identical = ReportsIdentical(reference, report);
        all_identical = all_identical && point.identical;
      }
      std::printf(
          "  threads %2u: %8s  speedup %.2fx  screened %u refined %u  "
          "report %s\n",
          point.threads, csj::util::SecondsCell(point.seconds).c_str(),
          point.speedup, report.screened, report.refined,
          point.identical ? "identical" : "DIVERGED (investigate!)");
      sweep.push_back(point);
    }
  }

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    csj::util::JsonWriter json;
    json.BeginObject();
    json.Key("benchmark");
    json.String("bench_pipeline");
    json.Key("size");
    json.Uint(size);
    json.Key("candidates");
    json.Uint(num_candidates);
    json.Key("threshold");
    json.Double(threshold);
    json.Key("ablation");
    json.BeginObject();
    json.Key("exact_everything_seconds");
    json.Double(exact_seconds);
    json.Key("screen_refine_seconds");
    json.Double(screen_report.total_seconds);
    json.Key("bound_screen_refine_seconds");
    json.Double(bound_report.total_seconds);
    json.Key("winners");
    json.Uint(exact_winners.size());
    json.Key("arms_agree");
    json.Bool(agree);
    json.EndObject();
    json.Key("allpairs_sweep");
    json.BeginArray();
    for (const SweepPoint& point : sweep) {
      json.BeginObject();
      json.Key("pipeline_threads");
      json.Uint(point.threads);
      json.Key("seconds");
      json.Double(point.seconds);
      json.Key("speedup_vs_1");
      json.Double(point.speedup);
      json.Key("report_identical");
      json.Bool(point.identical);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    const std::string text = json.Take();
    if (std::FILE* file = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(file, "%s\n", text.c_str());
      std::fclose(file);
      std::printf("\nwrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }

  return agree && all_identical ? 0 : 1;
}
