// Extension experiment: quantifies the paper §3's motivation for having
// BOTH approximate and exact methods — "the time-consuming exact method
// uses the results of fast approximate method as input to alleviate its
// total execution overhead."
//
// A pivot brand is compared against a catalog of candidate communities,
// three ways:
//   exact-everything:  Ex-MinMax on every candidate;
//   screen+refine:     Ap-SuperEGO screen (the fastest method, Tables 3/5),
//                      Ex-MinMax only on survivors;
//   bound+screen+refine: additionally discard candidates whose encoded-
//                      window upper bound cannot reach the threshold.
// All three must produce the same set of above-threshold communities.

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/method.h"
#include "core/similarity.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "pipeline/screening.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("size", "4000", "users per community");
  flags.Define("candidates", "24", "catalog size");
  flags.Define("threshold", "0.15", "interesting-similarity threshold");
  flags.Define("seed", "2024", "dataset seed");
  if (!flags.Parse(argc, argv)) return 1;
  const auto size = static_cast<uint32_t>(flags.GetInt("size"));
  const auto num_candidates = static_cast<uint32_t>(flags.GetInt("candidates"));
  const double threshold = flags.GetDouble("threshold");
  csj::util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  // Pivot plus a catalog in which only a minority clears the threshold —
  // the realistic broadcast-recommendation shape.
  csj::data::VkLikeGenerator pivot_gen(csj::data::Category::kSport);
  const csj::Community pivot =
      csj::data::MakeCommunity(pivot_gen, size, rng, "pivot");

  std::vector<csj::Community> catalog;
  catalog.reserve(num_candidates);
  for (uint32_t i = 0; i < num_candidates; ++i) {
    const auto category = static_cast<csj::data::Category>(
        i % csj::data::kNumCategories);
    csj::data::VkLikeGenerator gen(category);
    csj::data::CoupleSpec spec;
    spec.size_b = size;
    spec.eps = 1;
    // A quarter of the catalog is genuinely similar; the rest is noise.
    spec.target_similarity = (i % 4 == 0) ? 0.18 + 0.02 * (i % 5) : 0.02;
    catalog.push_back(csj::data::PlantCommunityAgainst(pivot, gen, spec, rng));
    catalog.back().set_name("cand_" + std::to_string(i));
  }
  std::vector<const csj::Community*> candidates;
  for (const csj::Community& c : catalog) candidates.push_back(&c);

  csj::JoinOptions join;
  join.eps = 1;

  // Arm 1: exact everywhere.
  csj::util::Timer exact_timer;
  std::set<std::string> exact_winners;
  for (const csj::Community* c : candidates) {
    const auto result =
        csj::ComputeSimilarityAutoOrder(csj::Method::kExMinMax, *c, pivot,
                                        join);
    if (result.has_value() && result->Similarity() >= threshold) {
      exact_winners.insert(c->name());
    }
  }
  const double exact_seconds = exact_timer.Seconds();

  // Arms 2 and 3: the pipeline without and with the upper-bound prune.
  auto run_pipeline = [&](bool use_bound) {
    csj::pipeline::PipelineOptions options;
    options.screen_method = csj::Method::kApSuperEgo;
    options.refine_method = csj::Method::kExMinMax;
    options.screen_threshold = threshold;
    options.use_upper_bound_prune = use_bound;
    options.join = join;
    options.join.superego_norm_max = csj::data::kVkMaxCounter;
    return ScreenAndRefine(pivot, candidates, options);
  };
  const csj::pipeline::PipelineReport screen_report = run_pipeline(false);
  const csj::pipeline::PipelineReport bound_report = run_pipeline(true);

  auto winners_of = [&](const csj::pipeline::PipelineReport& report) {
    std::set<std::string> winners;
    for (const auto& entry : report.entries) {
      if (entry.refined && entry.refined_similarity >= threshold) {
        winners.insert(entry.candidate_name);
      }
    }
    return winners;
  };

  std::printf(
      "Pipeline ablation: pivot vs %u candidates of %s users each, "
      "threshold %s\n\n",
      num_candidates, csj::util::WithCommas(size).c_str(),
      csj::util::Percent(threshold).c_str());
  std::printf("  exact-everything:      %8s   (%u exact joins)\n",
              csj::util::SecondsCell(exact_seconds).c_str(), num_candidates);
  std::printf("  screen + refine:       %8s   (%u screens, %u exact joins)\n",
              csj::util::SecondsCell(screen_report.total_seconds).c_str(),
              screen_report.screened, screen_report.refined);
  std::printf(
      "  bound + screen+refine: %8s   (%u bound-pruned, %u screens, %u "
      "exact joins)\n",
      csj::util::SecondsCell(bound_report.total_seconds).c_str(),
      bound_report.bound_pruned, bound_report.screened,
      bound_report.refined);

  const bool agree = winners_of(screen_report) == exact_winners &&
                     winners_of(bound_report) == exact_winners;
  std::printf(
      "\nAll three arms report the same %zu above-threshold communities: "
      "%s\n",
      exact_winners.size(), agree ? "YES" : "NO (investigate!)");
  return agree ? 0 : 1;
}
