// Regenerates Table 3: approximate methods on the VK-family dataset,
// different-category couples (cID 1-10, similarity >= 15%), eps = 1.

#include "common/harness.h"
#include "data/case_studies.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  csj::bench::BenchConfig config;
  if (!csj::bench::ParseBenchConfig(argc, argv, &flags, &config)) return 1;
  csj::bench::RunMethodTable(
      "Table 3: Approximate methods on VK dataset for eps = 1 and "
      "different categories where similarity >= 15%",
      csj::data::DifferentCategoryCouples(), csj::data::DatasetFamily::kVk,
      csj::bench::ApproximateTrio(), config);
  return 0;
}
