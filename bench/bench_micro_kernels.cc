// google-benchmark microbenchmarks for csjoin's hot kernels: the epsilon
// predicate, the MinMax encoder, encoded-buffer construction, EGO sort,
// and the one-to-one matchers.

#include <bit>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/community.h"
#include "core/encoding.h"
#include "core/epsilon_predicate.h"
#include "ego/normalized.h"
#include "matching/csf.h"
#include "matching/hopcroft_karp.h"
#include "util/rng.h"

namespace {

using csj::Community;
using csj::Count;
using csj::Dim;
using csj::MatchedPair;
using csj::UserId;

Community RandomCommunity(Dim d, uint32_t n, Count max_value, uint64_t seed) {
  csj::util::Rng rng(seed);
  Community c(d);
  std::vector<Count> vec(d);
  for (uint32_t i = 0; i < n; ++i) {
    for (auto& v : vec) v = static_cast<Count>(rng.Below(max_value + 1));
    c.AddUser(vec);
  }
  return c;
}

/// The pre-blocking kernel (branchy per-dimension short circuit), kept
/// verbatim as the baseline the blocked EpsilonMatches is measured
/// against.
bool EpsilonMatchesScalarReference(std::span<const Count> b,
                                   std::span<const Count> a,
                                   csj::Epsilon eps) {
  const size_t d = b.size();
  for (size_t i = 0; i < d; ++i) {
    const Count lo = b[i] < a[i] ? b[i] : a[i];
    const Count hi = b[i] < a[i] ? a[i] : b[i];
    if (hi - lo > eps) return false;
  }
  return true;
}

template <bool (*Kernel)(std::span<const Count>, std::span<const Count>,
                         csj::Epsilon)>
void EpsilonPredicateHarness(benchmark::State& state) {
  const auto d = static_cast<Dim>(state.range(0));
  const Community c = RandomCommunity(d, 1024, 50, 1);
  uint64_t matches = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    const UserId x = i % 1024;
    const UserId y = (i * 7 + 13) % 1024;
    matches += Kernel(c.User(x), c.User(y), 1) ? 1u : 0u;
    ++i;
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(state.iterations());
}

void BM_EpsilonPredicate(benchmark::State& state) {
  EpsilonPredicateHarness<&csj::EpsilonMatches>(state);
}
BENCHMARK(BM_EpsilonPredicate)->Arg(4)->Arg(16)->Arg(27)->Arg(64)->Arg(128);

void BM_EpsilonPredicateScalarRef(benchmark::State& state) {
  EpsilonPredicateHarness<&EpsilonMatchesScalarReference>(state);
}
BENCHMARK(BM_EpsilonPredicateScalarRef)
    ->Arg(4)
    ->Arg(16)
    ->Arg(27)
    ->Arg(64)
    ->Arg(128);

/// The all-dimensions-match worst case: no early exit is possible, so
/// this isolates raw per-dimension throughput (where vectorization pays).
template <bool (*Kernel)(std::span<const Count>, std::span<const Count>,
                         csj::Epsilon)>
void EpsilonPredicateMatchHarness(benchmark::State& state) {
  const auto d = static_cast<Dim>(state.range(0));
  const Community c = RandomCommunity(d, 1024, 1, 7);  // counters in {0,1}
  uint64_t matches = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    const UserId x = i % 1024;
    const UserId y = (i * 7 + 13) % 1024;
    matches += Kernel(c.User(x), c.User(y), 1) ? 1u : 0u;  // always true
    ++i;
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(state.iterations());
}

void BM_EpsilonPredicateAllMatch(benchmark::State& state) {
  EpsilonPredicateMatchHarness<&csj::EpsilonMatches>(state);
}
BENCHMARK(BM_EpsilonPredicateAllMatch)->Arg(16)->Arg(27)->Arg(64)->Arg(128);

void BM_EpsilonPredicateAllMatchScalarRef(benchmark::State& state) {
  EpsilonPredicateMatchHarness<&EpsilonMatchesScalarReference>(state);
}
BENCHMARK(BM_EpsilonPredicateAllMatchScalarRef)
    ->Arg(16)
    ->Arg(27)
    ->Arg(64)
    ->Arg(128);

// ---- 1-vs-many batched verification ---------------------------------
//
// The shapes the join loops hand the batched kernel: a probe against a
// candidate run of `n` (one SoA block, or a long dense window), at the
// dimensionalities of the paper's datasets and beyond. The looped twin
// calls the per-pair kernel once per candidate — the code the batched
// path replaces — so the items/sec ratio IS the batching win.

struct ManyFixture {
  Community community;
  csj::VerifyWindow window;
  std::vector<std::vector<Count>> probes;
};

ManyFixture MakeManyFixture(Dim d, uint32_t n, Count max_value,
                            uint64_t seed) {
  ManyFixture fx{RandomCommunity(d, n, max_value, seed), {}, {}};
  fx.window.Assign(n, d,
                   [&](uint32_t i) { return fx.community.User(i); });
  csj::util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  fx.probes.resize(64);
  for (auto& probe : fx.probes) {
    probe.resize(d);
    for (Dim k = 0; k < d; ++k) {
      probe[k] = static_cast<Count>(rng.Below(max_value + 1));
    }
  }
  return fx;
}

void BM_EpsilonMatchesMany(benchmark::State& state) {
  const auto d = static_cast<Dim>(state.range(0));
  const auto n = static_cast<uint32_t>(state.range(1));
  const Count max_value = static_cast<Count>(state.range(2));
  const ManyFixture fx = MakeManyFixture(d, n, max_value, 11);
  std::vector<uint64_t> mask((n + 63) / 64);
  uint64_t survivors = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    csj::EpsilonMatchesMany(fx.probes[i++ % fx.probes.size()], fx.window, 0,
                            n, 1, mask.data());
    for (const uint64_t word : mask) {
      survivors += static_cast<uint64_t>(std::popcount(word));
    }
  }
  benchmark::DoNotOptimize(survivors);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_EpsilonMatchesLooped(benchmark::State& state) {
  const auto d = static_cast<Dim>(state.range(0));
  const auto n = static_cast<uint32_t>(state.range(1));
  const Count max_value = static_cast<Count>(state.range(2));
  const ManyFixture fx = MakeManyFixture(d, n, max_value, 11);
  uint64_t survivors = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    const std::span<const Count> probe = fx.probes[i++ % fx.probes.size()];
    for (uint32_t ia = 0; ia < n; ++ia) {
      survivors +=
          csj::EpsilonMatches(probe, fx.community.User(ia), 1) ? 1u : 0u;
    }
  }
  benchmark::DoNotOptimize(survivors);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

// Args: {d, run length, max counter}. max_value 6 is the mixed case
// (some dims pass, most candidates eventually fail); max_value 1 with
// eps 1 is the all-match worst case (no early exit anywhere).
static void ManyArgs(benchmark::internal::Benchmark* bench) {
  for (const int64_t d : {16, 27, 64, 128}) {
    for (const int64_t run : {8, 64}) {
      bench->Args({d, run, 6});
      bench->Args({d, run, 1});
    }
  }
}
BENCHMARK(BM_EpsilonMatchesMany)->Apply(ManyArgs);
BENCHMARK(BM_EpsilonMatchesLooped)->Apply(ManyArgs);

void BM_EncoderEncodeOne(benchmark::State& state) {
  const Community c = RandomCommunity(27, 1024, 100, 2);
  const csj::Encoder encoder(27, 1, static_cast<uint32_t>(state.range(0)));
  std::vector<uint64_t> lo;
  std::vector<uint64_t> hi;
  uint32_t i = 0;
  for (auto _ : state) {
    encoder.PartRanges(c.User(i % 1024), &lo, &hi);
    benchmark::DoNotOptimize(lo.data());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncoderEncodeOne)->Arg(1)->Arg(4)->Arg(27);

void BM_EncodedBufferBuild(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  const Community c = RandomCommunity(27, n, 100, 3);
  const csj::Encoder encoder(27, 1, 4);
  for (auto _ : state) {
    const csj::EncodedA encd(c, encoder);
    benchmark::DoNotOptimize(encd.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EncodedBufferBuild)->Arg(1024)->Arg(8192);

void BM_EgoSort(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  const Community c = RandomCommunity(27, n, 100000, 4);
  const std::vector<Dim> order = csj::ego::IdentityOrder(27);
  for (auto _ : state) {
    const csj::ego::NormalizedData norm =
        csj::ego::Normalize(c, 152532, 1, order);
    benchmark::DoNotOptimize(norm.flat.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EgoSort)->Arg(1024)->Arg(8192);

std::vector<MatchedPair> RandomEdges(uint32_t nb, uint32_t na, double density,
                                     uint64_t seed) {
  csj::util::Rng rng(seed);
  std::vector<MatchedPair> edges;
  for (UserId b = 0; b < nb; ++b) {
    for (UserId a = 0; a < na; ++a) {
      if (rng.Bernoulli(density)) edges.push_back(MatchedPair{b, a});
    }
  }
  return edges;
}

void BM_CoverSmallestFirst(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  const auto edges = RandomEdges(n, n, 8.0 / n, 5);
  for (auto _ : state) {
    const auto matched = csj::matching::CoverSmallestFirst(edges);
    benchmark::DoNotOptimize(matched.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_CoverSmallestFirst)->Arg(1024)->Arg(8192);

void BM_HopcroftKarp(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  const auto edges = RandomEdges(n, n, 8.0 / n, 6);
  for (auto _ : state) {
    const auto matched = csj::matching::HopcroftKarp(edges);
    benchmark::DoNotOptimize(matched.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_HopcroftKarp)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
