// Regenerates Table 1: the per-category total-likes ranking (descending)
// for the VK-family and Synthetic dataset populations.
//
// The paper aggregates its full 7.8M-user crawl; we generate a population
// of --users users per family (default 7.8M / scale) from the calibrated
// generators. The VK column must reproduce the paper's ranking (the
// generator's category weights ARE the paper's totals), the Synthetic
// column comes out near-equal across categories.

#include <cstdio>

#include "data/categories.h"
#include "data/stats.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace {

void PrintRanking(const char* dataset, const csj::Community& population) {
  const auto ranked = csj::data::RankCategories(population);
  csj::util::TablePrinter table({"rank", "Dataset", "Category", "total_likes"});
  for (size_t i = 0; i < ranked.size(); ++i) {
    table.AddRow({std::to_string(i + 1), dataset,
                  csj::data::CategoryName(ranked[i].category),
                  csj::util::WithCommas(ranked[i].total_likes)});
  }
  table.Print(stdout);
  std::printf("max counter over all users: %s\n\n",
              csj::util::WithCommas(population.MaxCounter()).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("users", "487500",
               "population size per dataset family (paper: 7.8M; default "
               "is 7.8M / 16)");
  flags.Define("seed", "2024", "master seed");
  if (!flags.Parse(argc, argv)) return 1;
  const auto users = static_cast<uint32_t>(flags.GetInt("users"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::printf(
      "Table 1: ranking per category based on total_likes in descending "
      "order (%s users per family)\n\n",
      csj::util::WithCommas(users).c_str());

  csj::util::Rng vk_rng(seed);
  PrintRanking("VK", csj::data::GenerateVkPopulation(users, vk_rng));

  csj::util::Rng syn_rng(seed + 1);
  PrintRanking("Synthetic",
               csj::data::GenerateSyntheticPopulation(users, syn_rng));
  return 0;
}
