// Scale sweep (extension experiment): runtime of every method as the
// couple size grows — Table 11 generalized from Ex-MinMax to the full
// suite. Shows where each method's asymptotics bite: the nested-loop
// Baselines grow quadratically, MinMax grows with the surviving window
// work, and the EGO-based methods stay near-linear until eps-density
// catches up.

#include <cstdio>

#include "core/method.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("seed", "2024", "dataset seed");
  flags.Define("max_size", "16000", "largest couple side");
  if (!flags.Parse(argc, argv)) return 1;
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const auto max_size = static_cast<uint32_t>(flags.GetInt("max_size"));

  std::printf(
      "Extension: runtime vs couple size, all methods (VK family, "
      "eps = 1, planted similarity 25%%)\n\n");

  std::vector<std::string> header = {"size"};
  for (const csj::Method method : csj::kAllMethods) {
    header.emplace_back(MethodName(method));
  }
  header.emplace_back("Ex-MinMaxEGO");
  header.emplace_back("Ex-GridHash");
  csj::util::TablePrinter table(std::move(header));

  for (uint32_t size = 2000; size <= max_size; size *= 2) {
    csj::data::VkLikeGenerator gen_b(csj::data::Category::kSport);
    csj::data::VkLikeGenerator gen_a(csj::data::Category::kHobbies);
    csj::data::CoupleSpec spec;
    spec.size_b = size;
    spec.size_a = size + size / 4;
    spec.target_similarity = 0.25;
    spec.eps = csj::data::kVkEpsilon;
    csj::util::Rng rng(seed + size);
    const csj::data::Couple couple =
        csj::data::PlantCouple(gen_b, gen_a, spec, rng);

    csj::JoinOptions options;
    options.eps = csj::data::kVkEpsilon;
    options.superego_norm_max = csj::data::kVkMaxCounter;

    std::vector<std::string> row = {csj::util::WithCommas(size)};
    for (const csj::Method method : csj::kAllMethods) {
      const csj::JoinResult result =
          RunMethod(method, couple.b, couple.a, options);
      row.push_back(csj::util::SecondsCell(result.stats.seconds));
    }
    for (const csj::Method method :
         {csj::Method::kExMinMaxEgo, csj::Method::kExGridHash}) {
      const csj::JoinResult result =
          RunMethod(method, couple.b, couple.a, options);
      row.push_back(csj::util::SecondsCell(result.stats.seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape: Baseline times ~quadruple per size doubling; "
      "MinMax grows slower; the EGO-based methods slowest of all to "
      "degrade (the paper's efficiency ordering at every size). The "
      "GridHash extension — exact integer arithmetic like MinMax, probe "
      "structure like SuperEGO — matches or beats Ex-SuperEGO's speed "
      "WITHOUT its accuracy loss, strengthening the case that the "
      "normalization, not the grid, is SuperEGO's weakness for CSJ.\n");
  return 0;
}
