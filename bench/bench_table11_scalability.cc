// Regenerates Table 11: Ex-MinMax scalability on the VK family — 20
// categories x 4 couple sizes (the paper's average couple sizes, divided
// by --scale). Execution time should grow roughly quadratically with the
// couple size within each category row.

#include <algorithm>
#include <cstdio>

#include "core/method.h"
#include "data/case_studies.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace {

using csj::data::ScalabilityRow;

/// Same-category couple of `size` users on each side with a ~30% planted
/// similarity, mirroring the paper's "different and realistic couples
/// within category".
double TimeExMinMax(csj::data::Category category, uint32_t size,
                    uint64_t seed) {
  csj::data::VkLikeGenerator gen_b(category);
  csj::data::VkLikeGenerator gen_a(category);
  csj::data::CoupleSpec spec;
  spec.size_b = size;
  spec.size_a = size;
  spec.target_similarity = 0.30;
  spec.eps = csj::data::kVkEpsilon;
  csj::util::Rng rng(seed);
  const csj::data::Couple couple =
      csj::data::PlantCouple(gen_b, gen_a, spec, rng);
  csj::JoinOptions options;
  options.eps = csj::data::kVkEpsilon;
  const csj::JoinResult result =
      RunMethod(csj::Method::kExMinMax, couple.b, couple.a, options);
  return result.stats.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("scale", "16",
               "divide the paper's couple sizes by this factor");
  flags.Define("seed", "2024", "master seed");
  if (!flags.Parse(argc, argv)) return 1;
  const auto scale =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("scale")));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::printf(
      "Table 11: Scalability results for Exact MinMax on VK (couple sizes "
      "= paper averages / %u)\n\n",
      scale);
  csj::util::TablePrinter table({"Category", "size_1", "Ex-MinMax", "size_2",
                                 "Ex-MinMax", "size_3", "Ex-MinMax", "size_4",
                                 "Ex-MinMax"});
  uint64_t couple_index = 0;
  for (const ScalabilityRow& row : csj::data::ScalabilityStudy()) {
    std::vector<std::string> cells = {
        csj::data::CategoryName(row.category)};
    for (const uint32_t paper_size : row.sizes) {
      const uint32_t size = std::max<uint32_t>(paper_size / scale, 16);
      const double seconds =
          TimeExMinMax(row.category, size, seed + couple_index++);
      cells.push_back(csj::util::WithCommas(size));
      cells.push_back(csj::util::SecondsCell(seconds));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(stdout);
  return 0;
}
