// Regenerates Table 2: the 20 case-study community pairs — page names,
// VK page ids, categories, paper sizes, and the similarity targets the
// planting sampler aims for on each dataset family.

#include <cstdio>

#include "data/case_studies.h"
#include "util/format.h"
#include "util/table_printer.h"

int main() {
  std::printf(
      "Table 2: the names and VK-ids of compared community pairs "
      "(https://vk.com/public<ID>)\n\n");
  csj::util::TablePrinter table({"cID", "name_B", "id_B", "name_A", "id_A",
                                 "categories (B | A)", "size_B | size_A",
                                 "target VK | Syn"});
  for (const csj::data::CaseStudyCouple& c : csj::data::AllCaseStudies()) {
    table.AddRow({std::to_string(c.cid), c.name_b, std::to_string(c.vk_id_b),
                  c.name_a, std::to_string(c.vk_id_a),
                  std::string(csj::data::CategoryName(c.category_b)) + " | " +
                      csj::data::CategoryName(c.category_a),
                  csj::util::WithCommas(c.size_b) + " | " +
                      csj::util::WithCommas(c.size_a),
                  csj::util::Percent(c.target_vk) + " | " +
                      csj::util::Percent(c.target_synthetic)});
  }
  table.Print(stdout);
  return 0;
}
