// Regenerates Table 6: exact methods on the VK-family dataset,
// same-category couples (cID 11-20, similarity >= 30%), eps = 1.

#include "common/harness.h"
#include "data/case_studies.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  csj::bench::BenchConfig config;
  if (!csj::bench::ParseBenchConfig(argc, argv, &flags, &config)) return 1;
  csj::bench::RunMethodTable(
      "Table 6: Exact methods on VK dataset for eps = 1 and same "
      "categories where similarity >= 30%",
      csj::data::SameCategoryCouples(), csj::data::DatasetFamily::kVk,
      csj::bench::ExactTrio(), config);
  return 0;
}
