// Regenerates Table 8: exact methods on the Synthetic dataset,
// different-category couples (cID 1-10), eps = 15000. All three exact
// methods report the same similarity here (no float-boundary pairs).

#include "common/harness.h"
#include "data/case_studies.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  csj::bench::BenchConfig config;
  if (!csj::bench::ParseBenchConfig(argc, argv, &flags, &config)) return 1;
  csj::bench::RunMethodTable(
      "Table 8: Exact methods on Synthetic dataset for eps = 15000 and "
      "different categories where similarity >= 15%",
      csj::data::DifferentCategoryCouples(),
      csj::data::DatasetFamily::kSynthetic, csj::bench::ExactTrio(), config);
  return 0;
}
