// Regenerates Table 9: approximate methods on the Synthetic dataset,
// same-category couples (cID 11-20, similarity >= 30%), eps = 15000.

#include "common/harness.h"
#include "data/case_studies.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  csj::bench::BenchConfig config;
  if (!csj::bench::ParseBenchConfig(argc, argv, &flags, &config)) return 1;
  csj::bench::RunMethodTable(
      "Table 9: Approximate methods on Synthetic dataset for eps = 15000 "
      "and same categories where similarity >= 30%",
      csj::data::SameCategoryCouples(), csj::data::DatasetFamily::kSynthetic,
      csj::bench::ApproximateTrio(), config);
  return 0;
}
