// Regenerates Table 7: approximate methods on the Synthetic dataset,
// different-category couples (cID 1-10), eps = 15000. cID 10 is the
// paper's edge case whose similarity (7.8%) sits below the 15% band.

#include "common/harness.h"
#include "data/case_studies.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  csj::bench::BenchConfig config;
  if (!csj::bench::ParseBenchConfig(argc, argv, &flags, &config)) return 1;
  csj::bench::RunMethodTable(
      "Table 7: Approximate methods on Synthetic dataset for eps = 15000 "
      "and different categories where similarity >= 15%",
      csj::data::DifferentCategoryCouples(),
      csj::data::DatasetFamily::kSynthetic, csj::bench::ApproximateTrio(),
      config);
  return 0;
}
