// Dataset tooling example: generate a VK-family community, persist it in
// both formats, reload it, and verify the round trip — the workflow for
// feeding csjoin communities from or to external pipelines.
//
//   ./dataset_export [--size N] [--dir PATH]

#include <algorithm>
#include <cstdio>
#include <string>

#include "data/categories.h"
#include "data/generator.h"
#include "data/io.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("size", "20000", "users to generate");
  flags.Define("dir", "/tmp", "output directory");
  flags.Define("seed", "5", "generator seed");
  if (!flags.Parse(argc, argv)) return 1;
  const auto size = static_cast<uint32_t>(flags.GetInt("size"));
  const std::string dir = flags.GetString("dir");
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));

  csj::data::VkLikeGenerator gen(csj::data::Category::kFoodRecipes);
  csj::util::Rng rng(seed);
  csj::util::Timer gen_timer;
  const csj::Community community =
      MakeCommunity(gen, size, rng, "Food_recipes sample");
  std::printf("generated %s users of d = %u in %s (max counter %s)\n",
              csj::util::WithCommas(community.size()).c_str(), community.d(),
              csj::util::SecondsCell(gen_timer.Seconds()).c_str(),
              csj::util::WithCommas(community.MaxCounter()).c_str());

  const std::string csv_path = dir + "/csj_sample.csv";
  const std::string bin_path = dir + "/csj_sample.bin";

  csj::util::Timer csv_timer;
  if (!csj::data::SaveCommunityCsv(community, csv_path)) {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("wrote %s in %s\n", csv_path.c_str(),
              csj::util::SecondsCell(csv_timer.Seconds()).c_str());

  csj::util::Timer bin_timer;
  if (!csj::data::SaveCommunityBinary(community, bin_path)) {
    std::fprintf(stderr, "failed to write %s\n", bin_path.c_str());
    return 1;
  }
  std::printf("wrote %s in %s\n", bin_path.c_str(),
              csj::util::SecondsCell(bin_timer.Seconds()).c_str());

  const auto from_csv = csj::data::LoadCommunityCsv(csv_path);
  const auto from_bin = csj::data::LoadCommunityBinary(bin_path);
  if (!from_csv.has_value() || !from_bin.has_value()) {
    std::fprintf(stderr, "reload failed\n");
    return 1;
  }
  const bool ok = std::ranges::equal(from_csv->flat(), community.flat()) &&
                  std::ranges::equal(from_bin->flat(), community.flat());
  std::printf("round trip %s: CSV %s users, binary %s users\n",
              ok ? "OK" : "MISMATCH",
              csj::util::WithCommas(from_csv->size()).c_str(),
              csj::util::WithCommas(from_bin->size()).c_str());
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
  return ok ? 0 : 1;
}
