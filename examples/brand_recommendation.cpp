// Brand recommendation (paper §1.2, cases ii.a / ii.b): a brand compares
// its community against candidate partner communities and ranks them by
// CSJ similarity, using the paper's two-phase pipeline — the fast
// approximate method screens all candidates, then the exact method
// refines the short list, and the final ranking drives a prioritized
// broadcast recommendation.
//
//   ./brand_recommendation [--scale N] [--seed S]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/method.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "pipeline/screening.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/rng.h"

namespace {

struct Candidate {
  std::string name;
  csj::data::Category category;
  double planted_similarity;  // how related this brand's audience truly is
  csj::Community community{27};
};

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("size", "3000", "subscribers per community");
  flags.Define("seed", "11", "dataset seed");
  if (!flags.Parse(argc, argv)) return 1;
  const auto size = static_cast<uint32_t>(flags.GetInt("size"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));

  // "Nike" — the brand running the analysis — lives in Sport.
  csj::util::Rng rng(seed);
  csj::data::VkLikeGenerator nike_gen(csj::data::Category::kSport);
  csj::Community nike = csj::data::MakeCommunity(nike_gen, size, rng, "Nike");

  // Candidate partners with different degrees of true audience overlap.
  std::vector<Candidate> candidates;
  candidates.push_back({"Adidas", csj::data::Category::kSport, 0.38});
  candidates.push_back({"Puma", csj::data::Category::kSport, 0.27});
  candidates.push_back({"GoProTravel", csj::data::Category::kTourismLeisure,
                        0.16});
  candidates.push_back({"PetPalace", csj::data::Category::kAnimals, 0.04});
  candidates.push_back({"OperaHouse", csj::data::Category::kCultureArt,
                        0.02});

  for (Candidate& c : candidates) {
    // Build the candidate community with a planted audience overlap
    // against Nike's ACTUAL subscriber base.
    csj::data::VkLikeGenerator gen(c.category);
    csj::data::CoupleSpec spec;
    spec.size_b = size;
    spec.target_similarity = c.planted_similarity;
    spec.eps = 1;
    csj::util::Rng couple_rng(seed ^ std::hash<std::string>{}(c.name));
    c.community =
        csj::data::PlantCommunityAgainst(nike, gen, spec, couple_rng);
    c.community.set_name(c.name);
  }

  // The paper's §3 workflow, packaged by csj::pipeline: approximate
  // screening over all candidates, exact refinement of the short list.
  csj::pipeline::PipelineOptions pipeline;
  pipeline.screen_method = csj::Method::kApMinMax;
  pipeline.refine_method = csj::Method::kExMinMax;
  pipeline.screen_threshold = 0.10;
  pipeline.join.eps = 1;

  std::vector<const csj::Community*> candidate_ptrs;
  for (const Candidate& c : candidates) candidate_ptrs.push_back(&c.community);
  const csj::pipeline::PipelineReport report =
      ScreenAndRefine(nike, candidate_ptrs, pipeline);

  std::printf("Screened %u candidates with %s, refined %u with %s "
              "(total %s):\n",
              report.screened, MethodName(pipeline.screen_method),
              report.refined, MethodName(pipeline.refine_method),
              csj::util::SecondsCell(report.total_seconds).c_str());
  for (const csj::pipeline::PipelineEntry& entry : report.entries) {
    if (entry.refined) {
      std::printf("  Nike vs %-12s screen ~ %7s   exact = %7s\n",
                  entry.candidate_name.c_str(),
                  csj::util::Percent(entry.screened_similarity).c_str(),
                  csj::util::Percent(entry.refined_similarity).c_str());
    } else {
      std::printf("  Nike vs %-12s screen ~ %7s   (below threshold)\n",
                  entry.candidate_name.c_str(),
                  csj::util::Percent(entry.screened_similarity).c_str());
    }
  }

  std::printf("\nPrioritized broadcast recommendation (paper case ii.b):\n");
  int slot = 1;
  for (const csj::pipeline::PipelineEntry& entry : report.entries) {
    if (!entry.refined) continue;
    std::printf(
        "  peak-hour slot %d: recommend '%s' to Nike followers not yet "
        "following it (similarity %s)\n",
        slot++, entry.candidate_name.c_str(),
        csj::util::Percent(entry.refined_similarity).c_str());
  }
  if (!report.entries.empty() && report.entries.front().refined) {
    std::printf(
        "\nBusiness partner pick (paper case ii.a): '%s' — the most "
        "similar audience to Nike's.\n",
        report.entries.front().candidate_name.c_str());
  }
  return 0;
}
