// All-pairs brand similarity matrix (paper case ii.b at catalog scale):
// the platform compares EVERY pair of brand communities with the
// screen-then-refine pipeline and derives the broadcast schedule from the
// resulting ranking.
//
//   ./similarity_matrix [--size N] [--brands K] [--seed S]

#include <cstdio>
#include <string>
#include <vector>

#include "data/community_sampler.h"
#include "data/generator.h"
#include "pipeline/screening.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("size", "1200", "subscribers per brand");
  flags.Define("brands", "6", "number of brand communities");
  flags.Define("seed", "17", "dataset seed");
  if (!flags.Parse(argc, argv)) return 1;
  const auto size = static_cast<uint32_t>(flags.GetInt("size"));
  const auto brands = static_cast<uint32_t>(flags.GetInt("brands"));
  csj::util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  // A small catalog: two clusters of genuinely related brands plus noise.
  // Brands inside a cluster share a slice of audience (planted against
  // the cluster's anchor), across clusters they share nothing.
  const csj::data::Category categories[] = {
      csj::data::Category::kSport, csj::data::Category::kFoodRecipes,
      csj::data::Category::kMusic, csj::data::Category::kAnimals,
      csj::data::Category::kTourismLeisure, csj::data::Category::kMedia};
  std::vector<csj::Community> catalog;
  catalog.reserve(brands);
  for (uint32_t i = 0; i < brands; ++i) {
    const csj::data::Category category = categories[i % 6];
    csj::data::VkLikeGenerator gen(category);
    if (i % 3 == 0 || catalog.empty()) {
      // Cluster anchor: independent audience.
      catalog.push_back(csj::data::MakeCommunity(gen, size, rng));
    } else {
      // Cluster member: shares 20-35% of the previous anchor's audience.
      const csj::Community& anchor = catalog[(i / 3) * 3];
      csj::data::CoupleSpec spec;
      spec.size_b = size;
      spec.eps = 1;
      spec.target_similarity = 0.20 + 0.05 * (i % 3);
      catalog.push_back(
          csj::data::PlantCommunityAgainst(anchor, gen, spec, rng));
    }
    catalog.back().set_name("brand_" + std::to_string(i));
  }

  std::vector<const csj::Community*> pointers;
  for (const csj::Community& c : catalog) pointers.push_back(&c);

  csj::pipeline::PipelineOptions options;
  options.screen_method = csj::Method::kApSuperEgo;
  options.refine_method = csj::Method::kExMinMax;
  options.screen_threshold = 0.12;
  options.join.eps = 1;
  options.join.superego_norm_max = csj::data::kVkMaxCounter;
  const csj::pipeline::PipelineReport report =
      ScreenAndRefineAllPairs(pointers, options);

  std::printf(
      "All-pairs pipeline over %u brands (%u couples screened, %u refined, "
      "%u bound-pruned) in %s\n\n",
      brands, report.screened, report.refined, report.bound_pruned,
      csj::util::SecondsCell(report.total_seconds).c_str());

  std::printf("Similar brand pairs (exact similarity >= %s):\n",
              csj::util::Percent(options.screen_threshold).c_str());
  int printed = 0;
  for (const csj::pipeline::PipelineEntry& entry : report.entries) {
    if (!entry.refined) continue;
    std::printf("  %-24s %s\n", entry.candidate_name.c_str(),
                csj::util::Percent(entry.refined_similarity).c_str());
    ++printed;
  }
  if (printed == 0) std::printf("  (none)\n");

  std::printf(
      "\nBroadcast schedule: for each pair above, recommend each brand to "
      "the other's followers in priority order — the paper's Nike/Adidas/"
      "Puma scenario automated over the whole catalog.\n");
  return 0;
}
