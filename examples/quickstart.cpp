// Quickstart: build two communities, compute their CSJ similarity with
// every method, and inspect the matched pairs.
//
//   ./quickstart
//
// This walks the paper's §3 example (eps = 1, d = 3: Music, Sport,
// Education) and then a slightly larger generated couple.

#include <cstdio>
#include <vector>

#include "core/community.h"
#include "core/method.h"
#include "core/similarity.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "util/format.h"
#include "util/rng.h"

int main() {
  using csj::Community;
  using csj::Count;

  // --- The paper's worked example -----------------------------------
  Community b(3, "community B");
  b.AddUser(std::vector<Count>{3, 4, 2});  // b1 = {Music:3, Sport:4, Edu:2}
  b.AddUser(std::vector<Count>{2, 2, 3});  // b2
  Community a(3, "community A");
  a.AddUser(std::vector<Count>{2, 3, 5});  // a1
  a.AddUser(std::vector<Count>{2, 3, 1});  // a2
  a.AddUser(std::vector<Count>{3, 3, 3});  // a3

  csj::JoinOptions options;
  options.eps = 1;

  std::printf("Paper Section 3 example (eps = 1, d = 3):\n");
  for (const csj::Method method :
       {csj::Method::kApMinMax, csj::Method::kExMinMax}) {
    const auto result = csj::ComputeSimilarity(method, b, a, options);
    if (!result.has_value()) {
      std::printf("  %s: couple not admissible\n", MethodName(method));
      continue;
    }
    std::printf("  %-10s similarity = %s, pairs:", MethodName(method),
                csj::util::Percent(result->Similarity()).c_str());
    for (const csj::MatchedPair& pair : result->pairs) {
      std::printf(" <b%u,a%u>", pair.b + 1, pair.a + 1);
    }
    std::printf("\n");
  }

  // --- A generated couple with a planted 25% similarity -------------
  csj::data::VkLikeGenerator gen_b(csj::data::Category::kSport);
  csj::data::VkLikeGenerator gen_a(csj::data::Category::kHobbies);
  csj::data::CoupleSpec spec;
  spec.size_b = 2000;
  spec.size_a = 2500;
  spec.target_similarity = 0.25;
  spec.eps = 1;
  csj::util::Rng rng(7);
  const csj::data::Couple couple =
      csj::data::PlantCouple(gen_b, gen_a, spec, rng);

  std::printf(
      "\nGenerated couple (|B| = %u Sport users, |A| = %u Hobbies users, "
      "planted similarity 25%%):\n",
      couple.b.size(), couple.a.size());
  for (const csj::Method method : csj::kAllMethods) {
    const auto result =
        csj::ComputeSimilarity(method, couple.b, couple.a, options);
    std::printf("  %-12s similarity = %7s   time = %s\n", MethodName(method),
                csj::util::Percent(result->Similarity()).c_str(),
                csj::util::SecondsCell(result->stats.seconds).c_str());
  }

  std::printf(
      "\nNote how the exact methods land on the planted similarity while "
      "the approximate ones fall slightly short, and how MinMax "
      "outruns the Baseline nested loop.\n");
  return 0;
}
