// Live-membership example: community similarity as a continuously
// maintained quantity. Subscribers join and leave brand B's page all day;
// IncrementalCsj keeps the exact similarity against brand A current after
// every event, instead of re-running a full join (which at the paper's
// community sizes costs minutes to hours per evaluation).
//
//   ./live_membership [--size N] [--events K] [--seed S]

#include <cstdio>
#include <vector>

#include "core/method.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "incremental/incremental_csj.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("size", "4000", "subscribers of the fixed community A");
  flags.Define("events", "3000", "membership events to stream");
  flags.Define("seed", "31", "dataset seed");
  if (!flags.Parse(argc, argv)) return 1;
  const auto size = static_cast<uint32_t>(flags.GetInt("size"));
  const auto events = static_cast<uint32_t>(flags.GetInt("events"));
  csj::util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  // Brand A's audience is fixed for the session.
  csj::data::VkLikeGenerator gen_a(csj::data::Category::kBeautyHealth);
  const csj::Community a =
      csj::data::MakeCommunity(gen_a, size, rng, "GlowCosmetics");

  csj::JoinOptions options;
  options.eps = 1;
  csj::incremental::IncrementalCsj live(a, options);

  // Stream membership churn for brand B: 65% joins / 35% leaves; a third
  // of the joiners are genuinely similar to A subscribers (twins), the
  // rest come from B's own category model.
  csj::data::VkLikeGenerator gen_b(csj::data::Category::kBeautyHealth);
  std::vector<csj::incremental::IncrementalCsj::Handle> roster;
  std::vector<csj::Count> scratch;

  csj::util::Timer timer;
  uint32_t joins = 0;
  uint32_t leaves = 0;
  for (uint32_t event = 0; event < events; ++event) {
    const bool join = roster.empty() || rng.Bernoulli(0.65);
    if (join) {
      scratch.clear();
      if (rng.Bernoulli(0.34)) {
        const auto src = static_cast<csj::UserId>(rng.Below(a.size()));
        scratch.assign(a.User(src).begin(), a.User(src).end());
      } else {
        gen_b.Generate(rng, &scratch);
      }
      roster.push_back(live.AddUser(scratch));
      ++joins;
    } else {
      const auto pick = static_cast<size_t>(rng.Below(roster.size()));
      live.RemoveUser(roster[pick]);
      roster[pick] = roster.back();
      roster.pop_back();
      ++leaves;
    }

    if ((event + 1) % (events / 10) == 0) {
      std::printf(
          "after %5u events: |B| = %5u, matched = %5u, similarity = %7s%s\n",
          event + 1, live.live_users(), live.matched_pairs(),
          csj::util::Percent(live.Similarity()).c_str(),
          live.SizesAdmissible() ? "" : "  (|B| below the CSJ size rule)");
    }
  }
  const double seconds = timer.Seconds();

  std::printf(
      "\nprocessed %u joins and %u leaves in %s — %.1f us per event, with "
      "the exact maximum matching maintained after every single one.\n",
      joins, leaves, csj::util::SecondsCell(seconds).c_str(),
      seconds * 1e6 / events);
  std::printf(
      "A full Ex-MinMax re-join at |A| = %s costs orders of magnitude "
      "more per evaluation; see bench_sweep_epsilon and Table 11 for "
      "full-join costs.\n",
      csj::util::WithCommas(a.size()).c_str());
  return 0;
}
