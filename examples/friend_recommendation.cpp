// Friend recommendation (paper §1.2, case i): CSJ's matched pairs are
// "people with similar interests" across two communities, independent of
// any social links. For each matched pair <b, a> the platform can notify
// b's account about a's account ("you have p% similar taste with ...") —
// unlike link-based joins, this never exhausts and needs no common
// friends.
//
//   ./friend_recommendation [--size N] [--seed S]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/epsilon_predicate.h"
#include "core/method.h"
#include "core/similarity.h"
#include "data/community_sampler.h"
#include "data/generator.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/rng.h"

namespace {

/// A cheap "taste agreement" percentage for the notification copy: the
/// share of dimensions on which the two users are within eps.
double TasteAgreement(std::span<const csj::Count> x,
                      std::span<const csj::Count> y, csj::Epsilon eps) {
  uint32_t close = 0;
  for (size_t k = 0; k < x.size(); ++k) {
    const csj::Count lo = std::min(x[k], y[k]);
    const csj::Count hi = std::max(x[k], y[k]);
    close += (hi - lo <= eps) ? 1u : 0u;
  }
  return static_cast<double>(close) / static_cast<double>(x.size());
}

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("size", "1500", "subscribers per community");
  flags.Define("seed", "23", "dataset seed");
  flags.Define("show", "8", "how many recommendations to print");
  if (!flags.Parse(argc, argv)) return 1;
  const auto size = static_cast<uint32_t>(flags.GetInt("size"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const auto show = static_cast<size_t>(flags.GetInt("show"));

  // Two music-adjacent communities with a genuinely overlapping audience.
  csj::data::VkLikeGenerator gen_b(csj::data::Category::kMusic);
  csj::data::VkLikeGenerator gen_a(csj::data::Category::kCelebrity);
  csj::data::CoupleSpec spec;
  spec.size_b = size;
  spec.size_a = size + size / 4;
  spec.target_similarity = 0.2;
  spec.eps = 1;
  csj::util::Rng rng(seed);
  const csj::data::Couple couple =
      csj::data::PlantCouple(gen_b, gen_a, spec, rng);

  csj::JoinOptions options;
  options.eps = 1;
  const auto result = csj::ComputeSimilarity(csj::Method::kExMinMax,
                                             couple.b, couple.a, options);
  if (!result.has_value()) {
    std::printf("couple rejected by the CSJ size rule\n");
    return 1;
  }

  std::printf(
      "CSJ join of 'IndieMixtapes' (|B| = %u) and 'StarWatch' (|A| = %u): "
      "%zu matched pairs, similarity %s, %s\n\n",
      couple.b.size(), couple.a.size(), result->pairs.size(),
      csj::util::Percent(result->Similarity()).c_str(),
      csj::util::SecondsCell(result->stats.seconds).c_str());

  // Rank notifications by taste agreement, most convincing copy first.
  std::vector<std::pair<double, csj::MatchedPair>> ranked;
  for (const csj::MatchedPair& pair : result->pairs) {
    ranked.emplace_back(TasteAgreement(couple.b.User(pair.b),
                                       couple.a.User(pair.a), options.eps),
                        pair);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });

  std::printf("Top friend recommendations:\n");
  for (size_t i = 0; i < ranked.size() && i < show; ++i) {
    const auto& [agreement, pair] = ranked[i];
    std::printf(
        "  notify user B#%-5u: \"you have %s similar taste with user "
        "A#%u — follow them?\"\n",
        pair.b, csj::util::Percent(agreement).c_str(), pair.a);
  }
  std::printf(
      "\n%zu further recommendations available — CSJ keeps finding "
      "similar-subscription users where common-friend joins dry up.\n",
      ranked.size() > show ? ranked.size() - show : 0);
  return 0;
}
