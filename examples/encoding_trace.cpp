// Replays the paper's figures:
//   Figure 1 — the MinMax encoding of a concrete 27-dimensional vector;
//   Figures 2/3 — instance-by-instance event traces of Ap-MinMax and
//   Ex-MinMax on a small couple exercising all five events.
//
//   ./encoding_trace            (all figures)
//   ./encoding_trace --fig 1    (just one)

#include <cstdio>
#include <vector>

#include "core/community.h"
#include "core/encoding.h"
#include "core/join_result.h"
#include "core/minmax.h"
#include "util/flags.h"

namespace {

using csj::Community;
using csj::Count;

void PrintFigure1() {
  // The exact vector of Figure 1 (d = 27, eps = 1, 4 parts).
  const std::vector<Count> vec = {1, 0, 0, 0, 2, 2, 0, 0, 2, 1, 1, 5, 4, 0,
                                  3, 0, 0, 1, 4, 1, 0, 3, 5, 4, 1, 2, 4};
  const csj::Encoder encoder(27, 1, 4);

  std::printf("Figure 1: the encoding scheme (eps = 1, d = 27)\n\n");
  std::printf("user vector =");
  for (const Count v : vec) std::printf(" %u", v);
  std::printf("\n\n");

  const std::vector<uint64_t> sums = encoder.PartSums(vec);
  std::vector<uint64_t> lo;
  std::vector<uint64_t> hi;
  encoder.PartRanges(vec, &lo, &hi);
  uint64_t encoded_min = 0;
  uint64_t encoded_max = 0;
  for (uint32_t p = 0; p < encoder.parts(); ++p) {
    std::printf("part %u (dims %u-%u): sum = %2llu, range = [%llu, %llu]\n",
                p + 1, encoder.PartBegin(p), encoder.PartBegin(p + 1) - 1,
                static_cast<unsigned long long>(sums[p]),
                static_cast<unsigned long long>(lo[p]),
                static_cast<unsigned long long>(hi[p]));
    encoded_min += lo[p];
    encoded_max += hi[p];
  }
  std::printf("\nencoded_ID  = %llu\nencoded_Min = %llu\nencoded_Max = %llu\n",
              static_cast<unsigned long long>(encoder.EncodedId(vec)),
              static_cast<unsigned long long>(encoded_min),
              static_cast<unsigned long long>(encoded_max));
  std::printf(
      "\nA user with this encoded_ID can only match users whose "
      "[encoded_Min, encoded_Max] covers it, and whose part ranges cover "
      "all four part sums.\n\n");
}

// The same hand-verified couple the trace tests use: d = 3, eps = 1,
// 2 encoding parts; exercises MIN PRUNE, MAX PRUNE, NO OVERLAP, NO MATCH
// and MATCH.
Community TraceB() {
  Community b(3, "B");
  b.AddUser(std::vector<Count>{2, 0, 0});
  b.AddUser(std::vector<Count>{0, 1, 1});
  b.AddUser(std::vector<Count>{0, 3, 0});
  b.AddUser(std::vector<Count>{4, 0, 0});
  b.AddUser(std::vector<Count>{5, 5, 6});
  b.AddUser(std::vector<Count>{20, 0, 0});
  b.AddUser(std::vector<Count>{10, 10, 11});
  return b;
}

Community TraceA() {
  Community a(3, "A");
  a.AddUser(std::vector<Count>{0, 0, 0});
  a.AddUser(std::vector<Count>{0, 0, 1});
  a.AddUser(std::vector<Count>{5, 5, 5});
  a.AddUser(std::vector<Count>{10, 10, 10});
  return a;
}

void PrintTrace(const char* title, bool exact) {
  const Community b = TraceB();
  const Community a = TraceA();
  csj::EventLog log;
  csj::JoinOptions options;
  options.eps = 1;
  options.encoding_parts = 2;
  options.event_log = &log;
  const csj::JoinResult result = exact ? ExMinMaxJoin(b, a, options)
                                       : ApMinMaxJoin(b, a, options);

  std::printf("%s (d = 3, eps = 1, 2 parts)\n\n", title);
  csj::UserId last_b = UINT32_MAX;
  int instance = 0;
  for (const csj::EventRecord& record : log.records) {
    if (record.b != last_b) {
      ++instance;
      std::printf("%s<< %d >>  processing b%u\n", instance > 1 ? "\n" : "",
                  instance, record.b + 1);
      last_b = record.b;
    }
    std::printf("  * b%u vs a%u => %s\n", record.b + 1, record.a + 1,
                EventName(record.event));
  }
  std::printf("\nMATCHES = {");
  for (size_t i = 0; i < result.pairs.size(); ++i) {
    std::printf("%s<b%u, a%u>", i ? ", " : "", result.pairs[i].b + 1,
                result.pairs[i].a + 1);
  }
  std::printf("}  similarity = %.0f%%\n", result.Similarity() * 100.0);
  if (exact) {
    std::printf("CSF segment flushes: %llu, candidate pairs collected: %llu\n",
                static_cast<unsigned long long>(result.stats.csf_flushes),
                static_cast<unsigned long long>(result.stats.candidate_pairs));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  csj::util::Flags flags;
  flags.Define("fig", "0", "which figure to print (1, 2, 3; 0 = all)");
  if (!flags.Parse(argc, argv)) return 1;
  const int fig = static_cast<int>(flags.GetInt("fig"));

  if (fig == 0 || fig == 1) PrintFigure1();
  if (fig == 0 || fig == 2) {
    PrintTrace("Figure 2 analogue: Approximate MinMax execution trace",
               /*exact=*/false);
  }
  if (fig == 0 || fig == 3) {
    PrintTrace("Figure 3 analogue: Exact MinMax execution trace (with "
               "maxV-gated CSF flushes)",
               /*exact=*/true);
  }
  return 0;
}
