#include "persist/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <vector>

#include "persist/crc32.h"

namespace csj::persist {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

bool WriteAll(int fd, const void* data, size_t size, std::string* error) {
  const auto* p = static_cast<const uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = Errno("write");
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

uint64_t AlignUp(uint64_t value) {
  return (value + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

}  // namespace

bool WriteSegment(const std::string& path, const SegmentParams& params,
                  std::span<const SectionSpec> sections, std::string* error) {
  // Lay out: header | descriptor table | aligned payloads.
  std::vector<SectionDesc> table(sections.size());
  uint64_t cursor = AlignUp(sizeof(SegmentHeader) +
                            sections.size() * sizeof(SectionDesc));
  for (size_t i = 0; i < sections.size(); ++i) {
    const SectionSpec& spec = sections[i];
    SectionDesc& desc = table[i];
    desc.kind = static_cast<uint32_t>(spec.kind);
    desc.elem_size = spec.elem_size;
    desc.offset = cursor;
    desc.byte_size = spec.bytes;
    desc.crc = Crc32c(spec.data, spec.bytes);
    cursor = AlignUp(cursor + spec.bytes);
  }

  SegmentHeader header;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.entry_count = params.entry_count;
  header.next_version = params.next_version;
  header.warm_eps = params.warm_eps;
  header.warm_parts = params.warm_parts;
  header.sig_quantiles = params.sig_quantiles;
  header.flags = params.flags;
  header.file_size = cursor;
  header.table_crc = Crc32c(table.data(), table.size() * sizeof(SectionDesc));
  header.crc = Crc32c(&header, offsetof(SegmentHeader, crc));

  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    *error = Errno("open " + path);
    return false;
  }
  bool ok = WriteAll(fd, &header, sizeof(header), error) &&
            WriteAll(fd, table.data(), table.size() * sizeof(SectionDesc),
                     error);
  uint64_t written = sizeof(header) + table.size() * sizeof(SectionDesc);
  const uint8_t zeros[kSectionAlign] = {};
  for (size_t i = 0; ok && i < sections.size(); ++i) {
    if (table[i].offset > written) {
      ok = WriteAll(fd, zeros, table[i].offset - written, error);
      written = table[i].offset;
    }
    if (ok && sections[i].bytes > 0) {
      ok = WriteAll(fd, sections[i].data, sections[i].bytes, error);
      written += sections[i].bytes;
    }
  }
  if (ok && cursor > written) {
    ok = WriteAll(fd, zeros, cursor - written, error);
  }
  if (ok && ::fsync(fd) != 0) {
    *error = Errno("fsync " + path);
    ok = false;
  }
  ::close(fd);
  return ok;
}

const SectionDesc* MappedSegment::Find(SectionKind kind) const {
  for (const SectionDesc& desc : sections()) {
    if (desc.kind == static_cast<uint32_t>(kind)) return &desc;
  }
  return nullptr;
}

std::shared_ptr<MappedSegment> MappedSegment::Map(const std::string& path,
                                                  bool willneed,
                                                  bool hugepages,
                                                  std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = Errno("open " + path);
    return nullptr;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    *error = Errno("fstat " + path);
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size < sizeof(SegmentHeader)) {
    *error = path + ": shorter than a segment header";
    ::close(fd);
    return nullptr;
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) {
    *error = Errno("mmap " + path);
    return nullptr;
  }
  auto segment = std::shared_ptr<MappedSegment>(
      new MappedSegment(static_cast<uint8_t*>(mapping), size));

  // Structural validation — everything a column read depends on for
  // memory safety. Payload CRCs are fsck's job (see the class comment).
  const SegmentHeader& header = segment->header();
  if (header.magic != kSegmentMagic) {
    *error = path + ": bad segment magic";
    return nullptr;
  }
  if (header.format_version != kFormatVersion) {
    *error = path + ": unsupported format version";
    return nullptr;
  }
  if (Crc32c(&header, offsetof(SegmentHeader, crc)) != header.crc) {
    *error = path + ": segment header CRC mismatch";
    return nullptr;
  }
  if (header.file_size != size) {
    *error = path + ": recorded file size disagrees with the file";
    return nullptr;
  }
  const uint64_t table_end = sizeof(SegmentHeader) +
                             static_cast<uint64_t>(header.section_count) *
                                 sizeof(SectionDesc);
  if (table_end > size) {
    *error = path + ": section table out of bounds";
    return nullptr;
  }
  const auto table = segment->sections();
  if (Crc32c(table.data(), table.size_bytes()) != header.table_crc) {
    *error = path + ": section table CRC mismatch";
    return nullptr;
  }
  for (const SectionDesc& desc : table) {
    if (desc.offset % kSectionAlign != 0 || desc.offset > size ||
        desc.byte_size > size - desc.offset) {
      *error = path + ": section payload out of bounds";
      return nullptr;
    }
    if (desc.elem_size == 0 || desc.byte_size % desc.elem_size != 0) {
      *error = path + ": section size not a multiple of its element";
      return nullptr;
    }
  }

  if (hugepages) {
#ifdef MADV_HUGEPAGE
    // Advisory; EINVAL on kernels without THP for file mappings is fine.
    (void)::madvise(mapping, size, MADV_HUGEPAGE);
#endif
  }
  if (willneed) {
    (void)::madvise(mapping, size, MADV_WILLNEED);
  }
  return segment;
}

MappedSegment::~MappedSegment() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

}  // namespace csj::persist
