#include "persist/crc32.h"

#include <array>

namespace csj::persist {
namespace {

/// 8 slice tables, built once at first use. Table 0 is the classic
/// byte-at-a-time table; table k folds a zero byte k positions further,
/// so 8 input bytes update the CRC with 8 independent table loads.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto& t = GetTables().t;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  // Align to 8 so the slice loop reads whole words.
  while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  while (size >= 8) {
    // Little-endian word fold (the format is little-endian throughout;
    // big-endian hosts would need a byte-swapped load here).
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    word ^= crc;
    crc = t[7][word & 0xFFu] ^ t[6][(word >> 8) & 0xFFu] ^
          t[5][(word >> 16) & 0xFFu] ^ t[4][(word >> 24) & 0xFFu] ^
          t[3][(word >> 32) & 0xFFu] ^ t[2][(word >> 40) & 0xFFu] ^
          t[1][(word >> 48) & 0xFFu] ^ t[0][(word >> 56) & 0xFFu];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  return ~crc;
}

}  // namespace csj::persist
