#ifndef CSJ_PERSIST_LOG_H_
#define CSJ_PERSIST_LOG_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/community.h"
#include "core/types.h"
#include "persist/format.h"

namespace csj::persist {

/// One decoded mutation-log record (see format.h for the wire shape).
struct LogRecord {
  bool remove = false;
  uint64_t id = 0;
  uint64_t version = 0;  ///< 0 for removes
  Dim d = 0;
  uint32_t users = 0;
  std::string name;
  /// Byte offset of the counter payload inside the log file image.
  /// Offsets, not copies: replay memcpys rows out of the image (the log
  /// tail is small — the bulk of a store lives in the sealed segment,
  /// which IS served zero-copy; counter offsets in the log are not
  /// alignment-guaranteed, so a view would be UB anyway).
  size_t counts_offset = 0;
};

/// Crash-injection harness for the log writer. Tests wire one in to
/// kill the writer at an exact durability boundary; production passes
/// nullptr and none of the checks run. Once a fault fires the writer is
/// DEAD: every later append or sync is silently discarded, emulating a
/// process that ceased to exist — the bytes already handed to the OS
/// survive (this is the standard same-process crash approximation; data
/// written but never fsynced would also usually survive a real crash,
/// and recovery accepts any CRC-valid prefix, so the approximation only
/// widens the set of states recovery is proven against).
struct FaultInjector {
  /// Die immediately BEFORE performing the k-th fsync (0-based); -1
  /// disables. The record batch covered by that fsync is already fully
  /// written, so recovery must surface it.
  int64_t crash_after_fsyncs = -1;
  /// Die once cumulative appended bytes would exceed this, writing only
  /// the prefix that fits — a TORN RECORD mid-file; -1 disables.
  int64_t crash_write_at_bytes = -1;

  /// Observability: set true when a fault has fired.
  bool dead = false;
  uint64_t fsyncs_performed = 0;
  uint64_t bytes_written = 0;
};

/// Append-only mutation log writer. Thread-safe: the catalog's mutation
/// sink calls Append from inside per-shard critical sections, so
/// concurrent shards serialize on the writer's own mutex and the file
/// order is exactly the order sinks fired (which per shard equals the
/// install order).
///
/// Durability policy: every `sync_every` appended records the writer
/// issues an fsync BARRIER (write buffer flushed, fdatasync). 1 — the
/// default — makes every acknowledged mutation durable before the shard
/// lock is released; larger values trade the tail of the log for fewer
/// syncs.
class LogWriter {
 public:
  /// Opens `path` for appending, writing the header when the file is
  /// new. `resume_at` is the validated byte length of an existing log
  /// (from ReadLog, or end_offset() of the previous writer on the same
  /// file): the file is truncated there first, so appends never land
  /// after a torn tail. A `resume_at` short of a full header means the
  /// header never became durable — the file restarts from byte 0 with a
  /// fresh header rather than appending after garbage. Returns false on
  /// I/O failure.
  bool Open(const std::string& path, uint64_t generation, size_t sync_every,
            uint64_t resume_at, FaultInjector* fault, std::string* error);

  /// Appends one upsert record; returns true when the record was fully
  /// written (durable under the same-process crash model).
  bool AppendUpsert(uint64_t id, uint64_t version, const Community& community);

  /// Appends one remove record.
  bool AppendRemove(uint64_t id);

  /// Forces an fsync barrier now (checkpoint quiesce points call this).
  bool Sync();

  /// Fsyncs and closes; further appends fail.
  void Close();

  uint64_t records_appended() const;

  /// Byte length of the valid record prefix this writer has produced:
  /// the file end after the last fully appended record (partial writes
  /// from an injected crash are excluded). Valid after Close() too —
  /// pass it as the next Open's `resume_at` when reattaching to the
  /// same file, so records appended by THIS writer are never chopped.
  uint64_t end_offset() const;

  ~LogWriter() { Close(); }

 private:
  bool AppendLocked(const std::vector<uint8_t>& payload);
  bool SyncLocked();

  mutable std::mutex mu_;
  int fd_ = -1;
  size_t sync_every_ = 1;
  uint64_t records_ = 0;
  uint64_t since_sync_ = 0;
  uint64_t end_offset_ = 0;  ///< file length of the valid record prefix
  FaultInjector* fault_ = nullptr;  // not owned; null in production
};

/// Reads a log file into RAM and decodes the valid record prefix.
/// `truncated_at` reports where the valid prefix ends; when it is short
/// of the file size the tail is TORN (short prefix, short payload, or
/// CRC mismatch — all equivalent: the writer died mid-append) and
/// `torn` is set. A missing file is an empty log, not an error.
struct LogImage {
  std::vector<uint8_t> bytes;  ///< the whole file image
  std::vector<LogRecord> records;
  uint64_t generation = 0;
  uint64_t truncated_at = 0;  ///< byte length of the valid prefix
  bool torn = false;
  bool present = false;  ///< the file existed
};

/// Decodes `path`. Returns false only on a STRUCTURAL failure that
/// recovery must not paper over: unreadable file, bad magic, bad
/// header CRC, or a generation mismatch against `expect_generation`.
/// A torn tail is NOT a failure — the image carries the valid prefix.
bool ReadLog(const std::string& path, uint64_t expect_generation,
             LogImage* image, std::string* error);

}  // namespace csj::persist

#endif  // CSJ_PERSIST_LOG_H_
