#include "persist/fsck.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <mutex>
#include <set>

#include "core/community.h"
#include "core/encoding.h"
#include "core/encoding_cache.h"
#include "core/signature.h"
#include "persist/crc32.h"
#include "persist/format.h"
#include "persist/log.h"
#include "persist/segment.h"
#include "util/thread_pool.h"

namespace csj::persist {
namespace {

const char* KindName(uint32_t kind) {
  switch (static_cast<SectionKind>(kind)) {
    case SectionKind::kIds: return "ids";
    case SectionKind::kVersions: return "versions";
    case SectionKind::kDims: return "dims";
    case SectionKind::kFingerprints: return "fingerprints";
    case SectionKind::kMaxCounters: return "max_counters";
    case SectionKind::kNamePrefix: return "name_prefix";
    case SectionKind::kNames: return "names";
    case SectionKind::kUsersPrefix: return "users_prefix";
    case SectionKind::kCountsPrefix: return "counts_prefix";
    case SectionKind::kCounts: return "counts";
    case SectionKind::kSampled: return "sampled";
    case SectionKind::kSigPrefix: return "sig_prefix";
    case SectionKind::kSigTables: return "sig_tables";
    case SectionKind::kSumsPrefix: return "sums_prefix";
    case SectionKind::kEncBIds: return "enc_b_ids";
    case SectionKind::kEncBReal: return "enc_b_real";
    case SectionKind::kEncBSums: return "enc_b_sums";
    case SectionKind::kEncAMins: return "enc_a_mins";
    case SectionKind::kEncAMaxs: return "enc_a_maxs";
    case SectionKind::kEncAReal: return "enc_a_real";
    case SectionKind::kEncACols: return "enc_a_cols";
    case SectionKind::kWindowPrefix: return "window_prefix";
    case SectionKind::kEncAWindow: return "enc_a_window";
    case SectionKind::kComWindow: return "com_window";
  }
  return "unknown";
}

struct Reporter {
  FsckReport* report;
  std::mutex mu;

  void Fatal(std::string message) {
    std::lock_guard lock(mu);
    report->findings.push_back({true, std::move(message)});
  }
  void Note(std::string message) {
    std::lock_guard lock(mu);
    report->findings.push_back({false, std::move(message)});
  }
};

uint32_t ClampedParts(uint32_t warm_parts, Dim d) {
  return std::clamp(warm_parts, 1u, d);
}

/// Deep-verifies one entry: every derived artifact recomputed from the
/// stored counters and byte-compared against the stored columns.
void DeepVerifyEntry(const MappedSegment& segment, size_t i,
                     Reporter* reporter) {
  const SegmentHeader& header = segment.header();
  const bool has_signatures = (header.flags & kSegHasSignatures) != 0;
  const bool has_encodings = (header.flags & kSegHasEncodings) != 0;
  const auto ids = segment.Column<uint64_t>(SectionKind::kIds);
  const auto dims = segment.Column<uint32_t>(SectionKind::kDims);
  const auto fingerprints =
      segment.Column<uint64_t>(SectionKind::kFingerprints);
  const auto max_counters =
      segment.Column<uint32_t>(SectionKind::kMaxCounters);
  const auto users_prefix =
      segment.Column<uint64_t>(SectionKind::kUsersPrefix);
  const auto counts_prefix =
      segment.Column<uint64_t>(SectionKind::kCountsPrefix);
  const auto counts = segment.Column<Count>(SectionKind::kCounts);

  const Dim d = dims[i];
  const auto users =
      static_cast<uint32_t>(users_prefix[i + 1] - users_prefix[i]);
  const std::string tag = "entry id " + std::to_string(ids[i]);
  // A borrowed view is enough for recomputation — no copy of the rows.
  const Community community = Community::FromView(
      d, counts.data() + counts_prefix[i], static_cast<size_t>(users) * d,
      nullptr);

  const CommunityDigest digest = DigestCommunity(community);
  if (digest.fingerprint != fingerprints[i] ||
      digest.max_counter != max_counters[i]) {
    reporter->Fatal(tag + ": stored digest disagrees with recomputation");
  }

  if (has_signatures) {
    const auto sampled = segment.Column<uint32_t>(SectionKind::kSampled);
    const auto sig_prefix =
        segment.Column<uint64_t>(SectionKind::kSigPrefix);
    const auto sig_tables = segment.Column<Count>(SectionKind::kSigTables);
    // Subsampled sketches (recall_target < 1) depend on the writer's
    // seed, which the segment does not carry; serving uses recall 1.0,
    // where sampled == users and the rebuild is deterministic.
    if (sampled[i] == users) {
      SignatureOptions sig_options;
      sig_options.quantiles = header.sig_quantiles;
      const CommunitySignature rebuilt(community, sig_options);
      const auto stored =
          sig_tables.subspan(sig_prefix[i], sig_prefix[i + 1] - sig_prefix[i]);
      const auto table = rebuilt.table();
      if (rebuilt.sampled() != sampled[i] ||
          !std::equal(table.begin(), table.end(), stored.begin(),
                      stored.end())) {
        reporter->Fatal(tag + ": stored sketch disagrees with recomputation");
      }
    }
  }

  if (has_encodings) {
    const auto sums_prefix =
        segment.Column<uint64_t>(SectionKind::kSumsPrefix);
    const auto b_ids = segment.Column<uint64_t>(SectionKind::kEncBIds);
    const auto b_real = segment.Column<UserId>(SectionKind::kEncBReal);
    const auto b_sums = segment.Column<uint64_t>(SectionKind::kEncBSums);
    const auto a_mins = segment.Column<uint64_t>(SectionKind::kEncAMins);
    const auto a_maxs = segment.Column<uint64_t>(SectionKind::kEncAMaxs);
    const auto a_real = segment.Column<UserId>(SectionKind::kEncAReal);
    const auto a_cols = segment.Column<uint64_t>(SectionKind::kEncACols);
    const auto window_prefix =
        segment.Column<uint64_t>(SectionKind::kWindowPrefix);
    const auto a_window = segment.Column<Count>(SectionKind::kEncAWindow);
    const auto c_window = segment.Column<Count>(SectionKind::kComWindow);

    const Encoder encoder(d, header.warm_eps,
                          ClampedParts(header.warm_parts, d));
    const uint64_t u0 = users_prefix[i];
    const uint64_t s0 = sums_prefix[i];
    const uint64_t w0 = window_prefix[i];
    const size_t sums = static_cast<size_t>(users) * encoder.parts();
    const size_t window = VerifyWindow::PaddedCount(users, d);

    const EncodedB encoded_b(community, encoder);
    bool b_ok = true;
    for (uint32_t u = 0; u < users && b_ok; ++u) {
      b_ok = encoded_b.encoded_id(u) == b_ids[u0 + u] &&
             encoded_b.real_id(u) == b_real[u0 + u];
    }
    b_ok = b_ok && std::memcmp(encoded_b.part_sums(0).data(),
                               b_sums.data() + s0,
                               sums * sizeof(uint64_t)) == 0;
    if (!b_ok) {
      reporter->Fatal(tag +
                      ": stored EncodedB disagrees with recomputation");
    }

    const EncodedA encoded_a(community, encoder);
    bool a_ok = true;
    for (uint32_t u = 0; u < users && a_ok; ++u) {
      a_ok = encoded_a.encoded_min(u) == a_mins[u0 + u] &&
             encoded_a.encoded_max(u) == a_maxs[u0 + u] &&
             encoded_a.real_id(u) == a_real[u0 + u];
    }
    a_ok = a_ok && std::memcmp(encoded_a.part_lo(0), a_cols.data() + 2 * s0,
                               2 * sums * sizeof(uint64_t)) == 0;
    a_ok = a_ok && std::memcmp(encoded_a.window().BlockData(0),
                               a_window.data() + w0,
                               window * sizeof(Count)) == 0;
    if (!a_ok) {
      reporter->Fatal(tag +
                      ": stored EncodedA disagrees with recomputation");
    }

    VerifyWindow rebuilt_window;
    rebuilt_window.Assign(users, d,
                          [&](uint32_t u) { return community.User(u); });
    if (std::memcmp(rebuilt_window.BlockData(0), c_window.data() + w0,
                    window * sizeof(Count)) != 0) {
      reporter->Fatal(tag +
                      ": stored community window disagrees with "
                      "recomputation");
    }
  }
}

/// Structural + semantic segment verification. Returns the shape checks'
/// verdict: deep verification only runs when the shapes are sound.
bool VerifySegmentShapes(const MappedSegment& segment, Reporter* reporter) {
  const SegmentHeader& header = segment.header();
  const auto n = static_cast<size_t>(header.entry_count);
  const bool has_signatures = (header.flags & kSegHasSignatures) != 0;
  const bool has_encodings = (header.flags & kSegHasEncodings) != 0;

  // Payload CRCs — the check the zero-copy open path skips.
  for (const SectionDesc& desc : segment.sections()) {
    if (Crc32c(segment.data() + desc.offset, desc.byte_size) != desc.crc) {
      reporter->Fatal(std::string("section ") + KindName(desc.kind) +
                      ": payload CRC mismatch");
      return false;
    }
  }

  const auto ids = segment.Column<uint64_t>(SectionKind::kIds);
  const auto versions = segment.Column<uint64_t>(SectionKind::kVersions);
  const auto dims = segment.Column<uint32_t>(SectionKind::kDims);
  const auto name_prefix =
      segment.Column<uint64_t>(SectionKind::kNamePrefix);
  const auto names = segment.Column<uint8_t>(SectionKind::kNames);
  const auto users_prefix =
      segment.Column<uint64_t>(SectionKind::kUsersPrefix);
  const auto counts_prefix =
      segment.Column<uint64_t>(SectionKind::kCountsPrefix);
  const auto counts = segment.Column<Count>(SectionKind::kCounts);

  bool ok = true;
  auto fail = [&](const std::string& message) {
    reporter->Fatal(message);
    ok = false;
  };

  if (ids.size() != n || versions.size() != n || dims.size() != n ||
      segment.Column<uint64_t>(SectionKind::kFingerprints).size() != n ||
      segment.Column<uint32_t>(SectionKind::kMaxCounters).size() != n ||
      name_prefix.size() != n + 1 || users_prefix.size() != n + 1 ||
      counts_prefix.size() != n + 1) {
    fail("entry column lengths disagree with the header entry count");
    return false;
  }

  std::set<uint64_t> seen_versions;
  for (size_t i = 0; i < n && ok; ++i) {
    if (i > 0 && ids[i] <= ids[i - 1]) {
      fail("ids not strictly ascending at index " + std::to_string(i));
    }
    if (versions[i] == 0 || versions[i] >= header.next_version) {
      fail("entry id " + std::to_string(ids[i]) +
           ": version outside [1, next_version)");
    }
    if (!seen_versions.insert(versions[i]).second) {
      fail("entry id " + std::to_string(ids[i]) + ": duplicate version");
    }
    const Dim d = dims[i];
    const uint64_t users = users_prefix[i + 1] - users_prefix[i];
    if (d == 0 || users == 0 || users_prefix[i + 1] < users_prefix[i]) {
      fail("entry id " + std::to_string(ids[i]) + ": degenerate shape");
    }
    if (ok && counts_prefix[i + 1] - counts_prefix[i] != users * d) {
      fail("entry id " + std::to_string(ids[i]) +
           ": counter prefix disagrees with users * d");
    }
    if (ok && name_prefix[i + 1] < name_prefix[i]) {
      fail("entry id " + std::to_string(ids[i]) + ": name prefix not "
           "monotone");
    }
  }
  if (ok && name_prefix[n] != names.size()) {
    fail("name bytes disagree with the name prefix total");
  }
  if (ok && counts_prefix[n] != counts.size()) {
    fail("counter bytes disagree with the counter prefix total");
  }

  if (ok && has_signatures) {
    const auto sampled = segment.Column<uint32_t>(SectionKind::kSampled);
    const auto sig_prefix =
        segment.Column<uint64_t>(SectionKind::kSigPrefix);
    const auto sig_tables = segment.Column<Count>(SectionKind::kSigTables);
    if (sampled.size() != n || sig_prefix.size() != n + 1) {
      fail("signature column lengths disagree with the entry count");
    }
    for (size_t i = 0; i < n && ok; ++i) {
      const uint64_t users = users_prefix[i + 1] - users_prefix[i];
      if (sampled[i] == 0 || sampled[i] > users) {
        fail("entry id " + std::to_string(ids[i]) +
             ": sampled count outside [1, users]");
      }
      if (ok && sig_prefix[i + 1] - sig_prefix[i] !=
                    static_cast<uint64_t>(dims[i]) *
                        (header.sig_quantiles + 1)) {
        fail("entry id " + std::to_string(ids[i]) +
             ": sketch prefix disagrees with d * (quantiles + 1)");
      }
    }
    if (ok && sig_prefix[n] != sig_tables.size()) {
      fail("sketch bytes disagree with the sketch prefix total");
    }
  }

  if (ok && has_encodings) {
    const auto sums_prefix =
        segment.Column<uint64_t>(SectionKind::kSumsPrefix);
    const auto window_prefix =
        segment.Column<uint64_t>(SectionKind::kWindowPrefix);
    if (sums_prefix.size() != n + 1 || window_prefix.size() != n + 1) {
      fail("encoding prefix lengths disagree with the entry count");
    }
    for (size_t i = 0; i < n && ok; ++i) {
      const uint64_t users = users_prefix[i + 1] - users_prefix[i];
      const uint32_t parts = ClampedParts(header.warm_parts, dims[i]);
      if (sums_prefix[i + 1] - sums_prefix[i] != users * parts) {
        fail("entry id " + std::to_string(ids[i]) +
             ": part-sum prefix disagrees with users * parts");
      }
      if (ok && window_prefix[i + 1] - window_prefix[i] !=
                    VerifyWindow::PaddedCount(static_cast<uint32_t>(users),
                                              dims[i])) {
        fail("entry id " + std::to_string(ids[i]) +
             ": window prefix disagrees with the padded count");
      }
    }
    if (ok) {
      const uint64_t total_users = users_prefix[n];
      const uint64_t total_sums = sums_prefix[n];
      if (segment.Column<uint64_t>(SectionKind::kEncBIds).size() !=
              total_users ||
          segment.Column<UserId>(SectionKind::kEncBReal).size() !=
              total_users ||
          segment.Column<uint64_t>(SectionKind::kEncBSums).size() !=
              total_sums ||
          segment.Column<uint64_t>(SectionKind::kEncAMins).size() !=
              total_users ||
          segment.Column<uint64_t>(SectionKind::kEncAMaxs).size() !=
              total_users ||
          segment.Column<UserId>(SectionKind::kEncAReal).size() !=
              total_users ||
          segment.Column<uint64_t>(SectionKind::kEncACols).size() !=
              2 * total_sums ||
          segment.Column<Count>(SectionKind::kEncAWindow).size() !=
              window_prefix[n] ||
          segment.Column<Count>(SectionKind::kComWindow).size() !=
              window_prefix[n]) {
        fail("encoding column lengths disagree with the prefix totals");
      }
    }
  }
  return ok;
}

}  // namespace

bool FsckStore(const FsckOptions& options, FsckReport* report) {
  *report = FsckReport{};
  Reporter reporter{report, {}};

  // Superblock.
  Superblock superblock;
  {
    const std::string path = options.dir + "/superblock.csj";
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      reporter.Fatal("superblock missing or unreadable: " + path);
      return true;
    }
    const ssize_t n = ::read(fd, &superblock, sizeof(superblock));
    ::close(fd);
    if (n != static_cast<ssize_t>(sizeof(superblock))) {
      reporter.Fatal("superblock short read");
      return true;
    }
    if (superblock.magic != kSuperblockMagic) {
      reporter.Fatal("superblock magic mismatch");
      return true;
    }
    if (superblock.format_version != kFormatVersion) {
      reporter.Fatal("superblock format version unsupported");
      return true;
    }
    if (Crc32c(&superblock, offsetof(Superblock, crc)) != superblock.crc) {
      reporter.Fatal("superblock CRC mismatch");
      return true;
    }
  }
  report->generation = superblock.generation;

  // Stray files from interrupted checkpoints (inert: nothing references
  // them until a superblock commit names them).
  {
    DIR* dir = ::opendir(options.dir.c_str());
    if (dir != nullptr) {
      const std::string seg = "seg-" + std::to_string(report->generation) +
                              ".csj";
      const std::string log = "log-" + std::to_string(report->generation) +
                              ".csj";
      while (dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == ".." || name == "superblock.csj" ||
            name == seg || name == log) {
          continue;
        }
        reporter.Note("stray file (interrupted checkpoint residue): " + name);
      }
      ::closedir(dir);
    }
  }

  // Segment.
  std::shared_ptr<MappedSegment> segment;
  if (report->generation >= 1) {
    std::string error;
    segment = MappedSegment::Map(
        options.dir + "/seg-" + std::to_string(report->generation) + ".csj",
        /*willneed=*/true, /*hugepages=*/false, &error);
    if (segment == nullptr) {
      reporter.Fatal(error);
    } else {
      report->segment_entries = segment->header().entry_count;
      if (VerifySegmentShapes(*segment, &reporter) && options.deep) {
        util::ThreadPool::Global().Run(
            static_cast<uint32_t>(segment->header().entry_count),
            [&](uint32_t i) { DeepVerifyEntry(*segment, i, &reporter); });
      }
    }
  }

  // Log.
  {
    const std::string path =
        options.dir + "/log-" + std::to_string(report->generation) + ".csj";
    LogImage image;
    std::string error;
    if (!ReadLog(path, report->generation, &image, &error)) {
      reporter.Fatal(error);
    } else if (image.present) {
      report->log_records = image.records.size();
      const uint64_t horizon =
          segment != nullptr ? segment->header().next_version : 1;
      std::set<uint64_t> seen_versions;
      for (const LogRecord& record : image.records) {
        if (record.remove) continue;
        if (record.version < horizon) {
          reporter.Fatal("log upsert id " + std::to_string(record.id) +
                         ": version below the sealed generation's horizon");
        }
        if (!seen_versions.insert(record.version).second) {
          reporter.Fatal("log upsert id " + std::to_string(record.id) +
                         ": duplicate version");
        }
      }
      if (image.torn) {
        report->torn_tail_bytes = image.bytes.size() - image.truncated_at;
        reporter.Note("torn log tail: " +
                      std::to_string(report->torn_tail_bytes) +
                      " bytes past the last valid record");
        if (options.repair) {
          if (::truncate(path.c_str(),
                         static_cast<off_t>(image.truncated_at)) == 0) {
            report->repaired = true;
          } else {
            reporter.Fatal("repair: truncating the torn tail failed");
          }
        }
      }
    }
  }
  return true;
}

}  // namespace csj::persist
