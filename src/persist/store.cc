#include "persist/store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <utility>
#include <vector>

#include "core/encoding.h"
#include "persist/crc32.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace csj::persist {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// memcpy whose pointers may be null when the copy is empty (an empty
/// column's vector data() and an empty name's data() are both null,
/// which memcpy's nonnull attribute forbids even for size 0).
void CopyBytes(void* dst, const void* src, size_t size) {
  if (size != 0) std::memcpy(dst, src, size);
}

/// The clamped per-entry part count, exactly Encoder's clamp — the
/// store derives it instead of persisting it (it is a pure function of
/// (warm_parts, d)).
uint32_t ClampedParts(uint32_t warm_parts, Dim d) {
  return std::clamp(warm_parts, 1u, d);
}

bool ReadSuperblock(const std::string& path, Superblock* superblock,
                    bool* present, std::string* error) {
  *present = false;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return true;
    *error = Errno("open " + path);
    return false;
  }
  const ssize_t n = ::read(fd, superblock, sizeof(*superblock));
  ::close(fd);
  if (n != static_cast<ssize_t>(sizeof(*superblock))) {
    *error = path + ": short superblock";
    return false;
  }
  if (superblock->magic != kSuperblockMagic) {
    *error = path + ": bad superblock magic";
    return false;
  }
  if (superblock->format_version != kFormatVersion) {
    *error = path + ": unsupported superblock format version";
    return false;
  }
  if (Crc32c(superblock, offsetof(Superblock, crc)) != superblock->crc) {
    *error = path + ": superblock CRC mismatch";
    return false;
  }
  *present = true;
  return true;
}

bool FsyncDir(const std::string& dir, std::string* error) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    *error = Errno("open " + dir);
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  if (!ok) *error = Errno("fsync " + dir);
  ::close(fd);
  return ok;
}

/// Per-entry derived sizes the column assembly and the restore loop
/// both need; computing them once keeps the two in lockstep.
struct EntryShape {
  Dim d = 0;
  uint32_t users = 0;
  uint32_t parts = 0;
  size_t window = 0;  ///< VerifyWindow::PaddedCount(users, d)
};

}  // namespace

std::string Store::SuperblockPath() const {
  return options_.dir + "/superblock.csj";
}

std::string Store::SegmentPath(uint64_t generation) const {
  return options_.dir + "/seg-" + std::to_string(generation) + ".csj";
}

std::string Store::LogPath(uint64_t generation) const {
  return options_.dir + "/log-" + std::to_string(generation) + ".csj";
}

bool Store::CommitSuperblock(uint64_t generation, std::string* error) {
  Superblock superblock;
  superblock.generation = generation;
  superblock.crc = Crc32c(&superblock, offsetof(Superblock, crc));
  const std::string tmp = options_.dir + "/superblock.tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    *error = Errno("open " + tmp);
    return false;
  }
  bool ok = ::write(fd, &superblock, sizeof(superblock)) ==
            static_cast<ssize_t>(sizeof(superblock));
  ok = ok && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    *error = Errno("write " + tmp);
    return false;
  }
  // rename + directory fsync is the COMMIT POINT: before it the old
  // superblock (or none) is what any reopen sees; after it the new
  // generation is durable, atomically.
  if (::rename(tmp.c_str(), SuperblockPath().c_str()) != 0) {
    *error = Errno("rename " + tmp);
    return false;
  }
  return FsyncDir(options_.dir, error);
}

std::unique_ptr<Store> Store::Open(StoreOptions options, std::string* error,
                                   OpenStats* stats) {
  if (stats != nullptr) *stats = OpenStats{};
  auto store = std::unique_ptr<Store>(new Store(std::move(options)));
  if (::mkdir(store->options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    *error = Errno("mkdir " + store->options_.dir);
    return nullptr;
  }

  util::Timer timer;
  Superblock superblock;
  bool present = false;
  if (!ReadSuperblock(store->SuperblockPath(), &superblock, &present, error)) {
    return nullptr;
  }
  if (!present) {
    // Fresh store: commit generation 0 (no segment, no log) so every
    // later open — including one racing a crash during the FIRST
    // checkpoint — finds a committed superblock to trust.
    if (!store->CommitSuperblock(0, error)) return nullptr;
    superblock.generation = 0;
  }
  store->generation_ = superblock.generation;

  if (store->generation_ >= 1) {
    store->segment_ = MappedSegment::Map(
        store->SegmentPath(store->generation_), store->options_.use_madvise,
        store->options_.use_hugepages, error);
    if (store->segment_ == nullptr) return nullptr;
  }
  if (stats != nullptr) {
    stats->opened_existing = present;
    stats->generation = store->generation_;
    stats->map_seconds = timer.Seconds();
    if (store->segment_ != nullptr) {
      stats->segment_entries = store->segment_->header().entry_count;
      stats->segment_bytes = store->segment_->size();
    }
  }

  if (!ReadLog(store->LogPath(store->generation_), store->generation_,
               &store->log_image_, error)) {
    return nullptr;
  }
  store->log_end_ = store->log_image_.truncated_at;
  if (stats != nullptr) {
    stats->log_torn_bytes =
        store->log_image_.bytes.size() - store->log_image_.truncated_at;
  }
  return store;
}

bool Store::RestoreInto(service::CommunityCatalog* catalog, std::string* error,
                        OpenStats* stats) {
  CSJ_CHECK(catalog != nullptr);
  CSJ_CHECK_EQ(catalog->size(), 0u)
      << "RestoreInto requires a freshly constructed catalog";
  const auto& catalog_options = catalog->options();

  uint64_t recovered_next = 1;
  util::Timer timer;
  std::vector<service::CommunityCatalog::RestoredEntry> pending;

  if (segment_ != nullptr) {
    const SegmentHeader& header = segment_->header();
    const auto n = static_cast<size_t>(header.entry_count);
    const bool has_signatures = (header.flags & kSegHasSignatures) != 0;
    const bool has_encodings = (header.flags & kSegHasEncodings) != 0;

    // The segment's derived artifacts are only adoptable into a catalog
    // shaped like the writer's; a mismatch is a configuration error,
    // not a recoverable state.
    if (has_encodings && catalog_options.cache != nullptr &&
        (header.warm_eps != catalog_options.warm_eps ||
         header.warm_parts != catalog_options.warm_parts)) {
      *error = "store warm parameters disagree with the catalog's";
      return false;
    }
    if (has_signatures != (catalog->signature_index() != nullptr)) {
      *error = "store signature configuration disagrees with the catalog's";
      return false;
    }
    if (has_signatures &&
        header.sig_quantiles != catalog->signature_options()->quantiles) {
      *error = "store signature quantiles disagree with the catalog's";
      return false;
    }

    const auto ids = segment_->Column<uint64_t>(SectionKind::kIds);
    const auto versions = segment_->Column<uint64_t>(SectionKind::kVersions);
    const auto dims = segment_->Column<uint32_t>(SectionKind::kDims);
    const auto fingerprints =
        segment_->Column<uint64_t>(SectionKind::kFingerprints);
    const auto max_counters =
        segment_->Column<uint32_t>(SectionKind::kMaxCounters);
    const auto name_prefix =
        segment_->Column<uint64_t>(SectionKind::kNamePrefix);
    const auto names = segment_->Column<uint8_t>(SectionKind::kNames);
    const auto users_prefix =
        segment_->Column<uint64_t>(SectionKind::kUsersPrefix);
    const auto counts_prefix =
        segment_->Column<uint64_t>(SectionKind::kCountsPrefix);
    const auto counts = segment_->Column<Count>(SectionKind::kCounts);
    const auto sampled = segment_->Column<uint32_t>(SectionKind::kSampled);
    const auto sig_prefix =
        segment_->Column<uint64_t>(SectionKind::kSigPrefix);
    const auto sig_tables = segment_->Column<Count>(SectionKind::kSigTables);
    const auto sums_prefix =
        segment_->Column<uint64_t>(SectionKind::kSumsPrefix);
    const auto b_ids = segment_->Column<uint64_t>(SectionKind::kEncBIds);
    const auto b_real = segment_->Column<UserId>(SectionKind::kEncBReal);
    const auto b_sums = segment_->Column<uint64_t>(SectionKind::kEncBSums);
    const auto a_mins = segment_->Column<uint64_t>(SectionKind::kEncAMins);
    const auto a_maxs = segment_->Column<uint64_t>(SectionKind::kEncAMaxs);
    const auto a_real = segment_->Column<UserId>(SectionKind::kEncAReal);
    const auto a_cols = segment_->Column<uint64_t>(SectionKind::kEncACols);
    const auto window_prefix =
        segment_->Column<uint64_t>(SectionKind::kWindowPrefix);
    const auto a_window = segment_->Column<Count>(SectionKind::kEncAWindow);
    const auto c_window = segment_->Column<Count>(SectionKind::kComWindow);

    // Shape validation — the zero-copy views below index the mapped
    // columns through the prefix arrays, and those arrays live in
    // payload bytes the open path did NOT CRC (see MappedSegment). This
    // O(n) pass proves every derived index in bounds, so corrupt
    // prefixes fail loudly here instead of reading out of the mapping.
    auto shape_error = [&](const char* what) {
      *error = std::string("segment column shape invalid (") + what +
               "); run csj_fsck";
      return false;
    };
    if (ids.size() != n || versions.size() != n || dims.size() != n ||
        fingerprints.size() != n || max_counters.size() != n ||
        name_prefix.size() != n + 1 || users_prefix.size() != n + 1 ||
        counts_prefix.size() != n + 1) {
      return shape_error("entry columns");
    }
    if (has_signatures &&
        (sampled.size() != n || sig_prefix.size() != n + 1)) {
      return shape_error("signature columns");
    }
    if (has_encodings &&
        (sums_prefix.size() != n + 1 || window_prefix.size() != n + 1)) {
      return shape_error("encoding prefixes");
    }
    for (size_t i = 0; i < n; ++i) {
      if (i > 0 && ids[i] <= ids[i - 1]) return shape_error("id order");
      // Versions live in un-CRC'd payload bytes like the prefixes: a
      // corrupt value must fail here, not abort inside RestoreBatch.
      if (versions[i] == 0 || versions[i] >= header.next_version) {
        return shape_error("version range");
      }
      const Dim d = dims[i];
      const uint64_t users = users_prefix[i + 1] - users_prefix[i];
      if (d == 0 || users == 0 || users_prefix[i + 1] < users_prefix[i]) {
        return shape_error("entry sizes");
      }
      if (counts_prefix[i + 1] - counts_prefix[i] !=
          users * static_cast<uint64_t>(d)) {
        return shape_error("counter prefix");
      }
      if (has_signatures &&
          sig_prefix[i + 1] - sig_prefix[i] !=
              static_cast<uint64_t>(d) * (header.sig_quantiles + 1)) {
        return shape_error("sketch prefix");
      }
      if (has_encodings) {
        const uint32_t parts =
            ClampedParts(header.warm_parts, static_cast<Dim>(d));
        if (sums_prefix[i + 1] - sums_prefix[i] != users * parts) {
          return shape_error("part-sum prefix");
        }
        if (window_prefix[i + 1] - window_prefix[i] !=
            VerifyWindow::PaddedCount(static_cast<uint32_t>(users), d)) {
          return shape_error("window prefix");
        }
      }
      if (name_prefix[i + 1] < name_prefix[i]) {
        return shape_error("name prefix");
      }
    }
    if (name_prefix[n] != names.size()) return shape_error("name bytes");
    if (counts_prefix[n] != counts.size()) return shape_error("counter bytes");
    if (has_signatures && sig_prefix[n] != sig_tables.size()) {
      return shape_error("sketch bytes");
    }
    if (has_encodings) {
      if (users_prefix[n] != b_ids.size() ||
          users_prefix[n] != b_real.size() ||
          users_prefix[n] != a_mins.size() ||
          users_prefix[n] != a_maxs.size() ||
          users_prefix[n] != a_real.size() ||
          sums_prefix[n] != b_sums.size() ||
          2 * sums_prefix[n] != a_cols.size() ||
          window_prefix[n] != a_window.size() ||
          window_prefix[n] != c_window.size()) {
        return shape_error("encoding bytes");
      }
    }

    // Build the restored entries. Everything large is a VIEW pinned by
    // the mapping; per entry this allocates only the control blocks.
    pending.resize(n);
    const bool adopt_encodings =
        has_encodings && catalog_options.cache != nullptr;
    util::ThreadPool::Global().Run(
        static_cast<uint32_t>(n), [&](uint32_t i) {
          service::CommunityCatalog::RestoredEntry& entry = pending[i];
          const Dim d = dims[i];
          const auto users =
              static_cast<uint32_t>(users_prefix[i + 1] - users_prefix[i]);
          entry.id = ids[i];
          entry.version = versions[i];
          entry.digest = {fingerprints[i], max_counters[i]};
          std::string name(
              reinterpret_cast<const char*>(names.data()) + name_prefix[i],
              name_prefix[i + 1] - name_prefix[i]);
          entry.community = std::make_shared<const Community>(
              Community::FromView(d, counts.data() + counts_prefix[i],
                                  static_cast<size_t>(users) * d, segment_,
                                  std::move(name)));
          if (has_signatures) {
            CommunitySignature::TableView view;
            view.n = users;
            view.sampled = sampled[i];
            view.quantiles = header.sig_quantiles;
            view.d = d;
            view.table = sig_tables.data() + sig_prefix[i];
            entry.signature =
                std::make_shared<const CommunitySignature>(view, segment_);
          }
          if (adopt_encodings) {
            const uint32_t parts = ClampedParts(header.warm_parts, d);
            EncodedB::Columns b;
            b.parts = parts;
            b.n = users;
            b.ids = b_ids.data() + users_prefix[i];
            b.real = b_real.data() + users_prefix[i];
            b.sums = b_sums.data() + sums_prefix[i];
            entry.encoded_b = std::make_shared<const EncodedB>(b, segment_);
            EncodedA::Columns a;
            a.parts = parts;
            a.n = users;
            a.d = d;
            a.mins = a_mins.data() + users_prefix[i];
            a.maxs = a_maxs.data() + users_prefix[i];
            a.real = a_real.data() + users_prefix[i];
            a.cols = a_cols.data() + 2 * sums_prefix[i];
            a.window = a_window.data() + window_prefix[i];
            entry.encoded_a = std::make_shared<const EncodedA>(a, segment_);
            auto window = std::make_shared<VerifyWindow>();
            window->AssignView(users, d, c_window.data() + window_prefix[i],
                               segment_);
            entry.window = std::move(window);
          }
        });
    recovered_next = std::max<uint64_t>(recovered_next, header.next_version);
  }

  const double segment_seconds = timer.Seconds();
  timer.Reset();

  // Install the checkpoint image, then replay the log tail in append
  // order. Removes flush the pending batch first: batch installs and
  // removes must interleave exactly as the writer's history did, per
  // shard, for the index pack layout to replay byte-identically.
  auto flush = [&]() {
    if (pending.empty()) return;
    uint64_t next = 1;
    for (const auto& entry : pending) {
      next = std::max(next, entry.version + 1);
    }
    catalog->RestoreBatch(std::move(pending), next, nullptr);
    pending.clear();
  };

  uint64_t replayed = 0;
  // Segment image first.
  flush();
  const double restore_seconds = timer.Seconds();
  timer.Reset();

  for (const LogRecord& record : log_image_.records) {
    ++replayed;
    if (record.remove) {
      flush();
      catalog->Remove(record.id);
      continue;
    }
    service::CommunityCatalog::RestoredEntry entry;
    entry.id = record.id;
    entry.version = record.version;
    std::vector<Count> counts(static_cast<size_t>(record.users) * record.d);
    std::memcpy(counts.data(), log_image_.bytes.data() + record.counts_offset,
                counts.size() * sizeof(Count));
    entry.community = std::make_shared<const Community>(
        Community(record.d, std::move(counts), record.name));
    entry.digest = DigestCommunity(*entry.community);
    // Derived artifacts were never checkpointed for log-tail entries;
    // RestoreBatch rebuilds them with Upsert's exact builders.
    pending.push_back(std::move(entry));
    recovered_next = std::max(recovered_next, record.version + 1);
  }
  flush();
  // Pin the version counter to the recovered horizon even when the tail
  // ends in removes (an empty RestoreBatch only advances the counter).
  catalog->RestoreBatch({}, recovered_next, nullptr);

  if (stats != nullptr) {
    stats->restore_seconds = restore_seconds;
    stats->map_seconds += segment_seconds;
    stats->replay_seconds = timer.Seconds();
    stats->log_records_replayed = replayed;
    stats->generation = generation_;
    if (segment_ != nullptr) {
      stats->segment_entries = segment_->header().entry_count;
      stats->segment_bytes = segment_->size();
    }
  }
  return true;
}

bool Store::StartLogging(service::CommunityCatalog* catalog,
                         std::string* error) {
  CSJ_CHECK(catalog != nullptr);
  std::lock_guard lock(writer_mu_);
  CSJ_CHECK(writer_ == nullptr) << "logging already started";
  writer_ = std::make_unique<LogWriter>();
  if (!writer_->Open(LogPath(generation_), generation_,
                     options_.log_sync_every, log_end_,
                     options_.fault_injector, error)) {
    writer_.reset();
    return false;
  }
  log_end_ = writer_->end_offset();
  // The log's dirent must be durable too: fsyncing the file contents
  // (which Open did for a fresh header) does not persist the directory
  // entry, and losing the dirent in a crash drops the whole log.
  if (!FsyncDir(options_.dir, error)) {
    writer_->Close();
    writer_.reset();
    return false;
  }
  logging_ = true;
  catalog->SetMutationSink([this](const service::MutationEvent& event) {
    std::lock_guard sink_lock(writer_mu_);
    if (writer_ == nullptr) return;
    if (event.remove) {
      writer_->AppendRemove(event.id);
    } else {
      writer_->AppendUpsert(event.id, event.version, *event.community);
    }
  });
  return true;
}

void Store::StopLogging(service::CommunityCatalog* catalog) {
  if (catalog != nullptr) catalog->SetMutationSink(nullptr);
  std::lock_guard lock(writer_mu_);
  if (writer_ != nullptr) {
    writer_->Close();
    log_end_ = writer_->end_offset();
    writer_.reset();
  }
  logging_ = false;
}

bool Store::Checkpoint(const service::CommunityCatalog& catalog,
                       std::string* error, CheckpointStats* stats) {
  if (stats != nullptr) *stats = CheckpointStats{};
  const auto& catalog_options = catalog.options();
  const uint64_t new_generation = generation_ + 1;

  util::Timer timer;
  const std::vector<service::CatalogEntry> snapshot = catalog.Snapshot();
  const auto n = static_cast<uint32_t>(snapshot.size());
  const bool has_signatures = catalog.signature_index() != nullptr;
  const bool has_encodings = catalog_options.cache != nullptr;

  // Derived shapes + prefix arrays (serial, O(n)).
  std::vector<EntryShape> shapes(n);
  std::vector<uint64_t> name_prefix(n + 1, 0);
  std::vector<uint64_t> users_prefix(n + 1, 0);
  std::vector<uint64_t> counts_prefix(n + 1, 0);
  std::vector<uint64_t> sig_prefix(has_signatures ? n + 1 : 0, 0);
  std::vector<uint64_t> sums_prefix(has_encodings ? n + 1 : 0, 0);
  std::vector<uint64_t> window_prefix(has_encodings ? n + 1 : 0, 0);
  const uint32_t sig_quantiles =
      has_signatures ? catalog.signature_options()->quantiles : 0;
  for (uint32_t i = 0; i < n; ++i) {
    const service::CatalogEntry& entry = snapshot[i];
    EntryShape& shape = shapes[i];
    shape.d = entry.community->d();
    shape.users = entry.community->size();
    shape.parts = ClampedParts(catalog_options.warm_parts, shape.d);
    shape.window = VerifyWindow::PaddedCount(shape.users, shape.d);
    name_prefix[i + 1] = name_prefix[i] + entry.community->name().size();
    users_prefix[i + 1] = users_prefix[i] + shape.users;
    counts_prefix[i + 1] =
        counts_prefix[i] + static_cast<uint64_t>(shape.users) * shape.d;
    if (has_signatures) {
      CSJ_CHECK(entry.signature != nullptr);
      sig_prefix[i + 1] =
          sig_prefix[i] + static_cast<uint64_t>(shape.d) * (sig_quantiles + 1);
    }
    if (has_encodings) {
      sums_prefix[i + 1] =
          sums_prefix[i] + static_cast<uint64_t>(shape.users) * shape.parts;
      window_prefix[i + 1] = window_prefix[i] + shape.window;
    }
  }

  // Column buffers.
  std::vector<uint64_t> ids(n), versions(n), fingerprints(n);
  std::vector<uint32_t> dims(n), max_counters(n);
  std::vector<uint8_t> names(name_prefix[n]);
  std::vector<Count> counts(counts_prefix[n]);
  std::vector<uint32_t> sampled(has_signatures ? n : 0);
  std::vector<Count> sig_tables(has_signatures ? sig_prefix[n] : 0);
  std::vector<uint64_t> b_ids(has_encodings ? users_prefix[n] : 0);
  std::vector<UserId> b_real(has_encodings ? users_prefix[n] : 0);
  std::vector<uint64_t> b_sums(has_encodings ? sums_prefix[n] : 0);
  std::vector<uint64_t> a_mins(has_encodings ? users_prefix[n] : 0);
  std::vector<uint64_t> a_maxs(has_encodings ? users_prefix[n] : 0);
  std::vector<UserId> a_real(has_encodings ? users_prefix[n] : 0);
  std::vector<uint64_t> a_cols(has_encodings ? 2 * sums_prefix[n] : 0);
  std::vector<Count> a_window(has_encodings ? window_prefix[n] : 0);
  std::vector<Count> c_window(has_encodings ? window_prefix[n] : 0);

  // Parallel fill: every entry writes disjoint column stretches. Warm
  // artifacts come from the catalog's cache (built on miss through the
  // exact builders, so a cold cache still seals correct bytes).
  util::ThreadPool::Global().Run(n, [&](uint32_t i) {
    const service::CatalogEntry& entry = snapshot[i];
    const EntryShape& shape = shapes[i];
    ids[i] = entry.id;
    versions[i] = entry.version;
    fingerprints[i] = entry.digest.fingerprint;
    max_counters[i] = entry.digest.max_counter;
    dims[i] = shape.d;
    CopyBytes(names.data() + name_prefix[i], entry.community->name().data(),
              entry.community->name().size());
    const auto flat = entry.community->flat();
    CopyBytes(counts.data() + counts_prefix[i], flat.data(),
              flat.size() * sizeof(Count));
    if (has_signatures) {
      sampled[i] = entry.signature->sampled();
      const auto table = entry.signature->table();
      CopyBytes(sig_tables.data() + sig_prefix[i], table.data(),
                table.size() * sizeof(Count));
    }
    if (has_encodings) {
      EncodingCache* cache = catalog_options.cache;
      const auto encoded_b =
          cache->GetEncodedB(*entry.community, entry.digest,
                             catalog_options.warm_eps, shape.parts, nullptr);
      const auto encoded_a =
          cache->GetEncodedA(*entry.community, entry.digest,
                             catalog_options.warm_eps, shape.parts, nullptr);
      const auto window =
          cache->GetCommunityWindow(*entry.community, entry.digest, nullptr);
      for (uint32_t u = 0; u < shape.users; ++u) {
        b_ids[users_prefix[i] + u] = encoded_b->encoded_id(u);
        b_real[users_prefix[i] + u] = encoded_b->real_id(u);
        a_mins[users_prefix[i] + u] = encoded_a->encoded_min(u);
        a_maxs[users_prefix[i] + u] = encoded_a->encoded_max(u);
        a_real[users_prefix[i] + u] = encoded_a->real_id(u);
      }
      // part_sums(0) / part_lo(0) are the first elements of the flat
      // SoA buffers; the whole column is contiguous behind them.
      std::memcpy(b_sums.data() + sums_prefix[i],
                  encoded_b->part_sums(0).data(),
                  static_cast<size_t>(shape.users) * shape.parts *
                      sizeof(uint64_t));
      std::memcpy(a_cols.data() + 2 * sums_prefix[i], encoded_a->part_lo(0),
                  2 * static_cast<size_t>(shape.users) * shape.parts *
                      sizeof(uint64_t));
      std::memcpy(a_window.data() + window_prefix[i],
                  encoded_a->window().BlockData(0),
                  shape.window * sizeof(Count));
      std::memcpy(c_window.data() + window_prefix[i], window->BlockData(0),
                  shape.window * sizeof(Count));
    }
  });
  if (stats != nullptr) stats->snapshot_seconds = timer.Seconds();
  timer.Reset();

  SegmentParams params;
  params.entry_count = n;
  params.next_version = catalog.latest_version() + 1;
  params.warm_eps = catalog_options.warm_eps;
  params.warm_parts = catalog_options.warm_parts;
  params.sig_quantiles = sig_quantiles;
  params.flags = (has_signatures ? kSegHasSignatures : 0u) |
                 (has_encodings ? kSegHasEncodings : 0u);

  std::vector<SectionSpec> sections;
  auto add = [&](SectionKind kind, uint32_t elem_size, const void* data,
                 size_t bytes) {
    sections.push_back({kind, elem_size, data, bytes});
  };
  add(SectionKind::kIds, 8, ids.data(), ids.size() * 8);
  add(SectionKind::kVersions, 8, versions.data(), versions.size() * 8);
  add(SectionKind::kDims, 4, dims.data(), dims.size() * 4);
  add(SectionKind::kFingerprints, 8, fingerprints.data(),
      fingerprints.size() * 8);
  add(SectionKind::kMaxCounters, 4, max_counters.data(),
      max_counters.size() * 4);
  add(SectionKind::kNamePrefix, 8, name_prefix.data(),
      name_prefix.size() * 8);
  add(SectionKind::kNames, 1, names.data(), names.size());
  add(SectionKind::kUsersPrefix, 8, users_prefix.data(),
      users_prefix.size() * 8);
  add(SectionKind::kCountsPrefix, 8, counts_prefix.data(),
      counts_prefix.size() * 8);
  add(SectionKind::kCounts, 4, counts.data(), counts.size() * 4);
  if (has_signatures) {
    add(SectionKind::kSampled, 4, sampled.data(), sampled.size() * 4);
    add(SectionKind::kSigPrefix, 8, sig_prefix.data(),
        sig_prefix.size() * 8);
    add(SectionKind::kSigTables, 4, sig_tables.data(), sig_tables.size() * 4);
  }
  if (has_encodings) {
    add(SectionKind::kSumsPrefix, 8, sums_prefix.data(),
        sums_prefix.size() * 8);
    add(SectionKind::kEncBIds, 8, b_ids.data(), b_ids.size() * 8);
    add(SectionKind::kEncBReal, 4, b_real.data(), b_real.size() * 4);
    add(SectionKind::kEncBSums, 8, b_sums.data(), b_sums.size() * 8);
    add(SectionKind::kEncAMins, 8, a_mins.data(), a_mins.size() * 8);
    add(SectionKind::kEncAMaxs, 8, a_maxs.data(), a_maxs.size() * 8);
    add(SectionKind::kEncAReal, 4, a_real.data(), a_real.size() * 4);
    add(SectionKind::kEncACols, 8, a_cols.data(), a_cols.size() * 8);
    add(SectionKind::kWindowPrefix, 8, window_prefix.data(),
        window_prefix.size() * 8);
    add(SectionKind::kEncAWindow, 4, a_window.data(), a_window.size() * 4);
    add(SectionKind::kComWindow, 4, c_window.data(), c_window.size() * 4);
  }

  const std::string segment_path = SegmentPath(new_generation);
  if (!WriteSegment(segment_path, params, sections, error)) return false;
  if (stats != nullptr) stats->write_seconds = timer.Seconds();
  timer.Reset();

  // Commit: roll the log under the writer lock. The lock only orders
  // sink appends against the writer swap — it does NOT cover the window
  // between catalog.Snapshot() above and this flip. A mutation landing
  // in that window would live only in the old-generation log, which is
  // unlinked below, and be lost. Safety rests entirely on the
  // documented precondition that callers checkpoint at quiesce points
  // (no in-flight mutations from snapshot through commit).
  {
    std::lock_guard lock(writer_mu_);
    if (writer_ != nullptr) {
      writer_->Close();
      log_end_ = writer_->end_offset();
      writer_.reset();
    }
    if (!CommitSuperblock(new_generation, error)) {
      logging_ = false;  // degraded: the old log writer is gone
      return false;
    }
    const uint64_t old_generation = generation_;
    generation_ = new_generation;
    (void)::unlink(SegmentPath(old_generation).c_str());
    (void)::unlink(LogPath(old_generation).c_str());
    log_image_ = LogImage{};
    log_end_ = 0;
    if (logging_) {
      writer_ = std::make_unique<LogWriter>();
      if (!writer_->Open(LogPath(generation_), generation_,
                         options_.log_sync_every, /*resume_at=*/0,
                         options_.fault_injector, error)) {
        writer_.reset();
        logging_ = false;
        return false;
      }
      log_end_ = writer_->end_offset();
      // Make the rolled log's dirent durable (CommitSuperblock's
      // directory fsync happened BEFORE this file was created).
      if (!FsyncDir(options_.dir, error)) {
        writer_->Close();
        writer_.reset();
        logging_ = false;
        return false;
      }
    }
  }
  // Remap so a same-process RestoreInto (populate-compare, tests) reads
  // the generation just sealed.
  segment_ = MappedSegment::Map(segment_path, options_.use_madvise,
                                options_.use_hugepages, error);
  if (segment_ == nullptr) return false;

  if (stats != nullptr) {
    stats->commit_seconds = timer.Seconds();
    stats->generation = new_generation;
    stats->entries = n;
    stats->bytes = segment_->size();
  }
  return true;
}

}  // namespace csj::persist
