#ifndef CSJ_PERSIST_SEGMENT_H_
#define CSJ_PERSIST_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "persist/format.h"

namespace csj::persist {

/// One section to be sealed into a segment: `bytes` of payload at
/// `data`, elements of `elem_size` bytes. The buffer must stay alive
/// until WriteSegment returns; it is not retained.
struct SectionSpec {
  SectionKind kind = SectionKind::kIds;
  uint32_t elem_size = 1;
  const void* data = nullptr;
  size_t bytes = 0;
};

/// Non-magic header fields of the segment being sealed (counts, flags,
/// warm parameters — see SegmentHeader).
struct SegmentParams {
  uint64_t entry_count = 0;
  uint64_t next_version = 0;
  uint32_t warm_eps = 0;
  uint32_t warm_parts = 0;
  uint32_t sig_quantiles = 0;
  uint32_t flags = 0;
};

/// Seals `sections` into a segment file at `path`: header, CRC'd
/// descriptor table, then each payload at the next 64-byte boundary with
/// its CRC in the descriptor. The file is fsynced before returning (the
/// caller still fsyncs the DIRECTORY when it commits the superblock).
/// Returns false with `*error` set on any I/O failure; a failed write
/// may leave a partial file — callers write to a generation-unique name
/// that no superblock references yet, so partial files are inert.
bool WriteSegment(const std::string& path, const SegmentParams& params,
                  std::span<const SectionSpec> sections, std::string* error);

/// A sealed segment mapped read-only. Map() validates everything needed
/// for MEMORY SAFETY — magic, format version, header and descriptor
/// table CRCs, recorded file size against the real one, every section's
/// bounds, alignment and element divisibility — but deliberately NOT
/// the section payload CRCs: verifying them would fault in and read
/// every byte, forfeiting the zero-copy open the format exists for.
/// Payload integrity is csj_fsck's contract (run it on any store whose
/// history is untrusted); a corrupt payload under a valid descriptor
/// yields wrong column VALUES, never out-of-bounds access.
///
/// Columns are served as spans over the mapping; the shared_ptr
/// returned by Map is the keep-alive that view-backed communities,
/// sketches and encodings hold, so the mapping outlives every reader.
class MappedSegment {
 public:
  /// Maps and validates; hints the kernel per the flags
  /// (MADV_WILLNEED schedules readahead of the whole mapping so the
  /// restore loop does not take one blocking major fault per column
  /// touch; MADV_HUGEPAGE asks for 2 MiB backing to cut minor-fault
  /// count and TLB pressure on multi-GB catalogs). Returns nullptr with
  /// `*error` set on validation failure.
  static std::shared_ptr<MappedSegment> Map(const std::string& path,
                                            bool willneed, bool hugepages,
                                            std::string* error);

  ~MappedSegment();
  MappedSegment(const MappedSegment&) = delete;
  MappedSegment& operator=(const MappedSegment&) = delete;

  const SegmentHeader& header() const {
    return *reinterpret_cast<const SegmentHeader*>(data_);
  }
  std::span<const SectionDesc> sections() const {
    return {reinterpret_cast<const SectionDesc*>(data_ +
                                                 sizeof(SegmentHeader)),
            header().section_count};
  }

  /// The section descriptor of `kind`, or nullptr when absent.
  const SectionDesc* Find(SectionKind kind) const;

  /// Typed view of one section's payload; empty when the section is
  /// absent. T must match the section's element size (checked).
  template <typename T>
  std::span<const T> Column(SectionKind kind) const {
    const SectionDesc* desc = Find(kind);
    if (desc == nullptr || desc->elem_size != sizeof(T)) return {};
    return {reinterpret_cast<const T*>(data_ + desc->offset),
            desc->byte_size / sizeof(T)};
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedSegment(uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace csj::persist

#endif  // CSJ_PERSIST_SEGMENT_H_
