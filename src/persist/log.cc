#include "persist/log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "persist/crc32.h"
#include "util/logging.h"

namespace csj::persist {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void PutU32(uint32_t value, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + 4);
  std::memcpy(out->data() + at, &value, 4);
}

void PutU64(uint64_t value, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + 8);
  std::memcpy(out->data() + at, &value, 8);
}

}  // namespace

bool LogWriter::Open(const std::string& path, uint64_t generation,
                     size_t sync_every, uint64_t resume_at,
                     FaultInjector* fault, std::string* error) {
  std::lock_guard lock(mu_);
  CSJ_CHECK_EQ(fd_, -1) << "LogWriter already open";
  sync_every_ = sync_every == 0 ? 1 : sync_every;
  fault_ = fault;
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd_ < 0) {
    *error = Errno("open " + path);
    return false;
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    *error = Errno("fstat " + path);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  if (st.st_size == 0 || resume_at < sizeof(LogHeader)) {
    // Fresh log — or a file whose header never became durable (a torn
    // header reads as resume_at == 0). Appending after a partial header
    // would leave the store unopenable ("bad log magic"), so restart
    // from byte 0: truncate whatever is there and write a real header,
    // fsynced before any record follows it.
    if (st.st_size != 0 && ::ftruncate(fd_, 0) != 0) {
      *error = Errno("ftruncate " + path);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    LogHeader header;
    header.generation = generation;
    header.crc = Crc32c(&header, offsetof(LogHeader, crc));
    if (::write(fd_, &header, sizeof(header)) !=
        static_cast<ssize_t>(sizeof(header))) {
      *error = Errno("write " + path);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    if (::fsync(fd_) != 0) {
      *error = Errno("fsync " + path);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    end_offset_ = sizeof(LogHeader);
  } else {
    // Resuming: chop any torn tail BEFORE appending, so the first new
    // record never lands after garbage (it would be unreachable — the
    // reader stops at the tear — and would confuse fsck forever).
    const auto resume = static_cast<off_t>(resume_at);
    if (resume < st.st_size && ::ftruncate(fd_, resume) != 0) {
      *error = Errno("ftruncate " + path);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      *error = Errno("lseek " + path);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    end_offset_ = static_cast<uint64_t>(end);
  }
  return true;
}

bool LogWriter::AppendLocked(const std::vector<uint8_t>& payload) {
  if (fd_ < 0) return false;
  if (fault_ != nullptr && fault_->dead) return false;
  std::vector<uint8_t> frame;
  frame.reserve(sizeof(LogRecordPrefix) + payload.size());
  PutU32(static_cast<uint32_t>(payload.size()), &frame);
  PutU32(Crc32c(payload.data(), payload.size()), &frame);
  frame.insert(frame.end(), payload.begin(), payload.end());

  size_t writable = frame.size();
  bool dies = false;
  if (fault_ != nullptr && fault_->crash_write_at_bytes >= 0) {
    const auto budget = static_cast<uint64_t>(fault_->crash_write_at_bytes);
    if (fault_->bytes_written + frame.size() > budget) {
      writable = budget > fault_->bytes_written
                     ? static_cast<size_t>(budget - fault_->bytes_written)
                     : 0;
      dies = true;
    }
  }
  const uint8_t* p = frame.data();
  size_t remaining = writable;
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  if (fault_ != nullptr) fault_->bytes_written += writable;
  if (dies) {
    fault_->dead = true;
    return false;
  }
  ++records_;
  ++since_sync_;
  end_offset_ += frame.size();
  if (since_sync_ >= sync_every_) return SyncLocked();
  return true;
}

bool LogWriter::SyncLocked() {
  if (fd_ < 0) return false;
  if (fault_ != nullptr) {
    if (fault_->dead) return false;
    if (fault_->crash_after_fsyncs >= 0 &&
        fault_->fsyncs_performed ==
            static_cast<uint64_t>(fault_->crash_after_fsyncs)) {
      // Die at the barrier: the records written since the last sync
      // remain in the file (page-cache survival), the fsync itself
      // never happens.
      fault_->dead = true;
      return false;
    }
  }
  if (::fdatasync(fd_) != 0) return false;
  since_sync_ = 0;
  if (fault_ != nullptr) ++fault_->fsyncs_performed;
  return true;
}

bool LogWriter::AppendUpsert(uint64_t id, uint64_t version,
                             const Community& community) {
  std::vector<uint8_t> payload;
  const auto flat = community.flat();
  payload.reserve(32 + community.name().size() + flat.size() * sizeof(Count));
  PutU32(kLogUpsert, &payload);
  PutU32(community.d(), &payload);
  PutU64(id, &payload);
  PutU64(version, &payload);
  PutU32(community.size(), &payload);
  PutU32(static_cast<uint32_t>(community.name().size()), &payload);
  payload.insert(payload.end(), community.name().begin(),
                 community.name().end());
  const size_t at = payload.size();
  payload.resize(at + flat.size() * sizeof(Count));
  std::memcpy(payload.data() + at, flat.data(), flat.size() * sizeof(Count));
  std::lock_guard lock(mu_);
  return AppendLocked(payload);
}

bool LogWriter::AppendRemove(uint64_t id) {
  std::vector<uint8_t> payload;
  payload.reserve(16);
  PutU32(kLogRemove, &payload);
  PutU32(0, &payload);
  PutU64(id, &payload);
  std::lock_guard lock(mu_);
  return AppendLocked(payload);
}

bool LogWriter::Sync() {
  std::lock_guard lock(mu_);
  if (since_sync_ == 0) return fd_ >= 0 && (fault_ == nullptr || !fault_->dead);
  return SyncLocked();
}

void LogWriter::Close() {
  std::lock_guard lock(mu_);
  if (fd_ < 0) return;
  if (since_sync_ > 0) SyncLocked();
  ::close(fd_);
  fd_ = -1;
}

uint64_t LogWriter::records_appended() const {
  std::lock_guard lock(mu_);
  return records_;
}

uint64_t LogWriter::end_offset() const {
  std::lock_guard lock(mu_);
  return end_offset_;
}

bool ReadLog(const std::string& path, uint64_t expect_generation,
             LogImage* image, std::string* error) {
  *image = LogImage{};
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return true;  // absent log == empty log
    *error = Errno("open " + path);
    return false;
  }
  image->present = true;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    *error = Errno("fstat " + path);
    ::close(fd);
    return false;
  }
  image->bytes.resize(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < image->bytes.size()) {
    const ssize_t n =
        ::read(fd, image->bytes.data() + got, image->bytes.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = Errno("read " + path);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  image->bytes.resize(got);

  if (image->bytes.size() < sizeof(LogHeader)) {
    // A header that never hit the disk: an empty log with a torn tail.
    image->torn = !image->bytes.empty();
    image->truncated_at = 0;
    return true;
  }
  LogHeader header;
  std::memcpy(&header, image->bytes.data(), sizeof(header));
  if (header.magic != kLogMagic) {
    *error = path + ": bad log magic";
    return false;
  }
  if (header.format_version != kFormatVersion) {
    *error = path + ": unsupported log format version";
    return false;
  }
  if (Crc32c(&header, offsetof(LogHeader, crc)) != header.crc) {
    *error = path + ": log header CRC mismatch";
    return false;
  }
  if (header.generation != expect_generation) {
    *error = path + ": log generation disagrees with the superblock";
    return false;
  }
  image->generation = header.generation;

  size_t cursor = sizeof(LogHeader);
  while (cursor < image->bytes.size()) {
    const size_t record_start = cursor;
    if (image->bytes.size() - cursor < sizeof(LogRecordPrefix)) break;
    LogRecordPrefix prefix;
    std::memcpy(&prefix, image->bytes.data() + cursor, sizeof(prefix));
    cursor += sizeof(prefix);
    if (image->bytes.size() - cursor < prefix.payload_size) {
      cursor = record_start;
      break;
    }
    const uint8_t* payload = image->bytes.data() + cursor;
    if (Crc32c(payload, prefix.payload_size) != prefix.payload_crc) {
      cursor = record_start;
      break;
    }
    // Decode — a CRC-valid payload with an impossible shape is NOT a
    // torn tail (the bytes are exactly what the writer framed); it is
    // corruption or a writer bug, and recovery must not silently drop
    // the suffix.
    auto u32_at = [&](size_t off) {
      uint32_t v;
      std::memcpy(&v, payload + off, 4);
      return v;
    };
    auto u64_at = [&](size_t off) {
      uint64_t v;
      std::memcpy(&v, payload + off, 8);
      return v;
    };
    if (prefix.payload_size < 16) {
      *error = path + ": log record too short to hold its kind";
      return false;
    }
    LogRecord record;
    const uint32_t kind = u32_at(0);
    if (kind == kLogRemove) {
      record.remove = true;
      record.id = u64_at(8);
    } else if (kind == kLogUpsert) {
      if (prefix.payload_size < 32) {
        *error = path + ": truncated upsert record";
        return false;
      }
      record.d = u32_at(4);
      record.id = u64_at(8);
      record.version = u64_at(16);
      record.users = u32_at(24);
      const uint32_t name_size = u32_at(28);
      const uint64_t need = 32ull + name_size +
                            static_cast<uint64_t>(record.users) * record.d *
                                sizeof(Count);
      if (record.d == 0 || record.users == 0 || need != prefix.payload_size) {
        *error = path + ": upsert record shape disagrees with its size";
        return false;
      }
      record.name.assign(reinterpret_cast<const char*>(payload) + 32,
                         name_size);
      record.counts_offset = cursor + 32 + name_size;
    } else {
      *error = path + ": unknown log record kind";
      return false;
    }
    cursor += prefix.payload_size;
    image->records.push_back(std::move(record));
  }
  image->truncated_at = cursor;
  image->torn = cursor < image->bytes.size();
  return true;
}

}  // namespace csj::persist
