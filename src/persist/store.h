#ifndef CSJ_PERSIST_STORE_H_
#define CSJ_PERSIST_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "persist/log.h"
#include "persist/segment.h"
#include "service/catalog.h"

namespace csj::persist {

struct StoreOptions {
  /// Store directory; created (one level) when absent.
  std::string dir;
  /// madvise hints applied to mapped segments (see MappedSegment::Map).
  bool use_madvise = true;
  bool use_hugepages = true;
  /// fsync barrier cadence of the mutation log (records per barrier; 1
  /// makes every mutation durable before its shard lock is released).
  size_t log_sync_every = 1;
  /// Crash-injection harness (tests only; not owned, may be null).
  FaultInjector* fault_injector = nullptr;
};

/// Accounting of Open() + RestoreInto().
struct OpenStats {
  bool opened_existing = false;  ///< a committed superblock was found
  uint64_t generation = 0;
  uint64_t segment_entries = 0;
  uint64_t segment_bytes = 0;
  uint64_t log_records_replayed = 0;
  uint64_t log_torn_bytes = 0;  ///< bytes past the valid prefix
  double map_seconds = 0.0;      ///< superblock + segment map + validate
  double restore_seconds = 0.0;  ///< RestoreBatch over the segment image
  double replay_seconds = 0.0;   ///< log-tail replay
};

/// Accounting of one Checkpoint().
struct CheckpointStats {
  uint64_t generation = 0;  ///< the generation just sealed
  uint64_t entries = 0;
  uint64_t bytes = 0;           ///< sealed segment file size
  double snapshot_seconds = 0.0;  ///< catalog snapshot + artifact fetch
  double write_seconds = 0.0;     ///< segment assembly + write + fsync
  double commit_seconds = 0.0;    ///< superblock commit + old-gen cleanup
};

/// The persistent catalog store: one directory holding the committed
/// superblock, the current sealed segment generation and its mutation
/// log (format.h documents the files and the commit protocol).
///
/// Lifecycle:
///
///   auto store = Store::Open(options, &err);     // map latest generation
///   store->RestoreInto(&catalog, &stats);        // logplay recovery
///   store->StartLogging(&catalog);               // durable from here on
///   ... mutations ...
///   store->Checkpoint(catalog, &stats);          // fold log into a new gen
///
/// Checkpoint and StartLogging/StopLogging require the catalog to be
/// QUIESCENT (no in-flight mutations): the evolution subsystem's
/// quiesce points satisfy this by construction, which is why they
/// double as checkpoint sites. Concurrent mutations while logging is
/// attached are fully supported — that is the normal serving mode.
class Store {
 public:
  /// Opens (or initializes) the store directory: reads and validates
  /// the superblock, maps the sealed segment, decodes the log's valid
  /// prefix. Returns nullptr with `*error` set on structural corruption
  /// (csj_fsck gives the detailed diagnosis).
  static std::unique_ptr<Store> Open(StoreOptions options, std::string* error,
                                     OpenStats* stats = nullptr);

  /// Rebuilds `catalog` (must be freshly constructed and empty) to the
  /// exact pre-crash state: segment entries install zero-copy under
  /// their original versions, then the log's valid prefix replays in
  /// append order — per shard that is the writer's install order, so
  /// snapshots, versions, warm-cache residency, sketch-index layout and
  /// every top-k ranking come back byte-identical. The catalog must be
  /// configured with the same warm parameters and signature options the
  /// writer used (checked against the segment header).
  bool RestoreInto(service::CommunityCatalog* catalog, std::string* error,
                   OpenStats* stats = nullptr);

  /// Attaches the durable mutation sink: every subsequent catalog
  /// mutation appends a self-contained record to the current log, CRC'd
  /// and fsync-barriered per StoreOptions::log_sync_every.
  bool StartLogging(service::CommunityCatalog* catalog, std::string* error);

  /// Detaches the sink and seals the log tail with a final barrier.
  void StopLogging(service::CommunityCatalog* catalog);

  /// Folds the catalog's current state into a new sealed generation:
  /// writes seg-<G+1> (communities + digests + sketches + warm encoded
  /// artifacts), fsyncs it, commits the superblock, then deletes the
  /// old generation's files. On any failure the store still names the
  /// old generation — a half-written new segment is inert garbage.
  /// When logging is attached, the log rolls to the new generation.
  bool Checkpoint(const service::CommunityCatalog& catalog, std::string* error,
                  CheckpointStats* stats = nullptr);

  uint64_t generation() const { return generation_; }
  /// True when the store holds restorable state — a sealed segment or a
  /// non-empty log tail (e.g. a store that crashed before its first
  /// checkpoint). Drives the --warm_restart populate-or-restore choice.
  bool has_data() const {
    return generation_ >= 1 || !log_image_.records.empty();
  }
  /// Records durably appended to the current log by this process.
  uint64_t log_records() const {
    return writer_ == nullptr ? 0 : writer_->records_appended();
  }

  std::string SuperblockPath() const;
  std::string SegmentPath(uint64_t generation) const;
  std::string LogPath(uint64_t generation) const;

 private:
  explicit Store(StoreOptions options) : options_(std::move(options)) {}

  bool CommitSuperblock(uint64_t generation, std::string* error);

  StoreOptions options_;
  uint64_t generation_ = 0;
  std::shared_ptr<MappedSegment> segment_;  // null when generation has none
  LogImage log_image_;
  /// Valid end of the current generation's log file: seeded from the
  /// open-time ReadLog, advanced to the writer's end_offset() whenever
  /// a writer detaches. StartLogging resumes (and truncates) HERE — not
  /// at the stale open-time length, which would chop records a previous
  /// logging session of this process already acknowledged as durable.
  uint64_t log_end_ = 0;
  /// Guards writer_ swap (checkpoint log roll) against sink appends.
  std::mutex writer_mu_;
  std::unique_ptr<LogWriter> writer_;
  bool logging_ = false;
};

}  // namespace csj::persist

#endif  // CSJ_PERSIST_STORE_H_
