#ifndef CSJ_PERSIST_CRC32_H_
#define CSJ_PERSIST_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace csj::persist {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum guarding every persisted region: superblock, segment
/// header, section payloads, log records. Software slice-by-8: one
/// 8 KiB table, ~1 byte/cycle, no ISA dependence — fast enough for the
/// write path and for csj_fsck's full-store sweep, and the store never
/// CRCs payloads on the zero-copy open path.
///
/// `seed` is the running CRC for incremental use (pass the previous
/// return value); a one-shot caller passes the default.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace csj::persist

#endif  // CSJ_PERSIST_CRC32_H_
