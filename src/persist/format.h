#ifndef CSJ_PERSIST_FORMAT_H_
#define CSJ_PERSIST_FORMAT_H_

#include <cstdint>

namespace csj::persist {

/// On-disk layout of a catalog store directory. All integers are
/// LITTLE-ENDIAN, all structs are packed exactly as declared (static
/// asserts below pin the sizes); the mapped structs are read in place,
/// so the format is only openable on little-endian hosts — which is
/// every deployment target, and csj_fsck would reject a foreign file
/// anyway via its magic/CRC checks.
///
/// A store directory holds three file classes:
///
///   superblock.csj   the 64-byte commit record naming the current
///                    GENERATION G (written atomically: tmp + fsync +
///                    rename + directory fsync)
///   seg-<G>.csj      the sealed columnar segment of generation G
///                    (absent when G == 0: a fresh store that has never
///                    checkpointed)
///   log-<G>.csj      the append-only mutation log of everything after
///                    generation G's seal (absent until the first
///                    logged mutation)
///
/// A CHECKPOINT writes seg-<G+1> from the live catalog, fsyncs it,
/// commits a new superblock naming G+1, then deletes seg-<G> and
/// log-<G>. Crash at any point leaves either a complete generation G
/// (new files are garbage, ignored and deleted on next open) or a
/// complete generation G+1 (old files are garbage) — never a mix,
/// because readers only trust what the committed superblock names.

namespace detail {
constexpr uint64_t Magic(const char (&tag)[9]) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(tag[i]);
  }
  return value;
}
}  // namespace detail

inline constexpr uint64_t kSuperblockMagic = detail::Magic("CSJSUPR\0");
inline constexpr uint64_t kSegmentMagic = detail::Magic("CSJSEG1\0");
inline constexpr uint64_t kLogMagic = detail::Magic("CSJLOG1\0");
inline constexpr uint32_t kFormatVersion = 1;

/// Section payloads are aligned to 64 bytes inside the segment so every
/// mapped column starts cache-line aligned (the encoded columns are read
/// with unaligned vector loads regardless, but alignment keeps rows from
/// straddling lines gratuitously).
inline constexpr uint64_t kSectionAlign = 64;

/// The 64-byte commit record. crc covers bytes [0, 60).
struct Superblock {
  uint64_t magic = kSuperblockMagic;
  uint32_t format_version = kFormatVersion;
  uint32_t reserved0 = 0;
  uint64_t generation = 0;
  uint8_t reserved1[36] = {};
  uint32_t crc = 0;
};
static_assert(sizeof(Superblock) == 64);

/// Segment flags.
inline constexpr uint32_t kSegHasSignatures = 1u << 0;
inline constexpr uint32_t kSegHasEncodings = 1u << 1;

/// The 64-byte segment header; crc covers bytes [0, 60). The section
/// descriptor table (section_count * sizeof(SectionDesc) bytes,
/// table_crc-guarded) follows immediately at byte 64.
struct SegmentHeader {
  uint64_t magic = kSegmentMagic;
  uint32_t format_version = kFormatVersion;
  uint32_t section_count = 0;
  uint64_t entry_count = 0;
  /// The writer catalog's next version at seal time: every stored entry
  /// version is < next_version, and recovery resumes issuing from it.
  uint64_t next_version = 0;
  /// Warm-cache parameters the encoded sections were built for. A
  /// reader configured differently must rebuild instead of adopting.
  uint32_t warm_eps = 0;
  uint32_t warm_parts = 0;
  /// SignatureOptions::quantiles the sketch tables were built with
  /// (meaningful iff kSegHasSignatures).
  uint32_t sig_quantiles = 0;
  uint32_t flags = 0;
  uint64_t file_size = 0;
  uint32_t table_crc = 0;  ///< CRC of the section descriptor table
  uint32_t crc = 0;
};
static_assert(sizeof(SegmentHeader) == 64);

/// Column kinds. The element type and expected length of each section
/// are fixed by its kind (n = entry_count, U = total users, C = total
/// counters, S = total sums = sum_i users_i * parts_i, W = total padded
/// window values, see the prefix sections):
enum class SectionKind : uint32_t {
  kIds = 1,           ///< uint64[n]   entry ids, strictly ascending
  kVersions = 2,      ///< uint64[n]   entry versions, unique
  kDims = 3,          ///< uint32[n]   d per entry, >= 1
  kFingerprints = 4,  ///< uint64[n]   digest fingerprints
  kMaxCounters = 5,   ///< uint32[n]   digest max counters
  kNamePrefix = 6,    ///< uint64[n+1] byte offsets into kNames
  kNames = 7,         ///< uint8[...]  concatenated entry names
  kUsersPrefix = 8,   ///< uint64[n+1] user-count prefix sums (total U)
  kCountsPrefix = 9,  ///< uint64[n+1] counter prefix sums (total C)
  kCounts = 10,       ///< uint32[C]   row-major community counters
  kSampled = 11,      ///< uint32[n]   signature sampled counts
  kSigPrefix = 12,    ///< uint64[n+1] sketch-table prefix sums
  kSigTables = 13,    ///< uint32[...] quantile tables, d_i*(q+1) each
  kSumsPrefix = 14,   ///< uint64[n+1] part-sum prefix sums (total S)
  kEncBIds = 15,      ///< uint64[U]   EncodedB encoded ids (sorted)
  kEncBReal = 16,     ///< uint32[U]   EncodedB real ids
  kEncBSums = 17,     ///< uint64[S]   EncodedB part sums
  kEncAMins = 18,     ///< uint64[U]   EncodedA encoded mins (sorted)
  kEncAMaxs = 19,     ///< uint64[U]   EncodedA encoded maxs
  kEncAReal = 20,     ///< uint32[U]   EncodedA real ids
  kEncACols = 21,     ///< uint64[2S]  EncodedA part-major lo/hi columns
  kWindowPrefix = 22, ///< uint64[n+1] padded-window prefix sums (total W)
  kEncAWindow = 23,   ///< uint32[W]   EncodedA verify windows (sorted order)
  kComWindow = 24,    ///< uint32[W]   community verify windows (user order)
};

/// One section descriptor (32 bytes). Payload bytes live at
/// [offset, offset + byte_size) in the file, offset % kSectionAlign == 0.
/// `crc` covers the payload; the open path trusts it unchecked (fsck
/// verifies), so a mapped segment is usable without touching a payload
/// page.
struct SectionDesc {
  uint32_t kind = 0;
  uint32_t elem_size = 0;
  uint64_t offset = 0;
  uint64_t byte_size = 0;
  uint32_t crc = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(SectionDesc) == 32);

/// The 32-byte log file header; crc covers bytes [0, 28).
struct LogHeader {
  uint64_t magic = kLogMagic;
  uint32_t format_version = kFormatVersion;
  uint32_t reserved = 0;
  /// The generation this log extends: records apply on top of
  /// seg-<generation>, and every upsert's version is >=
  /// that segment's next_version.
  uint64_t generation = 0;
  uint32_t reserved2 = 0;
  uint32_t crc = 0;
};
static_assert(sizeof(LogHeader) == 32);

/// Log record framing: an 8-byte prefix { uint32 payload_size,
/// uint32 payload_crc } followed by payload_size payload bytes. The
/// payload starts with a uint32 kind:
///
///   kUpsert: u32 kind, u32 d, u64 id, u64 version, u32 users,
///            u32 name_size, name bytes, users*d uint32 counters
///   kRemove: u32 kind, u32 reserved, u64 id
///
/// Records are not aligned; the reader walks them sequentially. Any
/// record whose prefix is short, whose payload is short, or whose CRC
/// mismatches marks the TORN TAIL: everything before it is the durable
/// prefix, everything from it on is discarded (csj_fsck --repair
/// truncates it; a reopened writer truncates before appending).
inline constexpr uint32_t kLogUpsert = 1;
inline constexpr uint32_t kLogRemove = 2;

struct LogRecordPrefix {
  uint32_t payload_size = 0;
  uint32_t payload_crc = 0;
};
static_assert(sizeof(LogRecordPrefix) == 8);

}  // namespace csj::persist

#endif  // CSJ_PERSIST_FORMAT_H_
