#ifndef CSJ_PERSIST_FSCK_H_
#define CSJ_PERSIST_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace csj::persist {

struct FsckOptions {
  std::string dir;
  /// Recompute derived artifacts (digests, sketches, encodings,
  /// windows) from the stored counters and byte-compare against the
  /// stored columns. Catches writer bugs and semantic drift that CRCs
  /// cannot (CRCs prove the bytes are what was written, recomputation
  /// proves what was written is what the builders produce today).
  bool deep = true;
  /// Truncate a torn log tail in place (the only mutation fsck ever
  /// performs; everything else is strictly read-only).
  bool repair = false;
};

/// One verifier finding. `fatal` findings mean the store must not be
/// served; non-fatal ones (a torn log tail, leftover files from an
/// interrupted checkpoint) are expected crash residue that open-time
/// recovery handles.
struct FsckFinding {
  bool fatal = false;
  std::string message;
};

struct FsckReport {
  std::vector<FsckFinding> findings;
  uint64_t generation = 0;
  uint64_t segment_entries = 0;
  uint64_t log_records = 0;
  uint64_t torn_tail_bytes = 0;
  bool repaired = false;

  bool clean() const {
    for (const FsckFinding& finding : findings) {
      if (finding.fatal) return false;
    }
    return true;
  }
};

/// Offline store verifier: walks superblock → segment → log and
/// validates every layer — file magics, header and section-table CRCs,
/// SECTION PAYLOAD CRCs (the check the zero-copy open path skips),
/// offset/bound/alignment sanity, id ordering, version uniqueness and
/// monotonicity against next_version, prefix-array consistency, log
/// record framing and CRCs, and log-upsert versions against the sealed
/// generation's horizon. With `deep` it additionally recomputes each
/// entry's digest, sketch table, encoded buffers and verify windows
/// from the stored counters and requires byte agreement.
///
/// Returns false only when the directory cannot be walked at all;
/// corruption is reported through the findings.
bool FsckStore(const FsckOptions& options, FsckReport* report);

}  // namespace csj::persist

#endif  // CSJ_PERSIST_FSCK_H_
