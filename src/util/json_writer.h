#ifndef CSJ_UTIL_JSON_WRITER_H_
#define CSJ_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>

namespace csj::util {

/// Minimal streaming JSON writer for machine-readable experiment output
/// (the bench binaries' --json mode and the CLI tool). Produces compact,
/// valid JSON; no reading, no DOM. Keys and string values are escaped.
///
/// Usage:
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("method"); json.String("Ex-MinMax");
///   json.Key("similarity"); json.Double(0.2081);
///   json.Key("pairs"); json.BeginArray();
///   json.BeginObject(); ... json.EndObject();
///   json.EndArray();
///   json.EndObject();
///   std::string out = json.Take();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; must be followed by exactly one value.
  void Key(const std::string& name);

  void String(const std::string& value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Returns the JSON text; the writer must be at nesting depth 0.
  std::string Take();

 private:
  void BeforeValue();
  void Escape(const std::string& text);

  std::string out_;
  // Comma bookkeeping per nesting level: true when the next element needs
  // a leading comma. Depth is bounded in practice; a byte per level.
  std::string needs_comma_;
  bool pending_key_ = false;
};

}  // namespace csj::util

#endif  // CSJ_UTIL_JSON_WRITER_H_
