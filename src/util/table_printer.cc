#include "util/table_printer.h"

#include <algorithm>

#include "util/logging.h"

namespace csj::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CSJ_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CSJ_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string out = render_row(header_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += "|";
    rule.append(widths[c] + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(std::FILE* out) const {
  const std::string text = ToString();
  std::fwrite(text.data(), 1, text.size(), out);
}

}  // namespace csj::util
