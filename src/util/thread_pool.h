#ifndef CSJ_UTIL_THREAD_POOL_H_
#define CSJ_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csj::util {

/// Persistent work-sharing thread pool.
///
/// A pool owns `threads - 1` long-lived worker threads; the thread that
/// calls Run() is the remaining worker, so a pool of size T applies T
/// threads to a job without a single thread spawn on the hot path.
/// Jobs are "parallel for" shaped: Run(tasks, body) invokes body(t) for
/// every t in [0, tasks) exactly once. Tasks are claimed DYNAMICALLY from
/// a shared atomic counter in ascending order ("work-stealing-lite"): a
/// worker that finishes a cheap task immediately claims the next one, so
/// skewed task costs self-balance without any migration machinery.
///
/// Determinism: the pool controls only WHICH thread runs a task, never
/// task identity or count, so callers that write task t's output into
/// slot t and merge slots in index order get byte-identical results for
/// every pool size — the contract util::ParallelFor builds on.
///
/// Re-entrancy: Run() called from inside a pool task executes inline on
/// the calling worker (no deadlock, no oversubscription). Concurrent
/// Run() calls from distinct external threads serialize on the job lock.
class ThreadPool {
 public:
  /// A pool that applies up to `threads` threads to each job (the caller
  /// plus `threads - 1` persistent workers). `threads == 1` builds a
  /// degenerate pool whose Run() is an inline loop.
  explicit ThreadPool(uint32_t threads);

  /// Joins all workers. Must not be called while a job is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(t) for every t in [0, tasks) and returns when all calls
  /// have finished. `parallelism` caps the number of threads applied to
  /// this job (including the caller); the default applies the whole pool.
  /// Tasks must not throw (csjoin uses CSJ_CHECK, which aborts).
  void Run(uint32_t tasks, const std::function<void(uint32_t)>& body,
           uint32_t parallelism = UINT32_MAX);

  /// Threads this pool can apply to a job (workers + the caller).
  uint32_t threads() const {
    return static_cast<uint32_t>(workers_.size()) + 1;
  }

  /// True on a thread currently executing a pool task (any pool).
  static bool OnWorkerThread();

  /// The process-wide pool, lazily built with DefaultThreads() on first
  /// use and intentionally never destroyed (worker threads must not be
  /// joined during static destruction). Library entry points that take an
  /// optional `ThreadPool*` fall back to this instance when given null —
  /// the injectable-instance seam the tests use.
  static ThreadPool& Global();

  /// Size Global() will be built with: the CSJ_THREADS environment
  /// variable when set to a positive integer, else
  /// std::thread::hardware_concurrency() (min 1).
  static uint32_t DefaultThreads();

 private:
  void WorkerLoop();
  /// Claims and runs tasks of the current generation until exhausted.
  void DrainTasks(const std::function<void(uint32_t)>& body);

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes workers: new job / shutdown
  std::condition_variable done_cv_;  ///< wakes the submitter
  // Job slot, guarded by mutex_ except for the atomics.
  uint64_t generation_ = 0;          ///< bumped once per job
  const std::function<void(uint32_t)>* body_ = nullptr;
  uint32_t total_ = 0;               ///< tasks in the current job
  uint32_t max_workers_ = 0;         ///< workers allowed into the job
  uint32_t joined_ = 0;              ///< workers that entered the job
  uint32_t active_ = 0;              ///< workers still inside DrainTasks
  // The two claim-loop atomics are RMW'd once per task by every worker;
  // each gets its own cache line so claiming a task never invalidates the
  // completion counter's line (or the mutex word) on the other cores.
  alignas(64) std::atomic<uint32_t> next_{0};  ///< next unclaimed task
  alignas(64) std::atomic<uint32_t> completed_{0};
  bool shutdown_ = false;

  std::mutex submit_mutex_;          ///< serializes external Run() calls
  std::vector<std::thread> workers_;
};

}  // namespace csj::util

#endif  // CSJ_UTIL_THREAD_POOL_H_
