#ifndef CSJ_UTIL_PARALLEL_H_
#define CSJ_UTIL_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace csj::util {

class ThreadPool;

/// Runs `body(chunk_begin, chunk_end, chunk_index)` over a static
/// partition of [begin, end) into `threads` near-equal contiguous chunks.
///
/// Static partitioning is deliberate: each chunk's output can be kept in
/// a chunk-local buffer and concatenated in chunk order afterwards, so a
/// parallel run produces BYTE-IDENTICAL results to the serial run — the
/// property the parallel join variants rely on (and the tests assert).
/// The partition (chunk count and boundaries) depends only on the range
/// and `threads`, never on the executing pool.
///
/// Execution rides the persistent `pool` (null = ThreadPool::Global());
/// chunks are claimed dynamically by the pool's workers, so no thread is
/// spawned per call. `threads == 1` (the paper's evaluation setting) runs
/// inline with no pool interaction at all. `threads` is clamped to the
/// range size.
void ParallelFor(uint32_t begin, uint32_t end, uint32_t threads,
                 const std::function<void(uint32_t chunk_begin,
                                          uint32_t chunk_end,
                                          uint32_t chunk_index)>& body,
                 ThreadPool* pool = nullptr);

/// Number of chunks ParallelFor will actually use for this range.
uint32_t ParallelChunks(uint32_t begin, uint32_t end, uint32_t threads);

}  // namespace csj::util

#endif  // CSJ_UTIL_PARALLEL_H_
