#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace csj::util {

Histogram::Histogram(double lo, double hi, uint32_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  CSJ_CHECK_GT(buckets, 0u);
  CSJ_CHECK_LT(lo, hi);
  width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::Add(double value) {
  const double offset = (value - lo_) / width_;
  const auto raw = static_cast<int64_t>(std::floor(offset));
  const int64_t max_index = static_cast<int64_t>(counts_.size()) - 1;
  const int64_t index = std::clamp<int64_t>(raw, 0, max_index);
  ++counts_[static_cast<size_t>(index)];
  ++total_;
}

double Histogram::Fraction(uint32_t index) const {
  CSJ_CHECK_LT(index, counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[index]) / static_cast<double>(total_);
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based, ceil: the paper-standard
  // "smallest value with CDF >= q" definition).
  const auto rank = static_cast<uint64_t>(std::max<double>(
      1.0, std::ceil(q * static_cast<double>(total_))));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (seen + counts_[i] >= rank) {
      // Interpolate within the bucket: the (rank - seen)-th of counts_[i]
      // observations assumed evenly spread over the bucket.
      const double within = static_cast<double>(rank - seen) /
                            static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + within) * width_;
    }
    seen += counts_[i];
  }
  return hi_;
}

double Histogram::AdjacencyCollisionProbability() const {
  if (total_ == 0) return 1.0;
  double p = 0.0;
  const auto n = static_cast<uint32_t>(counts_.size());
  for (uint32_t i = 0; i < n; ++i) {
    const double fi = Fraction(i);
    if (fi == 0.0) continue;
    double neighborhood = fi;
    if (i > 0) neighborhood += Fraction(i - 1);
    if (i + 1 < n) neighborhood += Fraction(i + 1);
    p += fi * neighborhood;
  }
  return p;
}

}  // namespace csj::util
