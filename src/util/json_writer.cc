#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace csj::util {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already handled separators
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back() == 1) out_.push_back(',');
    needs_comma_.back() = 1;
  }
}

void JsonWriter::Escape(const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out_ += buffer;
        } else {
          out_.push_back(c);
        }
    }
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  needs_comma_.push_back(0);
}

void JsonWriter::EndObject() {
  CSJ_CHECK(!needs_comma_.empty());
  CSJ_CHECK(!pending_key_) << "dangling key before EndObject";
  needs_comma_.pop_back();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  needs_comma_.push_back(0);
}

void JsonWriter::EndArray() {
  CSJ_CHECK(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Key(const std::string& name) {
  CSJ_CHECK(!pending_key_) << "two keys in a row";
  if (!needs_comma_.empty()) {
    if (needs_comma_.back() == 1) out_.push_back(',');
    needs_comma_.back() = 1;
  }
  out_.push_back('"');
  Escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_.push_back('"');
  Escape(value);
  out_.push_back('"');
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Inf
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  out_ += buffer;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

std::string JsonWriter::Take() {
  CSJ_CHECK(needs_comma_.empty()) << "unbalanced JSON nesting";
  CSJ_CHECK(!pending_key_);
  std::string result = std::move(out_);
  out_.clear();
  return result;
}

}  // namespace csj::util
