#ifndef CSJ_UTIL_ZIPF_H_
#define CSJ_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace csj::util {

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s.
///
/// Used by the VK-like generator to model the heavy-tailed popularity of
/// categories and the heavy-tailed activity of users observed in the
/// paper's Table 1 (total likes per category span four orders of
/// magnitude). Sampling is O(log n) via binary search on the precomputed
/// cumulative distribution.
class ZipfDistribution {
 public:
  /// Builds the CDF for `n` ranks with exponent `s >= 0`. `s == 0`
  /// degenerates to the uniform distribution; larger `s` concentrates mass
  /// on the smallest ranks.
  ZipfDistribution(uint32_t n, double s);

  /// Draws one rank in [0, n).
  uint32_t Sample(Rng& rng) const;

  /// Probability mass of `rank`.
  double Pmf(uint32_t rank) const;

  uint32_t n() const { return static_cast<uint32_t>(cdf_.size()); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); cdf_.back() == 1.
};

}  // namespace csj::util

#endif  // CSJ_UTIL_ZIPF_H_
