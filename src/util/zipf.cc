#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace csj::util {

ZipfDistribution::ZipfDistribution(uint32_t n, double s) : s_(s) {
  CSJ_CHECK_GT(n, 0u);
  CSJ_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t rank = 0; rank < n; ++rank) {
    total += std::pow(static_cast<double>(rank) + 1.0, -s);
    cdf_[rank] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

uint32_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint32_t rank) const {
  CSJ_CHECK_LT(rank, cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace csj::util
