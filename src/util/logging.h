#ifndef CSJ_UTIL_LOGGING_H_
#define CSJ_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace csj::util {

/// Terminates the process with a formatted message. Used by the CHECK
/// macros below; exposed so callers can report fatal conditions with the
/// same file:line prefix.
[[noreturn]] inline void FatalError(const char* file, int line,
                                    const std::string& message) {
  std::fprintf(stderr, "[csj fatal] %s:%d: %s\n", file, line,
               message.c_str());
  std::abort();
}

namespace internal_logging {

/// Stream-collecting helper that aborts when destroyed. Enables the
/// `CSJ_CHECK(cond) << "detail"` syntax without heap allocation on the
/// non-failing fast path (the object is only constructed on failure).
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition)
      : file_(file), line_(line) {
    stream_ << "check failed: " << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() { FatalError(file_, line_, stream_.str()); }

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace csj::util

/// Aborts with a diagnostic when `condition` is false. Active in all build
/// types: the checked invariants guard algorithm correctness, not debugging
/// conveniences, and their cost is negligible next to the joins themselves.
#define CSJ_CHECK(condition)                                            \
  if (condition) {                                                      \
  } else /* NOLINT */                                                   \
    ::csj::util::internal_logging::FatalMessage(__FILE__, __LINE__,     \
                                                #condition)

#define CSJ_CHECK_EQ(a, b) CSJ_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CSJ_CHECK_NE(a, b) CSJ_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CSJ_CHECK_LE(a, b) CSJ_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CSJ_CHECK_LT(a, b) CSJ_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CSJ_CHECK_GE(a, b) CSJ_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CSJ_CHECK_GT(a, b) CSJ_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // CSJ_UTIL_LOGGING_H_
