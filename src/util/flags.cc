#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace csj::util {

void Flags::Define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  CSJ_CHECK(!specs_.count(name)) << "duplicate flag --" << name;
  specs_[name] = Spec{default_value, help, default_value};
  order_.push_back(name);
}

std::string Flags::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& name : order_) {
    const Spec& spec = specs_.at(name);
    out += "  --" + name + " (default: " + spec.default_value + ")\n      " +
           spec.help + "\n";
  }
  return out;
}

bool Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n",
                   arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s is missing a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   Usage(argv[0]).c_str());
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string Flags::GetString(const std::string& name) const {
  const auto it = specs_.find(name);
  CSJ_CHECK(it != specs_.end()) << "undeclared flag --" << name;
  return it->second.value;
}

int64_t Flags::GetInt(const std::string& name) const {
  return std::strtoll(GetString(name).c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name) const {
  const std::string v = GetString(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace csj::util
