#include "util/format.h"

#include <cstdio>

namespace csj::util {

std::string WithCommas(uint64_t value) {
  const std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

std::string Fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string Percent(double fraction) { return Fixed(fraction * 100.0, 2) + "%"; }

std::string SecondsCell(double seconds) {
  char buffer[64];
  if (seconds >= 10.0) {
    std::snprintf(buffer, sizeof(buffer), "(%.0f s)", seconds);
  } else if (seconds >= 0.1) {
    std::snprintf(buffer, sizeof(buffer), "(%.2f s)", seconds);
  } else {
    std::snprintf(buffer, sizeof(buffer), "(%.2f ms)", seconds * 1e3);
  }
  return buffer;
}

}  // namespace csj::util
