#ifndef CSJ_UTIL_TIMER_H_
#define CSJ_UTIL_TIMER_H_

#include <chrono>

namespace csj::util {

/// Monotonic wall-clock stopwatch. The paper reports per-couple execution
/// time in seconds; every method run is wrapped in one of these.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace csj::util

#endif  // CSJ_UTIL_TIMER_H_
