#ifndef CSJ_UTIL_RNG_H_
#define CSJ_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>

namespace csj::util {

/// SplitMix64 mixing step. Used standalone for seed derivation and inside
/// `Rng` for state initialization; statistically solid and, unlike
/// std::mt19937, identical across standard-library implementations so every
/// dataset in this repository is bit-reproducible.
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic 64-bit pseudo-random generator (xoshiro256**).
///
/// All generators in csjoin are seeded explicitly; two runs with the same
/// seed produce identical datasets, case studies and therefore identical
/// join results on any platform.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 256-bit state words via SplitMix64 as recommended by
  /// the xoshiro authors.
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9BULL) {
    uint64_t sm = seed;
    for (uint64_t& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Returns the next 64 pseudo-random bits.
  uint64_t operator()() {
    const uint64_t result = RotL(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = RotL(state_[3], 45);
    return result;
  }

  /// Returns a uniform integer in [0, bound). Uses Lemire's multiply-shift
  /// rejection method; `bound` must be positive.
  uint64_t Below(uint64_t bound) {
    const uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    while (true) {
      const uint64_t raw = (*this)();
      if (raw >= threshold) return raw % bound;
    }
  }

  /// Returns a uniform integer in the closed interval [lo, hi].
  uint64_t Between(uint64_t lo, uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Derives an independent child generator; lets one master seed fan out
  /// into per-category / per-community streams without correlation.
  Rng Fork() { return Rng((*this)()); }

 private:
  static constexpr uint64_t RotL(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Fisher-Yates shuffle using `Rng`; std::shuffle's traversal order is
/// implementation-defined, which would break cross-platform reproducibility.
template <typename Container>
void Shuffle(Container& items, Rng& rng) {
  if (items.size() < 2) return;
  for (std::size_t i = items.size() - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.Below(i + 1));
    using std::swap;
    swap(items[i], items[j]);
  }
}

}  // namespace csj::util

#endif  // CSJ_UTIL_RNG_H_
