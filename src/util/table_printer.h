#ifndef CSJ_UTIL_TABLE_PRINTER_H_
#define CSJ_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace csj::util {

/// Column-aligned plain-text table writer used by every paper-table bench
/// so the regenerated tables visually line up with the paper's.
///
/// Usage:
///   TablePrinter t({"cID", "Ap-Baseline", "Ap-MinMax"});
///   t.AddRow({"1", "20.56% (442 s)", "20.58% (116 s)"});
///   t.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the header, a separator rule and all rows to `out`.
  void Print(std::FILE* out) const;

  /// Renders to a string (used by tests).
  std::string ToString() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace csj::util

#endif  // CSJ_UTIL_TABLE_PRINTER_H_
