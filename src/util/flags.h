#ifndef CSJ_UTIL_FLAGS_H_
#define CSJ_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace csj::util {

/// Minimal `--name value` / `--name=value` command-line parser for the
/// bench and example binaries. Unknown flags are an error so typos in
/// experiment invocations fail loudly instead of silently running the
/// default configuration.
class Flags {
 public:
  /// Declares a flag with its default and a help line. Must be called for
  /// every flag before Parse().
  void Define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv. On `--help` prints usage and returns false; on malformed
  /// or unknown flags prints a diagnostic and returns false.
  bool Parse(int argc, char** argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Renders the usage text (program name, each flag with default + help).
  std::string Usage(const std::string& program) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
    std::string value;
  };
  std::vector<std::string> order_;  // declaration order for --help
  std::map<std::string, Spec> specs_;
};

}  // namespace csj::util

#endif  // CSJ_UTIL_FLAGS_H_
