#include "util/parallel.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace csj::util {

uint32_t ParallelChunks(uint32_t begin, uint32_t end, uint32_t threads) {
  if (end <= begin) return 0;
  return std::min(std::max<uint32_t>(threads, 1), end - begin);
}

void ParallelFor(uint32_t begin, uint32_t end, uint32_t threads,
                 const std::function<void(uint32_t, uint32_t, uint32_t)>&
                     body,
                 ThreadPool* pool) {
  const uint32_t chunks = ParallelChunks(begin, end, threads);
  if (chunks == 0) return;
  if (chunks == 1) {
    body(begin, end, 0);
    return;
  }

  // The same partition the per-call-thread implementation used: the first
  // `extra` chunks carry one extra element, computed arithmetically so a
  // chunk's bounds depend only on its index.
  const uint32_t total = end - begin;
  const uint32_t base = total / chunks;
  const uint32_t extra = total % chunks;
  const auto chunk_bounds = [&](uint32_t c, uint32_t* lo, uint32_t* hi) {
    *lo = begin + c * base + std::min(c, extra);
    *hi = *lo + base + (c < extra ? 1 : 0);
  };
#ifndef NDEBUG
  uint32_t check_lo = 0;
  uint32_t check_hi = 0;
  chunk_bounds(chunks - 1, &check_lo, &check_hi);
  CSJ_CHECK_EQ(check_hi, end);
#endif

  ThreadPool& executor = pool != nullptr ? *pool : ThreadPool::Global();
  executor.Run(chunks, [&](uint32_t c) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    chunk_bounds(c, &lo, &hi);
    body(lo, hi, c);
  });
}

}  // namespace csj::util
