#include "util/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace csj::util {

uint32_t ParallelChunks(uint32_t begin, uint32_t end, uint32_t threads) {
  if (end <= begin) return 0;
  return std::min(std::max<uint32_t>(threads, 1), end - begin);
}

void ParallelFor(uint32_t begin, uint32_t end, uint32_t threads,
                 const std::function<void(uint32_t, uint32_t, uint32_t)>&
                     body) {
  const uint32_t chunks = ParallelChunks(begin, end, threads);
  if (chunks == 0) return;
  const uint32_t total = end - begin;
  if (chunks == 1) {
    body(begin, end, 0);
    return;
  }

  const uint32_t base = total / chunks;
  const uint32_t extra = total % chunks;
  std::vector<std::thread> workers;
  workers.reserve(chunks);
  uint32_t chunk_begin = begin;
  for (uint32_t c = 0; c < chunks; ++c) {
    const uint32_t width = base + (c < extra ? 1 : 0);
    const uint32_t chunk_end = chunk_begin + width;
    workers.emplace_back(
        [&body, chunk_begin, chunk_end, c]() { body(chunk_begin, chunk_end, c); });
    chunk_begin = chunk_end;
  }
  CSJ_CHECK_EQ(chunk_begin, end);
  for (std::thread& worker : workers) worker.join();
}

}  // namespace csj::util
