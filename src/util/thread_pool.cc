#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace csj::util {

namespace {

/// Set while a thread is executing pool tasks; nested Run() calls detect
/// it and degrade to an inline loop instead of deadlocking on the pool.
thread_local bool t_on_worker = false;

}  // namespace

ThreadPool::ThreadPool(uint32_t threads) {
  const uint32_t spawn = std::max<uint32_t>(threads, 1) - 1;
  workers_.reserve(spawn);
  for (uint32_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::OnWorkerThread() { return t_on_worker; }

void ThreadPool::DrainTasks(const std::function<void(uint32_t)>& body) {
  const bool was_on_worker = t_on_worker;
  t_on_worker = true;
  for (;;) {
    const uint32_t task = next_.fetch_add(1, std::memory_order_relaxed);
    if (task >= total_) break;
    body(task);
    if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      // All tasks done: wake the submitter. Lock so the notify cannot
      // slip between its predicate check and its wait.
      const std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
  t_on_worker = was_on_worker;
}

void ThreadPool::Run(uint32_t tasks,
                     const std::function<void(uint32_t)>& body,
                     uint32_t parallelism) {
  if (tasks == 0) return;
  // Inline fast paths: single task, degenerate pool, capped-to-one jobs,
  // and re-entrant calls from inside a pool task.
  if (tasks == 1 || workers_.empty() || parallelism <= 1 || t_on_worker) {
    const bool was_on_worker = t_on_worker;
    t_on_worker = true;
    for (uint32_t t = 0; t < tasks; ++t) body(t);
    t_on_worker = was_on_worker;
    return;
  }

  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    total_ = tasks;
    max_workers_ = std::min(parallelism - 1,
                            static_cast<uint32_t>(workers_.size()));
    joined_ = 0;
    next_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();

  DrainTasks(body);  // the submitting thread is a full participant

  std::unique_lock<std::mutex> lock(mutex_);
  // Wait for completion AND for every joined worker to leave the claim
  // loop: a worker still inside DrainTasks must not observe the next
  // job's reset counters through this job's body pointer.
  done_cv_.wait(lock, [&]() {
    return completed_.load(std::memory_order_acquire) == total_ &&
           active_ == 0;
  });
  body_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(uint32_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&]() {
        return shutdown_ || (generation_ != seen_generation &&
                             body_ != nullptr);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      if (joined_ >= max_workers_) continue;  // job is capped; sit out
      ++joined_;
      ++active_;
      body = body_;
    }
    DrainTasks(*body);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (active_ == 0) done_cv_.notify_all();
    }
  }
}

uint32_t ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("CSJ_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<uint32_t>(parsed);
  }
  return std::max<uint32_t>(std::thread::hardware_concurrency(), 1);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return *pool;
}

}  // namespace csj::util
