#ifndef CSJ_UTIL_HISTOGRAM_H_
#define CSJ_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace csj::util {

/// Equal-width histogram over [lo, hi]. Two consumers: dataset statistics
/// (Table 1 style summaries) and SuperEGO's data-driven dimension
/// reordering, which estimates per-dimension pruning power from the value
/// distribution.
class Histogram {
 public:
  /// `buckets >= 1`; values outside [lo, hi] are clamped into the edge
  /// buckets so callers never lose mass to range mismatches.
  Histogram(double lo, double hi, uint32_t buckets);

  void Add(double value);

  uint64_t total_count() const { return total_; }
  uint32_t bucket_count() const { return static_cast<uint32_t>(counts_.size()); }
  uint64_t bucket(uint32_t index) const { return counts_[index]; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Fraction of observed mass in `index`; 0 when the histogram is empty.
  double Fraction(uint32_t index) const;

  /// Empirical q-quantile (q in [0, 1]) with linear interpolation inside
  /// the bucket holding the q-th observation: the serving benchmarks'
  /// p50/p95/p99 latency reporter. Resolution is the bucket width —
  /// callers wanting tight tails size [lo, hi] from observed extremes and
  /// use enough buckets. 0 when the histogram is empty.
  double Quantile(double q) const;

  /// Probability that two independent draws from this empirical
  /// distribution land in the same or adjacent buckets — the chance an
  /// epsilon-grid filter with cell width == bucket width FAILS to prune a
  /// random pair on this dimension. SuperEGO orders dimensions by
  /// ascending failure probability (most selective first).
  double AdjacencyCollisionProbability() const;

 private:
  double lo_;
  double hi_;
  double width_;
  uint64_t total_ = 0;
  std::vector<uint64_t> counts_;
};

}  // namespace csj::util

#endif  // CSJ_UTIL_HISTOGRAM_H_
