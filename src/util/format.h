#ifndef CSJ_UTIL_FORMAT_H_
#define CSJ_UTIL_FORMAT_H_

#include <cstdint>
#include <string>

namespace csj::util {

/// "1234567" -> "1,234,567" — the paper's tables print sizes and totals
/// with thousands separators.
std::string WithCommas(uint64_t value);

/// Similarity as the paper prints it: two decimals plus a percent sign,
/// e.g. 0.2056 -> "20.56%".
std::string Percent(double fraction);

/// Execution time as the paper prints it: "(442 s)" style when >= 10 s,
/// more precision for the sub-second runs typical at reduced scale.
std::string SecondsCell(double seconds);

/// Fixed-point with `digits` decimals.
std::string Fixed(double value, int digits);

}  // namespace csj::util

#endif  // CSJ_UTIL_FORMAT_H_
