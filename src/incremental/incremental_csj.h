#ifndef CSJ_INCREMENTAL_INCREMENTAL_CSJ_H_
#define CSJ_INCREMENTAL_INCREMENTAL_CSJ_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/community.h"
#include "core/encoding.h"
#include "core/join_options.h"
#include "core/types.h"

namespace csj::incremental {

/// Incremental exact CSJ against a fixed community A.
///
/// CSJ is an inherently incremental problem in production: subscribers
/// join and leave community B continuously, and the online system wants
/// the current similarity without re-running the whole join. This class
/// maintains a MAXIMUM one-to-one matching between the live B users and A
/// under B-side insertions and deletions:
///
///  * AddUser(vec) finds the new user's eps-candidates in A via the
///    MinMax encoded filter (Encd_A is built once, sorted by encoded_min,
///    and pruned with the encoded-id window + part ranges before any
///    d-dimensional comparison) and then runs one augmenting-path search
///    (Kuhn step, O(E) worst case) — the matching stays maximum after
///    every insertion.
///  * RemoveUser(b) detaches the user; if it was matched, one alternating
///    search from the freed A user restores maximality.
///
/// Invariant maintained at all times (property-tested against a
/// from-scratch Hopcroft-Karp): |matching| == maximum matching of the live
/// candidate graph. Amortized cost per update is tiny compared to a full
/// re-join: candidates per user are few, and most updates touch only
/// their own neighbourhood.
///
/// Updates to A (the brand's own audience) are comparatively rare and are
/// handled by rebuilding: construct a new IncrementalCsj and re-add the
/// live B users.
class IncrementalCsj {
 public:
  /// Snapshots `a` (copied) and precomputes its encoded buffer. `options`
  /// supplies eps and the encoding part count.
  IncrementalCsj(const Community& a, const JoinOptions& options);

  /// Handle of a live B user, returned by AddUser. Handles are never
  /// reused.
  using Handle = uint32_t;

  /// Inserts a subscriber with preference vector `vec` (size d) into B
  /// and restores matching maximality. Returns the user's handle.
  Handle AddUser(std::span<const Count> vec);

  /// Removes a previously added subscriber. Returns false when the handle
  /// is unknown or already removed.
  bool RemoveUser(Handle handle);

  /// A-side churn: inserts a subscriber into community A and restores
  /// maximality (the new A user may absorb a previously stranded B user
  /// through an alternating path). Returns the new A user's id. Appended
  /// A users are candidate-checked by brute force rather than through the
  /// prebuilt encoded buffer — A churn is expected to be much rarer than
  /// B churn; rebuild the structure when A has changed wholesale.
  UserId AddAUser(std::span<const Count> vec);

  /// Removes an A user; its matched B user (if any) is re-augmented.
  /// Returns false when the id is unknown or already removed.
  bool RemoveAUser(UserId a);

  /// Live A users (initial size plus additions minus removals).
  uint32_t live_a_users() const { return live_a_users_; }

  /// Dimensionality and threshold this structure was built with; the
  /// serving layer validates attachment requests against them.
  Dim d() const { return a_.d(); }
  Epsilon eps() const { return eps_; }

  /// similarity(B, A) over the LIVE B users (Eq. 1). 0 when B is empty.
  double Similarity() const;

  /// Number of live B users / currently matched pairs.
  uint32_t live_users() const { return live_users_; }
  uint32_t matched_pairs() const { return matched_pairs_; }

  /// The A user currently matched to `handle`, if any.
  std::optional<UserId> MatchOf(Handle handle) const;

  /// True when the CSJ admissibility rule ceil(|A|/2) <= |B| <= |A|
  /// currently holds; Similarity() is only CSJ-meaningful then.
  bool SizesAdmissible() const;

  /// Candidate count of a live user (its degree in the candidate graph).
  uint32_t CandidateCount(Handle handle) const;

 private:
  static constexpr uint32_t kFree = 0xFFFFFFFFu;

  /// Kuhn augmenting DFS from live B user `b`; `visited_a` guards one
  /// search. Returns true when an augmenting path was found and applied.
  bool TryAugment(uint32_t b, std::vector<bool>& visited_a);

  /// Symmetric Kuhn DFS that tries to find a partner for the exposed A
  /// user `a` (an augmenting path ENDING at `a` can start at any
  /// unmatched live b; searching from the A side visits exactly the
  /// alternating-reachable part). Used after a removal frees an A user.
  bool TryMatchA(UserId a, std::vector<bool>& visited_b);

  /// Computes the eps-candidates of `vec` in A using the encoded filter.
  std::vector<UserId> FindCandidates(std::span<const Count> vec) const;

  Community a_;
  Epsilon eps_;
  Encoder encoder_;
  EncodedA encd_a_;     // covers the INITIAL A users only
  uint32_t initial_a_;  // A users present at construction

  // Per B handle (dense, grows with AddUser):
  std::vector<std::vector<UserId>> candidates_;  // sorted a ids
  std::vector<std::vector<Count>> vectors_;      // live users' counters
  std::vector<bool> alive_;
  std::vector<uint32_t> match_b_;  // handle -> a id or kFree

  // Per A user (dense, grows with AddAUser):
  std::vector<bool> alive_a_;
  std::vector<uint32_t> match_a_;  // a id -> handle or kFree
  // Reverse adjacency with lazy deletion: a id -> handles that listed it.
  std::vector<std::vector<uint32_t>> adj_a_;

  uint32_t live_users_ = 0;
  uint32_t live_a_users_ = 0;
  uint32_t matched_pairs_ = 0;
};

}  // namespace csj::incremental

#endif  // CSJ_INCREMENTAL_INCREMENTAL_CSJ_H_
