#include "incremental/incremental_csj.h"

#include <algorithm>

#include "core/epsilon_predicate.h"
#include "util/logging.h"

namespace csj::incremental {

IncrementalCsj::IncrementalCsj(const Community& a, const JoinOptions& options)
    : a_(a),
      eps_(options.eps),
      encoder_(a.d(), options.eps, options.encoding_parts),
      encd_a_(a_, encoder_),
      initial_a_(a.size()),
      alive_a_(a.size(), true),
      match_a_(a.size(), kFree),
      adj_a_(a.size()),
      live_a_users_(a.size()) {}

std::vector<UserId> IncrementalCsj::FindCandidates(
    std::span<const Count> vec) const {
  CSJ_CHECK_EQ(vec.size(), a_.d());
  const uint64_t id = encoder_.EncodedId(vec);
  const std::vector<uint64_t> sums = encoder_.PartSums(vec);

  std::vector<UserId> candidates;
  // Initial A block: MinMax-filtered scan over the encoded buffer.
  const uint32_t na = encd_a_.size();
  for (uint32_t ia = 0; ia < na; ++ia) {
    if (id < encd_a_.encoded_min(ia)) break;  // MIN PRUNE: sorted by min
    if (id > encd_a_.encoded_max(ia)) continue;
    bool overlap = true;
    for (size_t p = 0; p < sums.size() && overlap; ++p) {
      const auto part = static_cast<uint32_t>(p);
      overlap = sums[p] >= encd_a_.part_lo(part)[ia] &&
                sums[p] <= encd_a_.part_hi(part)[ia];
    }
    if (!overlap) continue;
    const UserId real_a = encd_a_.real_id(ia);
    if (!alive_a_[real_a]) continue;
    if (EpsilonMatches(vec, a_.User(real_a), eps_)) {
      candidates.push_back(real_a);
    }
  }
  // Appended A users: brute force (rare, see AddAUser's contract).
  for (UserId real_a = initial_a_; real_a < a_.size(); ++real_a) {
    if (!alive_a_[real_a]) continue;
    if (EpsilonMatches(vec, a_.User(real_a), eps_)) {
      candidates.push_back(real_a);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

bool IncrementalCsj::TryAugment(uint32_t b, std::vector<bool>& visited_a) {
  for (const UserId a : candidates_[b]) {
    if (!alive_a_[a] || visited_a[a]) continue;
    visited_a[a] = true;
    const uint32_t holder = match_a_[a];
    if (holder == kFree || TryAugment(holder, visited_a)) {
      match_b_[b] = a;
      match_a_[a] = b;
      return true;
    }
  }
  return false;
}

bool IncrementalCsj::TryMatchA(UserId a, std::vector<bool>& visited_b) {
  for (const uint32_t b : adj_a_[a]) {
    if (!alive_[b] || visited_b[b]) continue;
    visited_b[b] = true;
    const uint32_t other_a = match_b_[b];
    if (other_a == kFree || TryMatchA(other_a, visited_b)) {
      match_b_[b] = a;
      match_a_[a] = b;
      return true;
    }
  }
  return false;
}

IncrementalCsj::Handle IncrementalCsj::AddUser(std::span<const Count> vec) {
  const auto handle = static_cast<Handle>(candidates_.size());
  candidates_.push_back(FindCandidates(vec));
  vectors_.emplace_back(vec.begin(), vec.end());
  alive_.push_back(true);
  match_b_.push_back(kFree);
  for (const UserId a : candidates_[handle]) {
    adj_a_[a].push_back(handle);
  }
  ++live_users_;

  std::vector<bool> visited_a(a_.size(), false);
  if (TryAugment(handle, visited_a)) ++matched_pairs_;
  return handle;
}

bool IncrementalCsj::RemoveUser(Handle handle) {
  if (handle >= alive_.size() || !alive_[handle]) return false;
  alive_[handle] = false;
  --live_users_;

  const uint32_t freed_a = match_b_[handle];
  // adj_a_ entries for this handle are removed lazily (alive_ checks).
  candidates_[handle].clear();
  candidates_[handle].shrink_to_fit();
  vectors_[handle].clear();
  vectors_[handle].shrink_to_fit();
  match_b_[handle] = kFree;
  if (freed_a == kFree) return true;

  match_a_[freed_a] = kFree;
  --matched_pairs_;

  // Restore maximality: the only A user whose exposure changed is
  // freed_a, so any new augmenting path ENDS there. Searching the
  // alternating paths from freed_a's side finds it if it exists.
  std::vector<bool> visited_b(alive_.size(), false);
  if (TryMatchA(freed_a, visited_b)) ++matched_pairs_;
  return true;
}

UserId IncrementalCsj::AddAUser(std::span<const Count> vec) {
  const UserId a = a_.AddUser(vec);
  alive_a_.push_back(true);
  match_a_.push_back(kFree);
  adj_a_.emplace_back();
  ++live_a_users_;

  // Extend every live B user's candidate list that eps-matches the new A
  // user (adjacency must stay complete for future alternating searches).
  for (uint32_t b = 0; b < alive_.size(); ++b) {
    if (!alive_[b]) continue;
    if (!EpsilonMatches(vectors_[b], a_.User(a), eps_)) continue;
    candidates_[b].push_back(a);  // ids grow, so the list stays sorted
    adj_a_[a].push_back(b);
  }

  std::vector<bool> visited_b(alive_.size(), false);
  if (TryMatchA(a, visited_b)) ++matched_pairs_;
  return a;
}

bool IncrementalCsj::RemoveAUser(UserId a) {
  if (a >= alive_a_.size() || !alive_a_[a]) return false;
  alive_a_[a] = false;
  --live_a_users_;
  adj_a_[a].clear();
  adj_a_[a].shrink_to_fit();

  const uint32_t freed_b = match_a_[a];
  match_a_[a] = kFree;
  if (freed_b == kFree) return true;

  match_b_[freed_b] = kFree;
  --matched_pairs_;
  std::vector<bool> visited_a(a_.size(), false);
  if (TryAugment(freed_b, visited_a)) ++matched_pairs_;
  return true;
}

double IncrementalCsj::Similarity() const {
  if (live_users_ == 0) return 0.0;
  return static_cast<double>(matched_pairs_) /
         static_cast<double>(live_users_);
}

std::optional<UserId> IncrementalCsj::MatchOf(Handle handle) const {
  if (handle >= alive_.size() || !alive_[handle]) return std::nullopt;
  if (match_b_[handle] == kFree) return std::nullopt;
  return match_b_[handle];
}

bool IncrementalCsj::SizesAdmissible() const {
  return csj::SizesAdmissible(live_users_, live_a_users_);
}

uint32_t IncrementalCsj::CandidateCount(Handle handle) const {
  if (handle >= alive_.size() || !alive_[handle]) return 0;
  uint32_t count = 0;
  for (const UserId a : candidates_[handle]) count += alive_a_[a] ? 1u : 0u;
  return count;
}

}  // namespace csj::incremental
