#ifndef CSJ_MATCHING_HOPCROFT_KARP_H_
#define CSJ_MATCHING_HOPCROFT_KARP_H_

#include <vector>

#include "core/join_result.h"
#include "matching/candidate_graph.h"

namespace csj::matching {

/// Hopcroft-Karp maximum bipartite matching, O(E * sqrt(V)).
///
/// The paper's CSF is a greedy heuristic; this is the provably maximum
/// matcher. It serves three roles in csjoin: (1) the oracle the tests
/// compare CSF against, (2) the opt-in `MatcherKind::kMaxMatching` backend
/// for the exact methods, and (3) one arm of bench_ablation_csf, which
/// quantifies how close CSF gets to the optimum on both dataset families.
///
/// Returns pairs over the graph's LOCAL indices; use
/// CandidateGraph::ToOriginalIds to translate.
std::vector<MatchedPair> HopcroftKarp(const CandidateGraph& graph);

/// Convenience wrapper over raw edges, returning ORIGINAL user ids.
std::vector<MatchedPair> HopcroftKarp(const std::vector<MatchedPair>& edges);

}  // namespace csj::matching

#endif  // CSJ_MATCHING_HOPCROFT_KARP_H_
