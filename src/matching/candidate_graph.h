#ifndef CSJ_MATCHING_CANDIDATE_GRAPH_H_
#define CSJ_MATCHING_CANDIDATE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "core/join_result.h"
#include "core/types.h"

namespace csj::matching {

/// Bipartite graph of candidate pairs: an edge <b, a> exists iff the two
/// users eps-match. Exact CSJ methods collect these edges (globally in
/// Ex-Baseline / Ex-SuperEGO, per safe segment in Ex-MinMax) and hand them
/// to a one-to-one matcher.
///
/// User ids are compressed to dense local indices so matchers can use flat
/// arrays regardless of which slice of B/A the edges touch; `BId`/`AId`
/// recover the original ids for the final result.
class CandidateGraph {
 public:
  /// Builds the graph from raw candidate edges. Duplicate edges are
  /// tolerated (deduplicated) since recursive joins may re-derive a pair.
  explicit CandidateGraph(const std::vector<MatchedPair>& edges);

  uint32_t num_b() const { return static_cast<uint32_t>(b_ids_.size()); }
  uint32_t num_a() const { return static_cast<uint32_t>(a_ids_.size()); }
  uint64_t num_edges() const { return num_edges_; }

  /// Adjacency (local a-indices, ascending) of local b-index `b`.
  const std::vector<uint32_t>& AdjB(uint32_t b) const { return adj_b_[b]; }
  /// Adjacency (local b-indices, ascending) of local a-index `a`.
  const std::vector<uint32_t>& AdjA(uint32_t a) const { return adj_a_[a]; }

  /// Original user id of local b-index / a-index.
  UserId BId(uint32_t b) const { return b_ids_[b]; }
  UserId AId(uint32_t a) const { return a_ids_[a]; }

  /// Translates a matching over local indices back to original user ids.
  std::vector<MatchedPair> ToOriginalIds(
      const std::vector<MatchedPair>& local_pairs) const;

 private:
  std::vector<UserId> b_ids_;             // local b-index -> original id
  std::vector<UserId> a_ids_;             // local a-index -> original id
  std::vector<std::vector<uint32_t>> adj_b_;
  std::vector<std::vector<uint32_t>> adj_a_;
  uint64_t num_edges_ = 0;
};

}  // namespace csj::matching

#endif  // CSJ_MATCHING_CANDIDATE_GRAPH_H_
