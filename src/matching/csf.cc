#include "matching/csf.h"

#include <algorithm>
#include <cstdint>

#include "util/logging.h"

namespace csj::matching {

namespace {

/// One side's bookkeeping: remaining degree per vertex, alive flags, and a
/// bucket queue (degree -> stack of vertex indices) with lazy deletion:
/// stale entries are skipped when popped by re-checking the live degree.
struct Side {
  std::vector<uint32_t> degree;
  std::vector<bool> alive;
  std::vector<std::vector<uint32_t>> buckets;

  explicit Side(uint32_t n) : degree(n, 0), alive(n, true) {}

  void InitBuckets(uint32_t max_degree) {
    buckets.assign(max_degree + 1, {});
    for (uint32_t v = 0; v < degree.size(); ++v) {
      if (degree[v] > 0) buckets[degree[v]].push_back(v);
    }
  }

  void Decrement(uint32_t v) {
    CSJ_CHECK_GT(degree[v], 0u);
    --degree[v];
    if (degree[v] > 0) buckets[degree[v]].push_back(v);
  }

  /// Pops the alive vertex whose current degree equals `bucket`, skipping
  /// stale entries. Returns false when that bucket is exhausted.
  bool PopFromBucket(uint32_t bucket, uint32_t* v_out) {
    auto& stack = buckets[bucket];
    while (!stack.empty()) {
      const uint32_t v = stack.back();
      stack.pop_back();
      if (alive[v] && degree[v] == bucket) {
        *v_out = v;
        return true;
      }
    }
    return false;
  }
};

}  // namespace

std::vector<MatchedPair> CoverSmallestFirst(const CandidateGraph& graph) {
  Side b_side(graph.num_b());
  Side a_side(graph.num_a());
  uint32_t max_degree = 1;
  for (uint32_t b = 0; b < graph.num_b(); ++b) {
    b_side.degree[b] = static_cast<uint32_t>(graph.AdjB(b).size());
    max_degree = std::max(max_degree, b_side.degree[b]);
  }
  for (uint32_t a = 0; a < graph.num_a(); ++a) {
    a_side.degree[a] = static_cast<uint32_t>(graph.AdjA(a).size());
    max_degree = std::max(max_degree, a_side.degree[a]);
  }
  b_side.InitBuckets(max_degree);
  a_side.InitBuckets(max_degree);

  std::vector<MatchedPair> matched;
  matched.reserve(std::min(graph.num_b(), graph.num_a()));

  // Matching a pair decrements each surviving vertex's degree at most once
  // (a vertex lies on one side, so it neighbors either v or v's partner,
  // never both), so after every match the minimum alive degree can fall by
  // at most 1; rewinding `cur_min` one step per match keeps the scan
  // amortized O(E + V + max_degree).
  uint32_t cur_min = 1;
  while (cur_min <= max_degree) {
    uint32_t v;
    bool from_b;
    if (b_side.PopFromBucket(cur_min, &v)) {
      from_b = true;
    } else if (a_side.PopFromBucket(cur_min, &v)) {
      from_b = false;
    } else {
      ++cur_min;
      continue;
    }

    // Partner of minimum remaining degree on the opposite side (ties:
    // smallest local index, since adjacency lists are ascending).
    Side& own = from_b ? b_side : a_side;
    Side& other = from_b ? a_side : b_side;
    const std::vector<uint32_t>& adj = from_b ? graph.AdjB(v) : graph.AdjA(v);
    uint32_t best = UINT32_MAX;
    uint32_t best_degree = UINT32_MAX;
    for (const uint32_t u : adj) {
      if (!other.alive[u]) continue;
      if (other.degree[u] < best_degree) {
        best_degree = other.degree[u];
        best = u;
        if (best_degree == 1) break;  // paper: "break if single match"
      }
    }
    CSJ_CHECK_NE(best, UINT32_MAX);  // degree was cur_min >= 1

    own.alive[v] = false;
    other.alive[best] = false;
    matched.push_back(from_b ? MatchedPair{v, best} : MatchedPair{best, v});

    // Removing v and best invalidates one candidate of each of their alive
    // neighbors.
    for (const uint32_t u : adj) {
      if (other.alive[u]) other.Decrement(u);
    }
    const std::vector<uint32_t>& best_adj =
        from_b ? graph.AdjA(best) : graph.AdjB(best);
    for (const uint32_t u : best_adj) {
      if (own.alive[u]) own.Decrement(u);
    }
    if (cur_min > 1) --cur_min;
  }

  return matched;
}

std::vector<MatchedPair> CoverSmallestFirst(
    const std::vector<MatchedPair>& edges) {
  if (edges.empty()) return {};
  const CandidateGraph graph(edges);
  return graph.ToOriginalIds(CoverSmallestFirst(graph));
}

}  // namespace csj::matching
