#include "matching/hopcroft_karp.h"

#include <cstdint>
#include <limits>
#include <queue>

namespace csj::matching {

namespace {

constexpr uint32_t kFree = std::numeric_limits<uint32_t>::max();
constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();

/// Mutable solver state for one HopcroftKarp run.
struct Solver {
  const CandidateGraph& graph;
  std::vector<uint32_t> match_b;  // b -> matched a, or kFree
  std::vector<uint32_t> match_a;  // a -> matched b, or kFree
  std::vector<uint32_t> dist;     // BFS layer per b vertex

  explicit Solver(const CandidateGraph& g)
      : graph(g),
        match_b(g.num_b(), kFree),
        match_a(g.num_a(), kFree),
        dist(g.num_b(), kInf) {}

  /// Layers free B vertices and alternating-path distances; returns true
  /// when at least one augmenting path exists.
  bool Bfs() {
    std::queue<uint32_t> queue;
    for (uint32_t b = 0; b < graph.num_b(); ++b) {
      if (match_b[b] == kFree) {
        dist[b] = 0;
        queue.push(b);
      } else {
        dist[b] = kInf;
      }
    }
    bool found_free_a = false;
    while (!queue.empty()) {
      const uint32_t b = queue.front();
      queue.pop();
      for (const uint32_t a : graph.AdjB(b)) {
        const uint32_t next_b = match_a[a];
        if (next_b == kFree) {
          found_free_a = true;
        } else if (dist[next_b] == kInf) {
          dist[next_b] = dist[b] + 1;
          queue.push(next_b);
        }
      }
    }
    return found_free_a;
  }

  /// DFS along layered alternating paths, augmenting when a free A vertex
  /// is reached.
  bool Dfs(uint32_t b) {
    for (const uint32_t a : graph.AdjB(b)) {
      const uint32_t next_b = match_a[a];
      if (next_b == kFree || (dist[next_b] == dist[b] + 1 && Dfs(next_b))) {
        match_b[b] = a;
        match_a[a] = b;
        return true;
      }
    }
    dist[b] = kInf;  // dead end: prune this vertex for the current phase
    return false;
  }
};

}  // namespace

std::vector<MatchedPair> HopcroftKarp(const CandidateGraph& graph) {
  Solver solver(graph);
  while (solver.Bfs()) {
    for (uint32_t b = 0; b < graph.num_b(); ++b) {
      if (solver.match_b[b] == kFree) solver.Dfs(b);
    }
  }
  std::vector<MatchedPair> matched;
  for (uint32_t b = 0; b < graph.num_b(); ++b) {
    if (solver.match_b[b] != kFree) {
      matched.push_back(MatchedPair{b, solver.match_b[b]});
    }
  }
  return matched;
}

std::vector<MatchedPair> HopcroftKarp(const std::vector<MatchedPair>& edges) {
  if (edges.empty()) return {};
  const CandidateGraph graph(edges);
  return graph.ToOriginalIds(HopcroftKarp(graph));
}

}  // namespace csj::matching
