#include "matching/greedy.h"

#include <unordered_set>

namespace csj::matching {

std::vector<MatchedPair> GreedyFirstFit(
    const std::vector<MatchedPair>& edges) {
  std::unordered_set<UserId> used_b;
  std::unordered_set<UserId> used_a;
  std::vector<MatchedPair> matched;
  for (const MatchedPair& e : edges) {
    if (used_b.count(e.b) || used_a.count(e.a)) continue;
    used_b.insert(e.b);
    used_a.insert(e.a);
    matched.push_back(e);
  }
  return matched;
}

bool IsOneToOne(const std::vector<MatchedPair>& pairs) {
  std::unordered_set<UserId> seen_b;
  std::unordered_set<UserId> seen_a;
  for (const MatchedPair& p : pairs) {
    if (!seen_b.insert(p.b).second) return false;
    if (!seen_a.insert(p.a).second) return false;
  }
  return true;
}

}  // namespace csj::matching
