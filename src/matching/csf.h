#ifndef CSJ_MATCHING_CSF_H_
#define CSJ_MATCHING_CSF_H_

#include <vector>

#include "core/join_result.h"
#include "matching/candidate_graph.h"

namespace csj::matching {

/// CoverSmallestFirst (paper's Function CSF): a minimum-degree-first greedy
/// one-to-one matcher over the candidate-pair graph.
///
/// Repeatedly takes the alive vertex with the fewest remaining candidates
/// (ties: B side first, then smallest local index — the paper scans
/// `sortedM_B` before `sortedM_A`), pairs it with its candidate that has
/// the fewest candidates on the opposite side, removes both, and updates
/// degrees. Covering the most constrained users first leaves the largest
/// pool of options for the rest, which is why CSF tracks the true maximum
/// matching closely (see bench_ablation_csf); it is not guaranteed optimal
/// — HopcroftKarp() in this module is the exact reference.
///
/// Returns pairs over the graph's LOCAL indices; use
/// CandidateGraph::ToOriginalIds to translate. Runs in
/// O(E + V * max_degree) with bucketed lazy-deletion degree queues.
std::vector<MatchedPair> CoverSmallestFirst(const CandidateGraph& graph);

/// Convenience wrapper: builds the graph from raw edges and returns the
/// CSF matching in ORIGINAL user ids.
std::vector<MatchedPair> CoverSmallestFirst(
    const std::vector<MatchedPair>& edges);

}  // namespace csj::matching

#endif  // CSJ_MATCHING_CSF_H_
