#include "matching/candidate_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace csj::matching {

namespace {

/// Sorted unique ids appearing on one side of the edge list.
std::vector<UserId> CollectIds(const std::vector<MatchedPair>& edges,
                               bool b_side) {
  std::vector<UserId> ids;
  ids.reserve(edges.size());
  for (const MatchedPair& e : edges) ids.push_back(b_side ? e.b : e.a);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

uint32_t LocalIndex(const std::vector<UserId>& ids, UserId id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  return static_cast<uint32_t>(it - ids.begin());
}

}  // namespace

CandidateGraph::CandidateGraph(const std::vector<MatchedPair>& edges)
    : b_ids_(CollectIds(edges, /*b_side=*/true)),
      a_ids_(CollectIds(edges, /*b_side=*/false)),
      adj_b_(b_ids_.size()),
      adj_a_(a_ids_.size()) {
  for (const MatchedPair& e : edges) {
    const uint32_t lb = LocalIndex(b_ids_, e.b);
    const uint32_t la = LocalIndex(a_ids_, e.a);
    adj_b_[lb].push_back(la);
  }
  for (uint32_t lb = 0; lb < adj_b_.size(); ++lb) {
    std::vector<uint32_t>& adj = adj_b_[lb];
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    num_edges_ += adj.size();
    for (const uint32_t la : adj) adj_a_[la].push_back(lb);
  }
  // adj_a_ entries arrive in ascending lb order already (outer loop order).
}

std::vector<MatchedPair> CandidateGraph::ToOriginalIds(
    const std::vector<MatchedPair>& local_pairs) const {
  std::vector<MatchedPair> out;
  out.reserve(local_pairs.size());
  for (const MatchedPair& p : local_pairs) {
    CSJ_CHECK_LT(p.b, b_ids_.size());
    CSJ_CHECK_LT(p.a, a_ids_.size());
    out.push_back(MatchedPair{b_ids_[p.b], a_ids_[p.a]});
  }
  return out;
}

}  // namespace csj::matching
