#ifndef CSJ_MATCHING_GREEDY_H_
#define CSJ_MATCHING_GREEDY_H_

#include <vector>

#include "core/join_result.h"

namespace csj::matching {

/// Order-dependent first-fit matcher: scans `edges` in the given order and
/// keeps an edge iff both endpoints are still free.
///
/// This is exactly the commit rule the approximate CSJ methods apply inline
/// (a MATCH ends the processing of the current b), extracted as a
/// standalone component so tests can reason about the approximation error
/// in isolation and so benches can replay it over arbitrary edge orders.
std::vector<MatchedPair> GreedyFirstFit(const std::vector<MatchedPair>& edges);

/// Validates that `pairs` is a one-to-one matching (no user appears twice
/// on either side). Used by property tests for every matcher.
bool IsOneToOne(const std::vector<MatchedPair>& pairs);

}  // namespace csj::matching

#endif  // CSJ_MATCHING_GREEDY_H_
