#ifndef CSJ_MATCHING_MATCHER_H_
#define CSJ_MATCHING_MATCHER_H_

#include <string>
#include <vector>

#include "core/join_result.h"

namespace csj::matching {

/// Which one-to-one matcher an exact CSJ method uses on its collected
/// candidate pairs.
enum class MatcherKind {
  kCsf,          ///< the paper's CoverSmallestFirst heuristic (default)
  kMaxMatching,  ///< Hopcroft-Karp; provably maximum, somewhat slower
};

/// Human-readable matcher name for result labelling.
const char* MatcherName(MatcherKind kind);

/// Dispatches `edges` (original user ids) to the selected matcher.
std::vector<MatchedPair> RunMatcher(MatcherKind kind,
                                    const std::vector<MatchedPair>& edges);

}  // namespace csj::matching

#endif  // CSJ_MATCHING_MATCHER_H_
