#ifndef CSJ_MATCHING_MATCHER_H_
#define CSJ_MATCHING_MATCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/join_result.h"

namespace csj::util {
class ThreadPool;
}  // namespace csj::util

namespace csj::matching {

/// Which one-to-one matcher an exact CSJ method uses on its collected
/// candidate pairs.
enum class MatcherKind {
  kCsf,          ///< the paper's CoverSmallestFirst heuristic (default)
  kMaxMatching,  ///< Hopcroft-Karp; provably maximum, somewhat slower
};

/// Human-readable matcher name for result labelling.
const char* MatcherName(MatcherKind kind);

/// Dispatches `edges` (original user ids) to the selected matcher.
std::vector<MatchedPair> RunMatcher(MatcherKind kind,
                                    const std::vector<MatchedPair>& edges);

/// Deferred per-segment matching task farm.
///
/// Ex-MinMax's refine phase flushes many independent CSF segments per
/// join: once a segment closes, no later probe can touch its vertices, so
/// its one-to-one matching is an isolated job. With
/// `JoinOptions::matching_threads > 1` the join enqueues each flushed
/// segment here instead of matching it inline; MatchAll() then runs the
/// segments as individual tasks on the persistent ThreadPool (one task
/// per segment — the pool's dynamic claiming self-balances skewed segment
/// sizes) and appends the matched pairs in SEGMENT ORDER.
///
/// Determinism contract: the segment partition is a pure function of the
/// candidate-edge stream (the scan computes it before any matching
/// happens), each matcher is deterministic on its own segment, and the
/// merge appends slot s before slot s+1 — so pairs, `candidate_pairs`,
/// and `csf_flushes` are byte-identical to the serial flush-inline run
/// for ANY thread count.
///
/// Slots (and their edge buffers) are reused across joins when the farm
/// lives in per-thread scratch; a farm is borrowed for the duration of
/// ONE join. All calls except the pool tasks MatchAll() spawns happen on
/// the owning thread.
class SegmentMatchFarm {
 public:
  /// Drops all enqueued segments (slot capacity retained).
  void Reset() { used_ = 0; }

  /// Takes one flushed segment's candidate edges by swap; `edges` comes
  /// back cleared but keeps its capacity for the next segment.
  void Enqueue(std::vector<MatchedPair>* edges);

  /// Segments enqueued since the last Reset.
  uint32_t segments() const { return used_; }

  /// Matches every enqueued segment with `kind` — on up to `threads`
  /// pool threads when `threads > 1` (null `pool` = ThreadPool::Global())
  /// — and appends the matched pairs to `out` in segment order, then
  /// resets the farm. Calling this from inside a pool task degrades to an
  /// inline loop (the pool's re-entrant Run guarantee), so nesting under
  /// pipeline/join parallelism never deadlocks or oversubscribes.
  void MatchAll(MatcherKind kind, uint32_t threads, util::ThreadPool* pool,
                std::vector<MatchedPair>* out);

 private:
  /// One segment's input edges and matcher output.
  struct Slot {
    std::vector<MatchedPair> edges;
    std::vector<MatchedPair> matched;
  };

  std::vector<Slot> slots_;
  uint32_t used_ = 0;
};

}  // namespace csj::matching

#endif  // CSJ_MATCHING_MATCHER_H_
