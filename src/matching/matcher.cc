#include "matching/matcher.h"

#include "matching/csf.h"
#include "matching/hopcroft_karp.h"
#include "util/thread_pool.h"

namespace csj::matching {

const char* MatcherName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kCsf: return "CSF";
    case MatcherKind::kMaxMatching: return "HopcroftKarp";
  }
  return "UNKNOWN";
}

std::vector<MatchedPair> RunMatcher(MatcherKind kind,
                                    const std::vector<MatchedPair>& edges) {
  switch (kind) {
    case MatcherKind::kCsf: return CoverSmallestFirst(edges);
    case MatcherKind::kMaxMatching: return HopcroftKarp(edges);
  }
  return {};
}

void SegmentMatchFarm::Enqueue(std::vector<MatchedPair>* edges) {
  if (used_ == slots_.size()) slots_.emplace_back();
  Slot& slot = slots_[used_++];
  // Swap keeps both buffers' capacity: the caller's segment buffer comes
  // back ready for the next segment, the slot inherits the edges without
  // a copy.
  slot.edges.swap(*edges);
  edges->clear();
}

void SegmentMatchFarm::MatchAll(MatcherKind kind, uint32_t threads,
                                util::ThreadPool* pool,
                                std::vector<MatchedPair>* out) {
  const uint32_t segments = used_;
  used_ = 0;
  if (segments == 0) return;
  if (threads <= 1 || segments == 1) {
    for (uint32_t s = 0; s < segments; ++s) {
      Slot& slot = slots_[s];
      slot.matched = RunMatcher(kind, slot.edges);
      out->insert(out->end(), slot.matched.begin(), slot.matched.end());
      slot.edges.clear();
    }
    return;
  }
  util::ThreadPool& exec =
      pool != nullptr ? *pool : util::ThreadPool::Global();
  // One task per segment: the matchers are pure functions of their own
  // slot, so the only cross-thread traffic is the pool's task claiming.
  exec.Run(
      segments,
      [this, kind](uint32_t s) {
        slots_[s].matched = RunMatcher(kind, slots_[s].edges);
      },
      threads);
  for (uint32_t s = 0; s < segments; ++s) {
    Slot& slot = slots_[s];
    out->insert(out->end(), slot.matched.begin(), slot.matched.end());
    slot.edges.clear();
  }
}

}  // namespace csj::matching
