#include "matching/matcher.h"

#include "matching/csf.h"
#include "matching/hopcroft_karp.h"

namespace csj::matching {

const char* MatcherName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kCsf: return "CSF";
    case MatcherKind::kMaxMatching: return "HopcroftKarp";
  }
  return "UNKNOWN";
}

std::vector<MatchedPair> RunMatcher(MatcherKind kind,
                                    const std::vector<MatchedPair>& edges) {
  switch (kind) {
    case MatcherKind::kCsf: return CoverSmallestFirst(edges);
    case MatcherKind::kMaxMatching: return HopcroftKarp(edges);
  }
  return {};
}

}  // namespace csj::matching
