#include "pipeline/screening.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/similarity.h"
#include "core/similarity_bound.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace csj::pipeline {

namespace {

/// Outcome of attempting to screen one couple.
enum class ScreenOutcome { kInadmissible, kBoundPruned, kScreened };

/// One candidate couple, enumerated up front so the screen phase can
/// process couples in any order while reporting stays in candidate order.
struct CoupleTask {
  const Community* x = nullptr;
  const Community* y = nullptr;
  uint32_t candidate_index = 0;
  std::string candidate_name;
};

/// The screen phase's per-couple output slot, indexed like the tasks.
/// Cache counters ride here rather than in PipelineEntry: which couple
/// pays a build is scheduling-dependent, so only their candidate-order
/// SUMS go into the report.
struct ScreenSlot {
  ScreenOutcome outcome = ScreenOutcome::kInadmissible;
  PipelineEntry entry;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bytes_built = 0;
};

/// Indices of `tasks`, most expensive first (ties: candidate order).
/// Couple costs vary wildly in real catalogs; starting the giants first
/// lets the cheap couples backfill idle workers instead of a giant
/// landing last and serializing the tail.
std::vector<uint32_t> MostExpensiveFirstOrder(
    const std::vector<CoupleTask>& tasks) {
  std::vector<uint32_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t l, uint32_t r) {
    return EstimatedCoupleCost(*tasks[l].x, *tasks[l].y) >
           EstimatedCoupleCost(*tasks[r].x, *tasks[r].y);
  });
  return order;
}

/// Runs body(order[k]) for every k — serially in that order when
/// pipeline_threads <= 1, else on the persistent pool with work items
/// claimed dynamically in `order`'s sequence.
void RunCoupleTasks(const PipelineOptions& options,
                    const std::vector<uint32_t>& order,
                    const std::function<void(uint32_t)>& body) {
  if (options.pipeline_threads <= 1 || order.size() <= 1) {
    for (const uint32_t index : order) body(index);
    return;
  }
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::Global();
  pool.Run(static_cast<uint32_t>(order.size()),
           [&](uint32_t k) { body(order[k]); }, options.pipeline_threads);
}

/// Screens one ordered couple (after the optional upper-bound gate).
ScreenOutcome ScreenCouple(const Community& x, const Community& y,
                           const PipelineOptions& options, ScreenSlot* slot) {
  if (options.use_upper_bound_prune) {
    const Community& b = x.size() <= y.size() ? x : y;
    const Community& a = x.size() <= y.size() ? y : x;
    if (!SizesAdmissible(b.size(), a.size())) {
      return ScreenOutcome::kInadmissible;
    }
    if (SimilarityUpperBound(b, a, options.join.eps) <
        options.screen_threshold) {
      return ScreenOutcome::kBoundPruned;
    }
  }
  const auto screened = ComputeSimilarityAutoOrder(options.screen_method, x,
                                                   y, options.join);
  if (!screened.has_value()) return ScreenOutcome::kInadmissible;
  slot->entry.screened_similarity = screened->Similarity();
  slot->entry.screen_seconds = screened->stats.seconds;
  slot->cache_hits = screened->stats.cache_hits;
  slot->cache_misses = screened->stats.cache_misses;
  slot->cache_bytes_built = screened->stats.cache_bytes_built;
  return ScreenOutcome::kScreened;
}

/// Runs the exact phase over the survivors (already screened entries) and
/// sorts the final ranking. Survivor selection, aggregation and the sort
/// are serial and depend only on the entries, so the ranking is
/// byte-identical for every pipeline_threads.
void RefineAndRank(
    const std::vector<std::pair<const Community*, const Community*>>& couples,
    const PipelineOptions& options, PipelineReport* report) {
  util::Timer wall;
  // Survivors in descending screened order so refine_top_k keeps the best.
  std::vector<size_t> survivors;
  for (size_t i = 0; i < report->entries.size(); ++i) {
    if (report->entries[i].screened_similarity >= options.screen_threshold) {
      survivors.push_back(i);
    }
  }
  // Ties at the refine_top_k boundary break by candidate order: which of
  // two equally-screened candidates gets the k-th refine slot must be a
  // function of the data, not of introsort's permutation — that is what
  // keeps the refined ranking identical when use_upper_bound_prune
  // shifts entry indices (pipeline_test's prune on/off differential).
  std::sort(survivors.begin(), survivors.end(), [&](size_t x, size_t y) {
    if (report->entries[x].screened_similarity !=
        report->entries[y].screened_similarity) {
      return report->entries[x].screened_similarity >
             report->entries[y].screened_similarity;
    }
    return report->entries[x].candidate_index <
           report->entries[y].candidate_index;
  });
  if (options.refine_top_k > 0 && survivors.size() > options.refine_top_k) {
    survivors.resize(options.refine_top_k);
  }

  // Refine concurrently, most expensive couple first; each survivor owns
  // its entry slot (and cache-counter slot), so writes never race.
  std::vector<uint32_t> order(survivors.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t l, uint32_t r) {
    const auto cost = [&](uint32_t s) {
      const auto& [x, y] = couples[survivors[s]];
      return EstimatedCoupleCost(*x, *y);
    };
    return cost(l) > cost(r);
  });
  std::vector<JoinStats> refine_stats(survivors.size());
  RunCoupleTasks(options, order, [&](uint32_t s) {
    PipelineEntry& entry = report->entries[survivors[s]];
    const auto& [x, y] = couples[survivors[s]];
    const auto refined = ComputeSimilarityAutoOrder(options.refine_method,
                                                    *x, *y, options.join);
    CSJ_CHECK(refined.has_value());  // admissibility already screened
    entry.refined = true;
    entry.refined_similarity = refined->Similarity();
    entry.refine_seconds = refined->stats.seconds;
    refine_stats[s] = refined->stats;
  });

  // Aggregate in survivor order: deterministic counters and timing sums.
  report->refined += static_cast<uint32_t>(survivors.size());
  for (const size_t index : survivors) {
    report->refine_seconds += report->entries[index].refine_seconds;
  }
  for (const JoinStats& stats : refine_stats) {
    report->cache_hits += stats.cache_hits;
    report->cache_misses += stats.cache_misses;
    report->cache_bytes_built += stats.cache_bytes_built;
    report->matching_seconds += stats.matching_seconds;
  }

  std::sort(report->entries.begin(), report->entries.end(),
            [](const PipelineEntry& x, const PipelineEntry& y) {
              if (x.FinalSimilarity() != y.FinalSimilarity()) {
                return x.FinalSimilarity() > y.FinalSimilarity();
              }
              return x.candidate_index < y.candidate_index;
            });
  report->refine_wall_seconds = wall.Seconds();
}

/// The shared engine behind both entry points: screen every couple
/// (concurrently when asked), aggregate in candidate order, refine the
/// survivors, rank.
PipelineReport ScreenRefineCouples(std::vector<CoupleTask> tasks,
                                   const PipelineOptions& input_options) {
  util::Timer timer;
  PipelineReport report;
  const auto num_tasks = static_cast<uint32_t>(tasks.size());

  // The pipeline-level cache reaches every join through the join options;
  // an explicitly set join.cache wins. The pool flows the same way so the
  // intra-join chunks run on the pipeline's (possibly injected) pool.
  PipelineOptions options = input_options;
  if (options.cache != nullptr && options.join.cache == nullptr) {
    options.join.cache = options.cache;
  }
  if (options.join.pool == nullptr) options.join.pool = options.pool;
  // The nesting budget: with min(pipeline_threads, couples) couples in
  // flight, each join gets its fair share of the pool. Changes only how
  // finely a join chunks, never its result.
  const uint32_t pool_threads =
      (options.pool != nullptr ? *options.pool : util::ThreadPool::Global())
          .threads();
  options.join.join_threads =
      NestedJoinThreads(options.join.join_threads, options.pipeline_threads,
                        pool_threads, num_tasks);
  // The deferred segment matching shares the same pool and the same
  // budget rule: with many couples in flight each join matches its
  // segments with its fair share (usually serially), while a
  // single-couple run inherits the whole pool for its segment farm.
  options.join.matching_threads =
      NestedJoinThreads(options.join.matching_threads,
                        options.pipeline_threads, pool_threads, num_tasks);

  std::vector<ScreenSlot> slots(num_tasks);
  RunCoupleTasks(options, MostExpensiveFirstOrder(tasks), [&](uint32_t i) {
    CoupleTask& task = tasks[i];
    ScreenSlot& slot = slots[i];
    slot.entry.candidate_index = task.candidate_index;
    slot.entry.candidate_name = std::move(task.candidate_name);
    slot.outcome = ScreenCouple(*task.x, *task.y, options, &slot);
  });

  // Aggregation walks the slots in candidate order, reproducing the
  // serial pipeline's counters, entry order and timing sums exactly.
  std::vector<std::pair<const Community*, const Community*>> couples;
  for (uint32_t i = 0; i < num_tasks; ++i) {
    switch (slots[i].outcome) {
      case ScreenOutcome::kInadmissible:
        ++report.inadmissible;
        break;
      case ScreenOutcome::kBoundPruned:
        ++report.bound_pruned;
        break;
      case ScreenOutcome::kScreened:
        ++report.screened;
        report.screen_seconds += slots[i].entry.screen_seconds;
        report.cache_hits += slots[i].cache_hits;
        report.cache_misses += slots[i].cache_misses;
        report.cache_bytes_built += slots[i].cache_bytes_built;
        report.entries.push_back(std::move(slots[i].entry));
        couples.emplace_back(tasks[i].x, tasks[i].y);
        break;
    }
  }

  report.screen_wall_seconds = timer.Seconds();
  RefineAndRank(couples, options, &report);
  report.total_seconds = timer.Seconds();
  return report;
}

}  // namespace

PipelineReport ScreenAndRefine(const Community& pivot,
                               const std::vector<const Community*>& candidates,
                               const PipelineOptions& options) {
  std::vector<CoupleTask> tasks;
  tasks.reserve(candidates.size());
  for (uint32_t i = 0; i < candidates.size(); ++i) {
    const Community* candidate = candidates[i];
    CSJ_CHECK(candidate != nullptr);
    tasks.push_back(CoupleTask{&pivot, candidate, i, candidate->name()});
  }
  return ScreenRefineCouples(std::move(tasks), options);
}

PipelineReport ScreenAndRefineAllPairs(
    const std::vector<const Community*>& communities,
    const PipelineOptions& options) {
  const auto n = static_cast<uint32_t>(communities.size());
  std::vector<CoupleTask> tasks;
  tasks.reserve(n == 0 ? 0 : static_cast<size_t>(n) * (n - 1) / 2);
  for (uint32_t i = 0; i < n; ++i) {
    CSJ_CHECK(communities[i] != nullptr);
    for (uint32_t j = i + 1; j < n; ++j) {
      tasks.push_back(CoupleTask{
          communities[i], communities[j], i * n + j,
          communities[i]->name() + " | " + communities[j]->name()});
    }
  }
  return ScreenRefineCouples(std::move(tasks), options);
}

void DecodePairIndex(uint32_t candidate_index, uint32_t n, uint32_t* i,
                     uint32_t* j) {
  CSJ_CHECK_GT(n, 0u);
  *i = candidate_index / n;
  *j = candidate_index % n;
}

uint64_t EstimatedCoupleCost(const Community& x, const Community& y) {
  return static_cast<uint64_t>(x.size()) *
         std::max<uint32_t>(y.size(), 1) * std::max<Dim>(x.d(), 1);
}

std::vector<uint32_t> CostAwareOrder(
    const std::vector<std::pair<const Community*, const Community*>>&
        couples) {
  std::vector<uint32_t> order(couples.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t l, uint32_t r) {
    return EstimatedCoupleCost(*couples[l].first, *couples[l].second) >
           EstimatedCoupleCost(*couples[r].first, *couples[r].second);
  });
  return order;
}

uint32_t NestedJoinThreads(uint32_t requested, uint32_t pipeline_threads,
                           uint32_t pool_threads, uint32_t couples) {
  if (requested <= 1) return 1;
  const uint32_t in_flight =
      std::max<uint32_t>(std::min(std::max<uint32_t>(pipeline_threads, 1),
                                  std::max<uint32_t>(couples, 1)),
                         1);
  const uint32_t share =
      std::max<uint32_t>(std::max<uint32_t>(pool_threads, 1) / in_flight, 1);
  return std::min(requested, share);
}

}  // namespace csj::pipeline
