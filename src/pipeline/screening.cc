#include "pipeline/screening.h"

#include <algorithm>

#include "core/similarity.h"
#include "core/similarity_bound.h"
#include "util/logging.h"
#include "util/timer.h"

namespace csj::pipeline {

namespace {

/// Outcome of attempting to screen one couple.
enum class ScreenOutcome { kInadmissible, kBoundPruned, kScreened };

/// Screens one ordered couple (after the optional upper-bound gate).
ScreenOutcome ScreenCouple(const Community& x, const Community& y,
                           const PipelineOptions& options,
                           PipelineEntry* entry) {
  if (options.use_upper_bound_prune) {
    const Community& b = x.size() <= y.size() ? x : y;
    const Community& a = x.size() <= y.size() ? y : x;
    if (!SizesAdmissible(b.size(), a.size())) {
      return ScreenOutcome::kInadmissible;
    }
    if (SimilarityUpperBound(b, a, options.join.eps) <
        options.screen_threshold) {
      return ScreenOutcome::kBoundPruned;
    }
  }
  const auto screened = ComputeSimilarityAutoOrder(options.screen_method, x,
                                                   y, options.join);
  if (!screened.has_value()) return ScreenOutcome::kInadmissible;
  entry->screened_similarity = screened->Similarity();
  entry->screen_seconds = screened->stats.seconds;
  return ScreenOutcome::kScreened;
}

/// Runs the exact phase over the survivors (already screened entries) and
/// sorts the final ranking.
void RefineAndRank(
    const std::vector<std::pair<const Community*, const Community*>>& couples,
    const PipelineOptions& options, PipelineReport* report) {
  // Survivors in descending screened order so refine_top_k keeps the best.
  std::vector<size_t> survivors;
  for (size_t i = 0; i < report->entries.size(); ++i) {
    if (report->entries[i].screened_similarity >= options.screen_threshold) {
      survivors.push_back(i);
    }
  }
  std::sort(survivors.begin(), survivors.end(), [&](size_t x, size_t y) {
    return report->entries[x].screened_similarity >
           report->entries[y].screened_similarity;
  });
  if (options.refine_top_k > 0 && survivors.size() > options.refine_top_k) {
    survivors.resize(options.refine_top_k);
  }

  for (const size_t index : survivors) {
    PipelineEntry& entry = report->entries[index];
    const auto& [x, y] = couples[index];
    const auto refined = ComputeSimilarityAutoOrder(options.refine_method,
                                                    *x, *y, options.join);
    CSJ_CHECK(refined.has_value());  // admissibility already screened
    entry.refined = true;
    entry.refined_similarity = refined->Similarity();
    entry.refine_seconds = refined->stats.seconds;
    ++report->refined;
  }

  std::sort(report->entries.begin(), report->entries.end(),
            [](const PipelineEntry& x, const PipelineEntry& y) {
              if (x.FinalSimilarity() != y.FinalSimilarity()) {
                return x.FinalSimilarity() > y.FinalSimilarity();
              }
              return x.candidate_index < y.candidate_index;
            });
}

}  // namespace

PipelineReport ScreenAndRefine(const Community& pivot,
                               const std::vector<const Community*>& candidates,
                               const PipelineOptions& options) {
  util::Timer timer;
  PipelineReport report;
  std::vector<std::pair<const Community*, const Community*>> couples;

  for (uint32_t i = 0; i < candidates.size(); ++i) {
    const Community* candidate = candidates[i];
    CSJ_CHECK(candidate != nullptr);
    PipelineEntry entry;
    entry.candidate_index = i;
    entry.candidate_name = candidate->name();
    switch (ScreenCouple(pivot, *candidate, options, &entry)) {
      case ScreenOutcome::kInadmissible:
        ++report.inadmissible;
        continue;
      case ScreenOutcome::kBoundPruned:
        ++report.bound_pruned;
        continue;
      case ScreenOutcome::kScreened:
        break;
    }
    ++report.screened;
    report.entries.push_back(std::move(entry));
    couples.emplace_back(&pivot, candidate);
  }

  RefineAndRank(couples, options, &report);
  report.total_seconds = timer.Seconds();
  return report;
}

PipelineReport ScreenAndRefineAllPairs(
    const std::vector<const Community*>& communities,
    const PipelineOptions& options) {
  util::Timer timer;
  PipelineReport report;
  std::vector<std::pair<const Community*, const Community*>> couples;
  const auto n = static_cast<uint32_t>(communities.size());

  for (uint32_t i = 0; i < n; ++i) {
    CSJ_CHECK(communities[i] != nullptr);
    for (uint32_t j = i + 1; j < n; ++j) {
      PipelineEntry entry;
      entry.candidate_index = i * n + j;
      entry.candidate_name =
          communities[i]->name() + " | " + communities[j]->name();
      switch (
          ScreenCouple(*communities[i], *communities[j], options, &entry)) {
        case ScreenOutcome::kInadmissible:
          ++report.inadmissible;
          continue;
        case ScreenOutcome::kBoundPruned:
          ++report.bound_pruned;
          continue;
        case ScreenOutcome::kScreened:
          break;
      }
      ++report.screened;
      report.entries.push_back(std::move(entry));
      couples.emplace_back(communities[i], communities[j]);
    }
  }

  RefineAndRank(couples, options, &report);
  report.total_seconds = timer.Seconds();
  return report;
}

void DecodePairIndex(uint32_t candidate_index, uint32_t n, uint32_t* i,
                     uint32_t* j) {
  CSJ_CHECK_GT(n, 0u);
  *i = candidate_index / n;
  *j = candidate_index % n;
}

}  // namespace csj::pipeline
