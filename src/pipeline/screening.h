#ifndef CSJ_PIPELINE_SCREENING_H_
#define CSJ_PIPELINE_SCREENING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/community.h"
#include "core/join_options.h"
#include "core/method.h"

namespace csj::util {
class ThreadPool;
}  // namespace csj::util

namespace csj::pipeline {

/// The paper's two-phase usage of CSJ (§3): "the usage of approximate
/// method is to fast find a group of similar-enough community pairs for
/// impending precise similarity computation. When such a group is found,
/// the exact method applies... the time-consuming exact method uses the
/// results of fast approximate method as input to alleviate its total
/// execution overhead."
///
/// This module packages that workflow: screen every candidate couple with
/// an approximate method, keep the ones above a threshold, refine those
/// with an exact method, and return a ranking.
struct PipelineOptions {
  Method screen_method = Method::kApMinMax;
  Method refine_method = Method::kExMinMax;

  /// Couples whose screened similarity reaches this survive to the exact
  /// phase (the paper's "similar-enough group").
  double screen_threshold = 0.15;

  /// Refine at most this many of the best-screened survivors (0 = all).
  uint32_t refine_top_k = 0;

  /// Before ANY join, discard couples whose SimilarityUpperBound (the
  /// O(n log n) encoded-window relaxation, see core/similarity_bound.h)
  /// is already below `screen_threshold`. Safe with respect to the exact
  /// phase: the bound dominates the exact similarity.
  bool use_upper_bound_prune = true;

  /// Couples processed concurrently in the screen and refine phases.
  /// 1 (the default) runs the pipeline serially with no pool
  /// interaction. N > 1 executes independent couples on the persistent
  /// thread pool, scheduled MOST-EXPENSIVE-FIRST by the estimated join
  /// work |B|·|A|·d (EstimatedCoupleCost) so one skewed giant couple
  /// cannot serialize the tail. Any value produces byte-identical
  /// reports: every couple computes the same similarity in isolation and
  /// aggregation happens in candidate order (see docs/API.md,
  /// "Execution & parallelism").
  ///
  /// Composes with `join.join_threads` (intra-join chunking): the
  /// pipeline clamps the per-join thread count to the NestedJoinThreads
  /// budget so couples × chunks never outgrows the pool.
  uint32_t pipeline_threads = 1;

  /// Pool override for tests/embedders; null = ThreadPool::Global().
  util::ThreadPool* pool = nullptr;

  /// Optional encoding cache shared by both phases (and, when the caller
  /// keeps one across runs, by successive pipeline runs): each community's
  /// encoded buffers are built once per parameter set instead of once per
  /// couple. Injected into the join options of every couple unless
  /// `join.cache` is already set. Not owned; must outlive the run.
  EncodingCache* cache = nullptr;

  /// Join parameters shared by both phases.
  JoinOptions join;
};

/// One candidate comparison's outcome.
struct PipelineEntry {
  uint32_t candidate_index = 0;   ///< position in the input candidate list
  std::string candidate_name;     ///< Community::name of the candidate
  double screened_similarity = 0.0;
  bool refined = false;           ///< did it survive the screen?
  double refined_similarity = 0.0;  ///< valid when `refined`
  double screen_seconds = 0.0;
  double refine_seconds = 0.0;

  /// The ranking key: exact similarity when available, else the screen.
  double FinalSimilarity() const {
    return refined ? refined_similarity : screened_similarity;
  }
};

/// Aggregate outcome of one pipeline run.
struct PipelineReport {
  std::vector<PipelineEntry> entries;  ///< sorted by FinalSimilarity desc
  uint32_t screened = 0;               ///< candidates screened with a join
  uint32_t refined = 0;                ///< candidates exactly recomputed
  uint32_t inadmissible = 0;           ///< rejected by the CSJ size rule
  uint32_t bound_pruned = 0;           ///< discarded by the upper bound
  /// Wall-clock for the whole pipeline run.
  double total_seconds = 0.0;
  /// Sums of the per-entry join times, accumulated in candidate order
  /// (deterministic). These are thread-seconds: with pipeline_threads > 1
  /// they can exceed total_seconds — that surplus IS the parallel win.
  double screen_seconds = 0.0;
  double refine_seconds = 0.0;
  /// Thread-seconds the refine phase spent inside the one-to-one matcher
  /// (summed JoinStats::matching_seconds of every refined couple, in
  /// survivor order). The matcher share of refine_seconds — what the
  /// matching_threads knob can attack.
  double matching_seconds = 0.0;
  /// Wall-clock of each phase as the submitting thread saw it (screen =
  /// enumerate + screen joins; refine = survivor selection + exact joins
  /// + ranking). Unlike the thread-second sums above these SHRINK when
  /// parallelism wins — the numbers bench_pipeline's scaling check reads.
  double screen_wall_seconds = 0.0;
  double refine_wall_seconds = 0.0;
  /// Encoding-cache totals over every join of the run (0 when no cache is
  /// wired). The TOTALS are deterministic for any pipeline_threads —
  /// misses count builds, and with build deduplication the build set is a
  /// data property — but which couple pays each miss is scheduling-
  /// dependent, which is why there are no per-entry counters.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bytes_built = 0;
};

/// Compares `pivot` against every candidate (the brand-recommendation
/// shape: one brand vs many potential partners). Each couple is ordered
/// automatically (smaller side plays B); couples violating the
/// ceil(|A|/2) <= |B| <= |A| rule are counted as inadmissible and get no
/// entry. Candidates may be any mix of sizes; null pointers are not
/// allowed.
PipelineReport ScreenAndRefine(const Community& pivot,
                               const std::vector<const Community*>& candidates,
                               const PipelineOptions& options);

/// All-pairs variant (the broadcast-recommendation shape, paper case
/// ii.b): screens every unordered pair of `communities` and refines the
/// survivors. `candidate_index` encodes the pair as i * n + j (i < j).
PipelineReport ScreenAndRefineAllPairs(
    const std::vector<const Community*>& communities,
    const PipelineOptions& options);

/// Splits an all-pairs `candidate_index` back into (i, j).
void DecodePairIndex(uint32_t candidate_index, uint32_t n, uint32_t* i,
                     uint32_t* j);

/// Scheduling cost proxy for one couple: |x|·|y|·d. The quadratic methods
/// do exactly |B|·|A| candidate tests of d dimensions each, and the
/// pruned methods are monotone in that product — whereas member count
/// alone ranks a 12×12 d=1 couple above a 10×10 d=100 one that costs
/// ~70x more. Used by the pipeline's most-expensive-first order.
uint64_t EstimatedCoupleCost(const Community& x, const Community& y);

/// Indices of `couples`, most expensive first by EstimatedCoupleCost
/// (ties broken by position — a stable order). Exposed so the scheduling
/// policy is testable without timing a run.
std::vector<uint32_t> CostAwareOrder(
    const std::vector<std::pair<const Community*, const Community*>>& couples);

/// The nesting budget: how many intra-join threads each couple may use
/// when the pipeline is already running `pipeline_threads` couples
/// concurrently on a pool of `pool_threads`. With C couples in flight
/// (at most min(pipeline_threads, couples)), each join gets its fair
/// share pool_threads / C of the pool, never less than 1 and never more
/// than `requested`. A single couple therefore inherits the whole pool —
/// the case intra-join parallelism exists for. Chunk counts change with
/// the budget but results do not (the deterministic-merge contract).
uint32_t NestedJoinThreads(uint32_t requested, uint32_t pipeline_threads,
                           uint32_t pool_threads, uint32_t couples);

}  // namespace csj::pipeline

#endif  // CSJ_PIPELINE_SCREENING_H_
