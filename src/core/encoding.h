#ifndef CSJ_CORE_ENCODING_H_
#define CSJ_CORE_ENCODING_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/column_storage.h"
#include "core/community.h"
#include "core/epsilon_predicate.h"
#include "core/types.h"

namespace csj {

/// The MinMax encoding scheme (paper §4, Figure 1).
///
/// A user vector of d counters is split into `parts` contiguous segments.
/// For the B side we keep each segment's counter sum (`part_sums`) and
/// their total (`encoded_id`). For the A side we keep, per segment, the
/// interval of part sums any eps-matching partner could have
/// (`range = [sum of max(0, v_i - eps), sum of (v_i + eps)]`) plus the
/// totals of those interval endpoints (`encoded_min` / `encoded_max`).
///
/// Guarantee (no false dismissals, property-tested): if b eps-matches a,
/// then for every part p `b.part_sums[p] ∈ a.range[p]`, hence
/// `b.encoded_id ∈ [a.encoded_min, a.encoded_max]`. The converse does not
/// hold (footnote 6 of the paper): sums can land inside the ranges without
/// a per-dimension match, so surviving pairs still get the d-dimensional
/// comparison.
///
/// The default of 4 parts is the paper's tradeoff: fewer parts prune less,
/// more parts cost more memory and filter time (bench_ablation_parts
/// reproduces the sweep).
class Encoder {
 public:
  /// `parts` is clamped to [1, d]: more parts than dimensions would leave
  /// empty segments with degenerate [0, eps*0] ranges.
  Encoder(Dim d, Epsilon eps, uint32_t parts = kDefaultParts);

  static constexpr uint32_t kDefaultParts = 4;

  Dim d() const { return d_; }
  Epsilon eps() const { return eps_; }
  uint32_t parts() const { return static_cast<uint32_t>(part_begin_.size()) - 1; }

  /// First dimension of part `p`; part p covers [PartBegin(p), PartBegin(p+1)).
  /// Matches Figure 1's layout for d=27, parts=4: sizes 6|7|7|7.
  Dim PartBegin(uint32_t p) const { return part_begin_[p]; }

  /// Part sums of one vector (size == parts()).
  std::vector<uint64_t> PartSums(std::span<const Count> vec) const;

  /// Allocation-free form of PartSums: writes exactly parts() entries
  /// into `sums`. The encoded-buffer builders call this once per user, so
  /// it must not allocate.
  void PartSumsInto(std::span<const Count> vec,
                    std::span<uint64_t> sums) const;

  /// encoded_id == sum of all counters.
  uint64_t EncodedId(std::span<const Count> vec) const;

  /// Per-part range endpoints of one vector; lo/hi get parts() entries.
  void PartRanges(std::span<const Count> vec, std::vector<uint64_t>* lo,
                  std::vector<uint64_t>* hi) const;

  /// Allocation-free form of PartRanges: writes exactly parts() entries
  /// into each span.
  void PartRangesInto(std::span<const Count> vec, std::span<uint64_t> lo,
                      std::span<uint64_t> hi) const;

 private:
  Dim d_;
  Epsilon eps_;
  std::vector<Dim> part_begin_;  // parts() + 1 boundaries
};

/// The paper's `Encd_B` buffer: per user of B a triple
/// (encoded_id, part sums, real id), ascending by encoded_id.
/// Structure-of-arrays with one flat part-sum buffer — the pairing loop
/// touches ids far more often than part sums.
class EncodedB {
 public:
  /// Encodes every user of `b` and sorts by encoded_id (ties: by real id,
  /// for deterministic traces).
  EncodedB(const Community& b, const Encoder& encoder);

  /// A deserialized buffer: the persist path's restore constructor. The
  /// three columns are BORROWED (mapped segment bytes pinned by `owner`,
  /// already in this class's sorted layout) — zero-copy, byte-identical
  /// to the build constructor by the store's fsck contract.
  struct Columns {
    uint32_t parts = 0;
    uint32_t n = 0;
    const uint64_t* ids = nullptr;   ///< n encoded ids, ascending
    const UserId* real = nullptr;    ///< n real ids
    const uint64_t* sums = nullptr;  ///< n * parts part sums
  };
  EncodedB(const Columns& columns, std::shared_ptr<const void> owner);

  uint32_t size() const { return static_cast<uint32_t>(ids_.size()); }
  uint32_t parts() const { return parts_; }
  uint64_t encoded_id(uint32_t i) const { return ids_[i]; }
  UserId real_id(uint32_t i) const { return real_[i]; }
  std::span<const uint64_t> part_sums(uint32_t i) const {
    return {sums_.data() + static_cast<size_t>(i) * parts_, parts_};
  }

  /// Approximate heap footprint (cache memory accounting; a restored
  /// buffer owns no heap — the mapping is accounted by its owner).
  size_t MemoryBytes() const {
    return ids_.OwnedBytes() + real_.OwnedBytes() + sums_.OwnedBytes();
  }

 private:
  uint32_t parts_;
  ColumnStorage<uint64_t> ids_;
  ColumnStorage<UserId> real_;
  ColumnStorage<uint64_t> sums_;
  std::shared_ptr<const void> owner_;
};

/// The paper's `Encd_A` buffer: per user of A a quadruple
/// (encoded_min, encoded_max, part ranges, real id), ascending by
/// encoded_min (ties: by real id).
class EncodedA {
 public:
  EncodedA(const Community& a, const Encoder& encoder);

  /// A deserialized buffer (see EncodedB::Columns): borrowed columns in
  /// this class's sorted layout, plus the pre-packed SoA verify window
  /// (BasicVerifyWindow::PaddedCount(n, d) values in block-major
  /// layout), all pinned by `owner`.
  struct Columns {
    uint32_t parts = 0;
    uint32_t n = 0;
    Dim d = 0;
    const uint64_t* mins = nullptr;   ///< n encoded mins, ascending
    const uint64_t* maxs = nullptr;   ///< n encoded maxs
    const UserId* real = nullptr;     ///< n real ids
    const uint64_t* cols = nullptr;   ///< n * 2 * parts part-major lo/hi
    const Count* window = nullptr;    ///< PaddedCount(n, d) packed rows
  };
  EncodedA(const Columns& columns, std::shared_ptr<const void> owner);

  uint32_t size() const { return static_cast<uint32_t>(mins_.size()); }
  uint32_t parts() const { return parts_; }
  uint64_t encoded_min(uint32_t i) const { return mins_[i]; }
  uint64_t encoded_max(uint32_t i) const { return maxs_[i]; }
  UserId real_id(uint32_t i) const { return real_[i]; }

  /// Part-major SoA columns of the range endpoints: part p's lo (hi)
  /// values for ALL entries sit contiguously in sorted order, so the
  /// vectorized prescreen of the scan loops loads 8 consecutive
  /// candidates' bounds with one unaligned vector load per part — no
  /// per-candidate row gathers.
  const uint64_t* part_lo(uint32_t p) const {
    return cols_.data() + static_cast<size_t>(2 * p) * mins_.size();
  }
  const uint64_t* part_hi(uint32_t p) const {
    return cols_.data() + static_cast<size_t>(2 * p + 1) * mins_.size();
  }


  /// The full encoded_max column (ascending-by-encoded_min order), for
  /// the prescreen's vector loads.
  const uint64_t* encoded_maxs() const { return maxs_.data(); }

  /// A's counter rows repacked into the SoA dimension-blocked layout in
  /// THIS buffer's sorted order: window row i holds the counters of
  /// real_id(i). Built once with the buffer so every probe's candidate
  /// run [lo, hi) over the sorted entries is a contiguous batched-verify
  /// window for EpsilonMatchesMany.
  const VerifyWindow& window() const { return window_; }

  /// One past the last entry whose encoded_min can admit `id` — entries
  /// are ascending by encoded_min, so [0, UpperBound(id)) is the only
  /// stretch a probe with this encoded id can reach before MIN PRUNE.
  uint32_t UpperBound(uint64_t id) const;

  /// Approximate heap footprint (cache memory accounting; a restored
  /// buffer owns no heap — the mapping is accounted by its owner).
  size_t MemoryBytes() const {
    return mins_.OwnedBytes() + maxs_.OwnedBytes() + cols_.OwnedBytes() +
           real_.OwnedBytes() + window_.MemoryBytes();
  }

 private:
  uint32_t parts_;
  ColumnStorage<uint64_t> mins_;
  ColumnStorage<uint64_t> maxs_;
  ColumnStorage<UserId> real_;
  /// Part-major lo/hi columns, see part_lo().
  ColumnStorage<uint64_t> cols_;
  VerifyWindow window_;
  std::shared_ptr<const void> owner_;
};

/// The NO OVERLAP filter: true iff every part sum of entry `ib` of B lies
/// inside the corresponding range of entry `ia` of A ("complete overlap").
/// Branchless: on the hot scan most candidates FAIL at a part that varies
/// per candidate, so the short-circuiting form mispredicts its exit
/// branch; accumulating all parts' verdicts costs a few extra compares
/// but leaves the caller exactly one well-predicted branch.
inline bool PartsOverlap(const EncodedB& encd_b, uint32_t ib,
                         const EncodedA& encd_a, uint32_t ia) {
  const std::span<const uint64_t> sums = encd_b.part_sums(ib);
  unsigned ok = 1;
  for (size_t p = 0; p < sums.size(); ++p) {
    const auto part = static_cast<uint32_t>(p);
    ok &= static_cast<unsigned>(sums[p] >= encd_a.part_lo(part)[ia]) &
          static_cast<unsigned>(sums[p] <= encd_a.part_hi(part)[ia]);
  }
  return ok != 0;
}

}  // namespace csj

#endif  // CSJ_CORE_ENCODING_H_
