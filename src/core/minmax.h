#ifndef CSJ_CORE_MINMAX_H_
#define CSJ_CORE_MINMAX_H_

#include "core/community.h"
#include "core/join_options.h"
#include "core/join_result.h"

namespace csj {

/// Ap-MinMax (paper Algorithm "Ap-MinMax", Figure 2).
///
/// B users are encoded to (encoded_id, part sums) sorted ascending by
/// encoded_id; A users to (encoded_min/max, part ranges) sorted ascending
/// by encoded_min. The pairing double loop then emits the five events:
///  * MIN PRUNE  — encoded_id < encoded_min: no current or later a can
///    match this b (ranges only grow), so move to the next b;
///  * MAX PRUNE  — encoded_id > encoded_max: no current or later b can
///    match this a; while `skip` is still active (no comparison has
///    happened yet for this b) the global `offset` permanently skips it;
///  * NO OVERLAP — some part sum falls outside the matching range, so the
///    d-dimensional comparison is skipped;
///  * NO MATCH / MATCH — full comparison ran. A MATCH commits the pair
///    (the approximate rule), removes a from further consideration and
///    moves to the next b.
JoinResult ApMinMaxJoin(const Community& b, const Community& a,
                        const JoinOptions& options);

/// Ex-MinMax (paper Algorithm "Ex-MinMax", Figure 3).
///
/// Identical filtering to Ap-MinMax, but a MATCH records the candidate
/// pair and keeps scanning so ALL matches of the current b are found.
/// `maxV` tracks the largest encoded_max over the A users matched in the
/// open segment. When the current b's scan ends and the NEXT b's
/// encoded_id exceeds maxV, no later b can reach any matched a (their ids
/// only grow past every matched encoded_max) and no collected b can reach
/// any later a (it finished its scan), so the segment is closed: the
/// configured matcher (paper: CSF) resolves it to one-to-one pairs and the
/// buffers reset. This yields the same final match count as Ex-Baseline's
/// single global CSF call while keeping each CSF input small.
JoinResult ExMinMaxJoin(const Community& b, const Community& a,
                        const JoinOptions& options);

}  // namespace csj

#endif  // CSJ_CORE_MINMAX_H_
