#include "core/encoding.h"

#include <algorithm>
#include <numeric>

#include "core/join_scratch.h"
#include "util/logging.h"

namespace csj {

Encoder::Encoder(Dim d, Epsilon eps, uint32_t parts) : d_(d), eps_(eps) {
  CSJ_CHECK_GE(d, 1u);
  const uint32_t p = std::clamp<uint32_t>(parts, 1, d);
  // Figure 1 splits d=27 into 6|7|7|7: the first parts take floor(d/p)
  // dimensions and the last (d mod p) parts take one extra.
  const Dim base = d / p;
  const Dim extra = d % p;
  part_begin_.resize(p + 1);
  part_begin_[0] = 0;
  for (uint32_t i = 0; i < p; ++i) {
    const Dim width = base + (i >= p - extra ? 1 : 0);
    part_begin_[i + 1] = part_begin_[i] + width;
  }
  CSJ_CHECK_EQ(part_begin_[p], d);
}

std::vector<uint64_t> Encoder::PartSums(std::span<const Count> vec) const {
  std::vector<uint64_t> sums(parts(), 0);
  PartSumsInto(vec, sums);
  return sums;
}

void Encoder::PartSumsInto(std::span<const Count> vec,
                           std::span<uint64_t> sums) const {
  CSJ_CHECK_EQ(vec.size(), d_);
  const uint32_t p = parts();
  CSJ_CHECK_EQ(sums.size(), p);
  for (uint32_t part = 0; part < p; ++part) {
    uint64_t sum = 0;
    for (Dim i = part_begin_[part]; i < part_begin_[part + 1]; ++i) {
      sum += vec[i];
    }
    sums[part] = sum;
  }
}

uint64_t Encoder::EncodedId(std::span<const Count> vec) const {
  CSJ_CHECK_EQ(vec.size(), d_);
  uint64_t id = 0;
  for (const Count c : vec) id += c;
  return id;
}

void Encoder::PartRanges(std::span<const Count> vec, std::vector<uint64_t>* lo,
                         std::vector<uint64_t>* hi) const {
  lo->assign(parts(), 0);
  hi->assign(parts(), 0);
  PartRangesInto(vec, *lo, *hi);
}

void Encoder::PartRangesInto(std::span<const Count> vec,
                             std::span<uint64_t> lo,
                             std::span<uint64_t> hi) const {
  CSJ_CHECK_EQ(vec.size(), d_);
  const uint32_t p = parts();
  CSJ_CHECK_EQ(lo.size(), p);
  CSJ_CHECK_EQ(hi.size(), p);
  for (uint32_t part = 0; part < p; ++part) {
    uint64_t sum_lo = 0;
    uint64_t sum_hi = 0;
    for (Dim i = part_begin_[part]; i < part_begin_[part + 1]; ++i) {
      sum_lo += vec[i] >= eps_ ? vec[i] - eps_ : 0;
      sum_hi += static_cast<uint64_t>(vec[i]) + eps_;
    }
    lo[part] = sum_lo;
    hi[part] = sum_hi;
  }
}

namespace {

/// Sort permutation of 0..n-1 by (key[i], i) into `perm`: stable within
/// equal keys so traces are deterministic.
void SortPermutationInto(const std::vector<uint64_t>& keys,
                         std::vector<uint32_t>* perm) {
  perm->resize(keys.size());
  std::iota(perm->begin(), perm->end(), 0u);
  std::sort(perm->begin(), perm->end(), [&](uint32_t x, uint32_t y) {
    if (keys[x] != keys[y]) return keys[x] < keys[y];
    return x < y;
  });
}

}  // namespace

EncodedB::EncodedB(const Community& b, const Encoder& encoder)
    : parts_(encoder.parts()) {
  const uint32_t n = b.size();
  // The unsorted keys and the permutation are per-thread scratch; the
  // per-user part sums are written straight into the sorted flat buffer,
  // so building Encd_B performs no per-user allocation.
  internal::JoinScratch& scratch = internal::GetJoinScratch();
  std::vector<uint64_t>& unsorted_ids = scratch.keys;
  unsorted_ids.resize(n);
  for (UserId u = 0; u < n; ++u) {
    unsorted_ids[u] = encoder.EncodedId(b.User(u));
  }
  SortPermutationInto(unsorted_ids, &scratch.perm);
  const std::vector<uint32_t>& perm = scratch.perm;

  ids_.resize(n);
  real_.resize(n);
  sums_.resize(static_cast<size_t>(n) * parts_);
  for (uint32_t i = 0; i < n; ++i) {
    const UserId u = perm[i];
    ids_[i] = unsorted_ids[u];
    real_[i] = u;
    encoder.PartSumsInto(
        b.User(u),
        {sums_.data() + static_cast<size_t>(i) * parts_, parts_});
  }
}

EncodedA::EncodedA(const Community& a, const Encoder& encoder)
    : parts_(encoder.parts()) {
  const uint32_t n = a.size();
  // Unsorted temporaries live in per-thread scratch (keys = encoded
  // mins, sums = encoded maxs); the per-user ranges are encoded straight
  // into the unsorted flat buffers.
  internal::JoinScratch& scratch = internal::GetJoinScratch();
  std::vector<uint64_t>& unsorted_mins = scratch.keys;
  std::vector<uint64_t>& unsorted_maxs = scratch.sums;
  std::vector<uint64_t>& unsorted_lo = scratch.lo;
  std::vector<uint64_t>& unsorted_hi = scratch.hi;
  unsorted_mins.resize(n);
  unsorted_maxs.resize(n);
  unsorted_lo.resize(static_cast<size_t>(n) * parts_);
  unsorted_hi.resize(static_cast<size_t>(n) * parts_);
  for (UserId u = 0; u < n; ++u) {
    const size_t offset = static_cast<size_t>(u) * parts_;
    const std::span<uint64_t> lo{unsorted_lo.data() + offset, parts_};
    const std::span<uint64_t> hi{unsorted_hi.data() + offset, parts_};
    encoder.PartRangesInto(a.User(u), lo, hi);
    uint64_t min_sum = 0;
    uint64_t max_sum = 0;
    for (uint32_t p = 0; p < parts_; ++p) {
      min_sum += lo[p];
      max_sum += hi[p];
    }
    unsorted_mins[u] = min_sum;
    unsorted_maxs[u] = max_sum;
  }
  SortPermutationInto(unsorted_mins, &scratch.perm);
  const std::vector<uint32_t>& perm = scratch.perm;

  mins_.resize(n);
  maxs_.resize(n);
  real_.resize(n);
  // Part-major columns (see part_lo()): column 2p holds part p's lo for
  // every entry, column 2p+1 the hi, both in sorted order.
  cols_.resize(static_cast<size_t>(n) * 2 * parts_);
  for (uint32_t i = 0; i < n; ++i) {
    const UserId u = perm[i];
    mins_[i] = unsorted_mins[u];
    maxs_[i] = unsorted_maxs[u];
    real_[i] = u;
    for (uint32_t p = 0; p < parts_; ++p) {
      cols_[static_cast<size_t>(2 * p) * n + i] =
          unsorted_lo[static_cast<size_t>(u) * parts_ + p];
      cols_[static_cast<size_t>(2 * p + 1) * n + i] =
          unsorted_hi[static_cast<size_t>(u) * parts_ + p];
    }
  }
  window_.Assign(n, encoder.d(),
                 [&](uint32_t i) { return a.User(real_[i]); });
}

uint32_t EncodedA::UpperBound(uint64_t id) const {
  const auto it = std::upper_bound(mins_.begin(), mins_.end(), id);
  return static_cast<uint32_t>(it - mins_.begin());
}

}  // namespace csj
