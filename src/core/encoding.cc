#include "core/encoding.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace csj {

Encoder::Encoder(Dim d, Epsilon eps, uint32_t parts) : d_(d), eps_(eps) {
  CSJ_CHECK_GE(d, 1u);
  const uint32_t p = std::clamp<uint32_t>(parts, 1, d);
  // Figure 1 splits d=27 into 6|7|7|7: the first parts take floor(d/p)
  // dimensions and the last (d mod p) parts take one extra.
  const Dim base = d / p;
  const Dim extra = d % p;
  part_begin_.resize(p + 1);
  part_begin_[0] = 0;
  for (uint32_t i = 0; i < p; ++i) {
    const Dim width = base + (i >= p - extra ? 1 : 0);
    part_begin_[i + 1] = part_begin_[i] + width;
  }
  CSJ_CHECK_EQ(part_begin_[p], d);
}

std::vector<uint64_t> Encoder::PartSums(std::span<const Count> vec) const {
  CSJ_CHECK_EQ(vec.size(), d_);
  const uint32_t p = parts();
  std::vector<uint64_t> sums(p, 0);
  for (uint32_t part = 0; part < p; ++part) {
    uint64_t sum = 0;
    for (Dim i = part_begin_[part]; i < part_begin_[part + 1]; ++i) {
      sum += vec[i];
    }
    sums[part] = sum;
  }
  return sums;
}

uint64_t Encoder::EncodedId(std::span<const Count> vec) const {
  CSJ_CHECK_EQ(vec.size(), d_);
  uint64_t id = 0;
  for (const Count c : vec) id += c;
  return id;
}

void Encoder::PartRanges(std::span<const Count> vec, std::vector<uint64_t>* lo,
                         std::vector<uint64_t>* hi) const {
  CSJ_CHECK_EQ(vec.size(), d_);
  const uint32_t p = parts();
  lo->assign(p, 0);
  hi->assign(p, 0);
  for (uint32_t part = 0; part < p; ++part) {
    uint64_t sum_lo = 0;
    uint64_t sum_hi = 0;
    for (Dim i = part_begin_[part]; i < part_begin_[part + 1]; ++i) {
      sum_lo += vec[i] >= eps_ ? vec[i] - eps_ : 0;
      sum_hi += static_cast<uint64_t>(vec[i]) + eps_;
    }
    (*lo)[part] = sum_lo;
    (*hi)[part] = sum_hi;
  }
}

namespace {

/// Sort permutation of 0..n-1 by (key[i], i): stable within equal keys so
/// traces are deterministic.
std::vector<uint32_t> SortPermutation(const std::vector<uint64_t>& keys) {
  std::vector<uint32_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
    if (keys[x] != keys[y]) return keys[x] < keys[y];
    return x < y;
  });
  return perm;
}

}  // namespace

EncodedB::EncodedB(const Community& b, const Encoder& encoder)
    : parts_(encoder.parts()) {
  const uint32_t n = b.size();
  std::vector<uint64_t> unsorted_ids(n);
  for (UserId u = 0; u < n; ++u) {
    unsorted_ids[u] = encoder.EncodedId(b.User(u));
  }
  const std::vector<uint32_t> perm = SortPermutation(unsorted_ids);

  ids_.resize(n);
  real_.resize(n);
  sums_.resize(static_cast<size_t>(n) * parts_);
  for (uint32_t i = 0; i < n; ++i) {
    const UserId u = perm[i];
    ids_[i] = unsorted_ids[u];
    real_[i] = u;
    const std::vector<uint64_t> sums = encoder.PartSums(b.User(u));
    std::copy(sums.begin(), sums.end(),
              sums_.begin() + static_cast<size_t>(i) * parts_);
  }
}

EncodedA::EncodedA(const Community& a, const Encoder& encoder)
    : parts_(encoder.parts()) {
  const uint32_t n = a.size();
  std::vector<uint64_t> unsorted_mins(n);
  std::vector<uint64_t> unsorted_maxs(n);
  std::vector<uint64_t> unsorted_lo(static_cast<size_t>(n) * parts_);
  std::vector<uint64_t> unsorted_hi(static_cast<size_t>(n) * parts_);
  std::vector<uint64_t> lo;
  std::vector<uint64_t> hi;
  for (UserId u = 0; u < n; ++u) {
    encoder.PartRanges(a.User(u), &lo, &hi);
    uint64_t min_sum = 0;
    uint64_t max_sum = 0;
    for (uint32_t p = 0; p < parts_; ++p) {
      min_sum += lo[p];
      max_sum += hi[p];
      unsorted_lo[static_cast<size_t>(u) * parts_ + p] = lo[p];
      unsorted_hi[static_cast<size_t>(u) * parts_ + p] = hi[p];
    }
    unsorted_mins[u] = min_sum;
    unsorted_maxs[u] = max_sum;
  }
  const std::vector<uint32_t> perm = SortPermutation(unsorted_mins);

  mins_.resize(n);
  maxs_.resize(n);
  real_.resize(n);
  lo_.resize(static_cast<size_t>(n) * parts_);
  hi_.resize(static_cast<size_t>(n) * parts_);
  for (uint32_t i = 0; i < n; ++i) {
    const UserId u = perm[i];
    mins_[i] = unsorted_mins[u];
    maxs_[i] = unsorted_maxs[u];
    real_[i] = u;
    for (uint32_t p = 0; p < parts_; ++p) {
      lo_[static_cast<size_t>(i) * parts_ + p] =
          unsorted_lo[static_cast<size_t>(u) * parts_ + p];
      hi_[static_cast<size_t>(i) * parts_ + p] =
          unsorted_hi[static_cast<size_t>(u) * parts_ + p];
    }
  }
}

}  // namespace csj
