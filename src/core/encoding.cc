#include "core/encoding.h"

#include <algorithm>
#include <numeric>

#include "core/join_scratch.h"
#include "util/logging.h"

namespace csj {

Encoder::Encoder(Dim d, Epsilon eps, uint32_t parts) : d_(d), eps_(eps) {
  CSJ_CHECK_GE(d, 1u);
  const uint32_t p = std::clamp<uint32_t>(parts, 1, d);
  // Figure 1 splits d=27 into 6|7|7|7: the first parts take floor(d/p)
  // dimensions and the last (d mod p) parts take one extra.
  const Dim base = d / p;
  const Dim extra = d % p;
  part_begin_.resize(p + 1);
  part_begin_[0] = 0;
  for (uint32_t i = 0; i < p; ++i) {
    const Dim width = base + (i >= p - extra ? 1 : 0);
    part_begin_[i + 1] = part_begin_[i] + width;
  }
  CSJ_CHECK_EQ(part_begin_[p], d);
}

std::vector<uint64_t> Encoder::PartSums(std::span<const Count> vec) const {
  std::vector<uint64_t> sums(parts(), 0);
  PartSumsInto(vec, sums);
  return sums;
}

void Encoder::PartSumsInto(std::span<const Count> vec,
                           std::span<uint64_t> sums) const {
  CSJ_CHECK_EQ(vec.size(), d_);
  const uint32_t p = parts();
  CSJ_CHECK_EQ(sums.size(), p);
  for (uint32_t part = 0; part < p; ++part) {
    uint64_t sum = 0;
    for (Dim i = part_begin_[part]; i < part_begin_[part + 1]; ++i) {
      sum += vec[i];
    }
    sums[part] = sum;
  }
}

uint64_t Encoder::EncodedId(std::span<const Count> vec) const {
  CSJ_CHECK_EQ(vec.size(), d_);
  uint64_t id = 0;
  for (const Count c : vec) id += c;
  return id;
}

void Encoder::PartRanges(std::span<const Count> vec, std::vector<uint64_t>* lo,
                         std::vector<uint64_t>* hi) const {
  lo->assign(parts(), 0);
  hi->assign(parts(), 0);
  PartRangesInto(vec, *lo, *hi);
}

void Encoder::PartRangesInto(std::span<const Count> vec,
                             std::span<uint64_t> lo,
                             std::span<uint64_t> hi) const {
  CSJ_CHECK_EQ(vec.size(), d_);
  const uint32_t p = parts();
  CSJ_CHECK_EQ(lo.size(), p);
  CSJ_CHECK_EQ(hi.size(), p);
  for (uint32_t part = 0; part < p; ++part) {
    uint64_t sum_lo = 0;
    uint64_t sum_hi = 0;
    for (Dim i = part_begin_[part]; i < part_begin_[part + 1]; ++i) {
      // max() compiles branchless: counters straddle eps unpredictably
      // (about half are zero), so a compare-and-branch mispredicts its
      // way through every community.
      sum_lo += std::max<uint64_t>(vec[i], eps_) - eps_;
      sum_hi += static_cast<uint64_t>(vec[i]) + eps_;
    }
    lo[part] = sum_lo;
    hi[part] = sum_hi;
  }
}

namespace {

/// Sort permutation of 0..n-1 by (key[i], i) into `perm`: stable within
/// equal keys so traces are deterministic.
void SortPermutationInto(const std::vector<uint64_t>& keys,
                         std::vector<uint32_t>* perm) {
  const uint32_t n = static_cast<uint32_t>(keys.size());
  perm->resize(n);
  std::iota(perm->begin(), perm->end(), 0u);
  if (n <= 64) {
    // Insertion sort with a strict `>` shift: stable, so equal keys keep
    // their ascending index order — exactly the (key, index) order the
    // comparator below produces — without introsort's dispatch overhead,
    // which dominates at catalog community sizes (tens of users).
    uint32_t* p = perm->data();
    for (uint32_t i = 1; i < n; ++i) {
      const uint32_t v = p[i];
      const uint64_t key = keys[v];
      uint32_t j = i;
      for (; j > 0 && keys[p[j - 1]] > key; --j) p[j] = p[j - 1];
      p[j] = v;
    }
    return;
  }
  std::sort(perm->begin(), perm->end(), [&](uint32_t x, uint32_t y) {
    if (keys[x] != keys[y]) return keys[x] < keys[y];
    return x < y;
  });
}

}  // namespace

EncodedB::EncodedB(const Community& b, const Encoder& encoder)
    : parts_(encoder.parts()) {
  const uint32_t n = b.size();
  // The unsorted keys, part sums, and the permutation are per-thread
  // scratch, so building Encd_B performs no per-user allocation. One pass
  // computes each user's part sums, and the encoded id falls out as their
  // total — the same integer sum of the same counters, just associated
  // differently — so no second per-user pass is needed after the sort.
  internal::JoinScratch& scratch = internal::GetJoinScratch();
  std::vector<uint64_t>& unsorted_ids = scratch.keys;
  std::vector<uint64_t>& unsorted_sums = scratch.sums;
  unsorted_ids.resize(n);
  unsorted_sums.resize(static_cast<size_t>(n) * parts_);
  const Dim d = encoder.d();
  const Count* row = b.flat().data();
  uint64_t* sums = unsorted_sums.data();
  for (UserId u = 0; u < n; ++u, row += d, sums += parts_) {
    uint64_t id = 0;
    for (uint32_t part = 0; part < parts_; ++part) {
      uint64_t sum = 0;
      const Dim end = encoder.PartBegin(part + 1);
      for (Dim i = encoder.PartBegin(part); i < end; ++i) sum += row[i];
      sums[part] = sum;
      id += sum;
    }
    unsorted_ids[u] = id;
  }
  SortPermutationInto(unsorted_ids, &scratch.perm);
  const std::vector<uint32_t>& perm = scratch.perm;

  std::vector<uint64_t> ids(n);
  std::vector<UserId> real(n);
  std::vector<uint64_t> sorted_sums(static_cast<size_t>(n) * parts_);
  for (uint32_t i = 0; i < n; ++i) {
    const UserId u = perm[i];
    ids[i] = unsorted_ids[u];
    real[i] = u;
    std::copy_n(unsorted_sums.data() + static_cast<size_t>(u) * parts_,
                parts_, sorted_sums.data() + static_cast<size_t>(i) * parts_);
  }
  ids_ = std::move(ids);
  real_ = std::move(real);
  sums_ = std::move(sorted_sums);
}

EncodedB::EncodedB(const Columns& columns, std::shared_ptr<const void> owner)
    : parts_(columns.parts),
      ids_(ColumnStorage<uint64_t>::View(columns.ids, columns.n)),
      real_(ColumnStorage<UserId>::View(columns.real, columns.n)),
      sums_(ColumnStorage<uint64_t>::View(
          columns.sums, static_cast<size_t>(columns.n) * columns.parts)),
      owner_(std::move(owner)) {
  CSJ_CHECK_GE(parts_, 1u);
  CSJ_CHECK(columns.n == 0 ||
            (columns.ids != nullptr && columns.real != nullptr &&
             columns.sums != nullptr));
}

EncodedA::EncodedA(const Community& a, const Encoder& encoder)
    : parts_(encoder.parts()) {
  const uint32_t n = a.size();
  // Unsorted temporaries live in per-thread scratch (keys = encoded
  // mins, sums = encoded maxs); the per-user ranges are encoded straight
  // into the unsorted flat buffers.
  internal::JoinScratch& scratch = internal::GetJoinScratch();
  std::vector<uint64_t>& unsorted_mins = scratch.keys;
  std::vector<uint64_t>& unsorted_maxs = scratch.sums;
  std::vector<uint64_t>& unsorted_lo = scratch.lo;
  std::vector<uint64_t>& unsorted_hi = scratch.hi;
  unsorted_mins.resize(n);
  unsorted_maxs.resize(n);
  unsorted_lo.resize(static_cast<size_t>(n) * parts_);
  unsorted_hi.resize(static_cast<size_t>(n) * parts_);
  const Dim d = encoder.d();
  const uint64_t eps = encoder.eps();
  const Count* row = a.flat().data();
  uint64_t* lo = unsorted_lo.data();
  uint64_t* hi = unsorted_hi.data();
  for (UserId u = 0; u < n; ++u, row += d, lo += parts_, hi += parts_) {
    uint64_t min_sum = 0;
    uint64_t max_sum = 0;
    for (uint32_t part = 0; part < parts_; ++part) {
      const Dim begin = encoder.PartBegin(part);
      const Dim end = encoder.PartBegin(part + 1);
      uint64_t sum_lo = 0;
      uint64_t sum_raw = 0;
      for (Dim i = begin; i < end; ++i) {
        const uint64_t v = row[i];
        // max() compiles branchless — counters straddle eps
        // unpredictably, a compare-and-branch mispredicts constantly.
        sum_lo += std::max(v, eps) - eps;
        sum_raw += v;
      }
      // sum(v + eps) == sum(v) + eps * width, exactly (integers), so the
      // hi endpoint rides along on the raw sum with one multiply.
      const uint64_t sum_hi = sum_raw + eps * (end - begin);
      lo[part] = sum_lo;
      hi[part] = sum_hi;
      min_sum += sum_lo;
      max_sum += sum_hi;
    }
    unsorted_mins[u] = min_sum;
    unsorted_maxs[u] = max_sum;
  }
  SortPermutationInto(unsorted_mins, &scratch.perm);
  const std::vector<uint32_t>& perm = scratch.perm;

  std::vector<uint64_t> mins(n);
  std::vector<uint64_t> maxs(n);
  std::vector<UserId> real(n);
  // Part-major columns (see part_lo()): column 2p holds part p's lo for
  // every entry, column 2p+1 the hi, both in sorted order.
  std::vector<uint64_t> cols(static_cast<size_t>(n) * 2 * parts_);
  for (uint32_t i = 0; i < n; ++i) {
    const UserId u = perm[i];
    mins[i] = unsorted_mins[u];
    maxs[i] = unsorted_maxs[u];
    real[i] = u;
    for (uint32_t p = 0; p < parts_; ++p) {
      cols[static_cast<size_t>(2 * p) * n + i] =
          unsorted_lo[static_cast<size_t>(u) * parts_ + p];
      cols[static_cast<size_t>(2 * p + 1) * n + i] =
          unsorted_hi[static_cast<size_t>(u) * parts_ + p];
    }
  }
  mins_ = std::move(mins);
  maxs_ = std::move(maxs);
  real_ = std::move(real);
  cols_ = std::move(cols);
  window_.Assign(n, encoder.d(),
                 [&](uint32_t i) { return a.User(real_[i]); });
}

EncodedA::EncodedA(const Columns& columns, std::shared_ptr<const void> owner)
    : parts_(columns.parts),
      mins_(ColumnStorage<uint64_t>::View(columns.mins, columns.n)),
      maxs_(ColumnStorage<uint64_t>::View(columns.maxs, columns.n)),
      real_(ColumnStorage<UserId>::View(columns.real, columns.n)),
      cols_(ColumnStorage<uint64_t>::View(
          columns.cols, static_cast<size_t>(columns.n) * 2 * columns.parts)),
      owner_(std::move(owner)) {
  CSJ_CHECK_GE(parts_, 1u);
  CSJ_CHECK(columns.n == 0 ||
            (columns.mins != nullptr && columns.maxs != nullptr &&
             columns.real != nullptr && columns.cols != nullptr &&
             columns.window != nullptr));
  // The window shares owner_ through its own keep-alive: a copied-out
  // window must not dangle if this buffer dies first.
  window_.AssignView(columns.n, columns.d, columns.window, owner_);
}

uint32_t EncodedA::UpperBound(uint64_t id) const {
  const auto it = std::upper_bound(mins_.begin(), mins_.end(), id);
  return static_cast<uint32_t>(it - mins_.begin());
}

}  // namespace csj
