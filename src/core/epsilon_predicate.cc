#include "core/epsilon_predicate.h"

// Function multiversioning for the hottest kernel in the system: the
// compiler emits one clone of EpsilonMatches per listed ISA and an ifunc
// resolver picks the widest one the CPU supports when the binary loads.
// The portable baseline build is untouched — no -march flags change —
// yet machines with AVX2/AVX-512 run 8/16-lane packed min/max.
//
// Gated to x86-64 ELF GNU toolchains (ifunc needs ELF + glibc-style
// resolution) and disabled under ThreadSanitizer, whose early interposer
// does not get along with load-time ifunc resolvers.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__SANITIZE_THREAD__)
#define CSJ_EPSILON_CLONES \
  __attribute__((target_clones("default", "sse4.2", "avx2", "avx512f")))
#else
#define CSJ_EPSILON_CLONES
#endif

namespace csj {

CSJ_EPSILON_CLONES
bool EpsilonMatches(std::span<const Count> b, std::span<const Count> a,
                    Epsilon eps) {
  const size_t d = b.size();
  const Count* pb = b.data();
  const Count* pa = a.data();
  size_t i = 0;
  // Super-blocks: branchless interior (vectorizes), one reduce + test per
  // kEpsilonSuperBlock dimensions.
  for (; i + kEpsilonSuperBlock <= d; i += kEpsilonSuperBlock) {
    Count worst = 0;
    for (size_t k = 0; k < kEpsilonSuperBlock; ++k) {
      const Count x = pb[i + k];
      const Count y = pa[i + k];
      const Count diff = x > y ? x - y : y - x;  // branchless: max - min
      worst = diff > worst ? diff : worst;
    }
    if (worst > eps) return false;
  }
  // Remaining whole kEpsilonBlock blocks, accumulated under one test.
  // `blocked - i` is a multiple of kEpsilonBlock, so the vectorized main
  // loop covers it with no epilogue iterations at runtime.
  const size_t blocked = d - (d - i) % kEpsilonBlock;
  Count worst = 0;
  for (; i < blocked; ++i) {
    const Count x = pb[i];
    const Count y = pa[i];
    const Count diff = x > y ? x - y : y - x;
    worst = diff > worst ? diff : worst;
  }
  if (worst > eps) return false;
  // Scalar tail: d mod kEpsilonBlock dimensions.
  for (; i < d; ++i) {
    const Count x = pb[i];
    const Count y = pa[i];
    const Count diff = x > y ? x - y : y - x;
    worst = diff > worst ? diff : worst;
  }
  return worst <= eps;
}

}  // namespace csj
