#include "core/epsilon_predicate.h"

// Function multiversioning for the hottest kernel in the system: the
// compiler emits one clone of EpsilonMatches per listed ISA and an ifunc
// resolver picks the widest one the CPU supports when the binary loads.
// The portable baseline build is untouched — no -march flags change —
// yet machines with AVX2/AVX-512 run 8/16-lane packed min/max.
//
// Gated to x86-64 ELF GNU toolchains (ifunc needs ELF + glibc-style
// resolution) and disabled under Thread/AddressSanitizer, whose early
// interposers do not get along with load-time ifunc resolvers.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define CSJ_EPSILON_CLONES \
  __attribute__((target_clones("default", "sse4.2", "avx2", "avx512f")))
#else
#define CSJ_EPSILON_CLONES
#endif

namespace csj {

CSJ_EPSILON_CLONES
bool EpsilonMatches(std::span<const Count> b, std::span<const Count> a,
                    Epsilon eps) {
  const size_t d = b.size();
  const Count* pb = b.data();
  const Count* pa = a.data();
  size_t i = 0;
  // Super-blocks: branchless interior (vectorizes), one reduce + test per
  // kEpsilonSuperBlock dimensions.
  for (; i + kEpsilonSuperBlock <= d; i += kEpsilonSuperBlock) {
    Count worst = 0;
    for (size_t k = 0; k < kEpsilonSuperBlock; ++k) {
      const Count x = pb[i + k];
      const Count y = pa[i + k];
      const Count diff = x > y ? x - y : y - x;  // branchless: max - min
      worst = diff > worst ? diff : worst;
    }
    if (worst > eps) return false;
  }
  // Remaining whole kEpsilonBlock blocks, accumulated under one test.
  // `blocked - i` is a multiple of kEpsilonBlock, so the vectorized main
  // loop covers it with no epilogue iterations at runtime.
  const size_t blocked = d - (d - i) % kEpsilonBlock;
  Count worst = 0;
  for (; i < blocked; ++i) {
    const Count x = pb[i];
    const Count y = pa[i];
    const Count diff = x > y ? x - y : y - x;
    worst = diff > worst ? diff : worst;
  }
  if (worst > eps) return false;
  // Scalar tail: d mod kEpsilonBlock dimensions.
  for (; i < d; ++i) {
    const Count x = pb[i];
    const Count y = pa[i];
    const Count diff = x > y ? x - y : y - x;
    worst = diff > worst ? diff : worst;
  }
  return worst <= eps;
}

namespace {

#if defined(__GNUC__) && defined(__x86_64__)
#define CSJ_MANY_VECTOR_EXT 1
#endif

#ifdef CSJ_MANY_VECTOR_EXT

/// One SoA block's lanes as a GCC vector: explicit packed arithmetic, so
/// the per-dimension step is guaranteed to be ONE max/min/sub sequence
/// over all kEpsilonBlock candidates (the autovectorizer reliably
/// scalarized the equivalent loop nest and lost the whole lane win).
template <typename T>
struct ManyVec {
  typedef T type __attribute__((vector_size(kEpsilonBlock * sizeof(T))));
};

/// Shared body of the 1-vs-many kernels. Dimension-major over one block:
/// load the block's 8 contiguous values of dimension k, broadcast the
/// probe's value, accumulate the per-lane worst difference. Every
/// kEpsilonBlock dimensions an all-lanes-dead test abandons the block —
/// the batched analogue of the per-pair early exit, at a granularity
/// fine enough to fire on the paper's d=16 datasets (the per-pair
/// kernel's 32-wide super-block never would). Marked always_inline so
/// each target_clones ISA copy of the public wrappers inlines and
/// compiles this body at its own register width.
template <typename T, typename EpsT>
[[gnu::always_inline]] inline void MatchManyBody(const T* __restrict probe,
                                                 Dim d,
                                                 const BasicVerifyWindow<T>& w,
                                                 uint32_t begin, uint32_t end,
                                                 EpsT eps, uint64_t* mask) {
  using V = typename ManyVec<T>::type;
  const size_t words = (static_cast<size_t>(end - begin) + 63) / 64;
  for (size_t i = 0; i < words; ++i) mask[i] = 0;
  if (begin >= end) return;

  const auto first_block = static_cast<uint32_t>(begin / kEpsilonBlock);
  const auto last_block =
      static_cast<uint32_t>((end + kEpsilonBlock - 1) / kEpsilonBlock);
  for (uint32_t g = first_block; g < last_block; ++g) {
    const T* __restrict base = w.BlockData(g);
    V worst = {};
    size_t k = 0;
    bool dead = false;
    while (k < d) {
      const size_t stop = std::min<size_t>(d, k + kEpsilonBlock);
      for (; k < stop; ++k) {
        V y;
        __builtin_memcpy(&y, base + k * kEpsilonBlock, sizeof(V));
        const V x = V{} + probe[k];  // broadcast
        const V hi = x > y ? x : y;
        const V lo = x > y ? y : x;
        const V diff = hi - lo;
        worst = worst > diff ? worst : diff;
      }
      if (k >= d) break;
      // All lanes already over eps? The whole block is dead.
      T best = worst[0];
      for (size_t l = 1; l < kEpsilonBlock; ++l) {
        best = worst[l] < best ? worst[l] : best;
      }
      if (best > eps) {
        dead = true;
        break;
      }
    }
    if (dead) continue;  // all bits stay 0

    // Emit the block's survivor bits, clipped to [begin, end).
    const uint32_t block_base = g * static_cast<uint32_t>(kEpsilonBlock);
    const uint32_t lane_lo = block_base < begin ? begin - block_base : 0;
    const uint32_t lane_hi =
        std::min<uint32_t>(static_cast<uint32_t>(kEpsilonBlock),
                           end - block_base);
    for (uint32_t l = lane_lo; l < lane_hi; ++l) {
      if (worst[l] <= eps) {
        const uint32_t bit = block_base + l - begin;
        mask[bit >> 6] |= 1ULL << (bit & 63u);
      }
    }
  }
}

#else  // !CSJ_MANY_VECTOR_EXT

/// Portable fallback: plain loops the optimizer may or may not
/// vectorize; verdict-identical to the vector-extension body.
template <typename T, typename EpsT>
inline void MatchManyBody(const T* __restrict probe, Dim d,
                          const BasicVerifyWindow<T>& w, uint32_t begin,
                          uint32_t end, EpsT eps, uint64_t* mask) {
  const size_t words = (static_cast<size_t>(end - begin) + 63) / 64;
  for (size_t i = 0; i < words; ++i) mask[i] = 0;
  if (begin >= end) return;

  const auto first_block = static_cast<uint32_t>(begin / kEpsilonBlock);
  const auto last_block =
      static_cast<uint32_t>((end + kEpsilonBlock - 1) / kEpsilonBlock);
  for (uint32_t g = first_block; g < last_block; ++g) {
    const T* __restrict base = w.BlockData(g);
    T worst[kEpsilonBlock] = {};
    for (size_t k = 0; k < d; ++k) {
      const T x = probe[k];
      const T* __restrict lane = base + k * kEpsilonBlock;
      for (size_t l = 0; l < kEpsilonBlock; ++l) {
        const T y = lane[l];
        const T diff = x > y ? x - y : y - x;
        worst[l] = diff > worst[l] ? diff : worst[l];
      }
    }
    const uint32_t block_base = g * static_cast<uint32_t>(kEpsilonBlock);
    const uint32_t lane_lo = block_base < begin ? begin - block_base : 0;
    const uint32_t lane_hi =
        std::min<uint32_t>(static_cast<uint32_t>(kEpsilonBlock),
                           end - block_base);
    for (uint32_t l = lane_lo; l < lane_hi; ++l) {
      if (worst[l] <= eps) {
        const uint32_t bit = block_base + l - begin;
        mask[bit >> 6] |= 1ULL << (bit & 63u);
      }
    }
  }
}

#endif  // CSJ_MANY_VECTOR_EXT

}  // namespace

CSJ_EPSILON_CLONES
void EpsilonMatchesMany(std::span<const Count> b, const VerifyWindow& window,
                        uint32_t begin, uint32_t end, Epsilon eps,
                        uint64_t* mask) {
  MatchManyBody<Count, Epsilon>(b.data(), window.d(), window, begin, end, eps,
                                mask);
}

CSJ_EPSILON_CLONES
void EpsilonMatchesManyFloat(std::span<const float> b,
                             const VerifyWindowF& window, uint32_t begin,
                             uint32_t end, float eps_norm, uint64_t* mask) {
  MatchManyBody<float, float>(b.data(), window.d(), window, begin, end,
                              eps_norm, mask);
}

}  // namespace csj
