#include "core/community.h"

#include <algorithm>

#include "util/logging.h"

namespace csj {

Community::Community(Dim d, std::string name) : d_(d), name_(std::move(name)) {
  CSJ_CHECK_GE(d, 1u);
}

Community::Community(Dim d, std::vector<Count> flat_counts, std::string name)
    : d_(d), counts_(std::move(flat_counts)), name_(std::move(name)) {
  CSJ_CHECK_GE(d, 1u);
  CSJ_CHECK_EQ(counts_.size() % d, 0u);
}

UserId Community::AddUser(std::span<const Count> vec) {
  CSJ_CHECK_EQ(vec.size(), d_);
  const UserId id = size();
  counts_.insert(counts_.end(), vec.begin(), vec.end());
  return id;
}

Count Community::MaxCounter() const {
  if (counts_.empty()) return 0;
  return *std::max_element(counts_.begin(), counts_.end());
}

bool SizesAdmissible(uint32_t size_b, uint32_t size_a) {
  if (size_b > size_a) return false;
  const uint32_t ceil_half = (size_a + 1) / 2;
  return size_b >= ceil_half;
}

}  // namespace csj
