#include "core/community.h"

#include <algorithm>

#include "util/logging.h"

namespace csj {

Community::Community(Dim d, std::string name) : d_(d), name_(std::move(name)) {
  CSJ_CHECK_GE(d, 1u);
}

Community::Community(Dim d, std::vector<Count> flat_counts, std::string name)
    : d_(d), counts_(std::move(flat_counts)), name_(std::move(name)) {
  CSJ_CHECK_GE(d, 1u);
  CSJ_CHECK_EQ(counts_.size() % d, 0u);
}

Community Community::FromView(Dim d, const Count* counts, size_t flat_count,
                              std::shared_ptr<const void> owner,
                              std::string name) {
  CSJ_CHECK_GE(d, 1u);
  CSJ_CHECK_EQ(flat_count % d, 0u);
  CSJ_CHECK(counts != nullptr || flat_count == 0);
  Community community(d, std::move(name));
  community.view_ = counts;
  community.view_size_ = flat_count;
  community.owner_ = std::move(owner);
  return community;
}

void Community::EnsureOwned() {
  if (view_ == nullptr) return;
  counts_.assign(view_, view_ + view_size_);
  view_ = nullptr;
  view_size_ = 0;
  owner_.reset();
}

UserId Community::AddUser(std::span<const Count> vec) {
  CSJ_CHECK_EQ(vec.size(), d_);
  EnsureOwned();
  const UserId id = size();
  counts_.insert(counts_.end(), vec.begin(), vec.end());
  return id;
}

Count Community::MaxCounter() const {
  const std::span<const Count> counts = flat();
  if (counts.empty()) return 0;
  return *std::max_element(counts.begin(), counts.end());
}

bool SizesAdmissible(uint32_t size_b, uint32_t size_a) {
  if (size_b > size_a) return false;
  const uint32_t ceil_half = (size_a + 1) / 2;
  return size_b >= ceil_half;
}

}  // namespace csj
