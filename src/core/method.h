#ifndef CSJ_CORE_METHOD_H_
#define CSJ_CORE_METHOD_H_

#include <optional>
#include <string>
#include <vector>

#include "core/community.h"
#include "core/join_options.h"
#include "core/join_result.h"

namespace csj {

/// The paper's six CSJ methods (§4-§5) plus two extension families: the
/// MinMaxEGO hybrid §6.2 hypothesizes (integer-grid SuperEGO recursion
/// with MinMax-encoded leaves; hybrid_method.h) and the GridHash spatial
/// hash-join baseline (gridhash_method.h).
enum class Method {
  kApBaseline,
  kExBaseline,
  kApMinMax,
  kExMinMax,
  kApSuperEgo,
  kExSuperEgo,
  kApMinMaxEgo,
  kExMinMaxEgo,
  kApGridHash,
  kExGridHash,
};

/// The paper's methods, in its presentation order.
inline constexpr Method kAllMethods[] = {
    Method::kApBaseline, Method::kExBaseline, Method::kApMinMax,
    Method::kExMinMax,   Method::kApSuperEgo, Method::kExSuperEgo,
};

/// The hybrid extension methods (not part of the paper's evaluation).
inline constexpr Method kExtensionMethods[] = {
    Method::kApMinMaxEgo,
    Method::kExMinMaxEgo,
    Method::kApGridHash,
    Method::kExGridHash,
};

/// The paper's spelling, e.g. "Ex-MinMax".
const char* MethodName(Method method);

/// Parses a method name (exact, case-sensitive, paper spelling). Returns
/// nullopt for unknown names.
std::optional<Method> ParseMethod(const std::string& name);

/// True for Ex-*, false for Ap-*.
bool IsExact(Method method);

/// Dispatches to the selected method's join implementation. `b` and `a`
/// may have any sizes here; the similarity front door in similarity.h is
/// where the paper's ceil(|A|/2) <= |B| <= |A| admissibility rule lives.
JoinResult RunMethod(Method method, const Community& b, const Community& a,
                     const JoinOptions& options);

}  // namespace csj

#endif  // CSJ_CORE_METHOD_H_
