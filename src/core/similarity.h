#ifndef CSJ_CORE_SIMILARITY_H_
#define CSJ_CORE_SIMILARITY_H_

#include <optional>

#include "core/community.h"
#include "core/join_options.h"
#include "core/join_result.h"
#include "core/method.h"

namespace csj {

/// The library's front door: computes similarity(B, A) per the CSJ
/// definition (§3), enforcing its admissibility rule.
///
/// `b` must be the LESS-followed community and satisfy
/// ceil(|A|/2) <= |B| <= |A|; otherwise the similarity is not meaningful
/// (B would be a near-subset of A) and nullopt is returned. Both
/// communities must be non-empty and share the same dimensionality.
///
/// Typical use:
///   csj::JoinOptions options;
///   options.eps = 1;
///   auto report = csj::ComputeSimilarity(csj::Method::kExMinMax, b, a,
///                                        options);
///   if (report) std::cout << report->Similarity();
std::optional<JoinResult> ComputeSimilarity(Method method, const Community& b,
                                            const Community& a,
                                            const JoinOptions& options);

/// Convenience overload ordering the couple automatically: the smaller
/// community plays B. Still returns nullopt when even the reordered couple
/// violates the size rule.
std::optional<JoinResult> ComputeSimilarityAutoOrder(Method method,
                                                     const Community& x,
                                                     const Community& y,
                                                     const JoinOptions& options);

}  // namespace csj

#endif  // CSJ_CORE_SIMILARITY_H_
