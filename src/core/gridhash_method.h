#ifndef CSJ_CORE_GRIDHASH_METHOD_H_
#define CSJ_CORE_GRIDHASH_METHOD_H_

#include "core/community.h"
#include "core/join_options.h"
#include "core/join_result.h"

namespace csj {

/// GridHash — a classic spatial-join baseline (extension; the paper's
/// related work cites the spatial hash-join lineage but does not evaluate
/// one against CSJ).
///
/// A users are hashed into an epsilon-grid over the `grid_dims` most
/// selective dimensions (chosen with SuperEGO's reorder heuristic; cell
/// width = eps). A b user can only eps-match A users within one cell of
/// its own in EVERY indexed dimension, so probing the 3^grid_dims
/// neighbouring cells enumerates a candidate superset, which the full
/// d-dimensional comparison then filters. All integer arithmetic — exact
/// accuracy, like Baseline/MinMax.
///
/// Ap variant commits each b's first match (Ap-Baseline's rule); Ex
/// collects all matches and runs the configured matcher once.
///
/// Complexity: build O(|A| * grid_dims); probe O(3^grid_dims) buckets per
/// b plus the candidates scanned. On skewed counter data most of A lands
/// in few distinct cells, so GridHash degrades toward the nested loop
/// exactly where MinMax's global encoded ordering keeps pruning —
/// bench_sweep_scale shows the comparison.
JoinResult ApGridHashJoin(const Community& b, const Community& a,
                          const JoinOptions& options);

/// Exact variant (see above).
JoinResult ExGridHashJoin(const Community& b, const Community& a,
                          const JoinOptions& options);

}  // namespace csj

#endif  // CSJ_CORE_GRIDHASH_METHOD_H_
