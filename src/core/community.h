#ifndef CSJ_CORE_COMMUNITY_H_
#define CSJ_CORE_COMMUNITY_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"

namespace csj {

/// A community (brand page): the set of its subscribers' d-dimensional
/// preference vectors, stored row-major in one contiguous buffer for cache
/// friendliness — the join inner loops stream over raw counter rows.
///
/// Users are addressed by their row index (`UserId`); the paper's
/// `real_ID` is exactly this index.
///
/// Storage is either OWNED (a vector, the build/mutate path) or a
/// BORROWED view of externally-owned counters (the persist path: the
/// rows live in a memory-mapped segment file pinned by `owner` and are
/// served zero-copy). A view is copy-on-write: the first mutating call
/// (AddUser / MutableUser / Reserve) silently materializes an owned
/// copy, so the catalog's frozen `shared_ptr<const Community>` entries
/// can reference mapped bytes while drift-style edits of a copy keep
/// working unchanged.
class Community {
 public:
  /// Creates an empty community of dimensionality `d >= 1`.
  explicit Community(Dim d, std::string name = "");

  /// Creates a community from `users * d` row-major counters.
  Community(Dim d, std::vector<Count> flat_counts, std::string name = "");

  /// Creates a borrowed view of `flat_count` row-major counters at
  /// `counts` (a multiple of `d`), kept alive by `owner`.
  static Community FromView(Dim d, const Count* counts, size_t flat_count,
                            std::shared_ptr<const void> owner,
                            std::string name = "");

  Community(const Community&) = default;
  Community& operator=(const Community&) = default;
  Community(Community&&) = default;
  Community& operator=(Community&&) = default;

  /// Appends one user; `vec.size()` must equal `d()`. Materializes a
  /// borrowed view first.
  UserId AddUser(std::span<const Count> vec);

  /// Read-only view of one user's counters.
  std::span<const Count> User(UserId id) const {
    return {Data() + static_cast<size_t>(id) * d_, d_};
  }

  /// Mutable view of one user's counters (used by the planting sampler).
  /// Materializes a borrowed view first.
  std::span<Count> MutableUser(UserId id) {
    EnsureOwned();
    return {counts_.data() + static_cast<size_t>(id) * d_, d_};
  }

  Dim d() const { return d_; }
  uint32_t size() const { return static_cast<uint32_t>(FlatSize() / d_); }
  bool empty() const { return FlatSize() == 0; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// The whole row-major buffer; exposed for the normalizer and I/O.
  std::span<const Count> flat() const { return {Data(), FlatSize()}; }

  /// True when the counters are a borrowed view (mapped segment bytes).
  bool viewing() const { return view_ != nullptr; }

  /// Largest counter over all users and dimensions (0 when empty).
  Count MaxCounter() const;

  /// Reserves storage for `users` rows (materializes a view).
  void Reserve(uint32_t users) {
    EnsureOwned();
    counts_.reserve(static_cast<size_t>(users) * d_);
  }

 private:
  const Count* Data() const {
    return view_ != nullptr ? view_ : counts_.data();
  }
  size_t FlatSize() const {
    return view_ != nullptr ? view_size_ : counts_.size();
  }
  /// Copy-on-write: copies a borrowed view into owned storage and drops
  /// the keep-alive. No-op when already owned.
  void EnsureOwned();

  Dim d_;
  std::vector<Count> counts_;
  const Count* view_ = nullptr;
  size_t view_size_ = 0;
  std::shared_ptr<const void> owner_;
  std::string name_;
};

/// True when the CSJ similarity is meaningful per the problem statement:
/// ceil(|A|/2) <= |B| <= |A| (B is the less-followed community). A smaller
/// B would be a near-subset of A, which the paper excludes (§3).
bool SizesAdmissible(uint32_t size_b, uint32_t size_a);

}  // namespace csj

#endif  // CSJ_CORE_COMMUNITY_H_
