#ifndef CSJ_CORE_COMMUNITY_H_
#define CSJ_CORE_COMMUNITY_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"

namespace csj {

/// A community (brand page): the set of its subscribers' d-dimensional
/// preference vectors, stored row-major in one contiguous buffer for cache
/// friendliness — the join inner loops stream over raw counter rows.
///
/// Users are addressed by their row index (`UserId`); the paper's
/// `real_ID` is exactly this index.
class Community {
 public:
  /// Creates an empty community of dimensionality `d >= 1`.
  explicit Community(Dim d, std::string name = "");

  /// Creates a community from `users * d` row-major counters.
  Community(Dim d, std::vector<Count> flat_counts, std::string name = "");

  Community(const Community&) = default;
  Community& operator=(const Community&) = default;
  Community(Community&&) = default;
  Community& operator=(Community&&) = default;

  /// Appends one user; `vec.size()` must equal `d()`.
  UserId AddUser(std::span<const Count> vec);

  /// Read-only view of one user's counters.
  std::span<const Count> User(UserId id) const {
    return {counts_.data() + static_cast<size_t>(id) * d_, d_};
  }

  /// Mutable view of one user's counters (used by the planting sampler).
  std::span<Count> MutableUser(UserId id) {
    return {counts_.data() + static_cast<size_t>(id) * d_, d_};
  }

  Dim d() const { return d_; }
  uint32_t size() const {
    return static_cast<uint32_t>(counts_.size() / d_);
  }
  bool empty() const { return counts_.empty(); }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// The whole row-major buffer; exposed for the normalizer and I/O.
  const std::vector<Count>& flat() const { return counts_; }

  /// Largest counter over all users and dimensions (0 when empty).
  Count MaxCounter() const;

  /// Reserves storage for `users` rows.
  void Reserve(uint32_t users) {
    counts_.reserve(static_cast<size_t>(users) * d_);
  }

 private:
  Dim d_;
  std::vector<Count> counts_;
  std::string name_;
};

/// True when the CSJ similarity is meaningful per the problem statement:
/// ceil(|A|/2) <= |B| <= |A| (B is the less-followed community). A smaller
/// B would be a near-subset of A, which the paper excludes (§3).
bool SizesAdmissible(uint32_t size_b, uint32_t size_a);

}  // namespace csj

#endif  // CSJ_CORE_COMMUNITY_H_
