#ifndef CSJ_CORE_LEAF_TASKS_H_
#define CSJ_CORE_LEAF_TASKS_H_

#include <cstdint>
#include <vector>

#include "ego/ego_join.h"

namespace csj::internal {

/// One surviving EGO leaf pair: the row ranges an exact leaf join must
/// scan. Materializing the task list (instead of joining inside the
/// recursion callback) lets the exact EGO-based methods fan the leaf work
/// out across threads with deterministic, chunk-ordered merging.
struct LeafTask {
  uint32_t b_lo;
  uint32_t b_hi;
  uint32_t a_lo;
  uint32_t a_hi;
};

/// Runs the EGO recursion purely as a pruner and returns the surviving
/// leaf pairs in visit order (deterministic).
inline std::vector<LeafTask> CollectLeafTasks(const ego::SegmentTree& tree_b,
                                              const ego::SegmentTree& tree_a,
                                              ego::EgoStats* stats) {
  std::vector<LeafTask> tasks;
  ego::EgoJoin(
      tree_b, tree_a,
      [&tasks](uint32_t b_lo, uint32_t b_hi, uint32_t a_lo, uint32_t a_hi) {
        tasks.push_back(LeafTask{b_lo, b_hi, a_lo, a_hi});
      },
      stats);
  return tasks;
}

}  // namespace csj::internal

#endif  // CSJ_CORE_LEAF_TASKS_H_
