#ifndef CSJ_CORE_SUPEREGO_METHOD_H_
#define CSJ_CORE_SUPEREGO_METHOD_H_

#include "core/community.h"
#include "core/join_options.h"
#include "core/join_result.h"

namespace csj {

/// Ap-SuperEGO (paper §5.2): the SuperEGO recursive framework with the
/// NestedLoopJoin leaf replaced by Ap-Baseline's first-match rule, shared
/// across leaves via global matched-b / used-a bitmaps so the one-to-one
/// constraint holds over the whole join.
///
/// As in the paper, the data is normalized to [0,1]^d (float32, dividing
/// by `options.superego_norm_max` or, when that is 0, the couple's maximum
/// counter) and eps becomes eps_norm = eps / max. The per-dimension
/// condition is evaluated in normalized float32 space — faithful to the
/// paper's adaptation, including its boundary-precision accuracy loss on
/// counter-scale data (DESIGN.md §6).
JoinResult ApSuperEgoJoin(const Community& b, const Community& a,
                          const JoinOptions& options);

/// Ex-SuperEGO (paper §5.2): same framework; leaves collect ALL matching
/// pairs and the configured matcher (paper: CSF) runs once after the
/// recursion ends.
JoinResult ExSuperEgoJoin(const Community& b, const Community& a,
                          const JoinOptions& options);

}  // namespace csj

#endif  // CSJ_CORE_SUPEREGO_METHOD_H_
