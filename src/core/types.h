#ifndef CSJ_CORE_TYPES_H_
#define CSJ_CORE_TYPES_H_

#include <cstdint>

namespace csj {

/// An aggregate preference counter: the number of likes a user gave to
/// posts of one category (paper §1.1). Counters only grow as users consume
/// content, hence unsigned; the paper's real dataset tops out at 152,532
/// likes in one dimension, far below the 32-bit limit.
using Count = uint32_t;

/// Index of a user inside its community (the paper's `real_ID`).
using UserId = uint32_t;

/// Index of a dimension/category in a user vector, `0 <= Dim < d`.
using Dim = uint32_t;

/// The per-dimension absolute-difference threshold. eps is intentionally
/// small relative to counter magnitudes ("as minimum as possible", §3).
using Epsilon = Count;

}  // namespace csj

#endif  // CSJ_CORE_TYPES_H_
