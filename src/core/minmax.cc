#include "core/minmax.h"

#include <cstdint>
#include <optional>
#include <vector>

// The prescreen kernel's AVX-512 variant uses intrinsics inside a
// target-attributed function, so no -m flags change for the rest of the
// build (GCC exposes the intrinsics to such functions since 4.9).
#if defined(__GNUC__) && defined(__x86_64__)
#define CSJ_SCAN_AVX512 1
#include <immintrin.h>
#endif

#include "core/encoding.h"
#include "core/encoding_cache.h"
#include "core/epsilon_predicate.h"
#include "core/join_scratch.h"
#include "matching/matcher.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace csj {

namespace {

/// Emits `event` into the stats and, when tracing, into the event log with
/// the ORIGINAL user ids (the figures label users in sorted-buffer order;
/// the trace tests construct inputs where the two orders coincide).
void Emit(Event event, UserId real_b, UserId real_a, JoinStats* stats,
          EventLog* log) {
  stats->Count(event);
  if (log != nullptr) log->Add(event, real_b, real_a);
}

/// The couple's encoded buffers, either fetched from the cache (shared,
/// built once per community) or built locally into the optionals. `b` /
/// `a` point at whichever variant is live.
struct MinMaxBuffers {
  std::shared_ptr<const EncodedB> cached_b;
  std::shared_ptr<const EncodedA> cached_a;
  std::optional<EncodedB> local_b;
  std::optional<EncodedA> local_a;
  const EncodedB* b = nullptr;
  const EncodedA* a = nullptr;
};

// ---- Vectorized candidate prescreen ---------------------------------
//
// The scan loops spend almost all their time rejecting candidates: on
// the paper's workloads ~90% of the entries a probe reaches fail the
// MAX PRUNE or NO OVERLAP filter, at a part that varies per candidate,
// so the per-candidate branchy form is dominated by mispredicted exits.
// PrescreenCandidates instead classifies the whole reachable run with
// branch-free compares over EncodedA's part-major columns — 8 candidates
// per step via GCC vector extensions where available — bulk-counting the
// pruned and emitting only the (rare) survivors for the d-dimensional
// comparison. Verdicts are exactly the scalar filter chain's; only event
// GRANULARITY changes (counts instead of one Emit per candidate), so the
// joins fall back to the scalar loop whenever an EventLog wants the
// per-candidate trace.

/// Branch-free scalar classification of [begin, end): the portable whole-
/// run path and the vector kernel's sub-8 tail. Accumulates into the
/// caller's counters so both variants share one stats commit.
void PrescreenScalar(const EncodedA& encd_a, uint64_t id,
                     std::span<const uint64_t> sums, uint32_t begin,
                     uint32_t end, uint64_t* max_prunes,
                     uint64_t* no_overlaps,
                     std::vector<uint32_t>* survivors) {
  const uint64_t* __restrict maxs = encd_a.encoded_maxs();
  const auto parts = static_cast<uint32_t>(sums.size());
  for (uint32_t ia = begin; ia < end; ++ia) {
    const unsigned within = id <= maxs[ia] ? 1u : 0u;
    unsigned ok = within;
    for (uint32_t p = 0; p < parts; ++p) {
      ok &= static_cast<unsigned>(sums[p] >= encd_a.part_lo(p)[ia]) &
            static_cast<unsigned>(sums[p] <= encd_a.part_hi(p)[ia]);
    }
    *max_prunes += within ^ 1u;
    *no_overlaps += within & (ok ^ 1u);
    if (ok != 0) survivors->push_back(ia);
  }
}

#ifdef CSJ_SCAN_AVX512

/// AVX-512 classification: 8 candidates per step, one unaligned 64-byte
/// load per column, unsigned compares straight into mask registers — the
/// survivor bitmask IS the compare result, so there is no lane
/// extraction at all. Written with intrinsics rather than GCC generic
/// vectors: the generic lowering has no pattern for combining unsigned
/// 64-bit compares and reassembles the masks lane-by-lane with
/// vpinsrq, which benches slower than the branchy scalar loop.
__attribute__((target("avx512f"))) void PrescreenAvx512(
    const EncodedA& encd_a, uint64_t id, std::span<const uint64_t> sums,
    uint32_t begin, uint32_t end, uint64_t* max_prunes,
    uint64_t* no_overlaps, std::vector<uint32_t>* survivors) {
  const uint64_t* __restrict maxs = encd_a.encoded_maxs();
  const auto parts = static_cast<uint32_t>(sums.size());
  const size_t stride = encd_a.size();
  const __m512i idv = _mm512_set1_epi64(static_cast<long long>(id));
  uint64_t mp = 0;
  uint64_t ov = 0;
  uint32_t ia = begin;
  for (; ia + 8 <= end; ia += 8) {
    const __m512i mx = _mm512_loadu_si512(maxs + ia);
    const __mmask8 within = _mm512_cmple_epu64_mask(idv, mx);
    __mmask8 ok = within;
    const uint64_t* col = encd_a.part_lo(0) + ia;
    for (uint32_t p = 0; p < parts; ++p) {
      const __m512i lo = _mm512_loadu_si512(col);
      const __m512i hi = _mm512_loadu_si512(col + stride);
      const __m512i s = _mm512_set1_epi64(static_cast<long long>(sums[p]));
      ok = static_cast<__mmask8>(ok & _mm512_cmple_epu64_mask(lo, s) &
                                 _mm512_cmple_epu64_mask(s, hi));
      col += 2 * stride;
    }
    mp += static_cast<unsigned>(__builtin_popcount(~within & 0xffu));
    ov += static_cast<unsigned>(__builtin_popcount((within & ~ok) & 0xffu));
    unsigned bits = ok;
    while (bits != 0) {
      survivors->push_back(ia + static_cast<uint32_t>(__builtin_ctz(bits)));
      bits &= bits - 1;
    }
  }
  *max_prunes += mp;
  *no_overlaps += ov;
  PrescreenScalar(encd_a, id, sums, ia, end, max_prunes, no_overlaps,
                  survivors);
}

#endif  // CSJ_SCAN_AVX512

/// Classifies candidates [begin, end) of one probe: counts MAX PRUNEs
/// (id > encoded_max) and NO OVERLAPs into `stats` and appends the
/// indices passing both filters — still needing the d-dimensional
/// comparison — to `survivors` in ascending order.
void PrescreenCandidates(const EncodedA& encd_a, uint64_t id,
                         std::span<const uint64_t> sums, uint32_t begin,
                         uint32_t end, JoinStats* stats,
                         std::vector<uint32_t>* survivors) {
  uint64_t max_prunes = 0;
  uint64_t no_overlaps = 0;
#ifdef CSJ_SCAN_AVX512
  static const bool has_avx512 = __builtin_cpu_supports("avx512f") != 0;
  if (has_avx512) {
    PrescreenAvx512(encd_a, id, sums, begin, end, &max_prunes, &no_overlaps,
                    survivors);
  } else {
    PrescreenScalar(encd_a, id, sums, begin, end, &max_prunes, &no_overlaps,
                    survivors);
  }
#else
  PrescreenScalar(encd_a, id, sums, begin, end, &max_prunes, &no_overlaps,
                  survivors);
#endif
  stats->max_prunes += max_prunes;
  stats->no_overlaps += no_overlaps;
}

// ---- Intra-join parallel Ex-MinMax scan ------------------------------
//
// The exact scan is sequential on the surface (the skippable-prefix
// offset and the open CSF segment both thread through the probe loop),
// but both pieces of state are pure functions of the input:
//
//  * The offset entering probe ib equals min(F, R) evaluated at
//    id(ib - 1), where F(x) = first A entry with encoded_max >= x and
//    R(x) = UpperBound(x). (Induction over the serial loop: entries are
//    only prefix-skipped once their encoded_max drops below some probe
//    id, probe ids are non-decreasing, and both F and R are monotone in
//    the id.) A chunk starting at ib therefore recomputes its entry
//    offset locally with one bounded scan — no cross-chunk handoff.
//
//  * Segment boundaries depend only on the matched-edge stream: between
//    edge groups of probes bi < bj the serial loop flushes iff some
//    intermediate next_id exceeds maxV, and since ids are non-decreasing
//    that maximum IS id(bj). So the merge step can replay the exact
//    segment partition (same CSF calls, same flush count, same pair
//    order) from the concatenated edges alone.
//
// Hence: chunks scan disjoint probe ranges of B, counting events and
// collecting candidate edges into per-chunk arenas; the merge
// concatenates arenas in chunk order, sums the counters, and replays the
// segment-close rule. Byte-identical to the serial run for any
// join_threads (asserted per method and thread count by the tests).

/// One chunk of the parallel Ex-MinMax scan over probes
/// [b_begin, b_end). Edges are emitted as SORTED-BUFFER index pairs
/// (ib, ia) — the merge needs encoded ids and maxes, which the indices
/// reach without a second lookup structure.
void ScanExMinMaxChunk(const Community& b, const Community& a,
                       const EncodedB& encd_b, const EncodedA& encd_a,
                       const JoinOptions& options, uint32_t b_begin,
                       uint32_t b_end, internal::ChunkSlot* slot) {
  const uint32_t na = encd_a.size();
  const uint64_t* maxs = encd_a.encoded_maxs();
  JoinStats& stats = slot->stats;

  uint32_t offset = 0;
  if (b_begin > 0) {
    // Replay the serial run's prefix-skip state after probe b_begin - 1,
    // WITHOUT counting: these MAX PRUNEs were already charged to earlier
    // probes (i.e. to the previous chunks).
    const uint64_t prev_id = encd_b.encoded_id(b_begin - 1);
    const uint32_t prev_reach = encd_a.UpperBound(prev_id);
    while (offset < prev_reach && prev_id > maxs[offset]) ++offset;
  }

  // Executing-thread scratch (a chunk runs on exactly one worker; two
  // chunks on the same worker run back to back).
  std::vector<uint32_t>& survivors = internal::GetJoinScratch().survivors;
  LazyBatchVerifier<Count, Epsilon> verifier;
  for (uint32_t ib = b_begin; ib < b_end; ++ib) {
    const uint64_t id = encd_b.encoded_id(ib);
    const UserId real_b = encd_b.real_id(ib);
    const std::span<const Count> vb = b.User(real_b);
    const uint32_t reach = encd_a.UpperBound(id);
    uint32_t advanced = offset;
    while (advanced < reach && id > maxs[advanced]) ++advanced;
    stats.max_prunes += advanced - offset;
    offset = advanced;

    survivors.clear();
    PrescreenCandidates(encd_a, id, encd_b.part_sums(ib), offset, reach,
                        &stats, &survivors);
    const bool batched = options.batch_verify && reach > offset &&
                         reach - offset >= kEpsilonBlock;
    if (batched) verifier.Start(encd_a.window(), vb, options.eps, reach);
    for (const uint32_t ia : survivors) {
      const bool match = batched ? verifier.Matches(ia)
                                 : EpsilonMatches(vb, a.User(encd_a.real_id(ia)),
                                                  options.eps);
      if (match) {
        stats.Count(Event::kMatch);
        slot->edges.push_back(MatchedPair{ib, ia});
      } else {
        stats.Count(Event::kNoMatch);
      }
    }
    if (reach < na) stats.Count(Event::kMinPrune);
  }
}

MinMaxBuffers AcquireMinMaxBuffers(const Community& b, const Community& a,
                                   const JoinOptions& options,
                                   JoinStats* stats) {
  MinMaxBuffers buffers;
  const Encoder encoder(b.d(), options.eps, options.encoding_parts);
  if (options.cache != nullptr) {
    // Key on the CLAMPED part count so "parts = 100, d = 27" and
    // "parts = 27" share an entry (they build identical buffers).
    const CommunityDigest digest_b = DigestCommunity(b);
    const CommunityDigest digest_a = DigestCommunity(a);
    buffers.cached_b = options.cache->GetEncodedB(b, digest_b, options.eps,
                                                  encoder.parts(), stats);
    buffers.cached_a = options.cache->GetEncodedA(a, digest_a, options.eps,
                                                  encoder.parts(), stats);
    buffers.b = buffers.cached_b.get();
    buffers.a = buffers.cached_a.get();
  } else {
    buffers.local_b.emplace(b, encoder);
    buffers.local_a.emplace(a, encoder);
    buffers.b = &*buffers.local_b;
    buffers.a = &*buffers.local_a;
  }
  return buffers;
}

}  // namespace

JoinResult ApMinMaxJoin(const Community& b, const Community& a,
                        const JoinOptions& options) {
  CSJ_CHECK_EQ(b.d(), a.d());
  util::Timer timer;
  JoinResult result;
  result.method = "Ap-MinMax";
  result.size_b = b.size();

  const MinMaxBuffers buffers =
      AcquireMinMaxBuffers(b, a, options, &result.stats);
  const EncodedB& encd_b = *buffers.b;
  const EncodedA& encd_a = *buffers.a;
  const uint32_t nb = encd_b.size();
  const uint32_t na = encd_a.size();

  // Reused across joins: repeated screening calls stop re-allocating.
  std::vector<uint8_t>& used_a = internal::GetJoinScratch().used_a;
  used_a.assign(na, 0);
  LazyBatchVerifier<Count, Epsilon> verifier;
  uint32_t offset = 0;
  for (uint32_t ib = 0; ib < nb; ++ib) {
    const uint64_t id = encd_b.encoded_id(ib);
    const UserId real_b = encd_b.real_id(ib);
    const std::span<const Count> vb = b.User(real_b);
    // The scan can only reach entries with encoded_min <= id; batch the
    // d-dimensional compares over that run when it is at least one block
    // wide, else the per-pair kernel is cheaper than the lane waste.
    const uint32_t reach = encd_a.UpperBound(id);
    const bool batched = options.batch_verify && reach > offset &&
                         reach - offset >= kEpsilonBlock;
    if (batched) verifier.Start(encd_a.window(), vb, options.eps, reach);
    bool skip = true;
    for (uint32_t ia = offset; ia < na; ++ia) {
      const UserId real_a = encd_a.real_id(ia);
      if (used_a[ia]) {
        // Matched A users are out of the join; while skip is active they
        // extend the permanently skippable prefix.
        if (skip) offset = ia + 1;
        continue;
      }
      if (ia >= reach) {
        // reach = UpperBound(id), so this is exactly id < encoded_min(ia)
        // without re-reading mins_ per candidate: b is done.
        Emit(Event::kMinPrune, real_b, real_a, &result.stats,
             options.event_log);
        break;
      }
      if (id <= encd_a.encoded_max(ia)) {
        skip = false;  // a comparison (even part/range) pins the offset
        if (!PartsOverlap(encd_b, ib, encd_a, ia)) {
          Emit(Event::kNoOverlap, real_b, real_a, &result.stats,
               options.event_log);
          continue;
        }
        const bool match =
            batched ? verifier.Matches(ia)
                    : EpsilonMatches(vb, a.User(real_a), options.eps);
        if (match) {
          Emit(Event::kMatch, real_b, real_a, &result.stats,
               options.event_log);
          result.pairs.push_back(MatchedPair{real_b, real_a});
          used_a[ia] = 1;
          break;  // approximate rule: first match ends this b
        }
        Emit(Event::kNoMatch, real_b, real_a, &result.stats,
             options.event_log);
        continue;
      }
      // id > encoded_max: this a is unreachable for every later b too.
      Emit(Event::kMaxPrune, real_b, real_a, &result.stats,
           options.event_log);
      if (skip) offset = ia + 1;
    }
  }

  result.stats.seconds = timer.Seconds();
  return result;
}

JoinResult ExMinMaxJoin(const Community& b, const Community& a,
                        const JoinOptions& options) {
  CSJ_CHECK_EQ(b.d(), a.d());
  util::Timer timer;
  JoinResult result;
  result.method = "Ex-MinMax";
  result.size_b = b.size();

  const MinMaxBuffers buffers =
      AcquireMinMaxBuffers(b, a, options, &result.stats);
  const EncodedB& encd_b = *buffers.b;
  const EncodedA& encd_a = *buffers.a;
  const uint32_t nb = encd_b.size();
  const uint32_t na = encd_a.size();

  // Open segment: candidate edges (original ids) plus maxV, the largest
  // encoded_max over the A users those edges touch. The segment buffer is
  // per-thread scratch so repeated joins reuse its capacity.
  std::vector<MatchedPair>& segment = internal::GetJoinScratch().segment;
  segment.clear();
  uint64_t max_v = 0;

  // Deferred per-segment matching: with matching_threads > 1 a flushed
  // segment is enqueued on the farm instead of matched inline, and
  // drain_farm() runs all segments as pool tasks before the join returns.
  // The segment partition is a pure function of the candidate-edge stream
  // and the farm appends matched pairs in segment order, so pairs and
  // every counter are byte-identical to the inline path for any value.
  const uint32_t matching_threads =
      options.event_log != nullptr
          ? 1
          : std::max<uint32_t>(options.matching_threads, 1);
  matching::SegmentMatchFarm& farm = internal::GetJoinScratch().match_farm;
  farm.Reset();

  auto flush_segment = [&]() {
    if (segment.empty()) {
      max_v = 0;
      return;
    }
    result.stats.candidate_pairs += segment.size();
    ++result.stats.csf_flushes;
    if (matching_threads > 1) {
      farm.Enqueue(&segment);
    } else {
      util::Timer match_timer;
      std::vector<MatchedPair> matched =
          matching::RunMatcher(options.matcher, segment);
      result.stats.matching_seconds += match_timer.Seconds();
      result.pairs.insert(result.pairs.end(), matched.begin(), matched.end());
      segment.clear();
    }
    max_v = 0;
  };

  auto drain_farm = [&]() {
    if (matching_threads <= 1) return;
    util::Timer match_timer;
    farm.MatchAll(options.matcher, matching_threads, options.pool,
                  &result.pairs);
    result.stats.matching_seconds += match_timer.Seconds();
  };

  const uint32_t threads = options.event_log != nullptr
                               ? 1
                               : std::max<uint32_t>(options.join_threads, 1);
  if (threads > 1 && nb > 1) {
    // Intra-join parallel scan: chunks of B's probes fill per-chunk
    // arenas (on the pool), then the calling thread merges in chunk
    // order — counters sum, and the segment-close rule is replayed over
    // the concatenated edge stream so the CSF segments (hence pairs and
    // flush count) are byte-identical to the serial scan below.
    internal::JoinScratch& scratch = internal::GetJoinScratch();
    const uint32_t chunks = util::ParallelChunks(0, nb, threads);
    const std::span<internal::ChunkSlot> slots =
        scratch.chunk_arenas.Acquire(chunks);
    util::ParallelFor(
        0, nb, threads,
        [&](uint32_t lo, uint32_t hi, uint32_t chunk) {
          ScanExMinMaxChunk(b, a, encd_b, encd_a, options, lo, hi,
                            &slots[chunk]);
        },
        options.pool);

    uint64_t last_ib = UINT64_MAX;  // no valid probe index
    for (uint32_t chunk = 0; chunk < chunks; ++chunk) {
      result.stats.Merge(slots[chunk].stats);
      for (const MatchedPair& edge : slots[chunk].edges) {
        const uint32_t ib = edge.b;  // sorted-buffer indices, not real ids
        const uint32_t ia = edge.a;
        if (!segment.empty() && ib != last_ib &&
            encd_b.encoded_id(ib) > max_v) {
          flush_segment();
        }
        segment.push_back(
            MatchedPair{encd_b.real_id(ib), encd_a.real_id(ia)});
        if (encd_a.encoded_max(ia) > max_v) max_v = encd_a.encoded_max(ia);
        last_ib = ib;
      }
    }
    flush_segment();
    drain_farm();
    result.stats.seconds = timer.Seconds();
    return result;
  }

  LazyBatchVerifier<Count, Epsilon> verifier;
  uint32_t offset = 0;

  if (options.event_log == nullptr) {
    // Hot path: prescreen the whole reachable run branch-free, then
    // verify only the survivors. Identical pairs and stats as the scalar
    // loop below — that one is kept for traced runs, which need one event
    // per candidate in scan order.
    std::vector<uint32_t>& survivors = internal::GetJoinScratch().survivors;
    const uint64_t* maxs = encd_a.encoded_maxs();
    for (uint32_t ib = 0; ib < nb; ++ib) {
      const uint64_t id = encd_b.encoded_id(ib);
      const UserId real_b = encd_b.real_id(ib);
      const std::span<const Count> vb = b.User(real_b);
      const uint32_t reach = encd_a.UpperBound(id);
      // The skippable prefix: entries whose encoded_max every later
      // (larger-id) probe also exceeds. Same rule as `skip` below.
      uint32_t advanced = offset;
      while (advanced < reach && id > maxs[advanced]) ++advanced;
      result.stats.max_prunes += advanced - offset;
      offset = advanced;

      survivors.clear();
      PrescreenCandidates(encd_a, id, encd_b.part_sums(ib), offset, reach,
                          &result.stats, &survivors);
      const bool batched = options.batch_verify && reach > offset &&
                           reach - offset >= kEpsilonBlock;
      if (batched) verifier.Start(encd_a.window(), vb, options.eps, reach);
      for (const uint32_t ia : survivors) {
        const UserId real_a = encd_a.real_id(ia);
        const bool match = batched
                               ? verifier.Matches(ia)
                               : EpsilonMatches(vb, a.User(real_a),
                                                options.eps);
        if (match) {
          result.stats.Count(Event::kMatch);
          segment.push_back(MatchedPair{real_b, real_a});
          if (encd_a.encoded_max(ia) > max_v) max_v = encd_a.encoded_max(ia);
        } else {
          result.stats.Count(Event::kNoMatch);
        }
      }
      if (reach < na) result.stats.Count(Event::kMinPrune);

      const uint64_t next_id =
          ib + 1 < nb ? encd_b.encoded_id(ib + 1) : UINT64_MAX;
      if (next_id > max_v) flush_segment();
    }
    flush_segment();
    drain_farm();
    result.stats.seconds = timer.Seconds();
    return result;
  }

  for (uint32_t ib = 0; ib < nb; ++ib) {
    const uint64_t id = encd_b.encoded_id(ib);
    const UserId real_b = encd_b.real_id(ib);
    const std::span<const Count> vb = b.User(real_b);
    const uint32_t reach = encd_a.UpperBound(id);
    const bool batched = options.batch_verify && reach > offset &&
                         reach - offset >= kEpsilonBlock;
    if (batched) verifier.Start(encd_a.window(), vb, options.eps, reach);
    bool skip = true;
    for (uint32_t ia = offset; ia < na; ++ia) {
      const UserId real_a = encd_a.real_id(ia);
      if (ia >= reach) {
        // As in Ap-MinMax: equivalent to id < encoded_min(ia), minus the
        // per-candidate mins_ load.
        Emit(Event::kMinPrune, real_b, real_a, &result.stats,
             options.event_log);
        break;
      }
      if (id <= encd_a.encoded_max(ia)) {
        skip = false;
        if (!PartsOverlap(encd_b, ib, encd_a, ia)) {
          Emit(Event::kNoOverlap, real_b, real_a, &result.stats,
               options.event_log);
          continue;
        }
        const bool match =
            batched ? verifier.Matches(ia)
                    : EpsilonMatches(vb, a.User(real_a), options.eps);
        if (match) {
          Emit(Event::kMatch, real_b, real_a, &result.stats,
               options.event_log);
          segment.push_back(MatchedPair{real_b, real_a});
          if (encd_a.encoded_max(ia) > max_v) max_v = encd_a.encoded_max(ia);
          // Exact rule: keep scanning — b may match further A users.
          continue;
        }
        Emit(Event::kNoMatch, real_b, real_a, &result.stats,
             options.event_log);
        continue;
      }
      Emit(Event::kMaxPrune, real_b, real_a, &result.stats,
           options.event_log);
      if (skip) offset = ia + 1;
    }

    // Segment-close check (Figure 3 performs it whether the scan ended by
    // MIN PRUNE or by exhausting Encd_A): if the next b's encoded_id
    // exceeds maxV, no later b can reach any matched a, and every
    // collected b has finished its scan, so CSF is safe.
    const uint64_t next_id =
        ib + 1 < nb ? encd_b.encoded_id(ib + 1) : UINT64_MAX;
    if (next_id > max_v) flush_segment();
  }
  flush_segment();  // defensive: loop above already flushed at ib == nb-1
  drain_farm();     // no-op here: event_log pins matching_threads to 1

  result.stats.seconds = timer.Seconds();
  return result;
}

}  // namespace csj
