#include "core/minmax.h"

#include <cstdint>
#include <vector>

#include "core/encoding.h"
#include "core/epsilon_predicate.h"
#include "core/join_scratch.h"
#include "matching/matcher.h"
#include "util/logging.h"
#include "util/timer.h"

namespace csj {

namespace {

/// Emits `event` into the stats and, when tracing, into the event log with
/// the ORIGINAL user ids (the figures label users in sorted-buffer order;
/// the trace tests construct inputs where the two orders coincide).
void Emit(Event event, UserId real_b, UserId real_a, JoinStats* stats,
          EventLog* log) {
  stats->Count(event);
  if (log != nullptr) log->Add(event, real_b, real_a);
}

}  // namespace

JoinResult ApMinMaxJoin(const Community& b, const Community& a,
                        const JoinOptions& options) {
  CSJ_CHECK_EQ(b.d(), a.d());
  util::Timer timer;
  JoinResult result;
  result.method = "Ap-MinMax";
  result.size_b = b.size();

  const Encoder encoder(b.d(), options.eps, options.encoding_parts);
  const EncodedB encd_b(b, encoder);
  const EncodedA encd_a(a, encoder);
  const uint32_t nb = encd_b.size();
  const uint32_t na = encd_a.size();

  // Reused across joins: repeated screening calls stop re-allocating.
  std::vector<uint8_t>& used_a = internal::GetJoinScratch().used_a;
  used_a.assign(na, 0);
  uint32_t offset = 0;
  for (uint32_t ib = 0; ib < nb; ++ib) {
    const uint64_t id = encd_b.encoded_id(ib);
    const UserId real_b = encd_b.real_id(ib);
    bool skip = true;
    for (uint32_t ia = offset; ia < na; ++ia) {
      const UserId real_a = encd_a.real_id(ia);
      if (used_a[ia]) {
        // Matched A users are out of the join; while skip is active they
        // extend the permanently skippable prefix.
        if (skip) offset = ia + 1;
        continue;
      }
      if (id < encd_a.encoded_min(ia)) {
        Emit(Event::kMinPrune, real_b, real_a, &result.stats,
             options.event_log);
        break;  // encoded_min only grows with ia: b is done
      }
      if (id <= encd_a.encoded_max(ia)) {
        skip = false;  // a comparison (even part/range) pins the offset
        if (!PartsOverlap(encd_b, ib, encd_a, ia)) {
          Emit(Event::kNoOverlap, real_b, real_a, &result.stats,
               options.event_log);
          continue;
        }
        if (EpsilonMatches(b.User(real_b), a.User(real_a), options.eps)) {
          Emit(Event::kMatch, real_b, real_a, &result.stats,
               options.event_log);
          result.pairs.push_back(MatchedPair{real_b, real_a});
          used_a[ia] = 1;
          break;  // approximate rule: first match ends this b
        }
        Emit(Event::kNoMatch, real_b, real_a, &result.stats,
             options.event_log);
        continue;
      }
      // id > encoded_max: this a is unreachable for every later b too.
      Emit(Event::kMaxPrune, real_b, real_a, &result.stats,
           options.event_log);
      if (skip) offset = ia + 1;
    }
  }

  result.stats.seconds = timer.Seconds();
  return result;
}

JoinResult ExMinMaxJoin(const Community& b, const Community& a,
                        const JoinOptions& options) {
  CSJ_CHECK_EQ(b.d(), a.d());
  util::Timer timer;
  JoinResult result;
  result.method = "Ex-MinMax";
  result.size_b = b.size();

  const Encoder encoder(b.d(), options.eps, options.encoding_parts);
  const EncodedB encd_b(b, encoder);
  const EncodedA encd_a(a, encoder);
  const uint32_t nb = encd_b.size();
  const uint32_t na = encd_a.size();

  // Open segment: candidate edges (original ids) plus maxV, the largest
  // encoded_max over the A users those edges touch. The segment buffer is
  // per-thread scratch so repeated joins reuse its capacity.
  std::vector<MatchedPair>& segment = internal::GetJoinScratch().segment;
  segment.clear();
  uint64_t max_v = 0;

  auto flush_segment = [&]() {
    if (segment.empty()) {
      max_v = 0;
      return;
    }
    result.stats.candidate_pairs += segment.size();
    ++result.stats.csf_flushes;
    std::vector<MatchedPair> matched =
        matching::RunMatcher(options.matcher, segment);
    result.pairs.insert(result.pairs.end(), matched.begin(), matched.end());
    segment.clear();
    max_v = 0;
  };

  uint32_t offset = 0;
  for (uint32_t ib = 0; ib < nb; ++ib) {
    const uint64_t id = encd_b.encoded_id(ib);
    const UserId real_b = encd_b.real_id(ib);
    bool skip = true;
    for (uint32_t ia = offset; ia < na; ++ia) {
      const UserId real_a = encd_a.real_id(ia);
      if (id < encd_a.encoded_min(ia)) {
        Emit(Event::kMinPrune, real_b, real_a, &result.stats,
             options.event_log);
        break;
      }
      if (id <= encd_a.encoded_max(ia)) {
        skip = false;
        if (!PartsOverlap(encd_b, ib, encd_a, ia)) {
          Emit(Event::kNoOverlap, real_b, real_a, &result.stats,
               options.event_log);
          continue;
        }
        if (EpsilonMatches(b.User(real_b), a.User(real_a), options.eps)) {
          Emit(Event::kMatch, real_b, real_a, &result.stats,
               options.event_log);
          segment.push_back(MatchedPair{real_b, real_a});
          if (encd_a.encoded_max(ia) > max_v) max_v = encd_a.encoded_max(ia);
          // Exact rule: keep scanning — b may match further A users.
          continue;
        }
        Emit(Event::kNoMatch, real_b, real_a, &result.stats,
             options.event_log);
        continue;
      }
      Emit(Event::kMaxPrune, real_b, real_a, &result.stats,
           options.event_log);
      if (skip) offset = ia + 1;
    }

    // Segment-close check (Figure 3 performs it whether the scan ended by
    // MIN PRUNE or by exhausting Encd_A): if the next b's encoded_id
    // exceeds maxV, no later b can reach any matched a, and every
    // collected b has finished its scan, so CSF is safe.
    const uint64_t next_id =
        ib + 1 < nb ? encd_b.encoded_id(ib + 1) : UINT64_MAX;
    if (next_id > max_v) flush_segment();
  }
  flush_segment();  // defensive: loop above already flushed at ib == nb-1

  result.stats.seconds = timer.Seconds();
  return result;
}

}  // namespace csj
